# telcolens build/CI entry points.
#
#   make build        compile everything
#   make vet          go vet
#   make lint         gofmt -l must be empty + staticcheck ./...
#                     (override STATICCHECK to pin a local binary)
#   make test         go test ./...
#   make race         go test -race ./...
#   make bench-smoke  one pass over the scan benchmarks (cheap CI check
#                     that benches still run; no statistics)
#   make bench-gate-run
#                     the measured bench pass the CI regression gate
#                     feeds to cmd/benchgate: BenchmarkScan +
#                     BenchmarkScanSharded, -count 5, written to
#                     $(BENCH_OUT) (default BENCH_out.txt)
#   make fuzz-smoke   30s of FuzzDecodeBlock on the v2 block decoder
#   make ci           vet + build + race + bench-smoke (the PR gate also
#                     runs lint, the determinism matrix and benchgate —
#                     see .github/workflows/ci.yml)

GO ?= go
STATICCHECK ?= $(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1
BENCH_OUT ?= BENCH_out.txt

.PHONY: all vet lint build test race bench-smoke bench-gate-run fuzz-smoke ci

all: ci

vet:
	$(GO) vet ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(STATICCHECK) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the scan benchmarks to catch bench-only regressions
# without paying for a full statistical run.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkScanSharded|BenchmarkScan$$' -benchtime 1x .

# The measured pass the CI bench gate compares across branches. Written
# to the file first and cat'ed after, so a bench failure fails the
# target (a `| tee` pipe under make's default shell would mask it).
bench-gate-run:
	@$(GO) test -run NONE -bench 'BenchmarkScanSharded|BenchmarkScan$$' \
		-benchtime 2x -count 5 . > $(BENCH_OUT); s=$$?; cat $(BENCH_OUT); exit $$s

fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzDecodeBlock -fuzztime 30s ./internal/trace/

ci: vet build race bench-smoke
