GO ?= go

.PHONY: all vet build test race bench-smoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the scan benchmarks to catch bench-only regressions
# without paying for a full statistical run.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkScanSharded|BenchmarkScan$$' -benchtime 1x .

ci: vet build race bench-smoke
