# telcolens build/CI entry points.
#
#   make build        compile everything
#   make vet          go vet
#   make lint         gofmt -l must be empty + doc-comment check on the
#                     public surfaces (scripts/doccheck.sh: telcolens.go
#                     and internal/trace) + staticcheck ./...
#                     (override STATICCHECK to pin a local binary)
#   make test         go test ./...
#   make race         go test -race ./...
#   make bench-smoke  one pass over the scan benchmarks (cheap CI check
#                     that benches still run; no statistics)
#   make bench-gate-run
#                     the measured bench pass the CI regression gate
#                     feeds to cmd/benchgate: BenchmarkScan +
#                     BenchmarkScanSharded + the paired BenchmarkRunAll
#                     (record-at-a-time vs batch-native, plus the
#                     postscan leg timing repeat passes over a warm
#                     analyzer — the post-scan constant) + the paired
#                     BenchmarkRefresh (cold full state build vs
#                     checkpoint-resume + 1-new-day refresh) + the paired
#                     write-path benches BenchmarkWrite (legacy record
#                     encoder vs column-native encoder) and
#                     BenchmarkGenerateDay (record-writer vs columnar
#                     generation) + BenchmarkIngest (streaming WAL
#                     append and whole-day seal cycle) + BenchmarkQuery
#                     (ad-hoc /query serving: indexed point lookup,
#                     windowed slice, cold/cached paths, parallel load
#                     with qps + tail latency), -count 5 with
#                     -benchmem, written to $(BENCH_OUT)
#   make alloc-check  assert the steady-state batch scan loop and the
#                     v2 column encode path allocate nothing per block
#                     (internal/trace allocation tests)
#   make profile      generate a campaign (once) and run telcoanalyze
#                     under -cpuprofile/-memprofile, so perf work starts
#                     from a pprof, not a guess; tune PROFILE_EXP/
#                     PROFILE_DIR/PROFILE_ARGS
#   make fuzz-smoke   30s of FuzzDecodeBlock on the v2 block decoder
#   make soak         streaming-ingest crash-recovery soak: replay a
#                     campaign into telcoserve -ingest, kill -9 it
#                     mid-stream, restart, assert byte-identical
#                     artifacts (RACE=1 for race-instrumented binaries)
#   make chaos        seeded fault-injection matrix under -race: fail
#                     every durable operation at every Nth filesystem
#                     op (internal/chaos + internal/faultfs)
#   make chaos-soak   scrub/quarantine soak: telcofsck a damaged
#                     campaign, telcoserve -scrub serving degraded,
#                     checkpoint resume across SIGTERM
#                     (RACE=1 for race-instrumented binaries)
#   make netchaos     wire-level chaos matrix under -race: the seeded
#                     TCP proxy (internal/netchaos) injects resets,
#                     torn writes, latency, blackholes, trickle and
#                     bandwidth caps between ingest clients and the
#                     service, asserting typed errors or idempotent
#                     retries and byte-identical seals; includes the
#                     admission-control and client circuit-breaker
#                     suites and the telcoserve overload/slow-client
#                     tests
#   make ci           vet + build + race + bench-smoke + alloc-check
#                     (the PR gate also runs lint, the determinism
#                     matrix, netchaos and benchgate — see
#                     .github/workflows/ci.yml)
#
# Daemon / tool flag reference (see each command's doc comment):
#   telcoserve  -data DIR     campaign directory to serve (default
#                             "campaign"); may start empty with -ingest
#               -addr ADDR    HTTP listen address (default :8480)
#               -poll DUR     MANIFEST poll interval (default 2s)
#               -parallel N   scan parallelism (0 = GOMAXPROCS)
#               -ingest       mount the streaming /ingest/* endpoints
#               -wal-sync     fsync the ingest WAL on every batch
#               -ingest-pending N
#                             ingest backlog budget in records before
#                             the daemon answers 429 (0 = default)
#               -query-inflight / -query-queue / -ingest-inflight /
#               -ingest-queue / -artifact-inflight / -artifact-queue
#                             per-endpoint admission limits: concurrent
#                             slots and bounded wait-queue depth per
#                             class (0 = defaults, negative queue = none)
#               -query-timeout DUR
#                             server-side cap on any /query deadline
#                             (the ?timeout= param is clamped to it)
#               -overload-window / -overload-threshold / -overload-cooldown
#                             sliding-window overload detector: this many
#                             rejections inside the window flips the
#                             daemon into declared degraded mode
#                             (cache-only /query, 429 elsewhere) for the
#                             cooldown
#               -retry-after DUR
#                             wait advertised in 429 Retry-After
#               serves /artifacts, /query (indexed ad-hoc slices),
#               /stats and /healthz (both answer during overload)
#   telcoload   -src DIR -url http://HOST:PORT  replay a campaign into
#               a telcoserve -ingest endpoint; -rate records/sec,
#               -batch per POST, -streams parallel clients, -reorder
#               window, -jitter pacing noise, -days prefix, -seed,
#               -noinit to skip /ingest/init
#               -retry-for DUR    per-send retry budget
#               -max-backoff DUR  cap on any retry wait (including
#                                 server Retry-After values)
#               -max-attempts N   attempt cap per send (0 = unlimited)
#               -breaker-fails N / -breaker-cooldown DUR
#                                 circuit breaker: consecutive transport
#                                 failures that open it, and how long it
#                                 short-circuits before a half-open probe
#               -chaos-faults PLAN / -chaos-seed N
#                                 route the replay through an in-process
#                                 netchaos proxy injecting the PLAN
#                                 (e.g. 'reset:up:after=10:every=50,
#                                 latency:up:every=5:delay=2ms')

GO ?= go
STATICCHECK ?= $(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1
BENCH_OUT ?= BENCH_out.txt
BENCH_PATTERN ?= BenchmarkScanSharded|BenchmarkScan$$|BenchmarkRunAll|BenchmarkRefresh|BenchmarkWrite|BenchmarkGenerateDay|BenchmarkIngest|BenchmarkQuery|BenchmarkOverload
PROFILE_DIR ?= profile-campaign
PROFILE_EXP ?= table5
PROFILE_ARGS ?=

.PHONY: all vet lint build test race bench-smoke bench-gate-run bench-baseline alloc-check profile fuzz-smoke soak chaos chaos-soak netchaos ci

all: ci

vet:
	$(GO) vet ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	scripts/doccheck.sh
	$(STATICCHECK) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over the scan benchmarks to catch bench-only regressions
# without paying for a full statistical run.
bench-smoke:
	$(GO) test -run NONE -bench '$(BENCH_PATTERN)' -benchtime 1x .

# The measured pass the CI bench gate compares across branches. Written
# to the file first and cat'ed after, so a bench failure fails the
# target (a `| tee` pipe under make's default shell would mask it).
# -benchmem records B/op and allocs/op in the BENCH_* artifacts; the
# hard zero-allocation assertion lives in `make alloc-check`.
bench-gate-run:
	@$(GO) test -run NONE -bench '$(BENCH_PATTERN)' -benchmem \
		-benchtime 2x -count 5 . > $(BENCH_OUT); s=$$?; cat $(BENCH_OUT); exit $$s

# Re-record the committed performance-trajectory anchor: run the gate's
# benchmark set and snapshot the per-benchmark medians into
# BENCH_baseline.json. The committed file is informational — the CI gate
# always re-measures the merge base instead of trusting a file measured
# on different hardware — but it pins where each perf PR started, so the
# trajectory across PRs stays reviewable in the history of one file.
bench-baseline: bench-gate-run
	$(GO) run ./cmd/benchgate -snapshot $(BENCH_OUT) -json BENCH_baseline.json

# Steady-state allocation check: decoding a block into a ColumnBatch (or
# record batch), encoding a block from columnar or record-batch ingest,
# and the pooled scan loop must not allocate per block.
# The tests are built out under -race (the detector skews allocation
# counts), so this is a separate non-race invocation.
alloc-check:
	$(GO) test -run 'SteadyStateAllocs|SteadyStateBlockAllocs' -count 1 ./internal/trace/

# Profile an experiment end to end. The campaign is generated once and
# reused; delete $(PROFILE_DIR) to regenerate.
profile: build
	@test -d $(PROFILE_DIR) || $(GO) run ./cmd/telcogen -out $(PROFILE_DIR) \
		-ues 6000 -days 14 -shards 4
	$(GO) run ./cmd/telcoanalyze -data $(PROFILE_DIR) -exp $(PROFILE_EXP) -v \
		-cpuprofile cpu.pprof -memprofile mem.pprof $(PROFILE_ARGS) > /dev/null
	@echo "wrote cpu.pprof and mem.pprof — inspect with: $(GO) tool pprof cpu.pprof"

fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzDecodeBlock -fuzztime 30s ./internal/trace/

# End-to-end streaming ingest soak: telcoload replays a reference
# campaign into telcoserve -ingest at a fixed rate, the daemon is
# kill -9'd mid-stream and restarted (WAL replay), and every sealed
# partition plus every rendered artifact must come out byte-identical
# to the batch-generated reference. RACE=1 builds the binaries with the
# race detector (the CI soak job does).
soak:
	scripts/ingest_soak.sh

# Deterministic fault-injection matrix (internal/chaos): every durable
# operation — partition write, WAL append, seal commit, checkpoint
# save, indexed query, incremental refresh — is failed at every Nth
# filesystem op in turn under seeded faultfs plans, asserting a clean
# error with the old state intact or recovery to byte-identical
# artifacts. `make chaos-soak` adds the end-to-end scrub/quarantine
# half: telcofsck on a damaged campaign, telcoserve -scrub serving
# degraded, checkpoint resume across SIGTERM.
chaos:
	$(GO) test -race -count 1 ./internal/chaos/ ./internal/faultfs/

chaos-soak:
	scripts/chaos_soak.sh

# Wire-level chaos and overload matrix: the netchaos proxy fault plans
# (every fault a typed error or an idempotent retry; a full streamed
# campaign through an adversarial wire seals byte-identical to batch),
# the ingest client's breaker/backoff suite, the admission-control
# suite, and telcoserve's overload/deadline/slow-client tests — all
# under -race, mirroring `make chaos` one layer down the stack.
netchaos:
	$(GO) test -race -count 1 ./internal/netchaos/ ./internal/admission/ \
		./internal/ingest/ ./cmd/telcoserve/

ci: vet build race bench-smoke alloc-check
