package telcolens

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	facadeOnce sync.Once
	facadeDS   *Dataset
	facadeErr  error
)

func facadeDataset(t *testing.T) *Dataset {
	facadeOnce.Do(func() {
		cfg := DefaultConfig(5)
		cfg.UEs = 1200
		cfg.Days = 4
		facadeDS, facadeErr = Generate(cfg)
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeDS
}

func TestFacadeGenerateAnalyze(t *testing.T) {
	ds := facadeDataset(t)
	if ds.TotalHandovers() == 0 {
		t.Fatal("no handovers")
	}
	a, err := NewAnalyzer(ds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunExperiment(context.Background(), "table2", a, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE2") {
		t.Fatal("experiment output malformed")
	}
	if err := RunExperiment(context.Background(), "definitely-not-real", a, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeExperimentInventory(t *testing.T) {
	exps := Experiments()
	ids := ExperimentIDs()
	if len(exps) != len(ids) {
		t.Fatal("inventory mismatch")
	}
	// Every paper artifact present.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14a",
		"fig14b", "fig15", "fig16", "fig17", "fig18", "anova",
	}
	have := make(map[string]bool)
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestFacadeFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(9)
	cfg.UEs = 500
	cfg.Days = 2
	cfg.Store = store
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveManifest(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify the analysis runs against the reloaded dataset.
	reloaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Population.Len() != ds.Population.Len() {
		t.Fatal("reloaded population differs")
	}
	if len(reloaded.DayStats) != len(ds.DayStats) {
		t.Fatal("reloaded day stats differ")
	}
	a, err := NewAnalyzer(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunExperiment(context.Background(), "fig8", a, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FIG8") {
		t.Fatal("reloaded analysis malformed")
	}
}

func TestFacadeLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
}

func TestFacadeProfiles(t *testing.T) {
	ds := facadeDataset(t)
	a, err := NewAnalyzer(ds)
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.DistrictProfile(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name == "" || p.Population <= 0 {
		t.Fatalf("profile malformed: %+v", p)
	}
	if _, err := a.DistrictProfile(context.Background(), -1); err == nil {
		t.Fatal("invalid district accepted")
	}
	ranked, err := a.RankLegacyDependence(context.Background(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked districts")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].VerticalPct > ranked[i-1].VerticalPct {
			t.Fatal("ranking not descending")
		}
	}
}
