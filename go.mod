module telcolens

go 1.23
