module telcolens

go 1.24
