// Package telcolens reproduces the measurement study "Through the Telco
// Lens: A Countrywide Empirical Study of Cellular Handovers" (IMC 2024) on
// a fully synthetic, deterministic substrate: a countrywide mobile
// network, a GSMA-style device universe, a ~40M-UE-scale subscriber
// population (configurable), a core-network handover simulator, and the
// complete analysis pipeline that regenerates every table and figure of
// the paper's evaluation.
//
// The v2 analysis API is context-aware and parallel: traces are stored
// as (day, shard) partitions, experiments declare the scan state they
// need, and the engine fans a worker pool out over partitions with
// deterministic (bit-identical) results at any parallelism.
//
// Typical use:
//
//	cfg := telcolens.DefaultConfig(42)
//	cfg.UEs, cfg.Days = 5000, 14
//	ds, err := telcolens.Generate(cfg, telcolens.WithShards(8))
//	// handle err
//	a, err := telcolens.NewAnalyzer(ds)
//	// handle err
//	err = telcolens.RunExperiment(ctx, "fig8", a, os.Stdout,
//		telcolens.WithParallelism(8))
//
// See DESIGN.md for the v2 store/collector architecture, the system
// inventory and the calibration substitutions.
package telcolens

import (
	"context"
	"fmt"
	"io"

	"telcolens/internal/analysis"
	"telcolens/internal/query"
	"telcolens/internal/report"
	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// Config parameterizes a synthetic measurement campaign.
type Config = simulate.Config

// Dataset is a generated campaign: world model plus captured traces.
type Dataset = simulate.Dataset

// Analyzer computes the paper's §4–§6 analyses over a dataset.
type Analyzer = analysis.Analyzer

// Experiment regenerates one paper table or figure.
type Experiment = analysis.Experiment

// Artifact is a rendered experiment result.
type Artifact = report.Artifact

// Store is a (day, shard)-partitioned handover trace store.
type Store = trace.Store

// Record is one captured handover event.
type Record = trace.Record

// Partition identifies one (day, shard) trace partition.
type Partition = trace.Partition

// ProgressEvent reports analysis scan progress (partitions merged).
type ProgressEvent = analysis.ProgressEvent

// ScanStats snapshots the trace-scan counters an Analyzer accumulated
// (partitions/records read, v2 blocks decoded vs pruned, stored bytes);
// read it after RunExperiment/RunAll via Analyzer.ScanStats.
type ScanStats = analysis.ScanStats

// RefreshResult summarizes what one Analyzer.Refresh did: how many
// partitions were scanned into the warm state and whether the store
// changed in a way that forced a full rebuild.
type RefreshResult = analysis.RefreshResult

// CollectorState is a serializable, mergeable snapshot of one analysis
// collector (the unit Checkpoint/ResumeAnalyzer round-trip).
type CollectorState = analysis.CollectorState

// DistrictProfile is the per-district drill-down summary.
type DistrictProfile = analysis.DistrictProfile

// LegacyDependence ranks districts by vertical-handover reliance.
type LegacyDependence = analysis.LegacyDependence

// QueryEngine executes ad-hoc record-slice queries (per-UE, per-TAC,
// time-window) over a store, pruning with the MANIFEST zone maps and
// the per-partition .tlix secondary indexes when present; see the
// internal/query package and DESIGN.md §6.
type QueryEngine = query.Engine

// QueryParams is one ad-hoc query: a conjunction of optional
// predicates plus a row limit and an aggregate switch.
type QueryParams = query.Params

// QueryResult is a query's answer: matched rows in canonical order,
// the optional per-slice aggregate, and per-request prune metrics.
type QueryResult = query.Result

// QueryView pins the partition set of one manifest generation; queries
// against it are snapshot-isolated from concurrent appends.
type QueryView = query.View

// UESliceAggregate summarizes one subscriber's record slice (handover
// counts, outcome split, ping-pong bounces per standard window).
type UESliceAggregate = analysis.UESliceAggregate

// NewQueryEngine returns a query engine over s. Stores that maintain
// .tlix index sidecars (FileStore) get index pruning; everything else
// scans with identical results.
func NewQueryEngine(s Store) *QueryEngine { return query.New(s) }

// NewQueryView snapshots s's current partition set for querying.
func NewQueryView(s Store) (*QueryView, error) { return query.NewView(s) }

// Option tunes generation and analysis entry points. Options are shared:
// each entry point applies the fields that concern it and ignores the
// rest.
type Option func(*options)

type options struct {
	parallelism int
	shards      int
	progress    func(ProgressEvent)
	winFrom     int
	winTo       int
	winSet      bool
}

// WithParallelism bounds how many trace partitions an analysis scan
// reads concurrently (0 = GOMAXPROCS). On Generate it also bounds the
// simulation worker count.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithShards sets how many hash-partitioned shards Generate writes per
// study day. More shards let analysis scans use more cores; results are
// identical for any shard count.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithProgress installs a callback invoked as analysis scan partitions
// complete.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(o *options) { o.progress = fn }
}

// WithWindow restricts the analysis to study days [fromDay, toDay]
// inclusive (-1 leaves a bound open). Scans become time-ranged: stores
// written with the v2 block codec only decode blocks inside the window.
func WithWindow(fromDay, toDay int) Option {
	return func(o *options) {
		o.winFrom, o.winTo, o.winSet = fromDay, toDay, true
	}
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// analyzerOptions translates facade options for the analysis engine.
func analyzerOptions(o options) []analysis.Option {
	var out []analysis.Option
	if o.parallelism > 0 {
		out = append(out, analysis.WithParallelism(o.parallelism))
	}
	if o.progress != nil {
		out = append(out, analysis.WithProgress(o.progress))
	}
	if o.winSet {
		out = append(out, analysis.WithWindow(o.winFrom, o.winTo))
	}
	return out
}

// DefaultConfig returns the calibrated laptop-scale configuration for the
// given seed (20k UEs, 28 days, 320 districts, 2.4k sites).
func DefaultConfig(seed uint64) Config { return simulate.DefaultConfig(seed) }

// Generate runs a full synthetic campaign. WithShards and
// WithParallelism override the corresponding Config fields.
func Generate(cfg Config, opts ...Option) (*Dataset, error) {
	o := buildOptions(opts)
	if o.shards > 0 {
		cfg.Shards = o.shards
	}
	if o.parallelism > 0 {
		cfg.Workers = o.parallelism
	}
	return simulate.Generate(cfg)
}

// Load reopens a campaign directory produced by Generate with a file
// store and a saved manifest (see cmd/telcogen).
func Load(dir string) (*Dataset, error) { return simulate.Load(dir) }

// NewAnalyzer wraps a dataset for analysis.
func NewAnalyzer(ds *Dataset, opts ...Option) (*Analyzer, error) {
	return analysis.New(ds, analyzerOptions(buildOptions(opts))...)
}

// ResumeAnalyzer reconstructs a warm analyzer from a checkpoint written
// by Analyzer.Checkpoint against the same campaign (whose study window
// may have grown since — telcogen -append). A subsequent
// Analyzer.Refresh scans only the partitions the checkpoint does not
// cover and merges them into the restored state, with artifacts
// byte-identical to a cold full scan.
func ResumeAnalyzer(ds *Dataset, r io.Reader, opts ...Option) (*Analyzer, error) {
	return analysis.ResumeAnalyzer(ds, r, analyzerOptions(buildOptions(opts))...)
}

// SaveCheckpoint persists the analyzer's checkpoint to a file with the
// atomic-publish discipline (a crashed save leaves the previous
// checkpoint intact); see ResumeAnalyzerFile for the read side.
func SaveCheckpoint(path string, a *Analyzer) error {
	return analysis.SaveCheckpointFile(nil, path, a)
}

// ResumeAnalyzerFile restores an analyzer from a checkpoint file, or
// falls back to a cold analyzer when the file is missing, unreadable
// or fails its checksum — a checkpoint is an accelerator, never a
// correctness dependency. resumed reports whether the file was used.
func ResumeAnalyzerFile(path string, ds *Dataset, opts ...Option) (a *Analyzer, resumed bool, err error) {
	return analysis.ResumeAnalyzerFile(nil, path, ds, analyzerOptions(buildOptions(opts))...)
}

// NewMemStore returns an in-memory trace store.
func NewMemStore() Store { return trace.NewMemStore() }

// NewFileStore returns (creating if needed) a directory-backed store.
func NewFileStore(dir string) (Store, error) { return trace.NewFileStore(dir) }

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment { return analysis.Experiments() }

// ExperimentIDs lists experiment IDs alphabetically.
func ExperimentIDs() []string { return analysis.IDs() }

// RunExperiment executes one experiment by ID and renders it to w. Only
// the scan state the experiment declares is computed (and cached on the
// analyzer), so a single figure never pays for the whole pipeline.
func RunExperiment(ctx context.Context, id string, a *Analyzer, w io.Writer, opts ...Option) error {
	e, ok := analysis.ByID(id)
	if !ok {
		return fmt.Errorf("telcolens: unknown experiment %q (known: %v)", id, analysis.IDs())
	}
	a.Configure(analyzerOptions(buildOptions(opts))...)
	art, err := e.Run(ctx, a)
	if err != nil {
		return err
	}
	return art.Render(w)
}

// RunAll executes every experiment, rendering each artifact to w. All
// scan state is computed by one fused parallel pass over the trace.
func RunAll(ctx context.Context, a *Analyzer, w io.Writer, opts ...Option) error {
	a.Configure(analyzerOptions(buildOptions(opts))...)
	return analysis.RunAll(ctx, a, w)
}
