// Package telcolens reproduces the measurement study "Through the Telco
// Lens: A Countrywide Empirical Study of Cellular Handovers" (IMC 2024) on
// a fully synthetic, deterministic substrate: a countrywide mobile
// network, a GSMA-style device universe, a ~40M-UE-scale subscriber
// population (configurable), a core-network handover simulator, and the
// complete analysis pipeline that regenerates every table and figure of
// the paper's evaluation.
//
// Typical use:
//
//	cfg := telcolens.DefaultConfig(42)
//	cfg.UEs, cfg.Days = 5000, 14
//	ds, err := telcolens.Generate(cfg)
//	// handle err
//	a, err := telcolens.NewAnalyzer(ds)
//	// handle err
//	err = telcolens.RunExperiment("fig8", a, os.Stdout)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every experiment.
package telcolens

import (
	"fmt"
	"io"

	"telcolens/internal/analysis"
	"telcolens/internal/report"
	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// Config parameterizes a synthetic measurement campaign.
type Config = simulate.Config

// Dataset is a generated campaign: world model plus captured traces.
type Dataset = simulate.Dataset

// Analyzer computes the paper's §4–§6 analyses over a dataset.
type Analyzer = analysis.Analyzer

// Experiment regenerates one paper table or figure.
type Experiment = analysis.Experiment

// Artifact is a rendered experiment result.
type Artifact = report.Artifact

// Store is a day-partitioned handover trace store.
type Store = trace.Store

// Record is one captured handover event.
type Record = trace.Record

// DistrictProfile is the per-district drill-down summary.
type DistrictProfile = analysis.DistrictProfile

// LegacyDependence ranks districts by vertical-handover reliance.
type LegacyDependence = analysis.LegacyDependence

// DefaultConfig returns the calibrated laptop-scale configuration for the
// given seed (20k UEs, 28 days, 320 districts, 2.4k sites).
func DefaultConfig(seed uint64) Config { return simulate.DefaultConfig(seed) }

// Generate runs a full synthetic campaign.
func Generate(cfg Config) (*Dataset, error) { return simulate.Generate(cfg) }

// Load reopens a campaign directory produced by Generate with a file
// store and a saved manifest (see cmd/telcogen).
func Load(dir string) (*Dataset, error) { return simulate.Load(dir) }

// NewAnalyzer wraps a dataset for analysis.
func NewAnalyzer(ds *Dataset) (*Analyzer, error) { return analysis.New(ds) }

// NewMemStore returns an in-memory trace store.
func NewMemStore() Store { return trace.NewMemStore() }

// NewFileStore returns (creating if needed) a directory-backed store.
func NewFileStore(dir string) (Store, error) { return trace.NewFileStore(dir) }

// Experiments lists every registered experiment in paper order.
func Experiments() []Experiment { return analysis.Experiments() }

// ExperimentIDs lists experiment IDs alphabetically.
func ExperimentIDs() []string { return analysis.IDs() }

// RunExperiment executes one experiment by ID and renders it to w.
func RunExperiment(id string, a *Analyzer, w io.Writer) error {
	e, ok := analysis.ByID(id)
	if !ok {
		return fmt.Errorf("telcolens: unknown experiment %q (known: %v)", id, analysis.IDs())
	}
	art, err := e.Run(a)
	if err != nil {
		return err
	}
	return art.Render(w)
}

// RunAll executes every experiment, rendering each artifact to w.
func RunAll(a *Analyzer, w io.Writer) error { return analysis.RunAll(a, w) }
