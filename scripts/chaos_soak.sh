#!/usr/bin/env bash
# Scrub/quarantine soak: the end-to-end durability acceptance check.
#
# 1. Generate a reference campaign and record its clean report.
# 2. telcofsck must pass the pristine store and fail a copy with a
#    bit-flipped partition and a truncated one.
# 3. telcofsck -scrub must quarantine exactly the damaged partitions
#    (into quarantine/ with a QUARANTINE.json log) and leave a store
#    that then audits clean.
# 4. telcoserve -scrub on a damaged copy must come up serving the
#    surviving days in declared degraded mode: /healthz says
#    "degraded" and names the quarantined days, /query still answers
#    from the intact days, and a checkpoint round-trips across a
#    graceful SIGTERM restart.
#
# Tunables (env): UES, DAYS, SHARDS, ADDR; RACE=1 builds with the race
# detector (the CI chaos job does).
set -euo pipefail

UES=${UES:-2000}
DAYS=${DAYS:-4}
SHARDS=${SHARDS:-2}
ADDR=${ADDR:-127.0.0.1:8493}
RACE=${RACE:-0}

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  status=$?
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  # On failure, preserve the evidence (logs, audit output, quarantine
  # dirs) for the CI artifact upload before the workdir vanishes.
  if [ "$status" -ne 0 ] && [ -n "${CHAOS_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$CHAOS_ARTIFACT_DIR"
    cp "$WORK"/*.log "$WORK"/*.txt "$CHAOS_ARTIFACT_DIR"/ 2>/dev/null || true
    for d in "${DAMAGED:-}" "${SERVED:-}"; do
      [ -n "$d" ] && [ -d "$d/quarantine" ] &&
        cp -r "$d/quarantine" "$CHAOS_ARTIFACT_DIR/$(basename "$d")-quarantine" || true
    done
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

BIN=$WORK/bin
mkdir -p "$BIN"
BUILD_FLAGS=()
[ "$RACE" = "1" ] && BUILD_FLAGS+=(-race)
go build ${BUILD_FLAGS[@]+"${BUILD_FLAGS[@]}"} -o "$BIN" \
  ./cmd/telcogen ./cmd/telcofsck ./cmd/telcoserve

SRC=$WORK/src
echo "== generating reference campaign ($UES UEs x $DAYS days, $SHARDS shards)"
"$BIN/telcogen" -out "$SRC" -ues "$UES" -days "$DAYS" -shards "$SHARDS"

echo "== telcofsck must pass the pristine store"
"$BIN/telcofsck" -data "$SRC"

# Damage a copy: flip one byte mid-file in a day-1 partition and chop
# the tail off a day-2 partition. Day 0 stays intact.
DAMAGED=$WORK/damaged
cp -r "$SRC" "$DAMAGED"
FLIP=$(ls "$DAMAGED"/ho_day_001*.tlho | head -1)
TRUNC=$(ls "$DAMAGED"/ho_day_002*.tlho | head -1)
SIZE=$(wc -c <"$FLIP")
printf '\xff' | dd of="$FLIP" bs=1 seek=$((SIZE / 2)) conv=notrunc 2>/dev/null
truncate -s $(($(wc -c <"$TRUNC") - 37)) "$TRUNC"

SERVED=$WORK/served
cp -r "$DAMAGED" "$SERVED"

echo "== telcofsck must flag the damaged store"
if "$BIN/telcofsck" -data "$DAMAGED" >"$WORK/fsck_audit.txt" 2>&1; then
  echo "fsck passed a corrupt store" >&2
  cat "$WORK/fsck_audit.txt" >&2
  exit 1
fi
grep -q "day 1 shard" "$WORK/fsck_audit.txt" || {
  echo "audit did not flag the flipped day-1 partition" >&2
  cat "$WORK/fsck_audit.txt" >&2
  exit 1
}

echo "== telcofsck -scrub must quarantine the damage and leave a clean store"
"$BIN/telcofsck" -data "$DAMAGED" -scrub >"$WORK/fsck_scrub.txt"
[ -f "$DAMAGED/quarantine/$(basename "$FLIP")" ] || {
  echo "flipped partition not moved to quarantine/" >&2
  ls -la "$DAMAGED/quarantine" >&2 || true
  exit 1
}
[ -f "$DAMAGED/quarantine/$(basename "$TRUNC")" ] || {
  echo "truncated partition not moved to quarantine/" >&2
  exit 1
}
grep -q '"class"' "$DAMAGED/quarantine/QUARANTINE.json" || {
  echo "quarantine log missing classification" >&2
  cat "$DAMAGED/quarantine/QUARANTINE.json" >&2
  exit 1
}
"$BIN/telcofsck" -data "$DAMAGED"   # post-scrub audit must be clean

serve() {
  "$BIN/telcoserve" -data "$SERVED" -addr "$ADDR" -scrub -poll 500ms \
    -checkpoint "$WORK/state.tlckpt" -drain 10s \
    >>"$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  disown "$SERVE_PID" 2>/dev/null || true
}

wait_http() { # path, attempts
  for _ in $(seq 1 "$2"); do
    curl -fsS "http://$ADDR$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "daemon did not answer $1" >&2
  cat "$WORK/serve.log" >&2
  return 1
}

echo "== telcoserve -scrub on the damaged copy must serve degraded"
serve
wait_http /healthz 100
# The snapshot may trail the startup scrub by a poll; wait for it.
for _ in $(seq 1 100); do
  HEALTH=$(curl -fsS "http://$ADDR/healthz")
  echo "$HEALTH" | grep -q '"degraded"' && break
  sleep 0.2
done
echo "$HEALTH" | grep -q '"degraded"' || {
  echo "healthz never declared degraded: $HEALTH" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
echo "$HEALTH" | grep -q '"quarantined_days"' || {
  echo "healthz does not name quarantined days: $HEALTH" >&2
  exit 1
}

echo "== surviving days must still answer queries"
for ue in 3 42; do
  curl -fsS "http://$ADDR/query?ue=$ue&limit=100&format=csv" >"$WORK/q.csv"
  [ -s "$WORK/q.csv" ] || { echo "empty query response for ue=$ue" >&2; exit 1; }
done

echo "== graceful SIGTERM restart must resume from the checkpoint"
for _ in $(seq 1 100); do
  [ -s "$WORK/state.tlckpt" ] && break
  sleep 0.2
done
[ -s "$WORK/state.tlckpt" ] || {
  echo "no checkpoint written" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "daemon exited non-zero on SIGTERM" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
SERVE_PID=""
serve
wait_http /healthz 100
grep -q "resumed checkpoint: true" "$WORK/serve.log" || {
  echo "restart did not resume from the checkpoint" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" || true
SERVE_PID=""

echo "== chaos soak OK: scrub quarantined the damage, degraded serving and checkpoint resume verified"
