#!/usr/bin/env bash
# Streaming-ingest soak: the end-to-end crash-recovery acceptance check.
#
# 1. Generate a reference campaign with the batch generator (telcogen).
# 2. Start telcoserve -ingest on an empty directory and replay the
#    campaign into it live with telcoload at a fixed rate.
# 3. kill -9 the daemon mid-stream, restart it (WAL replay + debris
#    removal), and let the replayer — which retries with the same
#    sequence numbers — finish.
# 4. Hammer GET /query the whole time (snapshot-isolated reads racing
#    ingest seals and the kill window), then cross-check several per-UE
#    slices: the indexed execution must be byte-identical to the
#    noindex scan fallback over the fully sealed store.
# 5. Assert the streamed directory is byte-identical to the reference:
#    every partition and the campaign manifest, plus every rendered
#    analysis artifact (telcoreport output).
#
# With NETCHAOS=1 the replay additionally routes through telcoload's
# in-process netchaos proxy, which injects connection resets and
# latency at the TCP level the whole time (on top of the kill -9
# window) — the byte-identity assertions are unchanged, proving the
# retry/breaker/idempotency stack absorbs an adversarial wire.
#
# Tunables (env): UES, DAYS, SHARDS, RATE, ADDR, NETCHAOS,
# CHAOS_FAULTS, CHAOS_SEED; RACE=1 builds all four binaries with the
# race detector (the CI soak job does).
set -euo pipefail

UES=${UES:-2000}
DAYS=${DAYS:-4}
SHARDS=${SHARDS:-2}
RATE=${RATE:-25000}
ADDR=${ADDR:-127.0.0.1:8492}
RACE=${RACE:-0}
NETCHAOS=${NETCHAOS:-0}
# Default plan: a reset every few hundred chunks in each direction plus
# steady small latency — frequent enough that every soak run exercises
# mid-request retries, mild enough that the retry budget always wins.
CHAOS_FAULTS=${CHAOS_FAULTS:-reset:up:after=50:every=311,reset:down:after=80:every=389,latency:up:every=7:delay=1ms:jitter=2ms}
CHAOS_SEED=${CHAOS_SEED:-7}

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
SERVE_PID=""
LOAD_PID=""
QUERY_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  [ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null || true
  [ -n "$QUERY_PID" ] && kill "$QUERY_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

BIN=$WORK/bin
mkdir -p "$BIN"
BUILD_FLAGS=()
[ "$RACE" = "1" ] && BUILD_FLAGS+=(-race)
go build ${BUILD_FLAGS[@]+"${BUILD_FLAGS[@]}"} -o "$BIN" ./cmd/telcogen ./cmd/telcoload ./cmd/telcoserve ./cmd/telcoreport

SRC=$WORK/src
LIVE=$WORK/live
echo "== generating reference campaign ($UES UEs x $DAYS days, $SHARDS shards)"
"$BIN/telcogen" -out "$SRC" -ues "$UES" -days "$DAYS" -shards "$SHARDS"
"$BIN/telcoreport" -data "$SRC" -out "$WORK/report_src.txt"

serve() {
  "$BIN/telcoserve" -data "$LIVE" -addr "$ADDR" -ingest -poll 500ms \
    >>"$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
  disown "$SERVE_PID" 2>/dev/null || true
}

wait_http() { # path, attempts
  for _ in $(seq 1 "$2"); do
    curl -fsS "http://$ADDR$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "daemon did not answer $1" >&2
  cat "$WORK/serve.log" >&2
  return 1
}

stat_field() { # numeric field name from /ingest/stats
  curl -fsS "http://$ADDR/ingest/stats" 2>/dev/null |
    grep -o "\"$1\": *[0-9]*" | grep -o '[0-9]*$' || echo 0
}

echo "== starting telcoserve -ingest on empty $LIVE"
serve
wait_http /healthz 50

LOAD_FLAGS=(-src "$SRC" -url "http://$ADDR" -rate "$RATE")
if [ "$NETCHAOS" = "1" ]; then
  echo "== netchaos leg: replaying through the chaos proxy ($CHAOS_FAULTS, seed $CHAOS_SEED)"
  LOAD_FLAGS+=(-chaos-faults "$CHAOS_FAULTS" -chaos-seed "$CHAOS_SEED" \
    -retry-for 5m -max-backoff 2s)
fi

echo "== streaming the campaign live (rate $RATE rec/s)"
"$BIN/telcoload" "${LOAD_FLAGS[@]}" \
  >"$WORK/load.log" 2>&1 &
LOAD_PID=$!

# Concurrent-query leg: ad-hoc slices race the ingest seals, the
# refresh swaps, and the kill -9 window. 503s (campaign pending,
# daemon down) and connection failures are expected and tolerated —
# the daemon just must never serve a torn result or crash.
(
  i=0
  while :; do
    curl -s --max-time 2 \
      "http://$ADDR/query?ue=$((i % 200))&limit=20&format=csv" \
      >/dev/null 2>&1 || true
    i=$((i + 1))
    sleep 0.05
  done
) &
QUERY_PID=$!

# Wait until records are demonstrably in flight, then murder the daemon.
for _ in $(seq 1 100); do
  [ "$(stat_field ingested_records)" -gt 5000 ] && break
  sleep 0.2
done
INGESTED=$(stat_field ingested_records)
if [ "$INGESTED" -le 0 ]; then
  echo "no records ingested before kill window" >&2
  cat "$WORK/serve.log" "$WORK/load.log" >&2
  exit 1
fi
echo "== kill -9 mid-stream (after $INGESTED acknowledged records)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
sleep 1

echo "== restarting daemon (WAL replay)"
serve
wait_http /healthz 50

if ! wait "$LOAD_PID"; then
  echo "telcoload failed" >&2
  cat "$WORK/load.log" "$WORK/serve.log" >&2
  exit 1
fi
LOAD_PID=""

# All days must seal (telcoload already waits on its acks, but give the
# final seal a moment).
for _ in $(seq 1 50); do
  [ "$(stat_field sealed_days)" -eq "$DAYS" ] && break
  sleep 0.2
done
if [ "$(stat_field sealed_days)" -ne "$DAYS" ]; then
  echo "only $(stat_field sealed_days)/$DAYS days sealed" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi

kill "$QUERY_PID" 2>/dev/null || true
wait "$QUERY_PID" 2>/dev/null || true
QUERY_PID=""

# The serving snapshot may trail the last seal by one poll interval;
# wait until the daemon's query view covers every sealed day before
# cross-checking.
sleep 2

echo "== cross-checking indexed /query against the scan fallback"
for ue in 3 17 42 123; do
  curl -fsS "http://$ADDR/query?ue=$ue&limit=100000&format=csv" \
    >"$WORK/q_idx.csv"
  curl -fsS "http://$ADDR/query?ue=$ue&limit=100000&format=csv&noindex=1" \
    >"$WORK/q_scan.csv"
  if ! cmp -s "$WORK/q_idx.csv" "$WORK/q_scan.csv"; then
    echo "QUERY MISMATCH: ue=$ue indexed vs noindex" >&2
    diff "$WORK/q_idx.csv" "$WORK/q_scan.csv" | head >&2 || true
    exit 1
  fi
done

echo "== comparing streamed campaign against the batch reference"
fail=0
for f in "$SRC"/ho_*.tlho "$SRC"/manifest.json; do
  name=$(basename "$f")
  if ! cmp -s "$f" "$LIVE/$name"; then
    echo "MISMATCH: $name" >&2
    fail=1
  fi
done
for f in "$LIVE"/ho_*.tlho; do
  name=$(basename "$f")
  [ -f "$SRC/$name" ] || { echo "UNEXPECTED: $name" >&2; fail=1; }
done
[ "$fail" -eq 0 ] || exit 1

echo "== comparing rendered artifacts"
"$BIN/telcoreport" -data "$LIVE" -out "$WORK/report_live.txt"
diff -u "$WORK/report_src.txt" "$WORK/report_live.txt"

if [ "$NETCHAOS" = "1" ]; then
  echo "== wire damage absorbed:"
  grep -E '^telcoload: (client|chaos):' "$WORK/load.log" || true
fi
echo "== soak OK: $(stat_field ingested_records) records streamed, $DAYS days sealed, artifacts byte-identical"
