#!/bin/sh
# doccheck.sh: godoc coverage gate for the repo's public surfaces.
#
# Every exported top-level declaration — funcs, methods on exported
# receivers (methods on unexported types never render in godoc), types,
# and single-declaration vars/consts — in the telcolens facade and in
# internal/trace (the storage layer other packages program against)
# must carry a doc comment. Runs offline as part of `make lint`.
set -eu
cd "$(dirname "$0")/.."

files="telcolens.go"
for f in internal/trace/*.go; do
    case "$f" in
    *_test.go) ;;
    *) files="$files $f" ;;
    esac
done

fail=0
for f in $files; do
    out=$(awk '
        /^\/\// { prevcomment = 1; next }
        /^func \([A-Za-z0-9_]+ \*?[A-Z][A-Za-z0-9_]*\) [A-Z]/ {
            if (!prevcomment) print FILENAME ":" FNR ": " $0
            prevcomment = 0; next
        }
        /^(func|type|var|const) [A-Z]/ {
            if (!prevcomment) print FILENAME ":" FNR ": " $0
            prevcomment = 0; next
        }
        { prevcomment = 0 }
    ' "$f")
    if [ -n "$out" ]; then
        echo "$out"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "doccheck: the exported declarations above lack doc comments" >&2
    exit 1
fi
echo "doccheck: ok"
