// Hofmodel: the paper's §6.3 modeling workflow as a library user would run
// it — build the sector-day dataset, test the HO-type effect with ANOVA,
// then quantify it with the univariate and full-covariate regressions
// (Tables 4 and 5).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"telcolens"
)

func main() {
	cfg := telcolens.DefaultConfig(23)
	cfg.UEs = 5000
	cfg.Days = 10
	// Boost 2G fallback so the rare 2G stratum has enough sector-days for
	// a stable coefficient at this small scale (see DESIGN.md).
	cfg.RareBoost = 100

	fmt.Println("Generating campaign for HOF modeling (2G stratum boosted x100)...")
	ds, err := telcolens.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := telcolens.NewAnalyzer(ds)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Step 1: the univariate model via the library API.
	m, err := a.FitHOTypeModel(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nUnivariate model: log(HOF rate %) ~ HO type")
	for i, name := range m.Names {
		fmt.Printf("  %-28s coef=%8.3f  se=%.4f  p=%.3g\n", name, m.Coef[i], m.StdErr[i], m.PValue[i])
	}
	for i, name := range m.Names {
		switch name {
		case "HO type: 4G/5G-NSA->3G":
			fmt.Printf("  → handovers to 3G multiply the failure rate by ≈%.0fx (paper: ≈167x)\n", math.Exp(m.Coef[i]))
		case "HO type: 4G/5G-NSA->2G":
			fmt.Printf("  → handovers to 2G multiply the failure rate by ≈%.0fx (paper: ≈916x)\n", math.Exp(m.Coef[i]))
		}
	}

	// Step 2: the full artifacts (ANOVA + Table 5) as rendered reports.
	for _, id := range []string{"anova", "table5"} {
		if err := telcolens.RunExperiment(ctx, id, a, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
