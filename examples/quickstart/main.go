// Quickstart: generate a small synthetic campaign and regenerate two of
// the paper's headline results — the handover mix per device type
// (Table 2) and the handover duration distributions (Figure 8).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"telcolens"
)

func main() {
	cfg := telcolens.DefaultConfig(7)
	cfg.UEs = 2500
	cfg.Days = 7

	fmt.Println("Generating a 7-day campaign with 2,500 UEs (4 shards/day)...")
	ds, err := telcolens.Generate(cfg, telcolens.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated %d handovers across %d sectors in %d districts.\n\n",
		ds.TotalHandovers(), len(ds.Network.Sectors), len(ds.Country.Districts))

	a, err := telcolens.NewAnalyzer(ds)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range []string{"table2", "fig8"} {
		if err := telcolens.RunExperiment(ctx, id, a, os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("Run cmd/telcoreport to regenerate every table and figure.")
}
