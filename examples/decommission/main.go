// Decommission: the operator workflow motivated by the paper's §5.2 and
// §8 takeaways — ranking districts by their dependence on legacy RATs to
// build a realistic 3G/2G sunset plan. Districts where 4G/5G-capable
// devices still execute many vertical handovers need coverage or device
// migration work before their legacy layers can be switched off.
package main

import (
	"context"
	"fmt"
	"log"

	"telcolens"
)

func main() {
	cfg := telcolens.DefaultConfig(11)
	cfg.UEs = 4000
	cfg.Days = 7

	fmt.Println("Generating campaign for decommissioning analysis...")
	ds, err := telcolens.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := telcolens.NewAnalyzer(ds)
	if err != nil {
		log.Fatal(err)
	}

	// Rank districts by vertical-handover share (ignore tiny samples).
	ranked, err := a.RankLegacyDependence(context.Background(), 0, 50)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %-10s %-12s %-10s %s\n", "District", "HOs", "Vertical%", "Density", "Sunset phase")
	fmt.Println("--------------------------------------------------------------------")
	var phase1, phase2, phase3 int
	for i, d := range ranked {
		var phase string
		switch {
		case d.VerticalPct < 1:
			phase = "1 (immediate)"
			phase1++
		case d.VerticalPct < 10:
			phase = "2 (after re-farming)"
			phase2++
		default:
			phase = "3 (needs 4G/5G build-out)"
			phase3++
		}
		if i < 12 || d.VerticalPct < 1 && i < 15 {
			fmt.Printf("%-12s %-10d %-12.2f %-10.0f %s\n", d.Name, d.HOs, d.VerticalPct, d.Density, phase)
		}
	}
	fmt.Printf("\nSunset plan over %d districts with enough traffic:\n", len(ranked))
	fmt.Printf("  phase 1 (vertical <1%%):   %d districts — legacy layers can switch off now\n", phase1)
	fmt.Printf("  phase 2 (vertical <10%%):  %d districts — decommission after spectrum re-farming\n", phase2)
	fmt.Printf("  phase 3 (vertical >=10%%): %d districts — still depend on 3G for coverage\n", phase3)

	// Drill into the most dependent district.
	if len(ranked) > 0 {
		p, err := a.DistrictProfile(context.Background(), ranked[0].DistrictID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nMost 3G-dependent district: %s (%s)\n", p.Name, p.Region)
		fmt.Printf("  population %d over %.0f km² (%.1f /km²)\n", p.Population, p.AreaKm2, p.Density)
		fmt.Printf("  %d sites / %d sectors; %d HOs (%.2f%% vertical to 3G, %.3f%% to 2G)\n",
			p.Sites, p.Sectors, p.HOs, p.Share3G*100, p.Share2G*100)
		fmt.Printf("  HOF rate %.3f%% — vertical handovers are the paper's main HOF driver (§6.3)\n", p.HOFRate*100)
	}
}
