// Incremental analysis walkthrough: the growing-campaign lifecycle end
// to end. A 5-day campaign is generated into a file store, fully
// analyzed, and the warm analysis state is checkpointed. Two more days
// land (the daily telco feed), the checkpoint is resumed and Refreshed —
// scanning only the new partitions, as the scan metrics prove — and an
// experiment re-renders from the merged state, byte-identical to what a
// cold full scan would produce.
//
// The same protocol runs continuously in cmd/telcoserve:
//
//	telcogen -out ./campaign -days 5 && telcoserve -data ./campaign
//	telcogen -out ./campaign -append 1    # served artifacts refresh
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"telcolens"
)

func main() {
	dir, err := os.MkdirTemp("", "telcolens-incremental-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := telcolens.NewFileStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := telcolens.DefaultConfig(7)
	cfg.UEs = 2500
	cfg.Days = 5
	cfg.Store = store

	fmt.Println("Day 0: generating the first 5 days of the campaign...")
	ds, err := telcolens.Generate(cfg, telcolens.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	a, err := telcolens.NewAnalyzer(ds)
	if err != nil {
		log.Fatal(err)
	}
	if err := telcolens.RunExperiment(ctx, "table2", a, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Full scan so far: %s\n\n", a.ScanStats().Summary())

	// Persist the warm analysis state. In production this is a file next
	// to the store; telcoserve keeps it in memory across refreshes.
	var ckpt bytes.Buffer
	if err := a.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Checkpointed %d bytes of mergeable collector state.\n\n", ckpt.Len())

	fmt.Println("Two more capture days land (telcogen -append 2)...")
	if err := ds.GenerateDays(2); err != nil {
		log.Fatal(err)
	}

	// Resume the checkpoint against the grown campaign and refresh:
	// only the new days' partitions are scanned and merged.
	resumed, err := telcolens.ResumeAnalyzer(ds, &ckpt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := resumed.Refresh(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Refresh merged %d partitions (full rescan: %v) to cover %d days.\n",
		res.PartitionsScanned, res.FullRescan, res.Days)
	fmt.Printf("Refresh scan cost: %s\n\n", resumed.ScanStats().Summary())

	if err := telcolens.RunExperiment(ctx, "table2", resumed, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("The refreshed artifact is byte-identical to a cold full rescan;")
	fmt.Println("see TestIncrementalEqualsFull and DESIGN.md §4 for the contract.")
}
