// Streaming ingest walkthrough: the live-feed lifecycle end to end, in
// one process. A reference campaign is batch-generated, then
// re-delivered as a live stream — per-day order shuffled, cut into
// request-sized batches, sent over HTTP with the retrying ingest
// client — into an ingest service mounted on a local listener. Sealed
// days come out as ordinary v2 partitions, byte-identical to the batch
// generator's (the canonical seal sort makes sealed bytes a function of
// the record multiset alone), and the streamed directory loads and
// analyzes like any other campaign.
//
// The same wiring runs as daemons:
//
//	telcoserve -data ./live -addr :8080 -ingest
//	telcoload  -src ./campaign -url http://localhost:8080 -rate 50000
//
// scripts/ingest_soak.sh drives that pair through a kill -9 mid-stream
// and asserts byte-identical artifacts after WAL replay; see DESIGN.md
// §4b for the WAL, seal and backpressure contracts.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"

	"telcolens"
	"telcolens/internal/ingest"
	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

func main() {
	src, err := os.MkdirTemp("", "telcolens-stream-src-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(src)
	dst, err := os.MkdirTemp("", "telcolens-stream-dst-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dst)

	// The reference: a small sharded campaign from the batch generator.
	store, err := trace.NewFileStore(src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := telcolens.DefaultConfig(42)
	cfg.UEs = 800
	cfg.Days = 2
	cfg.Shards = 2
	cfg.Store = store
	fmt.Println("Generating the 2-day reference campaign...")
	ds, err := telcolens.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SaveManifest(src); err != nil {
		log.Fatal(err)
	}
	meta, err := simulate.LoadMeta(src)
	if err != nil {
		log.Fatal(err)
	}

	// The live target: an uninitialized ingest service behind HTTP.
	svc, err := ingest.Open(dst, ingest.Options{
		OnSeal: func(day int) { fmt.Printf("  sealed day %d\n", day) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Declare the campaign: zero landed days, a 2-day study window.
	// telcoserve -ingest serves 503s until this descriptor arrives.
	streamMeta := *meta
	streamMeta.Config.Days = 0
	streamMeta.Config.WindowDays = cfg.Days
	streamMeta.DayStats = nil
	client := &ingest.Client{Base: ts.URL, Stream: 1}
	if err := client.Init(context.Background(), &streamMeta); err != nil {
		log.Fatal(err)
	}

	// Re-deliver each day shuffled and batched, then mark it complete;
	// the service seals whole days, in order, through the write path the
	// batch generator uses. Client.Send retries idempotently on 429/503.
	rng := rand.New(rand.NewSource(7))
	for day := 0; day < cfg.Days; day++ {
		recs := readDay(src, day)
		fmt.Printf("Streaming day %d: %d records, shuffled, 512/batch...\n", day, recs.Len())
		perm := rng.Perm(recs.Len())
		for lo := 0; lo < len(perm); lo += 512 {
			hi := min(lo+512, len(perm))
			idx := make([]int32, 0, hi-lo)
			for _, p := range perm[lo:hi] {
				idx = append(idx, int32(p))
			}
			batch := new(trace.ColumnBatch)
			batch.AppendGather(recs, idx)
			if _, err := client.Send(context.Background(), batch); err != nil {
				log.Fatal(err)
			}
		}
		if err := client.DayDone(context.Background(), day, meta.DayStats[day]); err != nil {
			log.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ingest stats: %d records in, %d days sealed, manifest gen %d.\n\n",
		st.IngestedRecords, st.SealedDays, st.ManifestGen)

	// The streamed directory is now an ordinary campaign: byte-identical
	// partitions, loadable and analyzable with no streaming awareness.
	for _, pat := range []string{"ho_*.tlho", "manifest.json"} {
		files, _ := filepath.Glob(filepath.Join(src, pat))
		for _, f := range files {
			a, _ := os.ReadFile(f)
			b, _ := os.ReadFile(filepath.Join(dst, filepath.Base(f)))
			if string(a) != string(b) {
				log.Fatalf("%s differs between batch and streamed campaign", filepath.Base(f))
			}
		}
	}
	fmt.Println("Every partition and the campaign manifest are byte-identical")
	fmt.Println("to the batch-generated reference. Analyzing the streamed copy:")
	streamed, err := telcolens.Load(dst)
	if err != nil {
		log.Fatal(err)
	}
	a, err := telcolens.NewAnalyzer(streamed)
	if err != nil {
		log.Fatal(err)
	}
	if err := telcolens.RunExperiment(context.Background(), "table1", a, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// readDay reads one study day's records back out of the reference
// campaign, across all shards.
func readDay(dir string, day int) *trace.ColumnBatch {
	fs, err := trace.NewFileStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := fs.Partitions()
	if err != nil {
		log.Fatal(err)
	}
	cb := new(trace.ColumnBatch)
	var rec trace.Record
	for _, p := range parts {
		if p.Day != day {
			continue
		}
		it, err := fs.OpenPartition(p.Day, p.Shard)
		if err != nil {
			log.Fatal(err)
		}
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				break
			}
			cb.AppendRecord(&rec)
		}
		it.Close()
	}
	return cb
}
