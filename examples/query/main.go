// Ad-hoc query walkthrough: generate a campaign, pick one subscriber,
// and serve their record slice two ways — straight through the query
// engine, and over HTTP the way telcoserve mounts it — watching the
// index do its work in the prune counters.
//
// Every partition the generator writes gets a .tlix sidecar: partition-
// and block-level bloom filters over UE/TAC/sector plus per-block time
// extents. A single-UE query then prunes in three stages (manifest zone
// maps + UE-hash sharding, partition blooms, per-block allow-lists) and
// decodes a handful of blocks where a scan would decode a campaign; the
// metrics on every result show exactly how many. Forcing NoIndex runs
// the same query as a full scan-and-filter — byte-identical rows, just
// slower — which is also the cross-check CI runs (TestQueryMatchesScan).
//
// The same endpoint runs as a daemon:
//
//	telcoserve -data ./campaign -addr :8480
//	curl 'http://localhost:8480/query?ue=1234&agg=1'
//	curl 'http://localhost:8480/stats'   # cumulative prune counters
//
// See DESIGN.md §6 for the index format and the snapshot-isolation and
// cache-invalidation contracts.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"telcolens"
	"telcolens/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "telcolens-query-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A small sharded campaign on disk; the file store writes a .tlix
	// index sidecar next to every partition as a side effect. Small
	// blocks (512 records vs the 4096 default) give the block-level
	// pruning something to bite on at this toy scale.
	store, err := trace.NewFileStoreOpts(dir, trace.FileStoreOptions{BlockRecords: 512})
	if err != nil {
		log.Fatal(err)
	}
	cfg := telcolens.DefaultConfig(42)
	cfg.UEs = 2000
	cfg.Days = 7
	cfg.Shards = 4
	cfg.Store = store
	fmt.Println("Generating a 7-day campaign (2000 UEs, 4 shards/day)...")
	if _, err := telcolens.Generate(cfg); err != nil {
		log.Fatal(err)
	}

	// Pin the current manifest generation. Queries against this view are
	// snapshot-isolated: partitions are write-once, so even if a live
	// ingester kept appending days, this view would keep answering from
	// exactly the generation it captured.
	eng := telcolens.NewQueryEngine(store)
	view, err := telcolens.NewQueryView(store)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a subscriber that actually handed over.
	it, err := store.OpenPartition(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	var probe telcolens.Record
	if ok, err := it.Next(&probe); err != nil || !ok {
		log.Fatal("campaign has no records")
	}
	it.Close()
	ue := probe.UE

	// One subscriber's full week, with the per-slice aggregate.
	ctx := context.Background()
	res, _, err := eng.Query(ctx, view, telcolens.QueryParams{UE: &ue, Aggregate: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUE %d: %d handover records across the week. First three:\n", ue, len(res.Rows))
	for _, r := range res.Rows[:min(3, len(res.Rows))] {
		fmt.Printf("  ts=%d  %s -> %s  sector %d -> %d  (%s)\n",
			r.Timestamp, r.SourceRAT, r.TargetRAT, r.Source, r.Target, r.Result)
	}
	a := res.Aggregate
	fmt.Printf("Aggregate: %d HOs (%d horizontal, %d vertical), %d failures, ping-pongs %v\n",
		a.Handovers, a.Horizontal, a.Vertical, a.Failures, a.PingPongs)

	// The efficiency story is in the metrics: the indexed execution
	// decodes a few blocks; the forced scan decodes the campaign.
	scan := telcolens.QueryParams{UE: &ue, Aggregate: true, NoIndex: true}
	full, _, err := eng.Query(ctx, view, scan)
	if err != nil {
		log.Fatal(err)
	}
	im, sm := res.Metrics, full.Metrics
	fmt.Printf("\n             %12s  %12s\n", "indexed", "full scan")
	fmt.Printf("partitions   %6d/%-5d  %6d/%-5d   (scanned/considered)\n",
		im.PartitionsScanned, im.PartitionsConsidered, sm.PartitionsScanned, sm.PartitionsConsidered)
	fmt.Printf("blocks       %12d  %12d   (decoded)\n", im.BlocksDecoded, sm.BlocksDecoded)
	fmt.Printf("rows         %12d  %12d   (scanned for %d matches)\n",
		im.RowsScanned, sm.RowsScanned, len(res.Rows))

	// Same rows either way — the index only skips work, never answers.
	ij, _ := json.Marshal(res.Rows)
	sj, _ := json.Marshal(full.Rows)
	if string(ij) != string(sj) {
		log.Fatal("indexed and scan results differ")
	}
	fmt.Println("\nIndexed rows are byte-identical to the scan fallback.")

	// Where the blooms really earn their bytes: a rare device model.
	// TAC is not the sharding key, so stage-1 pruning can't help — but
	// the handful of subscribers carrying a rare model hash to a few
	// shards and cluster in a few blocks, and the UE/TAC filters skip
	// everything else. Find the rarest TAC in one partition and slice it.
	rare := rareTAC(store)
	p := telcolens.QueryParams{TAC: &rare, Limit: 100000}
	idxRes, _, err := eng.Query(ctx, view, p)
	if err != nil {
		log.Fatal(err)
	}
	p.NoIndex = true
	scanRes, _, err := eng.Query(ctx, view, p)
	if err != nil {
		log.Fatal(err)
	}
	im, sm = idxRes.Metrics, scanRes.Metrics
	fmt.Printf("\nRare device TAC %d (%d records campaign-wide):\n", rare, len(idxRes.Rows))
	fmt.Printf("  indexed:   %d partitions scanned, %d blocks decoded, %d rows touched\n",
		im.PartitionsScanned, im.BlocksDecoded, im.RowsScanned)
	fmt.Printf("  full scan: %d partitions scanned, %d blocks decoded, %d rows touched\n",
		sm.PartitionsScanned, sm.BlocksDecoded, sm.RowsScanned)

	// The HTTP shape telcoserve serves: mount a handler over the same
	// engine and curl it. X-Cache flips to "hit" on the repeat because
	// results are memoized per (query, manifest generation).
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		var p telcolens.QueryParams
		uq := r.URL.Query()
		if s := uq.Get("ue"); s != "" {
			var id uint32
			fmt.Sscanf(s, "%d", &id)
			u := trace.UEID(id)
			p.UE = &u
		}
		out, hit, err := eng.Query(r.Context(), view, p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if hit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		json.NewEncoder(w).Encode(out)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/query?ue=%d", ts.URL, ue))
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET /query?ue=%d  ->  %d bytes, X-Cache: %s\n",
			ue, len(body), resp.Header.Get("X-Cache"))
	}
	cs := eng.CacheStats()
	fmt.Printf("Engine cache: %d hits, %d misses, %d entries.\n", cs.Hits, cs.Misses, cs.Entries)
}

// rareTAC returns the least frequent device TAC observed in partition
// (0, 0) — a stand-in for "a device model worth drilling into".
func rareTAC(store telcolens.Store) uint32 {
	it, err := store.OpenPartition(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	counts := make(map[uint32]int)
	var rec telcolens.Record
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		counts[uint32(rec.TAC)]++
	}
	var rare uint32
	best := 1 << 30
	for tac, n := range counts {
		if n < best || (n == best && tac < rare) {
			rare, best = tac, n
		}
	}
	return rare
}
