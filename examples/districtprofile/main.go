// Districtprofile: geodemographic drill-down (paper §4.3, §5.1) — compare
// the capital's dense urban core against the least-populated remote
// district: deployment density, handover volume, vertical fallback and
// failure rates, plus the inferred-vs-census population check.
package main

import (
	"context"
	"fmt"
	"log"

	"telcolens"
)

func main() {
	cfg := telcolens.DefaultConfig(31)
	cfg.UEs = 5000
	cfg.Days = 7

	fmt.Println("Generating campaign for district profiling...")
	ds, err := telcolens.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := telcolens.NewAnalyzer(ds)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Locate the two landmark districts the paper singles out.
	capitalID, remoteID := -1, -1
	minDensity := 1e18
	for _, d := range ds.Country.Districts {
		if d.CapitalCenter {
			capitalID = d.ID
		}
		if d.Density() < minDensity {
			minDensity = d.Density()
			remoteID = d.ID
		}
	}

	show := func(id int, label string) *telcolens.DistrictProfile {
		p, err := a.DistrictProfile(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %s (%s region)\n", label, p.Name, p.Region)
		fmt.Printf("  residents:        %d over %.0f km² (%.0f /km²)\n", p.Population, p.AreaKm2, p.Density)
		fmt.Printf("  deployment:       %d sites, %d sectors (%.1f sectors/km²)\n",
			p.Sites, p.Sectors, float64(p.Sectors)/p.AreaKm2)
		fmt.Printf("  handovers:        %d total, %.1f per km² per day\n", p.HOs, p.DailyHOsKm2)
		fmt.Printf("  HO mix:           %.2f%% intra, %.2f%% →3G, %.4f%% →2G\n",
			p.ShareIntra*100, p.Share3G*100, p.Share2G*100)
		fmt.Printf("  HOF rate:         %.3f%%\n", p.HOFRate*100)
		fmt.Printf("  inferred UEs:     %d (night-time home detection)\n", p.InferredUEs)
		return p
	}

	capital := show(capitalID, "Capital urban core")
	remote := show(remoteID, "Least populated district")

	fmt.Printf("\nContrast (paper: 2.1M vs 60 HOs/km²/day — a >10⁴x gap):\n")
	if remote.DailyHOsKm2 > 0 {
		fmt.Printf("  HO density ratio capital/remote: %.0fx\n", capital.DailyHOsKm2/remote.DailyHOsKm2)
	}
	fmt.Printf("  vertical fallback: capital %.2f%% vs remote %.2f%% of HOs (paper: <0.1%% vs up to 58.1%%)\n",
		(capital.Share3G+capital.Share2G)*100, (remote.Share3G+remote.Share2G)*100)
}
