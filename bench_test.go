package telcolens

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"telcolens/internal/admission"
	"telcolens/internal/analysis"
	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/ingest"
	"telcolens/internal/simulate"
	"telcolens/internal/stats"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation against one shared campaign (generated once). Each benchmark
// measures the cost of recomputing the experiment from the cached scan;
// BenchmarkScan measures the one-pass trace scan itself.
var (
	benchOnce     sync.Once
	benchAnalyzer *Analyzer
	benchErr      error
)

func benchSetup(b *testing.B) *Analyzer {
	benchOnce.Do(func() {
		cfg := simulate.DefaultConfig(42)
		cfg.UEs = 6000
		cfg.Days = 14
		var ds *simulate.Dataset
		ds, benchErr = simulate.Generate(cfg)
		if benchErr != nil {
			return
		}
		benchAnalyzer, benchErr = analysis.New(ds)
		if benchErr != nil {
			return
		}
		_, benchErr = benchAnalyzer.Scan(context.Background()) // warm the shared scan
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchAnalyzer
}

func benchExperiment(b *testing.B, id string) {
	a := benchSetup(b)
	e, ok := analysis.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := e.Run(context.Background(), a)
		if err != nil {
			b.Fatal(err)
		}
		if err := art.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table and figure.

func BenchmarkTable1DatasetStats(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig3aDeploymentEvolution(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig3bRATUsage(b *testing.B)            { benchExperiment(b, "fig3b") }
func BenchmarkFig4aManufacturers(b *testing.B)       { benchExperiment(b, "fig4a") }
func BenchmarkFig4bRATSupport(b *testing.B)          { benchExperiment(b, "fig4b") }
func BenchmarkFig5PopulationInference(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6HOsPerKm2(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig7Temporal(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkTable2HOTypeDevice(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkFig8Duration(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9DistrictHOTypes(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10Mobility(b *testing.B)            { benchExperiment(b, "fig10") }
func BenchmarkFig11Manufacturer(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12HOFHourly(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkFig13HOFMobility(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14aCauses(b *testing.B)             { benchExperiment(b, "fig14a") }
func BenchmarkFig14bCauseDuration(b *testing.B)      { benchExperiment(b, "fig14b") }
func BenchmarkFig15CauseBreakdowns(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkTable3SectorDays(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkTable4UnivariateModel(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5FullModel(b *testing.B)          { benchExperiment(b, "table5") }
func BenchmarkTable6SummaryStats(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkTable7NoTwoG(b *testing.B)             { benchExperiment(b, "table7") }
func BenchmarkTable8QuantileReg(b *testing.B)        { benchExperiment(b, "table8") }
func BenchmarkTable9QuantileRegAll(b *testing.B)     { benchExperiment(b, "table9") }
func BenchmarkFig16HOFRateECDF(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkFig17VendorMix(b *testing.B)           { benchExperiment(b, "fig17") }
func BenchmarkFig18VendorAreaBoxplots(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkANOVAHOType(b *testing.B)              { benchExperiment(b, "anova") }
func BenchmarkPingPongExtension(b *testing.B)        { benchExperiment(b, "pingpong") }

// codecBenchStore materializes the shared bench campaign into a
// file-backed store with the requested codec, once per codec. The dirs
// are shared for the process lifetime and removed by TestMain.
var (
	codecBenchMu   sync.Mutex
	codecBenchDirs = map[string]string{}
)

// TestMain cleans up the campaign-sized bench store directories —
// os.MkdirTemp does not remove them at exit, and repeated bench runs
// would otherwise accumulate them in the system temp dir.
func TestMain(m *testing.M) {
	code := m.Run()
	codecBenchMu.Lock()
	for _, dir := range codecBenchDirs {
		os.RemoveAll(dir)
	}
	codecBenchMu.Unlock()
	os.Exit(code)
}

func codecBenchStore(b *testing.B, label string, opts trace.FileStoreOptions) trace.Store {
	a := benchSetup(b)
	codecBenchMu.Lock()
	defer codecBenchMu.Unlock()
	dir, ok := codecBenchDirs[label]
	if !ok {
		var err error
		dir, err = os.MkdirTemp("", "telcolens-bench-"+label+"-*")
		if err != nil {
			b.Fatal(err)
		}
		fs, err := trace.NewFileStoreOpts(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		parts, err := a.DS.Store.Partitions()
		if err != nil {
			b.Fatal(err)
		}
		var batch []Record
		for _, p := range parts {
			it, err := a.DS.Store.OpenPartition(p.Day, p.Shard)
			if err != nil {
				b.Fatal(err)
			}
			w, err := fs.AppendPartition(p.Day, p.Shard)
			if err != nil {
				b.Fatal(err)
			}
			bi := it.(trace.BatchIterator)
			bw := w.(trace.BatchWriter)
			for {
				n, err := bi.NextBatch(&batch)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					break
				}
				if err := bw.WriteBatch(batch[:n]); err != nil {
					b.Fatal(err)
				}
			}
			it.Close()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		codecBenchDirs[label] = dir
	}
	fs, err := trace.NewFileStoreOpts(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	return fs
}

// benchCountCollector is the cheapest possible collector, so raw scan
// benchmarks measure codec decode + iteration, not analysis state.
type benchCountCollector struct{ total int64 }

type benchCountShard struct{ n int64 }

func (c *benchCountCollector) NewShardState(day, shard int) trace.ShardState {
	return &benchCountShard{}
}

func (s *benchCountShard) Observe(day int, rec *trace.Record) error { s.n++; return nil }

func (s *benchCountShard) ObserveBatch(day int, recs []trace.Record) error {
	s.n += int64(len(recs))
	return nil
}

// ObserveColumns makes the raw scan legs take the column-native scan
// path — the one every production collector uses — so they measure pure
// block decode (SoA, no record transposition) plus iteration.
func (s *benchCountShard) ObserveColumns(day int, cb *trace.ColumnBatch) error {
	s.n += int64(cb.Len())
	return nil
}

func (c *benchCountCollector) MergeShard(st trace.ShardState) error {
	c.total += st.(*benchCountShard).n
	return nil
}

// BenchmarkScan measures the streaming pass that feeds every experiment,
// in records/sec: the fused all-collector analysis scan over the
// in-memory store, and the raw (count-only) scan over file stores in
// both codecs. raw/v1 vs raw/v2 is the codec speedup the v2 block format
// exists for.
func BenchmarkScan(b *testing.B) {
	b.Run("fused/mem", func(b *testing.B) {
		a := benchSetup(b)
		total, err := trace.Count(a.DS.Store)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fresh, err := analysis.New(a.DS)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fresh.Scan(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	for _, c := range []struct {
		name string
		opts trace.FileStoreOptions
	}{
		{"raw/v1", trace.FileStoreOptions{Codec: trace.CodecV1}},
		{"raw/v2", trace.FileStoreOptions{Codec: trace.CodecV2}},
		{"raw/v2flate", trace.FileStoreOptions{Codec: trace.CodecV2, Compress: true}},
		{"raw/v3", trace.FileStoreOptions{Codec: trace.CodecV3}},
		{"raw/v3tlz", trace.FileStoreOptions{Codec: trace.CodecV3, FastCompress: true}},
		{"raw/v3flate", trace.FileStoreOptions{Codec: trace.CodecV3, Compress: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			s := codecBenchStore(b, strings.ReplaceAll(c.name, "/", "-"), c.opts)
			total, err := trace.Count(s)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col := &benchCountCollector{}
				if err := trace.Scan(context.Background(), s, trace.ScanOptions{}, col); err != nil {
					b.Fatal(err)
				}
				if col.total != total {
					b.Fatalf("scan saw %d records, want %d", col.total, total)
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
	// Projected scan: the count collector reads no columns beyond the
	// timestamps, and the sectioned block layout lets v2 skip decoding
	// everything else — the headline advantage of a columnar format for
	// column-subset workloads (counting, temporal profiles).
	b.Run("raw/v2proj", func(b *testing.B) {
		s := codecBenchStore(b, "raw-v2", trace.FileStoreOptions{Codec: trace.CodecV2})
		total, err := trace.Count(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			col := &benchCountCollector{}
			opts := trace.ScanOptions{Projection: trace.ColTimestamp}
			if err := trace.Scan(context.Background(), s, opts, col); err != nil {
				b.Fatal(err)
			}
			if col.total != total {
				b.Fatalf("scan saw %d records, want %d", col.total, total)
			}
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	// Paired measurement: the v1, v2, v3 and v2-projected scans alternate
	// inside the same timer window, so machine drift (shared runners,
	// thermal throttle) cancels out of the reported speedups in a way
	// independent sub-benchmarks cannot guarantee.
	b.Run("raw/speedup", func(b *testing.B) {
		s1 := codecBenchStore(b, "raw-v1", trace.FileStoreOptions{Codec: trace.CodecV1})
		s2 := codecBenchStore(b, "raw-v2", trace.FileStoreOptions{Codec: trace.CodecV2})
		s3 := codecBenchStore(b, "raw-v3", trace.FileStoreOptions{Codec: trace.CodecV3})
		var d1, d2, d3, dp time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range []struct {
				s    trace.Store
				opts trace.ScanOptions
				d    *time.Duration
			}{
				{s1, trace.ScanOptions{}, &d1},
				{s2, trace.ScanOptions{}, &d2},
				{s3, trace.ScanOptions{}, &d3},
				{s2, trace.ScanOptions{Projection: trace.ColTimestamp}, &dp},
			} {
				start := time.Now()
				col := &benchCountCollector{}
				if err := trace.Scan(context.Background(), m.s, m.opts, col); err != nil {
					b.Fatal(err)
				}
				*m.d += time.Since(start)
			}
		}
		if d2 > 0 {
			b.ReportMetric(d1.Seconds()/d2.Seconds(), "v2_full_speedup_x")
		}
		if d3 > 0 {
			b.ReportMetric(d1.Seconds()/d3.Seconds(), "v3_full_speedup_x")
			b.ReportMetric(d2.Seconds()/d3.Seconds(), "v3_vs_v2_x")
		}
		if dp > 0 {
			b.ReportMetric(d1.Seconds()/dp.Seconds(), "v2_proj_speedup_x")
		}
	})
}

// recordOnlyStore strips the batch and column interfaces from a store's
// iterators, forcing scans back onto the record-at-a-time path (one
// iterator call plus one Observe interface call per collector per
// record) — the baseline the batch-native engine is measured against.
type recordOnlyStore struct{ trace.Store }

type recordOnlyIterator struct{ inner trace.RecordIterator }

func (s recordOnlyStore) OpenPartition(day, shard int) (trace.RecordIterator, error) {
	it, err := s.Store.OpenPartition(day, shard)
	if err != nil {
		return nil, err
	}
	return recordOnlyIterator{it}, nil
}

func (it recordOnlyIterator) Next(rec *trace.Record) (bool, error) { return it.inner.Next(rec) }
func (it recordOnlyIterator) Close() error                         { return it.inner.Close() }

// The storage-layer capabilities (range pruning, column projection,
// block stats) pass through — only the analysis-layer batch/column
// interfaces are stripped, so the pair isolates the collector path.
func (it recordOnlyIterator) SetTimeRange(minTS, maxTS int64) {
	if rs, ok := it.inner.(trace.TimeRangeSetter); ok {
		rs.SetTimeRange(minTS, maxTS)
	}
}

func (it recordOnlyIterator) SetProjection(cols trace.ColumnSet) {
	if ps, ok := it.inner.(trace.ProjectionSetter); ok {
		ps.SetProjection(cols)
	}
}

func (it recordOnlyIterator) ReadStats() trace.BlockStats {
	if sr, ok := it.inner.(trace.BlockStatsReader); ok {
		return sr.ReadStats()
	}
	return trace.BlockStats{}
}

// BenchmarkRunAll is the tentpole end-to-end pair: every experiment of
// the paper regenerated from one v2 block store, once over the
// record-at-a-time collector path and once over the batch-native
// (columnar) path. The speedup sub-benchmark interleaves both inside
// one timer window so machine drift cancels out of the reported ratio.
func BenchmarkRunAll(b *testing.B) {
	a := benchSetup(b)
	s2 := codecBenchStore(b, "raw-v2", trace.FileStoreOptions{Codec: trace.CodecV2})
	total, err := trace.Count(s2)
	if err != nil {
		b.Fatal(err)
	}
	runOnce := func(s trace.Store) {
		ds := *a.DS // shallow copy with the store swapped
		ds.Store = s
		fresh, err := NewAnalyzer(&ds)
		if err != nil {
			b.Fatal(err)
		}
		if err := RunAll(context.Background(), fresh, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(recordOnlyStore{s2})
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(s2)
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("speedup", func(b *testing.B) {
		var dRec, dBatch time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			runOnce(recordOnlyStore{s2})
			dRec += time.Since(start)
			start = time.Now()
			runOnce(s2)
			dBatch += time.Since(start)
		}
		if dBatch > 0 {
			b.ReportMetric(dRec.Seconds()/dBatch.Seconds(), "batch_speedup_x")
		}
	})
	// postscan isolates the post-scan constant: the analyzer is warmed
	// once (collectors computed, state finalized), then each iteration
	// re-runs every experiment body — quantile regressions, summaries,
	// regression rows, rendering — without touching the trace store. This
	// is the constant a counterfactual-replay pass pays per policy.
	b.Run("postscan", func(b *testing.B) {
		ds := *a.DS
		ds.Store = s2
		warm, err := NewAnalyzer(&ds)
		if err != nil {
			b.Fatal(err)
		}
		if err := RunAll(context.Background(), warm, io.Discard); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := RunAll(context.Background(), warm, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// refreshBenchState is the shared fixture for BenchmarkRefresh: a
// 31-day file-backed campaign whose first 30 days are covered by a
// checkpoint, with day 31 landed afterwards (the growing-feed scenario).
type refreshBenchState struct {
	ds    *simulate.Dataset
	ckpt  []byte
	total int64
}

var (
	refreshBenchOnce sync.Once
	refreshBenchSt   *refreshBenchState
	refreshBenchErr  error
)

func refreshBenchSetup(b *testing.B) *refreshBenchState {
	refreshBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "telcolens-bench-refresh-*")
		if err != nil {
			refreshBenchErr = err
			return
		}
		codecBenchMu.Lock()
		codecBenchDirs["refresh"] = dir // reuse TestMain's cleanup
		codecBenchMu.Unlock()
		fs, err := trace.NewFileStore(dir)
		if err != nil {
			refreshBenchErr = err
			return
		}
		cfg := simulate.DefaultConfig(42)
		cfg.UEs = 6000
		cfg.Days = 30
		cfg.Store = fs
		ds, err := simulate.Generate(cfg)
		if err != nil {
			refreshBenchErr = err
			return
		}
		warm, err := analysis.New(ds)
		if err != nil {
			refreshBenchErr = err
			return
		}
		ctx := context.Background()
		if _, err := warm.Scan(ctx); err != nil {
			refreshBenchErr = err
			return
		}
		if _, err := warm.PingPongAll(ctx, analysis.StandardPingPongWindows); err != nil {
			refreshBenchErr = err
			return
		}
		var ckpt bytes.Buffer
		if err := warm.Checkpoint(&ckpt); err != nil {
			refreshBenchErr = err
			return
		}
		if err := ds.GenerateDays(1); err != nil { // day 31 lands
			refreshBenchErr = err
			return
		}
		total, err := trace.Count(ds.Store)
		if err != nil {
			refreshBenchErr = err
			return
		}
		refreshBenchSt = &refreshBenchState{ds: ds, ckpt: ckpt.Bytes(), total: total}
	})
	if refreshBenchErr != nil {
		b.Fatal(refreshBenchErr)
	}
	return refreshBenchSt
}

// BenchmarkRefresh is the incremental-engine pair: computing every
// RunAll scan-state unit (the fused NeedAll scan plus the ping-pong
// pass) for a 31-day store from scratch, against checkpoint-resume +
// Refresh after 1 new day landed. Both arms end with identical warm
// state (artifacts render byte-identically from either; the render
// stage itself is the same either way and is benchmarked per experiment
// above). The refresh arm asserts via ScanMetrics that only the new
// day's partitions were scanned.
func BenchmarkRefresh(b *testing.B) {
	st := refreshBenchSetup(b)
	ctx := context.Background()
	days := st.ds.Config.Days
	full := func() {
		a, err := analysis.New(st.ds)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Scan(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := a.PingPongAll(ctx, analysis.StandardPingPongWindows); err != nil {
			b.Fatal(err)
		}
	}
	refresh := func() {
		a, err := analysis.ResumeAnalyzer(st.ds, bytes.NewReader(st.ckpt))
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Refresh(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.FullRescan || res.PartitionsScanned != 1 {
			b.Fatalf("refresh of 1 new day scanned %d partitions (full rescan: %v), want exactly 1",
				res.PartitionsScanned, res.FullRescan)
		}
		if scanned := a.ScanStats().Partitions; scanned != 1 {
			b.Fatalf("ScanStats shows %d partitions read of a %d-day store, want only the new day's 1",
				scanned, days)
		}
		if _, err := a.PingPongAll(ctx, analysis.StandardPingPongWindows); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			full()
		}
		b.ReportMetric(float64(st.total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("refresh1day", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refresh()
		}
	})
	// Paired measurement inside one timer window, so machine drift
	// cancels out of the reported speedup.
	b.Run("speedup", func(b *testing.B) {
		var dFull, dRefresh time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			full()
			dFull += time.Since(start)
			start = time.Now()
			refresh()
			dRefresh += time.Since(start)
		}
		if dRefresh > 0 {
			b.ReportMetric(dFull.Seconds()/dRefresh.Seconds(), "refresh_speedup_x")
		}
	})
}

// BenchmarkScanRange pits a one-day windowed scan against the full-month
// scan on the same v2 block store: the pruned scan touches only the
// blocks whose descriptors intersect the window.
func BenchmarkScanRange(b *testing.B) {
	opts := trace.FileStoreOptions{Codec: trace.CodecV2}
	s := codecBenchStore(b, "raw-v2", opts)
	day := 7
	b.Run("fullmonth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := &benchCountCollector{}
			if err := trace.Scan(context.Background(), s, trace.ScanOptions{}, col); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("1day", func(b *testing.B) {
		var blocksRead, blocksTotal int64
		for i := 0; i < b.N; i++ {
			var m trace.ScanMetrics
			col := &benchCountCollector{}
			err := trace.ScanRange(context.Background(), s, trace.ScanOptions{Metrics: &m},
				trace.DayRange(day, day), col)
			if err != nil {
				b.Fatal(err)
			}
			blocksRead = m.BlocksRead.Load()
			blocksTotal = blocksRead + m.BlocksSkipped.Load()
		}
		if blocksTotal > 0 {
			b.ReportMetric(100*float64(blocksRead)/float64(blocksTotal), "blocks_decoded_pct")
		}
	})
}

// BenchmarkScanSharded measures the same fused scan over stores holding
// 1, 4 and 8 shards per day, scanned with full parallelism, against a
// strictly sequential baseline (parallelism=1). The parallel/sequential
// gap quantifies what the partitioned v2 engine buys; it only shows on
// multi-core hardware (GOMAXPROCS=1 serializes the worker pool). Note a
// day-partitioned store already exposes Days-many partitions, so extra
// shards matter most when days < cores or for single-day scans.
var (
	shardBenchMu sync.Mutex
	shardBenchDS = map[int]*simulate.Dataset{}
)

func shardBenchDataset(b *testing.B, shards int) *simulate.Dataset {
	shardBenchMu.Lock()
	defer shardBenchMu.Unlock()
	if ds, ok := shardBenchDS[shards]; ok {
		return ds
	}
	cfg := simulate.DefaultConfig(42)
	cfg.UEs = 6000
	cfg.Days = 14
	cfg.Shards = shards
	ds, err := simulate.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	shardBenchDS[shards] = ds
	return ds
}

func benchScanStore(b *testing.B, shards int, opts ...analysis.Option) {
	ds := shardBenchDataset(b, shards)
	total, err := trace.Count(ds.Store)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := analysis.New(ds, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fresh.Scan(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkScanSharded(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		benchScanStore(b, 1, analysis.WithParallelism(1))
	})
	for _, shards := range []int{1, 4, 8} {
		b.Run(shardLabel(shards), func(b *testing.B) {
			benchScanStore(b, shards)
		})
	}
}

func shardLabel(n int) string {
	return fmt.Sprintf("shards=%d", n)
}

// writeBenchData synthesizes one partition's worth of records shaped
// like real generation output (sorted timestamps, sequential UE id
// space, a few hundred distinct TACs) plus its columnar transposition.
var (
	writeBenchOnce sync.Once
	writeBenchRecs []trace.Record
	writeBenchCols trace.ColumnBatch
)

func writeBenchData() ([]trace.Record, *trace.ColumnBatch) {
	writeBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(9))
		const n = 200_000
		base := trace.StudyStart.UnixMilli()
		recs := make([]trace.Record, n)
		for i := range recs {
			rec := trace.Record{
				Timestamp: base + int64(i)*700,
				UE:        trace.UEID(i % 20_000),
				TAC:       devices.TAC(35_000_000 + rng.Intn(500)),
				Source:    topology.SectorID(rng.Intn(10_000)),
				Target:    topology.SectorID(rng.Intn(10_000)),
				SourceRAT: topology.FourG,
				TargetRAT: topology.RAT(rng.Intn(4)),
			}
			if rng.Intn(50) == 0 {
				rec.Result = trace.Failure
				rec.Cause = causes.Code(1 + rng.Intn(900))
				rec.DurationMs = float32(rng.Intn(30_000))
			} else {
				rec.DurationMs = float32(rng.Intn(3000)) / 10
			}
			recs[i] = rec
		}
		writeBenchRecs = recs
		writeBenchCols.FromRecords(recs)
	})
	return writeBenchRecs, &writeBenchCols
}

// BenchmarkWrite is the write-side tentpole pair, mirroring
// BenchmarkRunAll on the read side: encoding one partition's records as
// a v2 block stream through the legacy record-at-a-time encoder
// (buffered []Record, strided struct access, per-block dictionary
// allocations) versus the column-native encoder (SoA slices in,
// sequential per-column passes, pooled zero-alloc scratch). Both arms
// produce byte-identical streams — TestWriteColumnsByteIdentical holds
// the pair honest — so the ratio is pure encode throughput. The speedup
// arm interleaves both inside one timer window so machine drift cancels
// out.
func BenchmarkWrite(b *testing.B) {
	recs, cb := writeBenchData()
	// encode takes the subtest's own *testing.B: each b.Run body runs on
	// its own goroutine, and Fatal must be called from that goroutine.
	encode := func(b *testing.B, compress, record bool) {
		opts := trace.WriterV2Options{Compress: compress, RecordEncode: record}
		w, err := trace.NewWriterV2(io.Discard, opts)
		if err != nil {
			b.Fatal(err)
		}
		if record {
			err = w.WriteBatch(recs)
		} else {
			err = w.WriteColumns(cb)
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if w.Count() != int64(len(recs)) {
			b.Fatalf("encoded %d records, want %d", w.Count(), len(recs))
		}
		w.Release()
	}
	for _, c := range []struct {
		name     string
		compress bool
	}{{"", false}, {"flate/", true}} {
		b.Run(c.name+"record", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				encode(b, c.compress, true)
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
		b.Run(c.name+"column", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				encode(b, c.compress, false)
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
		b.Run(c.name+"speedup", func(b *testing.B) {
			var dRec, dCol time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				encode(b, c.compress, true)
				dRec += time.Since(start)
				start = time.Now()
				encode(b, c.compress, false)
				dCol += time.Since(start)
			}
			if dCol > 0 {
				b.ReportMetric(dRec.Seconds()/dCol.Seconds(), "column_speedup_x")
			}
		})
	}
	// v3 legs: bitpacked encode, plain and TLZ-compressed, plus the
	// paired v2-vs-v3 ratio inside one timer window.
	encodeV3 := func(b *testing.B, opts trace.WriterV3Options) {
		w, err := trace.NewWriterV3(io.Discard, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteColumns(cb); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if w.Count() != int64(len(recs)) {
			b.Fatalf("encoded %d records, want %d", w.Count(), len(recs))
		}
		w.Release()
	}
	for _, c := range []struct {
		name string
		opts trace.WriterV3Options
	}{
		{"v3/column", trace.WriterV3Options{}},
		{"v3tlz/column", trace.WriterV3Options{FastCompress: true}},
		{"v3flate/column", trace.WriterV3Options{Compress: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				encodeV3(b, c.opts)
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
	b.Run("v3/speedup", func(b *testing.B) {
		var d2, d3 time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			encode(b, false, false)
			d2 += time.Since(start)
			start = time.Now()
			encodeV3(b, trace.WriterV3Options{})
			d3 += time.Since(start)
		}
		if d3 > 0 {
			b.ReportMetric(d2.Seconds()/d3.Seconds(), "v3_vs_v2_x")
		}
	})
}

// recordWriteOnlyStore strips the ColumnWriter surface from a store's
// writers, forcing generation onto the record-path compatibility
// fallback — the old write pipeline, kept as the baseline arm of
// BenchmarkGenerateDay (the write-side analog of recordOnlyStore).
type recordWriteOnlyStore struct{ trace.Store }

type recordWriteOnlyWriter struct{ inner trace.RecordWriter }

func (s recordWriteOnlyStore) AppendPartition(day, shard int) (trace.RecordWriter, error) {
	w, err := s.Store.AppendPartition(day, shard)
	if err != nil {
		return nil, err
	}
	return recordWriteOnlyWriter{w}, nil
}

func (w recordWriteOnlyWriter) Write(rec *trace.Record) error { return w.inner.Write(rec) }
func (w recordWriteOnlyWriter) Close() error                  { return w.inner.Close() }

func (w recordWriteOnlyWriter) WriteBatch(recs []trace.Record) error {
	if bw, ok := w.inner.(trace.BatchWriter); ok {
		return bw.WriteBatch(recs)
	}
	for i := range recs {
		if err := w.inner.Write(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkGenerateDay measures end-to-end generation throughput: the
// full campaign build landing in an in-memory store through the
// columnar write path (column arm) versus the record-writer fallback
// (record arm). The simulation itself dominates, so the gap here is the
// write path's share of end-to-end generation; the isolated encode
// ratio is BenchmarkWrite.
func BenchmarkGenerateDay(b *testing.B) {
	// genOnce takes the subtest's *testing.B for the same reason encode
	// does in BenchmarkWrite.
	genOnce := func(b *testing.B, i int, record bool) int64 {
		cfg := simulate.DefaultConfig(7)
		cfg.UEs = 1500
		cfg.Days = 1
		cfg.Seed = uint64(i + 1)
		if record {
			cfg.Store = recordWriteOnlyStore{trace.NewMemStore()}
		}
		ds, err := simulate.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return ds.TotalHandovers()
	}
	b.Run("record", func(b *testing.B) {
		var handovers int64
		for i := 0; i < b.N; i++ {
			handovers += genOnce(b, i, true)
		}
		b.ReportMetric(float64(handovers)/b.Elapsed().Seconds(), "HOs/s")
	})
	b.Run("column", func(b *testing.B) {
		var handovers int64
		for i := 0; i < b.N; i++ {
			handovers += genOnce(b, i, false)
		}
		b.ReportMetric(float64(handovers)/b.Elapsed().Seconds(), "HOs/s")
	})
	b.Run("speedup", func(b *testing.B) {
		var dRec, dCol time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			genOnce(b, i, true)
			dRec += time.Since(start)
			start = time.Now()
			genOnce(b, i, false)
			dCol += time.Since(start)
		}
		if dCol > 0 {
			b.ReportMetric(dRec.Seconds()/dCol.Seconds(), "column_speedup_x")
		}
	})
}

// ingestBenchData synthesizes one study day of ingest-shaped records as
// request-sized column chunks for day 0 (timestamps deliberately
// unsorted — the seal's canonical sort is part of the measured path);
// the benchmark rebases chunks onto later days by shifting timestamps.
var (
	ingestBenchOnce   sync.Once
	ingestBenchChunks []*trace.ColumnBatch
)

func ingestBenchData() []*trace.ColumnBatch {
	ingestBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		const n, chunk = 50_000, 4096
		base := trace.DayStart(0).UnixMilli()
		var cb *trace.ColumnBatch
		for i := 0; i < n; i++ {
			if i%chunk == 0 {
				cb = new(trace.ColumnBatch)
				ingestBenchChunks = append(ingestBenchChunks, cb)
			}
			rec := trace.Record{
				Timestamp:  base + int64(rng.Intn(86_400_000)),
				UE:         trace.UEID(i % 20_000),
				TAC:        devices.TAC(35_000_000 + rng.Intn(500)),
				Source:     topology.SectorID(rng.Intn(10_000)),
				Target:     topology.SectorID(rng.Intn(10_000)),
				SourceRAT:  topology.FourG,
				TargetRAT:  topology.RAT(rng.Intn(4)),
				DurationMs: float32(rng.Intn(3000)) / 10,
			}
			if rng.Intn(50) == 0 {
				rec.Result = trace.Failure
				rec.Cause = causes.Code(1 + rng.Intn(900))
			}
			cb.AppendRecord(&rec)
		}
	})
	return ingestBenchChunks
}

func ingestBenchService(b *testing.B, dir string) *ingest.Service {
	b.Helper()
	svc, err := ingest.Open(dir, ingest.Options{})
	if err != nil {
		b.Fatal(err)
	}
	meta := &simulate.CampaignMeta{
		Config: simulate.Config{Seed: 11, Days: 0, WindowDays: 1000, UEs: 20_000},
		Codec:  trace.CodecV2,
	}
	if err := svc.Init(meta); err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkIngest measures the streaming ingest write path: the append
// arm isolates the per-request hot path (WAL frame encode + fsync-free
// append + memtable gather) by sealing outside the timer window; the
// day arm is the end-to-end cycle a live feed pays per study day —
// request-sized appends, then DayComplete's synced WAL mark and the
// seal itself (canonical sort, v2 partition encode, campaign manifest
// bump, WAL retirement). Both rotate onto a fresh directory every 64
// sealed days so disk usage stays bounded across long runs.
func BenchmarkIngest(b *testing.B) {
	chunks := ingestBenchData()
	perDay := 0
	for _, c := range chunks {
		perDay += c.Len()
	}
	shift := func(dst, src *trace.ColumnBatch, day int) {
		dst.Reset()
		dst.AppendColumns(src)
		off := trace.DayStart(day).UnixMilli() - trace.DayStart(0).UnixMilli()
		for i := range dst.Timestamps {
			dst.Timestamps[i] += off
		}
	}
	const rotateDays = 64
	b.Run("append", func(b *testing.B) {
		svc := ingestBenchService(b, b.TempDir())
		defer func() { svc.Close() }()
		var scratch trace.ColumnBatch
		var seq uint64
		day, pending, appended := 0, 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shift(&scratch, chunks[i%len(chunks)], day)
			seq++
			if _, err := svc.Append(1, seq, &scratch); err != nil {
				b.Fatal(err)
			}
			pending += scratch.Len()
			appended += scratch.Len()
			if pending >= perDay {
				b.StopTimer()
				agg := simulate.DayAggregate{Handovers: int64(pending)}
				if err := svc.DayComplete(day, agg); err != nil {
					b.Fatal(err)
				}
				pending = 0
				if day++; day%rotateDays == 0 {
					svc.Close()
					svc = ingestBenchService(b, b.TempDir())
					day = 0
				}
				b.StartTimer()
			}
		}
		b.ReportMetric(float64(appended)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("day", func(b *testing.B) {
		svc := ingestBenchService(b, b.TempDir())
		defer func() { svc.Close() }()
		var scratch trace.ColumnBatch
		var seq uint64
		day := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range chunks {
				shift(&scratch, c, day)
				seq++
				if _, err := svc.Append(1, seq, &scratch); err != nil {
					b.Fatal(err)
				}
			}
			agg := simulate.DayAggregate{Handovers: int64(perDay)}
			if err := svc.DayComplete(day, agg); err != nil {
				b.Fatal(err)
			}
			if day++; day%rotateDays == 0 {
				b.StopTimer()
				svc.Close()
				svc = ingestBenchService(b, b.TempDir())
				day = 0
				b.StartTimer()
			}
		}
		b.ReportMetric(float64(perDay)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}

// --- Ablation benches (DESIGN.md §7) ---

// BenchmarkAblationQuantileSketch compares exact sample quantiles against
// the fixed-memory log-histogram sketch on the intra-HO duration stream.
func BenchmarkAblationQuantileSketch(b *testing.B) {
	a := benchSetup(b)
	var durations []float64
	err := trace.ForEach(a.DS.Store, func(_ int, rec *trace.Record) error {
		if rec.Result == trace.Success && rec.HOType() == 0 {
			durations = append(durations, float64(rec.DurationMs))
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = stats.Quantile(durations, 0.95)
		}
	})
	b.Run("loghist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := stats.NewLogHist(0.1, 100000, 400)
			for _, d := range durations {
				h.Add(d)
			}
			_ = h.Quantile(0.95)
		}
	})
	// Report the approximation error once.
	h := stats.NewLogHist(0.1, 100000, 400)
	for _, d := range durations {
		h.Add(d)
	}
	exact := stats.Quantile(durations, 0.95)
	b.ReportMetric(math.Abs(h.Quantile(0.95)-exact)/exact*100, "sketch_err_pct")
}

// BenchmarkAblationHomeDetectionWindow sweeps the minimum-nights rule of
// the §4.3 home-detection algorithm and reports the census R² per setting.
func BenchmarkAblationHomeDetectionWindow(b *testing.B) {
	a := benchSetup(b)
	for _, minNights := range []int{3, 7, 10} {
		b.Run(nightsLabel(minNights), func(b *testing.B) {
			var r2 float64
			for i := 0; i < b.N; i++ {
				counts, _, err := a.HomeDetection(context.Background(), minNights)
				if err != nil {
					b.Fatal(err)
				}
				r2 = censusR2(b, a, counts)
			}
			b.ReportMetric(r2, "r2")
		})
	}
}

func nightsLabel(n int) string {
	return "minNights=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func censusR2(b *testing.B, a *Analyzer, counts []int) float64 {
	b.Helper()
	var xs, ys []float64
	for i, c := range counts {
		if c > 0 {
			xs = append(xs, float64(c))
			ys = append(ys, float64(a.DS.Country.Districts[i].Population))
		}
	}
	X := make([][]float64, len(xs))
	for i := range xs {
		X[i] = []float64{xs[i]}
	}
	m, err := stats.FitOLS(ys, X, []string{"inferred"}, true)
	if err != nil {
		b.Fatal(err)
	}
	return m.R2
}

// BenchmarkAblationCodecVsCSV compares the binary trace codec against CSV
// export for one day of records (throughput and bytes per record).
func BenchmarkAblationCodecVsCSV(b *testing.B) {
	a := benchSetup(b)
	var recs []trace.Record
	it, err := a.DS.Store.OpenDay(0)
	if err != nil {
		b.Fatal(err)
	}
	var rec trace.Record
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	it.Close()

	b.Run("binary", func(b *testing.B) {
		var n int64
		for i := 0; i < b.N; i++ {
			cw := &countingWriter{}
			w, err := trace.NewWriter(cw)
			if err != nil {
				b.Fatal(err)
			}
			for j := range recs {
				if err := w.Write(&recs[j]); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
			n = cw.n
		}
		b.ReportMetric(float64(n)/float64(len(recs)), "bytes/record")
	})
	b.Run("csv", func(b *testing.B) {
		var n int64
		for i := 0; i < b.N; i++ {
			cw := &countingWriter{}
			if _, err := trace.ExportCSV(cw, &sliceIterator{recs: recs}); err != nil {
				b.Fatal(err)
			}
			n = cw.n
		}
		b.ReportMetric(float64(n)/float64(len(recs)), "bytes/record")
	})
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

type sliceIterator struct {
	recs []trace.Record
	pos  int
}

func (it *sliceIterator) Next(rec *trace.Record) (bool, error) {
	if it.pos >= len(it.recs) {
		return false, nil
	}
	*rec = it.recs[it.pos]
	it.pos++
	return true, nil
}

func (it *sliceIterator) Close() error { return nil }

// BenchmarkAblationRareBoost sweeps the 2G rare-event boost and reports
// the fitted 3G coefficient, demonstrating the ordering invariance claimed
// in DESIGN.md (small configs: each iteration generates a fresh campaign).
func BenchmarkAblationRareBoost(b *testing.B) {
	for _, boost := range []float64{1, 10, 100} {
		b.Run(boostLabel(boost), func(b *testing.B) {
			var coef3G float64
			for i := 0; i < b.N; i++ {
				cfg := simulate.DefaultConfig(99)
				cfg.UEs = 1200
				cfg.Days = 4
				cfg.RareBoost = boost
				ds, err := simulate.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				an, err := analysis.New(ds)
				if err != nil {
					b.Fatal(err)
				}
				m, err := an.FitHOTypeModel(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				for j, name := range m.Names {
					if name == "HO type: 4G/5G-NSA->3G" {
						coef3G = m.Coef[j]
					}
				}
			}
			b.ReportMetric(coef3G, "coef3G")
		})
	}
}

func boostLabel(f float64) string {
	switch f {
	case 1:
		return "boost=1"
	case 10:
		return "boost=10"
	default:
		return "boost=100"
	}
}

// BenchmarkQuery measures the ad-hoc serving path over the shared
// campaign written to an indexed v2 file store: a single-UE point
// lookup (index pruning at its best), a day-windowed TAC slice, the
// cold path (fresh engine, empty cache), the cache hit path, and a
// parallel load leg reporting tail latency.
func BenchmarkQuery(b *testing.B) {
	store := codecBenchStore(b, "query-v2", trace.FileStoreOptions{Codec: trace.CodecV2})
	view, err := NewQueryView(store)
	if err != nil {
		b.Fatal(err)
	}
	// Pin a real subscriber and device so the queries return rows.
	it, err := store.OpenPartition(view.Partitions[0].Day, view.Partitions[0].Shard)
	if err != nil {
		b.Fatal(err)
	}
	var probe Record
	if ok, err := it.Next(&probe); err != nil || !ok {
		b.Fatalf("empty first partition: %v", err)
	}
	it.Close()
	ue := probe.UE
	tac := uint32(probe.TAC)
	day0 := trace.DayRange(0, 0)
	ctx := context.Background()

	run := func(name string, p QueryParams, purge bool) {
		b.Run(name, func(b *testing.B) {
			eng := NewQueryEngine(store)
			if !purge { // warm the cache once for the hit path
				if _, _, err := eng.Query(ctx, view, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if purge {
					eng.InvalidateCache()
				}
				res, _, err := eng.Query(ctx, view, p)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 && p.UE != nil {
					b.Fatal("probe query returned no rows")
				}
			}
		})
	}
	run("point", QueryParams{UE: &ue}, true)
	run("window", QueryParams{TAC: &tac, From: day0.MinTS, To: day0.MaxTS, Limit: 500}, true)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewQueryEngine(store)
			if _, _, err := eng.Query(ctx, view, QueryParams{UE: &ue}); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("cached", QueryParams{UE: &ue}, false)

	// load: GOMAXPROCS goroutines hammering a small query mix against
	// one shared engine (the serving topology), reporting achieved qps
	// and p99 latency.
	b.Run("load", func(b *testing.B) {
		eng := NewQueryEngine(store)
		var mu sync.Mutex
		var lats []time.Duration
		b.ResetTimer()
		start := time.Now()
		b.RunParallel(func(pb *testing.PB) {
			local := make([]time.Duration, 0, 1024)
			i := 0
			for pb.Next() {
				p := QueryParams{UE: &ue}
				if i%4 == 3 { // every 4th query misses the cache
					eng.InvalidateCache()
				}
				i++
				t0 := time.Now()
				if _, _, err := eng.Query(ctx, view, p); err != nil {
					b.Fatal(err)
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		})
		elapsed := time.Since(start)
		if len(lats) == 0 {
			return
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "qps")
		b.ReportMetric(float64(lats[len(lats)/2].Microseconds()), "p50-µs")
		b.ReportMetric(float64(lats[len(lats)*99/100].Microseconds()), "p99-µs")
	})
}

// BenchmarkOverload measures the admission-controlled serving path
// driven at twice its declared capacity: GOMAXPROCS query slots with no
// wait queue, hammered by 2×GOMAXPROCS clients running the
// BenchmarkQuery load mix. Requests that clear admission report
// achieved qps and p50/p99 latency; the excess sheds (the 429 path in
// telcoserve) and is counted, not timed. The property under test is
// that load shedding keeps the accepted-request tail flat instead of
// letting every request queue and time out together — p99 here is the
// declared overload bound the CI bench gate tracks.
func BenchmarkOverload(b *testing.B) {
	store := codecBenchStore(b, "query-v2", trace.FileStoreOptions{Codec: trace.CodecV2})
	view, err := NewQueryView(store)
	if err != nil {
		b.Fatal(err)
	}
	it, err := store.OpenPartition(view.Partitions[0].Day, view.Partitions[0].Shard)
	if err != nil {
		b.Fatal(err)
	}
	var probe Record
	if ok, err := it.Next(&probe); err != nil || !ok {
		b.Fatalf("empty first partition: %v", err)
	}
	it.Close()
	ue := probe.UE

	slots := runtime.GOMAXPROCS(0)
	ctrl := admission.NewController(admission.Config{
		QuerySlots: slots,
		QueryQueue: -1, // no queue: over-capacity arrivals shed immediately
		// The detector stays quiet: the benchmark measures steady-state
		// shedding throughput, not the degraded-mode flip (that's
		// TestOverloadShedsAndHealthz's job).
		OverloadThreshold: 1 << 30,
	})
	eng := NewQueryEngine(store)
	ctx := context.Background()

	var mu sync.Mutex
	var lats []time.Duration
	var shed atomic.Int64
	b.SetParallelism(2) // 2× the admitted capacity
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		i := 0
		for pb.Next() {
			release, err := ctrl.Admit(ctx, admission.ClassQuery)
			if err != nil {
				// A real shed costs the client a Retry-After backoff; an
				// unpaced spin here would let rejections dominate the
				// iteration count and starve the measurement.
				shed.Add(1)
				time.Sleep(500 * time.Microsecond)
				continue
			}
			if i%4 == 3 { // every 4th admitted query misses the cache
				eng.InvalidateCache()
			}
			i++
			t0 := time.Now()
			_, _, qerr := eng.Query(ctx, view, QueryParams{UE: &ue})
			release()
			if qerr != nil {
				b.Fatal(qerr)
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	if len(lats) == 0 {
		return // a 1x smoke run can shed its only request
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	total := float64(len(lats)) + float64(shed.Load())
	b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "qps")
	b.ReportMetric(float64(lats[len(lats)/2].Microseconds()), "p50-µs")
	b.ReportMetric(float64(lats[len(lats)*99/100].Microseconds()), "p99-µs")
	b.ReportMetric(100*float64(shed.Load())/total, "shed_pct")
}
