// Command telcoreport regenerates every table and figure of the paper's
// evaluation in one run: it either reopens an existing campaign directory
// or generates a fresh in-memory campaign, then renders all experiments
// from one fused parallel scan.
//
// Usage:
//
//	telcoreport                          # fresh campaign, default scale
//	telcoreport -data ./campaign         # reuse telcogen output
//	telcoreport -ues 40000 -days 28      # bigger fresh campaign
//	telcoreport -shards 8 -parallel 8    # sharded generation + scan
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"telcolens"
)

func main() {
	var (
		data      = flag.String("data", "", "existing campaign directory (empty = generate fresh)")
		seed      = flag.Uint64("seed", 42, "seed for fresh campaigns")
		ues       = flag.Int("ues", 8000, "UEs for fresh campaigns")
		days      = flag.Int("days", 14, "days for fresh campaigns")
		shards    = flag.Int("shards", 1, "trace shards per day for fresh campaigns")
		parallel  = flag.Int("parallel", 0, "analysis scan parallelism (0 = GOMAXPROCS)")
		rareBoost = flag.Float64("rareboost", 1, "2G fallback multiplier for fresh campaigns")
		out       = flag.String("out", "", "output file (empty = stdout)")
		verbose   = flag.Bool("v", false, "print scan metrics (partitions, records, blocks pruned/decoded, bytes) on stderr")
		finProf   = flag.Bool("finalizeprofile", false, "print the scan vs finalize wall-time split on stderr")
		fromDay   = flag.Int("from", -1, "first study day of the analysis window (-1 = study start)")
		toDay     = flag.Int("to", -1, "last study day of the analysis window, inclusive (-1 = study end); multi-day experiments (home detection) need a wide enough window")
	)
	flag.Parse()

	if *fromDay >= 0 && *toDay >= 0 && *fromDay > *toDay {
		fatal(fmt.Errorf("empty window [%d, %d]", *fromDay, *toDay))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		ds  *telcolens.Dataset
		err error
	)
	start := time.Now()
	if *data != "" {
		ds, err = telcolens.Load(*data)
	} else {
		cfg := telcolens.DefaultConfig(*seed)
		cfg.UEs = *ues
		cfg.Days = *days
		cfg.RareBoost = *rareBoost
		fmt.Fprintf(os.Stderr, "generating fresh campaign (seed=%d ues=%d days=%d shards=%d)...\n",
			*seed, *ues, *days, *shards)
		ds, err = telcolens.Generate(cfg, telcolens.WithShards(*shards))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "campaign ready in %s\n", time.Since(start).Round(time.Millisecond))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	aOpts := []telcolens.Option{telcolens.WithParallelism(*parallel)}
	if *fromDay >= 0 || *toDay >= 0 {
		aOpts = append(aOpts, telcolens.WithWindow(*fromDay, *toDay))
	}
	a, err := telcolens.NewAnalyzer(ds, aOpts...)
	if err != nil {
		fatal(err)
	}
	if err := telcolens.RunAll(ctx, a, bw); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "scan:", a.ScanStats().Summary())
	}
	if *finProf {
		fmt.Fprintln(os.Stderr, a.ScanStats().ProfileSummary())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telcoreport:", err)
	os.Exit(1)
}
