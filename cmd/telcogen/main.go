// Command telcogen generates a synthetic countrywide handover measurement
// campaign: a four-week (configurable) trace of handover records plus the
// census open-data CSV, written to a directory that telcoanalyze and
// telcoreport can reopen.
//
// Usage:
//
//	telcogen -out ./campaign -seed 42 -ues 20000 -days 28
//	telcogen -out ./campaign -shards 8        # hash-sharded day partitions
//	telcogen -out ./campaign -codec 1         # legacy fixed-width v1 streams
//	telcogen -out ./campaign -compress        # flate-compressed v2 blocks
//	telcogen -out ./campaign -codec 3 -fastcompress  # bitpacked v3, TLZ-compressed
//	telcogen -out ./campaign -append 1        # extend the campaign by a day
//	telcogen -out ./campaign -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Generation reports a records/s summary on completion, and the
// -cpuprofile/-memprofile flags (parity with telcoanalyze) capture pprof
// profiles of the generate → encode pipeline, so write-path perf work
// starts from a profile rather than a guess.
//
// -append extends an existing campaign day by day (the growing-feed
// scenario telcoserve watches for): the world model is rebuilt from the
// directory's manifest, the new days land as ordinary partitions, and
// the manifest is rewritten. Flags that would change the campaign's
// identity (seed, population, deployment, sharding) are refused when
// they disagree with what the manifest records.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"telcolens"
	"telcolens/internal/census"
	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

func main() {
	var (
		out        = flag.String("out", "campaign", "output directory")
		seed       = flag.Uint64("seed", 42, "deterministic campaign seed")
		ues        = flag.Int("ues", 20000, "subscriber population size")
		days       = flag.Int("days", 28, "study window length in days")
		sites      = flag.Int("sites", 2400, "cell site count")
		districts  = flag.Int("districts", 320, "census districts")
		shards     = flag.Int("shards", 1, "trace shards per day (hash-partitioned by UE)")
		rareBoost  = flag.Float64("rareboost", 1, "2G fallback probability multiplier (see DESIGN.md)")
		codec      = flag.Int("codec", 2, "trace stream codec: 1 (fixed-width records), 2 (columnar blocks) or 3 (bitpacked blocks)")
		compress   = flag.Bool("compress", false, "flate-compress v2/v3 block payloads (smaller files, slower scans)")
		fastcomp   = flag.Bool("fastcompress", false, "TLZ-compress v3 block payloads (fast decode at a lower ratio than flate)")
		appendN    = flag.Int("append", 0, "extend the existing campaign in -out by N days instead of generating")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile taken after the run to this file")
	)
	flag.Parse()

	if err := run(*out, *seed, *ues, *days, *sites, *districts, *shards, *rareBoost,
		*codec, *compress, *fastcomp, *appendN, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "telcogen:", err)
		os.Exit(1)
	}
}

// run wraps generation so profiles are flushed on every exit path (a
// fatal os.Exit would silently drop a pending CPU profile) — the same
// contract telcoanalyze keeps.
func run(out string, seed uint64, ues, days, sites, districts, shards int, rareBoost float64,
	codec int, compress, fastcomp bool, appendN int, cpuprofile, memprofile string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "telcogen:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "telcogen:", err)
			}
		}()
	}

	if appendN > 0 {
		// Only explicitly set codec flags are passed down: zero-value
		// options make LoadOpts default to the codec settings recorded in
		// the campaign manifest (and refuse explicit contradictions).
		var opts trace.FileStoreOptions
		if flagVal("codec") != nil {
			opts.Codec = trace.Codec(codec)
		}
		if flagVal("compress") != nil {
			opts.Compress = compress
		}
		if flagVal("fastcompress") != nil {
			opts.FastCompress = fastcomp
		}
		return appendDays(out, appendN, opts)
	}

	cfg := telcolens.DefaultConfig(seed)
	cfg.UEs = ues
	cfg.Days = days
	cfg.SitesTarget = sites
	cfg.Districts = districts
	cfg.Shards = shards
	cfg.RareBoost = rareBoost

	if codec != int(trace.CodecV1) && codec != int(trace.CodecV2) && codec != int(trace.CodecV3) {
		return fmt.Errorf("unknown codec %d (want 1, 2 or 3)", codec)
	}
	store, err := trace.NewFileStoreOpts(out, trace.FileStoreOptions{
		Codec:        trace.Codec(codec),
		Compress:     compress,
		FastCompress: fastcomp,
	})
	if err != nil {
		return err
	}
	cfg.Store = store

	start := time.Now()
	fmt.Printf("generating campaign: seed=%d ues=%d days=%d sites=%d districts=%d shards=%d codec=v%d\n",
		seed, ues, days, sites, districts, shards, codec)
	ds, err := telcolens.Generate(cfg)
	if err != nil {
		return err
	}
	genElapsed := time.Since(start)
	if err := ds.SaveManifest(out); err != nil {
		return err
	}

	// Census open data alongside the traces.
	censusPath := filepath.Join(out, "census.csv")
	f, err := os.Create(censusPath)
	if err != nil {
		return err
	}
	if err := census.WriteCSV(f, ds.Country); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	total, err := trace.Count(ds.Store)
	if err != nil {
		return err
	}
	fmt.Printf("done in %s: %d handover records over %d days (%d sites, %d sectors, %d UEs)\n",
		time.Since(start).Round(time.Millisecond), total, days,
		len(ds.Network.Sites), len(ds.Network.Sectors), ds.Population.Len())
	fmt.Printf("generated %.0f records/s (world build + simulation + columnar encode)\n",
		float64(total)/genElapsed.Seconds())
	fmt.Printf("wrote %s/, %s and %s/manifest.json\n", out, censusPath, out)
	return nil
}

// appendDays extends an existing campaign directory by n days, refusing
// to proceed when explicitly passed flags contradict the config
// fingerprint the campaign manifest records — appending days generated
// under a different seed, population or shard layout would silently
// corrupt the study.
func appendDays(dir string, n int, opts trace.FileStoreOptions) error {
	ds, err := simulate.LoadOpts(dir, opts)
	if err != nil {
		return err
	}
	checks := map[string]struct{ got, want any }{
		"seed":      {flagVal("seed"), ds.Config.Seed},
		"ues":       {flagVal("ues"), ds.Config.UEs},
		"shards":    {flagVal("shards"), max(ds.Config.Shards, 1)},
		"sites":     {flagVal("sites"), ds.Config.SitesTarget},
		"districts": {flagVal("districts"), ds.Config.Districts},
		"rareboost": {flagVal("rareboost"), ds.Config.RareBoost},
	}
	if fs, ok := ds.Store.(*trace.FileStore); ok {
		// LoadOpts resolved the campaign's recorded write options (and
		// already refused an explicit codec contradiction); an explicit
		// -compress that disagrees is refused the same way.
		checks["compress"] = struct{ got, want any }{flagVal("compress"), fs.Options().Compress}
		checks["fastcompress"] = struct{ got, want any }{flagVal("fastcompress"), fs.Options().FastCompress}
	}
	for name, c := range checks {
		if c.got != nil && fmt.Sprint(c.got) != fmt.Sprint(c.want) {
			return fmt.Errorf("-%s %v does not match the campaign manifest (%v); "+
				"appending under a different config would corrupt the study", name, c.got, c.want)
		}
	}
	if flagVal("days") != nil {
		return fmt.Errorf("-days cannot be combined with -append (the manifest records %d days; -append %d extends to %d)",
			ds.Config.Days, n, ds.Config.Days+n)
	}
	if err := discardOrphanDays(ds); err != nil {
		return err
	}

	start := time.Now()
	from := ds.Config.Days
	fmt.Printf("appending %d day(s) to campaign %s: seed=%d ues=%d shards=%d days %d -> %d\n",
		n, dir, ds.Config.Seed, ds.Config.UEs, max(ds.Config.Shards, 1), from, from+n)
	// One day per step with the campaign manifest re-saved after each, so
	// an interruption loses at most the in-flight day (which the next
	// -append discards and regenerates).
	for i := 0; i < n; i++ {
		if err := ds.GenerateDays(1); err != nil {
			return err
		}
		if err := ds.SaveManifest(dir); err != nil {
			return err
		}
	}
	var added int64
	for _, day := range ds.DayStats[from:] {
		added += day.Handovers
	}
	elapsed := time.Since(start)
	fmt.Printf("done in %s: %d handover records over days %d..%d; manifest updated\n",
		elapsed.Round(time.Millisecond), added, from, ds.Config.Days-1)
	fmt.Printf("appended %.0f records/s (simulation + columnar encode)\n",
		float64(added)/elapsed.Seconds())
	return nil
}

// discardOrphanDays removes partitions beyond the campaign manifest's
// day count — the debris of an append that died between landing a day's
// partitions and re-saving the manifest. Generation is deterministic
// (same seed, same world, per-day RNG streams), so the removed days are
// regenerated byte-identically by the append that follows; keeping them
// would wedge it on the partition already-written guard instead.
func discardOrphanDays(ds *simulate.Dataset) error {
	fs, ok := ds.Store.(*trace.FileStore)
	if !ok {
		return nil
	}
	parts, err := fs.Partitions()
	if err != nil {
		return err
	}
	for _, p := range parts {
		if p.Day < ds.Config.Days {
			continue
		}
		fmt.Printf("discarding orphan partition day %d shard %d (interrupted append; will be regenerated)\n",
			p.Day, p.Shard)
		if err := fs.RemovePartition(p.Day, p.Shard); err != nil {
			return err
		}
	}
	return nil
}

// flagVal returns the value of a flag only if it was explicitly set.
func flagVal(name string) any {
	var out any
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			out = f.Value.(flag.Getter).Get()
		}
	})
	return out
}
