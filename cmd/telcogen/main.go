// Command telcogen generates a synthetic countrywide handover measurement
// campaign: a four-week (configurable) trace of handover records plus the
// census open-data CSV, written to a directory that telcoanalyze and
// telcoreport can reopen.
//
// Usage:
//
//	telcogen -out ./campaign -seed 42 -ues 20000 -days 28
//	telcogen -out ./campaign -shards 8        # hash-sharded day partitions
//	telcogen -out ./campaign -codec 1         # legacy fixed-width v1 streams
//	telcogen -out ./campaign -compress        # flate-compressed v2 blocks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"telcolens"
	"telcolens/internal/census"
	"telcolens/internal/trace"
)

func main() {
	var (
		out       = flag.String("out", "campaign", "output directory")
		seed      = flag.Uint64("seed", 42, "deterministic campaign seed")
		ues       = flag.Int("ues", 20000, "subscriber population size")
		days      = flag.Int("days", 28, "study window length in days")
		sites     = flag.Int("sites", 2400, "cell site count")
		districts = flag.Int("districts", 320, "census districts")
		shards    = flag.Int("shards", 1, "trace shards per day (hash-partitioned by UE)")
		rareBoost = flag.Float64("rareboost", 1, "2G fallback probability multiplier (see DESIGN.md)")
		codec     = flag.Int("codec", 2, "trace stream codec: 1 (fixed-width records) or 2 (columnar blocks)")
		compress  = flag.Bool("compress", false, "flate-compress v2 block payloads (smaller files, slower scans)")
	)
	flag.Parse()

	cfg := telcolens.DefaultConfig(*seed)
	cfg.UEs = *ues
	cfg.Days = *days
	cfg.SitesTarget = *sites
	cfg.Districts = *districts
	cfg.Shards = *shards
	cfg.RareBoost = *rareBoost

	if *codec != int(trace.CodecV1) && *codec != int(trace.CodecV2) {
		fatal(fmt.Errorf("unknown codec %d (want 1 or 2)", *codec))
	}
	store, err := trace.NewFileStoreOpts(*out, trace.FileStoreOptions{
		Codec:    trace.Codec(*codec),
		Compress: *compress,
	})
	if err != nil {
		fatal(err)
	}
	cfg.Store = store

	start := time.Now()
	fmt.Printf("generating campaign: seed=%d ues=%d days=%d sites=%d districts=%d shards=%d codec=v%d\n",
		*seed, *ues, *days, *sites, *districts, *shards, *codec)
	ds, err := telcolens.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := ds.SaveManifest(*out); err != nil {
		fatal(err)
	}

	// Census open data alongside the traces.
	censusPath := filepath.Join(*out, "census.csv")
	f, err := os.Create(censusPath)
	if err != nil {
		fatal(err)
	}
	if err := census.WriteCSV(f, ds.Country); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	total, err := trace.Count(ds.Store)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done in %s: %d handover records over %d days (%d sites, %d sectors, %d UEs)\n",
		time.Since(start).Round(time.Millisecond), total, *days,
		len(ds.Network.Sites), len(ds.Network.Sectors), ds.Population.Len())
	fmt.Printf("wrote %s/, %s and %s/manifest.json\n", *out, censusPath, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telcogen:", err)
	os.Exit(1)
}
