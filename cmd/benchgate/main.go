// Command benchgate compares two `go test -bench` output files and fails
// (exit 2) when any benchmark's median time/op regressed by more than
// the threshold. CI runs it on a pull request with -old from the main
// branch and -new from the PR head, and uploads the -json report as the
// BENCH_compare.json artifact for the performance trajectory.
//
// Usage:
//
//	benchgate -old BENCH_main.txt -new BENCH_head.txt
//	benchgate -old old.txt -new new.txt -threshold 0.10 -json BENCH_compare.json
//	benchgate -snapshot BENCH_out.txt -json BENCH_baseline.json
//
// -snapshot takes a single bench output and writes its per-benchmark
// medians as JSON instead of comparing two runs; `make bench-baseline`
// uses it to record the committed performance-trajectory anchor
// (BENCH_baseline.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"telcolens/internal/benchfmt"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "bench output of the baseline (e.g. main branch)")
		newPath   = flag.String("new", "", "bench output of the candidate (e.g. PR head)")
		threshold = flag.Float64("threshold", 0.10, "relative time/op growth that fails the gate (0.10 = +10%)")
		jsonPath  = flag.String("json", "", "write the comparison report as JSON to this path")
		snapshot  = flag.String("snapshot", "", "bench output to record as a medians snapshot instead of comparing (-json required)")
	)
	flag.Parse()
	if *snapshot == "" && (*oldPath == "" || *newPath == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required (or -snapshot)")
		os.Exit(2)
	}

	parse := func(path string) map[string]*benchfmt.Result {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		res, err := benchfmt.Parse(f)
		if err != nil {
			fatal(err)
		}
		return res
	}
	if *snapshot != "" {
		if *jsonPath == "" {
			fmt.Fprintln(os.Stderr, "benchgate: -snapshot requires -json")
			os.Exit(2)
		}
		res := parse(*snapshot)
		if len(res) == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in snapshot input — refusing to record an empty baseline")
			os.Exit(2)
		}
		snap := benchfmt.MakeSnapshot(res)
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: snapshot of %d benchmarks written to %s\n", len(snap.Benchmarks), *jsonPath)
		return
	}

	oldRes := parse(*oldPath)
	newRes := parse(*newPath)
	rep := benchfmt.Compare(oldRes, newRes, *threshold)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range rep.Entries {
		flag := ""
		if e.Regression {
			flag = "  << REGRESSION"
		}
		fmt.Printf("%-50s %14.0f %14.0f %+7.1f%%%s\n", e.Name, e.OldNsPerOp, e.NewNsPerOp, e.DeltaPct, flag)
	}
	for _, name := range rep.OnlyOld {
		fmt.Printf("%-50s (only in baseline — removed or renamed)\n", name)
	}
	for _, name := range rep.OnlyNew {
		fmt.Printf("%-50s (only in candidate — new benchmark)\n", name)
	}
	// A vacuous comparison must never count as a passing gate: an empty
	// intersection means one side's bench run broke or produced no
	// results, and waving it through would mask any regression.
	if len(rep.Entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no common benchmarks between baseline and candidate — refusing to pass a vacuous gate")
		os.Exit(2)
	}

	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed beyond +%.0f%% time/op\n",
			len(regs), *threshold*100)
		os.Exit(2)
	}
	fmt.Printf("benchgate: OK (threshold +%.0f%% time/op)\n", *threshold*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
