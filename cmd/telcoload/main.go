// Command telcoload replays a generated campaign directory against a
// streaming ingest endpoint as a live measurement feed: records are
// re-delivered in batches over parallel client streams at a configurable
// rate, shuffled inside a bounded reorder window (late arrivals), and
// each study day is closed with a day-completion marker carrying the
// campaign's generation ground truth — after which the ingest side seals
// the day into ordinary partitions.
//
// Usage:
//
//	telcogen -out ./campaign -ues 3000 -days 7    # the source material
//	telcoserve -data ./live -ingest :8080 ...     # the receiving daemon
//	telcoload -src ./campaign -url http://127.0.0.1:8080
//	telcoload -src ./campaign -url ... -rate 50000 -jitter 0.3 -reorder 2048
//
// With -chaos-faults the replay routes through an in-process netchaos
// proxy (internal/netchaos) that injects wire-level faults — resets,
// torn writes, latency, blackholes, bandwidth caps — between the
// clients and the daemon, turning any replay into a network-failure
// drill:
//
//	telcoload -src ./campaign -url http://127.0.0.1:8080 \
//	    -chaos-faults 'reset:up:after=20:every=97,latency:up:every=5:delay=2ms' \
//	    -chaos-seed 7 -retry-for 5m
//
// Because the ingest seal order is canonical, a replay at any rate, with
// any reorder window — and through any chaos plan the retry budget
// survives — lands partitions byte-identical to the source campaign's;
// `diff -r` of the two directories (minus the serving MANIFEST) is the
// end-to-end correctness check, and the soak CI job kills the daemon
// mid-replay to prove the crash-recovery half of that contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"telcolens/internal/ingest"
	"telcolens/internal/netchaos"
	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// loadConfig is the parsed flag set: what to replay, where, how fast,
// how resilient the clients are, and what the wire does to them.
type loadConfig struct {
	src, url string
	rate     float64
	batch    int
	streams  int
	reorder  int
	jitter   float64
	days     int
	seed     int64
	noInit   bool

	retryFor        time.Duration
	maxBackoff      time.Duration
	maxAttempts     int
	breakerFails    int
	breakerCooldown time.Duration

	chaosFaults string
	chaosSeed   int64
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.src, "src", "", "source campaign directory (required)")
	flag.StringVar(&cfg.url, "url", "", "ingest endpoint base URL (required), e.g. http://127.0.0.1:8080")
	flag.Float64Var(&cfg.rate, "rate", 0, "target records/second (0 = as fast as the endpoint accepts)")
	flag.IntVar(&cfg.batch, "batch", 512, "records per POST")
	flag.IntVar(&cfg.streams, "streams", 4, "parallel client streams")
	flag.IntVar(&cfg.reorder, "reorder", 1024, "reorder window in records (0 = deliver in stored order)")
	flag.Float64Var(&cfg.jitter, "jitter", 0.2, "pacing jitter as a fraction of the inter-batch interval")
	flag.IntVar(&cfg.days, "days", 0, "replay only the first N days (0 = all)")
	flag.Int64Var(&cfg.seed, "seed", 1, "shuffle seed for the reorder window")
	flag.BoolVar(&cfg.noInit, "noinit", false, "skip POST /ingest/init (the target is already initialized)")
	flag.DurationVar(&cfg.retryFor, "retry-for", 2*time.Minute, "per-send retry budget before a stream gives up")
	flag.DurationVar(&cfg.maxBackoff, "max-backoff", 0, "cap on any retry wait, including server Retry-After (0 = client default)")
	flag.IntVar(&cfg.maxAttempts, "max-attempts", 0, "attempt cap per send, on top of -retry-for (0 = unlimited)")
	flag.IntVar(&cfg.breakerFails, "breaker-fails", 0, "consecutive transport failures that open the circuit breaker (0 = client default)")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", 0, "how long an open breaker short-circuits sends before a half-open probe (0 = client default)")
	flag.StringVar(&cfg.chaosFaults, "chaos-faults", "", "netchaos fault plan, e.g. 'reset:up:after=10:every=50' (empty = no proxy; see internal/netchaos)")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 1, "jitter seed for the chaos proxy (deterministic per seed)")
	flag.Parse()
	if cfg.src == "" || cfg.url == "" {
		flag.Usage()
		os.Exit(2)
	}
	// An interrupt cancels in-flight sends and aborts backoff waits
	// immediately; the replay then exits non-zero with what failed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "telcoload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg loadConfig) error {
	meta, err := simulate.LoadMeta(cfg.src)
	if err != nil {
		return err
	}
	store, err := trace.NewFileStore(cfg.src)
	if err != nil {
		return err
	}
	days := meta.Config.Days
	if cfg.days > 0 && cfg.days < days {
		days = cfg.days
	}
	batchSize := cfg.batch
	if batchSize <= 0 {
		batchSize = 512
	}
	streams := cfg.streams
	if streams <= 0 {
		streams = 1
	}

	url := cfg.url
	var proxy *netchaos.Proxy
	if cfg.chaosFaults != "" {
		rules, err := netchaos.ParseRules(cfg.chaosFaults)
		if err != nil {
			return err
		}
		target := strings.TrimPrefix(cfg.url, "http://")
		if target == cfg.url {
			return fmt.Errorf("-chaos-faults needs a plain http:// -url (got %q)", cfg.url)
		}
		proxy, err = netchaos.New(target, netchaos.Options{Rules: rules, Seed: cfg.chaosSeed})
		if err != nil {
			return err
		}
		defer proxy.Close()
		url = proxy.URL()
		fmt.Printf("telcoload: chaos proxy %s -> %s (%d rules, seed %d)\n",
			proxy.Addr(), target, len(rules), cfg.chaosSeed)
	}

	clients := make([]*ingest.Client, streams)
	for i := range clients {
		clients[i] = &ingest.Client{
			Base:            url,
			Stream:          uint32(i + 1),
			RetryFor:        cfg.retryFor,
			MaxBackoff:      cfg.maxBackoff,
			MaxAttempts:     cfg.maxAttempts,
			FailThreshold:   cfg.breakerFails,
			BreakerCooldown: cfg.breakerCooldown,
		}
	}
	// The resilience summary prints even when a stream gives up — on a
	// chaos run the retry/breaker counters ARE the result.
	defer printResilience(clients, proxy)
	if !cfg.noInit {
		// The stream target declares the full study window up front (the
		// world-model deployment timeline depends on it) but starts with
		// zero landed days.
		streamMeta := *meta
		streamMeta.Config.Days = 0
		streamMeta.Config.WindowDays = meta.Config.Days
		streamMeta.DayStats = nil
		if err := clients[0].Init(ctx, &streamMeta); err != nil {
			return fmt.Errorf("initializing ingest target: %w", err)
		}
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	var interval time.Duration
	if cfg.rate > 0 {
		interval = time.Duration(float64(batchSize) / cfg.rate * float64(time.Second))
	}
	start := time.Now()
	var total int64
	for day := 0; day < days; day++ {
		cols, err := readDay(store, day)
		if err != nil {
			return err
		}
		shuffleWindow(cols, cfg.reorder, rng)
		if err := sendDay(ctx, clients, cols, batchSize, interval, cfg.jitter, rng); err != nil {
			return fmt.Errorf("day %d: %w", day, err)
		}
		if err := clients[0].DayDone(ctx, day, meta.DayStats[day]); err != nil {
			return fmt.Errorf("closing day %d: %w", day, err)
		}
		total += int64(cols.Len())
		fmt.Printf("telcoload: day %d streamed (%d records, %.0f rec/s cumulative)\n",
			day, cols.Len(), float64(total)/time.Since(start).Seconds())
	}
	st, err := clients[0].Stats()
	if err != nil {
		return err
	}
	fmt.Printf("telcoload: done: %d records in %.1fs; server sealed %d days, manifest gen %d\n",
		total, time.Since(start).Seconds(), st.SealedDays, st.ManifestGen)
	if st.SealedDays < days {
		return fmt.Errorf("server sealed %d of %d days", st.SealedDays, days)
	}
	return nil
}

// printResilience summarizes what the wire did to the replay: the
// clients' aggregate retry/breaker counters and, when a chaos proxy was
// in the path, the faults it actually injected.
func printResilience(clients []*ingest.Client, proxy *netchaos.Proxy) {
	var m ingest.ClientMetrics
	for _, cl := range clients {
		cm := cl.Metrics()
		m.Sends += cm.Sends
		m.Retries += cm.Retries
		m.TransportFailures += cm.TransportFailures
		m.BreakerOpens += cm.BreakerOpens
		m.ShortCircuits += cm.ShortCircuits
		m.RetryAfterHonored += cm.RetryAfterHonored
	}
	fmt.Printf("telcoload: client: %d sends, %d retries, %d transport failures, %d breaker opens, %d short circuits, %d retry-after honored\n",
		m.Sends, m.Retries, m.TransportFailures, m.BreakerOpens, m.ShortCircuits, m.RetryAfterHonored)
	if proxy == nil {
		return
	}
	ps := proxy.Stats()
	fmt.Printf("telcoload: chaos: %d conns, %d resets, %d torn, %d blackholed, %d delayed, %d trickled, %d throttled, %d dial errors, %d B up / %d B down\n",
		ps.Accepted, ps.Resets, ps.Torn, ps.Blackholed, ps.Delayed, ps.Trickled, ps.Throttled, ps.DialErrors, ps.BytesUp, ps.BytesDown)
}

// readDay collects every record of one study day across all shards.
func readDay(store *trace.FileStore, day int) (*trace.ColumnBatch, error) {
	parts, err := store.Partitions()
	if err != nil {
		return nil, err
	}
	cols := new(trace.ColumnBatch)
	var rec trace.Record
	for _, p := range parts {
		if p.Day != day {
			continue
		}
		it, err := store.OpenPartition(p.Day, p.Shard)
		if err != nil {
			return nil, err
		}
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				it.Close()
				return nil, err
			}
			if !ok {
				break
			}
			cols.AppendRecord(&rec)
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
	}
	return cols, nil
}

// shuffleWindow models bounded out-of-order delivery: each record may be
// displaced by up to window positions (a windowed Fisher-Yates), like
// events reaching a collector over links with unequal latency.
func shuffleWindow(cols *trace.ColumnBatch, window int, rng *rand.Rand) {
	if window <= 0 {
		return
	}
	n := cols.Len()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 0; i < n-1; i++ {
		hi := min(i+window, n-1)
		j := i + rng.Intn(hi-i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := new(trace.ColumnBatch)
	out.AppendGather(cols, perm)
	*cols = *out
}

// streamFailure is one client stream that gave up: its retry budget ran
// out (or the context was canceled) on some batch.
type streamFailure struct {
	stream uint32
	err    error
}

// sendDay fans the day's records out over the client streams in
// round-robin batches, pacing each stream to the shared rate target.
// When streams exhaust their retry budgets the error summarizes every
// failed stream, not just the first — the operator sees at a glance
// whether one stream hit a bad path or the endpoint went down for all.
func sendDay(ctx context.Context, clients []*ingest.Client, cols *trace.ColumnBatch, batchSize int, interval time.Duration, jitter float64, rng *rand.Rand) error {
	type job struct{ lo, hi int }
	// Fully buffered so the producer never blocks even if every worker
	// bails out on an error.
	jobs := make(chan job, cols.Len()/batchSize+1)
	errs := make(chan streamFailure, len(clients))
	var wg sync.WaitGroup
	// Per-stream jitter sources: rand.Rand is not goroutine-safe.
	seeds := make([]int64, len(clients))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	for i, cl := range clients {
		wg.Add(1)
		go func(cl *ingest.Client, seed int64) {
			defer wg.Done()
			jr := rand.New(rand.NewSource(seed))
			for j := range jobs {
				if _, err := cl.Send(ctx, slice(cols, j.lo, j.hi)); err != nil {
					errs <- streamFailure{stream: cl.Stream, err: err}
					return
				}
				if interval > 0 {
					// Each of the N streams paces to N×interval so the
					// aggregate hits the target rate.
					d := time.Duration(float64(interval) * float64(len(clients)))
					if jitter > 0 {
						d += time.Duration((jr.Float64()*2 - 1) * jitter * float64(d))
					}
					time.Sleep(d)
				}
			}
		}(cl, seeds[i])
	}
	for lo := 0; lo < cols.Len(); lo += batchSize {
		jobs <- job{lo: lo, hi: min(lo+batchSize, cols.Len())}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	var failed []streamFailure
	for f := range errs {
		failed = append(failed, f)
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i].stream < failed[j].stream })
	var b strings.Builder
	fmt.Fprintf(&b, "%d of %d streams failed:", len(failed), len(clients))
	for _, f := range failed {
		fmt.Fprintf(&b, "\n  stream %d: %v", f.stream, f.err)
	}
	return fmt.Errorf("%s", b.String())
}

// slice views rows [lo, hi) of b without copying.
func slice(b *trace.ColumnBatch, lo, hi int) *trace.ColumnBatch {
	return &trace.ColumnBatch{
		Timestamps: b.Timestamps[lo:hi],
		UEs:        b.UEs[lo:hi],
		TACs:       b.TACs[lo:hi],
		Sources:    b.Sources[lo:hi],
		Targets:    b.Targets[lo:hi],
		Causes:     b.Causes[lo:hi],
		RATs:       b.RATs[lo:hi],
		Results:    b.Results[lo:hi],
		Durations:  b.Durations[lo:hi],
	}
}
