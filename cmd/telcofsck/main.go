// Command telcofsck audits a campaign's trace store: it re-reads every
// partition stream, checks it against the MANIFEST fingerprints and the
// codec, validates .tlix sidecars, and reports manifest entries whose
// files are gone and files the manifest does not cover. With -scrub it
// then repairs what it can — corrupt partitions move (never delete) to
// quarantine/, bad sidecars are dropped, and the MANIFEST is rewritten
// to the surviving set so the campaign serves its remaining days.
//
// Usage:
//
//	telcofsck -data ./campaign            # audit only (read-only)
//	telcofsck -data ./campaign -scrub     # audit + quarantine + repair
//	telcofsck -data ./campaign -json      # machine-readable report
//
// Exit status: 0 clean (or fully repaired by -scrub), 1 issues found
// and not repaired, 2 the audit itself failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"telcolens/internal/trace"
)

func main() {
	var (
		data   = flag.String("data", "campaign", "campaign directory to audit")
		scrub  = flag.Bool("scrub", false, "quarantine corrupt partitions and rewrite the manifest")
		asJSON = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, *data, *scrub, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "telcofsck:", err)
		os.Exit(2)
	}
}

func run(ctx context.Context, dir string, scrub, asJSON bool) error {
	store, err := trace.NewFileStore(dir)
	if err != nil {
		return err
	}

	var report *trace.VerifyReport
	var res *trace.ScrubResult
	if scrub {
		res, err = trace.Scrub(ctx, store)
		if err != nil {
			return err
		}
		report = res.Report
	} else {
		report, err = trace.Verify(ctx, store)
		if err != nil {
			return err
		}
	}
	quarantine, err := trace.LoadQuarantine(nil, dir)
	if err != nil {
		return err
	}

	if asJSON {
		out := map[string]any{"report": report}
		if res != nil {
			out["quarantined"] = res.Quarantined
			out["indexes_dropped"] = res.IndexesDropped
			out["entries_dropped"] = res.EntriesDropped
		}
		if len(quarantine) > 0 {
			out["quarantine_log"] = quarantine
		}
		e := json.NewEncoder(os.Stdout)
		e.SetIndent("", " ")
		if err := e.Encode(out); err != nil {
			return err
		}
	} else {
		printReport(dir, report, res, quarantine)
	}

	// After a scrub every issue has been resolved (quarantined, dropped,
	// or pruned), so the store serves again: exit clean. A plain audit
	// exits 1 on any finding so CI and cron wrappers can alert.
	if !report.OK() && res == nil {
		os.Exit(1)
	}
	return nil
}

func printReport(dir string, report *trace.VerifyReport, res *trace.ScrubResult, quarantine []trace.QuarantineRecord) {
	fmt.Printf("%s: %d partitions, %d records", dir, report.Partitions, report.Records)
	if !report.ManifestUsable {
		fmt.Printf(" (no manifest: structural checks only)")
	}
	fmt.Println()
	for _, issue := range report.Issues {
		fmt.Printf("  CORRUPT %s\n", issue)
	}
	for _, p := range report.Missing {
		fmt.Printf("  MISSING day %d shard %d: manifest entry without a file\n", p.Day, p.Shard)
	}
	for _, p := range report.Orphans {
		fmt.Printf("  ORPHAN  day %d shard %d: file without a manifest entry\n", p.Day, p.Shard)
	}
	if res != nil {
		for _, p := range res.Quarantined {
			fmt.Printf("  -> quarantined day %d shard %d\n", p.Day, p.Shard)
		}
		for _, p := range res.IndexesDropped {
			fmt.Printf("  -> dropped corrupt index for day %d shard %d\n", p.Day, p.Shard)
		}
		for _, p := range res.EntriesDropped {
			fmt.Printf("  -> dropped manifest entry for day %d shard %d\n", p.Day, p.Shard)
		}
	}
	if days := trace.QuarantinedDays(quarantine); len(days) > 0 {
		fmt.Printf("  quarantined days (excluded from serving): %v\n", days)
	}
	if report.OK() {
		fmt.Println("  clean")
	}
}
