// Command telcoanalyze runs one experiment (a paper table or figure)
// against a campaign directory produced by telcogen.
//
// Usage:
//
//	telcoanalyze -data ./campaign -exp fig8
//	telcoanalyze -list
package main

import (
	"flag"
	"fmt"
	"os"

	"telcolens"
)

func main() {
	var (
		data = flag.String("data", "campaign", "campaign directory (from telcogen)")
		exp  = flag.String("exp", "", "experiment id (e.g. table2, fig8)")
		list = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range telcolens.Experiments() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "telcoanalyze: -exp required (or -list)")
		os.Exit(2)
	}

	ds, err := telcolens.Load(*data)
	if err != nil {
		fatal(err)
	}
	a, err := telcolens.NewAnalyzer(ds)
	if err != nil {
		fatal(err)
	}
	if err := telcolens.RunExperiment(*exp, a, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telcoanalyze:", err)
	os.Exit(1)
}
