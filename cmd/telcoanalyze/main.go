// Command telcoanalyze runs one experiment (a paper table or figure)
// against a campaign directory produced by telcogen.
//
// Usage:
//
//	telcoanalyze -data ./campaign -exp fig8
//	telcoanalyze -data ./campaign -exp table5 -parallel 8 -progress
//	telcoanalyze -data ./campaign -exp fig7 -from 7 -to 13   # week 2 only
//	telcoanalyze -data ./campaign -exp fig7 -from 7 -to 13 -v # + scan metrics
//	telcoanalyze -data ./campaign -exp table5 -cpuprofile cpu.pprof
//	telcoanalyze -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"telcolens"
)

func main() {
	var (
		data       = flag.String("data", "campaign", "campaign directory (from telcogen)")
		exp        = flag.String("exp", "", "experiment id (e.g. table2, fig8)")
		list       = flag.Bool("list", false, "list available experiments and exit")
		parallel   = flag.Int("parallel", 0, "scan parallelism (0 = GOMAXPROCS)")
		progress   = flag.Bool("progress", false, "report scan progress on stderr")
		verbose    = flag.Bool("v", false, "print scan metrics (partitions, records, blocks pruned/decoded, bytes) on stderr")
		finProfile = flag.Bool("finalizeprofile", false, "print the scan vs finalize wall-time split on stderr")
		fromDay    = flag.Int("from", -1, "first study day of the analysis window (-1 = study start)")
		toDay      = flag.Int("to", -1, "last study day of the analysis window, inclusive (-1 = study end)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *fromDay >= 0 && *toDay >= 0 && *fromDay > *toDay {
		fmt.Fprintf(os.Stderr, "telcoanalyze: empty window [%d, %d]\n", *fromDay, *toDay)
		os.Exit(2)
	}

	if *list {
		for _, e := range telcolens.Experiments() {
			fmt.Printf("%-8s %-12s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "telcoanalyze: -exp required (or -list)")
		os.Exit(2)
	}

	if err := run(*data, *exp, *parallel, *progress, *verbose, *finProfile, *fromDay, *toDay, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "telcoanalyze:", err)
		os.Exit(1)
	}
}

// run wraps the analysis so profiles are flushed on every exit path
// (fatal os.Exit would silently drop a pending CPU profile).
func run(data, exp string, parallel int, progress, verbose, finProfile bool, fromDay, toDay int, cpuprofile, memprofile string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	ds, err := telcolens.Load(data)
	if err != nil {
		return err
	}
	opts := []telcolens.Option{telcolens.WithParallelism(parallel)}
	if fromDay >= 0 || toDay >= 0 {
		// Time-windowed run: v2 block stores skip the out-of-window blocks
		// instead of paying for a full-month scan.
		opts = append(opts, telcolens.WithWindow(fromDay, toDay))
	}
	if progress {
		opts = append(opts, telcolens.WithProgress(func(ev telcolens.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "\rscanning %d/%d partitions", ev.Done, ev.Total)
			if ev.Done == ev.Total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	a, err := telcolens.NewAnalyzer(ds, opts...)
	if err != nil {
		return err
	}
	if err := telcolens.RunExperiment(ctx, exp, a, os.Stdout); err != nil {
		return err
	}
	if verbose {
		printScanStats(a.ScanStats())
	}
	if finProfile {
		fmt.Fprintln(os.Stderr, a.ScanStats().ProfileSummary())
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize a settled heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func printScanStats(st telcolens.ScanStats) {
	fmt.Fprintln(os.Stderr, "scan:", st.Summary())
}
