package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"telcolens/internal/admission"
	"telcolens/internal/ingest"
)

// A query killed by its context maps to the distinct 503 JSON body,
// still carries X-Manifest-Gen, and leaves nothing in the result cache
// — the next identical query recomputes.
func TestQueryDeadlineMapsTo503(t *testing.T) {
	s := newQueryServer(t)
	s.adm = admission.NewController(admission.Config{})

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/query?ue=3&noindex=1", nil).WithContext(ctx)
	s.handleQuery(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired query: status %d (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Manifest-Gen") == "" {
		t.Fatal("aborted query dropped X-Manifest-Gen")
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("503 body is not JSON: %v (%s)", err, rec.Body.String())
	}
	if body["error"] != "query aborted" {
		t.Fatalf("503 body = %v", body)
	}

	// The aborted execution must not have been cached as a partial
	// result: the same query fresh is a miss, then computes fully.
	rec = get(t, s, "/query?ue=3&noindex=1")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("post-abort query: status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}

	// An unparseable or negative timeout is the client's error.
	if rec = get(t, s, "/query?ue=3&timeout=-5"); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative timeout: status %d", rec.Code)
	}
}

// During a declared degraded window /query serves cache-only: memoized
// answers still flow (marked), everything else sheds with 429 +
// Retry-After, artifacts shed too, ingest does not, and /healthz
// reports the window.
func TestOverloadShedsAndHealthz(t *testing.T) {
	s := newQueryServer(t)
	s.adm = admission.NewController(admission.Config{
		QuerySlots: 1, QueryQueue: -1,
		OverloadThreshold: 2, OverloadWindow: 10 * time.Second,
		OverloadCooldown: time.Hour,
	})

	// Warm the cache while healthy.
	if rec := get(t, s, "/query?ue=3"); rec.Code != http.StatusOK {
		t.Fatalf("warmup query: %d", rec.Code)
	}

	// Trip the detector: saturate the single query slot and reject twice.
	release, err := s.adm.Admit(context.Background(), admission.ClassQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.adm.Admit(context.Background(), admission.ClassQuery); err == nil {
			t.Fatal("over-capacity admit succeeded")
		}
	}
	release()
	if !s.adm.Overloaded() {
		t.Fatal("detector did not trip")
	}

	// Cached answer: still served, declared degraded.
	rec := get(t, s, "/query?ue=3")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Degraded") != "cache-only" {
		t.Fatalf("cached query during overload: status %d, X-Degraded %q",
			rec.Code, rec.Header().Get("X-Degraded"))
	}
	// Uncached answer: shed, typed, with a comeback time and the
	// generation header intact.
	rec = get(t, s, "/query?ue=4")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("uncached query during overload: status %d (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" || rec.Header().Get("X-Manifest-Gen") == "" {
		t.Fatalf("shed response headers = %v", rec.Header())
	}
	var shed map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &shed); err != nil || shed["error"] != "overloaded" {
		t.Fatalf("shed body = %s (%v)", rec.Body.String(), err)
	}

	// Artifacts shed through the admission middleware; ingest would not
	// (priority ingest > query > artifacts), asserted in the admission
	// package's controller tests.
	routes := s.routes()
	arec := httptest.NewRecorder()
	routes.ServeHTTP(arec, httptest.NewRequest(http.MethodGet, "/artifacts", nil))
	if arec.Code != http.StatusTooManyRequests {
		t.Fatalf("artifacts during overload: status %d", arec.Code)
	}

	// /healthz reports the degraded window.
	hrec := httptest.NewRecorder()
	routes.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" {
		t.Fatalf("healthz status = %v during overload", health["status"])
	}
	ov, ok := health["overload"].(map[string]any)
	if !ok || ov["degraded"] != true || ov["until"] == nil {
		t.Fatalf("healthz overload section = %v", health["overload"])
	}

	// The admission counters feed the /stats "admission" section
	// (handleStats needs a full analyzer snapshot, so assert on the
	// controller's stats directly): the shed above must be booked
	// against the query class.
	classes, ok := s.adm.Stats()["classes"].([]admission.LimiterStats)
	if !ok || len(classes) != 3 {
		t.Fatalf("admission classes = %v", s.adm.Stats()["classes"])
	}
	var querySheds int64
	for _, c := range classes {
		if c.Class == "query" {
			querySheds = c.Shed
		}
	}
	if querySheds == 0 {
		t.Fatal("query shed counter did not move")
	}
}

// Slow and vanishing clients must not leak handler goroutines: a
// slowloris /ingest body dies at the read timeout, an abandoned /query
// connection unwinds when the response write fails, and the goroutine
// count settles back to baseline.
func TestNoGoroutineLeakSlowClients(t *testing.T) {
	s := newQueryServer(t)
	s.adm = admission.NewController(admission.Config{})
	svc, err := ingest.Open(t.TempDir(), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s.ing = svc

	srv := newHTTPServer("", s.routes())
	// The production read/write deadlines bound slow clients; shrink
	// them so the test observes the unwind in milliseconds.
	srv.ReadTimeout = 300 * time.Millisecond
	srv.WriteTimeout = 500 * time.Millisecond
	srv.IdleTimeout = 200 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Let the server goroutines settle before taking the baseline.
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	// Slowloris ingest bodies: declare a big payload, send one byte,
	// stall. The server must cut each at the read deadline.
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Type: %s\r\nContent-Length: 1048576\r\n\r\nx",
			ingest.ContentTypeBinary)
	}
	// Abandoned queries: send a full request, vanish without reading.
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "GET /query?ue=%d&noindex=1&agg=1 HTTP/1.1\r\nHost: x\r\n\r\n", i%5)
		conn.Close()
	}

	// The goroutine count must return to (near) baseline once the
	// deadlines fire; poll with retries, bounded well above the
	// deadlines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the count
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d after slow clients\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// The shed body is well-formed JSON a client can machine-read; the
// queue-full shape mirrors the overload shape.
func TestWriteShedShape(t *testing.T) {
	rec := httptest.NewRecorder()
	writeShed(rec, "queue_full", 3)
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") != "3" {
		t.Fatalf("status %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if !strings.Contains(rec.Body.String(), `"queue_full"`) {
		t.Fatalf("body %s", rec.Body.String())
	}
}
