package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"telcolens/internal/admission"
	"telcolens/internal/query"
	"telcolens/internal/trace"
)

// The ad-hoc query endpoint: GET /query serves per-UE / per-TAC /
// per-sector record slices and small aggregates straight from the
// partition files, pruned by the MANIFEST zone maps and the .tlix
// secondary indexes (see internal/query). Queries run against the
// query view pinned in the current snapshot — the same atomically
// swapped state the artifact handlers serve — so a query never mixes
// generations, and results are memoized per (query, manifest gen).
//
// Parameters:
//
//	ue, tac, sector   numeric equality predicates (conjunctive)
//	from, to          unix millis, RFC 3339, or day:N (inclusive window)
//	day               shorthand for one whole study day
//	limit             row cap (default 1000, max 100000)
//	agg               also compute the slice aggregate (agg=1)
//	noindex           disable index pruning, forcing scan fallback
//	format            json (default) or csv
//	timeout           execution deadline (duration or millis), capped by
//	                  the server's -query-timeout budget; expiry is a
//	                  distinct 503 JSON body and nothing is cached
//
// The response carries X-Cache (hit/miss) and X-Manifest-Gen headers;
// per-request prune/decode metrics ride in the JSON body and accumulate
// into the "query" section of /stats.

// parseQueryParams decodes the /query URL parameters.
func parseQueryParams(q url.Values) (p query.Params, format string, err error) {
	parseU32 := func(name string) (*uint32, error) {
		s := q.Get(name)
		if s == "" {
			return nil, nil
		}
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q", name, s)
		}
		u := uint32(v)
		return &u, nil
	}
	ue, err := parseU32("ue")
	if err != nil {
		return p, "", err
	}
	if ue != nil {
		id := trace.UEID(*ue)
		p.UE = &id
	}
	if p.TAC, err = parseU32("tac"); err != nil {
		return p, "", err
	}
	if p.Sector, err = parseU32("sector"); err != nil {
		return p, "", err
	}
	if p.From, err = query.ParseTime(q.Get("from")); err != nil {
		return p, "", err
	}
	if p.To, err = query.ParseTime(q.Get("to")); err != nil {
		return p, "", err
	}
	if s := q.Get("day"); s != "" {
		day, err := strconv.Atoi(s)
		if err != nil {
			return p, "", fmt.Errorf("bad day %q", s)
		}
		tr := trace.DayRange(day, day)
		p.From, p.To = tr.MinTS, tr.MaxTS
	}
	if s := q.Get("limit"); s != "" {
		if p.Limit, err = strconv.Atoi(s); err != nil || p.Limit < 0 {
			return p, "", fmt.Errorf("bad limit %q", s)
		}
	}
	p.Aggregate = boolParam(q, "agg")
	p.NoIndex = boolParam(q, "noindex")
	format = q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" {
		return p, "", fmt.Errorf("bad format %q (want json or csv)", format)
	}
	return p, format, nil
}

// boolParam treats presence without an explicit falsy value as true
// (?agg, ?agg=1, ?agg=true all enable).
func boolParam(q url.Values, name string) bool {
	if _, ok := q[name]; !ok {
		return false
	}
	switch q.Get(name) {
	case "0", "false", "no":
		return false
	}
	return true
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	cur := s.current(w)
	if cur == nil {
		return
	}
	if cur.qview == nil {
		http.Error(w, "query view unavailable for this snapshot", http.StatusServiceUnavailable)
		return
	}
	p, format, err := parseQueryParams(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	timeout, err := admission.ParseTimeout(r.URL.Query().Get("timeout"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The generation header goes out on every response from here on —
	// shed, deadline, success — so clients always learn which snapshot
	// the daemon was serving, even for answers it refused to compute.
	w.Header().Set("X-Manifest-Gen", strconv.FormatUint(cur.qview.Gen, 10))

	ctx := r.Context()
	if s.adm != nil {
		if s.adm.Overloaded() {
			// Declared degraded mode: answer what the cache already holds,
			// shed everything that would need a scan.
			if res := s.eng.Cached(cur.qview, p); res != nil {
				w.Header().Set("X-Cache", "hit")
				w.Header().Set("X-Degraded", "cache-only")
				s.noteQuery(res.Metrics, 0, true)
				writeQueryResult(w, res, format)
				return
			}
			s.adm.NoteShed(admission.ClassQuery)
			writeShed(w, "overloaded", s.adm.RetryAfter())
			return
		}
		release, err := s.adm.Admit(ctx, admission.ClassQuery)
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
		qctx, cancel := s.adm.QueryContext(ctx, timeout)
		defer cancel()
		ctx = qctx
	} else if timeout > 0 {
		qctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		ctx = qctx
	}

	start := time.Now()
	res, hit, err := s.eng.Query(ctx, cur.qview, p)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// A distinct, machine-readable 503: the deadline (or the
			// client) killed the execution mid-scan. The engine never
			// caches an aborted result, so a retry recomputes.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"error":  "query aborted",
				"reason": err.Error(),
			})
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.noteQuery(res.Metrics, time.Since(start), hit)
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	writeQueryResult(w, res, format)
}

// writeQueryResult renders one query answer in the requested format.
func writeQueryResult(w http.ResponseWriter, res *query.Result, format string) {
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := res.WriteCSV(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, res)
}

// noteQuery folds one served query into the /stats counters.
func (s *server) noteQuery(m query.Metrics, dur time.Duration, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if hit {
		s.queryCacheHits++
		return // cached results touched nothing new
	}
	s.qBlocksPruned += m.BlocksPruned
	s.qBlocksDecoded += m.BlocksDecoded
	s.qBytesRead += m.BytesRead
	s.lastQueryMet = m
	s.lastQueryDur = dur
}

// queryStats renders the /stats "query" section: cumulative serving
// counters, the engine's cache stats, and the last uncached query's
// per-request scan metrics.
func (s *server) queryStats() map[string]any {
	s.mu.RLock()
	queries, hits := s.queries, s.queryCacheHits
	pruned, decoded, bytesRead := s.qBlocksPruned, s.qBlocksDecoded, s.qBytesRead
	last, lastDur := s.lastQueryMet, s.lastQueryDur
	s.mu.RUnlock()
	cs := s.eng.CacheStats()
	return map[string]any{
		"served":     queries,
		"cache_hits": hits,
		"cache": map[string]any{
			"hits":    cs.Hits,
			"misses":  cs.Misses,
			"entries": cs.Entries,
		},
		"blocks_pruned":  pruned,
		"blocks_decoded": decoded,
		"bytes_read":     bytesRead,
		"last_query": map[string]any{
			"partitions_considered": last.PartitionsConsidered,
			"partitions_pruned":     last.PartitionsPruned,
			"partitions_scanned":    last.PartitionsScanned,
			"blocks_pruned":         last.BlocksPruned,
			"blocks_decoded":        last.BlocksDecoded,
			"bytes_read":            last.BytesRead,
			"rows_scanned":          last.RowsScanned,
			"duration_seconds":      lastDur.Seconds(),
		},
	}
}
