package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"telcolens/internal/query"
	"telcolens/internal/trace"
)

// newQueryServer builds a server around a small on-disk store, with a
// snapshot that carries only the pinned query view (no analyzer — the
// /query path never touches it).
func newQueryServer(t *testing.T) *server {
	t.Helper()
	fs, err := trace.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := trace.DayStart(0).UnixMilli()
	recs := make([]trace.Record, 50)
	for i := range recs {
		recs[i] = trace.Record{
			Timestamp: base + int64(i)*60_000,
			UE:        trace.UEID(i % 5),
			TAC:       35000001,
			Source:    1,
			Target:    2,
			Result:    trace.Success,
		}
	}
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.(trace.BatchWriter).WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	qv, err := query.NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	return &server{
		started: time.Now(),
		nudge:   make(chan struct{}, 1),
		eng:     query.New(fs),
		cur:     &snapshot{qview: qv, renderedAt: time.Now()},
	}
}

func get(t *testing.T, s *server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestHandleQuery(t *testing.T) {
	s := newQueryServer(t)

	rec := get(t, s, "/query?ue=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q on first query", got)
	}
	if rec.Header().Get("X-Manifest-Gen") == "" {
		t.Fatal("missing X-Manifest-Gen header")
	}
	var res query.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("ue=3 returned %d rows, want 10", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.UE != 3 {
			t.Fatalf("row for ue %d leaked into ue=3 slice", r.UE)
		}
	}

	if rec = get(t, s, "/query?ue=3"); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q on repeat query", rec.Header().Get("X-Cache"))
	}

	rec = get(t, s, "/query?ue=3&format=csv")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 11 || !strings.HasPrefix(lines[0], "ts,ue,tac") {
		t.Fatalf("csv body has %d lines, first %q", len(lines), lines[0])
	}

	if rec = get(t, s, "/query?ue=notanumber"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad ue: status %d", rec.Code)
	}
	if rec = get(t, s, "/query?from=10&to=5"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("inverted window: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d", rec.Code)
	}

	// A pending server (no snapshot yet) must 503, not crash.
	pending := &server{started: time.Now(), eng: s.eng}
	if rec = get(t, pending, "/query?ue=1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending server: status %d", rec.Code)
	}
}

// TestQueryCacheSwapRace hammers /query while a writer repeatedly
// lands new days and swaps snapshots (the refresh path: new view, swap
// s.cur, InvalidateCache). The invariant under -race: every response's
// generation is at least the generation published before the request
// started — a swap never leaves a stale cached result reachable — and
// the row count always matches the generation the response claims.
func TestQueryCacheSwapRace(t *testing.T) {
	dir := t.TempDir()
	fs, err := trace.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Each day contributes 10 rows to ue=3 (50 records, UE = i%5).
	writeDay := func(day int) {
		t.Helper()
		base := trace.DayStart(day).UnixMilli()
		recs := make([]trace.Record, 50)
		for i := range recs {
			recs[i] = trace.Record{
				Timestamp: base + int64(i)*60_000,
				UE:        trace.UEID(i % 5),
				TAC:       35000001,
				Source:    1,
				Target:    2,
				Result:    trace.Success,
			}
		}
		w, err := fs.AppendPartition(day, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.(trace.BatchWriter).WriteBatch(recs); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeDay(0)
	qv, err := query.NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{
		started: time.Now(),
		nudge:   make(chan struct{}, 1),
		eng:     query.New(fs),
		cur:     &snapshot{qview: qv, renderedAt: time.Now()},
	}

	// rowsAt maps a published generation to the ue=3 row count any
	// response claiming that generation must carry; published is the
	// newest generation visible to requests that start now.
	var pub struct {
		sync.Mutex
		rowsAt    map[uint64]int
		published uint64
	}
	pub.rowsAt = map[uint64]int{qv.Gen: 10}
	pub.published = qv.Gen

	const swaps = 8
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the refresh path
		defer wg.Done()
		for day := 1; day <= swaps; day++ {
			writeDay(day)
			nv, err := query.NewView(fs)
			if err != nil {
				t.Error(err)
				return
			}
			pub.Lock()
			pub.rowsAt[nv.Gen] = 10 * (day + 1)
			pub.Unlock()
			s.mu.Lock()
			s.cur = &snapshot{qview: nv, renderedAt: time.Now(), manifestGen: nv.Gen}
			s.eng.InvalidateCache()
			s.mu.Unlock()
			pub.Lock()
			pub.published = nv.Gen
			pub.Unlock()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pub.Lock()
				floor := pub.published
				done := len(pub.rowsAt) > swaps
				pub.Unlock()
				rec := httptest.NewRecorder()
				s.handleQuery(rec, httptest.NewRequest(http.MethodGet, "/query?ue=3&limit=100000", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("query status %d: %s", rec.Code, rec.Body.String())
					return
				}
				gen, err := strconv.ParseUint(rec.Header().Get("X-Manifest-Gen"), 10, 64)
				if err != nil {
					t.Errorf("bad X-Manifest-Gen: %v", err)
					return
				}
				if gen < floor {
					t.Errorf("served generation %d, but %d was already published before the request", gen, floor)
					return
				}
				var res query.Result
				if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
					t.Error(err)
					return
				}
				pub.Lock()
				want, known := pub.rowsAt[gen]
				pub.Unlock()
				if !known {
					t.Errorf("response claims unpublished generation %d", gen)
					return
				}
				if len(res.Rows) != want {
					t.Errorf("generation %d served %d rows, want %d (stale cache?)", gen, len(res.Rows), want)
					return
				}
				if done {
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStatsQuerySection asserts /stats surfaces the per-query and
// cumulative prune counters that queries accumulate.
func TestStatsQuerySection(t *testing.T) {
	s := newQueryServer(t)
	if rec := get(t, s, "/query?ue=2&noindex=1"); rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d", rec.Code)
	}
	if rec := get(t, s, "/query?ue=2&noindex=1"); rec.Code != http.StatusOK { // cache hit
		t.Fatalf("repeat query failed: %d", rec.Code)
	}

	// handleStats only needs the query section when no snapshot is
	// mounted; drop it so the analyzer-backed sections stay out of the
	// way while the accumulated query counters survive (they live on the
	// server, not the snapshot).
	s.mu.Lock()
	s.cur = nil
	s.mu.Unlock()
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	q, ok := out["query"].(map[string]any)
	if !ok {
		t.Fatalf("no query section in /stats: %v", out)
	}
	if q["served"].(float64) != 2 || q["cache_hits"].(float64) != 1 {
		t.Fatalf("served/cache_hits = %v/%v, want 2/1", q["served"], q["cache_hits"])
	}
	last, ok := q["last_query"].(map[string]any)
	if !ok {
		t.Fatal("no last_query section")
	}
	if last["rows_scanned"].(float64) == 0 {
		t.Fatal("last_query.rows_scanned is zero after an uncached query")
	}
	if last["blocks_decoded"].(float64) == 0 {
		t.Fatal("last_query.blocks_decoded is zero after a noindex scan")
	}
	cache, ok := q["cache"].(map[string]any)
	if !ok || cache["hits"].(float64) != 1 {
		t.Fatalf("cache stats = %v", q["cache"])
	}
}
