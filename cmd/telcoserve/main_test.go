package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"telcolens/internal/query"
	"telcolens/internal/trace"
)

// newQueryServer builds a server around a small on-disk store, with a
// snapshot that carries only the pinned query view (no analyzer — the
// /query path never touches it).
func newQueryServer(t *testing.T) *server {
	t.Helper()
	fs, err := trace.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := trace.DayStart(0).UnixMilli()
	recs := make([]trace.Record, 50)
	for i := range recs {
		recs[i] = trace.Record{
			Timestamp: base + int64(i)*60_000,
			UE:        trace.UEID(i % 5),
			TAC:       35000001,
			Source:    1,
			Target:    2,
			Result:    trace.Success,
		}
	}
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.(trace.BatchWriter).WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	qv, err := query.NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	return &server{
		started: time.Now(),
		nudge:   make(chan struct{}, 1),
		eng:     query.New(fs),
		cur:     &snapshot{qview: qv, renderedAt: time.Now()},
	}
}

func get(t *testing.T, s *server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestHandleQuery(t *testing.T) {
	s := newQueryServer(t)

	rec := get(t, s, "/query?ue=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q on first query", got)
	}
	if rec.Header().Get("X-Manifest-Gen") == "" {
		t.Fatal("missing X-Manifest-Gen header")
	}
	var res query.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("ue=3 returned %d rows, want 10", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.UE != 3 {
			t.Fatalf("row for ue %d leaked into ue=3 slice", r.UE)
		}
	}

	if rec = get(t, s, "/query?ue=3"); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q on repeat query", rec.Header().Get("X-Cache"))
	}

	rec = get(t, s, "/query?ue=3&format=csv")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 11 || !strings.HasPrefix(lines[0], "ts,ue,tac") {
		t.Fatalf("csv body has %d lines, first %q", len(lines), lines[0])
	}

	if rec = get(t, s, "/query?ue=notanumber"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad ue: status %d", rec.Code)
	}
	if rec = get(t, s, "/query?from=10&to=5"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("inverted window: status %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d", rec.Code)
	}

	// A pending server (no snapshot yet) must 503, not crash.
	pending := &server{started: time.Now(), eng: s.eng}
	if rec = get(t, pending, "/query?ue=1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending server: status %d", rec.Code)
	}
}

// TestStatsQuerySection asserts /stats surfaces the per-query and
// cumulative prune counters that queries accumulate.
func TestStatsQuerySection(t *testing.T) {
	s := newQueryServer(t)
	if rec := get(t, s, "/query?ue=2&noindex=1"); rec.Code != http.StatusOK {
		t.Fatalf("query failed: %d", rec.Code)
	}
	if rec := get(t, s, "/query?ue=2&noindex=1"); rec.Code != http.StatusOK { // cache hit
		t.Fatalf("repeat query failed: %d", rec.Code)
	}

	// handleStats only needs the query section when no snapshot is
	// mounted; drop it so the analyzer-backed sections stay out of the
	// way while the accumulated query counters survive (they live on the
	// server, not the snapshot).
	s.mu.Lock()
	s.cur = nil
	s.mu.Unlock()
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	q, ok := out["query"].(map[string]any)
	if !ok {
		t.Fatalf("no query section in /stats: %v", out)
	}
	if q["served"].(float64) != 2 || q["cache_hits"].(float64) != 1 {
		t.Fatalf("served/cache_hits = %v/%v, want 2/1", q["served"], q["cache_hits"])
	}
	last, ok := q["last_query"].(map[string]any)
	if !ok {
		t.Fatal("no last_query section")
	}
	if last["rows_scanned"].(float64) == 0 {
		t.Fatal("last_query.rows_scanned is zero after an uncached query")
	}
	if last["blocks_decoded"].(float64) == 0 {
		t.Fatal("last_query.blocks_decoded is zero after a noindex scan")
	}
	cache, ok := q["cache"].(map[string]any)
	if !ok || cache["hits"].(float64) != 1 {
		t.Fatalf("cache stats = %v", q["cache"])
	}
}
