// Command telcoserve is a long-running HTTP daemon that serves the
// paper's analysis artifacts from a campaign directory — the repo's
// first serving workload. It keeps the full scan state warm in memory,
// watches the trace store's MANIFEST, and when new days land (telcogen
// -append) refreshes incrementally: the current state is checkpointed,
// resumed against the reloaded campaign, and only the new partitions are
// scanned before the rendered artifacts are atomically swapped. Clients
// never see a cold cache and never trigger a rescan.
//
// Usage:
//
//	telcoserve -data ./campaign -addr :8480
//	telcoserve -data ./campaign -poll 1s -parallel 4
//
// Endpoints:
//
//	GET /                  index of artifact ids
//	GET /artifacts         JSON list of artifacts (id, title, paper ref)
//	GET /artifacts/{id}    rendered text (Accept/?format=json for JSON)
//	GET /query             ad-hoc record slices: ?ue=&tac=&sector=&from=&to=
//	                       &limit=&agg=&format=json|csv (see query.go)
//	GET /stats             scan metrics, per-query prune counters,
//	                       snapshot age, refresh history
//	GET /healthz           liveness probe (JSON: status, generation, ingest depth)
//
// With -ingest the daemon also mounts the streaming ingest endpoints
// (POST /ingest, /ingest/day, /ingest/init, /ingest/flush — see the
// internal/ingest package) on the same address: records stream in over
// HTTP, accumulate in a WAL-backed memtable, and seal into ordinary
// partitions, which the refresh loop merges incrementally. A local seal
// nudges the refresh loop directly instead of waiting for the next
// manifest poll (the poll stays as a fallback and covers external
// writers like telcogen -append). The data directory may start empty:
// the daemon serves 503s until a campaign descriptor arrives via
// POST /ingest/init and then bootstraps the serving state.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"telcolens"
	"telcolens/internal/admission"
	"telcolens/internal/ingest"
	"telcolens/internal/query"
	"telcolens/internal/trace"
)

func main() {
	var (
		data      = flag.String("data", "campaign", "campaign directory (from telcogen)")
		addr      = flag.String("addr", ":8480", "HTTP listen address")
		poll      = flag.Duration("poll", 2*time.Second, "store manifest poll interval")
		parallel  = flag.Int("parallel", 0, "scan parallelism (0 = GOMAXPROCS)")
		ingestOn  = flag.Bool("ingest", false, "mount the streaming ingest endpoints (/ingest/*) on this address")
		walSync   = flag.Bool("wal-sync", false, "fsync the ingest WAL on every batch (machine-crash durability)")
		ingestMax = flag.Int64("ingest-pending", 0, "ingest backlog budget in records before 429s (0 = default)")
		scrub     = flag.Bool("scrub", false, "audit the store at startup and quarantine corrupt partitions before serving")
		ckptPath  = flag.String("checkpoint", "", "analyzer checkpoint file: resumed at startup, saved after every refresh (empty = cold scans only)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget for in-flight requests")

		queryInflight = flag.Int("query-inflight", 0, "concurrent /query executions admitted (0 = default)")
		queryQueue    = flag.Int("query-queue", 0, "bounded /query wait queue beyond the inflight slots (0 = default, negative = none)")
		queryTimeout  = flag.Duration("query-timeout", 0, "server-side /query execution budget; a request ?timeout= may only shorten it (0 = default)")
		ingInflight   = flag.Int("ingest-inflight", 0, "concurrent /ingest requests admitted (0 = default)")
		ingQueue      = flag.Int("ingest-queue", 0, "bounded /ingest wait queue (0 = default, negative = none)")
		artInflight   = flag.Int("artifact-inflight", 0, "concurrent artifact/index requests admitted (0 = default)")
		artQueue      = flag.Int("artifact-queue", 0, "bounded artifact wait queue (0 = default, negative = none)")
		ovWindow      = flag.Duration("overload-window", 0, "sliding window the overload detector counts rejections over (0 = default)")
		ovThreshold   = flag.Int("overload-threshold", 0, "queue-full rejections inside the window that declare overload (0 = default, negative = never)")
		ovCooldown    = flag.Duration("overload-cooldown", 0, "minimum degraded window once overload is declared (0 = default)")
		retryAfter    = flag.Duration("retry-after", 0, "wait suggested to shed clients via Retry-After (0 = default)")
	)
	flag.Parse()

	cfg := serveConfig{
		dir:        *data,
		addr:       *addr,
		poll:       *poll,
		parallel:   *parallel,
		ingestOn:   *ingestOn,
		walSync:    *walSync,
		ingestMax:  *ingestMax,
		scrub:      *scrub,
		checkpoint: *ckptPath,
		drain:      *drain,
		admission: admission.Config{
			QuerySlots: *queryInflight, QueryQueue: *queryQueue, QueryBudget: *queryTimeout,
			IngestSlots: *ingInflight, IngestQueue: *ingQueue,
			ArtifactSlots: *artInflight, ArtifactQueue: *artQueue,
			OverloadWindow: *ovWindow, OverloadThreshold: *ovThreshold,
			OverloadCooldown: *ovCooldown, RetryAfter: *retryAfter,
		},
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "telcoserve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the daemon's flag set.
type serveConfig struct {
	dir        string
	addr       string
	poll       time.Duration
	parallel   int
	ingestOn   bool
	walSync    bool
	ingestMax  int64
	scrub      bool
	checkpoint string
	drain      time.Duration
	// admission tunes the per-endpoint concurrency limiters and the
	// overload detector (zero fields use the package defaults).
	admission admission.Config
}

// HTTP hardening bounds: header/body read and response write deadlines
// per request, plus body-size caps on the two endpoints that accept or
// stream significant payloads. Scan-heavy artifact renders happen at
// refresh time, never inside a request, so tight deadlines are safe.
const (
	httpReadHeaderTimeout = 10 * time.Second
	httpReadTimeout       = time.Minute
	httpWriteTimeout      = 5 * time.Minute
	httpIdleTimeout       = 2 * time.Minute
	// maxIngestBody caps one POST /ingest batch (matches the WAL's own
	// frame sanity bound).
	maxIngestBody = 64 << 20
	// maxQueryBody: /query is GET-shaped; any body is a client bug.
	maxQueryBody = 1 << 20
)

// artifactView is one rendered experiment held in memory.
type artifactView struct {
	ID       string
	Title    string
	PaperRef string
	Text     []byte
	Artifact *telcolens.Artifact // nil when the experiment errored
	Err      string
}

// snapshot is one immutable serving generation: the warm analyzer plus
// every rendered artifact. Refreshes build a new snapshot and swap it.
type snapshot struct {
	analyzer    *telcolens.Analyzer
	views       map[string]*artifactView
	order       []string
	days        int
	partitions  int
	manifestGen uint64
	renderedAt  time.Time
	// qview pins the partition set /query executions run against, so a
	// query sees exactly this snapshot's generation even while new days
	// are landing (nil only if the view could not be built).
	qview *query.View
}

// server owns the current snapshot and the refresh bookkeeping.
type server struct {
	dir      string
	parallel int
	// checkpoint is the analyzer checkpoint file (empty = disabled):
	// resumed at startup, re-saved after every successful refresh so a
	// restart warms up without a full rescan.
	checkpoint string
	// ing is the co-hosted ingest service (nil without -ingest); nudge
	// wakes the watch loop the moment a local seal lands.
	ing   *ingest.Service
	nudge chan struct{}
	// eng executes /query requests; its result cache is invalidated on
	// every snapshot swap.
	eng *query.Engine
	// adm is the admission controller: per-endpoint concurrency
	// limiters, the overload detector, and the /query deadline budget.
	// Nil (tests) means no admission control.
	adm *admission.Controller

	mu sync.RWMutex
	// cur is nil while the campaign is pending: the data directory has no
	// descriptor yet (ingest mode before /ingest/init).
	cur *snapshot
	// lastGen is the trace-manifest generation the serving state is
	// synced to; the poll loop refreshes whenever the store moves past
	// it. It only advances on success, so a failed warm-up or refresh is
	// retried on the next poll.
	lastGen uint64

	started        time.Time
	refreshes      int64
	fullRescans    int64
	refreshErrors  int64
	lastScanned    int
	lastRefreshDur time.Duration

	// Query serving counters (see noteQuery): totals plus the last
	// uncached query's per-request scan metrics for /stats.
	queries        int64
	queryCacheHits int64
	qBlocksPruned  int64
	qBlocksDecoded int64
	qBytesRead     int64
	lastQueryMet   query.Metrics
	lastQueryDur   time.Duration
}

func (s *server) options() []telcolens.Option {
	if s.parallel > 0 {
		return []telcolens.Option{telcolens.WithParallelism(s.parallel)}
	}
	return nil
}

// render runs every experiment against the warm analyzer. Individual
// experiment failures (e.g. a window too short for home detection) are
// served as error artifacts instead of taking the daemon down; a failed
// warm scan is reported so the caller does not mark the state synced
// (the poll loop then retries instead of serving errors forever).
func render(ctx context.Context, a *telcolens.Analyzer) (views map[string]*artifactView, order []string, warmOK bool) {
	// One fused pass computes every scan-state unit the experiments share
	// (resumed analyzers already hold them and skip straight through);
	// the per-experiment runs below then only read cached state.
	warmOK = true
	if _, err := a.Scan(ctx); err != nil {
		warmOK = false
		log.Printf("warming scan state: %v (experiments will retry individually)", err)
	}
	views = make(map[string]*artifactView)
	for _, e := range telcolens.Experiments() {
		v := &artifactView{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef}
		art, err := e.Run(ctx, a)
		if err != nil {
			v.Err = err.Error()
			v.Text = []byte(fmt.Sprintf("%s — error: %v\n", e.ID, err))
		} else {
			var buf bytes.Buffer
			if err := art.Render(&buf); err != nil {
				v.Err = err.Error()
			}
			v.Text = buf.Bytes()
			v.Artifact = art
		}
		views[e.ID] = v
		order = append(order, e.ID)
	}
	return views, order, warmOK
}

// build turns a warm analyzer into a serving snapshot; warmOK reports
// whether the shared scan state was computed (callers only mark the
// state synced to the store generation when it was).
func build(ctx context.Context, a *telcolens.Analyzer, ds *telcolens.Dataset, gen uint64) (*snapshot, bool) {
	views, order, warmOK := render(ctx, a)
	parts, _ := a.Covered()
	qv, err := query.NewView(ds.Store)
	if err != nil {
		log.Printf("building query view: %v (/query disabled for this snapshot)", err)
		qv = nil
	}
	return &snapshot{
		analyzer:    a,
		views:       views,
		order:       order,
		days:        ds.Config.Days,
		partitions:  parts,
		manifestGen: gen,
		renderedAt:  time.Now(),
		qview:       qv,
	}, warmOK
}

// saveCheckpoint persists the serving analyzer's state (no-op without
// -checkpoint). Failures are logged, not fatal: the file is an
// accelerator for the next startup, never a serving dependency.
func (s *server) saveCheckpoint(a *telcolens.Analyzer) {
	if s.checkpoint == "" {
		return
	}
	if err := telcolens.SaveCheckpoint(s.checkpoint, a); err != nil {
		log.Printf("saving checkpoint %s: %v", s.checkpoint, err)
	}
}

// degradedDays reports the study days excluded from serving because a
// scrub quarantined their partitions — the daemon's declared degraded
// mode, surfaced on /healthz and /stats. Errors read as "no log".
func (s *server) degradedDays() []int {
	recs, err := trace.LoadQuarantine(nil, s.dir)
	if err != nil || len(recs) == 0 {
		return nil
	}
	return trace.QuarantinedDays(recs)
}

// pendingBeyondWindow reports whether the store holds partitions for
// days the campaign manifest does not describe yet — an append caught
// between landing a day and re-saving manifest.json. The serving state
// must not mark itself synced then: the campaign manifest update does
// not bump the trace MANIFEST generation, so skipping now would skip
// forever.
func pendingBeyondWindow(ds *telcolens.Dataset) bool {
	mr, ok := ds.Store.(trace.ManifestReader)
	if !ok {
		return false
	}
	m, err := mr.Manifest()
	if err != nil || m == nil {
		return false
	}
	for i := range m.Partitions {
		if m.Partitions[i].Day >= ds.Config.Days {
			return true
		}
	}
	return false
}

// manifestGen reads the trace store's current manifest generation
// without touching partition files (0 when no usable manifest).
func manifestGen(store telcolens.Store) uint64 {
	mr, ok := store.(trace.ManifestReader)
	if !ok {
		return 0
	}
	m, err := mr.Manifest()
	if err != nil || m == nil {
		return 0
	}
	return m.Gen
}

// refresh reloads the campaign and brings the serving state up to date:
// checkpoint the current analyzer, resume it against the reloaded
// dataset, Refresh (scanning only new partitions), re-render, swap. On
// any error the previous snapshot keeps serving and the next poll
// retries — a store caught mid-append simply fails validation until the
// day finishes landing.
func (s *server) refresh(ctx context.Context) error {
	start := time.Now()
	s.mu.RLock()
	old := s.cur
	s.mu.RUnlock()

	ds, err := telcolens.Load(s.dir)
	if err != nil {
		return fmt.Errorf("reloading campaign: %w", err)
	}
	var a *telcolens.Analyzer
	fullRescan := false
	var ckpt bytes.Buffer
	if err := old.analyzer.Checkpoint(&ckpt); err != nil {
		return fmt.Errorf("checkpointing: %w", err)
	}
	a, err = telcolens.ResumeAnalyzer(ds, &ckpt, s.options()...)
	if err != nil {
		// The campaign changed identity (regenerated with another seed or
		// shape): fall back to a cold rebuild.
		log.Printf("refresh: checkpoint not resumable (%v); rebuilding cold", err)
		fullRescan = true
		if a, err = telcolens.NewAnalyzer(ds, s.options()...); err != nil {
			return err
		}
	}
	res, err := a.Refresh(ctx)
	if err != nil {
		return fmt.Errorf("refreshing: %w", err)
	}
	gen := manifestGen(ds.Store)
	if res.PartitionsScanned == 0 && !res.FullRescan && ds.Config.Days == old.days {
		// Nothing new to merge — usually a mid-append poll (some shards
		// of a day landed, the day is incomplete). Skip the re-render and
		// swap; only mark the generation consumed when no landed
		// partition is still waiting for the campaign manifest to
		// describe it, because that manifest update does not bump the
		// trace MANIFEST generation and must not be skipped past.
		if !pendingBeyondWindow(ds) {
			s.mu.Lock()
			s.lastGen = gen
			s.mu.Unlock()
		}
		return nil
	}
	next, warmOK := build(ctx, a, ds, gen)

	s.mu.Lock()
	s.cur = next
	if warmOK {
		s.lastGen = gen
	}
	// Cached query results are keyed on the view generation; a swap
	// makes them unreachable, so drop them rather than let them age out.
	s.eng.InvalidateCache()
	s.refreshes++
	if fullRescan || res.FullRescan {
		s.fullRescans++
	}
	s.lastScanned = res.PartitionsScanned
	s.lastRefreshDur = time.Since(start)
	s.mu.Unlock()
	s.saveCheckpoint(a)
	log.Printf("refresh: %d partitions merged (full rescan: %v), %d days, %d artifacts, took %s",
		res.PartitionsScanned, fullRescan || res.FullRescan, res.Days, len(next.order),
		time.Since(start).Round(time.Millisecond))
	return nil
}

// poke wakes the watch loop without blocking (seal notifications from
// the co-hosted ingest service; coalesced by the 1-slot buffer).
func (s *server) poke() {
	select {
	case s.nudge <- struct{}{}:
	default:
	}
}

// bootstrap brings a pending server live once the campaign descriptor
// exists: load, cold scan, serve.
func (s *server) bootstrap(ctx context.Context) error {
	ds, err := telcolens.Load(s.dir)
	if err != nil {
		return err
	}
	a, err := telcolens.NewAnalyzer(ds, s.options()...)
	if err != nil {
		return err
	}
	gen := manifestGen(ds.Store)
	snap, warmOK := build(ctx, a, ds, gen)
	s.mu.Lock()
	s.cur = snap
	if warmOK {
		s.lastGen = gen
	}
	s.eng.InvalidateCache()
	s.mu.Unlock()
	s.saveCheckpoint(a)
	log.Printf("campaign bootstrapped: %d days, %d artifacts", snap.days, len(snap.order))
	return nil
}

// watch polls the store manifest — and listens for local seal nudges —
// and refreshes when the store generation moves past what the serving
// state is synced to.
func (s *server) watch(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-s.nudge:
		}
		s.mu.RLock()
		pending := s.cur == nil
		synced := s.lastGen
		s.mu.RUnlock()
		if pending {
			if _, err := os.Stat(s.dir); err != nil {
				continue
			}
			if err := s.bootstrap(ctx); err != nil {
				// Normal while no descriptor has been ingested yet.
				continue
			}
			continue
		}
		store, err := trace.NewFileStore(s.dir)
		if err != nil {
			continue
		}
		gen := manifestGen(store)
		if gen == synced {
			continue
		}
		if err := s.refresh(ctx); err != nil {
			s.mu.Lock()
			s.refreshErrors++
			s.mu.Unlock()
			log.Printf("refresh failed (serving previous state): %v", err)
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	e := json.NewEncoder(w)
	e.SetIndent("", " ")
	if err := e.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// current returns the serving snapshot, or nil after replying 503 when
// the campaign is still pending its first ingest.
func (s *server) current(w http.ResponseWriter) *snapshot {
	s.mu.RLock()
	cur := s.cur
	s.mu.RUnlock()
	if cur == nil {
		http.Error(w, "campaign pending: waiting for POST /ingest/init", http.StatusServiceUnavailable)
		return nil
	}
	return cur
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	cur := s.current(w)
	if cur == nil {
		return
	}
	fmt.Fprintf(w, "telcolens serving %d artifacts over %d study days (snapshot %s)\n\n",
		len(cur.order), cur.days, cur.renderedAt.UTC().Format(time.RFC3339))
	for _, id := range cur.order {
		v := cur.views[id]
		status := ""
		if v.Err != "" {
			status = "  [error]"
		}
		fmt.Fprintf(w, "  /artifacts/%-10s %-12s %s%s\n", id, v.PaperRef, v.Title, status)
	}
	fmt.Fprintf(w, "\n  /query   ad-hoc slices: ?ue=&tac=&sector=&from=&to=&limit=&agg=\n")
	fmt.Fprintf(w, "  /stats   serving, scan and query statistics\n")
}

func (s *server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	cur := s.current(w)
	if cur == nil {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/artifacts")
	id = strings.Trim(id, "/")
	if id == "" {
		type entry struct {
			ID       string `json:"id"`
			Title    string `json:"title"`
			PaperRef string `json:"paper_ref"`
			Error    string `json:"error,omitempty"`
		}
		out := make([]entry, 0, len(cur.order))
		for _, id := range cur.order {
			v := cur.views[id]
			out = append(out, entry{ID: v.ID, Title: v.Title, PaperRef: v.PaperRef, Error: v.Err})
		}
		writeJSON(w, out)
		return
	}
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	v, ok := cur.views[id]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown artifact %q", id), http.StatusNotFound)
		return
	}
	if v.Err != "" {
		http.Error(w, v.Err, http.StatusUnprocessableEntity)
		return
	}
	if wantJSON {
		writeJSON(w, v.Artifact)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(v.Text)
}

// ingestView summarizes the co-hosted ingest side for /stats and
// /healthz (nil without -ingest).
func (s *server) ingestView() map[string]any {
	if s.ing == nil {
		return nil
	}
	ist := s.ing.Stats()
	return map[string]any{
		"initialized":          ist.Initialized,
		"sealed_days":          ist.SealedDays,
		"pending_days":         ist.PendingDays,
		"memtable_records":     ist.MemtableRecords,
		"wal_bytes":            ist.WALBytes,
		"ingest_lag_sec":       ist.IngestLagSec,
		"ingested_records":     ist.IngestedRecords,
		"duplicate_batches":    ist.DuplicateBatches,
		"backpressure_rejects": ist.BackpressureRejects,
		"seals":                ist.Seals,
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cur := s.cur
	refreshes, fullRescans, refreshErrors := s.refreshes, s.fullRescans, s.refreshErrors
	lastScanned, lastDur := s.lastScanned, s.lastRefreshDur
	s.mu.RUnlock()
	out := map[string]any{
		"started":        s.started.UTC(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"pending":        cur == nil,
		"refreshes":      refreshes,
		"full_rescans":   fullRescans,
		"refresh_errors": refreshErrors,
		"last_refresh": map[string]any{
			"partitions_merged": lastScanned,
			"duration_seconds":  lastDur.Seconds(),
		},
	}
	if cur != nil {
		st := cur.analyzer.ScanStats()
		out["days"] = cur.days
		out["partitions"] = cur.partitions
		out["manifest_gen"] = cur.manifestGen
		out["snapshot_at"] = cur.renderedAt.UTC()
		out["snapshot_age_sec"] = time.Since(cur.renderedAt).Seconds()
		out["artifacts"] = len(cur.order)
		out["scan"] = map[string]any{
			"scans":          st.Scans,
			"partitions":     st.Partitions,
			"records":        st.Records,
			"blocks_read":    st.BlocksRead,
			"blocks_skipped": st.BlocksSkipped,
			"bytes_read":     st.BytesRead,
		}
	}
	out["query"] = s.queryStats()
	if s.adm != nil {
		out["admission"] = s.adm.Stats()
	}
	if days := s.degradedDays(); len(days) > 0 {
		out["degraded"] = true
		out["quarantined_days"] = days
	}
	if iv := s.ingestView(); iv != nil {
		out["ingest"] = iv
	}
	writeJSON(w, out)
}

// handleHealthz is the liveness probe: always 200 while the process
// serves, with enough state to see the live pipeline at a glance —
// serving generation, snapshot age, declared degraded mode (days a
// scrub quarantined), and (in ingest mode) WAL depth, memtable
// backlog, and ingest lag.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cur := s.cur
	s.mu.RUnlock()
	out := map[string]any{"status": "ok"}
	if cur == nil {
		out["status"] = "pending"
	} else {
		out["days"] = cur.days
		out["manifest_gen"] = cur.manifestGen
		out["snapshot_age_sec"] = time.Since(cur.renderedAt).Seconds()
	}
	if days := s.degradedDays(); len(days) > 0 {
		// Still 200: the daemon is healthy, the data is declaredly
		// partial. Probes alert on the field, not the status code.
		out["status"] = "degraded"
		out["quarantined_days"] = days
	}
	if s.adm != nil {
		// The overload window rides on every probe (trips, window
		// counters); a live degraded window also flips the status.
		st := s.adm.State()
		out["overload"] = st
		if st.Degraded {
			out["status"] = "degraded"
		}
	}
	if iv := s.ingestView(); iv != nil {
		out["ingest"] = iv
	}
	writeJSON(w, out)
}

// writeShed answers a shed request: 429 with Retry-After and a JSON
// body naming the reason, so clients distinguish declared load
// shedding from real failures and know when to come back.
func writeShed(w http.ResponseWriter, reason string, retryAfter int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(map[string]any{
		"error":               reason,
		"retry_after_seconds": retryAfter,
	})
}

// writeAdmissionError maps an Admit failure onto the wire: both shed
// shapes are 429 + Retry-After (the client remedy is the same — back
// off), a context expiring while queued is 503.
func (s *server) writeAdmissionError(w http.ResponseWriter, err error) {
	var ov *admission.OverloadError
	var qf *admission.QueueFullError
	switch {
	case errors.As(err, &ov):
		writeShed(w, "overloaded", s.adm.RetryAfter())
	case errors.As(err, &qf):
		writeShed(w, "queue_full", s.adm.RetryAfter())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "request abandoned while queued for admission", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// admitted wraps h in the class's admission decision. A nil controller
// (tests) admits everything.
func (s *server) admitted(class admission.Class, h http.Handler) http.Handler {
	if s.adm == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.adm.Admit(r.Context(), class)
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
		h.ServeHTTP(w, r)
	})
}

// routes assembles the daemon's handler tree. /query runs its own
// admission inside handleQuery (it needs the cache-only degraded
// path); /stats and /healthz stay outside admission control entirely —
// observability must answer precisely when the daemon is shedding.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.admitted(admission.ClassArtifacts, http.HandlerFunc(s.handleIndex)))
	art := s.admitted(admission.ClassArtifacts, http.HandlerFunc(s.handleArtifacts))
	mux.Handle("/artifacts", art)
	mux.Handle("/artifacts/", art)
	mux.Handle("/query", http.MaxBytesHandler(http.HandlerFunc(s.handleQuery), maxQueryBody))
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.ing != nil {
		ih := http.MaxBytesHandler(s.admitted(admission.ClassIngest, s.ing.Handler()), maxIngestBody)
		mux.Handle("/ingest", ih)
		mux.Handle("/ingest/", ih)
	}
	return mux
}

// newHTTPServer wraps a handler tree in the hardened http.Server (the
// timeout constants above); extracted so tests can run the real server
// shape against a live listener.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: httpReadHeaderTimeout,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}
}

// startupScrub audits the store before the daemon loads anything,
// quarantining corrupt partitions so the campaign serves its surviving
// days in declared degraded mode instead of failing outright.
func startupScrub(ctx context.Context, dir string) error {
	if _, err := os.Stat(dir); err != nil {
		return nil // nothing to scrub yet (ingest-mode cold start)
	}
	store, err := trace.NewFileStore(dir)
	if err != nil {
		return err
	}
	res, err := trace.Scrub(ctx, store)
	if err != nil {
		return fmt.Errorf("startup scrub: %w", err)
	}
	if res.Report.OK() && len(res.Report.Issues) == 0 {
		log.Printf("startup scrub: %d partitions clean", res.Report.Partitions)
		return nil
	}
	for _, p := range res.Quarantined {
		log.Printf("startup scrub: quarantined day %d shard %d", p.Day, p.Shard)
	}
	for _, p := range res.IndexesDropped {
		log.Printf("startup scrub: dropped corrupt index day %d shard %d", p.Day, p.Shard)
	}
	for _, p := range res.EntriesDropped {
		log.Printf("startup scrub: dropped manifest entry day %d shard %d (file missing)", p.Day, p.Shard)
	}
	return nil
}

func run(cfg serveConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.scrub {
		if err := startupScrub(ctx, cfg.dir); err != nil {
			return err
		}
	}

	s := &server{dir: cfg.dir, parallel: cfg.parallel, checkpoint: cfg.checkpoint,
		started: time.Now(), nudge: make(chan struct{}, 1),
		adm: admission.NewController(cfg.admission)}
	// The query engine reads partitions through its own store handle —
	// FileStore is stateless, so one handle serves every generation; the
	// per-snapshot view pins which partitions a query may touch.
	qstore, err := trace.NewFileStore(cfg.dir)
	if err != nil {
		return fmt.Errorf("opening store for queries: %w", err)
	}
	s.eng = query.New(qstore)
	if cfg.ingestOn {
		svc, err := ingest.Open(cfg.dir, ingest.Options{
			MaxPendingRecords: cfg.ingestMax,
			SyncEvery:         cfg.walSync,
			OnSeal: func(day int) {
				log.Printf("ingest: day %d sealed", day)
				s.poke()
			},
		})
		if err != nil {
			return fmt.Errorf("opening ingest service: %w", err)
		}
		defer svc.Close()
		s.ing = svc
	}

	ds, err := telcolens.Load(cfg.dir)
	switch {
	case err == nil:
		var a *telcolens.Analyzer
		var resumed bool
		if cfg.checkpoint != "" {
			a, resumed, err = telcolens.ResumeAnalyzerFile(cfg.checkpoint, ds, s.options()...)
		} else {
			a, err = telcolens.NewAnalyzer(ds, s.options()...)
		}
		if err != nil {
			return err
		}
		if resumed {
			if _, err := a.Refresh(ctx); err != nil {
				// A resumable checkpoint the store has since diverged from:
				// rebuild cold rather than refuse to start.
				log.Printf("refreshing resumed checkpoint: %v; rebuilding cold", err)
				resumed = false
				if a, err = telcolens.NewAnalyzer(ds, s.options()...); err != nil {
					return err
				}
			}
		}
		start := time.Now()
		log.Printf("warming analysis state for %s (%d days, resumed checkpoint: %v)...",
			cfg.dir, ds.Config.Days, resumed)
		gen := manifestGen(ds.Store)
		snap, warmOK := build(ctx, a, ds, gen)
		s.cur = snap
		if warmOK {
			// A failed warm-up leaves lastGen at 0, so the poll loop keeps
			// retrying instead of serving error artifacts until restart.
			s.lastGen = gen
			s.saveCheckpoint(a)
		}
		log.Printf("serving %d artifacts on %s (initial scan took %s)",
			len(s.cur.order), cfg.addr, time.Since(start).Round(time.Millisecond))
	case cfg.ingestOn:
		// No campaign yet: serve 503s and bootstrap once the descriptor
		// arrives over POST /ingest/init.
		log.Printf("no campaign in %s yet (%v); waiting for ingest", cfg.dir, err)
	default:
		return err
	}

	go s.watch(ctx, cfg.poll)

	srv := newHTTPServer(cfg.addr, s.routes())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish
	// within the budget, then stop the ingest side seal-safely — a
	// non-forced flush seals any complete days; everything else stays
	// acknowledged-durable in the WAL for replay on the next start.
	log.Printf("shutting down (drain %s)", cfg.drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	err = srv.Shutdown(shutCtx)
	if s.ing != nil {
		if _, ferr := s.ing.Flush(false); ferr != nil && !errors.Is(ferr, ingest.ErrNotInitialized) {
			log.Printf("ingest drain flush: %v", ferr)
		}
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
