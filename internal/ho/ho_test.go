package ho

import (
	"testing"

	"telcolens/internal/topology"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		target topology.RAT
		want   Type
	}{
		{topology.TwoG, To2G},
		{topology.ThreeG, To3G},
		{topology.FourG, Intra},
		{topology.FiveG, Intra}, // 5G targets are NSA-anchored at 4G
	}
	for _, c := range cases {
		if got := Classify(c.target); got != c.want {
			t.Errorf("Classify(%s) = %s, want %s", c.target, got, c.want)
		}
	}
}

func TestTargetRATRoundTrip(t *testing.T) {
	for _, typ := range AllTypes() {
		if got := Classify(typ.TargetRAT()); got != typ {
			t.Errorf("Classify(TargetRAT(%s)) = %s", typ, got)
		}
	}
}

func TestStrings(t *testing.T) {
	if Intra.String() != "Intra 4G/5G-NSA" {
		t.Fatal("intra label wrong")
	}
	if To3G.String() != "4G/5G-NSA to 3G" || To2G.String() != "4G/5G-NSA to 2G" {
		t.Fatal("vertical labels wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type has empty label")
	}
}

func TestAllTypesOrder(t *testing.T) {
	types := AllTypes()
	if len(types) != int(NumTypes) {
		t.Fatalf("%d types", len(types))
	}
	// Dummy-coding order matters for the regressions: intra is baseline.
	if types[0] != Intra {
		t.Fatal("intra must be the baseline level")
	}
}
