// Package ho defines the handover taxonomy the paper analyzes (§5.2): the
// EPC-side view where every handover originates at a 4G/5G-NSA anchor and
// targets either another 4G/5G-NSA sector (horizontal) or a legacy 3G/2G
// sector (vertical downgrade).
package ho

import (
	"fmt"

	"telcolens/internal/topology"
)

// Type classifies a handover by its target RAT, from the 4G EPC's
// perspective.
type Type uint8

// Handover types. Intra is horizontal (4G/5G-NSA → 4G/5G-NSA); To3G and
// To2G are the vertical downgrades the paper dissects.
const (
	Intra Type = iota
	To3G
	To2G
	NumTypes
)

// AllTypes lists handover types in canonical order (also the dummy-coding
// order of the paper's regressions, with Intra as baseline).
func AllTypes() []Type { return []Type{Intra, To3G, To2G} }

// String returns the paper's label for the handover type.
func (t Type) String() string {
	switch t {
	case Intra:
		return "Intra 4G/5G-NSA"
	case To3G:
		return "4G/5G-NSA to 3G"
	case To2G:
		return "4G/5G-NSA to 2G"
	default:
		return fmt.Sprintf("ho.Type(%d)", uint8(t))
	}
}

// Classify maps a target RAT to the handover type. The source is always a
// 4G/5G-NSA anchor in the captured traces (see paper §8: the EPC cannot see
// upward transitions), so only the target matters. 5G targets are anchored
// at 4G sectors and therefore count as horizontal.
func Classify(target topology.RAT) Type {
	switch target {
	case topology.TwoG:
		return To2G
	case topology.ThreeG:
		return To3G
	default:
		return Intra
	}
}

// TargetRAT returns a representative target RAT for the handover type
// (FourG for horizontal handovers).
func (t Type) TargetRAT() topology.RAT {
	switch t {
	case To2G:
		return topology.TwoG
	case To3G:
		return topology.ThreeG
	default:
		return topology.FourG
	}
}
