// Package mobility synthesizes per-UE daily movement: diurnal intensity
// profiles (the weekday double peak and weekend single peak of Fig 7),
// mobility-class-specific trajectories over the site graph, and the visit
// sequences behind the paper's mobility metrics (visited sectors and radius
// of gyration, Fig 10).
package mobility

import (
	"time"

	"telcolens/internal/randx"
)

// BinsPerDay is the number of 30-minute intervals the paper's temporal
// analysis uses.
const BinsPerDay = 48

// anchor is a point of the piecewise-linear diurnal intensity curve.
type anchor struct {
	hour float64
	v    float64
}

// Weekday profile: ×3 ramp from 06:00 to the 08:00–08:30 peak, secondary
// peak at 15:00–15:30, ≈11%/30min decline afterwards, trough 02:00–03:30.
var weekdayAnchors = []anchor{
	{0, 0.18}, {2, 0.08}, {3.5, 0.08}, {5, 0.16}, {6, 0.30},
	{8, 1.00}, {8.5, 0.97}, {10, 0.74}, {12.5, 0.80}, {14, 0.86},
	{15, 0.93}, {15.5, 0.95}, {17, 0.72}, {19, 0.47}, {21, 0.30},
	{23.5, 0.20}, {24, 0.18},
}

// Weekend profile: single peak 12:00–13:00 at ≈67% of the weekday peak
// (the paper's 33% Sunday-vs-Friday reduction), trough 03:00–05:00.
var weekendAnchors = []anchor{
	{0, 0.25}, {1, 0.18}, {3, 0.07}, {5, 0.07}, {9, 0.35},
	{12, 0.64}, {12.5, 0.67}, {13, 0.67}, {15, 0.60}, {18, 0.55},
	{21, 0.38}, {24, 0.25},
}

var (
	weekdayProfile = buildProfile(weekdayAnchors)
	weekendProfile = buildProfile(weekendAnchors)
)

func buildProfile(anchors []anchor) [BinsPerDay]float64 {
	var p [BinsPerDay]float64
	for b := 0; b < BinsPerDay; b++ {
		h := (float64(b) + 0.5) / 2 // bin midpoint hour
		p[b] = interpAnchors(anchors, h)
	}
	return p
}

func interpAnchors(anchors []anchor, h float64) float64 {
	for i := 1; i < len(anchors); i++ {
		if h <= anchors[i].hour {
			lo, hi := anchors[i-1], anchors[i]
			if hi.hour == lo.hour {
				return hi.v
			}
			f := (h - lo.hour) / (hi.hour - lo.hour)
			return lo.v + f*(hi.v-lo.v)
		}
	}
	return anchors[len(anchors)-1].v
}

// IsWeekend reports whether a 0-based study day is a Saturday or Sunday.
// The study window starts on Monday 29-Jan-2024.
func IsWeekend(day int) bool {
	dow := day % 7
	return dow == 5 || dow == 6
}

// Intensity returns the 48-bin diurnal movement intensity for a study day
// (peak-normalized to the weekday maximum).
func Intensity(day int) [BinsPerDay]float64 {
	if IsWeekend(day) {
		return weekendProfile
	}
	return weekdayProfile
}

// DailyVolumeFactor is the ratio of a day's mean intensity to the weekday
// mean, used to scale per-day move counts (weekends see fewer moves).
func DailyVolumeFactor(day int) float64 {
	p := Intensity(day)
	var sum float64
	for _, v := range p {
		sum += v
	}
	var wd float64
	for _, v := range weekdayProfile {
		wd += v
	}
	return sum / wd
}

// offsetSampler samples a time-of-day offset from a 48-bin profile.
type offsetSampler struct {
	choice *randx.WeightedChoice
}

var (
	weekdaySampler = mustSampler(weekdayProfile)
	weekendSampler = mustSampler(weekendProfile)
)

func mustSampler(p [BinsPerDay]float64) *offsetSampler {
	return &offsetSampler{choice: randx.MustWeightedChoice(p[:])}
}

// SampleOffset draws a time offset within the day following the day's
// diurnal intensity profile, at millisecond granularity.
func SampleOffset(r *randx.Rand, day int) time.Duration {
	s := weekdaySampler
	if IsWeekend(day) {
		s = weekendSampler
	}
	bin := s.choice.Sample(r)
	binStart := time.Duration(bin) * 30 * time.Minute
	within := time.Duration(r.Int63n(int64(30 * time.Minute / time.Millisecond)))
	return binStart + within*time.Millisecond
}
