package mobility

import (
	"math"
	"sort"
	"testing"
	"time"

	"telcolens/internal/census"
	"telcolens/internal/devices"
	"telcolens/internal/geo"
	"telcolens/internal/randx"
	"telcolens/internal/subscribers"
	"telcolens/internal/topology"
)

func TestIntensityProfiles(t *testing.T) {
	wd := Intensity(0) // Monday
	we := Intensity(5) // Saturday

	// Weekday peak at 08:00-08:30 (bin 16).
	peakBin := 0
	for b, v := range wd {
		if v > wd[peakBin] {
			peakBin = b
		}
	}
	if peakBin != 16 {
		t.Fatalf("weekday peak at bin %d (%.1fh), want 16 (08:00)", peakBin, float64(peakBin)/2)
	}
	// ×3 ramp between 06:00 and 08:00.
	if ratio := wd[16] / wd[12]; ratio < 2.5 || ratio > 4 {
		t.Fatalf("06:00→08:00 ramp = %.2f, want ≈3", ratio)
	}
	// Secondary peak near 15:00-15:30 exceeds its surroundings.
	if wd[30] <= wd[26] || wd[30] <= wd[36] {
		t.Fatal("no afternoon secondary peak")
	}
	// Trough in the 02:00-03:30 region.
	troughBin := 0
	for b, v := range wd {
		if v < wd[troughBin] {
			troughBin = b
		}
	}
	if troughBin < 4 || troughBin > 7 {
		t.Fatalf("weekday trough at bin %d, want 02:00-03:30", troughBin)
	}

	// Weekend: single midday peak, ≈33% lower than weekday peak.
	wePeak := 0
	for b, v := range we {
		if v > we[wePeak] {
			wePeak = b
		}
	}
	if wePeak < 24 || wePeak > 26 {
		t.Fatalf("weekend peak at bin %d, want 12:00-13:00", wePeak)
	}
	if drop := 1 - we[wePeak]/wd[16]; math.Abs(drop-0.33) > 0.05 {
		t.Fatalf("weekend peak reduction = %.3f, want ≈0.33", drop)
	}
}

func TestIsWeekend(t *testing.T) {
	// Study starts Monday 29-Jan-2024.
	weekends := []int{5, 6, 12, 13, 19, 20, 26, 27}
	asSet := make(map[int]bool)
	for _, d := range weekends {
		asSet[d] = true
	}
	for day := 0; day < 28; day++ {
		if IsWeekend(day) != asSet[day] {
			t.Fatalf("IsWeekend(%d) wrong", day)
		}
	}
}

func TestDailyVolumeFactor(t *testing.T) {
	if f := DailyVolumeFactor(0); f != 1 {
		t.Fatalf("weekday factor = %g", f)
	}
	f := DailyVolumeFactor(5)
	if f >= 1 || f < 0.5 {
		t.Fatalf("weekend factor = %g, want (0.5,1)", f)
	}
}

func TestSampleOffsetDistribution(t *testing.T) {
	r := randx.New(5)
	var counts [BinsPerDay]int
	const n = 200000
	for i := 0; i < n; i++ {
		off := SampleOffset(r, 0)
		if off < 0 || off >= 24*time.Hour {
			t.Fatalf("offset %v out of day", off)
		}
		counts[int(off/(30*time.Minute))]++
	}
	// Peak bin (08:00) must see far more moves than the trough.
	if counts[16] < 5*counts[5] {
		t.Fatalf("peak/trough ratio too small: %d vs %d", counts[16], counts[5])
	}
}

type testWorld struct {
	country *census.Country
	net     *topology.Network
	catalog *devices.Catalog
	pop     *subscribers.Population
	planner *Planner
}

func buildWorld(t testing.TB) *testWorld {
	t.Helper()
	country, err := census.Generate(census.DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Generate(topology.DefaultGenConfig(42), country)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := devices.GenerateCatalog(42)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := subscribers.Generate(42, 4000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(country, net)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{country, net, catalog, pop, planner}
}

func TestPlanDayBasicInvariants(t *testing.T) {
	w := buildWorld(t)
	r := randx.New(1)
	for i := 0; i < 500; i++ {
		ue := &w.pop.UEs[i%w.pop.Len()]
		model := w.pop.Model(ue)
		plan := w.planner.PlanDay(r, ue, model, i%28)
		var prev time.Duration = -1
		cur := ue.HomeSite
		for _, mv := range plan.Moves {
			if mv.Offset < prev {
				t.Fatal("moves not time-ordered")
			}
			prev = mv.Offset
			if mv.Offset < 0 || mv.Offset >= 24*time.Hour {
				t.Fatalf("move offset %v outside day", mv.Offset)
			}
			if mv.From != cur {
				t.Fatal("move chain broken: From != current site")
			}
			if w.net.Site(mv.To) == nil {
				t.Fatal("move to unknown site")
			}
			cur = mv.To
		}
	}
}

func TestMobilityMetricsByDeviceType(t *testing.T) {
	w := buildWorld(t)
	r := randx.New(9)

	sectorsOf := make(map[devices.DeviceType][]float64)
	gyrationOf := make(map[devices.DeviceType][]float64)

	for i := 0; i < 3000; i++ {
		ue := &w.pop.UEs[i%w.pop.Len()]
		model := w.pop.Model(ue)
		plan := w.planner.PlanDay(r, ue, model, 2) // a Wednesday
		// Distinct sites visited as a proxy for distinct sectors (each
		// site visit lands on a sector of that site).
		distinct := map[topology.SiteID]bool{}
		distinct[ue.HomeSite] = true
		for _, mv := range plan.Moves {
			distinct[mv.To] = true
		}
		visits := w.planner.VisitsOf(plan, ue.HomeSite)
		g := geo.RadiusOfGyrationKm(visits)
		sectorsOf[model.Type] = append(sectorsOf[model.Type], float64(len(distinct)))
		gyrationOf[model.Type] = append(gyrationOf[model.Type], g)
	}

	med := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}

	// Fig 10 calibration. The paper's metric counts distinct *sectors*;
	// each site hosts three sectors per RAT, so the site-level count here
	// runs ≈2× lower than the sector-level metric the analysis computes
	// (smartphones: ~22 sectors/day median ⇒ ~8-15 sites).
	smartMed := med(sectorsOf[devices.Smartphone])
	if smartMed < 7 || smartMed > 30 {
		t.Errorf("smartphone median visited sites = %.0f, want ≈8-15", smartMed)
	}
	m2mMed := med(sectorsOf[devices.M2MIoT])
	if m2mMed > 4 {
		t.Errorf("M2M median visited sites = %.0f, want ≈1-2", m2mMed)
	}
	featMed := med(sectorsOf[devices.FeaturePhone])
	if featMed > smartMed {
		t.Errorf("feature median %.0f exceeds smartphone median %.0f", featMed, smartMed)
	}

	// Gyration medians: smartphones ≈2.7 km, M2M ≈0.
	smartG := med(gyrationOf[devices.Smartphone])
	if smartG < 0.5 || smartG > 12 {
		t.Errorf("smartphone median gyration = %.2f km, want ≈2.7", smartG)
	}
	m2mG := med(gyrationOf[devices.M2MIoT])
	if m2mG > 1 {
		t.Errorf("M2M median gyration = %.2f km, want ≈0", m2mG)
	}
}

func TestWeekendReducesMoves(t *testing.T) {
	w := buildWorld(t)
	count := func(day int, seed uint64) int {
		r := randx.New(seed)
		total := 0
		for i := 0; i < 800; i++ {
			ue := &w.pop.UEs[i%w.pop.Len()]
			model := w.pop.Model(ue)
			total += len(w.planner.PlanDay(r, ue, model, day).Moves)
		}
		return total
	}
	wd := count(2, 7) // Wednesday
	we := count(6, 7) // Sunday
	if float64(we) > 0.92*float64(wd) {
		t.Fatalf("weekend moves (%d) not clearly below weekday (%d)", we, wd)
	}
}

func TestVisitsOfWeights(t *testing.T) {
	w := buildWorld(t)
	ue := &w.pop.UEs[0]
	// Empty plan: one full-day visit at home.
	visits := w.planner.VisitsOf(DayPlan{}, ue.HomeSite)
	if len(visits) != 1 {
		t.Fatalf("%d visits for empty plan", len(visits))
	}
	const dayMs = 24 * 60 * 60 * 1000
	if visits[0].Weight != dayMs {
		t.Fatalf("empty-plan weight = %g", visits[0].Weight)
	}
	// Total visit weight always equals the full day.
	r := randx.New(3)
	model := w.pop.Model(ue)
	for day := 0; day < 5; day++ {
		plan := w.planner.PlanDay(r, ue, model, day)
		visits := w.planner.VisitsOf(plan, ue.HomeSite)
		var sum float64
		for _, v := range visits {
			sum += v.Weight
		}
		if math.Abs(sum-dayMs) > 1 {
			t.Fatalf("day %d visit weights sum to %g, want %d", day, sum, dayMs)
		}
	}
}

func TestHighSpeedTravelsFar(t *testing.T) {
	w := buildWorld(t)
	r := randx.New(11)
	// Find a high-speed M2M UE, or force one.
	var ue *subscribers.UE
	for i := range w.pop.UEs {
		if w.pop.UEs[i].Class == subscribers.HighSpeed {
			ue = &w.pop.UEs[i]
			break
		}
	}
	if ue == nil {
		t.Skip("no high-speed UE in sample")
	}
	model := w.pop.Model(ue)
	maxG := 0.0
	for day := 0; day < 5; day++ {
		plan := w.planner.PlanDay(r, ue, model, day)
		g := geo.RadiusOfGyrationKm(w.planner.VisitsOf(plan, ue.HomeSite))
		if g > maxG {
			maxG = g
		}
	}
	if maxG < 30 {
		t.Fatalf("high-speed UE max gyration = %.1f km, want long-range travel", maxG)
	}
}

func TestPlannerErrors(t *testing.T) {
	if _, err := NewPlanner(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func BenchmarkPlanDay(b *testing.B) {
	w := buildWorld(b)
	r := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ue := &w.pop.UEs[i%w.pop.Len()]
		model := w.pop.Model(ue)
		_ = w.planner.PlanDay(r, ue, model, i%28)
	}
}
