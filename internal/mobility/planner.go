package mobility

import (
	"fmt"
	"math"
	"sort"
	"time"

	"telcolens/internal/census"
	"telcolens/internal/devices"
	"telcolens/internal/geo"
	"telcolens/internal/randx"
	"telcolens/internal/subscribers"
	"telcolens/internal/topology"
)

// Move is one site transition of a UE during a day. From == To denotes an
// intra-site sector change (still a handover between co-located sectors).
type Move struct {
	Offset time.Duration // time within the day
	From   topology.SiteID
	To     topology.SiteID
}

// DayPlan is a UE's movement for one day, with moves in time order.
type DayPlan struct {
	Moves []Move
}

// classParams defines per-mobility-class trajectory behaviour.
type classParams struct {
	meanMoves   float64 // Poisson mean of daily site transitions
	jumpKm      float64 // typical excursion distance (commute/trip length scale)
	crossDist   bool    // may leave the home district
	intraSitePr float64 // probability a move is an intra-site sector change
}

var classTable = map[subscribers.MobilityClass]classParams{
	subscribers.Stationary:   {meanMoves: 0.5, jumpKm: 0, crossDist: false, intraSitePr: 0.8},
	subscribers.Local:        {meanMoves: 16, jumpKm: 3, crossDist: false, intraSitePr: 0.25},
	subscribers.Commuter:     {meanMoves: 32, jumpKm: 9, crossDist: true, intraSitePr: 0.15},
	subscribers.LongDistance: {meanMoves: 55, jumpKm: 160, crossDist: true, intraSitePr: 0.10},
	subscribers.HighSpeed:    {meanMoves: 220, jumpKm: 350, crossDist: true, intraSitePr: 0.05},
}

// typeRate scales movement by device type so that Fig 10's per-type
// mobility metrics emerge (feature phones move far less than smartphones).
var typeRate = map[devices.DeviceType]float64{
	devices.Smartphone:   1.0,
	devices.M2MIoT:       0.8,
	devices.FeaturePhone: 0.35,
}

// Planner synthesizes daily movement over the deployed site graph.
type Planner struct {
	net     *topology.Network
	country *census.Country

	districtCenters []geo.Point
	districtWeights []float64
}

// NewPlanner builds a Planner for the given country and deployment.
func NewPlanner(country *census.Country, net *topology.Network) (*Planner, error) {
	if country == nil || net == nil {
		return nil, fmt.Errorf("mobility: nil country or network")
	}
	p := &Planner{net: net, country: country}
	p.districtCenters = make([]geo.Point, len(country.Districts))
	p.districtWeights = make([]float64, len(country.Districts))
	for i, d := range country.Districts {
		p.districtCenters[i] = d.Center
		p.districtWeights[i] = float64(d.Population)
	}
	return p, nil
}

// PlanDay generates the UE's movement for the given study day. The UE
// starts each day at its home site (multi-day trips are abstracted away;
// the paper's mobility metrics are daily).
func (p *Planner) PlanDay(r *randx.Rand, ue *subscribers.UE, model *devices.Model, day int) DayPlan {
	params := classTable[ue.Class]
	rate := params.meanMoves * typeRate[model.Type] * DailyVolumeFactor(day) * model.Quirk.HOMult
	n := r.Poisson(rate)
	if n == 0 {
		return DayPlan{}
	}

	// Draw move times from the diurnal profile, then walk the site graph.
	offsets := make([]time.Duration, n)
	for i := range offsets {
		offsets[i] = SampleOffset(r, day)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	moves := make([]Move, 0, n)
	cur := ue.HomeSite

	// Excursion anchor for classes that leave home: a remote site the
	// trajectory heads toward during the first part of the day and
	// returns from in the evening.
	var excursion topology.SiteID
	hasExcursion := false
	if params.jumpKm > 0 && n >= 4 {
		excursion, hasExcursion = p.pickExcursionSite(r, ue, params)
	}

	for i, off := range offsets {
		var next topology.SiteID
		switch {
		case r.Bool(params.intraSitePr):
			next = cur // intra-site sector change
		case hasExcursion:
			next = p.excursionStep(r, ue, cur, excursion, float64(i)/float64(n))
		default:
			next = p.neighborStep(r, cur)
		}
		moves = append(moves, Move{Offset: off, From: cur, To: next})
		cur = next
	}
	return DayPlan{Moves: moves}
}

// neighborStep walks to a nearby site (or stays put when isolated).
func (p *Planner) neighborStep(r *randx.Rand, cur topology.SiteID) topology.SiteID {
	nbs := p.net.NeighborSites(cur)
	if len(nbs) == 0 {
		return cur
	}
	// Prefer the closest neighbors: geometric-ish decay over the ranked
	// neighbor list keeps local walks local.
	idx := 0
	for idx < len(nbs)-1 && r.Bool(0.45) {
		idx++
	}
	return nbs[idx]
}

// pickExcursionSite selects the day's destination for commuting/trips.
func (p *Planner) pickExcursionSite(r *randx.Rand, ue *subscribers.UE, params classParams) (topology.SiteID, bool) {
	homeLoc := p.net.Site(ue.HomeSite).Loc
	targetKm := r.LogNormal(math.Log(params.jumpKm), 0.6)

	if !params.crossDist {
		// Stay local: among a handful of same-district candidates, pick
		// the one whose distance from home best matches the trip length.
		sites := p.net.SitesInDistrict(ue.HomeDistrict)
		if len(sites) == 0 {
			return 0, false
		}
		best := sites[r.Intn(len(sites))]
		bestMismatch := math.Abs(geo.DistanceKm(homeLoc, p.net.Site(best).Loc) - targetKm)
		for attempt := 0; attempt < 11; attempt++ {
			cand := sites[r.Intn(len(sites))]
			m := math.Abs(geo.DistanceKm(homeLoc, p.net.Site(cand).Loc) - targetKm)
			if m < bestMismatch {
				best, bestMismatch = cand, m
			}
		}
		return best, true
	}

	// Gravity choice: districts weighted by population and penalized by
	// the mismatch between their distance and the target trip length.
	// The home district competes on equal terms (short trips stay home).
	score := func(cand int) float64 {
		d := geo.DistanceKm(homeLoc, p.districtCenters[cand])
		mismatch := math.Abs(d-targetKm) / (targetKm + 1)
		return p.districtWeights[cand] / (1 + 10*mismatch*mismatch)
	}
	best := ue.HomeDistrict
	bestScore := score(best)
	for attempt := 0; attempt < 12; attempt++ {
		cand := r.Intn(len(p.districtCenters))
		if s := score(cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	sites := p.net.SitesInDistrict(best)
	if len(sites) == 0 {
		return 0, false
	}
	return sites[r.Intn(len(sites))], true
}

// excursionStep routes the trajectory out toward the excursion site in the
// first 40% of the day's moves, keeps it near the destination until 60%,
// then routes it home.
func (p *Planner) excursionStep(r *randx.Rand, ue *subscribers.UE, cur, excursion topology.SiteID, progress float64) topology.SiteID {
	homeLoc := p.net.Site(ue.HomeSite).Loc
	excLoc := p.net.Site(excursion).Loc

	var targetFrac float64 // position along home→excursion line
	switch {
	case progress < 0.4:
		targetFrac = progress / 0.4
	case progress < 0.6:
		targetFrac = 1
	default:
		targetFrac = (1 - progress) / 0.4
	}
	target := geo.Point{
		Lat: homeLoc.Lat + (excLoc.Lat-homeLoc.Lat)*targetFrac,
		Lon: homeLoc.Lon + (excLoc.Lon-homeLoc.Lon)*targetFrac,
	}
	// Find a site near the target point: nearest district center, then a
	// random site within it, preferring neighbors of the current site
	// when they get us closer.
	distID := p.nearestDistrict(target)
	sites := p.net.SitesInDistrict(distID)
	if len(sites) == 0 {
		return p.neighborStep(r, cur)
	}
	cand := sites[r.Intn(len(sites))]
	// Small refinement: among a few candidates, pick the one closest to
	// the target point so routes look continuous.
	best := cand
	bestD := geo.DistanceKm(p.net.Site(cand).Loc, target)
	for i := 0; i < 3; i++ {
		c := sites[r.Intn(len(sites))]
		if d := geo.DistanceKm(p.net.Site(c).Loc, target); d < bestD {
			best, bestD = c, d
		}
	}
	// Disperse across the route's neighborhood: real trajectories visit
	// many distinct sectors along the way, not one site per waypoint.
	if nbs := p.net.NeighborSites(best); len(nbs) > 0 && r.Bool(0.6) {
		return nbs[r.Intn(len(nbs))]
	}
	return best
}

func (p *Planner) nearestDistrict(pt geo.Point) int {
	best := 0
	bestD := math.Inf(1)
	for i, c := range p.districtCenters {
		if d := geo.DistanceKm(pt, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// VisitsOf converts a day plan into time-weighted visits for the mobility
// metrics: each move's destination is occupied until the next move (the
// final site until end of day), and the starting site from midnight to the
// first move.
func (p *Planner) VisitsOf(plan DayPlan, home topology.SiteID) []geo.Visit {
	const dayMs = 24 * 60 * 60 * 1000
	if len(plan.Moves) == 0 {
		return []geo.Visit{{Loc: p.net.Site(home).Loc, Weight: dayMs}}
	}
	visits := make([]geo.Visit, 0, len(plan.Moves)+1)
	first := plan.Moves[0]
	visits = append(visits, geo.Visit{
		Loc:    p.net.Site(first.From).Loc,
		Weight: float64(first.Offset.Milliseconds()),
	})
	for i, mv := range plan.Moves {
		end := int64(dayMs)
		if i+1 < len(plan.Moves) {
			end = plan.Moves[i+1].Offset.Milliseconds()
		}
		w := float64(end - mv.Offset.Milliseconds())
		if w < 0 {
			w = 0
		}
		visits = append(visits, geo.Visit{Loc: p.net.Site(mv.To).Loc, Weight: w})
	}
	return visits
}
