package trace

import (
	"math/rand"
	"os"
	"testing"
)

// writePartition lands recs into a fresh partition of fs.
func writePartition(t *testing.T, fs *FileStore, day, shard int, recs []Record) {
	t.Helper()
	w, err := fs.AppendPartition(day, shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.(BatchWriter).WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint32, 0, 5000)
	seen := make(map[uint32]bool)
	for len(keys) < cap(keys) {
		k := rng.Uint32()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	b := bloomFrom(keys)
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Fatalf("false negative for inserted key %d", k)
		}
	}
}

// TestBloomFalsePositiveRate pins the sizing budget: with >= 16 bits
// per distinct key and k=6 probes, the measured FPR over keys never
// inserted must stay well under 1%.
func TestBloomFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nKeys = 4096
	inserted := make(map[uint32]bool, nKeys)
	keys := make([]uint32, 0, nKeys)
	for len(keys) < nKeys {
		k := rng.Uint32() % 1_000_000
		if !inserted[k] {
			inserted[k] = true
			keys = append(keys, k)
		}
	}
	b := bloomFrom(keys)
	probes, fps := 0, 0
	for k := uint32(1_000_001); k < 1_101_001; k++ {
		probes++
		if b.MayContain(k) {
			fps++
		}
	}
	if rate := float64(fps) / float64(probes); rate > 0.01 {
		t.Fatalf("false positive rate %.4f over %d probes, want < 0.01 (%d bits for %d keys)",
			rate, probes, b.Bits(), nKeys)
	}
}

// TestBloomDeterministic asserts the stored bits are a function of the
// key set, not insertion order — index bytes must be reproducible.
func TestBloomDeterministic(t *testing.T) {
	keys := []uint32{5, 900, 31, 77, 12345, 8}
	a := bloomFrom(keys)
	rev := make([]uint32, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	b := bloomFrom(rev)
	for i := range a.words {
		if a.words[i] != b.words[i] {
			t.Fatalf("word %d differs across insertion orders", i)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := newIndexBuilder(128)
	base := StudyStart.UnixMilli()
	var recs []Record
	for i := 0; i < 1000; i++ {
		rec := randRecord(rng, base)
		recs = append(recs, rec)
		b.observe(rec.Timestamp, uint32(rec.UE), uint32(rec.TAC), uint32(rec.Source), uint32(rec.Target))
	}
	idx := b.finish(0xdeadbeef)
	if got, want := len(idx.Blocks), (1000+127)/128; got != want {
		t.Fatalf("block summaries = %d, want %d", got, want)
	}
	data := encodeIndex(idx)
	dec, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fingerprint != 0xdeadbeef || dec.BlockRecords != 128 || len(dec.Blocks) != len(idx.Blocks) {
		t.Fatalf("decoded header mismatch: %+v", dec)
	}
	// No false negatives through the full encode/decode cycle, at both
	// granularities.
	for i := range recs {
		rec := &recs[i]
		if !dec.MayContainUE(rec.UE) || !dec.MayContainTAC(uint32(rec.TAC)) ||
			!dec.MayContainSector(uint32(rec.Source)) || !dec.MayContainSector(uint32(rec.Target)) {
			t.Fatalf("record %d: partition-level false negative", i)
		}
		bs := &dec.Blocks[i/128]
		if !bs.UEs.MayContain(uint32(rec.UE)) || !bs.TACs.MayContain(uint32(rec.TAC)) {
			t.Fatalf("record %d: block-level false negative", i)
		}
		if rec.Timestamp < bs.MinTS || rec.Timestamp > bs.MaxTS {
			t.Fatalf("record %d: timestamp %d outside block extents [%d, %d]",
				i, rec.Timestamp, bs.MinTS, bs.MaxTS)
		}
	}
}

func TestIndexDecodeRejectsDamage(t *testing.T) {
	b := newIndexBuilder(64)
	b.observe(StudyStart.UnixMilli(), 1, 2, 3, 4)
	data := encodeIndex(b.finish(42))

	if _, err := DecodeIndex(data[:10]); err == nil {
		t.Fatal("truncated index decoded")
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0xff
	if _, err := DecodeIndex(flip); err == nil {
		t.Fatal("bit-flipped index decoded")
	}
	future := append([]byte(nil), data...)
	future[4] = 99 // version field
	if _, err := DecodeIndex(future); err == nil {
		t.Fatal("future-versioned index decoded")
	}
}

// TestFileStoreWritesIndex asserts every write path (record, batch,
// columnar) emits an aligned sidecar, that the manifest advertises it,
// and that its block summaries agree with the stream's descriptors.
func TestFileStoreWritesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := StudyStart.UnixMilli()
	recs := make([]Record, 700)
	for i := range recs {
		recs[i] = randRecord(rng, base)
	}
	for _, mode := range []string{"record", "batch", "columns"} {
		t.Run(mode, func(t *testing.T) {
			fs, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{BlockRecords: 256})
			if err != nil {
				t.Fatal(err)
			}
			w, err := fs.AppendPartition(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "record":
				for i := range recs {
					if err := w.Write(&recs[i]); err != nil {
						t.Fatal(err)
					}
				}
			case "batch":
				if err := w.(BatchWriter).WriteBatch(recs); err != nil {
					t.Fatal(err)
				}
			case "columns":
				var cb ColumnBatch
				cb.FromRecords(recs)
				if err := w.(ColumnWriter).WriteColumns(&cb); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			idx, err := fs.PartitionIndex(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if idx == nil {
				t.Fatal("no index sidecar written")
			}
			if got, want := len(idx.Blocks), (len(recs)+255)/256; got != want {
				t.Fatalf("block summaries = %d, want %d", got, want)
			}
			m, err := fs.Manifest()
			if err != nil || m == nil {
				t.Fatalf("manifest unusable: %v", err)
			}
			pi, ok := m.Lookup(Partition{Day: 0, Shard: 0})
			if !ok || pi.IndexVersion != IndexVersionCurrent {
				t.Fatalf("manifest entry index version = %d, want %d", pi.IndexVersion, IndexVersionCurrent)
			}
			if idx.Fingerprint != pi.Fingerprint {
				t.Fatalf("index fingerprint %x != manifest %x", idx.Fingerprint, pi.Fingerprint)
			}
			total := 0
			for _, bs := range idx.Blocks {
				total += bs.Count
			}
			if total != len(recs) {
				t.Fatalf("block counts sum to %d, want %d", total, len(recs))
			}
		})
	}
}

func TestFileStoreNoIndexOption(t *testing.T) {
	fs, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	writePartition(t, fs, 0, 0, []Record{randRecord(rand.New(rand.NewSource(1)), StudyStart.UnixMilli())})
	idx, err := fs.PartitionIndex(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != nil {
		t.Fatal("NoIndex store wrote a sidecar")
	}
	m, _ := fs.Manifest()
	if pi, ok := m.Lookup(Partition{Day: 0, Shard: 0}); !ok || pi.IndexVersion != 0 {
		t.Fatalf("manifest advertises index version %d for unindexed partition", pi.IndexVersion)
	}
}

func TestRemovePartitionDropsIndex(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePartition(t, fs, 3, 0, []Record{randRecord(rand.New(rand.NewSource(2)), StudyStart.UnixMilli())})
	if _, err := os.Stat(fs.indexPath(3, 0)); err != nil {
		t.Fatalf("sidecar missing before removal: %v", err)
	}
	if err := fs.RemovePartition(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fs.indexPath(3, 0)); !os.IsNotExist(err) {
		t.Fatalf("sidecar survived RemovePartition: %v", err)
	}
}

// TestReaderBlockFilter asserts SetBlockFilter prunes exactly the
// vetoed blocks, counts them as filtered (not skipped), and that
// ordinals align with the index builder's summaries.
func TestReaderBlockFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := StudyStart.UnixMilli()
	const perBlock = 64
	recs := make([]Record, perBlock*5)
	for i := range recs {
		recs[i] = randRecord(rng, base)
	}
	fs, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{BlockRecords: perBlock})
	if err != nil {
		t.Fatal(err)
	}
	writePartition(t, fs, 0, 0, recs)

	it, err := fs.OpenPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.(BlockFilterSetter).SetBlockFilter(func(b int) bool { return b == 2 })
	var got []Record
	var rec Record
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, rec)
	}
	if len(got) != perBlock {
		t.Fatalf("decoded %d records, want the %d of block 2", len(got), perBlock)
	}
	for i := range got {
		if got[i] != recs[2*perBlock+i] {
			t.Fatalf("record %d differs from block 2's content", i)
		}
	}
	bs := it.(BlockStatsReader).ReadStats()
	if bs.BlocksRead != 1 || bs.BlocksFiltered != 4 || bs.BlocksSkipped != 0 {
		t.Fatalf("stats = %+v, want 1 read / 4 filtered / 0 skipped", bs)
	}
}
