package trace

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"telcolens/internal/faultfs"
)

// The partition secondary index: a small ".tlix" sidecar written next
// to each partition file, holding partition-level bloom filters over
// the UE, TAC and sector columns plus a per-block summary (record
// count, timestamp extents, UE and TAC blooms) aligned with the v2
// block layout. The query layer uses it to prune partitions and blocks
// before a single payload byte is decoded; the sidecar is strictly an
// accelerator — an absent, stale or corrupt index degrades to the scan
// path, never to a wrong answer.
//
// Layout (little-endian):
//
//	magic "TLIX" | version u16 | flags u16 | fingerprint u64 |
//	blockRecords u32 | blockCount u32 |
//	partition UE bloom | partition TAC bloom | partition sector bloom |
//	blockCount × (count u32 | minTS i64 | maxTS i64 | UE bloom | TAC bloom) |
//	checksum u64 (FNV-1a over all preceding bytes)
//
// where each bloom serializes as: k u8 | words u32 | words × u64.
// The fingerprint must equal the partition's manifest/stream
// fingerprint; loaders reject a mismatch so a rewritten partition can
// never be served through a stale index. blockRecords is the writer's
// records-per-block setting; 0 means the stream has no per-block
// summaries (v1 fixed-width files index at partition granularity only).

// IndexVersionCurrent is the sidecar format version this package
// writes. Loaders return ErrIndexVersion for newer versions so old
// binaries fall back to scanning rather than misreading the file.
const IndexVersionCurrent = 1

// IndexSuffix is the sidecar file extension, appended to the partition
// file name (ho_day_003_s001.tlho -> ho_day_003_s001.tlho.tlix is NOT
// the scheme; the .tlho suffix is replaced: ho_day_003_s001.tlix).
const IndexSuffix = ".tlix"

var indexMagic = [4]byte{'T', 'L', 'I', 'X'}

// Index decode errors. All of them mean "treat the partition as
// unindexed", not "fail the query".
var (
	ErrIndexCorrupt = fmt.Errorf("trace: corrupt partition index")
	ErrIndexVersion = fmt.Errorf("trace: unsupported partition index version")
)

// bloomK is the number of probes per key. With the sizing rule below
// (>= 16 bits per distinct key) the false-positive rate lands around
// 2^-6 ≈ 1.5% worst case and ~0.1% at the rounded-up typical load; the
// FPR bound test pins the measured rate.
const bloomK = 6

// bloomMinBits floors the filter size so tiny blocks still serialize
// to a couple of machine words.
const bloomMinBits = 256

// bloomBitsPerKey is the sizing budget: bits = nextPow2(16 × distinct).
const bloomBitsPerKey = 16

// Bloom is a fixed-size bloom filter over uint32 keys (UE IDs, TACs,
// sector IDs). Membership is approximate in one direction only:
// MayContain never returns false for an inserted key. Insertion order
// does not affect the stored bits, so index bytes are a deterministic
// function of the key set.
type Bloom struct {
	k     uint8
	words []uint64 // len is a power of two (bits/64), or 0 for the empty filter
}

// newBloom sizes a filter for the given number of distinct keys.
func newBloom(distinct int) *Bloom {
	bitsWanted := distinct * bloomBitsPerKey
	if bitsWanted < bloomMinBits {
		bitsWanted = bloomMinBits
	}
	nbits := 1 << bits.Len(uint(bitsWanted-1)) // next power of two
	return &Bloom{k: bloomK, words: make([]uint64, nbits/64)}
}

// bloomMix is the 64-bit finalizer (same family as ShardOf) expanding a
// key into the two independent hashes double hashing needs.
func bloomMix(key uint32) (h1, h2 uint64) {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x, (x >> 32) | 1 // odd step so probes cover the table
}

// add inserts a key.
func (b *Bloom) add(key uint32) {
	if len(b.words) == 0 {
		return
	}
	mask := uint64(len(b.words)*64 - 1)
	h1, h2 := bloomMix(key)
	for i := 0; i < int(b.k); i++ {
		bit := (h1 + uint64(i)*h2) & mask
		b.words[bit>>6] |= 1 << (bit & 63)
	}
}

// MayContain reports whether key may have been inserted. False means
// definitely absent; true may be a false positive (see bloomK for the
// budget).
func (b *Bloom) MayContain(key uint32) bool {
	if b == nil || len(b.words) == 0 {
		return false
	}
	mask := uint64(len(b.words)*64 - 1)
	h1, h2 := bloomMix(key)
	for i := 0; i < int(b.k); i++ {
		bit := (h1 + uint64(i)*h2) & mask
		if b.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() int {
	if b == nil {
		return 0
	}
	return len(b.words) * 64
}

// bloomFrom builds a filter from a distinct-key slice.
func bloomFrom(keys []uint32) *Bloom {
	b := newBloom(len(keys))
	for _, k := range keys {
		b.add(k)
	}
	return b
}

// appendBloom serializes a filter: k u8 | words u32 | words × u64.
func appendBloom(dst []byte, b *Bloom) []byte {
	dst = append(dst, b.k)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.words)))
	for _, w := range b.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// maxBloomWords bounds a serialized filter to 2^26 bits (8 MiB), far
// above anything the sizing rule produces, so a corrupt length field
// cannot trigger a huge allocation.
const maxBloomWords = 1 << 20

// readBloom decodes a filter and returns the remaining bytes.
func readBloom(src []byte) (*Bloom, []byte, error) {
	if len(src) < 5 {
		return nil, nil, ErrIndexCorrupt
	}
	k := src[0]
	words := binary.LittleEndian.Uint32(src[1:5])
	src = src[5:]
	if words > maxBloomWords || words&(words-1) != 0 && words != 0 {
		return nil, nil, ErrIndexCorrupt
	}
	if len(src) < int(words)*8 {
		return nil, nil, ErrIndexCorrupt
	}
	b := &Bloom{k: k, words: make([]uint64, words)}
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(src[i*8:])
	}
	return b, src[int(words)*8:], nil
}

// BlockSummary is one v2 block's index entry: its record count and
// timestamp extents (mirroring the block descriptor, so pruning needs
// no stream access) plus bloom filters over its UE and TAC columns.
type BlockSummary struct {
	Count        int
	MinTS, MaxTS int64
	UEs          *Bloom
	TACs         *Bloom
}

// PartitionIndex is a decoded .tlix sidecar. Partition-level filters
// cover every record; Blocks aligns 1:1 with the v2 stream's blocks in
// stream order (empty for v1 streams, which index at partition
// granularity only).
type PartitionIndex struct {
	// Version is the decoded sidecar format version.
	Version uint16
	// Fingerprint is the indexed partition's content fingerprint; it
	// must match the MANIFEST entry or the index is stale.
	Fingerprint uint64
	// BlockRecords is the writer's records-per-block setting (0 for v1
	// streams with no per-block summaries).
	BlockRecords int
	// UEs/TACs/Sectors are partition-level membership filters; Sectors
	// covers both source and target sector IDs.
	UEs, TACs, Sectors *Bloom
	// Blocks summarizes each v2 block in stream order.
	Blocks []BlockSummary
}

// MayContainUE reports whether any record of the partition may carry ue.
func (x *PartitionIndex) MayContainUE(ue UEID) bool { return x.UEs.MayContain(uint32(ue)) }

// MayContainTAC reports whether any record may carry tac.
func (x *PartitionIndex) MayContainTAC(tac uint32) bool { return x.TACs.MayContain(tac) }

// MayContainSector reports whether any record may have sec as source or
// target sector.
func (x *PartitionIndex) MayContainSector(sec uint32) bool { return x.Sectors.MayContain(sec) }

// encodeIndex serializes a PartitionIndex to sidecar bytes.
func encodeIndex(x *PartitionIndex) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, indexMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, x.Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint64(buf, x.Fingerprint)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(x.BlockRecords))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Blocks)))
	buf = appendBloom(buf, x.UEs)
	buf = appendBloom(buf, x.TACs)
	buf = appendBloom(buf, x.Sectors)
	for i := range x.Blocks {
		bs := &x.Blocks[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(bs.Count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(bs.MinTS))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(bs.MaxTS))
		buf = appendBloom(buf, bs.UEs)
		buf = appendBloom(buf, bs.TACs)
	}
	return binary.LittleEndian.AppendUint64(buf, fnv1a(buf))
}

// fnv1a hashes p with 64-bit FNV-1a (the same function the manifest
// fingerprint uses).
func fnv1a(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// maxIndexBlocks bounds the decoded block list; a partition holds at
// most a day of records, so this is generous.
const maxIndexBlocks = 1 << 22

// DecodeIndex parses sidecar bytes. Newer format versions return
// ErrIndexVersion and structural damage ErrIndexCorrupt; callers treat
// both as "no index".
func DecodeIndex(data []byte) (*PartitionIndex, error) {
	if len(data) < 24+8 || [4]byte(data[0:4]) != indexMagic {
		return nil, ErrIndexCorrupt
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if fnv1a(body) != sum {
		return nil, ErrIndexCorrupt
	}
	x := &PartitionIndex{
		Version:      binary.LittleEndian.Uint16(data[4:6]),
		Fingerprint:  binary.LittleEndian.Uint64(data[8:16]),
		BlockRecords: int(binary.LittleEndian.Uint32(data[16:20])),
	}
	if x.Version != IndexVersionCurrent {
		return nil, ErrIndexVersion
	}
	nBlocks := binary.LittleEndian.Uint32(data[20:24])
	if nBlocks > maxIndexBlocks {
		return nil, ErrIndexCorrupt
	}
	rest := body[24:]
	var err error
	if x.UEs, rest, err = readBloom(rest); err != nil {
		return nil, err
	}
	if x.TACs, rest, err = readBloom(rest); err != nil {
		return nil, err
	}
	if x.Sectors, rest, err = readBloom(rest); err != nil {
		return nil, err
	}
	x.Blocks = make([]BlockSummary, nBlocks)
	for i := range x.Blocks {
		bs := &x.Blocks[i]
		if len(rest) < 20 {
			return nil, ErrIndexCorrupt
		}
		bs.Count = int(binary.LittleEndian.Uint32(rest[0:4]))
		bs.MinTS = int64(binary.LittleEndian.Uint64(rest[4:12]))
		bs.MaxTS = int64(binary.LittleEndian.Uint64(rest[12:20]))
		rest = rest[20:]
		if bs.UEs, rest, err = readBloom(rest); err != nil {
			return nil, err
		}
		if bs.TACs, rest, err = readBloom(rest); err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, ErrIndexCorrupt
	}
	return x, nil
}

// writeIndexFile persists an index sidecar with the same atomic
// stage + fsync + rename + dir-fsync discipline as the MANIFEST (see
// faultfs.WriteFileAtomic) — the sidecar must be durable before the
// manifest entry that advertises it lands.
func writeIndexFile(fsys faultfs.FS, path string, x *PartitionIndex) error {
	data := encodeIndex(x)
	if err := faultfs.WriteFileAtomic(fsys, path, data, 0o644); err != nil {
		return fmt.Errorf("trace: index: %w", err)
	}
	return nil
}

// keySet tracks the distinct uint32 keys seen so far via an epoch-
// stamped open-addressed table (the dictTable pattern): Reset is a
// counter bump, probes touch warm memory, and Keys returns the
// distinct values in first-seen order for deterministic bloom builds.
type keySet struct {
	slots []uint32 // key per slot
	marks []uint32 // epoch the slot was last written
	epoch uint32
	keys  []uint32 // distinct keys, first-seen order
}

func newKeySet(capacity int) *keySet {
	n := 1 << bits.Len(uint(capacity*2-1)) // ≥2× load headroom, power of two
	if n < 16 {
		n = 16
	}
	return &keySet{slots: make([]uint32, n), marks: make([]uint32, n), epoch: 1}
}

// add inserts key if unseen this epoch and reports whether it was new.
func (s *keySet) add(key uint32) bool {
	mask := uint32(len(s.slots) - 1)
	h1, _ := bloomMix(key)
	i := uint32(h1) & mask
	for {
		if s.marks[i] != s.epoch {
			s.slots[i] = key
			s.marks[i] = s.epoch
			s.keys = append(s.keys, key)
			if len(s.keys)*2 >= len(s.slots) {
				s.grow()
			}
			return true
		}
		if s.slots[i] == key {
			return false
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table and re-seats the current epoch's keys.
func (s *keySet) grow() {
	n := len(s.slots) * 2
	slots := make([]uint32, n)
	marks := make([]uint32, n)
	mask := uint32(n - 1)
	for _, key := range s.keys {
		h1, _ := bloomMix(key)
		i := uint32(h1) & mask
		for marks[i] == 1 {
			i = (i + 1) & mask
		}
		slots[i] = key
		marks[i] = 1
	}
	s.slots, s.marks, s.epoch = slots, marks, 1
}

// reset clears the set in O(1) (epoch bump; wraps rezero the marks).
func (s *keySet) reset() {
	s.keys = s.keys[:0]
	s.epoch++
	if s.epoch == 0 {
		clear(s.marks)
		s.epoch = 1
	}
}

// indexBuilder accumulates a PartitionIndex while a partition is being
// written. The writer wrappers feed it every record's (ts, ue, tac,
// source, target); block boundaries are replicated from the v2 writer's
// rule — a block seals exactly every perBlock records, with a final
// partial block at flush — so summaries align 1:1 with the stream's
// blocks without touching the encoder.
type indexBuilder struct {
	perBlock int // 0 = no per-block summaries (v1 stream)

	fill      int
	curMin    int64
	curMax    int64
	blockUEs  *keySet
	blockTACs *keySet
	partUEs   *keySet
	partTACs  *keySet
	partSects *keySet
	blocks    []BlockSummary
}

func newIndexBuilder(perBlock int) *indexBuilder {
	b := &indexBuilder{
		perBlock:  perBlock,
		partUEs:   newKeySet(1024),
		partTACs:  newKeySet(256),
		partSects: newKeySet(256),
	}
	if perBlock > 0 {
		b.blockUEs = newKeySet(perBlock)
		b.blockTACs = newKeySet(64)
	}
	return b
}

// observe folds one record into the builder.
func (b *indexBuilder) observe(ts int64, ue, tac, src, dst uint32) {
	b.partUEs.add(ue)
	b.partTACs.add(tac)
	b.partSects.add(src)
	b.partSects.add(dst)
	if b.perBlock == 0 {
		return
	}
	if b.fill == 0 {
		b.curMin, b.curMax = ts, ts
	} else {
		if ts < b.curMin {
			b.curMin = ts
		}
		if ts > b.curMax {
			b.curMax = ts
		}
	}
	b.blockUEs.add(ue)
	b.blockTACs.add(tac)
	b.fill++
	if b.fill == b.perBlock {
		b.sealBlock()
	}
}

// observeColumns folds a columnar batch row by row (same effect as
// observe per row, without materializing records).
func (b *indexBuilder) observeColumns(cb *ColumnBatch) {
	for i, ts := range cb.Timestamps {
		b.observe(ts, uint32(cb.UEs[i]), uint32(cb.TACs[i]), uint32(cb.Sources[i]), uint32(cb.Targets[i]))
	}
}

// sealBlock closes the current block summary.
func (b *indexBuilder) sealBlock() {
	b.blocks = append(b.blocks, BlockSummary{
		Count: b.fill,
		MinTS: b.curMin,
		MaxTS: b.curMax,
		UEs:   bloomFrom(b.blockUEs.keys),
		TACs:  bloomFrom(b.blockTACs.keys),
	})
	b.blockUEs.reset()
	b.blockTACs.reset()
	b.fill = 0
}

// finish seals any partial block and materializes the index with the
// partition's content fingerprint.
func (b *indexBuilder) finish(fingerprint uint64) *PartitionIndex {
	if b.perBlock > 0 && b.fill > 0 {
		b.sealBlock()
	}
	return &PartitionIndex{
		Version:      IndexVersionCurrent,
		Fingerprint:  fingerprint,
		BlockRecords: b.perBlock,
		UEs:          bloomFrom(b.partUEs.keys),
		TACs:         bloomFrom(b.partTACs.keys),
		Sectors:      bloomFrom(b.partSects.keys),
		Blocks:       b.blocks,
	}
}
