package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"time"

	"telcolens/internal/faultfs"
)

// The scrub/quarantine subsystem: Verify audits manifest ↔ partition ↔
// index consistency by re-reading every stream, Scrub moves what fails
// out of the serving set into quarantine/ so the rest of the campaign
// keeps serving, and LoadQuarantine lets the daemon report the
// excluded days instead of failing whole campaigns. cmd/telcofsck is
// the operator front-end; telcoserve runs the same scrub at startup.

// CorruptionClass buckets what a failed partition read means, so
// operators (and /healthz) can tell bit rot from a half-written file
// from a stale accelerator.
type CorruptionClass string

const (
	// CorruptChecksum: the stream bytes no longer hash to the manifest
	// fingerprint — bit rot or an overwrite behind the store's back.
	CorruptChecksum CorruptionClass = "checksum"
	// CorruptTruncated: the file is shorter than the manifest says —
	// a torn write or lost tail.
	CorruptTruncated CorruptionClass = "truncated"
	// CorruptDecode: the codec rejected the stream (bad magic, frame
	// structure, impossible counts).
	CorruptDecode CorruptionClass = "decode"
	// CorruptIndex: the .tlix sidecar is unreadable or stale. The
	// partition itself is fine; queries fall back to scanning.
	CorruptIndex CorruptionClass = "index"
	// CorruptIO: the file could not be read at all.
	CorruptIO CorruptionClass = "io"
)

// ErrChecksumMismatch is wrapped by read-verification failures
// (FileStoreOptions.VerifyReads and Verify).
var ErrChecksumMismatch = errors.New("trace: stream checksum mismatch")

// CorruptionError reports a partition that failed verification or
// decode, classified (see CorruptionClass).
type CorruptionError struct {
	Day   int
	Shard int
	Class CorruptionClass
	Err   error
}

// Error renders the partition coordinates, class and underlying cause.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("trace: day %d shard %d corrupt (%s): %v", e.Day, e.Shard, e.Class, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// classifyPartitionErr wraps an iterator-sourced error in a
// CorruptionError with a best-effort class. Errors that already carry
// a classification pass through unchanged.
func classifyPartitionErr(day, shard int, err error) error {
	var ce *CorruptionError
	if errors.As(err, &ce) {
		return err
	}
	class := CorruptDecode
	switch {
	case errors.Is(err, ErrChecksumMismatch):
		class = CorruptChecksum
	case errors.Is(err, iofs.ErrNotExist), errors.Is(err, iofs.ErrPermission):
		class = CorruptIO
	}
	return &CorruptionError{Day: day, Shard: shard, Class: class, Err: err}
}

// VerifyIssue is one finding of a store audit.
type VerifyIssue struct {
	Day    int             `json:"day"`
	Shard  int             `json:"shard"`
	Class  CorruptionClass `json:"class"`
	Detail string          `json:"detail"`
}

// String renders the issue the way telcofsck prints it.
func (i VerifyIssue) String() string {
	return fmt.Sprintf("day %d shard %d [%s]: %s", i.Day, i.Shard, i.Class, i.Detail)
}

// VerifyReport is the outcome of a store audit.
type VerifyReport struct {
	// Partitions is how many partition files were checked.
	Partitions int `json:"partitions"`
	// Records is the total record count decoded across clean partitions.
	Records int64 `json:"records"`
	// ManifestUsable reports whether a MANIFEST was present; without one
	// (legacy directory) only structural decode checks run — there is no
	// recorded fingerprint to compare against.
	ManifestUsable bool `json:"manifest_usable"`
	// Issues lists everything that failed, in canonical partition order
	// (partition-level issues before their index issues).
	Issues []VerifyIssue `json:"issues,omitempty"`
	// Missing lists manifest entries whose partition file is gone.
	Missing []Partition `json:"missing,omitempty"`
	// Orphans lists partition files the manifest does not cover.
	Orphans []Partition `json:"orphans,omitempty"`
}

// OK reports whether the store passed clean.
func (r *VerifyReport) OK() bool {
	return len(r.Issues) == 0 && len(r.Missing) == 0
}

// verifyPartitionData audits one partition's raw stream against its
// manifest entry (fingerprint, size, record count) and the codec.
// A nil entry (no manifest) runs the structural checks only.
func verifyPartitionData(data []byte, pi *PartitionInfo) (int64, *VerifyIssue) {
	if pi != nil {
		d := newPartitionDigest()
		d.observeBytes(data)
		if d.bytes != pi.Bytes {
			class := CorruptChecksum
			if d.bytes < pi.Bytes {
				class = CorruptTruncated
			}
			return 0, &VerifyIssue{Day: pi.Day, Shard: pi.Shard, Class: class,
				Detail: fmt.Sprintf("stored %d bytes, manifest records %d", d.bytes, pi.Bytes)}
		}
		if d.hash != pi.Fingerprint {
			return 0, &VerifyIssue{Day: pi.Day, Shard: pi.Shard, Class: CorruptChecksum,
				Detail: fmt.Sprintf("stream hash %016x, manifest fingerprint %016x", d.hash, pi.Fingerprint)}
		}
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return 0, &VerifyIssue{Class: CorruptDecode, Detail: err.Error()}
	}
	var records int64
	var rec Record
	for {
		err := r.Next(&rec)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, &VerifyIssue{Class: CorruptDecode, Detail: err.Error()}
		}
		records++
	}
	if pi != nil && records != pi.Records {
		return 0, &VerifyIssue{Day: pi.Day, Shard: pi.Shard, Class: CorruptDecode,
			Detail: fmt.Sprintf("decoded %d records, manifest records %d", records, pi.Records)}
	}
	return records, nil
}

// Verify audits every partition of a FileStore: stream fingerprints
// and sizes against the MANIFEST, a full decode pass, record counts,
// and .tlix sidecar integrity. It never modifies the store.
func Verify(ctx context.Context, f *FileStore) (*VerifyReport, error) {
	report := &VerifyReport{}
	m, err := loadManifest(f.fs, f.manifestPath())
	if err != nil {
		return nil, err
	}
	report.ManifestUsable = m != nil
	onDisk, err := f.Partitions()
	if err != nil {
		return nil, err
	}
	present := make(map[Partition]bool, len(onDisk))
	for _, p := range onDisk {
		present[p] = true
	}
	entries := make(map[Partition]*PartitionInfo)
	if m != nil {
		for i := range m.Partitions {
			pi := &m.Partitions[i]
			p := pi.Partition()
			entries[p] = pi
			if !present[p] {
				report.Missing = append(report.Missing, p)
			}
		}
	}
	for _, p := range onDisk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report.Partitions++
		pi := entries[p]
		if m != nil && pi == nil {
			report.Orphans = append(report.Orphans, p)
		}
		data, err := f.fs.ReadFile(f.partitionPath(p.Day, p.Shard))
		if err != nil {
			report.Issues = append(report.Issues, VerifyIssue{
				Day: p.Day, Shard: p.Shard, Class: CorruptIO, Detail: err.Error()})
			continue
		}
		records, issue := verifyPartitionData(data, pi)
		if issue != nil {
			issue.Day, issue.Shard = p.Day, p.Shard
			report.Issues = append(report.Issues, *issue)
			continue
		}
		report.Records += records
		// Sidecar audit: unreadable, corrupt or stale indexes are issues
		// of their own class — the partition data is fine.
		idxData, err := f.fs.ReadFile(f.indexPath(p.Day, p.Shard))
		if errors.Is(err, iofs.ErrNotExist) {
			continue
		}
		if err != nil {
			report.Issues = append(report.Issues, VerifyIssue{
				Day: p.Day, Shard: p.Shard, Class: CorruptIndex, Detail: err.Error()})
			continue
		}
		x, err := DecodeIndex(idxData)
		if err != nil {
			report.Issues = append(report.Issues, VerifyIssue{
				Day: p.Day, Shard: p.Shard, Class: CorruptIndex, Detail: err.Error()})
			continue
		}
		if pi != nil && x.Fingerprint != pi.Fingerprint {
			report.Issues = append(report.Issues, VerifyIssue{
				Day: p.Day, Shard: p.Shard, Class: CorruptIndex,
				Detail: fmt.Sprintf("index fingerprint %016x, manifest %016x", x.Fingerprint, pi.Fingerprint)})
		}
	}
	return report, nil
}

// QuarantineDirName is the subdirectory Scrub moves failed partitions
// into, and QuarantineLogName the append-only record of why.
const (
	QuarantineDirName = "quarantine"
	QuarantineLogName = "QUARANTINE.json"
)

// QuarantineRecord is one quarantined partition in the log.
type QuarantineRecord struct {
	File  string          `json:"file"`
	Day   int             `json:"day"`
	Shard int             `json:"shard"`
	Class CorruptionClass `json:"class"`
	Error string          `json:"error"`
	// Time is when the scrub quarantined it (RFC 3339).
	Time string `json:"time"`
}

// LoadQuarantine reads a store's quarantine log; a store that never
// quarantined anything returns (nil, nil).
func LoadQuarantine(fsys faultfs.FS, dir string) ([]QuarantineRecord, error) {
	fsys = faultfs.Resolve(fsys)
	data, err := fsys.ReadFile(filepath.Join(dir, QuarantineDirName, QuarantineLogName))
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []QuarantineRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("trace: decoding quarantine log: %w", err)
	}
	return recs, nil
}

// QuarantinedDays reduces a quarantine log to the distinct affected
// days, ascending.
func QuarantinedDays(recs []QuarantineRecord) []int {
	seen := map[int]bool{}
	for _, r := range recs {
		seen[r.Day] = true
	}
	days := make([]int, 0, len(seen))
	for d := range seen {
		days = append(days, d)
	}
	sort.Ints(days)
	return days
}

// ScrubResult reports what a Scrub changed.
type ScrubResult struct {
	Report *VerifyReport
	// Quarantined lists the partitions moved to quarantine/.
	Quarantined []Partition
	// IndexesDropped lists partitions whose corrupt/stale .tlix sidecar
	// was removed (the partition data itself was clean; queries fall
	// back to scanning it).
	IndexesDropped []Partition
	// EntriesDropped lists manifest entries removed because their file
	// was missing.
	EntriesDropped []Partition
}

// Scrub audits the store (Verify) and then repairs what it can:
// partitions with corrupt data move to quarantine/ (file + sidecar)
// and are logged in quarantine/QUARANTINE.json; corrupt or stale
// sidecars on otherwise clean partitions are deleted; manifest entries
// for missing or quarantined partitions are dropped so the rewritten
// MANIFEST matches the surviving files and the store serves the
// remaining days. The store's data files are never deleted — only
// moved — so an operator can attempt recovery from quarantine/.
func Scrub(ctx context.Context, f *FileStore) (*ScrubResult, error) {
	report, err := Verify(ctx, f)
	if err != nil {
		return nil, err
	}
	res := &ScrubResult{Report: report}
	if report.OK() && len(report.Issues) == 0 {
		return res, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	qdir := filepath.Join(f.dir, QuarantineDirName)
	var qrecs []QuarantineRecord
	now := time.Now().UTC().Format(time.RFC3339)
	for _, issue := range report.Issues {
		p := Partition{Day: issue.Day, Shard: issue.Shard}
		if issue.Class == CorruptIndex {
			// The accelerator is bad, the data is fine: drop the sidecar.
			if err := f.fs.Remove(f.indexPath(p.Day, p.Shard)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				return res, fmt.Errorf("trace: scrub dropping index day %d shard %d: %w", p.Day, p.Shard, err)
			}
			res.IndexesDropped = append(res.IndexesDropped, p)
			continue
		}
		if err := f.fs.MkdirAll(qdir, 0o755); err != nil {
			return res, fmt.Errorf("trace: scrub creating quarantine dir: %w", err)
		}
		src := f.partitionPath(p.Day, p.Shard)
		dst := filepath.Join(qdir, filepath.Base(src))
		if err := f.fs.Rename(src, dst); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return res, fmt.Errorf("trace: quarantining day %d shard %d: %w", p.Day, p.Shard, err)
		}
		idxSrc := f.indexPath(p.Day, p.Shard)
		if err := f.fs.Rename(idxSrc, filepath.Join(qdir, filepath.Base(idxSrc))); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return res, fmt.Errorf("trace: quarantining index day %d shard %d: %w", p.Day, p.Shard, err)
		}
		qrecs = append(qrecs, QuarantineRecord{
			File:  filepath.Base(src),
			Day:   p.Day,
			Shard: p.Shard,
			Class: issue.Class,
			Error: issue.Detail,
			Time:  now,
		})
		res.Quarantined = append(res.Quarantined, p)
	}
	if len(qrecs) > 0 {
		existing, err := LoadQuarantine(f.fs, f.dir)
		if err != nil {
			return res, err
		}
		all := append(existing, qrecs...)
		data, err := json.MarshalIndent(all, "", " ")
		if err != nil {
			return res, err
		}
		if err := faultfs.WriteFileAtomic(f.fs, filepath.Join(qdir, QuarantineLogName), data, 0o644); err != nil {
			return res, fmt.Errorf("trace: writing quarantine log: %w", err)
		}
		if err := f.fs.SyncDir(f.dir); err != nil {
			return res, err
		}
	}
	// Rewrite the manifest without the quarantined and missing entries,
	// so the index matches the surviving files again and incremental
	// consumers observe the change as a generation bump.
	m, err := loadManifest(f.fs, f.manifestPath())
	if err != nil {
		return res, err
	}
	if m != nil {
		gone := make(map[Partition]bool, len(res.Quarantined)+len(report.Missing))
		for _, p := range res.Quarantined {
			gone[p] = true
		}
		for _, p := range report.Missing {
			gone[p] = true
			res.EntriesDropped = append(res.EntriesDropped, p)
		}
		if len(gone) > 0 {
			kept := m.Partitions[:0]
			for _, pi := range m.Partitions {
				if !gone[pi.Partition()] {
					kept = append(kept, pi)
				}
			}
			m.Partitions = kept
			m.Gen++
			if err := writeManifest(f.fs, f.manifestPath(), m); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}
