package trace

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

// randRecord builds a structurally valid record from a seeded source, so
// property failures reproduce.
func randRecord(r *rand.Rand, base int64) Record {
	rec := Record{
		Timestamp: base + r.Int63n(24*3600*1000),
		UE:        UEID(r.Intn(50_000)),
		TAC:       devices.TAC(35_000_000 + r.Intn(500)),
		Source:    topology.SectorID(r.Intn(10_000)),
		Target:    topology.SectorID(r.Intn(10_000)),
		SourceRAT: topology.RAT(r.Intn(4)),
		TargetRAT: topology.RAT(r.Intn(4)),
	}
	if r.Intn(50) == 0 {
		rec.Result = Failure
		rec.Cause = causes.Code(1 + r.Intn(900))
		rec.DurationMs = float32(r.Intn(30_000))
	} else {
		rec.DurationMs = float32(r.Intn(3000)) / 10
	}
	return rec
}

func encodeV2(t testing.TB, recs []Record, opts WriterV2Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("writer count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

func decodeAll(t testing.TB, data []byte) []Record {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Record
	var rec Record
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestCodecV2RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := StudyStart.UnixMilli()
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		for _, opts := range []WriterV2Options{
			{BlockRecords: 64},
			{BlockRecords: 64, Compress: true},
			{}, // default block size
		} {
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = randRecord(r, base)
			}
			got := decodeAll(t, encodeV2(t, recs, opts))
			if len(got) != n {
				t.Fatalf("opts=%+v n=%d: decoded %d records", opts, n, len(got))
			}
			for i := range recs {
				want := recs[i]
				want.DurationMs = quantizeDuration(want.DurationMs)
				if got[i] != want {
					t.Fatalf("opts=%+v record %d:\n in  %+v\n out %+v", opts, i, want, got[i])
				}
			}
		}
	}
}

// TestCodecV1V2DecodeAgree is the cross-codec property: the same records
// written through v1 and v2 decode to bit-identical streams (durations
// included, thanks to the shared canonical quantizer). This is what makes
// analysis artifacts byte-identical across codecs.
func TestCodecV1V2DecodeAgree(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(count%200) + 1
		recs := make([]Record, n)
		base := StudyStart.UnixMilli()
		for i := range recs {
			recs[i] = randRecord(r, base)
		}

		var v1buf bytes.Buffer
		w1, err := NewWriter(&v1buf)
		if err != nil {
			return false
		}
		for i := range recs {
			if err := w1.Write(&recs[i]); err != nil {
				return false
			}
		}
		if err := w1.Flush(); err != nil {
			return false
		}
		fromV1 := decodeAll(t, v1buf.Bytes())
		fromV2 := decodeAll(t, encodeV2(t, recs, WriterV2Options{BlockRecords: 32}))
		if len(fromV1) != len(fromV2) {
			return false
		}
		for i := range fromV1 {
			if fromV1[i] != fromV2[i] {
				t.Logf("record %d:\n v1 %+v\n v2 %+v", i, fromV1[i], fromV2[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecV2NextBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	recs := make([]Record, 500)
	base := StudyStart.UnixMilli()
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	data := encodeV2(t, recs, WriterV2Options{BlockRecords: 128})
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	var batch []Record
	batches := 0
	for {
		n, err := rd.NextBatch(&batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches++
		got = append(got, batch[:n]...)
	}
	if batches != 4 { // 128+128+128+116
		t.Fatalf("read %d batches, want 4", batches)
	}
	if len(got) != len(recs) {
		t.Fatalf("batched read yielded %d records, want %d", len(got), len(recs))
	}
	if s := rd.Stats(); s.BlocksRead != 4 || s.BlocksSkipped != 0 {
		t.Fatalf("stats = %+v", s)
	}
	want := decodeAll(t, data)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch/next disagree at %d", i)
		}
	}
}

func TestReaderV1NextBatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		rec := sampleRecord()
		rec.UE = UEID(i)
		rec.Timestamp += int64(i)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Record, 0, 128)
	var total int
	for {
		n, err := r.NextBatch(&batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 300 {
		t.Fatalf("batched v1 read yielded %d records", total)
	}
}

// TestReaderSetTimeRange checks exact record filtering plus block-level
// pruning counters on a time-sorted v2 stream.
func TestReaderSetTimeRange(t *testing.T) {
	base := StudyStart.UnixMilli()
	recs := make([]Record, 1000)
	for i := range recs {
		recs[i] = sampleRecord()
		recs[i].Timestamp = base + int64(i)*1000
	}
	for _, compress := range []bool{false, true} {
		data := encodeV2(t, recs, WriterV2Options{BlockRecords: 100, Compress: compress})
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		// Window covering records 250..349 inclusive.
		rd.SetTimeRange(base+250_000, base+349_000)
		var got []Record
		var rec Record
		for {
			err := rd.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rec)
		}
		if len(got) != 100 {
			t.Fatalf("compress=%v: %d records in range, want 100", compress, len(got))
		}
		if got[0].Timestamp != base+250_000 || got[99].Timestamp != base+349_000 {
			t.Fatalf("compress=%v: wrong window edges", compress)
		}
		s := rd.Stats()
		// Records 250..349 span blocks 2 and 3 of ten; the other eight are
		// pruned from their descriptors alone.
		if s.BlocksRead != 2 || s.BlocksSkipped != 8 {
			t.Fatalf("compress=%v: stats = %+v, want 2 read / 8 skipped", compress, s)
		}
	}
}

// TestScanRangePrunesBlocks is the acceptance check: a 1-day window over
// a 31-day v2 store must touch <10% of the blocks, while observing
// exactly the day's records.
func TestScanRangePrunesBlocks(t *testing.T) {
	fs, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{Codec: CodecV2, BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	const days = 31
	const perDay = 640 // 10 blocks per day
	for day := 0; day < days; day++ {
		w, err := fs.AppendDay(day)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perDay; i++ {
			rec := sampleRecord()
			rec.UE = UEID(i)
			rec.Timestamp = DayStart(day).UnixMilli() + int64(i)*1000
			if err := w.Write(&rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var full ScanMetrics
	c := &countingCollector{}
	if err := Scan(context.Background(), fs, ScanOptions{Metrics: &full}, c); err != nil {
		t.Fatal(err)
	}
	totalBlocks := full.BlocksRead.Load()
	if totalBlocks != days*10 {
		t.Fatalf("full scan read %d blocks, want %d", totalBlocks, days*10)
	}

	var pruned ScanMetrics
	rc := &countingCollector{}
	day := 12
	err = ScanRange(context.Background(), fs, ScanOptions{Metrics: &pruned}, DayRange(day, day), rc)
	if err != nil {
		t.Fatal(err)
	}
	if rc.total != perDay {
		t.Fatalf("1-day range observed %d records, want %d", rc.total, perDay)
	}
	read := pruned.BlocksRead.Load()
	if read*10 >= totalBlocks {
		t.Fatalf("1-day range decoded %d of %d blocks (>=10%%)", read, totalBlocks)
	}
	if read+pruned.BlocksSkipped.Load() != totalBlocks {
		t.Fatalf("read %d + skipped %d != total %d", read, pruned.BlocksSkipped.Load(), totalBlocks)
	}
	if pruned.Records.Load() != int64(perDay) {
		t.Fatalf("metrics saw %d records, want %d", pruned.Records.Load(), perDay)
	}
}

// TestScanRangeCodecAgreement: a ranged scan observes the identical
// record sequence whether the store is v1 (record filtering) or v2
// (block pruning + filtering) or in-memory.
func TestScanRangeCodecAgreement(t *testing.T) {
	build := func(s Store) {
		for day := 0; day < 4; day++ {
			w, err := s.AppendDay(day)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				rec := sampleRecord()
				rec.UE = UEID(i % 37)
				rec.Timestamp = DayStart(day).UnixMilli() + int64(i)*7000
				if err := w.Write(&rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	v1, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{Codec: CodecV1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{Codec: CodecV2, BlockRecords: 50})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	stores := map[string]Store{"v1": v1, "v2": v2, "mem": mem}
	for _, s := range stores {
		build(s)
	}
	tr := DayRange(1, 2)
	results := map[string]*countingCollector{}
	for name, s := range stores {
		c := &countingCollector{}
		if err := ScanRange(context.Background(), s, ScanOptions{Parallelism: 2}, tr, c); err != nil {
			t.Fatal(err)
		}
		results[name] = c
	}
	for name, c := range results {
		if c.total != results["mem"].total || c.daySum != results["mem"].daySum {
			t.Fatalf("%s ranged scan diverges: (%d, %d) vs mem (%d, %d)",
				name, c.total, c.daySum, results["mem"].total, results["mem"].daySum)
		}
	}
	if results["mem"].total != 2*300 {
		t.Fatalf("ranged scan saw %d records, want 600", results["mem"].total)
	}
}

// TestProjectionMatchesFullDecode: every projected subset must yield the
// full decode's values on the projected fields, for every record.
func TestProjectionMatchesFullDecode(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	recs := make([]Record, 700)
	base := StudyStart.UnixMilli()
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	data := encodeV2(t, recs, WriterV2Options{BlockRecords: 128})
	full := decodeAll(t, data)
	projections := []ColumnSet{
		ColTimestamp,
		ColUE,
		ColTAC,
		ColSectors,
		ColCause,
		ColOutcome,
		ColUE | ColSectors | ColOutcome,
		ColTAC | ColSectors | ColCause | ColOutcome,
	}
	for _, proj := range projections {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		rd.SetProjection(proj)
		var got []Record
		var batch []Record
		for {
			n, err := rd.NextBatch(&batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("proj %b: %v", proj, err)
			}
			got = append(got, batch[:n]...)
		}
		if len(got) != len(full) {
			t.Fatalf("proj %b: %d records, want %d", proj, len(got), len(full))
		}
		for i := range got {
			if got[i].Timestamp != full[i].Timestamp {
				t.Fatalf("proj %b rec %d: timestamp %d != %d", proj, i, got[i].Timestamp, full[i].Timestamp)
			}
			if proj&ColUE != 0 && got[i].UE != full[i].UE {
				t.Fatalf("proj %b rec %d: UE mismatch", proj, i)
			}
			if proj&ColTAC != 0 && got[i].TAC != full[i].TAC {
				t.Fatalf("proj %b rec %d: TAC mismatch", proj, i)
			}
			if proj&ColSectors != 0 && (got[i].Source != full[i].Source || got[i].Target != full[i].Target) {
				t.Fatalf("proj %b rec %d: sector mismatch", proj, i)
			}
			if proj&ColCause != 0 && got[i].Cause != full[i].Cause {
				t.Fatalf("proj %b rec %d: cause mismatch", proj, i)
			}
			if proj&ColOutcome != 0 && (got[i].Result != full[i].Result ||
				got[i].SourceRAT != full[i].SourceRAT || got[i].TargetRAT != full[i].TargetRAT ||
				got[i].DurationMs != full[i].DurationMs) {
				t.Fatalf("proj %b rec %d: outcome mismatch", proj, i)
			}
		}
	}
}

// TestScanProjectionCounts: a projected scan observes every record even
// though it decodes almost nothing.
func TestScanProjectionCounts(t *testing.T) {
	fs, err := NewFileStoreOpts(t.TempDir(), FileStoreOptions{Codec: CodecV2, BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	const perDay = 500
	for day := 0; day < 3; day++ {
		w, err := fs.AppendDay(day)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perDay; i++ {
			rec := sampleRecord()
			rec.Timestamp = DayStart(day).UnixMilli() + int64(i)
			if err := w.Write(&rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	c := &countingCollector{}
	err = Scan(context.Background(), fs, ScanOptions{Projection: ColTimestamp}, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.total != 3*perDay {
		t.Fatalf("projected scan observed %d records, want %d", c.total, 3*perDay)
	}
}

func TestWriterV2BatchMatchesWrite(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	recs := make([]Record, 333)
	base := StudyStart.UnixMilli()
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	var a, b bytes.Buffer
	wa, err := NewWriterV2(&a, WriterV2Options{BlockRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := wa.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wa.Flush(); err != nil {
		t.Fatal(err)
	}
	wb, err := NewWriterV2(&b, WriterV2Options{BlockRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := wb.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteBatch stream differs from Write stream")
	}
}

func TestV2StreamSmallerThanV1(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	recs := make([]Record, 20_000)
	base := StudyStart.UnixMilli()
	for i := range recs {
		recs[i] = randRecord(r, base+int64(i)*500)
	}
	var v1 bytes.Buffer
	w1, err := NewWriter(&v1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w1.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	v2 := encodeV2(t, recs, WriterV2Options{})
	if len(v2) >= v1.Len() {
		t.Fatalf("v2 stream (%d B) not smaller than v1 (%d B)", len(v2), v1.Len())
	}
	v2c := encodeV2(t, recs, WriterV2Options{Compress: true})
	if len(v2c) >= len(v2) {
		t.Fatalf("compressed v2 (%d B) not smaller than raw v2 (%d B)", len(v2c), len(v2))
	}
	t.Logf("bytes/record: v1 %.1f, v2 %.1f, v2+flate %.1f",
		float64(v1.Len())/float64(len(recs)), float64(len(v2))/float64(len(recs)),
		float64(len(v2c))/float64(len(recs)))
}

func TestReaderRejectsCorruptV2(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord()}
	data := encodeV2(t, recs, WriterV2Options{})
	// Truncations anywhere in the stream must error, never panic.
	for cut := HeaderSize + 1; cut < len(data); cut += 3 {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue
		}
		var rec Record
		for {
			if err := r.Next(&rec); err != nil {
				if err == io.EOF {
					t.Fatalf("cut=%d: truncated stream read cleanly", cut)
				}
				break
			}
		}
	}
	// Flipping descriptor bytes must produce errors, not panics.
	for off := HeaderSize; off < HeaderSize+blockHeadSize; off++ {
		mut := bytes.Clone(data)
		mut[off] ^= 0xff
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		var rec Record
		for i := 0; i < len(recs)+1; i++ {
			if err := r.Next(&rec); err != nil {
				break
			}
		}
	}
}
