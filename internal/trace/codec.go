package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

// Binary stream layout (little-endian):
//
//	header:  magic "TLHO" | version u16 | flags u16
//	record:  ts i64 | ue u32 | tac u32 | src u32 | dst u32 |
//	         rats u8 (src<<4|dst) | result u8 | cause u16 | duration f32
//
// Records are fixed width (RecordSize bytes) so readers can seek and shard
// by offset; the format is append-only.

// Magic identifies telcolens handover trace streams.
var Magic = [4]byte{'T', 'L', 'H', 'O'}

// Version is the current stream format version.
const Version uint16 = 1

// HeaderSize is the encoded header length in bytes.
const HeaderSize = 8

// RecordSize is the encoded record length in bytes.
const RecordSize = 30

// ErrBadMagic is returned when a stream does not start with Magic.
var ErrBadMagic = errors.New("trace: bad magic (not a telcolens trace)")

// ErrBadVersion is returned for unsupported stream versions.
var ErrBadVersion = errors.New("trace: unsupported stream version")

// ErrTruncated is returned when a stream ends mid-record.
var ErrTruncated = errors.New("trace: truncated record")

// AppendRecord appends the binary encoding of rec to buf and returns the
// extended slice.
func AppendRecord(buf []byte, rec *Record) []byte {
	var tmp [RecordSize]byte
	binary.LittleEndian.PutUint64(tmp[0:8], uint64(rec.Timestamp))
	binary.LittleEndian.PutUint32(tmp[8:12], uint32(rec.UE))
	binary.LittleEndian.PutUint32(tmp[12:16], uint32(rec.TAC))
	binary.LittleEndian.PutUint32(tmp[16:20], uint32(rec.Source))
	binary.LittleEndian.PutUint32(tmp[20:24], uint32(rec.Target))
	tmp[24] = byte(rec.SourceRAT)<<4 | byte(rec.TargetRAT)&0x0f
	tmp[25] = byte(rec.Result)
	binary.LittleEndian.PutUint16(tmp[26:28], uint16(rec.Cause))
	// Duration is stored as fixed-point 0.1 ms units in 16 bits when it
	// fits, else a sentinel redirects to a float side-channel; to keep the
	// format single-pass we clamp to the 16-bit fixed-point range
	// (6553.5 ms) only for the compact path and fall back to whole
	// milliseconds with a scale flag for longer failures.
	encodeDuration(tmp[28:30], rec.DurationMs)
	return append(buf, tmp[:]...)
}

// Duration encoding: 15 bits of magnitude plus a scale bit. Scale 0 stores
// 0.1 ms units (0–3276.7 ms, covering all successful HOs); scale 1 stores
// whole milliseconds (0–32767 ms, covering timeout failures up to ~32 s).
func encodeDuration(dst []byte, ms float32) {
	if ms < 0 {
		ms = 0
	}
	if ms <= 3276.7 {
		binary.LittleEndian.PutUint16(dst, uint16(math.Round(float64(ms)*10)))
		return
	}
	v := uint16(math.Min(math.Round(float64(ms)), 32767))
	binary.LittleEndian.PutUint16(dst, v|0x8000)
}

func decodeDuration(src []byte) float32 {
	v := binary.LittleEndian.Uint16(src)
	if v&0x8000 != 0 {
		return float32(v & 0x7fff)
	}
	return float32(v) / 10
}

// DecodeRecord decodes exactly RecordSize bytes into rec.
func DecodeRecord(buf []byte, rec *Record) error {
	if len(buf) < RecordSize {
		return ErrTruncated
	}
	rec.Timestamp = int64(binary.LittleEndian.Uint64(buf[0:8]))
	rec.UE = UEID(binary.LittleEndian.Uint32(buf[8:12]))
	rec.TAC = devices.TAC(binary.LittleEndian.Uint32(buf[12:16]))
	rec.Source = topology.SectorID(binary.LittleEndian.Uint32(buf[16:20]))
	rec.Target = topology.SectorID(binary.LittleEndian.Uint32(buf[20:24]))
	rec.SourceRAT = topology.RAT(buf[24] >> 4)
	rec.TargetRAT = topology.RAT(buf[24] & 0x0f)
	rec.Result = Result(buf[25])
	rec.Cause = causes.Code(binary.LittleEndian.Uint16(buf[26:28]))
	rec.DurationMs = decodeDuration(buf[28:30])
	return nil
}

// Writer encodes records onto an io.Writer with buffering.
type Writer struct {
	w     *bufio.Writer
	buf   []byte
	count int64
	err   error
}

// NewWriter writes the stream header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [HeaderSize]byte
	copy(hdr[0:4], Magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, 0, RecordSize)}, nil
}

// Write encodes one record. After an error every subsequent call returns
// the same error.
func (w *Writer) Write(rec *Record) error {
	if w.err != nil {
		return w.err
	}
	w.buf = AppendRecord(w.buf[:0], rec)
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes records from an io.Reader. Next reuses the caller's
// Record, so iteration is allocation-free.
type Reader struct {
	r   *bufio.Reader
	buf [RecordSize]byte
}

// NewReader validates the stream header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return &Reader{r: br}, nil
}

// Next decodes the next record into rec. It returns io.EOF at a clean end
// of stream and ErrTruncated if the stream ends mid-record.
func (r *Reader) Next(rec *Record) error {
	n, err := io.ReadFull(r.r, r.buf[:])
	if err == io.EOF && n == 0 {
		return io.EOF
	}
	if err != nil {
		return ErrTruncated
	}
	return DecodeRecord(r.buf[:], rec)
}
