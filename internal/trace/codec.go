package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

// Binary stream layout (little-endian):
//
//	header:  magic "TLHO" | version u16 | flags u16
//	record:  ts i64 | ue u32 | tac u32 | src u32 | dst u32 |
//	         rats u8 (src<<4|dst) | result u8 | cause u16 | duration f32
//
// Records are fixed width (RecordSize bytes) so readers can seek and shard
// by offset; the format is append-only.

// Magic identifies telcolens handover trace streams.
var Magic = [4]byte{'T', 'L', 'H', 'O'}

// Version is the legacy fixed-width stream format version. New streams
// default to VersionV2 (see codecv2.go); readers negotiate either from
// the shared header.
const Version uint16 = 1

// HeaderSize is the encoded header length in bytes.
const HeaderSize = 8

// RecordSize is the encoded record length in bytes.
const RecordSize = 30

// ErrBadMagic is returned when a stream does not start with Magic.
var ErrBadMagic = errors.New("trace: bad magic (not a telcolens trace)")

// ErrBadVersion is returned for unsupported stream versions.
var ErrBadVersion = errors.New("trace: unsupported stream version")

// ErrTruncated is returned when a stream ends mid-record.
var ErrTruncated = errors.New("trace: truncated record")

// readErr classifies a mid-stream read failure: a premature end of
// stream is truncation, while any other failure (a device error, an
// injected fault) keeps its own identity so corruption classification
// and errors.Is on the original cause still work.
func readErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return fmt.Errorf("trace: read: %w", err)
}

// AppendRecord appends the binary encoding of rec to buf and returns the
// extended slice.
func AppendRecord(buf []byte, rec *Record) []byte {
	var tmp [RecordSize]byte
	binary.LittleEndian.PutUint64(tmp[0:8], uint64(rec.Timestamp))
	binary.LittleEndian.PutUint32(tmp[8:12], uint32(rec.UE))
	binary.LittleEndian.PutUint32(tmp[12:16], uint32(rec.TAC))
	binary.LittleEndian.PutUint32(tmp[16:20], uint32(rec.Source))
	binary.LittleEndian.PutUint32(tmp[20:24], uint32(rec.Target))
	tmp[24] = byte(rec.SourceRAT)<<4 | byte(rec.TargetRAT)&0x0f
	tmp[25] = byte(rec.Result)
	binary.LittleEndian.PutUint16(tmp[26:28], uint16(rec.Cause))
	// Duration is stored as fixed-point 0.1 ms units in 16 bits when it
	// fits, else a sentinel redirects to a float side-channel; to keep the
	// format single-pass we clamp to the 16-bit fixed-point range
	// (6553.5 ms) only for the compact path and fall back to whole
	// milliseconds with a scale flag for longer failures.
	encodeDuration(tmp[28:30], rec.DurationMs)
	return append(buf, tmp[:]...)
}

// Duration encoding: 15 bits of magnitude plus a scale bit. Scale 0 stores
// 0.1 ms units (0–3276.7 ms, covering all successful HOs); scale 1 stores
// whole milliseconds (0–32767 ms, covering timeout failures up to ~32 s).
func encodeDuration(dst []byte, ms float32) {
	if ms < 0 {
		ms = 0
	}
	if ms <= 3276.7 {
		binary.LittleEndian.PutUint16(dst, uint16(math.Round(float64(ms)*10)))
		return
	}
	v := uint16(math.Min(math.Round(float64(ms)), 32767))
	binary.LittleEndian.PutUint16(dst, v|0x8000)
}

func decodeDuration(src []byte) float32 {
	v := binary.LittleEndian.Uint16(src)
	if v&0x8000 != 0 {
		return float32(v & 0x7fff)
	}
	return float32(v) / 10
}

// DecodeRecord decodes exactly RecordSize bytes into rec.
func DecodeRecord(buf []byte, rec *Record) error {
	if len(buf) < RecordSize {
		return ErrTruncated
	}
	rec.Timestamp = int64(binary.LittleEndian.Uint64(buf[0:8]))
	rec.UE = UEID(binary.LittleEndian.Uint32(buf[8:12]))
	rec.TAC = devices.TAC(binary.LittleEndian.Uint32(buf[12:16]))
	rec.Source = topology.SectorID(binary.LittleEndian.Uint32(buf[16:20]))
	rec.Target = topology.SectorID(binary.LittleEndian.Uint32(buf[20:24]))
	rec.SourceRAT = topology.RAT(buf[24] >> 4)
	rec.TargetRAT = topology.RAT(buf[24] & 0x0f)
	rec.Result = Result(buf[25])
	rec.Cause = causes.Code(binary.LittleEndian.Uint16(buf[26:28]))
	rec.DurationMs = decodeDuration(buf[28:30])
	return nil
}

// Writer encodes records onto an io.Writer with buffering.
type Writer struct {
	w     *bufio.Writer
	buf   []byte
	count int64
	err   error
}

// NewWriter writes the stream header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [HeaderSize]byte
	copy(hdr[0:4], Magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, 0, RecordSize)}, nil
}

// Write encodes one record. After an error every subsequent call returns
// the same error.
func (w *Writer) Write(rec *Record) error {
	if w.err != nil {
		return w.err
	}
	w.buf = AppendRecord(w.buf[:0], rec)
	if _, err := w.w.Write(w.buf); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.count++
	return nil
}

// WriteBatch encodes a batch of records as one block-sized buffer write
// per chunk instead of a buffered write per record.
func (w *Writer) WriteBatch(recs []Record) error {
	if w.err != nil {
		return w.err
	}
	const chunk = DefaultBlockRecords
	for len(recs) > 0 {
		n := min(chunk, len(recs))
		buf := w.buf[:0]
		if cap(buf) < n*RecordSize {
			buf = make([]byte, 0, n*RecordSize)
		}
		for i := 0; i < n; i++ {
			buf = AppendRecord(buf, &recs[i])
		}
		w.buf = buf
		if _, err := w.w.Write(buf); err != nil {
			w.err = fmt.Errorf("trace: writing record: %w", err)
			return w.err
		}
		w.count += int64(n)
		recs = recs[n:]
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes records from an io.Reader, negotiating the stream
// version (fixed-width v1, columnar-block v2 or bitpacked v3) from the
// header. Next
// reuses the caller's Record, so iteration is allocation-free; NextBatch
// hands out whole decoded blocks. SetTimeRange restricts the stream to a
// timestamp window — on v2 streams, blocks entirely outside the window
// are skipped without decoding.
type Reader struct {
	r       *bufio.Reader
	version uint16
	flags   uint16
	buf     [RecordSize]byte // v1 record scratch

	// v2 state: the current decoded block and read cursor.
	block    []Record
	blockPos int
	head     [blockHeadSize]byte
	payload  []byte
	inflated []byte
	tacDict  []devices.TAC
	scratch  []Record    // v1 NextColumns transposition buffer
	cols     ColumnBatch // v3 record-path transposition buffer
	stats    BlockStats

	// Compressed-stream scratch, reused across blocks: the flate reader
	// is Reset onto flateSrc per block instead of re-allocated, so the
	// steady-state decode loop stays allocation-free under FlagFlate too.
	flateSrc bytes.Reader
	flateR   io.ReadCloser
	trailing [1]byte

	hasRange     bool
	minTS, maxTS int64
	proj         ColumnSet // 0 = decode everything

	// Block-ordinal pruning (v2): blockOrd counts every descriptor seen
	// in stream order; blockFilter, when set, vetoes decoding a block by
	// that ordinal (see SetBlockFilter).
	blockOrd    int
	blockFilter func(block int) bool
}

// NewReader validates the stream header and returns a Reader for either
// supported version.
func NewReader(r io.Reader) (*Reader, error) {
	// The window is sized so default v2 blocks always fit a zero-copy
	// Peek (see readBlockInto); larger blocks fall back to a copy.
	br := bufio.NewReaderSize(r, 1<<18)
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	v := binary.LittleEndian.Uint16(hdr[4:6])
	if v != Version && v != VersionV2 && v != VersionV3 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:8])
	if v == Version && flags != 0 {
		return nil, fmt.Errorf("%w: v1 stream with flags %#x", ErrBadVersion, flags)
	}
	if v == VersionV2 && flags&^FlagFlate != 0 {
		return nil, fmt.Errorf("%w: unknown v2 flags %#x", ErrBadVersion, flags)
	}
	if v == VersionV3 {
		if flags&^(FlagFlate|FlagTLZ) != 0 {
			return nil, fmt.Errorf("%w: unknown v3 flags %#x", ErrBadVersion, flags)
		}
		if flags&FlagFlate != 0 && flags&FlagTLZ != 0 {
			return nil, fmt.Errorf("%w: v3 stream with both flate and TLZ flags", ErrBadVersion)
		}
	}
	// Byte accounting starts at the header, so a fully decoded stream
	// reports exactly its stored size.
	return &Reader{r: br, version: v, flags: flags, stats: BlockStats{BytesRead: HeaderSize}}, nil
}

// Version reports the negotiated stream version.
func (r *Reader) Version() uint16 { return r.version }

// Stats returns block read/skip counters (v2 streams only; zero for v1).
func (r *Reader) Stats() BlockStats { return r.stats }

// SetTimeRange restricts the stream to records with
// minTS <= Timestamp <= maxTS. On v2 streams, blocks whose [min, max]
// descriptor misses the window are skipped without decoding.
func (r *Reader) SetTimeRange(minTS, maxTS int64) {
	r.hasRange = true
	r.minTS = minTS
	r.maxTS = maxTS
}

// SetBlockFilter restricts which v2 blocks are decoded: keep is called
// with each block's stream ordinal (0-based, counting every block in the
// stream — including blocks the time range prunes, so ordinals stay
// aligned with any external per-block index) and a false return skips
// the block without reading its payload. Like SetTimeRange this is a
// pruning facility: callers that know from a PartitionIndex which
// blocks cannot match use it to avoid decoding the rest. A no-op on v1
// streams, which have no blocks.
func (r *Reader) SetBlockFilter(keep func(block int) bool) { r.blockFilter = keep }

// SetProjection restricts which columns v2 blocks decode (timestamps are
// always decoded). Skipped sections are jumped over without reading;
// the corresponding Record fields are left unspecified. A no-op on v1
// streams, which are fixed-width and always decode fully — callers must
// treat projection as an optimization hint, not a masking guarantee.
func (r *Reader) SetProjection(cols ColumnSet) { r.proj = cols }

// inRange reports whether ts passes the configured window.
func (r *Reader) inRange(ts int64) bool {
	return !r.hasRange || (ts >= r.minTS && ts <= r.maxTS)
}

// Next decodes the next record into rec. It returns io.EOF at a clean end
// of stream and ErrTruncated if the stream ends mid-record.
func (r *Reader) Next(rec *Record) error {
	if r.version != Version {
		for {
			if r.blockPos < len(r.block) {
				*rec = r.block[r.blockPos]
				r.blockPos++
				if r.inRange(rec.Timestamp) {
					return nil
				}
				continue
			}
			if err := r.readBlock(); err != nil {
				return err
			}
		}
	}
	for {
		n, err := io.ReadFull(r.r, r.buf[:])
		if err == io.EOF && n == 0 {
			return io.EOF
		}
		if err != nil {
			return readErr(err)
		}
		r.stats.BytesRead += RecordSize
		if err := DecodeRecord(r.buf[:], rec); err != nil {
			return err
		}
		if r.inRange(rec.Timestamp) {
			return nil
		}
	}
}

// NextBatch fills *batch with the next run of records, growing it as
// needed, and returns how many were decoded. On v2 streams one call
// yields one decoded block (minus any records outside the time range);
// on v1 streams it fills up to the batch capacity (DefaultBlockRecords
// when the slice is empty). It returns (0, io.EOF) at a clean end of
// stream.
func (r *Reader) NextBatch(batch *[]Record) (int, error) {
	if r.version != Version {
		for {
			if r.blockPos < len(r.block) {
				// Remainder of a block partially consumed by Next.
				recs := r.block[r.blockPos:]
				r.blockPos = len(r.block)
				*batch = append((*batch)[:0], recs...)
			} else {
				// Decode the next in-range block straight into the caller's
				// batch — no intermediate copy.
				n, err := r.readBlockInto(batch)
				if err != nil {
					return 0, err
				}
				*batch = (*batch)[:n]
			}
			n := len(*batch)
			if r.hasRange {
				n = filterRange(*batch, r.minTS, r.maxTS)
				*batch = (*batch)[:n]
			}
			if n > 0 {
				return n, nil
			}
		}
	}
	max := cap(*batch)
	if max == 0 {
		max = DefaultBlockRecords
	}
	*batch = (*batch)[:0]
	var rec Record
	for len(*batch) < max {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return len(*batch), err
		}
		*batch = append(*batch, rec)
	}
	if len(*batch) == 0 {
		return 0, io.EOF
	}
	return len(*batch), nil
}

// NextColumns fills cb with the next run of records in columnar (SoA)
// form and returns how many it holds. On v2 streams one call decodes
// one block straight into the column slices — the payload is already
// columnar, so no []Record is materialized; v1 streams decode a record
// batch and transpose it. Column projection and time-range semantics
// match NextBatch exactly. It returns (0, io.EOF) at a clean end of
// stream.
func (r *Reader) NextColumns(cb *ColumnBatch) (int, error) {
	if r.version != Version {
		for {
			if r.blockPos < len(r.block) {
				// Remainder of a block partially consumed by Next.
				cb.FromRecords(r.block[r.blockPos:])
				r.blockPos = len(r.block)
			} else if err := r.readBlockColumns(cb); err != nil {
				return 0, err
			}
			if r.hasRange {
				cb.FilterRange(r.minTS, r.maxTS)
			}
			if n := cb.Len(); n > 0 {
				return n, nil
			}
		}
	}
	if cap(r.scratch) == 0 {
		r.scratch = make([]Record, 0, DefaultBlockRecords)
	}
	n, err := r.NextBatch(&r.scratch)
	if err != nil {
		return 0, err
	}
	cb.FromRecords(r.scratch[:n])
	return n, nil
}

// filterRange compacts recs to those inside [minTS, maxTS], preserving
// order, and returns the new length.
func filterRange(recs []Record, minTS, maxTS int64) int {
	n := 0
	for i := range recs {
		if ts := recs[i].Timestamp; ts >= minTS && ts <= maxTS {
			if n != i {
				recs[n] = recs[i]
			}
			n++
		}
	}
	return n
}

// readBlock loads the next v2 block into r.block, pruning blocks outside
// the configured time range. It returns io.EOF at a clean block boundary
// and ErrTruncated or ErrCorruptBlock otherwise.
func (r *Reader) readBlock() error {
	n, err := r.readBlockInto(&r.block)
	if err != nil {
		return err
	}
	r.block = r.block[:n]
	r.blockPos = 0
	return nil
}

// blockFrame is one v2 block's descriptor plus its acquired (and, when
// compressed, inflated) payload, ready to decode. When peeked is set
// the payload aliases the bufio window and must be fully consumed —
// releaseFrame discards it — before the next read.
type blockFrame struct {
	count        int
	minTS, maxTS int64
	secs         blockSections
	payload      []byte
	encLen       int
	peeked       bool
}

// releaseFrame returns a decoded frame's bytes to the reader and
// credits the read counters.
func (r *Reader) releaseFrame(f *blockFrame) error {
	if f.peeked {
		// The peeked window is decoded; release it to the bufio reader.
		if _, err := r.r.Discard(f.encLen); err != nil {
			return readErr(err)
		}
	}
	r.stats.BlocksRead++
	r.stats.BytesRead += int64(blockHeadSize + f.encLen)
	return nil
}

// readBlockInto reads the next block whose time bounds intersect the
// configured range and decodes it into *dst, growing it as needed. It
// returns the record count, io.EOF at a clean block boundary, and
// ErrTruncated or ErrCorruptBlock otherwise.
func (r *Reader) readBlockInto(dst *[]Record) (int, error) {
	var f blockFrame
	if err := r.nextBlockFrame(&f); err != nil {
		return 0, err
	}
	if cap(*dst) < f.count {
		*dst = make([]Record, f.count)
	}
	out := (*dst)[:f.count]
	var decErr error
	if r.version == VersionV3 {
		// v3 decodes natively into columns; the record path transposes.
		decErr = decodeBlockColumnsV3(f.payload, f.minTS, f.maxTS, f.secs, r.proj, f.count, &r.cols, &r.tacDict)
		if decErr == nil {
			r.cols.Records(out)
		}
	} else if r.proj == 0 || r.proj&optionalColumns == optionalColumns {
		decErr = decodeBlockPayload(f.payload, f.minTS, f.maxTS, f.secs, out, &r.tacDict)
	} else {
		decErr = decodeBlockProjected(f.payload, f.minTS, f.maxTS, f.secs, r.proj, out, &r.tacDict)
	}
	if decErr != nil {
		return 0, decErr
	}
	return f.count, r.releaseFrame(&f)
}

// readBlockColumns reads the next in-range block and decodes it
// column-at-a-time straight into cb (resized to the block's count).
func (r *Reader) readBlockColumns(cb *ColumnBatch) error {
	var f blockFrame
	if err := r.nextBlockFrame(&f); err != nil {
		return err
	}
	var err error
	if r.version == VersionV3 {
		err = decodeBlockColumnsV3(f.payload, f.minTS, f.maxTS, f.secs, r.proj, f.count, cb, &r.tacDict)
	} else {
		err = decodeBlockColumns(f.payload, f.minTS, f.maxTS, f.secs, r.proj, f.count, cb, &r.tacDict)
	}
	if err != nil {
		return err
	}
	return r.releaseFrame(&f)
}

// nextBlockFrame reads block descriptors until one intersects the
// configured time range, validates it structurally, and acquires its
// (inflated) payload. It returns io.EOF at a clean block boundary and
// ErrTruncated or ErrCorruptBlock otherwise.
func (r *Reader) nextBlockFrame(f *blockFrame) error {
	for {
		n, err := io.ReadFull(r.r, r.head[:])
		if err == io.EOF && n == 0 {
			return io.EOF
		}
		if err != nil {
			return readErr(err)
		}
		count := binary.LittleEndian.Uint32(r.head[0:4])
		minTS := int64(binary.LittleEndian.Uint64(r.head[4:12]))
		maxTS := int64(binary.LittleEndian.Uint64(r.head[12:20]))
		rawLen := binary.LittleEndian.Uint32(r.head[20:24])
		encLen := binary.LittleEndian.Uint32(r.head[24:28])
		secs := blockSections{
			tsLen:       binary.LittleEndian.Uint32(r.head[28:32]),
			ueLen:       binary.LittleEndian.Uint32(r.head[32:36]),
			dictEntries: binary.LittleEndian.Uint32(r.head[36:40]),
			idxLen:      binary.LittleEndian.Uint32(r.head[40:44]),
			srcLen:      binary.LittleEndian.Uint32(r.head[44:48]),
			dstLen:      binary.LittleEndian.Uint32(r.head[48:52]),
			causeLen:    binary.LittleEndian.Uint32(r.head[52:56]),
		}
		if count == 0 || count > maxBlockRecords || minTS > maxTS ||
			rawLen > maxBlockPayload || encLen > maxBlockPayload {
			return fmt.Errorf("%w: bad block descriptor (count=%d raw=%d enc=%d)",
				ErrCorruptBlock, count, rawLen, encLen)
		}
		// Structural bounds before any allocation; the sections plus the
		// fixed-width tail must tile rawLen exactly either way, so a lying
		// descriptor cannot trigger a large allocation relative to the
		// bytes actually present (the 6*count tail alone bounds count by
		// the payload size).
		if r.version == VersionV3 {
			// v3 sections are bitpacked, so their minimum is the width
			// byte (plus the 4-byte reference on FOR id columns); exact
			// width-derived lengths are enforced during decode.
			if secs.tsLen < 1 || secs.ueLen < 5 || secs.idxLen < 1 ||
				secs.srcLen < 5 || secs.dstLen < 5 || secs.causeLen < 1 ||
				secs.dictEntries == 0 || secs.dictEntries > count {
				return fmt.Errorf("%w: implausible column extents", ErrCorruptBlock)
			}
		} else if secs.tsLen < count || secs.ueLen < count || secs.idxLen < count ||
			secs.srcLen < count || secs.dstLen < count || secs.causeLen < count ||
			secs.dictEntries > count {
			// Every v2 varint column holds at least one byte per record,
			// the dictionary at most one entry per record.
			return fmt.Errorf("%w: implausible column extents", ErrCorruptBlock)
		}
		sum := uint64(secs.tsLen) + uint64(secs.ueLen) + 4*uint64(secs.dictEntries) +
			uint64(secs.idxLen) + uint64(secs.srcLen) + uint64(secs.dstLen) +
			uint64(secs.causeLen) + 6*uint64(count)
		if sum != uint64(rawLen) {
			return fmt.Errorf("%w: column extents sum %d != payload %d",
				ErrCorruptBlock, sum, rawLen)
		}
		switch {
		case r.flags&(FlagFlate|FlagTLZ) == 0:
			if rawLen != encLen {
				return fmt.Errorf("%w: uncompressed block with raw %d != enc %d",
					ErrCorruptBlock, rawLen, encLen)
			}
		case r.flags&FlagFlate != 0:
			if uint64(rawLen) > uint64(encLen)*maxFlateRatio+64 {
				return fmt.Errorf("%w: implausible compression ratio (raw %d from enc %d)",
					ErrCorruptBlock, rawLen, encLen)
			}
		default: // FlagTLZ
			if uint64(rawLen) > uint64(encLen)*maxTLZRatio+64 {
				return fmt.Errorf("%w: implausible compression ratio (raw %d from enc %d)",
					ErrCorruptBlock, rawLen, encLen)
			}
		}
		ord := r.blockOrd
		r.blockOrd++
		if r.hasRange && (maxTS < r.minTS || minTS > r.maxTS) {
			if _, err := r.r.Discard(int(encLen)); err != nil {
				return readErr(err)
			}
			r.stats.BlocksSkipped++
			continue
		}
		if r.blockFilter != nil && !r.blockFilter(ord) {
			if _, err := r.r.Discard(int(encLen)); err != nil {
				return readErr(err)
			}
			r.stats.BlocksFiltered++
			continue
		}
		// Zero-copy fast path: blocks that fit the bufio window are decoded
		// straight out of it (the payload is fully consumed before the next
		// read invalidates the peek). Oversized blocks fall back to a copy.
		var payload []byte
		peeked := false
		if int(encLen) <= r.r.Size() {
			p, err := r.r.Peek(int(encLen))
			if err != nil {
				return readErr(err)
			}
			payload = p
			peeked = true
		} else {
			if cap(r.payload) < int(encLen) {
				r.payload = make([]byte, encLen)
			}
			r.payload = r.payload[:encLen]
			if _, err := io.ReadFull(r.r, r.payload); err != nil {
				return readErr(err)
			}
			payload = r.payload
		}
		if r.flags&FlagTLZ != 0 {
			if cap(r.inflated) < int(rawLen) {
				r.inflated = make([]byte, rawLen)
			}
			r.inflated = r.inflated[:rawLen]
			if err := tlzDecompress(r.inflated, payload); err != nil {
				return fmt.Errorf("%w: decompressing payload: %v", ErrCorruptBlock, err)
			}
			payload = r.inflated
		}
		if r.flags&FlagFlate != 0 {
			r.flateSrc.Reset(payload)
			if r.flateR == nil {
				r.flateR = flate.NewReader(&r.flateSrc)
			} else if err := r.flateR.(flate.Resetter).Reset(&r.flateSrc, nil); err != nil {
				return fmt.Errorf("%w: inflating payload: %v", ErrCorruptBlock, err)
			}
			if cap(r.inflated) < int(rawLen) {
				r.inflated = make([]byte, rawLen)
			}
			r.inflated = r.inflated[:rawLen]
			if _, err := io.ReadFull(r.flateR, r.inflated); err != nil {
				return fmt.Errorf("%w: inflating payload: %v", ErrCorruptBlock, err)
			}
			// The compressed payload must not hide extra data.
			if n, _ := r.flateR.Read(r.trailing[:]); n != 0 {
				return fmt.Errorf("%w: compressed payload longer than rawLen", ErrCorruptBlock)
			}
			payload = r.inflated
		}
		*f = blockFrame{
			count:   int(count),
			minTS:   minTS,
			maxTS:   maxTS,
			secs:    secs,
			payload: payload,
			encLen:  int(encLen),
			peeked:  peeked,
		}
		return nil
	}
}
