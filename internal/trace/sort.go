package trace

import (
	"math"
	"sort"
)

// Canonical day-stream ordering.
//
// A day partition stores its records sorted by timestamp. Timestamp
// alone is not a total order — a countrywide millisecond-granularity
// capture carries plenty of cross-UE ties — so producers that receive
// the same records in different orders (the batch generator's worker
// concatenation vs. a live ingest endpoint's arrival order) would seal
// different byte streams if ties broke on input position. CanonicalLess
// therefore extends the timestamp order with the full record content as
// a tie-break. The resulting order is total up to records that are
// identical in every field, and two identical records are
// indistinguishable in the encoded stream, so any producer that sorts
// the same multiset of records canonically lands a byte-identical
// partition — the invariant the streaming ingest path's crash-recovery
// and replay idempotence rest on.

// CanonicalLess reports whether row i of b orders before row j in the
// canonical day-stream order: timestamp first, then UE, source, target,
// packed RAT byte, result, cause, device TAC, and finally the duration's
// float32 bit pattern (a total order even for payloads that smuggle in
// NaNs; simulated durations are ordinary non-negative values).
func (b *ColumnBatch) CanonicalLess(i, j int) bool {
	if b.Timestamps[i] != b.Timestamps[j] {
		return b.Timestamps[i] < b.Timestamps[j]
	}
	if b.UEs[i] != b.UEs[j] {
		return b.UEs[i] < b.UEs[j]
	}
	if b.Sources[i] != b.Sources[j] {
		return b.Sources[i] < b.Sources[j]
	}
	if b.Targets[i] != b.Targets[j] {
		return b.Targets[i] < b.Targets[j]
	}
	if b.RATs[i] != b.RATs[j] {
		return b.RATs[i] < b.RATs[j]
	}
	if b.Results[i] != b.Results[j] {
		return b.Results[i] < b.Results[j]
	}
	if b.Causes[i] != b.Causes[j] {
		return b.Causes[i] < b.Causes[j]
	}
	if b.TACs[i] != b.TACs[j] {
		return b.TACs[i] < b.TACs[j]
	}
	return math.Float32bits(b.Durations[i]) < math.Float32bits(b.Durations[j])
}

// SortPermCanonical returns a permutation index over b's rows in
// canonical day-stream order, reusing perm's capacity. The batch itself
// is not reordered; feed the permutation to AppendGather to materialize
// the sorted stream.
func (b *ColumnBatch) SortPermCanonical(perm []int32) []int32 {
	n := b.Len()
	if cap(perm) < n {
		perm = make([]int32, n)
	}
	perm = perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, c int) bool {
		return b.CanonicalLess(int(perm[a]), int(perm[c]))
	})
	return perm
}
