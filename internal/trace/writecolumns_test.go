package trace

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"
)

// The write-path compatibility contract: every ingest route into the v2
// writer — the legacy record-at-a-time encoder, per-record Write,
// WriteBatch, and columnar WriteColumns (whole batches or ragged chunks)
// — must produce byte-identical streams. Manifest fingerprints, append
// determinism and the codec determinism matrix all stand on this.

// encodeVia drives one ingest route over recs and returns the stream.
func encodeVia(t *testing.T, recs []Record, opts WriterV2Options, route string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	switch route {
	case "write":
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
	case "batch":
		if err := w.WriteBatch(recs); err != nil {
			t.Fatal(err)
		}
	case "columns":
		var cb ColumnBatch
		cb.FromRecords(recs)
		if err := w.WriteColumns(&cb); err != nil {
			t.Fatal(err)
		}
	case "columns-ragged":
		// Ragged chunk sizes exercise both the buffered partial-block
		// path and the direct whole-block encode path.
		var cb ColumnBatch
		sizes := []int{1, 7, 130, 4096, 33}
		for off, k := 0, 0; off < len(recs); k++ {
			n := min(sizes[k%len(sizes)], len(recs)-off)
			cb.FromRecords(recs[off : off+n])
			if err := w.WriteColumns(&cb); err != nil {
				t.Fatal(err)
			}
			off += n
		}
	default:
		t.Fatalf("unknown route %q", route)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("route %s: count %d, want %d", route, w.Count(), len(recs))
	}
	w.Release()
	return buf.Bytes()
}

func TestWriteColumnsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := StudyStart.UnixMilli()
	for _, n := range []int{1, 5, 256, 1000, 9000} {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(rng, base)
		}
		for _, compress := range []bool{false, true} {
			for _, blockRecs := range []int{64, 256, DefaultBlockRecords} {
				name := fmt.Sprintf("n=%d/compress=%v/block=%d", n, compress, blockRecs)
				t.Run(name, func(t *testing.T) {
					opts := WriterV2Options{BlockRecords: blockRecs, Compress: compress}
					legacy := encodeVia(t, recs, WriterV2Options{
						BlockRecords: blockRecs, Compress: compress, RecordEncode: true,
					}, "write")
					for _, route := range []string{"write", "batch", "columns", "columns-ragged"} {
						got := encodeVia(t, recs, opts, route)
						if !bytes.Equal(got, legacy) {
							t.Fatalf("route %s: stream differs from the legacy record encoder (%d vs %d bytes)",
								route, len(got), len(legacy))
						}
					}
				})
			}
		}
	}
}

// TestWriteColumnsRoundTrip writes a columnar batch and reads it back
// through NextColumns: every column must survive (durations at the
// codec's canonical quantization).
func TestWriteColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	base := StudyStart.UnixMilli()
	recs := make([]Record, 3000)
	for i := range recs {
		recs[i] = randRecord(rng, base)
	}
	var in ColumnBatch
	in.FromRecords(recs)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf, WriterV2Options{BlockRecords: 128, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteColumns(&in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var cb ColumnBatch
		pos := 0
		for {
			n, err := r.NextColumns(&cb)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				j := pos + i
				if cb.Timestamps[i] != in.Timestamps[j] || cb.UEs[i] != in.UEs[j] ||
					cb.TACs[i] != in.TACs[j] || cb.Sources[i] != in.Sources[j] ||
					cb.Targets[i] != in.Targets[j] || cb.Causes[i] != in.Causes[j] ||
					cb.RATs[i] != in.RATs[j] || cb.Results[i] != in.Results[j] {
					t.Fatalf("compress=%v: row %d differs after round trip", compress, j)
				}
				if want := quantizeDuration(in.Durations[j]); cb.Durations[i] != want &&
					!(math.IsNaN(float64(cb.Durations[i])) && math.IsNaN(float64(want))) {
					t.Fatalf("compress=%v: row %d duration %g, want %g", compress, j, cb.Durations[i], want)
				}
			}
			pos += n
		}
		if pos != len(recs) {
			t.Fatalf("compress=%v: round trip saw %d rows, want %d", compress, pos, len(recs))
		}
	}
}
