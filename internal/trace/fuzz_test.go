package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// FuzzDecodeBlock feeds arbitrary bytes to the v2 block decoder through
// the public Reader. Truncated frames, bad varints, oversized counts,
// lying compression descriptors and trailing garbage must all surface as
// errors — never as panics or unbounded allocations.
func FuzzDecodeBlock(f *testing.F) {
	// Seed corpus: valid streams across block sizes and compression, plus
	// targeted corruptions.
	r := rand.New(rand.NewSource(1))
	base := StudyStart.UnixMilli()
	for _, n := range []int{1, 5, 130} {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(r, base)
		}
		for _, opts := range []WriterV2Options{{BlockRecords: 64}, {BlockRecords: 64, Compress: true}} {
			data := encodeV2(f, recs, opts)
			f.Add(data)
			f.Add(data[:len(data)-1])
			f.Add(data[:HeaderSize+blockHeadSize-2])
			mut := bytes.Clone(data)
			mut[HeaderSize] ^= 0x7f // count
			f.Add(mut)
			mut = bytes.Clone(data)
			mut[len(mut)-1] ^= 0xff // last payload byte
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TLHO"))
	f.Add(append([]byte("TLHO"), 2, 0, 0, 0))
	f.Add(append([]byte("TLHO"), 2, 0, 1, 0)) // flate flag, no blocks

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for i := 0; i < 4*maxBlockRecords; i++ {
			if err := rd.Next(&rec); err != nil {
				// Any terminal condition must be one of the codec's
				// declared error kinds (or a wrapped form of them).
				if err != io.EOF && err != ErrTruncated && !errors.Is(err, ErrCorruptBlock) {
					t.Fatalf("undeclared error kind: %v", err)
				}
				break
			}
		}
		// The batched path must agree error-for-error in kind (no panic).
		rd2, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var batch []Record
		for i := 0; i < 8; i++ {
			if _, err := rd2.NextBatch(&batch); err != nil {
				break
			}
		}
	})
}
