package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// FuzzDecodeBlock feeds arbitrary bytes to the v2 and v3 block decoders
// through the public Reader. Truncated frames, bad varints, lying bit
// widths, oversized counts, lying compression descriptors and trailing
// garbage must all surface as errors — never as panics or unbounded
// allocations.
func FuzzDecodeBlock(f *testing.F) {
	// Seed corpus: valid streams across versions, block sizes and
	// compression, plus targeted corruptions.
	r := rand.New(rand.NewSource(1))
	base := StudyStart.UnixMilli()
	for _, n := range []int{1, 5, 130} {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(r, base)
		}
		var streams [][]byte
		for _, opts := range []WriterV2Options{{BlockRecords: 64}, {BlockRecords: 64, Compress: true}} {
			streams = append(streams, encodeV2(f, recs, opts))
		}
		for _, opts := range []WriterV3Options{
			{BlockRecords: 64},
			{BlockRecords: 64, Compress: true},
			{BlockRecords: 64, FastCompress: true},
		} {
			streams = append(streams, encodeV3(f, recs, opts))
		}
		for _, data := range streams {
			f.Add(data)
			f.Add(data[:len(data)-1])
			f.Add(data[:HeaderSize+blockHeadSize-2])
			mut := bytes.Clone(data)
			mut[HeaderSize] ^= 0x7f // count
			f.Add(mut)
			mut = bytes.Clone(data)
			mut[len(mut)-1] ^= 0xff // last payload byte
			f.Add(mut)
			mut = bytes.Clone(data)
			mut[HeaderSize+blockHeadSize] ^= 0x7f // first payload byte (v3: ts width)
			f.Add(mut)
		}
	}
	// Column-written streams with degenerate column shapes (constant
	// timestamps, single-entry TAC dictionary) — the WriteColumns →
	// NextColumns round trip the column decode leg below chews on.
	for _, compress := range []bool{false, true} {
		var cb ColumnBatch
		cb.resize(96)
		for i := range cb.Timestamps {
			cb.Timestamps[i] = base
			cb.UEs[i] = UEID(i)
			cb.TACs[i] = 35_000_001
			cb.Sources[i] = 7
			cb.Targets[i] = 9
			cb.RATs[i] = 0x32
			cb.Durations[i] = 12.5
		}
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf, WriterV2Options{BlockRecords: 64, Compress: compress})
		if err != nil {
			f.Fatal(err)
		}
		if err := w.WriteColumns(&cb); err != nil {
			f.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("TLHO"))
	f.Add(append([]byte("TLHO"), 2, 0, 0, 0))
	f.Add(append([]byte("TLHO"), 2, 0, 1, 0)) // flate flag, no blocks
	f.Add(append([]byte("TLHO"), 3, 0, 0, 0))
	f.Add(append([]byte("TLHO"), 3, 0, 1, 0)) // v3 + flate, no blocks
	f.Add(append([]byte("TLHO"), 3, 0, 2, 0)) // v3 + TLZ, no blocks
	f.Add(append([]byte("TLHO"), 3, 0, 3, 0)) // both flags: must reject

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for i := 0; i < 4*maxBlockRecords; i++ {
			if err := rd.Next(&rec); err != nil {
				// Any terminal condition must be one of the codec's
				// declared error kinds (or a wrapped form of them).
				if err != io.EOF && err != ErrTruncated && !errors.Is(err, ErrCorruptBlock) {
					t.Fatalf("undeclared error kind: %v", err)
				}
				break
			}
		}
		// The batched path must agree error-for-error in kind (no panic).
		rd2, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var batch []Record
		for i := 0; i < 8; i++ {
			if _, err := rd2.NextBatch(&batch); err != nil {
				break
			}
		}
		// And the columnar decode path (SoA, independent column cursors).
		rd3, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var cb ColumnBatch
		for i := 0; i < 8; i++ {
			if _, err := rd3.NextColumns(&cb); err != nil {
				break
			}
		}
	})
}
