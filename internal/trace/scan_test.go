package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// buildShardedStore writes records for nUEs over days, hash-partitioned
// into the given shard count, with deterministic content.
func buildShardedStore(t testing.TB, days, nUEs, shards int) *MemStore {
	t.Helper()
	s := NewMemStore()
	for day := 0; day < days; day++ {
		writers := make([]RecordWriter, shards)
		for sh := 0; sh < shards; sh++ {
			w, err := s.AppendPartition(day, sh)
			if err != nil {
				t.Fatal(err)
			}
			writers[sh] = w
		}
		// Timestamp-ordered within the day; bucketed by UE hash.
		for i := 0; i < nUEs*4; i++ {
			ue := UEID(i % nUEs)
			rec := sampleRecord()
			rec.UE = ue
			rec.Timestamp = DayStart(day).UnixMilli() + int64(i)*1000
			if err := writers[ShardOf(ue, shards)].Write(&rec); err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range writers {
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// countingCollector counts records and day-weighted sums; both are exact
// integers, so any scan schedule must agree.
type countingCollector struct {
	total   int64
	daySum  int64
	merges  []Partition // order of MergeShard calls
	mergeMu sync.Mutex
}

type countingShard struct {
	part  Partition
	count int64
	dsum  int64
}

func (c *countingCollector) NewShardState(day, shard int) ShardState {
	return &countingShard{part: Partition{Day: day, Shard: shard}}
}

func (s *countingShard) Observe(day int, rec *Record) error {
	s.count++
	s.dsum += int64(day)*1_000_003 + int64(rec.UE)
	return nil
}

func (c *countingCollector) MergeShard(st ShardState) error {
	s := st.(*countingShard)
	c.mergeMu.Lock()
	c.merges = append(c.merges, s.part)
	c.mergeMu.Unlock()
	c.total += s.count
	c.daySum += s.dsum
	return nil
}

func TestScanMatchesSequentialForEach(t *testing.T) {
	for _, shards := range []int{1, 4, 7} {
		s := buildShardedStore(t, 3, 50, shards)
		want := &countingCollector{}
		if err := Scan(context.Background(), s, ScanOptions{Parallelism: 1}, want); err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 16} {
			got := &countingCollector{}
			if err := Scan(context.Background(), s, ScanOptions{Parallelism: par}, got); err != nil {
				t.Fatal(err)
			}
			if got.total != want.total || got.daySum != want.daySum {
				t.Fatalf("shards=%d parallelism=%d: got (%d, %d), want (%d, %d)",
					shards, par, got.total, got.daySum, want.total, want.daySum)
			}
		}
	}
}

func TestScanMergesInCanonicalOrder(t *testing.T) {
	s := buildShardedStore(t, 4, 30, 5)
	c := &countingCollector{}
	if err := Scan(context.Background(), s, ScanOptions{Parallelism: 8}, c); err != nil {
		t.Fatal(err)
	}
	if len(c.merges) != 20 {
		t.Fatalf("merged %d partitions, want 20", len(c.merges))
	}
	for i := 1; i < len(c.merges); i++ {
		if !c.merges[i-1].Less(c.merges[i]) {
			t.Fatalf("merge order not canonical at %d: %v then %v", i, c.merges[i-1], c.merges[i])
		}
	}
}

func TestScanProgress(t *testing.T) {
	s := buildShardedStore(t, 2, 20, 3)
	var events []int
	opts := ScanOptions{Parallelism: 2, Progress: func(done, total int) {
		if total != 6 {
			t.Fatalf("total = %d, want 6", total)
		}
		events = append(events, done)
	}}
	if err := Scan(context.Background(), s, opts, &countingCollector{}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 || events[0] != 1 || events[5] != 6 {
		t.Fatalf("progress events = %v", events)
	}
}

type failingCollector struct {
	countingCollector
	failObserveAt int64 // fail Observe after N records (0 = never)
	failMerge     bool
}

var errBoom = errors.New("boom")

type failingShard struct {
	c     *failingCollector
	inner ShardState
	seen  int64
}

func (c *failingCollector) NewShardState(day, shard int) ShardState {
	return &failingShard{c: c, inner: c.countingCollector.NewShardState(day, shard)}
}

func (s *failingShard) Observe(day int, rec *Record) error {
	s.seen++
	if s.c.failObserveAt > 0 && s.seen >= s.c.failObserveAt {
		return errBoom
	}
	return s.inner.Observe(day, rec)
}

func (c *failingCollector) MergeShard(st ShardState) error {
	if c.failMerge {
		return errBoom
	}
	return c.countingCollector.MergeShard(st.(*failingShard).inner)
}

func TestScanPropagatesObserveError(t *testing.T) {
	s := buildShardedStore(t, 2, 20, 4)
	c := &failingCollector{failObserveAt: 5}
	err := Scan(context.Background(), s, ScanOptions{Parallelism: 4}, c)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
}

func TestScanPropagatesMergeError(t *testing.T) {
	s := buildShardedStore(t, 2, 20, 4)
	c := &failingCollector{failMerge: true}
	err := Scan(context.Background(), s, ScanOptions{Parallelism: 4}, c)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
}

func TestScanCanceledContext(t *testing.T) {
	s := buildShardedStore(t, 3, 50, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Scan(ctx, s, ScanOptions{Parallelism: 4}, &countingCollector{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScanWithoutCollectors(t *testing.T) {
	s := buildShardedStore(t, 1, 5, 1)
	if err := Scan(context.Background(), s, ScanOptions{}); err == nil {
		t.Fatal("collector-less scan accepted")
	}
}

func TestScanEmptyStore(t *testing.T) {
	if err := Scan(context.Background(), NewMemStore(), ScanOptions{}, &countingCollector{}); err != nil {
		t.Fatal(err)
	}
}

func TestShardOfStableAndBounded(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 13} {
		counts := make([]int, shards)
		for ue := 0; ue < 10000; ue++ {
			sh := ShardOf(UEID(ue), shards)
			if sh < 0 || sh >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", ue, shards, sh)
			}
			if sh != ShardOf(UEID(ue), shards) {
				t.Fatal("ShardOf not deterministic")
			}
			counts[sh]++
		}
		// Hash partitioning should be roughly balanced.
		for sh, n := range counts {
			want := 10000 / shards
			if n < want/2 || n > want*2 {
				t.Fatalf("shard %d/%d holds %d of 10000 UEs (want ≈%d)", sh, shards, n, want)
			}
		}
	}
}

// errIterator fails after a few records; its store tracks Close calls so
// the test can assert no iterator leaks on the error path.
type errStore struct {
	MemStore
	mu     sync.Mutex
	opened int
	closed int
}

func (e *errStore) OpenPartition(day, shard int) (RecordIterator, error) {
	it, err := e.MemStore.OpenPartition(day, shard)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.opened++
	e.mu.Unlock()
	return &errIterator{store: e, inner: it}, nil
}

type errIterator struct {
	store *errStore
	inner RecordIterator
	n     int
}

func (it *errIterator) Next(rec *Record) (bool, error) {
	it.n++
	if it.n > 3 {
		return false, fmt.Errorf("disk gremlin")
	}
	return it.inner.Next(rec)
}

func (it *errIterator) Close() error {
	it.store.mu.Lock()
	it.store.closed++
	it.store.mu.Unlock()
	return it.inner.Close()
}

func TestScanClosesIteratorsOnReadError(t *testing.T) {
	es := &errStore{}
	for day := 0; day < 2; day++ {
		w, err := es.MemStore.AppendPartition(day, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			rec := sampleRecord()
			rec.Timestamp = DayStart(day).UnixMilli() + int64(i)
			if err := w.Write(&rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	err := Scan(context.Background(), es, ScanOptions{Parallelism: 2}, &countingCollector{})
	if err == nil {
		t.Fatal("read error not propagated")
	}
	es.mu.Lock()
	defer es.mu.Unlock()
	if es.opened == 0 || es.opened != es.closed {
		t.Fatalf("iterator leak: opened %d, closed %d", es.opened, es.closed)
	}
}
