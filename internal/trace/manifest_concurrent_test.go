package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestManifestAtomicRewriteUnderConcurrentReader pins the contract the
// streaming ingest path leans on: while a writer closes partitions (each
// close is a full MANIFEST rewrite via temp-file + rename) and removes
// debris, concurrent readers running the incremental Since(gen) protocol
// through their own FileStore handles must only ever observe
//
//   - a complete, parseable index (a torn or half-written MANIFEST is a
//     bug in the rewrite, surfaced as a decode error),
//   - a generation that never moves backwards, and
//   - diffs that, replayed in sequence, reconstruct exactly the final
//     partition set — the property telcoserve's refresh loop relies on
//     to merge sealed days without a full rescan.
//
// Readers may observe "no usable manifest" in the window between a
// partition file landing and the index rewrite covering it; that is the
// documented fall-back signal, not a tear.
func TestManifestAtomicRewriteUnderConcurrentReader(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	const days = 24
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(format string, a ...any) {
		select {
		case errs <- fmt.Errorf(format, a...):
		default:
		}
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reader, err := NewFileStore(dir)
			if err != nil {
				fail("opening reader: %v", err)
				return
			}
			seen := make(map[Partition]uint64) // partition -> fingerprint at last diff
			var gen uint64
			scan := func() bool {
				diff, newGen, err := Since(reader, gen)
				if err != nil {
					// "No usable manifest" covers the landing window between
					// a partition file and its index rewrite — the documented
					// fall-back state. Any other error, in particular a JSON
					// decode failure, means the rewrite tore.
					if strings.Contains(err.Error(), "no usable manifest") {
						return true
					}
					fail("mid-rewrite read: %v", err)
					return false
				}
				if newGen < gen {
					fail("manifest generation moved backwards: %d -> %d", gen, newGen)
					return false
				}
				for _, pi := range diff {
					if pi.Gen <= gen {
						fail("Since(%d) returned stale entry day %d shard %d at gen %d",
							gen, pi.Day, pi.Shard, pi.Gen)
						return false
					}
					seen[pi.Partition()] = pi.Fingerprint
				}
				gen = newGen
				return true
			}
			for !done.Load() {
				if !scan() {
					return
				}
			}
			// Settled read after the writer finished: the replayed diffs
			// must equal the full index. (The diff protocol only reports
			// additions and changes; the writer re-adds everything it
			// removes, so no removal tracking is needed here.)
			if !scan() {
				return
			}
			m, err := reader.Manifest()
			if err != nil || m == nil {
				fail("settled manifest unusable: %v (m=%v)", err, m != nil)
				return
			}
			for i := range m.Partitions {
				pi := &m.Partitions[i]
				fp, ok := seen[pi.Partition()]
				if !ok {
					fail("reader missed partition day %d shard %d", pi.Day, pi.Shard)
					return
				}
				if fp != pi.Fingerprint {
					fail("reader holds stale fingerprint for day %d shard %d", pi.Day, pi.Shard)
					return
				}
			}
		}()
	}

	for day := 0; day < days; day++ {
		for shard := 0; shard < 2; shard++ {
			writeTestPartition(t, writer, day, shard, 20+day)
		}
		if day%5 == 4 {
			// Debris churn: remove a partition and land a replacement with
			// different content, as a crashed-and-recovered ingest seal does.
			if err := writer.RemovePartition(day, 0); err != nil {
				t.Fatal(err)
			}
			writeTestPartition(t, writer, day, 0, 40+day)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent reader: %v", err)
	}
}
