//go:build !race

package trace

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
)

// The steady-state batch scan loop must not allocate: after the first
// block warms the reusable buffers, decoding the next block into a
// ColumnBatch (or a record batch) costs zero allocations per call.
// Gated off under -race (the detector instruments allocations).

func steadyStateAllocs(t *testing.T, blocks int, decode func(r *Reader) bool) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	recs := make([]Record, blocks*256)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	data := encodeV2(t, recs, WriterV2Options{BlockRecords: 256})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the reader's scratch buffers on the first few blocks.
	for i := 0; i < 4; i++ {
		if !decode(r) {
			t.Fatal("stream too short to warm up")
		}
	}
	return testing.AllocsPerRun(64, func() {
		if !decode(r) {
			t.Fatal("stream exhausted mid-measurement")
		}
	})
}

func TestColumnDecodeSteadyStateAllocs(t *testing.T) {
	var cb ColumnBatch
	allocs := steadyStateAllocs(t, 128, func(r *Reader) bool {
		n, err := r.NextColumns(&cb)
		return err == nil && n > 0
	})
	if allocs > 0 {
		t.Fatalf("NextColumns allocates %.1f times per block in steady state, want 0", allocs)
	}
}

func TestBatchDecodeSteadyStateAllocs(t *testing.T) {
	var batch []Record
	allocs := steadyStateAllocs(t, 128, func(r *Reader) bool {
		n, err := r.NextBatch(&batch)
		return err == nil && n > 0
	})
	if allocs > 0 {
		t.Fatalf("NextBatch allocates %.1f times per block in steady state, want 0", allocs)
	}
}

// TestColumnDecodeFlateSteadyStateAllocs covers the compressed decode
// path: the flate reader is Reset-reused across blocks, which removes
// the per-block decompressor, window and source-reader allocations. What
// remains is compress/flate's own per-flate-block dynamic-Huffman link
// tables (allocated inside huffmanDecoder.init on every dynamic block —
// unreachable from outside the stdlib), so the assertion is a tight
// bound, not zero.
func TestColumnDecodeFlateSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	recs := make([]Record, 128*256)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	data := encodeV2(t, recs, WriterV2Options{BlockRecords: 256, Compress: true})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var cb ColumnBatch
	for i := 0; i < 4; i++ {
		if n, err := r.NextColumns(&cb); err != nil || n == 0 {
			t.Fatal("stream too short to warm up")
		}
	}
	allocs := testing.AllocsPerRun(64, func() {
		if n, err := r.NextColumns(&cb); err != nil || n == 0 {
			t.Fatal("stream exhausted mid-measurement")
		}
	})
	const maxFlateAllocs = 28
	if allocs > maxFlateAllocs {
		t.Fatalf("flate NextColumns allocates %.1f times per block in steady state, want <= %d (huffman tables only)",
			allocs, maxFlateAllocs)
	}
}

// The steady-state encode loop mirrors the decode contract: once the
// writer's pooled scratch (block buffer, payload, dictionary table,
// flate writer) is warm, landing another block costs zero allocations —
// on the columnar ingest path and on the record-batch ingest path, with
// and without compression.
func steadyStateEncodeAllocs(t *testing.T, compress bool, emit func(w *WriterV2) error) float64 {
	t.Helper()
	w, err := NewWriterV2(io.Discard, WriterV2Options{BlockRecords: 256, Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // warm the scratch buffers
		if err := emit(w); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(64, func() {
		if err := emit(w); err != nil {
			t.Fatal(err)
		}
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return allocs
}

func TestColumnEncodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	recs := make([]Record, 256)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	var cb ColumnBatch
	cb.FromRecords(recs)
	for _, compress := range []bool{false, true} {
		allocs := steadyStateEncodeAllocs(t, compress, func(w *WriterV2) error {
			return w.WriteColumns(&cb)
		})
		if allocs > 0 {
			t.Fatalf("compress=%v: WriteColumns allocates %.1f times per block in steady state, want 0",
				compress, allocs)
		}
	}
}

func TestBatchEncodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	recs := make([]Record, 256)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	for _, compress := range []bool{false, true} {
		allocs := steadyStateEncodeAllocs(t, compress, func(w *WriterV2) error {
			return w.WriteBatch(recs)
		})
		if allocs > 0 {
			t.Fatalf("compress=%v: WriteBatch allocates %.1f times per block in steady state, want 0",
				compress, allocs)
		}
	}
}

// TestScanSteadyStateBlockAllocs bounds the whole engine path: scanning
// a store with many blocks per partition must allocate O(partitions),
// not O(blocks) — the pooled batch buffers absorb the per-block cost.
func TestScanSteadyStateBlockAllocs(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	const blocksPerPart = 64
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, blocksPerPart*DefaultBlockRecords)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	if err := w.(BatchWriter).WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	scanOnce := func() {
		c := &columnSumCollector{}
		if err := Scan(context.Background(), fs, ScanOptions{Parallelism: 1}, c); err != nil {
			t.Fatal(err)
		}
		if c.total != int64(len(recs)) {
			t.Fatalf("scan saw %d records, want %d", c.total, len(recs))
		}
	}
	scanOnce() // warm the pools
	allocs := testing.AllocsPerRun(5, scanOnce)
	// One partition scan owns a fixed number of setup allocations
	// (goroutines, channels, iterator, reader buffers, one directory
	// entry per partition file and its .tlix index sidecar); the bound
	// fails loudly if any per-block allocation sneaks back in
	// (64 blocks/run).
	const maxPerScan = 50
	if allocs > maxPerScan {
		t.Fatalf("steady-state scan allocates %.0f times per run over %d blocks, want <= %d (per-partition setup only)",
			allocs, blocksPerPart, maxPerScan)
	}
}
