//go:build !race

package trace

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// The steady-state batch scan loop must not allocate: after the first
// block warms the reusable buffers, decoding the next block into a
// ColumnBatch (or a record batch) costs zero allocations per call.
// Gated off under -race (the detector instruments allocations).

func steadyStateAllocs(t *testing.T, blocks int, decode func(r *Reader) bool) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	recs := make([]Record, blocks*256)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	data := encodeV2(t, recs, WriterV2Options{BlockRecords: 256})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the reader's scratch buffers on the first few blocks.
	for i := 0; i < 4; i++ {
		if !decode(r) {
			t.Fatal("stream too short to warm up")
		}
	}
	return testing.AllocsPerRun(64, func() {
		if !decode(r) {
			t.Fatal("stream exhausted mid-measurement")
		}
	})
}

func TestColumnDecodeSteadyStateAllocs(t *testing.T) {
	var cb ColumnBatch
	allocs := steadyStateAllocs(t, 128, func(r *Reader) bool {
		n, err := r.NextColumns(&cb)
		return err == nil && n > 0
	})
	if allocs > 0 {
		t.Fatalf("NextColumns allocates %.1f times per block in steady state, want 0", allocs)
	}
}

func TestBatchDecodeSteadyStateAllocs(t *testing.T) {
	var batch []Record
	allocs := steadyStateAllocs(t, 128, func(r *Reader) bool {
		n, err := r.NextBatch(&batch)
		return err == nil && n > 0
	})
	if allocs > 0 {
		t.Fatalf("NextBatch allocates %.1f times per block in steady state, want 0", allocs)
	}
}

// TestScanSteadyStateBlockAllocs bounds the whole engine path: scanning
// a store with many blocks per partition must allocate O(partitions),
// not O(blocks) — the pooled batch buffers absorb the per-block cost.
func TestScanSteadyStateBlockAllocs(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	const blocksPerPart = 64
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, blocksPerPart*DefaultBlockRecords)
	for i := range recs {
		recs[i] = randRecord(rng, StudyStart.UnixMilli())
	}
	if err := w.(BatchWriter).WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	scanOnce := func() {
		c := &columnSumCollector{}
		if err := Scan(context.Background(), fs, ScanOptions{Parallelism: 1}, c); err != nil {
			t.Fatal(err)
		}
		if c.total != int64(len(recs)) {
			t.Fatalf("scan saw %d records, want %d", c.total, len(recs))
		}
	}
	scanOnce() // warm the pools
	allocs := testing.AllocsPerRun(5, scanOnce)
	// One partition scan owns a fixed number of setup allocations
	// (goroutines, channels, iterator, reader buffers); the bound fails
	// loudly if any per-block allocation sneaks back in (64 blocks/run).
	const maxPerScan = 48
	if allocs > maxPerScan {
		t.Fatalf("steady-state scan allocates %.0f times per run over %d blocks, want <= %d (per-partition setup only)",
			allocs, blocksPerPart, maxPerScan)
	}
}
