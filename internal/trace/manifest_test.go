package trace

import (
	"os"
	"path/filepath"
	"testing"
)

// manifestTestRecord builds a deterministic record for partition tests.
func manifestTestRecord(day int, i int) Record {
	ts := DayStart(day).UnixMilli() + int64(i)*1000
	rec := Record{
		Timestamp:  ts,
		UE:         UEID(i % 17),
		TAC:        1000,
		Source:     1,
		Target:     2,
		SourceRAT:  3,
		TargetRAT:  3,
		DurationMs: float32(i%50) + 0.5,
	}
	if i%5 == 0 {
		rec.Result = Failure
		rec.Cause = 3
	}
	return rec
}

func writeTestPartition(t *testing.T, s Store, day, shard, n int) {
	t.Helper()
	w, err := s.AppendPartition(day, shard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := manifestTestRecord(day, i)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func testManifestLifecycle(t *testing.T, s Store) {
	t.Helper()
	mr := s.(ManifestReader)

	writeTestPartition(t, s, 0, 0, 40)
	writeTestPartition(t, s, 0, 1, 25)
	m, err := mr.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no manifest after writes")
	}
	if len(m.Partitions) != 2 {
		t.Fatalf("manifest lists %d partitions, want 2", len(m.Partitions))
	}
	if m.Gen == 0 {
		t.Fatal("manifest generation not advanced")
	}
	if got := m.TotalRecords(); got != 65 {
		t.Fatalf("TotalRecords = %d, want 65", got)
	}
	p0 := m.Partitions[0]
	if p0.Day != 0 || p0.Shard != 0 || p0.Records != 40 {
		t.Fatalf("entry 0 = %+v", p0)
	}
	wantMin := DayStart(0).UnixMilli()
	wantMax := wantMin + 39*1000
	if p0.MinTS != wantMin || p0.MaxTS != wantMax {
		t.Fatalf("entry 0 extents [%d, %d], want [%d, %d]", p0.MinTS, p0.MaxTS, wantMin, wantMax)
	}
	if p0.Fingerprint == 0 || p0.Fingerprint == m.Partitions[1].Fingerprint {
		t.Fatalf("fingerprints not content-derived: %x vs %x", p0.Fingerprint, m.Partitions[1].Fingerprint)
	}

	// Since diffing: a new day shows up as exactly the delta.
	gen := m.Gen
	writeTestPartition(t, s, 1, 0, 10)
	delta, newGen, err := Since(s, gen)
	if err != nil {
		t.Fatal(err)
	}
	if newGen <= gen {
		t.Fatalf("generation did not advance: %d -> %d", gen, newGen)
	}
	if len(delta) != 1 || delta[0].Day != 1 || delta[0].Records != 10 {
		t.Fatalf("Since(%d) = %+v, want the one new partition", gen, delta)
	}
	if d, _, err := Since(s, newGen); err != nil || len(d) != 0 {
		t.Fatalf("Since(current) = %v, %v; want empty", d, err)
	}

	// Count answers from the manifest.
	n, err := Count(s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 75 {
		t.Fatalf("Count = %d, want 75", n)
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 2 || days[0] != 0 || days[1] != 1 {
		t.Fatalf("Days = %v", days)
	}
}

func TestFileStoreManifest(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testManifestLifecycle(t, s)
}

func TestMemStoreManifest(t *testing.T) {
	testManifestLifecycle(t, NewMemStore())
}

// TestCountUsesManifestNotFiles proves Count answers from the manifest
// without opening partition files: the file contents are destroyed
// behind the manifest's back, and Count still reports the recorded
// total (while a store whose MANIFEST is deleted falls back to the
// streaming pass and fails on the corrupt file).
func TestCountUsesManifestNotFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 30)
	path := filepath.Join(dir, "ho_day_000.tlho")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Count(s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("Count = %d, want 30 from manifest", n)
	}
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(s); err == nil {
		t.Fatal("Count without manifest decoded a corrupt partition without error")
	}
}

// TestManifestStaleAfterExternalChange: partition files added or removed
// behind the store's back invalidate the manifest (callers fall back to
// listing), instead of serving a stale index.
func TestManifestStaleAfterExternalChange(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 5)
	writeTestPartition(t, s, 1, 0, 5)
	if err := os.Remove(filepath.Join(dir, "ho_day_001.tlho")); err != nil {
		t.Fatal(err)
	}
	m, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("stale manifest served after external delete: %+v", m)
	}
	if _, _, err := Since(s, 0); err == nil {
		t.Fatal("Since served a stale manifest")
	}
}

// TestManifestFingerprintTracksContent: rewriting a partition with
// different content (fresh directory, same layout) changes its
// fingerprint, and identical content reproduces it exactly.
func TestManifestFingerprintTracksContent(t *testing.T) {
	fp := func(n int) uint64 {
		s, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		writeTestPartition(t, s, 0, 0, n)
		m, err := s.Manifest()
		if err != nil || m == nil {
			t.Fatalf("manifest: %v %v", m, err)
		}
		return m.Partitions[0].Fingerprint
	}
	a, b, c := fp(20), fp(21), fp(20)
	if a == b {
		t.Fatalf("different content, same fingerprint %x", a)
	}
	if a != c {
		t.Fatalf("identical content, different fingerprints %x vs %x", a, c)
	}
}

// TestManifestSharedAcrossInstances: two FileStore handles on one
// directory fold their closes into one MANIFEST.
func TestManifestSharedAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s1, 0, 0, 3)
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s2, 1, 0, 4)
	m, err := s1.Manifest()
	if err != nil || m == nil {
		t.Fatalf("manifest: %v %v", m, err)
	}
	if len(m.Partitions) != 2 || m.TotalRecords() != 7 {
		t.Fatalf("manifest = %+v", m)
	}
}

// TestManifestBackfillsLegacyPartitions: appending to a directory whose
// partitions predate the manifest (MANIFEST missing) rebuilds entries
// for the legacy files by reading them once, so the index becomes
// usable again instead of permanently disagreeing with the listing.
func TestManifestBackfillsLegacyPartitions(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s1, 0, 0, 12)
	m, err := s1.Manifest()
	if err != nil || m == nil {
		t.Fatalf("manifest: %v %v", m, err)
	}
	legacyFP := m.Partitions[0].Fingerprint
	// Simulate a campaign written before the store kept a manifest.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s2, 1, 0, 5)
	m, err = s2.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("manifest unusable after appending to a legacy directory")
	}
	if len(m.Partitions) != 2 || m.TotalRecords() != 17 {
		t.Fatalf("backfilled manifest = %+v", m)
	}
	got, ok := m.Lookup(Partition{Day: 0})
	if !ok || got.Records != 12 || got.Fingerprint != legacyFP {
		t.Fatalf("backfilled entry = %+v (ok=%v), want 12 records with fingerprint %x", got, ok, legacyFP)
	}
	if got.MinTS != DayStart(0).UnixMilli() {
		t.Fatalf("backfilled MinTS = %d", got.MinTS)
	}
}

// TestScanPartitionSubset: ScanOptions.Partitions restricts the scan to
// exactly the requested partitions.
func TestScanPartitionSubset(t *testing.T) {
	s := NewMemStore()
	writeTestPartition(t, s, 0, 0, 10)
	writeTestPartition(t, s, 1, 0, 20)
	writeTestPartition(t, s, 2, 0, 30)

	var m ScanMetrics
	col := &subsetCollector{}
	opts := ScanOptions{
		Partitions: []Partition{{Day: 2}, {Day: 1}}, // normalized to canonical order
		Metrics:    &m,
	}
	if err := Scan(t.Context(), s, opts, col); err != nil {
		t.Fatal(err)
	}
	if col.total != 50 {
		t.Fatalf("subset scan saw %d records, want 50", col.total)
	}
	if got := m.Partitions.Load(); got != 2 {
		t.Fatalf("subset scan opened %d partitions, want 2", got)
	}
	if len(col.days) != 2 || col.days[0] != 1 || col.days[1] != 2 {
		t.Fatalf("merged days %v, want [1 2]", col.days)
	}
}

// subsetCollector counts records per day, recording merge order.
type subsetCollector struct {
	total int64
	days  []int
}

type subsetShard struct {
	day int
	n   int64
}

func (c *subsetCollector) NewShardState(day, shard int) ShardState {
	return &subsetShard{day: day}
}

func (s *subsetShard) Observe(day int, rec *Record) error { s.n++; return nil }

func (c *subsetCollector) MergeShard(st ShardState) error {
	s := st.(*subsetShard)
	c.total += s.n
	c.days = append(c.days, s.day)
	return nil
}
