package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"telcolens/internal/devices"
)

// v3 bitpacked block stream layout (little-endian), negotiated by the
// same 8-byte header as v2 (magic "TLHO" | version=3 u16 | flags u16)
// and framed by the same 56-byte block descriptor, so readers prune,
// filter and skip v3 blocks exactly as they do v2 blocks.
//
// Where v2 stores one varint per value, v3 stores each variable-width
// column as frame-of-reference (FOR) bitpacked words:
//
//	timestamps  width w (1 byte) | ceil(count*w/64) LE u64 words of
//	            (ts - minTS); the block descriptor's minTS is the
//	            reference, so no per-section reference is stored
//	UE          width w (1 byte) | min value (LE u32) | packed (ue - min)
//	TAC dict    raw u32 entries, frequency-ordered exactly as v2
//	TAC indexes width w (1 byte) | packed dict indexes
//	source      width w (1 byte) | min value (LE u32) | packed deltas
//	target      width w (1 byte) | min value (LE u32) | packed deltas
//	cause       width w (1 byte) | packed values
//	rats        1 byte per record (srcRAT<<4 | dstRAT), as v2
//	result      1 byte per record, as v2
//	duration    raw f32, canonically quantized, as v2
//
// Widths come from bits.Len64 of the column's max delta, so a constant
// column costs exactly its width byte (w=0, no words). Every packed
// section is padded to a whole 64-bit word, which lets the decoder
// unpack any value with at most two aligned 8-byte loads and no
// per-value bounds arithmetic beyond the slice checks.
//
// The fixed-width tail is byte-identical to v2 (including the duration
// quantizer), so a record decoded from a v3 stream is bit-identical to
// the same record decoded from a v1 or v2 stream — the cross-codec
// artifact byte-identity invariant carries over unchanged.
//
// Compression: FlagFlate works as on v2. FlagTLZ selects the homegrown
// byte-oriented LZ compressor below — much faster than flate on both
// ends at a lower ratio. A stream sets at most one of the two.

// VersionV3 identifies the bitpacked frame-of-reference block stream
// format.
const VersionV3 uint16 = 3

// FlagTLZ marks a v3 stream whose block payloads are compressed with
// the fast byte-oriented TLZ compressor (see appendTLZ). Mutually
// exclusive with FlagFlate.
const FlagTLZ uint16 = 1 << 1

// maxTLZRatio is TLZ's theoretical expansion bound: one extension byte
// adds at most 255 bytes of match, on top of a 3-byte minimum sequence.
const maxTLZRatio = 255

// packedLen returns the byte length of n values bitpacked at width w:
// whole 64-bit words, so the unpacker's two-load fast path never reads
// past the section.
func packedLen(n int, w uint8) int {
	return (n*int(w) + 63) / 64 * 8
}

// appendPacked appends vals bitpacked at width w (LSB-first within each
// LE u64 word) onto dst. Values must fit w bits. w=0 appends nothing.
func appendPacked(dst []byte, vals []uint64, w uint8) []byte {
	if w == 0 {
		return dst
	}
	need := packedLen(len(vals), w)
	mark := len(dst)
	if cap(dst) < mark+need {
		grown := make([]byte, mark, max(mark+need, 2*cap(dst)))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:mark+need]
	buf := dst[mark:]
	var acc uint64
	var nbits uint
	wi := 0
	for _, v := range vals {
		acc |= v << nbits
		nbits += uint(w)
		if nbits >= 64 {
			binary.LittleEndian.PutUint64(buf[wi*8:], acc)
			wi++
			nbits -= 64
			if nbits > 0 {
				acc = v >> (uint(w) - nbits)
			} else {
				acc = 0
			}
		}
	}
	if nbits > 0 {
		binary.LittleEndian.PutUint64(buf[wi*8:], acc)
	}
	return dst
}

// unpackColumn unpacks n=len(out) FOR-bitpacked values: out[i] = ref +
// packed delta. Any reconstructed value above limit rejects the block
// (limit is the column's domain bound, e.g. MaxUint32 for ids).
// words must be exactly packedLen(len(out), w) bytes, which the section
// parser guarantees; the word alignment makes the two aligned loads
// below always in-bounds.
func unpackColumn[T ~uint16 | ~uint32 | ~uint64](words []byte, w uint8, ref, limit uint64, out []T, col string) error {
	if w == 0 {
		if ref > limit {
			return fmt.Errorf("%w: %s column", ErrCorruptBlock, col)
		}
		for i := range out {
			out[i] = T(ref)
		}
		return nil
	}
	mask := uint64(1)<<w - 1
	n := len(out)
	var bad uint64
	// Fast path: one unaligned 8-byte load per value, shifted by the
	// in-byte bit offset. A 7-bit shift leaves 57 usable bits, so any
	// column width the format allows (<= 32, timestamps <= 63 fall back
	// below) decodes with a single load — no straddle branch. The load at
	// byte offset bit>>3 must stay inside words, which bounds the fast
	// prefix; the last few values use the two-aligned-load tail that the
	// word padding keeps in-bounds.
	i := 0
	bit := 0
	if w <= 57 && len(words) >= 8 {
		nFast := (8*(len(words)-8)+7)/int(w) + 1
		if nFast > n {
			nFast = n
		}
		if ref+mask <= limit {
			// No reconstructable value can exceed limit (ref is at most
			// 32 bits and mask at most 57, so the sum cannot wrap):
			// drop the per-value limit accumulator entirely.
			ww := int(w)
			for ; i+4 <= nFast; i += 4 {
				b0, b1, b2, b3 := bit, bit+ww, bit+2*ww, bit+3*ww
				out[i] = T(binary.LittleEndian.Uint64(words[b0>>3:])>>(uint(b0)&7)&mask + ref)
				out[i+1] = T(binary.LittleEndian.Uint64(words[b1>>3:])>>(uint(b1)&7)&mask + ref)
				out[i+2] = T(binary.LittleEndian.Uint64(words[b2>>3:])>>(uint(b2)&7)&mask + ref)
				out[i+3] = T(binary.LittleEndian.Uint64(words[b3>>3:])>>(uint(b3)&7)&mask + ref)
				bit += 4 * ww
			}
			for ; i < nFast; i++ {
				out[i] = T(binary.LittleEndian.Uint64(words[bit>>3:])>>(uint(bit)&7)&mask + ref)
				bit += int(w)
			}
		} else {
			ww := int(w)
			for ; i+4 <= nFast; i += 4 {
				b1, b2, b3 := bit+ww, bit+2*ww, bit+3*ww
				v0 := binary.LittleEndian.Uint64(words[bit>>3:])>>(uint(bit)&7)&mask + ref
				v1 := binary.LittleEndian.Uint64(words[b1>>3:])>>(uint(b1)&7)&mask + ref
				v2 := binary.LittleEndian.Uint64(words[b2>>3:])>>(uint(b2)&7)&mask + ref
				v3 := binary.LittleEndian.Uint64(words[b3>>3:])>>(uint(b3)&7)&mask + ref
				// branchless v > limit accumulator
				bad |= (limit - v0) >> 63
				bad |= (limit - v1) >> 63
				bad |= (limit - v2) >> 63
				bad |= (limit - v3) >> 63
				out[i] = T(v0)
				out[i+1] = T(v1)
				out[i+2] = T(v2)
				out[i+3] = T(v3)
				bit += 4 * ww
			}
			for ; i < nFast; i++ {
				v := binary.LittleEndian.Uint64(words[bit>>3:])>>(uint(bit)&7)&mask + ref
				bad |= (limit - v) >> 63
				out[i] = T(v)
				bit += int(w)
			}
		}
	}
	for ; i < n; i++ {
		word := bit >> 6
		off := uint(bit & 63)
		v := binary.LittleEndian.Uint64(words[word<<3:]) >> off
		if off+uint(w) > 64 {
			v |= binary.LittleEndian.Uint64(words[(word+1)<<3:]) << (64 - off)
		}
		v = (v & mask) + ref
		bad |= (limit - v) >> 63
		out[i] = T(v)
		bit += int(w)
	}
	if bad != 0 {
		return fmt.Errorf("%w: %s column", ErrCorruptBlock, col)
	}
	return nil
}

// v3Section parses one bitpacked section starting at payload[pos]:
// width byte, optional LE u32 reference (hasRef), then the packed
// words. The section's descriptor length must equal the width-derived
// length exactly.
func v3Section(payload []byte, pos int, secLen uint32, n int, maxWidth uint8, hasRef bool, col string) (ref uint32, w uint8, words []byte, next int, err error) {
	head := 1
	if hasRef {
		head = 5
	}
	if int(secLen) < head {
		return 0, 0, nil, 0, fmt.Errorf("%w: %s section too short", ErrCorruptBlock, col)
	}
	w = payload[pos]
	if w > maxWidth || int(secLen) != head+packedLen(n, w) {
		return 0, 0, nil, 0, fmt.Errorf("%w: %s section width %d disagrees with extent %d",
			ErrCorruptBlock, col, w, secLen)
	}
	if hasRef {
		ref = binary.LittleEndian.Uint32(payload[pos+1:])
	}
	return ref, w, payload[pos+head : pos+int(secLen)], pos + int(secLen), nil
}

// appendBlockColumnsV3 encodes rows [lo, hi) of cb as one v3 block
// payload onto dst. The TAC dictionary order and the fixed-width tail
// are byte-identical to the v2 encoder over the same records; only the
// variable-width sections differ (FOR bitpacking instead of varints).
func appendBlockColumnsV3(dst []byte, cb *ColumnBatch, lo, hi int, minTS, maxTS int64, e *encScratch) ([]byte, blockSections) {
	var secs blockSections
	n := hi - lo
	if cap(e.packBuf) < n {
		e.packBuf = make([]uint64, n)
	}
	vals := e.packBuf[:n]
	// Timestamps: FOR deltas from the descriptor's minTS.
	for i, ts := range cb.Timestamps[lo:hi] {
		vals[i] = uint64(ts - minTS)
	}
	w := uint8(bits.Len64(uint64(maxTS - minTS)))
	mark := len(dst)
	dst = append(dst, w)
	dst = appendPacked(dst, vals, w)
	secs.tsLen = uint32(len(dst) - mark)
	// UEs: FOR deltas from the block minimum.
	dst, secs.ueLen = appendU32SectionV3(dst, cb.UEs[lo:hi], vals)
	// TAC dictionary, frequency-ordered exactly as the v2 encoder (same
	// dictTable machinery), then bitpacked indexes.
	tacs := cb.TACs[lo:hi]
	e.dictTab.reset()
	dict := e.tacDict[:0]
	counts := e.counts[:0]
	for _, t := range tacs {
		v := e.dictTab.slot(uint32(t))
		if *v < 0 {
			*v = int32(len(dict))
			dict = append(dict, uint32(t))
			counts = append(counts, 0)
		}
		counts[*v]++
	}
	order := e.order[:0]
	for i := range dict {
		order = append(order, int32(i))
	}
	sortDictOrder(order, counts)
	secs.dictEntries = uint32(len(dict))
	for _, old := range order {
		dst = binary.LittleEndian.AppendUint32(dst, dict[old])
	}
	for r, old := range order {
		counts[old] = int32(r) // reuse: counts become ranks
	}
	var maxIdx uint64
	for i, t := range tacs {
		v := uint64(counts[*e.dictTab.slot(uint32(t))])
		vals[i] = v
		if v > maxIdx {
			maxIdx = v
		}
	}
	w = uint8(bits.Len64(maxIdx))
	mark = len(dst)
	dst = append(dst, w)
	dst = appendPacked(dst, vals, w)
	secs.idxLen = uint32(len(dst) - mark)
	e.tacDict, e.counts, e.order = dict, counts, order
	// Sectors: FOR deltas from each column's block minimum.
	dst, secs.srcLen = appendU32SectionV3(dst, cb.Sources[lo:hi], vals)
	dst, secs.dstLen = appendU32SectionV3(dst, cb.Targets[lo:hi], vals)
	// Causes: packed from zero (codes are small).
	var maxCause uint64
	for i, c := range cb.Causes[lo:hi] {
		vals[i] = uint64(c)
		if uint64(c) > maxCause {
			maxCause = uint64(c)
		}
	}
	w = uint8(bits.Len64(maxCause))
	mark = len(dst)
	dst = append(dst, w)
	dst = appendPacked(dst, vals, w)
	secs.causeLen = uint32(len(dst) - mark)
	// Fixed-width tail, byte-identical to v2.
	dst = append(dst, cb.RATs[lo:hi]...)
	for _, res := range cb.Results[lo:hi] {
		dst = append(dst, byte(res))
	}
	for _, d := range cb.Durations[lo:hi] {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(quantizeDuration(d)))
	}
	return dst, secs
}

// appendU32SectionV3 appends one FOR-bitpacked u32 column section
// (width byte | LE u32 min | packed deltas) and returns the new slice
// and the section length. vals is caller scratch of at least len(col).
func appendU32SectionV3[T ~uint32](dst []byte, col []T, vals []uint64) ([]byte, uint32) {
	ref := uint32(col[0])
	maxV := uint32(col[0])
	for _, v := range col {
		if uint32(v) < ref {
			ref = uint32(v)
		}
		if uint32(v) > maxV {
			maxV = uint32(v)
		}
	}
	for i, v := range col {
		vals[i] = uint64(uint32(v) - ref)
	}
	w := uint8(bits.Len64(uint64(maxV - ref)))
	mark := len(dst)
	dst = append(dst, w)
	dst = binary.LittleEndian.AppendUint32(dst, ref)
	dst = appendPacked(dst, vals[:len(col)], w)
	return dst, uint32(len(dst) - mark)
}

// decodeBlockColumnsV3 decodes a v3 block payload straight into the SoA
// ColumnBatch layout, honoring the column projection (timestamps are
// always decoded; skipped sections are jumped without reading).
func decodeBlockColumnsV3(payload []byte, minTS, maxTS int64, secs blockSections, proj ColumnSet, count int, cb *ColumnBatch, dictScratch *[]devices.TAC) error {
	if proj == 0 {
		proj = AllColumns
	}
	cb.resize(count)
	n := count
	// Timestamps: FOR from minTS; a delta past maxTS rejects the block.
	_, w, words, pos, err := v3Section(payload, 0, secs.tsLen, n, 63, false, "timestamp")
	if err != nil {
		return err
	}
	maxDelta := uint64(maxTS - minTS)
	tsCol := cb.Timestamps
	if w == 0 {
		for i := range tsCol {
			tsCol[i] = minTS
		}
	} else {
		mask := uint64(1)<<w - 1
		var bad uint64
		i := 0
		// Same single-load fast prefix as unpackColumn; widths above 57
		// bits (legal for timestamps) take the two-load tail throughout.
		if w <= 57 && len(words) >= 8 {
			nFast := (8*(len(words)-8)+7)/int(w) + 1
			if nFast > n {
				nFast = n
			}
			bit := 0
			ww := int(w)
			for ; i+4 <= nFast; i += 4 {
				b1, b2, b3 := bit+ww, bit+2*ww, bit+3*ww
				v0 := binary.LittleEndian.Uint64(words[bit>>3:]) >> (uint(bit) & 7) & mask
				v1 := binary.LittleEndian.Uint64(words[b1>>3:]) >> (uint(b1) & 7) & mask
				v2 := binary.LittleEndian.Uint64(words[b2>>3:]) >> (uint(b2) & 7) & mask
				v3 := binary.LittleEndian.Uint64(words[b3>>3:]) >> (uint(b3) & 7) & mask
				bad |= (maxDelta - v0) >> 63
				bad |= (maxDelta - v1) >> 63
				bad |= (maxDelta - v2) >> 63
				bad |= (maxDelta - v3) >> 63
				tsCol[i] = minTS + int64(v0)
				tsCol[i+1] = minTS + int64(v1)
				tsCol[i+2] = minTS + int64(v2)
				tsCol[i+3] = minTS + int64(v3)
				bit += 4 * ww
			}
			for ; i < nFast; i++ {
				v := binary.LittleEndian.Uint64(words[bit>>3:]) >> (uint(bit) & 7) & mask
				bad |= (maxDelta - v) >> 63
				tsCol[i] = minTS + int64(v)
				bit += int(w)
			}
		}
		bit := i * int(w)
		for ; i < n; i++ {
			word := bit >> 6
			off := uint(bit & 63)
			v := binary.LittleEndian.Uint64(words[word<<3:]) >> off
			if off+uint(w) > 64 {
				v |= binary.LittleEndian.Uint64(words[(word+1)<<3:]) << (64 - off)
			}
			v &= mask
			bad |= (maxDelta - v) >> 63
			tsCol[i] = minTS + int64(v)
			bit += int(w)
		}
		if bad != 0 {
			return fmt.Errorf("%w: timestamp outside block bounds", ErrCorruptBlock)
		}
	}
	// UE.
	if proj&ColUE != 0 {
		ref, w, words, next, err := v3Section(payload, pos, secs.ueLen, n, 32, true, "ue")
		if err != nil {
			return err
		}
		if err := unpackColumn(words, w, uint64(ref), math.MaxUint32, cb.UEs, "ue"); err != nil {
			return err
		}
		pos = next
	} else {
		pos += int(secs.ueLen)
	}
	// TAC dictionary and indexes.
	dictLen := uint64(secs.dictEntries)
	if proj&ColTAC != 0 {
		if cap(*dictScratch) < int(dictLen) {
			*dictScratch = make([]devices.TAC, dictLen)
		}
		dict := (*dictScratch)[:dictLen]
		for i := range dict {
			dict[i] = devices.TAC(binary.LittleEndian.Uint32(payload[pos+i*4:]))
		}
		pos += int(dictLen) * 4
		_, w, words, next, err := v3Section(payload, pos, secs.idxLen, n, 32, false, "tac index")
		if err != nil {
			return err
		}
		if dictLen == 0 {
			return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
		}
		if err := unpackColumn(words, w, 0, dictLen-1, cb.TACs, "tac index"); err != nil {
			return err
		}
		tacCol := cb.TACs
		for i := range tacCol {
			tacCol[i] = dict[tacCol[i]]
		}
		pos = next
	} else {
		pos += int(dictLen)*4 + int(secs.idxLen)
	}
	// Sectors.
	if proj&ColSectors != 0 {
		ref, w, words, next, err := v3Section(payload, pos, secs.srcLen, n, 32, true, "source")
		if err != nil {
			return err
		}
		if err := unpackColumn(words, w, uint64(ref), math.MaxUint32, cb.Sources, "source"); err != nil {
			return err
		}
		pos = next
		ref, w, words, next, err = v3Section(payload, pos, secs.dstLen, n, 32, true, "target")
		if err != nil {
			return err
		}
		if err := unpackColumn(words, w, uint64(ref), math.MaxUint32, cb.Targets, "target"); err != nil {
			return err
		}
		pos = next
	} else {
		pos += int(secs.srcLen) + int(secs.dstLen)
	}
	// Cause.
	if proj&ColCause != 0 {
		_, w, words, next, err := v3Section(payload, pos, secs.causeLen, n, 16, false, "cause")
		if err != nil {
			return err
		}
		if err := unpackColumn(words, w, 0, math.MaxUint16, cb.Causes, "cause"); err != nil {
			return err
		}
		pos = next
	} else {
		pos += int(secs.causeLen)
	}
	// Fixed-width tail, identical to v2.
	if proj&ColOutcome != 0 {
		copy(cb.RATs, payload[pos:pos+n])
		results := payload[pos+n : pos+2*n]
		for i := 0; i < n; i++ {
			cb.Results[i] = Result(results[i])
		}
		durs := payload[pos+2*n : pos+6*n]
		for i := 0; i < n; i++ {
			cb.Durations[i] = math.Float32frombits(binary.LittleEndian.Uint32(durs[i*4:]))
		}
	}
	return nil
}

// WriterV3Options tunes a v3 block writer. The zero value means
// DefaultBlockRecords per block, uncompressed. At most one of Compress
// and FastCompress may be set.
type WriterV3Options struct {
	// BlockRecords is the number of records per block (0 = default).
	BlockRecords int
	// Compress flate-compresses block payloads (FlagFlate).
	Compress bool
	// FastCompress compresses block payloads with the fast TLZ
	// compressor (FlagTLZ): a lower ratio than flate at a fraction of
	// the encode and decode cost.
	FastCompress bool
}

// WriterV3 encodes records as a v3 bitpacked block stream. It shares
// the v2 writer's columnar row buffering; only the per-block payload
// encoding, the optional TLZ compression and the stream header differ.
type WriterV3 struct {
	w2 WriterV2
}

// NewWriterV3 writes a v3 stream header and returns the block writer.
func NewWriterV3(w io.Writer, opts WriterV3Options) (*WriterV3, error) {
	if opts.Compress && opts.FastCompress {
		return nil, fmt.Errorf("trace: v3 writer with both flate and TLZ compression")
	}
	w3 := &WriterV3{}
	if err := initBlockWriter(&w3.w2, w, VersionV3, opts.BlockRecords, opts.Compress, opts.FastCompress); err != nil {
		return nil, err
	}
	return w3, nil
}

// Write buffers one record, emitting a block when it fills.
func (w *WriterV3) Write(rec *Record) error { return w.w2.Write(rec) }

// WriteBatch buffers a batch of records, emitting blocks as they fill.
func (w *WriterV3) WriteBatch(recs []Record) error { return w.w2.WriteBatch(recs) }

// WriteColumns buffers a columnar batch, emitting blocks as they fill;
// runs of whole blocks encode directly from cb's slices.
func (w *WriterV3) WriteColumns(cb *ColumnBatch) error { return w.w2.WriteColumns(cb) }

// Count returns the number of records written so far.
func (w *WriterV3) Count() int64 { return w.w2.Count() }

// Flush emits any partial block and flushes the underlying writer.
func (w *WriterV3) Flush() error { return w.w2.Flush() }

// Release returns the writer's pooled encode scratch for reuse; call it
// after Flush. The writer must not be used afterwards.
func (w *WriterV3) Release() { w.w2.Release() }

// appendTLZ compresses src onto dst with a greedy byte-oriented LZ
// (token format): each sequence is one token byte — literal length in
// the high nibble, match length minus 4 in the low nibble, 15 meaning
// "extension bytes follow, each adding up to 255" — then the literals,
// then a 2-byte LE match offset (>= 1, within the produced output) and
// any match-length extension bytes. The stream ends with a
// literals-only sequence (match nibble 0, no offset). table is the
// compressor's 4-byte-hash chain head array (tlzTableSize entries).
func appendTLZ(dst, src []byte, table []int32) []byte {
	clear(table)
	n := len(src)
	i, lit := 0, 0
	for i+tlzMinMatch <= n {
		u := binary.LittleEndian.Uint32(src[i:])
		h := tlzHash(u)
		cand := int(table[h]) - 1 // slots store pos+1 so 0 means empty
		table[h] = int32(i + 1)
		if cand >= 0 && i-cand <= tlzMaxOffset && binary.LittleEndian.Uint32(src[cand:]) == u {
			mlen := tlzMinMatch
			for i+mlen < n && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = tlzEmit(dst, src[lit:i], i-cand, mlen)
			i += mlen
			lit = i
		} else {
			i++
		}
	}
	return tlzEmit(dst, src[lit:], 0, 0)
}

// TLZ compressor parameters.
const (
	tlzMinMatch  = 4
	tlzMaxOffset = 1<<16 - 1
	tlzHashBits  = 13
	// tlzTableSize is the compressor hash table length (int32 slots).
	tlzTableSize = 1 << tlzHashBits
)

// tlzHash maps 4 source bytes onto a table slot.
func tlzHash(u uint32) uint32 {
	return (u * 2654435761) >> (32 - tlzHashBits)
}

// tlzEmit appends one sequence: lits, then (when offset > 0) a match of
// mlen bytes at offset back. offset == 0 emits the final literals-only
// sequence.
func tlzEmit(dst []byte, lits []byte, offset, mlen int) []byte {
	ll := len(lits)
	token := byte(min(ll, 15)) << 4
	ml := 0
	if offset > 0 {
		ml = mlen - tlzMinMatch
		token |= byte(min(ml, 15))
	}
	dst = append(dst, token)
	if ll >= 15 {
		dst = appendTLZLen(dst, ll-15)
	}
	dst = append(dst, lits...)
	if offset > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml >= 15 {
			dst = appendTLZLen(dst, ml-15)
		}
	}
	return dst
}

// appendTLZLen appends a length extension: 255-bytes until the
// remainder fits one byte.
func appendTLZLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// tlzDecompress inflates src into dst, which must be pre-sized to the
// exact decompressed length. Any structural violation — truncated
// sequence, offset outside the produced output, output over- or
// underrun, non-canonical final sequence — is an error; it never
// panics on corrupt input.
func tlzDecompress(dst, src []byte) error {
	di, si := 0, 0
	for si < len(src) {
		token := src[si]
		si++
		ll := int(token >> 4)
		if ll == 15 {
			for {
				if si >= len(src) {
					return fmt.Errorf("trace: tlz: truncated literal length")
				}
				b := src[si]
				si++
				ll += int(b)
				if b != 255 {
					break
				}
			}
		}
		if si+ll > len(src) || di+ll > len(dst) {
			return fmt.Errorf("trace: tlz: literal run overflows")
		}
		copy(dst[di:], src[si:si+ll])
		si += ll
		di += ll
		if si == len(src) {
			if token&0x0f != 0 {
				return fmt.Errorf("trace: tlz: final sequence carries a match")
			}
			break
		}
		if si+2 > len(src) {
			return fmt.Errorf("trace: tlz: truncated match offset")
		}
		off := int(src[si]) | int(src[si+1])<<8
		si += 2
		ml := int(token&0x0f) + tlzMinMatch
		if token&0x0f == 15 {
			for {
				if si >= len(src) {
					return fmt.Errorf("trace: tlz: truncated match length")
				}
				b := src[si]
				si++
				ml += int(b)
				if b != 255 {
					break
				}
			}
		}
		if off == 0 || off > di {
			return fmt.Errorf("trace: tlz: match offset %d outside output %d", off, di)
		}
		if di+ml > len(dst) {
			return fmt.Errorf("trace: tlz: match overflows output")
		}
		for k := 0; k < ml; k++ { // byte-at-a-time: overlapping copies are legal
			dst[di+k] = dst[di+k-off]
		}
		di += ml
		if si == len(src) {
			// Canonical streams always end with a literals-only sequence
			// (possibly empty), so a stream ending on a match is truncated.
			return fmt.Errorf("trace: tlz: stream ends without a final literal sequence")
		}
	}
	if di != len(dst) {
		return fmt.Errorf("trace: tlz: output underrun (%d of %d bytes)", di, len(dst))
	}
	return nil
}
