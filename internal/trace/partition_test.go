package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func partitionRoundTrip(t *testing.T, s Store) {
	t.Helper()
	// Two days, three shards each.
	for day := 0; day < 2; day++ {
		for shard := 0; shard < 3; shard++ {
			w, err := s.AppendPartition(day, shard)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10*(shard+1); i++ {
				rec := sampleRecord()
				rec.UE = UEID(shard*1000 + i)
				if err := w.Write(&rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	parts, err := s.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	want := []Partition{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if len(parts) != len(want) {
		t.Fatalf("partitions = %v", parts)
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("partitions[%d] = %v, want %v", i, parts[i], want[i])
		}
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 2 || days[0] != 0 || days[1] != 1 {
		t.Fatalf("days = %v", days)
	}
	// OpenDay chains shards: each day holds 10+20+30 records.
	it, err := s.OpenDay(0)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	n := 0
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("day 0 chained %d records, want 60", n)
	}
	total, err := Count(s)
	if err != nil {
		t.Fatal(err)
	}
	if total != 120 {
		t.Fatalf("count = %d, want 120", total)
	}
	// Double-write and missing-partition rejection.
	if _, err := s.AppendPartition(0, 1); err == nil {
		t.Fatal("rewriting partition accepted")
	}
	if _, err := s.OpenPartition(0, 9); err == nil {
		t.Fatal("missing shard opened")
	}
	if _, err := s.OpenDay(7); err == nil {
		t.Fatal("missing day opened")
	}
}

func TestMemStorePartitions(t *testing.T) { partitionRoundTrip(t, NewMemStore()) }

func TestFileStorePartitions(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	partitionRoundTrip(t, fs)
}

func TestFileStoreStrictNameParsing(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.AppendPartition(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = fs.AppendPartition(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Droppings that the old Sscanf-based parser accepted as day 1.
	for _, name := range []string{
		"ho_day_001.tlho.tmp",
		"ho_day_001.tlho.bak",
		"ho_day_001.tlhoX",
		"ho_day_0010.tlho",
		"ho_day_01.tlho",
		"xho_day_001.tlho",
		"ho_day_001_s002.tlho.tmp",
		"ho_day_001_s0002.tlho",
		"ho_day_001_s000.tlho", // shard 0 is always the bare day file
		"census.csv",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	parts, err := fs.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0] != (Partition{1, 0}) || parts[1] != (Partition{1, 2}) {
		t.Fatalf("partitions = %v, want [{1 0} {1 2}]", parts)
	}
	days, err := fs.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || days[0] != 1 {
		t.Fatalf("days = %v, want [1]", days)
	}
}

func TestParsePartitionName(t *testing.T) {
	cases := []struct {
		name string
		want Partition
		ok   bool
	}{
		{"ho_day_000.tlho", Partition{0, 0}, true},
		{"ho_day_027.tlho", Partition{27, 0}, true},
		{"ho_day_003_s001.tlho", Partition{3, 1}, true},
		{"ho_day_003_s127.tlho", Partition{3, 127}, true},
		{"ho_day_003_s000.tlho", Partition{}, false},
		{"ho_day_3.tlho", Partition{}, false},
		{"ho_day_003.tlho.tmp", Partition{}, false},
		{"ho_day_003_s01.tlho", Partition{}, false},
		{"", Partition{}, false},
	}
	for _, c := range cases {
		got, ok := parsePartitionName(c.name)
		if ok != c.ok || got != c.want {
			t.Errorf("parsePartitionName(%q) = %v, %v; want %v, %v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestFileStoreShardRange(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.AppendPartition(0, -1); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, err := fs.AppendPartition(0, 1000); err == nil {
		t.Fatal("shard 1000 accepted")
	}
}

func TestForEachPropagatesCallbackError(t *testing.T) {
	s := buildShardedStore(t, 2, 10, 2)
	sentinel := errors.New("stop here")
	calls := 0
	err := ForEach(s, func(day int, rec *Record) error {
		calls++
		if calls == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 5 {
		t.Fatalf("callback ran %d times after error", calls)
	}
}

func TestForEachClosesIteratorsOnError(t *testing.T) {
	es := &errStore{}
	w, err := es.MemStore.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := sampleRecord()
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(es, func(int, *Record) error { return nil }); err == nil {
		t.Fatal("iterator error not propagated")
	}
	if es.opened == 0 || es.opened != es.closed {
		t.Fatalf("iterator leak: opened %d, closed %d", es.opened, es.closed)
	}
}

func TestChainIteratorSurfacesOpenError(t *testing.T) {
	// A day listed in Partitions but whose shard cannot be opened must
	// surface the error from Next, not panic.
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	it, err := fs.OpenDay(0)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Corrupt the file out from under the chained iterator.
	if err := os.Remove(filepath.Join(fs.Dir(), "ho_day_000.tlho")); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(&rec); err == nil {
		t.Fatal("open failure not surfaced")
	}
}
