package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"sync"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

// v2 columnar block stream layout (little-endian), negotiated by the
// shared 8-byte header (magic "TLHO" | version=2 u16 | flags u16):
//
//	block:  count u32 | minTS i64 | maxTS i64 | rawLen u32 | encLen u32 |
//	        tsLen u32 | ueLen u32 | dictEntries u32 | idxLen u32 |
//	        srcLen u32 | dstLen u32 | causeLen u32 |
//	        payload [encLen]byte
//
// A clean end of stream is an EOF exactly at a block boundary. Each block
// holds up to BlockRecords records encoded column-at-a-time, in payload
// order:
//
//	timestamps  zigzag-varint deltas (first delta is from minTS)
//	UE          uvarint
//	TAC dict    raw u32 entries in first-appearance order
//	TAC indexes uvarint per record into the dict
//	source      uvarint
//	target      uvarint
//	cause       uvarint
//	rats        1 byte per record (srcRAT<<4 | dstRAT)
//	result      1 byte per record
//	duration    raw f32, canonically quantized (see quantizeDuration)
//
// The per-block (minTS, maxTS, count) descriptor lets readers skip whole
// blocks that fall outside a requested time range without decoding (or,
// when FlagFlate is set, without inflating) the payload: rawLen is the
// payload size before compression, encLen the stored size, so a pruned
// block costs one Discard of encLen bytes.
//
// The descriptor also carries each varint column's byte extent (the
// fixed-width tail is implied by count). That lets the decoder place an
// independent cursor per column and fill whole records in one fused pass:
// the six variable-width cursors advance as independent dependency
// chains the CPU can overlap, instead of one serial varint chain per
// column pass, and the batch is written once instead of once per column.
//
// Durations pass through the v1 fixed-point quantizer before encoding, so
// a record decoded from a v2 stream is bit-identical to the same record
// decoded from a v1 stream. That invariant is what keeps rendered
// analysis artifacts byte-identical across codecs.

// VersionV2 identifies the columnar block stream format.
const VersionV2 uint16 = 2

// FlagFlate marks a v2 stream whose block payloads are flate-compressed.
const FlagFlate uint16 = 1 << 0

// DefaultBlockRecords is the default number of records per v2 block.
const DefaultBlockRecords = 4096

// Sanity caps enforced while decoding untrusted streams.
const (
	maxBlockRecords = 1 << 20
	maxBlockPayload = 1 << 28
	blockHeadSize   = 4 + 8 + 8 + 4 + 4 + 7*4
	// maxFlateRatio is DEFLATE's theoretical expansion bound (~1032:1).
	maxFlateRatio = 1032
)

// ErrCorruptBlock is returned when a v2 block fails structural validation.
var ErrCorruptBlock = errors.New("trace: corrupt v2 block")

// ColumnSet selects which record fields a v2 scan must decode. The
// sectioned block layout makes skipping a column free: the decoder jumps
// the cursor straight to the section end without touching the bytes.
// Timestamps are always decoded (range filtering and block validation
// depend on them). Fields outside the projection hold unspecified values
// — collectors must only read what they projected.
type ColumnSet uint8

// Projectable column groups of a v2 block.
const (
	// ColUE is the subscriber id column.
	ColUE ColumnSet = 1 << iota
	// ColTAC is the dictionary-encoded device column.
	ColTAC
	// ColSectors covers the source and target sector columns.
	ColSectors
	// ColCause is the failure-cause column.
	ColCause
	// ColOutcome covers the fixed-width tail: RATs, result and duration.
	ColOutcome
	// ColTimestamp marks a projection that needs nothing beyond the
	// timestamps (which every projection decodes anyway); use it alone
	// for pure counting/temporal scans.
	ColTimestamp
)

// AllColumns decodes every field (the default; a zero ColumnSet means
// the same).
const AllColumns ColumnSet = ColUE | ColTAC | ColSectors | ColCause | ColOutcome | ColTimestamp

// optionalColumns are the groups a projection can actually skip.
const optionalColumns ColumnSet = ColUE | ColTAC | ColSectors | ColCause | ColOutcome

// quantizeDuration maps a duration onto the codec's canonical resolution
// (the v1 fixed-point encode/decode round trip), so every stream version
// stores exactly the same value.
func quantizeDuration(ms float32) float32 {
	var buf [2]byte
	encodeDuration(buf[:], ms)
	return decodeDuration(buf[:])
}

// putZigzag appends the zigzag varint encoding of v.
func putZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// blockSections carries the byte extents of the variable-width columns
// (and the TAC dictionary entry count), stored in each block's
// descriptor so the decoder can run every column cursor independently.
type blockSections struct {
	tsLen       uint32
	ueLen       uint32
	dictEntries uint32
	idxLen      uint32
	srcLen      uint32
	dstLen      uint32
	causeLen    uint32
}

// appendBlockPayload encodes recs column-at-a-time onto dst, returning
// the extended slice and the column extents. minTS is the block's
// timestamp floor (the first delta base). tacDict and tacIdx are
// caller-owned scratch reused across blocks.
func appendBlockPayload(dst []byte, recs []Record, minTS int64, tacDict *[]uint32, tacIdx map[devices.TAC]int) ([]byte, blockSections) {
	var secs blockSections
	// Timestamps: zigzag deltas.
	prev := minTS
	mark := len(dst)
	for i := range recs {
		dst = putZigzag(dst, recs[i].Timestamp-prev)
		prev = recs[i].Timestamp
	}
	secs.tsLen = uint32(len(dst) - mark)
	// UEs.
	mark = len(dst)
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(recs[i].UE))
	}
	secs.ueLen = uint32(len(dst) - mark)
	// TAC dictionary, frequency-ordered (ties broken by first
	// appearance, so the encoding stays deterministic): the most common
	// device models land on the smallest — and most branch-predictable —
	// one-byte indexes.
	*tacDict = (*tacDict)[:0]
	clear(tacIdx)
	for i := range recs {
		if _, ok := tacIdx[recs[i].TAC]; !ok {
			tacIdx[recs[i].TAC] = len(*tacDict)
			*tacDict = append(*tacDict, uint32(recs[i].TAC))
		}
	}
	counts := make([]int, len(*tacDict))
	for i := range recs {
		counts[tacIdx[recs[i].TAC]]++
	}
	order := make([]int, len(*tacDict))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return order[a] < order[b]
	})
	rank := counts // reuse: counts are no longer needed
	for r, old := range order {
		rank[old] = r
	}
	secs.dictEntries = uint32(len(*tacDict))
	for _, old := range order {
		dst = binary.LittleEndian.AppendUint32(dst, (*tacDict)[old])
	}
	mark = len(dst)
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(rank[tacIdx[recs[i].TAC]]))
	}
	secs.idxLen = uint32(len(dst) - mark)
	// Sectors.
	mark = len(dst)
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(recs[i].Source))
	}
	secs.srcLen = uint32(len(dst) - mark)
	mark = len(dst)
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(recs[i].Target))
	}
	secs.dstLen = uint32(len(dst) - mark)
	// Causes.
	mark = len(dst)
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(recs[i].Cause))
	}
	secs.causeLen = uint32(len(dst) - mark)
	// Fixed-width tail: RAT pairs, results, then raw f32 durations of the
	// canonically quantized values.
	for i := range recs {
		dst = append(dst, byte(recs[i].SourceRAT)<<4|byte(recs[i].TargetRAT)&0x0f)
	}
	for i := range recs {
		dst = append(dst, byte(recs[i].Result))
	}
	for i := range recs {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(recs[i].DurationMs))
	}
	return dst, secs
}

// decodeBlockProjected decodes only the projected columns of a block
// (timestamps always included), jumping the cursor over skipped sections
// without reading them. Unprojected fields in out are left untouched and
// unspecified. Used by scans that declared a column projection; the
// full-decode path is decodeBlockPayload.
func decodeBlockProjected(payload []byte, minTS, maxTS int64, secs blockSections, proj ColumnSet, out []Record, dictScratch *[]devices.TAC) error {
	n := len(out)
	pos := 0
	// Timestamps.
	prev := minTS
	var tsOut uint64
	for i := 0; i < n; i++ {
		var u uint64
		if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
			b0 := payload[pos]
			wide := b0 >> 7
			mask := -uint64(wide)
			u = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
			pos += 1 + int(wide)
		} else if u, pos = uvarintSlow(payload, pos); pos < 0 {
			return fmt.Errorf("%w: timestamp column", ErrCorruptBlock)
		}
		prev += int64(u>>1) ^ -int64(u&1)
		tsOut |= uint64(prev-minTS)>>63 | uint64(maxTS-prev)>>63
		out[i].Timestamp = prev
	}
	if pos != int(secs.tsLen) || tsOut != 0 {
		return fmt.Errorf("%w: timestamp column", ErrCorruptBlock)
	}
	// UE.
	if proj&ColUE != 0 {
		end := pos + int(secs.ueLen)
		for i := 0; i < n; i++ {
			var v uint64
			if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
				b0 := payload[pos]
				wide := b0 >> 7
				mask := -uint64(wide)
				v = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
				pos += 1 + int(wide)
			} else if v, pos = uvarintSlow(payload, pos); pos < 0 || v > math.MaxUint32 {
				return fmt.Errorf("%w: ue column", ErrCorruptBlock)
			}
			out[i].UE = UEID(v)
		}
		if pos != end {
			return fmt.Errorf("%w: ue column", ErrCorruptBlock)
		}
	} else {
		pos += int(secs.ueLen)
	}
	// TAC dictionary and indexes.
	dictLen := uint64(secs.dictEntries)
	if proj&ColTAC != 0 {
		if dictLen > uint64(n) {
			return fmt.Errorf("%w: tac dictionary size", ErrCorruptBlock)
		}
		if cap(*dictScratch) < int(dictLen) {
			*dictScratch = make([]devices.TAC, dictLen)
		}
		dict := (*dictScratch)[:dictLen]
		for i := range dict {
			dict[i] = devices.TAC(binary.LittleEndian.Uint32(payload[pos+i*4:]))
		}
		pos += int(dictLen) * 4
		end := pos + int(secs.idxLen)
		for i := 0; i < n; i++ {
			var idx uint64
			if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
				b0 := payload[pos]
				wide := b0 >> 7
				mask := -uint64(wide)
				idx = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
				pos += 1 + int(wide)
			} else if idx, pos = uvarintSlow(payload, pos); pos < 0 {
				return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
			}
			if idx >= dictLen {
				return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
			}
			out[i].TAC = dict[idx]
		}
		if pos != end {
			return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
		}
	} else {
		pos += int(dictLen)*4 + int(secs.idxLen)
	}
	// Sectors.
	if proj&ColSectors != 0 {
		for col, secLen := range [2]uint32{secs.srcLen, secs.dstLen} {
			end := pos + int(secLen)
			for i := 0; i < n; i++ {
				var v uint64
				if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
					b0 := payload[pos]
					wide := b0 >> 7
					mask := -uint64(wide)
					v = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
					pos += 1 + int(wide)
				} else if v, pos = uvarintSlow(payload, pos); pos < 0 || v > math.MaxUint32 {
					return fmt.Errorf("%w: sector column", ErrCorruptBlock)
				}
				if col == 0 {
					out[i].Source = topology.SectorID(v)
				} else {
					out[i].Target = topology.SectorID(v)
				}
			}
			if pos != end {
				return fmt.Errorf("%w: sector column", ErrCorruptBlock)
			}
		}
	} else {
		pos += int(secs.srcLen) + int(secs.dstLen)
	}
	// Cause.
	if proj&ColCause != 0 {
		end := pos + int(secs.causeLen)
		for i := 0; i < n; i++ {
			var v uint64
			if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
				b0 := payload[pos]
				wide := b0 >> 7
				mask := -uint64(wide)
				v = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
				pos += 1 + int(wide)
			} else if v, pos = uvarintSlow(payload, pos); pos < 0 {
				return fmt.Errorf("%w: cause column", ErrCorruptBlock)
			}
			if v > math.MaxUint16 {
				return fmt.Errorf("%w: cause column", ErrCorruptBlock)
			}
			out[i].Cause = causes.Code(v)
		}
		if pos != end {
			return fmt.Errorf("%w: cause column", ErrCorruptBlock)
		}
	} else {
		pos += int(secs.causeLen)
	}
	// Fixed-width tail.
	if proj&ColOutcome != 0 {
		rats := payload[pos : pos+n]
		results := payload[pos+n : pos+2*n]
		durs := payload[pos+2*n : pos+6*n]
		for i := 0; i < n; i++ {
			b := rats[i]
			out[i].SourceRAT = topology.RAT(b >> 4)
			out[i].TargetRAT = topology.RAT(b & 0x0f)
			out[i].Result = Result(results[i])
			out[i].DurationMs = math.Float32frombits(binary.LittleEndian.Uint32(durs[i*4:]))
		}
	}
	return nil
}

// uvarintColumn decodes one whole uvarint column section into out,
// starting at pos and expected to end exactly at pos+secLen. Values
// above max reject the block. The 1/2-byte branchless fast path matches
// the fused record decoder; keeping the loop inside one generic helper
// (instantiated per column type) means no per-value call overhead.
func uvarintColumn[T ~uint16 | ~uint32 | ~uint64](payload []byte, pos int, secLen uint32, out []T, max uint64, col string) (int, error) {
	end := pos + int(secLen)
	for i := range out {
		var v uint64
		if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
			b0 := payload[pos]
			wide := b0 >> 7
			mask := -uint64(wide)
			v = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
			pos += 1 + int(wide)
		} else if v, pos = uvarintSlow(payload, pos); pos < 0 {
			return 0, fmt.Errorf("%w: %s column", ErrCorruptBlock, col)
		}
		if v > max {
			return 0, fmt.Errorf("%w: %s column", ErrCorruptBlock, col)
		}
		out[i] = T(v)
	}
	if pos != end {
		return 0, fmt.Errorf("%w: %s column", ErrCorruptBlock, col)
	}
	return pos, nil
}

// decodeBlockColumns decodes a block payload straight into the SoA
// ColumnBatch layout — the natural shape for the columnar payload: each
// section decodes in its own tight loop with one write stream, and
// skipped (unprojected) sections are jumped without touching their
// bytes. Timestamps are always decoded. cb is resized to count; columns
// outside proj hold unspecified values.
func decodeBlockColumns(payload []byte, minTS, maxTS int64, secs blockSections, proj ColumnSet, count int, cb *ColumnBatch, dictScratch *[]devices.TAC) error {
	if proj == 0 {
		proj = AllColumns
	}
	cb.resize(count)
	n := count
	pos := 0
	// Timestamps: zigzag deltas with branchless bounds accumulation.
	prev := minTS
	var tsOut uint64
	tsCol := cb.Timestamps
	for i := 0; i < n; i++ {
		var u uint64
		if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
			b0 := payload[pos]
			wide := b0 >> 7
			mask := -uint64(wide)
			u = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
			pos += 1 + int(wide)
		} else if u, pos = uvarintSlow(payload, pos); pos < 0 {
			return fmt.Errorf("%w: timestamp column", ErrCorruptBlock)
		}
		prev += int64(u>>1) ^ -int64(u&1)
		tsOut |= uint64(prev-minTS)>>63 | uint64(maxTS-prev)>>63
		tsCol[i] = prev
	}
	if pos != int(secs.tsLen) || tsOut != 0 {
		return fmt.Errorf("%w: timestamp column", ErrCorruptBlock)
	}
	// UE.
	if proj&ColUE != 0 {
		var err error
		if pos, err = uvarintColumn(payload, pos, secs.ueLen, cb.UEs, math.MaxUint32, "ue"); err != nil {
			return err
		}
	} else {
		pos += int(secs.ueLen)
	}
	// TAC dictionary and indexes.
	dictLen := uint64(secs.dictEntries)
	if proj&ColTAC != 0 {
		if dictLen > uint64(n) {
			return fmt.Errorf("%w: tac dictionary size", ErrCorruptBlock)
		}
		if cap(*dictScratch) < int(dictLen) {
			*dictScratch = make([]devices.TAC, dictLen)
		}
		dict := (*dictScratch)[:dictLen]
		for i := range dict {
			dict[i] = devices.TAC(binary.LittleEndian.Uint32(payload[pos+i*4:]))
		}
		pos += int(dictLen) * 4
		end := pos + int(secs.idxLen)
		tacCol := cb.TACs
		for i := 0; i < n; i++ {
			var idx uint64
			if uint(pos+1) < uint(len(payload)) && payload[pos]&payload[pos+1] < 0x80 {
				b0 := payload[pos]
				wide := b0 >> 7
				mask := -uint64(wide)
				idx = uint64(b0&0x7f) | (uint64(payload[pos+1])<<7)&mask
				pos += 1 + int(wide)
			} else if idx, pos = uvarintSlow(payload, pos); pos < 0 {
				return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
			}
			if idx >= dictLen {
				return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
			}
			tacCol[i] = dict[idx]
		}
		if pos != end {
			return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
		}
	} else {
		pos += int(dictLen)*4 + int(secs.idxLen)
	}
	// Sectors.
	if proj&ColSectors != 0 {
		var err error
		if pos, err = uvarintColumn(payload, pos, secs.srcLen, cb.Sources, math.MaxUint32, "source"); err != nil {
			return err
		}
		if pos, err = uvarintColumn(payload, pos, secs.dstLen, cb.Targets, math.MaxUint32, "target"); err != nil {
			return err
		}
	} else {
		pos += int(secs.srcLen) + int(secs.dstLen)
	}
	// Cause.
	if proj&ColCause != 0 {
		var err error
		if pos, err = uvarintColumn(payload, pos, secs.causeLen, cb.Causes, math.MaxUint16, "cause"); err != nil {
			return err
		}
	} else {
		pos += int(secs.causeLen)
	}
	// Fixed-width tail: two memmoves and one f32 loop.
	if proj&ColOutcome != 0 {
		copy(cb.RATs, payload[pos:pos+n])
		results := payload[pos+n : pos+2*n]
		for i := 0; i < n; i++ {
			cb.Results[i] = Result(results[i])
		}
		durs := payload[pos+2*n : pos+6*n]
		for i := 0; i < n; i++ {
			cb.Durations[i] = math.Float32frombits(binary.LittleEndian.Uint32(durs[i*4:]))
		}
	}
	return nil
}

// uvarintSlow handles varints of any width plus end-of-buffer edges; the
// hot one- and two-byte cases are open-coded in decodeBlockPayload's
// column loops (helpers with a fallback call blow the inlining budget).
func uvarintSlow(buf []byte, pos int) (uint64, int) {
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, -1
	}
	return v, pos + n
}

// decodeBlockPayload decodes count records from payload into out, which
// must have length count. It validates every column strictly and never
// panics on corrupt input.
//
// The section extents from the block descriptor place one independent
// cursor per variable-width column, so a single fused loop fills whole
// records: the six varint dependency chains advance in parallel (the CPU
// overlaps them) and the batch is written once, instead of one serial
// chain and one batch pass per column. The one- and two-byte varint
// cases (the dominant ones for every column) are open-coded because a
// shared helper with a fallback call exceeds the inlining budget and
// costs a call per value. dictScratch is reused across blocks for the
// decoded TAC dictionary.
func decodeBlockPayload(payload []byte, minTS, maxTS int64, secs blockSections, out []Record, dictScratch *[]devices.TAC) error {
	n := len(out)
	// Section layout (byte offsets into payload).
	tsPos := 0
	tsEnd := int(secs.tsLen)
	uePos := tsEnd
	ueEnd := uePos + int(secs.ueLen)
	dictOff := ueEnd
	dictLen := uint64(secs.dictEntries)
	idxPos := dictOff + int(dictLen)*4
	idxEnd := idxPos + int(secs.idxLen)
	srcPos := idxEnd
	srcEnd := srcPos + int(secs.srcLen)
	dstPos := srcEnd
	dstEnd := dstPos + int(secs.dstLen)
	causePos := dstEnd
	causeEnd := causePos + int(secs.causeLen)
	ratsOff := causeEnd
	resultsOff := ratsOff + n
	dursOff := resultsOff + n
	if dursOff+4*n != len(payload) {
		return fmt.Errorf("%w: section extents disagree with payload size", ErrCorruptBlock)
	}
	if dictLen > uint64(n) {
		return fmt.Errorf("%w: tac dictionary size", ErrCorruptBlock)
	}
	if cap(*dictScratch) < int(dictLen) {
		*dictScratch = make([]devices.TAC, dictLen)
	}
	dict := (*dictScratch)[:dictLen]
	for i := range dict {
		dict[i] = devices.TAC(binary.LittleEndian.Uint32(payload[dictOff+i*4:]))
	}
	rats := payload[ratsOff:resultsOff]
	results := payload[resultsOff:dursOff]
	durs := payload[dursOff:]

	prev := minTS
	var tsOut uint64 // branchless out-of-bounds accumulator, checked once
	for i := 0; i < n; i++ {
		var u uint64
		if uint(tsPos+1) < uint(len(payload)) && payload[tsPos]&payload[tsPos+1] < 0x80 {
			// Branchless 1/2-byte fast path: width comes from b0's top bit,
			// so the only data-dependent branch left is the rare >=3-byte
			// fallback above.
			b0 := payload[tsPos]
			wide := b0 >> 7
			mask := -uint64(wide)
			u = uint64(b0&0x7f) | (uint64(payload[tsPos+1])<<7)&mask
			tsPos += 1 + int(wide)
		} else if u, tsPos = uvarintSlow(payload, tsPos); tsPos < 0 {
			return fmt.Errorf("%w: timestamp column", ErrCorruptBlock)
		}
		prev += int64(u>>1) ^ -int64(u&1)
		tsOut |= uint64(prev-minTS)>>63 | uint64(maxTS-prev)>>63
		out[i].Timestamp = prev

		var ue uint64
		if uint(uePos+1) < uint(len(payload)) && payload[uePos]&payload[uePos+1] < 0x80 {
			// Branchless 1/2-byte fast path: width comes from b0's top bit,
			// so the only data-dependent branch left is the rare >=3-byte
			// fallback above.
			b0 := payload[uePos]
			wide := b0 >> 7
			mask := -uint64(wide)
			ue = uint64(b0&0x7f) | (uint64(payload[uePos+1])<<7)&mask
			uePos += 1 + int(wide)
		} else if ue, uePos = uvarintSlow(payload, uePos); uePos < 0 || ue > math.MaxUint32 {
			return fmt.Errorf("%w: ue column", ErrCorruptBlock)
		}
		out[i].UE = UEID(ue)

		var idx uint64
		if uint(idxPos+1) < uint(len(payload)) && payload[idxPos]&payload[idxPos+1] < 0x80 {
			// Branchless 1/2-byte fast path: width comes from b0's top bit,
			// so the only data-dependent branch left is the rare >=3-byte
			// fallback above.
			b0 := payload[idxPos]
			wide := b0 >> 7
			mask := -uint64(wide)
			idx = uint64(b0&0x7f) | (uint64(payload[idxPos+1])<<7)&mask
			idxPos += 1 + int(wide)
		} else if idx, idxPos = uvarintSlow(payload, idxPos); idxPos < 0 {
			return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
		}
		if idx >= dictLen {
			return fmt.Errorf("%w: tac index column", ErrCorruptBlock)
		}
		out[i].TAC = dict[idx]

		var src uint64
		if uint(srcPos+1) < uint(len(payload)) && payload[srcPos]&payload[srcPos+1] < 0x80 {
			// Branchless 1/2-byte fast path: width comes from b0's top bit,
			// so the only data-dependent branch left is the rare >=3-byte
			// fallback above.
			b0 := payload[srcPos]
			wide := b0 >> 7
			mask := -uint64(wide)
			src = uint64(b0&0x7f) | (uint64(payload[srcPos+1])<<7)&mask
			srcPos += 1 + int(wide)
		} else if src, srcPos = uvarintSlow(payload, srcPos); srcPos < 0 || src > math.MaxUint32 {
			return fmt.Errorf("%w: source column", ErrCorruptBlock)
		}
		out[i].Source = topology.SectorID(src)

		var dst uint64
		if uint(dstPos+1) < uint(len(payload)) && payload[dstPos]&payload[dstPos+1] < 0x80 {
			// Branchless 1/2-byte fast path: width comes from b0's top bit,
			// so the only data-dependent branch left is the rare >=3-byte
			// fallback above.
			b0 := payload[dstPos]
			wide := b0 >> 7
			mask := -uint64(wide)
			dst = uint64(b0&0x7f) | (uint64(payload[dstPos+1])<<7)&mask
			dstPos += 1 + int(wide)
		} else if dst, dstPos = uvarintSlow(payload, dstPos); dstPos < 0 || dst > math.MaxUint32 {
			return fmt.Errorf("%w: target column", ErrCorruptBlock)
		}
		out[i].Target = topology.SectorID(dst)

		var cause uint64
		if uint(causePos+1) < uint(len(payload)) && payload[causePos]&payload[causePos+1] < 0x80 {
			// Branchless 1/2-byte fast path: width comes from b0's top bit,
			// so the only data-dependent branch left is the rare >=3-byte
			// fallback above.
			b0 := payload[causePos]
			wide := b0 >> 7
			mask := -uint64(wide)
			cause = uint64(b0&0x7f) | (uint64(payload[causePos+1])<<7)&mask
			causePos += 1 + int(wide)
		} else if cause, causePos = uvarintSlow(payload, causePos); causePos < 0 {
			return fmt.Errorf("%w: cause column", ErrCorruptBlock)
		}
		if cause > math.MaxUint16 {
			return fmt.Errorf("%w: cause column", ErrCorruptBlock)
		}
		out[i].Cause = causes.Code(cause)

		b := rats[i]
		out[i].SourceRAT = topology.RAT(b >> 4)
		out[i].TargetRAT = topology.RAT(b & 0x0f)
		out[i].Result = Result(results[i])
		out[i].DurationMs = math.Float32frombits(binary.LittleEndian.Uint32(durs[i*4:]))
	}
	// Every cursor must land exactly on its section boundary; a varint
	// straying into a neighboring section reads safely (payload-bounded)
	// but is rejected here.
	if tsPos != tsEnd || uePos != ueEnd || idxPos != idxEnd ||
		srcPos != srcEnd || dstPos != dstEnd || causePos != causeEnd {
		return fmt.Errorf("%w: column cursors misaligned with section extents", ErrCorruptBlock)
	}
	if tsOut != 0 {
		return fmt.Errorf("%w: timestamp outside block bounds", ErrCorruptBlock)
	}
	return nil
}

// appendUvarintFast appends the uvarint encoding of v with open-coded
// one- and two-byte paths (the dominant widths for every column of real
// traces); wider values fall through to binary.AppendUvarint. The bytes
// produced are identical for every width.
func appendUvarintFast(dst []byte, v uint64) []byte {
	if v < 0x80 {
		return append(dst, byte(v))
	}
	if v < 0x4000 {
		return append(dst, byte(v)|0x80, byte(v>>7))
	}
	return binary.AppendUvarint(dst, v)
}

// appendZigzagFast appends the zigzag varint encoding of v through the
// open-coded fast path.
func appendZigzagFast(dst []byte, v int64) []byte {
	return appendUvarintFast(dst, uint64(v<<1)^uint64(v>>63))
}

// dictTable is an open-addressed TAC→dict-index table the column encoder
// uses in place of a Go map: linear probing over flat arrays, with
// epoch-stamped slots so resetting between blocks is one counter bump
// instead of a table clear. Load factor stays ≤ 0.5 (the table holds
// 2× the block size, and a block of n records has at most n distinct
// TACs).
type dictTable struct {
	keys []uint32
	vals []int32
	gen  []uint32
	cur  uint32
	mask uint32
}

// init sizes the table for blocks of up to perBlock records, reusing the
// arrays when already the right size.
func (t *dictTable) init(perBlock int) {
	need := 2
	for need < 2*perBlock {
		need <<= 1
	}
	if len(t.keys) != need {
		t.keys = make([]uint32, need)
		t.vals = make([]int32, need)
		t.gen = make([]uint32, need)
		t.cur = 0
		t.mask = uint32(need - 1)
	}
}

// reset invalidates every slot for the next block.
func (t *dictTable) reset() {
	t.cur++
	if t.cur == 0 { // epoch counter wrapped: do the one real clear
		clear(t.gen)
		t.cur = 1
	}
}

// slot returns the value slot for key, claiming an empty slot (value -1)
// on first sight.
func (t *dictTable) slot(key uint32) *int32 {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	h := uint32(x) & t.mask
	for {
		if t.gen[h] != t.cur {
			t.gen[h] = t.cur
			t.keys[h] = key
			t.vals[h] = -1
			return &t.vals[h]
		}
		if t.keys[h] == key {
			return &t.vals[h]
		}
		h = (h + 1) & t.mask
	}
}

// sortDictOrder sorts dictionary slots by descending frequency, ties
// broken by first appearance — the canonical TAC dictionary order every
// block encoder (v2 varint and v3 bitpacked alike) must produce.
func sortDictOrder(order []int32, counts []int32) {
	slices.SortFunc(order, func(a, b int32) int {
		if counts[a] != counts[b] {
			return int(counts[b] - counts[a]) // higher count first
		}
		return int(a - b) // earlier first appearance first
	})
}

// encScratch is a writer's reusable encode state. It is pooled across
// writers (partitions are written through many short-lived WriterV2
// instances), so a fresh writer starts with buffers already sized by the
// previous one's blocks and the steady-state encode path allocates
// nothing per block.
type encScratch struct {
	// cols buffers ingested rows (column-native) until a block fills.
	cols    ColumnBatch
	payload []byte
	frame   []byte
	dictTab dictTable
	tacDict []uint32
	counts  []int32
	order   []int32
	flateW  *flate.Writer
	flateB  bytes.Buffer
	// v3 encode scratch: bitpack staging values, TLZ output buffer and
	// the TLZ compressor's hash table.
	packBuf []uint64
	tlzB    []byte
	tlzTab  []int32
	// Legacy record-path scratch (WriterV2Options.RecordEncode).
	recTacDict []uint32
	recTacIdx  map[devices.TAC]int
}

var encScratchPool = sync.Pool{New: func() any { return new(encScratch) }}

// appendBlockColumns encodes rows [lo, hi) of cb column-at-a-time onto
// dst: one sequential pass per column over a contiguous slice, the TAC
// dictionary built through the open-addressed table, and durations
// canonically quantized during the duration pass. The bytes produced are
// identical to appendBlockPayload over the same records — that is the
// write-path compatibility contract the byte-identity tests enforce.
func appendBlockColumns(dst []byte, cb *ColumnBatch, lo, hi int, minTS int64, e *encScratch) ([]byte, blockSections) {
	var secs blockSections
	// Timestamps: zigzag deltas.
	prev := minTS
	mark := len(dst)
	for _, ts := range cb.Timestamps[lo:hi] {
		dst = appendZigzagFast(dst, ts-prev)
		prev = ts
	}
	secs.tsLen = uint32(len(dst) - mark)
	// UEs.
	mark = len(dst)
	for _, ue := range cb.UEs[lo:hi] {
		dst = appendUvarintFast(dst, uint64(ue))
	}
	secs.ueLen = uint32(len(dst) - mark)
	// TAC dictionary, frequency-ordered with ties broken by first
	// appearance — the same total order appendBlockPayload produces, so
	// the sort algorithm is free to differ.
	tacs := cb.TACs[lo:hi]
	e.dictTab.reset()
	dict := e.tacDict[:0]
	counts := e.counts[:0]
	for _, t := range tacs {
		v := e.dictTab.slot(uint32(t))
		if *v < 0 {
			*v = int32(len(dict))
			dict = append(dict, uint32(t))
			counts = append(counts, 0)
		}
		counts[*v]++
	}
	order := e.order[:0]
	for i := range dict {
		order = append(order, int32(i))
	}
	sortDictOrder(order, counts)
	secs.dictEntries = uint32(len(dict))
	for _, old := range order {
		dst = binary.LittleEndian.AppendUint32(dst, dict[old])
	}
	for r, old := range order {
		counts[old] = int32(r) // reuse: counts become ranks
	}
	mark = len(dst)
	for _, t := range tacs {
		dst = appendUvarintFast(dst, uint64(counts[*e.dictTab.slot(uint32(t))]))
	}
	secs.idxLen = uint32(len(dst) - mark)
	e.tacDict, e.counts, e.order = dict, counts, order
	// Sectors.
	mark = len(dst)
	for _, s := range cb.Sources[lo:hi] {
		dst = appendUvarintFast(dst, uint64(s))
	}
	secs.srcLen = uint32(len(dst) - mark)
	mark = len(dst)
	for _, s := range cb.Targets[lo:hi] {
		dst = appendUvarintFast(dst, uint64(s))
	}
	secs.dstLen = uint32(len(dst) - mark)
	// Causes.
	mark = len(dst)
	for _, c := range cb.Causes[lo:hi] {
		dst = appendUvarintFast(dst, uint64(c))
	}
	secs.causeLen = uint32(len(dst) - mark)
	// Fixed-width tail. RAT pairs are stored packed in the batch exactly
	// as they are on the wire, so that column is one contiguous copy.
	dst = append(dst, cb.RATs[lo:hi]...)
	for _, res := range cb.Results[lo:hi] {
		dst = append(dst, byte(res))
	}
	for _, d := range cb.Durations[lo:hi] {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(quantizeDuration(d)))
	}
	return dst, secs
}

// WriterV2Options tunes a v2 block writer. The zero value means
// DefaultBlockRecords per block, uncompressed, column-native encoding.
type WriterV2Options struct {
	// BlockRecords is the number of records per block (0 = default).
	BlockRecords int
	// Compress flate-compresses block payloads (FlagFlate).
	Compress bool
	// RecordEncode forces the pre-columnar record-at-a-time block
	// encoder (buffered []Record, strided struct access). The stream
	// bytes are identical either way; the flag exists as the baseline
	// arm of the paired write benchmarks and the byte-identity property
	// tests.
	RecordEncode bool
}

// WriterV2 encodes records as a v2 columnar block stream. Rows are
// buffered in SoA (ColumnBatch) form and each block is encoded
// column-at-a-time from contiguous slices; WriteColumns ingests columnar
// batches without ever materializing records, and full blocks encode
// straight from the caller's batch without an intermediate copy.
type WriterV2 struct {
	w        *bufio.Writer
	version  uint16 // VersionV2, or VersionV3 when backing a WriterV3
	perBlock int
	compress bool
	tlz      bool // TLZ-compress payloads (v3 only)
	recEnc   bool
	count    int64
	err      error
	enc      *encScratch
	recs     []Record // legacy record-path block buffer
}

// initBlockWriter writes a block-stream header for version and
// initializes v2's buffering around it. Both the v2 and v3 writers are
// built on this machinery; only the per-block payload encoder and the
// compression flag differ.
func initBlockWriter(v2 *WriterV2, w io.Writer, version uint16, blockRecords int, compress, tlz bool) error {
	perBlock := blockRecords
	if perBlock <= 0 {
		perBlock = DefaultBlockRecords
	}
	if perBlock > maxBlockRecords {
		return fmt.Errorf("trace: block size %d exceeds %d", perBlock, maxBlockRecords)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var flags uint16
	if compress {
		flags |= FlagFlate
	}
	if tlz {
		flags |= FlagTLZ
	}
	var hdr [HeaderSize]byte
	copy(hdr[0:4], Magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	enc := encScratchPool.Get().(*encScratch)
	enc.cols.Reset()
	enc.dictTab.init(perBlock)
	*v2 = WriterV2{
		w:        bw,
		version:  version,
		perBlock: perBlock,
		compress: compress,
		tlz:      tlz,
		enc:      enc,
	}
	if compress && enc.flateW == nil {
		fw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			encScratchPool.Put(enc)
			return err
		}
		enc.flateW = fw
	}
	if tlz && enc.tlzTab == nil {
		enc.tlzTab = make([]int32, tlzTableSize)
	}
	return nil
}

// NewWriterV2 writes a v2 stream header and returns the block writer.
func NewWriterV2(w io.Writer, opts WriterV2Options) (*WriterV2, error) {
	v2 := &WriterV2{}
	if err := initBlockWriter(v2, w, VersionV2, opts.BlockRecords, opts.Compress, false); err != nil {
		return nil, err
	}
	v2.recEnc = opts.RecordEncode
	if opts.RecordEncode {
		v2.recs = make([]Record, 0, v2.perBlock)
		if v2.enc.recTacIdx == nil {
			v2.enc.recTacIdx = make(map[devices.TAC]int)
		}
	}
	return v2, nil
}

// Release returns the writer's pooled encode scratch (block buffer,
// payload/frame buffers, dictionary table, flate writer) for reuse by
// the next writer. Call it after Flush; the writer must not be used
// afterwards. Skipping Release only costs a pool miss.
func (w *WriterV2) Release() {
	if w.enc != nil {
		encScratchPool.Put(w.enc)
		w.enc = nil
	}
}

// Write buffers one record, emitting a block when it fills.
func (w *WriterV2) Write(rec *Record) error {
	if w.err != nil {
		return w.err
	}
	if w.recEnc {
		r := *rec
		r.DurationMs = quantizeDuration(r.DurationMs)
		w.recs = append(w.recs, r)
		w.count++
		if len(w.recs) >= w.perBlock {
			return w.flushRecordBlock()
		}
		return nil
	}
	w.enc.cols.AppendRecord(rec)
	w.count++
	if w.enc.cols.Len() >= w.perBlock {
		return w.flushBlock()
	}
	return nil
}

// WriteBatch buffers a batch of records, emitting blocks as they fill.
// The batch lands in block-sized column appends (one transpose pass per
// field per chunk) instead of one buffered copy per record.
func (w *WriterV2) WriteBatch(recs []Record) error {
	if w.err != nil {
		return w.err
	}
	if w.recEnc {
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for len(recs) > 0 {
		room := w.perBlock - w.enc.cols.Len()
		n := min(room, len(recs))
		w.enc.cols.appendRecords(recs[:n])
		recs = recs[n:]
		w.count += int64(n)
		if w.enc.cols.Len() >= w.perBlock {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteColumns buffers a columnar batch, emitting blocks as they fill.
// Runs of whole blocks encode directly from cb's slices — no
// intermediate copy at all; only a partial leading/trailing chunk lands
// in the writer's buffer (nine contiguous column copies).
func (w *WriterV2) WriteColumns(cb *ColumnBatch) error {
	if w.err != nil {
		return w.err
	}
	if w.recEnc {
		var rec Record
		for i := 0; i < cb.Len(); i++ {
			cb.Record(i, &rec)
			if err := w.Write(&rec); err != nil {
				return err
			}
		}
		return nil
	}
	n := cb.Len()
	for off := 0; off < n; {
		if w.enc.cols.Len() == 0 && n-off >= w.perBlock {
			if err := w.emitColumns(cb, off, off+w.perBlock); err != nil {
				return err
			}
			w.count += int64(w.perBlock)
			off += w.perBlock
			continue
		}
		take := min(w.perBlock-w.enc.cols.Len(), n-off)
		w.enc.cols.appendRange(cb, off, off+take)
		w.count += int64(take)
		off += take
		if w.enc.cols.Len() >= w.perBlock {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *WriterV2) Count() int64 { return w.count }

// flushBlock encodes and emits the buffered columns as one block.
func (w *WriterV2) flushBlock() error {
	if w.enc.cols.Len() == 0 {
		return nil
	}
	if err := w.emitColumns(&w.enc.cols, 0, w.enc.cols.Len()); err != nil {
		return err
	}
	w.enc.cols.Reset()
	return nil
}

// emitColumns encodes rows [lo, hi) of cb as one block and writes it.
func (w *WriterV2) emitColumns(cb *ColumnBatch, lo, hi int) error {
	ts := cb.Timestamps[lo:hi]
	minTS, maxTS := ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < minTS {
			minTS = t
		} else if t > maxTS {
			maxTS = t
		}
	}
	var secs blockSections
	if w.version == VersionV3 {
		w.enc.payload, secs = appendBlockColumnsV3(w.enc.payload[:0], cb, lo, hi, minTS, maxTS, w.enc)
	} else {
		w.enc.payload, secs = appendBlockColumns(w.enc.payload[:0], cb, lo, hi, minTS, w.enc)
	}
	return w.emitBlock(hi-lo, minTS, maxTS, secs)
}

// flushRecordBlock encodes and emits the buffered records as one block
// (legacy record path).
func (w *WriterV2) flushRecordBlock() error {
	if len(w.recs) == 0 {
		return nil
	}
	minTS, maxTS := w.recs[0].Timestamp, w.recs[0].Timestamp
	for i := 1; i < len(w.recs); i++ {
		if ts := w.recs[i].Timestamp; ts < minTS {
			minTS = ts
		} else if ts > maxTS {
			maxTS = ts
		}
	}
	var secs blockSections
	w.enc.payload, secs = appendBlockPayload(w.enc.payload[:0], w.recs, minTS, &w.enc.recTacDict, w.enc.recTacIdx)
	if err := w.emitBlock(len(w.recs), minTS, maxTS, secs); err != nil {
		return err
	}
	w.recs = w.recs[:0]
	return nil
}

// emitBlock compresses (when configured) and writes the encoded payload
// in w.enc.payload as one framed block.
func (w *WriterV2) emitBlock(count int, minTS, maxTS int64, secs blockSections) error {
	e := w.enc
	stored := e.payload
	if w.tlz {
		e.tlzB = appendTLZ(e.tlzB[:0], e.payload, e.tlzTab)
		stored = e.tlzB
	} else if w.compress {
		e.flateB.Reset()
		e.flateW.Reset(&e.flateB)
		if _, err := e.flateW.Write(e.payload); err != nil {
			w.err = fmt.Errorf("trace: compressing block: %w", err)
			return w.err
		}
		if err := e.flateW.Close(); err != nil {
			w.err = fmt.Errorf("trace: compressing block: %w", err)
			return w.err
		}
		stored = e.flateB.Bytes()
	}
	e.frame = e.frame[:0]
	e.frame = binary.LittleEndian.AppendUint32(e.frame, uint32(count))
	e.frame = binary.LittleEndian.AppendUint64(e.frame, uint64(minTS))
	e.frame = binary.LittleEndian.AppendUint64(e.frame, uint64(maxTS))
	e.frame = binary.LittleEndian.AppendUint32(e.frame, uint32(len(e.payload)))
	e.frame = binary.LittleEndian.AppendUint32(e.frame, uint32(len(stored)))
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.tsLen)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.ueLen)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.dictEntries)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.idxLen)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.srcLen)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.dstLen)
	e.frame = binary.LittleEndian.AppendUint32(e.frame, secs.causeLen)
	if _, err := w.w.Write(e.frame); err != nil {
		w.err = fmt.Errorf("trace: writing block: %w", err)
		return w.err
	}
	if _, err := w.w.Write(stored); err != nil {
		w.err = fmt.Errorf("trace: writing block: %w", err)
		return w.err
	}
	return nil
}

// Flush emits any partial block and flushes the underlying writer.
func (w *WriterV2) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.recEnc {
		if err := w.flushRecordBlock(); err != nil {
			return err
		}
	} else if err := w.flushBlock(); err != nil {
		return err
	}
	return w.w.Flush()
}

// BlockStats counts stream activity during a read.
type BlockStats struct {
	// BlocksRead is the number of block payloads decoded.
	BlocksRead int64
	// BlocksSkipped is the number of blocks pruned by the time range
	// without decoding their payload.
	BlocksSkipped int64
	// BlocksFiltered is the number of blocks pruned by a block filter
	// (SetBlockFilter, fed from a partition index) without decoding
	// their payload. Range-pruned blocks count as skipped, not filtered.
	BlocksFiltered int64
	// BytesRead is the number of stored stream bytes consumed by decoded
	// data: the stream header plus, on v2, each decoded block's
	// descriptor and stored (possibly compressed) payload, and on v1
	// each decoded record. Range-pruned blocks do not count, so a full
	// unwindowed read reports exactly the stream's on-disk size.
	BytesRead int64
}
