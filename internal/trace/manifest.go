package trace

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	iofs "io/fs"
	"math"
	"sort"

	"telcolens/internal/faultfs"
)

// The store manifest makes a partition directory self-describing at the
// storage layer: one MANIFEST file listing every finished partition with
// its record count, time extents and a content fingerprint, plus a
// monotonically increasing generation number bumped on every rewrite.
// Incremental consumers (Analyzer.Refresh, cmd/telcoserve) diff the
// manifest against their last-seen generation instead of listing and
// opening every partition file, and metadata queries (Count, Days)
// answer straight from it.

// ManifestName is the per-store partition index file a FileStore
// maintains next to its partition files. (The campaign-level
// manifest.json written by the simulate package describes the world
// config; this one describes the trace bytes.)
const ManifestName = "MANIFEST"

// PartitionInfo is one manifest entry: a finished partition plus the
// metadata recorded when its writer closed.
type PartitionInfo struct {
	Day   int `json:"day"`
	Shard int `json:"shard"`
	// Records is the number of records in the partition.
	Records int64 `json:"records"`
	// MinTS/MaxTS are the partition's timestamp extents (Unix millis,
	// inclusive); both zero when the partition is empty.
	MinTS int64 `json:"min_ts"`
	MaxTS int64 `json:"max_ts"`
	// Bytes is the stored (on-disk) partition size.
	Bytes int64 `json:"bytes"`
	// Fingerprint hashes the partition's stored content (FNV-1a over the
	// stream bytes), so consumers can detect a rewritten partition
	// without reading it.
	Fingerprint uint64 `json:"fingerprint"`
	// Gen is the manifest generation at which this entry was added or
	// last changed; Manifest.Since filters on it.
	Gen uint64 `json:"gen"`
	// IndexVersion is the format version of the partition's secondary-
	// index sidecar (see PartitionIndex), or 0 when none was written —
	// consumers of unindexed partitions fall back to scanning. Manifests
	// written before indexing existed simply omit the field, so old
	// campaigns keep loading unchanged.
	IndexVersion uint16 `json:"index,omitempty"`
}

// Partition returns the entry's partition key.
func (pi *PartitionInfo) Partition() Partition { return Partition{Day: pi.Day, Shard: pi.Shard} }

// Manifest is a store's partition index: every finished partition in
// canonical (day, shard) order, plus the generation counter.
type Manifest struct {
	// Gen increments every time the manifest is rewritten.
	Gen uint64 `json:"gen"`
	// Partitions lists finished partitions in canonical order.
	Partitions []PartitionInfo `json:"partitions"`
}

// TotalRecords sums the per-partition record counts.
func (m *Manifest) TotalRecords() int64 {
	var n int64
	for i := range m.Partitions {
		n += m.Partitions[i].Records
	}
	return n
}

// Since returns the entries added or changed after generation gen, in
// canonical order. Since(0) returns every entry.
func (m *Manifest) Since(gen uint64) []PartitionInfo {
	var out []PartitionInfo
	for _, pi := range m.Partitions {
		if pi.Gen > gen {
			out = append(out, pi)
		}
	}
	return out
}

// Lookup returns the entry for p, or false.
func (m *Manifest) Lookup(p Partition) (PartitionInfo, bool) {
	for i := range m.Partitions {
		if m.Partitions[i].Partition() == p {
			return m.Partitions[i], true
		}
	}
	return PartitionInfo{}, false
}

// ManifestReader is implemented by stores that maintain a partition
// manifest. Manifest returns (nil, nil) when the store has no usable
// manifest (legacy directory, or one that disagrees with the partition
// files actually present) — callers must fall back to listing.
type ManifestReader interface {
	Manifest() (*Manifest, error)
}

// Since diffs a store's manifest against a previously observed
// generation: it returns the partitions added or changed since gen and
// the current generation. Stores without a usable manifest report an
// error; callers that can rescan should fall back to Partitions.
func Since(s Store, gen uint64) ([]PartitionInfo, uint64, error) {
	mr, ok := s.(ManifestReader)
	if !ok {
		return nil, 0, fmt.Errorf("trace: store %T has no manifest", s)
	}
	m, err := mr.Manifest()
	if err != nil {
		return nil, 0, err
	}
	if m == nil {
		return nil, 0, fmt.Errorf("trace: store has no usable manifest")
	}
	return m.Since(gen), m.Gen, nil
}

// upsert folds one freshly closed partition into the manifest: the entry
// replaces any previous one for the same partition, canonical order is
// restored, and the generation advances.
func (m *Manifest) upsert(info PartitionInfo) {
	m.Gen++
	info.Gen = m.Gen
	for i := range m.Partitions {
		if m.Partitions[i].Partition() == info.Partition() {
			m.Partitions[i] = info
			return
		}
	}
	m.Partitions = append(m.Partitions, info)
	sort.Slice(m.Partitions, func(i, j int) bool {
		return m.Partitions[i].Partition().Less(m.Partitions[j].Partition())
	})
}

// loadManifest reads a MANIFEST file; a missing file is (nil, nil).
func loadManifest(fsys faultfs.FS, path string) (*Manifest, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("trace: decoding manifest: %w", err)
	}
	return &m, nil
}

// writeManifest persists the manifest with the full atomic-publish
// discipline (stage + fsync + rename + directory fsync, see
// faultfs.WriteFileAtomic): a concurrent reader sees either the
// previous or the new index, never a torn write, and a crash after a
// successful rewrite cannot roll it back. The directory fsync also
// makes any partition files created since the last rewrite durable —
// the MANIFEST rewrite is the store's commit point.
func writeManifest(fsys faultfs.FS, path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("trace: encoding manifest: %w", err)
	}
	if err := faultfs.WriteFileAtomic(fsys, path, data, 0o644); err != nil {
		return fmt.Errorf("trace: manifest: %w", err)
	}
	return nil
}

// partitionDigest accumulates the metadata a manifest entry needs while a
// partition is being written: record count is supplied by the codec, the
// timestamp extents by the writer wrapper, and the content fingerprint
// plus byte count by hashing the stream as it lands.
type partitionDigest struct {
	records int64
	minTS   int64
	maxTS   int64
	bytes   int64
	hash    uint64
	seenTS  bool
}

func newPartitionDigest() *partitionDigest {
	h := fnv.New64a()
	return &partitionDigest{hash: h.Sum64()}
}

// observeTS folds one record timestamp into the extents.
func (d *partitionDigest) observeTS(ts int64) {
	if !d.seenTS {
		d.minTS, d.maxTS, d.seenTS = ts, ts, true
		return
	}
	if ts < d.minTS {
		d.minTS = ts
	}
	if ts > d.maxTS {
		d.maxTS = ts
	}
}

// observeBytes folds stored stream bytes into the fingerprint (FNV-1a).
func (d *partitionDigest) observeBytes(p []byte) {
	h := d.hash
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	d.hash = h
	d.bytes += int64(len(p))
}

// observeRecord folds one record into the extents and fingerprint for
// stores without a byte stream (MemStore): the fields are serialized
// into a fixed little-endian image and hashed like stream bytes.
func (d *partitionDigest) observeRecord(rec *Record) {
	d.observeTS(rec.Timestamp)
	var buf [33]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(rec.Timestamp))
	binary.LittleEndian.PutUint32(buf[8:], uint32(rec.UE))
	binary.LittleEndian.PutUint32(buf[12:], uint32(rec.TAC))
	binary.LittleEndian.PutUint32(buf[16:], uint32(rec.Source))
	binary.LittleEndian.PutUint32(buf[20:], uint32(rec.Target))
	binary.LittleEndian.PutUint16(buf[24:], uint16(rec.Cause))
	buf[26] = byte(rec.SourceRAT)<<4 | byte(rec.TargetRAT)&0x0f
	buf[27] = byte(rec.Result)
	binary.LittleEndian.PutUint32(buf[28:], math.Float32bits(rec.DurationMs))
	d.observeBytes(buf[:])
}

func (d *partitionDigest) info(day, shard int, records int64) PartitionInfo {
	return PartitionInfo{
		Day:         day,
		Shard:       shard,
		Records:     records,
		MinTS:       d.minTS,
		MaxTS:       d.maxTS,
		Bytes:       d.bytes,
		Fingerprint: d.hash,
	}
}
