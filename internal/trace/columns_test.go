package trace

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// collectColumns drains a ColumnIterator into a flat record slice via
// per-row transposition, exercising reuse of one batch across calls.
func collectColumns(t testing.TB, ci ColumnIterator) []Record {
	t.Helper()
	var out []Record
	var cb ColumnBatch
	for {
		n, err := ci.NextColumns(&cb)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		if n != cb.Len() {
			t.Fatalf("NextColumns returned %d but batch holds %d", n, cb.Len())
		}
		for i := 0; i < n; i++ {
			var rec Record
			cb.Record(i, &rec)
			out = append(out, rec)
		}
	}
}

func TestColumnBatchFromRecordsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	recs := make([]Record, 300)
	for i := range recs {
		recs[i] = randRecord(r, StudyStart.UnixMilli())
	}
	var cb ColumnBatch
	cb.FromRecords(recs)
	if cb.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", cb.Len(), len(recs))
	}
	for i := range recs {
		var got Record
		cb.Record(i, &got)
		if got != recs[i] {
			t.Fatalf("row %d: got %+v, want %+v", i, got, recs[i])
		}
	}
	// Shrinking reuse must not leak stale rows.
	cb.FromRecords(recs[:10])
	if cb.Len() != 10 || len(cb.Durations) != 10 {
		t.Fatalf("after shrink: Len = %d, durations = %d", cb.Len(), len(cb.Durations))
	}
}

func TestColumnBatchFilterRange(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	base := StudyStart.UnixMilli()
	recs := make([]Record, 500)
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	lo, hi := base+3*3600*1000, base+9*3600*1000
	var cb ColumnBatch
	cb.FromRecords(recs)
	n := cb.FilterRange(lo, hi)

	want := append([]Record(nil), recs...)
	wantN := filterRange(want, lo, hi)
	if n != wantN {
		t.Fatalf("FilterRange kept %d rows, record filter kept %d", n, wantN)
	}
	for i := 0; i < n; i++ {
		var got Record
		cb.Record(i, &got)
		if got != want[i] {
			t.Fatalf("row %d after filter: got %+v, want %+v", i, got, want[i])
		}
	}
}

// TestReaderNextColumnsMatchesNextBatch: for every codec/compression/
// range/projection combination, the SoA stream must contain exactly the
// records the batch stream produces.
func TestReaderNextColumnsMatchesNextBatch(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	base := StudyStart.UnixMilli()
	recs := make([]Record, 3000)
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	v2 := encodeV2(t, recs, WriterV2Options{BlockRecords: 256})
	v2flate := encodeV2(t, recs, WriterV2Options{BlockRecords: 256, Compress: true})
	var v1buf bytes.Buffer
	w1, err := NewWriter(&v1buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w1.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}

	streams := map[string][]byte{"v1": v1buf.Bytes(), "v2": v2, "v2flate": v2flate}
	ranges := []*TimeRange{nil, {MinTS: base + 2*3600*1000, MaxTS: base + 7*3600*1000}}
	projs := []ColumnSet{0, ColTimestamp, ColUE | ColOutcome, ColTAC | ColSectors | ColCause}
	for name, data := range streams {
		for ri, tr := range ranges {
			for _, proj := range projs {
				mk := func() *Reader {
					rd, err := NewReader(bytes.NewReader(data))
					if err != nil {
						t.Fatal(err)
					}
					if tr != nil {
						rd.SetTimeRange(tr.MinTS, tr.MaxTS)
					}
					rd.SetProjection(proj)
					return rd
				}
				var want []Record
				var batch []Record
				br := mk()
				for {
					n, err := br.NextBatch(&batch)
					if err != nil {
						break
					}
					want = append(want, batch[:n]...)
				}
				got := collectColumns(t, columnEOFAdapter{mk()})
				if len(got) != len(want) {
					t.Fatalf("%s range=%d proj=%b: columns=%d batch=%d records", name, ri, proj, len(got), len(want))
				}
				// Under a projection only the projected fields are
				// specified; compare those.
				for i := range want {
					if !recordsEqualUnder(proj, &got[i], &want[i]) {
						t.Fatalf("%s range=%d proj=%b row %d:\n col   %+v\n batch %+v",
							name, ri, proj, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// columnEOFAdapter maps the Reader's io.EOF convention onto the
// ColumnIterator end-of-stream convention (0, nil), like fileIterator.
type columnEOFAdapter struct{ r *Reader }

func (a columnEOFAdapter) NextColumns(cb *ColumnBatch) (int, error) {
	n, err := a.r.NextColumns(cb)
	if err != nil && n == 0 {
		return 0, nil
	}
	return n, nil
}

// recordsEqualUnder compares only the fields inside proj (timestamps
// always). A zero proj means every column.
func recordsEqualUnder(proj ColumnSet, a, b *Record) bool {
	if proj == 0 {
		proj = AllColumns
	}
	if a.Timestamp != b.Timestamp {
		return false
	}
	if proj&ColUE != 0 && a.UE != b.UE {
		return false
	}
	if proj&ColTAC != 0 && a.TAC != b.TAC {
		return false
	}
	if proj&ColSectors != 0 && (a.Source != b.Source || a.Target != b.Target) {
		return false
	}
	if proj&ColCause != 0 && a.Cause != b.Cause {
		return false
	}
	if proj&ColOutcome != 0 &&
		(a.SourceRAT != b.SourceRAT || a.TargetRAT != b.TargetRAT ||
			a.Result != b.Result || a.DurationMs != b.DurationMs) {
		return false
	}
	return true
}

func TestMemIteratorNextColumns(t *testing.T) {
	s := buildShardedStore(t, 2, 40, 3)
	parts, err := s.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		recIt, err := s.OpenPartition(p.Day, p.Shard)
		if err != nil {
			t.Fatal(err)
		}
		var want []Record
		var rec Record
		for {
			ok, err := recIt.Next(&rec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			want = append(want, rec)
		}
		recIt.Close()

		colIt, err := s.OpenPartition(p.Day, p.Shard)
		if err != nil {
			t.Fatal(err)
		}
		got := collectColumns(t, colIt.(ColumnIterator))
		colIt.Close()
		if len(got) != len(want) {
			t.Fatalf("day %d shard %d: %d vs %d records", p.Day, p.Shard, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("day %d shard %d row %d mismatch", p.Day, p.Shard, i)
			}
		}
	}
}

// columnSumCollector accumulates order-free integer sums over every
// column, implementing both the record and the column interfaces so the
// scan paths can be pitted against each other.
type columnSumCollector struct {
	mu    sync.Mutex
	total int64
	sum   uint64
}

type columnSumShard struct {
	total int64
	sum   uint64
}

func (s *columnSumShard) observeOne(day int, rec *Record) {
	s.total++
	s.sum += uint64(rec.Timestamp) + uint64(rec.UE)*3 + uint64(rec.TAC)*5 +
		uint64(rec.Source)*7 + uint64(rec.Target)*11 + uint64(rec.Cause)*13 +
		uint64(rec.SourceRAT)*17 + uint64(rec.TargetRAT)*19 +
		uint64(rec.Result)*23 + uint64(day)*29
}

func (s *columnSumShard) Observe(day int, rec *Record) error {
	s.observeOne(day, rec)
	return nil
}

func (s *columnSumShard) ObserveColumns(day int, cb *ColumnBatch) error {
	var rec Record
	for i := 0; i < cb.Len(); i++ {
		cb.Record(i, &rec)
		s.observeOne(day, &rec)
	}
	return nil
}

func (c *columnSumCollector) NewShardState(day, shard int) ShardState { return &columnSumShard{} }

func (c *columnSumCollector) MergeShard(st ShardState) error {
	s := st.(*columnSumShard)
	c.mu.Lock()
	c.total += s.total
	c.sum += s.sum
	c.mu.Unlock()
	return nil
}

// stripColumnsStore hides ColumnIterator (and BatchIterator) from the
// scan engine, forcing the record-at-a-time path.
type stripColumnsStore struct{ Store }

type stripColumnsIterator struct{ inner RecordIterator }

func (s stripColumnsStore) OpenPartition(day, shard int) (RecordIterator, error) {
	it, err := s.Store.OpenPartition(day, shard)
	if err != nil {
		return nil, err
	}
	return stripColumnsIterator{it}, nil
}

func (it stripColumnsIterator) Next(rec *Record) (bool, error) { return it.inner.Next(rec) }
func (it stripColumnsIterator) Close() error                   { return it.inner.Close() }

// batchOnlyStore keeps NextBatch but hides NextColumns, forcing the
// engine's batch + column-transposition path.
type batchOnlyStore struct{ Store }

type batchOnlyIterator struct{ inner RecordIterator }

func (s batchOnlyStore) OpenPartition(day, shard int) (RecordIterator, error) {
	it, err := s.Store.OpenPartition(day, shard)
	if err != nil {
		return nil, err
	}
	return batchOnlyIterator{it}, nil
}

func (it batchOnlyIterator) Next(rec *Record) (bool, error) { return it.inner.Next(rec) }
func (it batchOnlyIterator) NextBatch(batch *[]Record) (int, error) {
	return it.inner.(BatchIterator).NextBatch(batch)
}
func (it batchOnlyIterator) Close() error { return it.inner.Close() }

// TestScanColumnPathMatchesRecordPath: the pure-column scan path, the
// mixed transposition path and the stripped-down record path must all
// observe the identical record multiset, and report identical metrics.
func TestScanColumnPathMatchesRecordPath(t *testing.T) {
	s := buildShardedStore(t, 3, 60, 4)
	run := func(store Store) (int64, uint64, int64) {
		var m ScanMetrics
		c := &columnSumCollector{}
		if err := Scan(context.Background(), store, ScanOptions{Parallelism: 4, Metrics: &m}, c); err != nil {
			t.Fatal(err)
		}
		return c.total, c.sum, m.Records.Load()
	}
	// Baseline: the stripped store forces the per-record Observe loop.
	wantTotal, wantSum, wantRecs := run(stripColumnsStore{s})
	if wantTotal == 0 {
		t.Fatal("empty baseline")
	}
	for name, store := range map[string]Store{
		"pure-column":     s,                 // native NextColumns
		"batch-transpose": batchOnlyStore{s}, // NextBatch + engine transposition
	} {
		gotTotal, gotSum, gotRecs := run(store)
		if gotTotal != wantTotal || gotSum != wantSum || gotRecs != wantRecs {
			t.Fatalf("%s: (%d, %d, %d), want (%d, %d, %d)",
				name, gotTotal, gotSum, gotRecs, wantTotal, wantSum, wantRecs)
		}
	}
	// Windowed variant: native pruning vs record filtering must agree.
	tr := DayRange(1, 1)
	c1 := &columnSumCollector{}
	if err := ScanRange(context.Background(), s, ScanOptions{}, tr, c1); err != nil {
		t.Fatal(err)
	}
	c2 := &columnSumCollector{}
	if err := ScanRange(context.Background(), stripColumnsStore{s}, ScanOptions{}, tr, c2); err != nil {
		t.Fatal(err)
	}
	if c1.total != c2.total || c1.sum != c2.sum || c1.total == 0 {
		t.Fatalf("windowed: column (%d, %d) vs record (%d, %d)", c1.total, c1.sum, c2.total, c2.sum)
	}
}

// TestReaderBytesRead: a full decode of a stream must report exactly
// its stored size, for every codec and both read shapes.
func TestReaderBytesRead(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	recs := make([]Record, 2500)
	for i := range recs {
		recs[i] = randRecord(r, StudyStart.UnixMilli())
	}
	// Time-ordered, as stored partitions are, so block descriptors carry
	// narrow time bounds the pruning check below can exercise.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Timestamp < recs[j].Timestamp })
	var v1buf bytes.Buffer
	w1, err := NewWriter(&v1buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w1.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	streams := map[string][]byte{
		"v1":      v1buf.Bytes(),
		"v2":      encodeV2(t, recs, WriterV2Options{BlockRecords: 512}),
		"v2flate": encodeV2(t, recs, WriterV2Options{BlockRecords: 512, Compress: true}),
	}
	for name, data := range streams {
		for _, shape := range []string{"batch", "columns"} {
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if shape == "batch" {
				var batch []Record
				for {
					if _, err := rd.NextBatch(&batch); err != nil {
						break
					}
				}
			} else {
				var cb ColumnBatch
				for {
					if _, err := rd.NextColumns(&cb); err != nil {
						break
					}
				}
			}
			if got := rd.Stats().BytesRead; got != int64(len(data)) {
				t.Errorf("%s/%s: BytesRead = %d, want stream size %d", name, shape, got, len(data))
			}
		}
	}
	// A range-pruned read must not count skipped block bytes.
	rd, err := NewReader(bytes.NewReader(streams["v2"]))
	if err != nil {
		t.Fatal(err)
	}
	base := StudyStart.UnixMilli()
	rd.SetTimeRange(base, base+3600*1000)
	var cb ColumnBatch
	for {
		if _, err := rd.NextColumns(&cb); err != nil {
			break
		}
	}
	st := rd.Stats()
	if st.BlocksSkipped == 0 {
		t.Fatal("narrow window pruned no blocks")
	}
	if st.BytesRead >= int64(len(streams["v2"])) {
		t.Fatalf("pruned read counted %d bytes of a %d-byte stream", st.BytesRead, len(streams["v2"]))
	}
}
