package trace

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// The composable scan engine: a Collector accumulates one analysis's
// state from the trace. Scan fans a worker pool out over the store's
// partitions, gives every (collector, partition) pair its own ShardState,
// and folds the states back in canonical partition order, so the result
// is bit-for-bit independent of worker scheduling.

// ShardState accumulates one collector's view of a single partition.
// Observe is called once per record, in the partition's storage order,
// from exactly one goroutine.
type ShardState interface {
	Observe(day int, rec *Record) error
}

// BatchShardState is implemented by shard states that can consume a
// whole decoded block per call. ObserveBatch(day, recs) must be
// equivalent to calling Observe(day, &recs[i]) for each record in order;
// the engine uses it on the batched scan path to drop the per-record
// interface call.
type BatchShardState interface {
	ObserveBatch(day int, recs []Record) error
}

// ColumnShardState is implemented by shard states that can consume a
// decoded block in columnar (SoA) form. ObserveColumns(day, cols) must
// be equivalent to calling Observe(day, &rec_i) for every row of cols
// in order — the batch≡record property the analysis equivalence tests
// enforce. The engine prefers this interface over ObserveBatch/Observe:
// when every collector implements it and the iterator decodes columns
// natively (v2 block files), the scan never materializes []Record at
// all; otherwise the engine transposes the record batch once per block.
// The batch is engine-owned and reused — states must not retain its
// slices across calls.
type ColumnShardState interface {
	ObserveColumns(day int, cols *ColumnBatch) error
}

// Collector builds per-partition states and folds them. NewShardState may
// be called from any goroutine; MergeShard is called exactly once per
// partition, sequentially, in canonical (day, shard) order.
type Collector interface {
	NewShardState(day, shard int) ShardState
	MergeShard(s ShardState) error
}

// TimeRange restricts a scan to records with
// MinTS <= Timestamp <= MaxTS (Unix milliseconds, inclusive bounds).
type TimeRange struct {
	MinTS int64
	MaxTS int64
}

// Contains reports whether ts falls inside the range.
func (t TimeRange) Contains(ts int64) bool { return ts >= t.MinTS && ts <= t.MaxTS }

// DayRange returns the TimeRange covering study days [fromDay, toDay]
// inclusive.
func DayRange(fromDay, toDay int) TimeRange {
	return TimeRange{
		MinTS: DayStart(fromDay).UnixMilli(),
		MaxTS: DayStart(toDay+1).UnixMilli() - 1,
	}
}

// ScanMetrics accumulates observability counters across a scan's
// workers. All fields are updated atomically; read them after Scan
// returns.
type ScanMetrics struct {
	// Partitions is the number of partitions opened.
	Partitions atomic.Int64
	// Records is the number of records observed (post range filtering).
	Records atomic.Int64
	// BlocksRead / BlocksSkipped count v2 codec blocks decoded vs pruned
	// by the time range without decoding (zero for v1/memory stores).
	BlocksRead    atomic.Int64
	BlocksSkipped atomic.Int64
	// BlocksFiltered counts v2 blocks pruned by a block filter fed from
	// a partition index (see BlockFilterSetter).
	BlocksFiltered atomic.Int64
	// BytesRead is the number of stored trace bytes consumed by decoded
	// data (see BlockStats.BytesRead); zero for stores without byte
	// accounting, such as the in-memory store.
	BytesRead atomic.Int64
}

// ScanOptions tunes a Scan.
type ScanOptions struct {
	// Parallelism bounds the number of partitions read concurrently;
	// 0 means GOMAXPROCS.
	Parallelism int
	// Progress, if set, is invoked after each partition is merged with
	// the number of merged partitions and the total.
	Progress func(done, total int)
	// Range, if set, restricts the scan to records inside the window.
	// Iterators that support TimeRangeSetter prune natively (the v2
	// codec skips whole blocks); others are filtered record by record.
	// Either way collectors observe exactly the same record sequence.
	Range *TimeRange
	// Projection, if nonzero, declares the columns the collectors read;
	// v2 block partitions skip decoding everything else. This is an
	// optimization hint — iterators without projection support decode
	// all fields — so collectors must only read projected columns.
	// Timestamps are always decoded.
	Projection ColumnSet
	// Metrics, if set, receives scan counters.
	Metrics *ScanMetrics
	// Partitions, if non-nil, restricts the scan to exactly these
	// partitions instead of everything the store lists. Incremental
	// consumers use it to scan only the delta a manifest diff reported;
	// order is normalized to canonical (day, shard) either way.
	Partitions []Partition
}

// checkEvery is how many records a scan worker processes between context
// cancellation checks.
const checkEvery = 8192

// Pooled scan buffers, shared across partitions and scans: the
// steady-state scan loop reuses batch memory, so after warm-up it
// allocates nothing per block.
var (
	recordBatchPool = sync.Pool{New: func() any {
		s := make([]Record, 0, DefaultBlockRecords)
		return &s
	}}
	columnBatchPool = sync.Pool{New: func() any { return new(ColumnBatch) }}
)

// Scan streams every partition of the store through all collectors. Each
// partition is read once; records are observed in storage order within a
// partition, and per-partition states are merged in canonical order, so
// the outcome is deterministic for any parallelism level.
func Scan(ctx context.Context, s Store, opts ScanOptions, collectors ...Collector) error {
	if len(collectors) == 0 {
		return fmt.Errorf("trace: scan without collectors")
	}
	parts := opts.Partitions
	if parts == nil {
		var err error
		parts, err = s.Partitions()
		if err != nil {
			return err
		}
	} else {
		parts = append([]Partition(nil), parts...)
	}
	if len(parts) == 0 {
		return nil
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Less(parts[j]) })

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}

	// Workers pull partition indices in order; each completed partition's
	// states land in pending[i]. A single merge goroutine folds completed
	// partitions strictly in index order and releases their memory, so at
	// most O(workers) partition states are live at once in the common
	// case of roughly in-order completion.
	type partStates struct {
		states []ShardState
	}
	var (
		idxCh   = make(chan int)
		doneCh  = make(chan int, len(parts))
		pending = make([]*partStates, len(parts))
		pendMu  sync.Mutex
		wg      sync.WaitGroup
		errMu   sync.Mutex
		scanErr error
	)
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errMu.Lock()
		if scanErr == nil {
			scanErr = err
			cancel()
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return scanErr
	}

	scanPartition := func(i int) error {
		p := parts[i]
		states := make([]ShardState, len(collectors))
		for c, col := range collectors {
			states[c] = col.NewShardState(p.Day, p.Shard)
		}
		it, err := s.OpenPartition(p.Day, p.Shard)
		if err != nil {
			return err
		}
		defer it.Close()
		if opts.Metrics != nil {
			opts.Metrics.Partitions.Add(1)
		}
		// Push the range down to the iterator when it can prune (the v2
		// codec skips whole blocks); otherwise filter record by record so
		// collectors observe an identical sequence either way.
		filter := false
		if opts.Range != nil {
			if rs, ok := it.(TimeRangeSetter); ok {
				rs.SetTimeRange(opts.Range.MinTS, opts.Range.MaxTS)
			} else {
				filter = true
			}
		}
		if opts.Projection != 0 && opts.Projection&AllColumns != AllColumns {
			if ps, ok := it.(ProjectionSetter); ok {
				ps.SetProjection(opts.Projection)
			}
		}
		// Path selection, most vectorized first: column states fed from a
		// column-native iterator never materialize records; otherwise the
		// record batch is decoded once and column states get a transposed
		// view, batch states the slice, and the rest a per-record loop.
		colStates := make([]ColumnShardState, len(states))
		allColumns := true
		for c, st := range states {
			if cs, ok := st.(ColumnShardState); ok {
				colStates[c] = cs
			} else {
				allColumns = false
			}
		}
		ci, haveCI := it.(ColumnIterator)
		bi, haveBI := it.(BatchIterator)
		var nRecs int64
		if allColumns && haveCI {
			// Pure columnar path: one SoA batch per decoded block, handed
			// to every collector.
			cb := columnBatchPool.Get().(*ColumnBatch)
			defer columnBatchPool.Put(cb)
			for {
				if err := scanCtx.Err(); err != nil {
					return err
				}
				n, err := ci.NextColumns(cb)
				if err != nil {
					return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
				}
				if n == 0 {
					break
				}
				if filter {
					if n = cb.FilterRange(opts.Range.MinTS, opts.Range.MaxTS); n == 0 {
						continue
					}
				}
				nRecs += int64(n)
				for _, cs := range colStates {
					if err := cs.ObserveColumns(p.Day, cb); err != nil {
						return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
					}
				}
			}
		} else if haveBI {
			// Batched path: one NextBatch per decoded block instead of one
			// interface call per record; column-capable states get a SoA
			// transposition of the block, batch-capable ones the slice.
			batchStates := make([]BatchShardState, len(states))
			anyCols := false
			for c, st := range states {
				if colStates[c] != nil {
					anyCols = true
					continue
				}
				if bs, ok := st.(BatchShardState); ok {
					batchStates[c] = bs
				}
			}
			bp := recordBatchPool.Get().(*[]Record)
			defer recordBatchPool.Put(bp)
			var cb *ColumnBatch
			if anyCols {
				cb = columnBatchPool.Get().(*ColumnBatch)
				defer columnBatchPool.Put(cb)
			}
			for {
				if err := scanCtx.Err(); err != nil {
					return err
				}
				n, err := bi.NextBatch(bp)
				if err != nil {
					return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
				}
				if n == 0 {
					break
				}
				if filter {
					// Non-native range enforcement: compact the batch to the
					// window first, so batch-capable states stay usable and
					// semantics match the native-pruning path exactly.
					n = filterRange((*bp)[:n], opts.Range.MinTS, opts.Range.MaxTS)
					if n == 0 {
						continue
					}
				}
				nRecs += int64(n)
				recs := (*bp)[:n]
				if anyCols {
					cb.FromRecords(recs)
				}
				for c, st := range states {
					if cs := colStates[c]; cs != nil {
						if err := cs.ObserveColumns(p.Day, cb); err != nil {
							return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
						}
						continue
					}
					if bs := batchStates[c]; bs != nil {
						if err := bs.ObserveBatch(p.Day, recs); err != nil {
							return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
						}
						continue
					}
					for j := range recs {
						if err := st.Observe(p.Day, &recs[j]); err != nil {
							return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
						}
					}
				}
			}
		} else {
			var rec Record
			for n := 0; ; n++ {
				if n%checkEvery == 0 {
					if err := scanCtx.Err(); err != nil {
						return err
					}
				}
				ok, err := it.Next(&rec)
				if err != nil {
					return classifyPartitionErr(p.Day, p.Shard, err)
				}
				if !ok {
					break
				}
				if filter && !opts.Range.Contains(rec.Timestamp) {
					continue
				}
				nRecs++
				for _, st := range states {
					if err := st.Observe(p.Day, &rec); err != nil {
						return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
					}
				}
			}
		}
		if opts.Metrics != nil {
			opts.Metrics.Records.Add(nRecs)
			if sr, ok := it.(BlockStatsReader); ok {
				bs := sr.ReadStats()
				opts.Metrics.BlocksRead.Add(bs.BlocksRead)
				opts.Metrics.BlocksSkipped.Add(bs.BlocksSkipped)
				opts.Metrics.BlocksFiltered.Add(bs.BlocksFiltered)
				opts.Metrics.BytesRead.Add(bs.BytesRead)
			}
		}
		pendMu.Lock()
		pending[i] = &partStates{states: states}
		pendMu.Unlock()
		return nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if scanCtx.Err() != nil {
					doneCh <- i
					continue
				}
				if err := scanPartition(i); err != nil {
					fail(err)
				}
				doneCh <- i
			}
		}()
	}

	// The producer always dispatches every index: canceled workers ack
	// each one without scanning, so the merge loop's completion count
	// converges even on failure.
	go func() {
		defer close(idxCh)
		for i := range parts {
			idxCh <- i
		}
	}()

	// Merge loop: fold partitions in index order as they complete.
	next := 0
	merged := 0
	for completed := 0; completed < len(parts); completed++ {
		<-doneCh
		for next < len(parts) && getErr() == nil {
			pendMu.Lock()
			ps := pending[next]
			pendMu.Unlock()
			if ps == nil {
				break
			}
			for c, col := range collectors {
				if err := col.MergeShard(ps.states[c]); err != nil {
					fail(err)
					break
				}
			}
			pendMu.Lock()
			pending[next] = nil
			pendMu.Unlock()
			next++
			merged++
			if opts.Progress != nil && getErr() == nil {
				opts.Progress(merged, len(parts))
			}
		}
	}
	wg.Wait()
	if err := getErr(); err != nil {
		return err
	}
	return ctx.Err()
}

// ScanRange is Scan restricted to records with Timestamp inside tr.
// Partitions are still all opened (partition naming carries no time
// bounds), but v2-codec partitions only decode the blocks whose
// [minTS, maxTS] descriptor intersects the window — a one-day query over
// a month-long store touches a small fraction of the blocks.
func ScanRange(ctx context.Context, s Store, opts ScanOptions, tr TimeRange, collectors ...Collector) error {
	if tr.MinTS > tr.MaxTS {
		return fmt.Errorf("trace: invalid time range [%d, %d]", tr.MinTS, tr.MaxTS)
	}
	opts.Range = &tr
	return Scan(ctx, s, opts, collectors...)
}
