package trace

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// The composable scan engine: a Collector accumulates one analysis's
// state from the trace. Scan fans a worker pool out over the store's
// partitions, gives every (collector, partition) pair its own ShardState,
// and folds the states back in canonical partition order, so the result
// is bit-for-bit independent of worker scheduling.

// ShardState accumulates one collector's view of a single partition.
// Observe is called once per record, in the partition's storage order,
// from exactly one goroutine.
type ShardState interface {
	Observe(day int, rec *Record) error
}

// Collector builds per-partition states and folds them. NewShardState may
// be called from any goroutine; MergeShard is called exactly once per
// partition, sequentially, in canonical (day, shard) order.
type Collector interface {
	NewShardState(day, shard int) ShardState
	MergeShard(s ShardState) error
}

// ScanOptions tunes a Scan.
type ScanOptions struct {
	// Parallelism bounds the number of partitions read concurrently;
	// 0 means GOMAXPROCS.
	Parallelism int
	// Progress, if set, is invoked after each partition is merged with
	// the number of merged partitions and the total.
	Progress func(done, total int)
}

// checkEvery is how many records a scan worker processes between context
// cancellation checks.
const checkEvery = 8192

// Scan streams every partition of the store through all collectors. Each
// partition is read once; records are observed in storage order within a
// partition, and per-partition states are merged in canonical order, so
// the outcome is deterministic for any parallelism level.
func Scan(ctx context.Context, s Store, opts ScanOptions, collectors ...Collector) error {
	if len(collectors) == 0 {
		return fmt.Errorf("trace: scan without collectors")
	}
	parts, err := s.Partitions()
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return nil
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Less(parts[j]) })

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}

	// Workers pull partition indices in order; each completed partition's
	// states land in pending[i]. A single merge goroutine folds completed
	// partitions strictly in index order and releases their memory, so at
	// most O(workers) partition states are live at once in the common
	// case of roughly in-order completion.
	type partStates struct {
		states []ShardState
	}
	var (
		idxCh   = make(chan int)
		doneCh  = make(chan int, len(parts))
		pending = make([]*partStates, len(parts))
		pendMu  sync.Mutex
		wg      sync.WaitGroup
		errMu   sync.Mutex
		scanErr error
	)
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errMu.Lock()
		if scanErr == nil {
			scanErr = err
			cancel()
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return scanErr
	}

	scanPartition := func(i int) error {
		p := parts[i]
		states := make([]ShardState, len(collectors))
		for c, col := range collectors {
			states[c] = col.NewShardState(p.Day, p.Shard)
		}
		it, err := s.OpenPartition(p.Day, p.Shard)
		if err != nil {
			return err
		}
		defer it.Close()
		var rec Record
		for n := 0; ; n++ {
			if n%checkEvery == 0 {
				if err := scanCtx.Err(); err != nil {
					return err
				}
			}
			ok, err := it.Next(&rec)
			if err != nil {
				return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
			}
			if !ok {
				break
			}
			for _, st := range states {
				if err := st.Observe(p.Day, &rec); err != nil {
					return fmt.Errorf("trace: day %d shard %d: %w", p.Day, p.Shard, err)
				}
			}
		}
		pendMu.Lock()
		pending[i] = &partStates{states: states}
		pendMu.Unlock()
		return nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if scanCtx.Err() != nil {
					doneCh <- i
					continue
				}
				if err := scanPartition(i); err != nil {
					fail(err)
				}
				doneCh <- i
			}
		}()
	}

	// The producer always dispatches every index: canceled workers ack
	// each one without scanning, so the merge loop's completion count
	// converges even on failure.
	go func() {
		defer close(idxCh)
		for i := range parts {
			idxCh <- i
		}
	}()

	// Merge loop: fold partitions in index order as they complete.
	next := 0
	merged := 0
	for completed := 0; completed < len(parts); completed++ {
		<-doneCh
		for next < len(parts) && getErr() == nil {
			pendMu.Lock()
			ps := pending[next]
			pendMu.Unlock()
			if ps == nil {
				break
			}
			for c, col := range collectors {
				if err := col.MergeShard(ps.states[c]); err != nil {
					fail(err)
					break
				}
			}
			pendMu.Lock()
			pending[next] = nil
			pendMu.Unlock()
			next++
			merged++
			if opts.Progress != nil && getErr() == nil {
				opts.Progress(merged, len(parts))
			}
		}
	}
	wg.Wait()
	if err := getErr(); err != nil {
		return err
	}
	return ctx.Err()
}
