package trace

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/ho"
	"telcolens/internal/topology"
)

func sampleRecord() Record {
	return Record{
		Timestamp:  StudyStart.UnixMilli() + 123456,
		UE:         42,
		TAC:        devices.TAC(35_000_001),
		Source:     7,
		Target:     9,
		SourceRAT:  topology.FourG,
		TargetRAT:  topology.ThreeG,
		Result:     Failure,
		Cause:      4,
		DurationMs: 81.3,
	}
}

func TestRecordHOType(t *testing.T) {
	r := sampleRecord()
	if r.HOType() != ho.To3G {
		t.Fatalf("HOType = %v", r.HOType())
	}
	r.TargetRAT = topology.FourG
	if r.HOType() != ho.Intra {
		t.Fatal("intra misclassified")
	}
	r.TargetRAT = topology.TwoG
	if r.HOType() != ho.To2G {
		t.Fatal("2G misclassified")
	}
}

func TestRecordValidate(t *testing.T) {
	r := sampleRecord()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := r
	bad.Result = Success // but cause set
	if bad.Validate() == nil {
		t.Fatal("success with cause accepted")
	}
	bad = r
	bad.Cause = causes.CodeNone
	if bad.Validate() == nil {
		t.Fatal("failure without cause accepted")
	}
	bad = r
	bad.DurationMs = -1
	if bad.Validate() == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestDayHelpers(t *testing.T) {
	if DayOf(StudyStart.UnixMilli()) != 0 {
		t.Fatal("study start not day 0")
	}
	d3 := StudyStart.Add(3*24*time.Hour + 5*time.Hour)
	if DayOf(d3.UnixMilli()) != 3 {
		t.Fatal("day offset wrong")
	}
	if !DayStart(1).Equal(StudyStart.AddDate(0, 0, 1)) {
		t.Fatal("DayStart wrong")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rec := sampleRecord()
	buf := AppendRecord(nil, &rec)
	if len(buf) != RecordSize {
		t.Fatalf("encoded size = %d, want %d", len(buf), RecordSize)
	}
	var got Record
	if err := DecodeRecord(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != rec.Timestamp || got.UE != rec.UE || got.TAC != rec.TAC ||
		got.Source != rec.Source || got.Target != rec.Target ||
		got.SourceRAT != rec.SourceRAT || got.TargetRAT != rec.TargetRAT ||
		got.Result != rec.Result || got.Cause != rec.Cause {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", rec, got)
	}
	if math.Abs(float64(got.DurationMs-rec.DurationMs)) > 0.06 {
		t.Fatalf("duration drift: %g vs %g", got.DurationMs, rec.DurationMs)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ts int64, ue, tac, src, dst uint32, srcRAT, dstRAT uint8, fail bool, cause uint16, durMilli uint16) bool {
		rec := Record{
			Timestamp: ts,
			UE:        UEID(ue),
			TAC:       devices.TAC(tac),
			Source:    topology.SectorID(src),
			Target:    topology.SectorID(dst),
			SourceRAT: topology.RAT(srcRAT % 4),
			TargetRAT: topology.RAT(dstRAT % 4),
			Result:    Success,
		}
		if fail {
			rec.Result = Failure
			rec.Cause = causes.Code(cause)
		}
		rec.DurationMs = float32(durMilli) / 10 // 0..6553.5ms
		buf := AppendRecord(nil, &rec)
		var got Record
		if err := DecodeRecord(buf, &got); err != nil {
			return false
		}
		// duration tolerance depends on scale regime
		tol := 0.06
		if rec.DurationMs > 3276.7 {
			tol = 0.51
		}
		if math.Abs(float64(got.DurationMs-rec.DurationMs)) > tol {
			return false
		}
		got.DurationMs = rec.DurationMs
		return got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationEncodingRegimes(t *testing.T) {
	cases := []struct {
		in  float32
		tol float64
	}{
		{0, 0.01}, {43.4, 0.06}, {3276.7, 0.06},
		{5000, 0.51}, {10200, 0.51}, {32767, 0.51},
	}
	for _, c := range cases {
		var buf [2]byte
		encodeDuration(buf[:], c.in)
		got := decodeDuration(buf[:])
		if math.Abs(float64(got-c.in)) > c.tol {
			t.Errorf("duration %g decoded as %g", c.in, got)
		}
	}
	// Saturation: durations beyond 32767 ms clamp rather than wrap.
	var buf [2]byte
	encodeDuration(buf[:], 1e9)
	if got := decodeDuration(buf[:]); got != 32767 {
		t.Fatalf("oversized duration decoded as %g", got)
	}
	encodeDuration(buf[:], -5)
	if got := decodeDuration(buf[:]); got != 0 {
		t.Fatalf("negative duration decoded as %g", got)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Record, 1000)
	for i := range want {
		rec := sampleRecord()
		rec.UE = UEID(i)
		rec.Timestamp += int64(i * 1000)
		want[i] = rec
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 1000 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	for i := range want {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.UE != want[i].UE || rec.Timestamp != want[i].Timestamp {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadStreams(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := NewReader(strings.NewReader("XXXXxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Next(&rec); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func storeRoundTrip(t *testing.T, s Store) {
	t.Helper()
	for day := 0; day < 3; day++ {
		w, err := s.AppendDay(day)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100*(day+1); i++ {
			rec := sampleRecord()
			rec.UE = UEID(day*1000 + i)
			if err := w.Write(&rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	days, err := s.Days()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 || days[0] != 0 || days[2] != 2 {
		t.Fatalf("days = %v", days)
	}
	total, err := Count(s)
	if err != nil {
		t.Fatal(err)
	}
	if total != 100+200+300 {
		t.Fatalf("count = %d", total)
	}
	// Double-write rejection.
	if _, err := s.AppendDay(1); err == nil {
		t.Fatal("rewriting day 1 accepted")
	}
	// Missing day rejection.
	if _, err := s.OpenDay(99); err == nil {
		t.Fatal("missing day opened")
	}
}

func TestMemStore(t *testing.T) { storeRoundTrip(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeRoundTrip(t, fs)
}

func TestMemStoreOpenWhileWriting(t *testing.T) {
	s := NewMemStore()
	w, err := s.AppendDay(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenDay(0); err == nil {
		t.Fatal("open of in-progress day accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenDay(0); err != nil {
		t.Fatal(err)
	}
	// Writing after close fails.
	rec := sampleRecord()
	if err := w.Write(&rec); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestForEachOrdering(t *testing.T) {
	s := NewMemStore()
	for _, day := range []int{2, 0, 1} {
		w, err := s.AppendDay(day)
		if err != nil {
			t.Fatal(err)
		}
		rec := sampleRecord()
		rec.UE = UEID(day)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int
	err := ForEach(s, func(day int, rec *Record) error {
		seen = append(seen, day)
		if UEID(day) != rec.UE {
			t.Fatalf("day %d has record of UE %d", day, rec.UE)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("days visited: %v", seen)
	}
}

func TestExportCSV(t *testing.T) {
	s := NewMemStore()
	w, _ := s.AppendDay(0)
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Close()
	it, err := s.OpenDay(0)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var buf bytes.Buffer
	n, err := ExportCSV(&buf, it)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("exported %d rows", n)
	}
	out := buf.String()
	if !strings.Contains(out, "timestamp_ms") || !strings.Contains(out, "3G") || !strings.Contains(out, "failure") {
		t.Fatalf("csv output malformed:\n%s", out)
	}
}

// failWriter accepts limit bytes, then fails every write.
type failWriter struct {
	limit int
	n     int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, fmt.Errorf("disk full")
	}
	w.n += len(p)
	return len(p), nil
}

// TestExportCSVSurfacesWriteErrors: the csv.Writer buffers rows and only
// reports underlying write errors at Flush, so every ExportCSV return
// path must flush and check cw.Error() — a short write must never be
// silently dropped.
func TestExportCSVSurfacesWriteErrors(t *testing.T) {
	buildIt := func(n int) RecordIterator {
		s := NewMemStore()
		w, err := s.AppendDay(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			rec := sampleRecord()
			rec.UE = UEID(i)
			if err := w.Write(&rec); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		it, err := s.OpenDay(0)
		if err != nil {
			t.Fatal(err)
		}
		return it
	}
	// Few rows: everything fits the csv.Writer's buffer, so the failure
	// only appears at the final Flush. Before the fix this path returned
	// (n, nil) with zero bytes durably written.
	it := buildIt(3)
	defer it.Close()
	if _, err := ExportCSV(&failWriter{limit: 0}, it); err == nil {
		t.Fatal("flush-time write failure not surfaced")
	}
	// Many rows: the buffer overflows mid-export and cw.Write starts
	// failing; the iterator error path must also flush-and-report.
	it2 := buildIt(500)
	defer it2.Close()
	if _, err := ExportCSV(&failWriter{limit: 4096}, it2); err == nil {
		t.Fatal("mid-export write failure not surfaced")
	}
	// Iterator failures flush what was buffered and return the iterator's
	// error.
	s := NewMemStore()
	w, _ := s.AppendDay(0)
	rec := sampleRecord()
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Close()
	inner, err := s.OpenDay(0)
	if err != nil {
		t.Fatal(err)
	}
	failing := &errIterator{store: &errStore{}, inner: inner}
	failing.n = 3 // next call fails
	var buf bytes.Buffer
	if _, err := ExportCSV(&buf, failing); err == nil {
		t.Fatal("iterator failure not surfaced")
	}
	if buf.Len() == 0 {
		t.Fatal("buffered rows dropped on iterator failure")
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	rec := sampleRecord()
	buf := make([]byte, 0, RecordSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], &rec)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	rec := sampleRecord()
	buf := AppendRecord(nil, &rec)
	var out Record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeRecord(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}
