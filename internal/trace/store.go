package trace

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"telcolens/internal/faultfs"
)

// A Partition identifies one trace partition: a study day split into
// hash-sharded sub-streams. Shard 0 of an unsharded store is the whole
// day (the paper's pipeline lands one multi-terabyte capture per day;
// sharding by UE lets the analysis fan out over cores and machines).
type Partition struct {
	Day   int
	Shard int
}

// Less orders partitions by (day, shard), the canonical scan order.
func (p Partition) Less(q Partition) bool {
	if p.Day != q.Day {
		return p.Day < q.Day
	}
	return p.Shard < q.Shard
}

// A Store holds (day, shard)-partitioned handover traces.
//
// AppendPartition returns a writer for one partition; OpenPartition
// returns an iterator over it. A partition may only be written once and
// must be closed before it is read. Partitions lists finished partitions
// in canonical (day, shard) order.
//
// The day-level methods are the single-shard degenerate case kept for
// writers that do not shard: AppendDay(d) is AppendPartition(d, 0), and
// OpenDay(d) iterates every shard of the day in shard order.
type Store interface {
	AppendPartition(day, shard int) (RecordWriter, error)
	OpenPartition(day, shard int) (RecordIterator, error)
	Partitions() ([]Partition, error)

	AppendDay(day int) (RecordWriter, error)
	OpenDay(day int) (RecordIterator, error)
	Days() ([]int, error)
}

// RecordWriter receives records for one partition.
type RecordWriter interface {
	Write(*Record) error
	Close() error
}

// BatchWriter is implemented by RecordWriters that can land a batch of
// records more cheaply than record-at-a-time Write calls (the v2 block
// writer appends a whole batch straight into its block buffer).
type BatchWriter interface {
	WriteBatch([]Record) error
}

// ColumnWriter is implemented by RecordWriters that can land a columnar
// (SoA) batch without the caller materializing records — the write-side
// mirror of ColumnIterator. WriteColumns(cb) must store exactly what
// Write(&rec_i) for every row of cb would, in row order; the batch stays
// caller-owned and unmodified. Writers backed by the v2 block codec
// encode straight from the column slices.
type ColumnWriter interface {
	WriteColumns(*ColumnBatch) error
}

// RecordIterator streams records from one partition. Next fills the
// caller's Record and reports false at end of stream.
type RecordIterator interface {
	Next(*Record) (bool, error)
	Close() error
}

// BatchIterator is implemented by RecordIterators that can hand out
// decoded batches. NextBatch fills *batch (growing it as needed) and
// returns how many records it holds; 0 with a nil error means end of
// stream. Records arrive in the same order Next would produce them.
type BatchIterator interface {
	NextBatch(batch *[]Record) (int, error)
}

// ColumnIterator is implemented by RecordIterators that can hand out
// decoded batches in columnar (SoA) form. NextColumns fills cb, reusing
// its slices, and returns how many records it holds; 0 with a nil error
// means end of stream. Rows arrive in the same order Next would produce
// them, so a column scan observes exactly the record-scan sequence.
// Iterators backed by the v2 block codec decode straight into the
// column slices without materializing records.
type ColumnIterator interface {
	NextColumns(cb *ColumnBatch) (int, error)
}

// TimeRangeSetter is implemented by RecordIterators that can restrict
// themselves to minTS <= Timestamp <= maxTS. Iterators backed by the v2
// block codec additionally prune whole blocks outside the window without
// decoding them.
type TimeRangeSetter interface {
	SetTimeRange(minTS, maxTS int64)
}

// ProjectionSetter is implemented by RecordIterators that can skip
// decoding columns outside the projection (v2 block files). Projection
// is an optimization hint: non-supporting iterators decode everything,
// so collectors may only rely on projected fields being valid.
type ProjectionSetter interface {
	SetProjection(cols ColumnSet)
}

// BlockStatsReader is implemented by iterators that track v2 block
// read/skip counters (see ScanMetrics).
type BlockStatsReader interface {
	ReadStats() BlockStats
}

// BlockFilterSetter is implemented by iterators that can skip whole v2
// blocks by stream ordinal before decoding their payload. The filter is
// consulted for every block the time range did not already prune; block
// ordinals count every block in stream order (including range-pruned
// ones), so they align with a PartitionIndex's Blocks slice. Like
// projection this is a pruning hint for callers that know from an index
// which blocks cannot match — filtered blocks are simply never decoded.
type BlockFilterSetter interface {
	SetBlockFilter(keep func(block int) bool)
}

// ShardOf maps a UE to its shard via a 64-bit finalizer hash, so every
// record of a UE lands in the same shard on every day. Partitioning by UE
// keeps per-UE analyses (mobility, gyration, ping-pong) shard-local.
func ShardOf(ue UEID, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(ue)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(shards))
}

// daysOf reduces a partition list to its distinct days, ascending.
func daysOf(parts []Partition) []int {
	var days []int
	for _, p := range parts {
		if len(days) == 0 || days[len(days)-1] != p.Day {
			days = append(days, p.Day)
		}
	}
	return days
}

// ForEach streams every record of every partition in canonical
// (day, shard) order through fn.
func ForEach(s Store, fn func(day int, rec *Record) error) error {
	parts, err := s.Partitions()
	if err != nil {
		return err
	}
	var rec Record
	for _, p := range parts {
		it, err := s.OpenPartition(p.Day, p.Shard)
		if err != nil {
			return err
		}
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				it.Close()
				return err
			}
			if !ok {
				break
			}
			if err := fn(p.Day, &rec); err != nil {
				it.Close()
				return err
			}
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the total number of records in the store. Stores with a
// usable manifest answer from its per-partition record counts without
// opening a single partition file; everything else pays for a full
// streaming pass.
func Count(s Store) (int64, error) {
	if mr, ok := s.(ManifestReader); ok {
		m, err := mr.Manifest()
		if err != nil {
			return 0, err
		}
		if m != nil {
			return m.TotalRecords(), nil
		}
	}
	var n int64
	err := ForEach(s, func(int, *Record) error { n++; return nil })
	return n, err
}

// chainIterator concatenates the shards of one day behind the day-level
// OpenDay API.
type chainIterator struct {
	store  Store
	parts  []Partition
	cur    RecordIterator
	closed bool
}

func (c *chainIterator) Next(rec *Record) (bool, error) {
	for {
		if c.cur == nil {
			if len(c.parts) == 0 {
				return false, nil
			}
			it, err := c.store.OpenPartition(c.parts[0].Day, c.parts[0].Shard)
			if err != nil {
				return false, err
			}
			c.cur = it
			c.parts = c.parts[1:]
		}
		ok, err := c.cur.Next(rec)
		if err != nil {
			c.cur.Close()
			c.cur = nil
			return false, err
		}
		if ok {
			return true, nil
		}
		if err := c.cur.Close(); err != nil {
			c.cur = nil
			return false, err
		}
		c.cur = nil
	}
}

func (c *chainIterator) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.cur != nil {
		err := c.cur.Close()
		c.cur = nil
		return err
	}
	return nil
}

// openDay builds the day-level chained iterator shared by both stores.
func openDay(s Store, day int) (RecordIterator, error) {
	parts, err := s.Partitions()
	if err != nil {
		return nil, err
	}
	var dayParts []Partition
	for _, p := range parts {
		if p.Day == day {
			dayParts = append(dayParts, p)
		}
	}
	if len(dayParts) == 0 {
		return nil, fmt.Errorf("trace: day %d not present", day)
	}
	return &chainIterator{store: s, parts: dayParts}, nil
}

// MemStore keeps partitions in memory. The zero value is ready to use.
type MemStore struct {
	mu       sync.Mutex
	parts    map[Partition][]Record
	open     map[Partition]bool
	manifest Manifest
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{parts: make(map[Partition][]Record), open: make(map[Partition]bool)}
}

// Manifest returns the in-memory partition index (a copy). MemStore
// manifests fingerprint record contents directly, so incremental
// consumers behave identically over memory- and file-backed stores.
func (m *MemStore) Manifest() (*Manifest, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Manifest{Gen: m.manifest.Gen}
	out.Partitions = append([]PartitionInfo(nil), m.manifest.Partitions...)
	return &out, nil
}

// Since diffs the manifest against a previously observed generation.
func (m *MemStore) Since(gen uint64) ([]PartitionInfo, uint64, error) { return Since(m, gen) }

// AppendPartition starts a new partition.
func (m *MemStore) AppendPartition(day, shard int) (RecordWriter, error) {
	if shard < 0 {
		return nil, fmt.Errorf("trace: negative shard %d", shard)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.parts == nil {
		m.parts = make(map[Partition][]Record)
		m.open = make(map[Partition]bool)
	}
	p := Partition{Day: day, Shard: shard}
	if _, exists := m.parts[p]; exists {
		return nil, fmt.Errorf("trace: partition day %d shard %d already written", day, shard)
	}
	m.parts[p] = nil
	m.open[p] = true
	return &memWriter{store: m, part: p, digest: newPartitionDigest()}, nil
}

// OpenPartition iterates a closed partition.
func (m *MemStore) OpenPartition(day, shard int) (RecordIterator, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := Partition{Day: day, Shard: shard}
	recs, ok := m.parts[p]
	if !ok {
		return nil, fmt.Errorf("trace: partition day %d shard %d not present", day, shard)
	}
	if m.open[p] {
		return nil, fmt.Errorf("trace: partition day %d shard %d still open for writing", day, shard)
	}
	return &memIterator{recs: recs}, nil
}

// Partitions lists finished partitions in canonical order.
func (m *MemStore) Partitions() ([]Partition, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var parts []Partition
	for p := range m.parts {
		if !m.open[p] {
			parts = append(parts, p)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Less(parts[j]) })
	return parts, nil
}

// AppendDay starts the single-shard partition of a day.
func (m *MemStore) AppendDay(day int) (RecordWriter, error) { return m.AppendPartition(day, 0) }

// OpenDay iterates every shard of a day in shard order.
func (m *MemStore) OpenDay(day int) (RecordIterator, error) { return openDay(m, day) }

// Days lists the distinct finished days in ascending order.
func (m *MemStore) Days() ([]int, error) {
	parts, err := m.Partitions()
	if err != nil {
		return nil, err
	}
	return daysOf(parts), nil
}

type memWriter struct {
	store  *MemStore
	part   Partition
	digest *partitionDigest
	closed bool
	count  int64
}

func (w *memWriter) Write(rec *Record) error {
	if w.closed {
		return fmt.Errorf("trace: write to closed partition day %d shard %d", w.part.Day, w.part.Shard)
	}
	w.digest.observeRecord(rec)
	w.count++
	w.store.mu.Lock()
	w.store.parts[w.part] = append(w.store.parts[w.part], *rec)
	w.store.mu.Unlock()
	return nil
}

// WriteBatch appends a batch of records under one lock acquisition as a
// single block-sized append (the slice grows once, pre-sized from the
// batch length, never record by record).
func (w *memWriter) WriteBatch(recs []Record) error {
	if w.closed {
		return fmt.Errorf("trace: write to closed partition day %d shard %d", w.part.Day, w.part.Shard)
	}
	for i := range recs {
		w.digest.observeRecord(&recs[i])
	}
	w.count += int64(len(recs))
	w.store.mu.Lock()
	w.store.parts[w.part] = append(w.store.parts[w.part], recs...)
	w.store.mu.Unlock()
	return nil
}

// WriteColumns appends a columnar batch under one lock acquisition,
// transposing straight into the partition's grown tail. The manifest
// digest folds each row exactly as the record path does, so column- and
// record-written MemStore partitions fingerprint identically.
func (w *memWriter) WriteColumns(cb *ColumnBatch) error {
	if w.closed {
		return fmt.Errorf("trace: write to closed partition day %d shard %d", w.part.Day, w.part.Shard)
	}
	n := cb.Len()
	w.count += int64(n)
	w.store.mu.Lock()
	recs := w.store.parts[w.part]
	base := len(recs)
	recs = append(recs, make([]Record, n)...)
	for i := 0; i < n; i++ {
		cb.Record(i, &recs[base+i])
	}
	w.store.parts[w.part] = recs
	w.store.mu.Unlock()
	for i := 0; i < n; i++ {
		w.digest.observeRecord(&recs[base+i])
	}
	return nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.store.mu.Lock()
	w.store.open[w.part] = false
	w.store.manifest.upsert(w.digest.info(w.part.Day, w.part.Shard, w.count))
	w.store.mu.Unlock()
	return nil
}

type memIterator struct {
	recs     []Record
	pos      int
	hasRange bool
	minTS    int64
	maxTS    int64
}

func (it *memIterator) Next(rec *Record) (bool, error) {
	for it.pos < len(it.recs) {
		*rec = it.recs[it.pos]
		it.pos++
		if !it.hasRange || (rec.Timestamp >= it.minTS && rec.Timestamp <= it.maxTS) {
			return true, nil
		}
	}
	return false, nil
}

// NextBatch copies the next run of records into *batch (up to its
// capacity, or DefaultBlockRecords when empty).
func (it *memIterator) NextBatch(batch *[]Record) (int, error) {
	max := cap(*batch)
	if max == 0 {
		max = DefaultBlockRecords
	}
	*batch = (*batch)[:0]
	var rec Record
	for len(*batch) < max {
		ok, err := it.Next(&rec)
		if err != nil {
			return len(*batch), err
		}
		if !ok {
			break
		}
		*batch = append(*batch, rec)
	}
	return len(*batch), nil
}

// NextColumns transposes the next run of records into cb.
func (it *memIterator) NextColumns(cb *ColumnBatch) (int, error) {
	for it.pos < len(it.recs) {
		n := len(it.recs) - it.pos
		if n > DefaultBlockRecords {
			n = DefaultBlockRecords
		}
		cb.FromRecords(it.recs[it.pos : it.pos+n])
		it.pos += n
		if it.hasRange {
			cb.FilterRange(it.minTS, it.maxTS)
		}
		if cb.Len() > 0 {
			return cb.Len(), nil
		}
	}
	cb.resize(0)
	return 0, nil
}

// SetTimeRange restricts iteration to minTS <= Timestamp <= maxTS.
func (it *memIterator) SetTimeRange(minTS, maxTS int64) {
	it.hasRange = true
	it.minTS = minTS
	it.maxTS = maxTS
}

func (it *memIterator) Close() error { return nil }

// Codec selects the on-disk stream format a FileStore writes for new
// partitions. Reading always negotiates the per-file version, so a
// directory may mix codecs.
type Codec uint16

// Supported partition codecs.
const (
	// CodecV1 is the legacy fixed-width record stream.
	CodecV1 Codec = Codec(Version)
	// CodecV2 is the columnar block format with per-block time bounds.
	CodecV2 Codec = Codec(VersionV2)
	// CodecV3 is the bitpacked frame-of-reference block format.
	CodecV3 Codec = Codec(VersionV3)
)

// FileStoreOptions tunes how a FileStore writes new partitions.
type FileStoreOptions struct {
	// Codec is the stream format for new partitions (0 = CodecV2).
	Codec Codec
	// BlockRecords is the v2/v3 records-per-block size (0 = default).
	BlockRecords int
	// Compress flate-compresses v2/v3 block payloads.
	Compress bool
	// FastCompress TLZ-compresses block payloads (CodecV3 only):
	// a lower ratio than flate at a fraction of the CPU cost. Mutually
	// exclusive with Compress.
	FastCompress bool
	// NoIndex disables writing .tlix secondary-index sidecars for new
	// partitions. Queries over unindexed partitions fall back to
	// scanning; results are identical, only slower.
	NoIndex bool
	// FS routes every filesystem operation the store performs; nil means
	// the real OS. Chaos tests pass a faultfs.Fault here.
	FS faultfs.FS
	// VerifyReads re-hashes each partition stream as it is scanned and,
	// at end of stream, compares the hash and byte count against the
	// partition's MANIFEST fingerprint, turning silent corruption
	// (bit rot, truncation the codec happens to survive) into a
	// CorruptionError. Partitions without a usable manifest entry scan
	// unverified.
	VerifyReads bool
}

// FileStore persists partitions as binary trace files in a directory.
// Shard 0 keeps the legacy day-file name so unsharded campaign
// directories stay readable and byte-compatible with earlier layouts.
//
// Alongside the partition files the store maintains a MANIFEST index
// (see Manifest): every writer close folds the finished partition's
// record count, time extents and content fingerprint into it and
// rewrites it atomically. The manifest is re-read from disk on every
// update and query, so several FileStore instances (or processes — a
// generator appending days while a serving daemon watches) can share one
// directory.
type FileStore struct {
	dir  string
	opts FileStoreOptions
	fs   faultfs.FS
	// mu serializes this instance's manifest read-modify-write cycles.
	mu sync.Mutex
}

// NewFileStore creates (if needed) and opens a directory-backed store
// writing the default codec (v2 blocks, uncompressed).
func NewFileStore(dir string) (*FileStore, error) {
	return NewFileStoreOpts(dir, FileStoreOptions{})
}

// NewFileStoreOpts creates (if needed) and opens a directory-backed
// store with explicit codec options.
func NewFileStoreOpts(dir string, opts FileStoreOptions) (*FileStore, error) {
	switch opts.Codec {
	case 0:
		opts.Codec = CodecV2
	case CodecV1, CodecV2, CodecV3:
	default:
		return nil, fmt.Errorf("trace: unsupported codec %d", opts.Codec)
	}
	if opts.FastCompress && opts.Codec != CodecV3 {
		return nil, fmt.Errorf("trace: FastCompress requires CodecV3 (got codec %d)", opts.Codec)
	}
	if opts.FastCompress && opts.Compress {
		return nil, fmt.Errorf("trace: Compress and FastCompress are mutually exclusive")
	}
	fsys := faultfs.Resolve(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating store dir: %w", err)
	}
	return &FileStore{dir: dir, opts: opts, fs: fsys}, nil
}

// Dir returns the backing directory.
func (f *FileStore) Dir() string { return f.dir }

// Options returns the write options this store was opened with (the
// resolved codec, never 0).
func (f *FileStore) Options() FileStoreOptions { return f.opts }

func (f *FileStore) partitionPath(day, shard int) string {
	if shard == 0 {
		return filepath.Join(f.dir, fmt.Sprintf("ho_day_%03d.tlho", day))
	}
	return filepath.Join(f.dir, fmt.Sprintf("ho_day_%03d_s%03d.tlho", day, shard))
}

// indexPath returns the partition's .tlix sidecar location (the .tlho
// suffix replaced, so sidecars never match the partition listing).
func (f *FileStore) indexPath(day, shard int) string {
	p := f.partitionPath(day, shard)
	return p[:len(p)-len(".tlho")] + IndexSuffix
}

// PartitionIndex loads a partition's secondary-index sidecar. A missing
// sidecar is (nil, nil) — the partition predates indexing or was
// written with NoIndex — and callers fall back to scanning. A corrupt
// or future-versioned sidecar reports its error; callers should treat
// that as absent too.
func (f *FileStore) PartitionIndex(day, shard int) (*PartitionIndex, error) {
	data, err := f.fs.ReadFile(f.indexPath(day, shard))
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: reading partition index: %w", err)
	}
	return DecodeIndex(data)
}

// partitionNameRE matches exactly the two partition file layouts; anything
// else (tmp files, backups, editor droppings) is not a partition. Sscanf
// parsing accepted trailing garbage like "ho_day_001.tlho.bak".
var partitionNameRE = regexp.MustCompile(`^ho_day_(\d{3})(?:_s(\d{3}))?\.tlho$`)

// parsePartitionName resolves a directory entry to its partition, strictly.
func parsePartitionName(name string) (Partition, bool) {
	m := partitionNameRE.FindStringSubmatch(name)
	if m == nil {
		return Partition{}, false
	}
	day, err := strconv.Atoi(m[1])
	if err != nil {
		return Partition{}, false
	}
	shard := 0
	if m[2] != "" {
		shard, err = strconv.Atoi(m[2])
		if err != nil || shard == 0 {
			// Shard 0 is always the bare day file; an explicit _s000
			// suffix is not a name this store ever writes.
			return Partition{}, false
		}
	}
	return Partition{Day: day, Shard: shard}, true
}

// AppendPartition starts a new partition file.
func (f *FileStore) AppendPartition(day, shard int) (RecordWriter, error) {
	if shard < 0 || shard > 999 {
		return nil, fmt.Errorf("trace: shard %d out of range [0, 999]", shard)
	}
	path := f.partitionPath(day, shard)
	file, err := f.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, iofs.ErrExist) {
			return nil, fmt.Errorf("trace: partition day %d shard %d already written (%s)", day, shard, path)
		}
		return nil, fmt.Errorf("trace: creating partition file: %w", err)
	}
	// The codec writes through the digest tee, so the manifest
	// fingerprint covers exactly the stored stream bytes.
	digest := newPartitionDigest()
	tee := &digestWriter{w: file, d: digest}
	var w streamWriter
	switch f.opts.Codec {
	case CodecV1:
		w, err = NewWriter(tee)
	case CodecV3:
		w, err = NewWriterV3(tee, WriterV3Options{
			BlockRecords: f.opts.BlockRecords,
			Compress:     f.opts.Compress,
			FastCompress: f.opts.FastCompress,
		})
	default:
		w, err = NewWriterV2(tee, WriterV2Options{
			BlockRecords: f.opts.BlockRecords,
			Compress:     f.opts.Compress,
		})
	}
	if err != nil {
		file.Close()
		f.fs.Remove(path)
		return nil, err
	}
	fw := &fileWriter{file: file, w: w, store: f, day: day, shard: shard, digest: digest}
	if !f.opts.NoIndex {
		// The index builder mirrors the codec's blocking rule (v2 and v3
		// seal a block exactly every BlockRecords records; v1 has no
		// blocks), so block summaries align with the stream without
		// touching the encoder.
		perBlock := 0
		if f.opts.Codec == CodecV2 || f.opts.Codec == CodecV3 {
			perBlock = f.opts.BlockRecords
			if perBlock <= 0 {
				perBlock = DefaultBlockRecords
			}
		}
		fw.idx = newIndexBuilder(perBlock)
	}
	return fw, nil
}

// manifestPath returns the store's MANIFEST location.
func (f *FileStore) manifestPath() string { return filepath.Join(f.dir, ManifestName) }

// Manifest returns the store's partition index. A missing MANIFEST
// (legacy directory) or one that disagrees with the partition files
// actually present (files added or removed behind the store's back)
// returns (nil, nil): callers fall back to listing and opening files.
// The one cheap consistency probe is an os.ReadDir — no partition file
// is ever opened.
func (f *FileStore) Manifest() (*Manifest, error) {
	m, err := loadManifest(f.fs, f.manifestPath())
	if err != nil || m == nil {
		return nil, err
	}
	onDisk, err := f.Partitions()
	if err != nil {
		return nil, err
	}
	if len(onDisk) != len(m.Partitions) {
		return nil, nil
	}
	for i := range onDisk {
		if m.Partitions[i].Partition() != onDisk[i] {
			return nil, nil
		}
	}
	return m, nil
}

// Since diffs the manifest against a previously observed generation.
func (f *FileStore) Since(gen uint64) ([]PartitionInfo, uint64, error) { return Since(f, gen) }

// notePartitionClosed folds one finished partition into the MANIFEST
// under an atomic full rewrite. The index is re-read from disk first so
// concurrent writers through other FileStore instances are preserved,
// and partition files the manifest does not cover (campaigns written
// before the store maintained one) are backfilled by reading them once
// — otherwise appending to a legacy directory would leave an index that
// never matches the listing and is therefore never usable.
func (f *FileStore) notePartitionClosed(info PartitionInfo) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, err := loadManifest(f.fs, f.manifestPath())
	if err != nil {
		return err
	}
	if m == nil {
		m = &Manifest{}
	}
	onDisk, err := f.Partitions()
	if err != nil {
		return err
	}
	present := make(map[Partition]bool, len(onDisk)+1)
	for _, p := range onDisk {
		present[p] = true
		if p == info.Partition() {
			continue
		}
		if _, ok := m.Lookup(p); ok {
			continue
		}
		entry, err := f.rebuildEntry(p)
		if err != nil {
			return fmt.Errorf("trace: backfilling manifest entry for day %d shard %d: %w", p.Day, p.Shard, err)
		}
		m.upsert(entry)
	}
	present[info.Partition()] = true
	// Drop entries whose files vanished (partitions removed behind the
	// store's back), so the rewritten index matches the listing again.
	kept := m.Partitions[:0]
	for _, pi := range m.Partitions {
		if present[pi.Partition()] {
			kept = append(kept, pi)
		}
	}
	if len(kept) != len(m.Partitions) {
		m.Partitions = kept
		m.Gen++
	}
	m.upsert(info)
	return writeManifest(f.fs, f.manifestPath(), m)
}

// RemovePartition deletes a partition file and its manifest entry. The
// only writer of this is campaign repair (telcogen -append discarding
// the orphan days a crashed append left behind — they are regenerated
// deterministically); analysis never removes data.
func (f *FileStore) RemovePartition(day, shard int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.fs.Remove(f.partitionPath(day, shard)); err != nil {
		return fmt.Errorf("trace: removing partition day %d shard %d: %w", day, shard, err)
	}
	// Best-effort sidecar cleanup: an orphan index is harmless (loads are
	// fingerprint-checked), but crash-debris removal should leave nothing.
	f.fs.Remove(f.indexPath(day, shard))
	m, err := loadManifest(f.fs, f.manifestPath())
	if err != nil || m == nil {
		return err
	}
	target := Partition{Day: day, Shard: shard}
	kept := m.Partitions[:0]
	for _, pi := range m.Partitions {
		if pi.Partition() != target {
			kept = append(kept, pi)
		}
	}
	m.Partitions = kept
	m.Gen++
	return writeManifest(f.fs, f.manifestPath(), m)
}

// rebuildEntry reconstructs the manifest entry of a partition written
// before the store maintained a manifest: the raw stream is hashed for
// the fingerprint (identical to what the write-time tee produces) and
// decoded once for the record count and timestamp extents.
func (f *FileStore) rebuildEntry(p Partition) (PartitionInfo, error) {
	data, err := f.fs.ReadFile(f.partitionPath(p.Day, p.Shard))
	if err != nil {
		return PartitionInfo{}, err
	}
	d := newPartitionDigest()
	d.observeBytes(data)
	it, err := f.OpenPartition(p.Day, p.Shard)
	if err != nil {
		return PartitionInfo{}, err
	}
	defer it.Close()
	var records int64
	var rec Record
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			return PartitionInfo{}, err
		}
		if !ok {
			break
		}
		d.observeTS(rec.Timestamp)
		records++
	}
	return d.info(p.Day, p.Shard, records), nil
}

// OpenPartition iterates a partition file. With VerifyReads set, the
// stream is re-hashed while it is read and checked against the
// partition's manifest fingerprint at end of stream (see
// FileStoreOptions.VerifyReads).
func (f *FileStore) OpenPartition(day, shard int) (RecordIterator, error) {
	file, err := faultfs.Open(f.fs, f.partitionPath(day, shard))
	if err != nil {
		return nil, fmt.Errorf("trace: opening day %d shard %d: %w", day, shard, err)
	}
	var verify *readVerifier
	var src io.Reader = file
	if f.opts.VerifyReads {
		if m, merr := loadManifest(f.fs, f.manifestPath()); merr == nil && m != nil {
			if pi, ok := m.Lookup(Partition{Day: day, Shard: shard}); ok {
				verify = &readVerifier{expect: pi, digest: newPartitionDigest()}
				verify.src = file
				src = verify
			}
		}
	}
	r, err := NewReader(src)
	if err != nil {
		file.Close()
		return nil, err
	}
	return &fileIterator{file: file, r: r, day: day, shard: shard, verify: verify}, nil
}

// Partitions lists partition files present on disk in canonical order.
func (f *FileStore) Partitions() ([]Partition, error) {
	entries, err := f.fs.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("trace: listing store dir: %w", err)
	}
	var parts []Partition
	for _, e := range entries {
		if p, ok := parsePartitionName(e.Name()); ok {
			parts = append(parts, p)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Less(parts[j]) })
	return parts, nil
}

// AppendDay starts the single-shard partition of a day.
func (f *FileStore) AppendDay(day int) (RecordWriter, error) { return f.AppendPartition(day, 0) }

// OpenDay iterates every shard of a day in shard order.
func (f *FileStore) OpenDay(day int) (RecordIterator, error) { return openDay(f, day) }

// Days lists the distinct days present on disk in ascending order,
// answering from the MANIFEST when it is usable.
func (f *FileStore) Days() ([]int, error) {
	if m, err := f.Manifest(); err == nil && m != nil {
		parts := make([]Partition, len(m.Partitions))
		for i := range m.Partitions {
			parts[i] = m.Partitions[i].Partition()
		}
		return daysOf(parts), nil
	}
	parts, err := f.Partitions()
	if err != nil {
		return nil, err
	}
	return daysOf(parts), nil
}

// streamWriter is the codec-agnostic surface fileWriter needs.
type streamWriter interface {
	Write(*Record) error
	Flush() error
	Count() int64
}

// digestWriter tees stream bytes into the manifest digest on their way
// to the partition file.
type digestWriter struct {
	w io.Writer
	d *partitionDigest
}

func (t *digestWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	t.d.observeBytes(p[:n])
	return n, err
}

// fileWriter wraps a codec stream writer with the store-level
// bookkeeping every landed record needs: timestamp extents and stream
// fingerprint for the MANIFEST entry (digest) and, unless the store was
// opened with NoIndex, the secondary-index builder feeding the .tlix
// sidecar written on Close.
//
// A write error is sticky: once any record fails to land, the stream
// is poisoned and Close aborts — the partial partition file (and any
// sidecar) is removed and never reaches the MANIFEST, so a failed
// append leaves the store exactly as it was.
type fileWriter struct {
	file   faultfs.File
	w      streamWriter
	store  *FileStore
	day    int
	shard  int
	digest *partitionDigest
	idx    *indexBuilder
	closed bool
	werr   error
}

// fail poisons the writer and returns the error.
func (w *fileWriter) fail(err error) error {
	if w.werr == nil {
		w.werr = err
	}
	return err
}

// abort releases the codec, closes the handle, and removes the partial
// partition file plus any sidecar, so the directory listing and the
// MANIFEST keep agreeing (a stray partial .tlho would otherwise make
// the manifest unusable for every future consumer).
func (w *fileWriter) abort(cause error) error {
	if rel, ok := w.w.(interface{ Release() }); ok {
		rel.Release()
	}
	w.file.Close()
	w.store.fs.Remove(w.store.partitionPath(w.day, w.shard))
	w.store.fs.Remove(w.store.indexPath(w.day, w.shard))
	return fmt.Errorf("trace: partition day %d shard %d aborted: %w", w.day, w.shard, cause)
}

func (w *fileWriter) Write(rec *Record) error {
	if w.werr != nil {
		return w.werr
	}
	w.digest.observeTS(rec.Timestamp)
	if w.idx != nil {
		w.idx.observe(rec.Timestamp, uint32(rec.UE), uint32(rec.TAC), uint32(rec.Source), uint32(rec.Target))
	}
	if err := w.w.Write(rec); err != nil {
		return w.fail(err)
	}
	return nil
}

// WriteBatch lands a batch, going through the codec's batch path when it
// has one. Both codecs land batches in block-sized appends, so no
// per-record copy loop survives on this path.
func (w *fileWriter) WriteBatch(recs []Record) error {
	if w.werr != nil {
		return w.werr
	}
	for i := range recs {
		w.digest.observeTS(recs[i].Timestamp)
	}
	if w.idx != nil {
		for i := range recs {
			r := &recs[i]
			w.idx.observe(r.Timestamp, uint32(r.UE), uint32(r.TAC), uint32(r.Source), uint32(r.Target))
		}
	}
	if bw, ok := w.w.(BatchWriter); ok {
		if err := bw.WriteBatch(recs); err != nil {
			return w.fail(err)
		}
		return nil
	}
	for i := range recs {
		if err := w.w.Write(&recs[i]); err != nil {
			return w.fail(err)
		}
	}
	return nil
}

// WriteColumns lands a columnar batch. The v2 codec encodes straight
// from the column slices; the v1 fixed-width codec has no columnar
// form, so the batch transposes block-wise into a scratch slice and
// goes through the codec's chunked WriteBatch (one buffer write per
// chunk, never a write per record). Timestamp extents fold into the
// manifest digest from the contiguous timestamp column.
func (w *fileWriter) WriteColumns(cb *ColumnBatch) error {
	if w.werr != nil {
		return w.werr
	}
	for _, ts := range cb.Timestamps {
		w.digest.observeTS(ts)
	}
	if w.idx != nil {
		w.idx.observeColumns(cb)
	}
	if cw, ok := w.w.(ColumnWriter); ok {
		if err := cw.WriteColumns(cb); err != nil {
			return w.fail(err)
		}
		return nil
	}
	n := cb.Len()
	if n == 0 {
		return nil
	}
	recs := make([]Record, min(n, DefaultBlockRecords))
	for off := 0; off < n; off += len(recs) {
		k := min(len(recs), n-off)
		for i := 0; i < k; i++ {
			cb.Record(off+i, &recs[i])
		}
		if bw, ok := w.w.(BatchWriter); ok {
			if err := bw.WriteBatch(recs[:k]); err != nil {
				return w.fail(err)
			}
			continue
		}
		for i := 0; i < k; i++ {
			if err := w.w.Write(&recs[i]); err != nil {
				return w.fail(err)
			}
		}
	}
	return nil
}

// Close commits the partition: flush the codec, fsync the partition
// file, write the index sidecar, then fold the entry into the MANIFEST
// (whose atomic rewrite fsyncs the directory, making the new partition
// itself durable). Any failure along the way aborts instead — the
// partial file and sidecar are removed so the store's prior state is
// exactly preserved.
func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.werr != nil {
		return w.abort(w.werr)
	}
	if err := w.w.Flush(); err != nil {
		return w.abort(err)
	}
	// Return the codec's pooled encode scratch now that the stream is
	// complete (v2 writers; a no-op surface for v1).
	if rel, ok := w.w.(interface{ Release() }); ok {
		rel.Release()
	}
	if err := w.file.Sync(); err != nil {
		return w.abort(err)
	}
	if err := w.file.Close(); err != nil {
		w.store.fs.Remove(w.store.partitionPath(w.day, w.shard))
		w.store.fs.Remove(w.store.indexPath(w.day, w.shard))
		return fmt.Errorf("trace: partition day %d shard %d aborted: %w", w.day, w.shard, err)
	}
	info := w.digest.info(w.day, w.shard, w.w.Count())
	if w.idx != nil {
		// The sidecar lands before the manifest entry that advertises it,
		// so a reader that sees IndexVersion > 0 always finds the file.
		idx := w.idx.finish(w.digest.hash)
		if err := writeIndexFile(w.store.fs, w.store.indexPath(w.day, w.shard), idx); err != nil {
			w.store.fs.Remove(w.store.partitionPath(w.day, w.shard))
			w.store.fs.Remove(w.store.indexPath(w.day, w.shard))
			return err
		}
		info.IndexVersion = idx.Version
	}
	if err := w.store.notePartitionClosed(info); err != nil {
		w.store.fs.Remove(w.store.partitionPath(w.day, w.shard))
		w.store.fs.Remove(w.store.indexPath(w.day, w.shard))
		return err
	}
	return nil
}

// readVerifier tees every byte the codec pulls from the partition file
// into a fresh digest. The codec reader never seeks (range pruning
// discards through its buffer), so the tee observes the stream in file
// order; at end of stream the remaining tail is drained and the hash
// plus byte count are compared against the manifest entry recorded at
// write time.
type readVerifier struct {
	src    io.Reader
	digest *partitionDigest
	expect PartitionInfo
	done   bool
}

func (v *readVerifier) Read(p []byte) (int, error) {
	n, err := v.src.Read(p)
	if n > 0 {
		v.digest.observeBytes(p[:n])
	}
	return n, err
}

// finish drains the unread tail through the digest and compares. It
// runs once; later calls are free.
func (v *readVerifier) finish(day, shard int) error {
	if v.done {
		return nil
	}
	v.done = true
	if _, err := io.Copy(io.Discard, v); err != nil {
		return &CorruptionError{Day: day, Shard: shard, Class: CorruptIO, Err: err}
	}
	if v.digest.hash != v.expect.Fingerprint || v.digest.bytes != v.expect.Bytes {
		var err error
		if v.digest.bytes != v.expect.Bytes {
			err = fmt.Errorf("%w: stored %d bytes, manifest records %d",
				ErrChecksumMismatch, v.digest.bytes, v.expect.Bytes)
		} else {
			err = fmt.Errorf("%w: stream hash %016x, manifest fingerprint %016x",
				ErrChecksumMismatch, v.digest.hash, v.expect.Fingerprint)
		}
		class := CorruptChecksum
		if v.digest.bytes < v.expect.Bytes {
			class = CorruptTruncated
		}
		return &CorruptionError{Day: day, Shard: shard, Class: class, Err: err}
	}
	return nil
}

type fileIterator struct {
	file   faultfs.File
	r      *Reader
	day    int
	shard  int
	verify *readVerifier
}

// atEnd runs the verification pass when the stream is exhausted.
func (it *fileIterator) atEnd() error {
	if it.verify == nil {
		return nil
	}
	return it.verify.finish(it.day, it.shard)
}

func (it *fileIterator) Next(rec *Record) (bool, error) {
	err := it.r.Next(rec)
	if err == io.EOF {
		return false, it.atEnd()
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// NextBatch hands out the next decoded batch (one block on v2 streams).
func (it *fileIterator) NextBatch(batch *[]Record) (int, error) {
	n, err := it.r.NextBatch(batch)
	if err == io.EOF {
		return 0, it.atEnd()
	}
	if n == 0 && err == nil {
		return 0, it.atEnd()
	}
	return n, err
}

// NextColumns hands out the next decoded batch in SoA form (one block
// on v2 streams, decoded without materializing records).
func (it *fileIterator) NextColumns(cb *ColumnBatch) (int, error) {
	n, err := it.r.NextColumns(cb)
	if err == io.EOF {
		return 0, it.atEnd()
	}
	if n == 0 && err == nil {
		return 0, it.atEnd()
	}
	return n, err
}

// SetTimeRange restricts the stream; v2 files prune whole blocks.
func (it *fileIterator) SetTimeRange(minTS, maxTS int64) { it.r.SetTimeRange(minTS, maxTS) }

// SetProjection restricts which columns v2 files decode.
func (it *fileIterator) SetProjection(cols ColumnSet) { it.r.SetProjection(cols) }

// SetBlockFilter prunes v2 blocks by stream ordinal without decoding
// them (see BlockFilterSetter).
func (it *fileIterator) SetBlockFilter(keep func(block int) bool) { it.r.SetBlockFilter(keep) }

// ReadStats reports block read/skip counters (zero for v1 files).
func (it *fileIterator) ReadStats() BlockStats { return it.r.Stats() }

func (it *fileIterator) Close() error { return it.file.Close() }
