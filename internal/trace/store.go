package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// A Store holds day-partitioned handover traces (the paper's pipeline
// lands one multi-terabyte capture per day; ours land one stream per day).
//
// AppendDay returns a writer for a day's partition; OpenDay returns an
// iterator over it. A day may only be written once and must be closed
// before it is read.
type Store interface {
	AppendDay(day int) (RecordWriter, error)
	OpenDay(day int) (RecordIterator, error)
	Days() ([]int, error)
}

// RecordWriter receives records for one day partition.
type RecordWriter interface {
	Write(*Record) error
	Close() error
}

// RecordIterator streams records from one day partition. Next fills the
// caller's Record and reports false at end of stream.
type RecordIterator interface {
	Next(*Record) (bool, error)
	Close() error
}

// ForEach streams every record of every day (ascending) through fn.
func ForEach(s Store, fn func(day int, rec *Record) error) error {
	days, err := s.Days()
	if err != nil {
		return err
	}
	var rec Record
	for _, day := range days {
		it, err := s.OpenDay(day)
		if err != nil {
			return err
		}
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				it.Close()
				return err
			}
			if !ok {
				break
			}
			if err := fn(day, &rec); err != nil {
				it.Close()
				return err
			}
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the total number of records in the store.
func Count(s Store) (int64, error) {
	var n int64
	err := ForEach(s, func(int, *Record) error { n++; return nil })
	return n, err
}

// MemStore keeps day partitions in memory. The zero value is ready to use.
type MemStore struct {
	mu   sync.Mutex
	days map[int][]Record
	open map[int]bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{days: make(map[int][]Record), open: make(map[int]bool)}
}

// AppendDay starts a new day partition.
func (m *MemStore) AppendDay(day int) (RecordWriter, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.days == nil {
		m.days = make(map[int][]Record)
		m.open = make(map[int]bool)
	}
	if _, exists := m.days[day]; exists {
		return nil, fmt.Errorf("trace: day %d already written", day)
	}
	m.days[day] = nil
	m.open[day] = true
	return &memWriter{store: m, day: day}, nil
}

// OpenDay iterates a closed day partition.
func (m *MemStore) OpenDay(day int) (RecordIterator, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs, ok := m.days[day]
	if !ok {
		return nil, fmt.Errorf("trace: day %d not present", day)
	}
	if m.open[day] {
		return nil, fmt.Errorf("trace: day %d still open for writing", day)
	}
	return &memIterator{recs: recs}, nil
}

// Days lists finished day partitions in ascending order.
func (m *MemStore) Days() ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var days []int
	for d := range m.days {
		if !m.open[d] {
			days = append(days, d)
		}
	}
	sort.Ints(days)
	return days, nil
}

type memWriter struct {
	store  *MemStore
	day    int
	closed bool
}

func (w *memWriter) Write(rec *Record) error {
	if w.closed {
		return fmt.Errorf("trace: write to closed day %d", w.day)
	}
	w.store.mu.Lock()
	w.store.days[w.day] = append(w.store.days[w.day], *rec)
	w.store.mu.Unlock()
	return nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.store.mu.Lock()
	w.store.open[w.day] = false
	w.store.mu.Unlock()
	return nil
}

type memIterator struct {
	recs []Record
	pos  int
}

func (it *memIterator) Next(rec *Record) (bool, error) {
	if it.pos >= len(it.recs) {
		return false, nil
	}
	*rec = it.recs[it.pos]
	it.pos++
	return true, nil
}

func (it *memIterator) Close() error { return nil }

// FileStore persists day partitions as binary trace files in a directory.
type FileStore struct {
	dir string
}

// NewFileStore creates (if needed) and opens a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: creating store dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) dayPath(day int) string {
	return filepath.Join(f.dir, fmt.Sprintf("ho_day_%03d.tlho", day))
}

// AppendDay starts a new day partition file.
func (f *FileStore) AppendDay(day int) (RecordWriter, error) {
	path := f.dayPath(day)
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("trace: day %d already written (%s)", day, path)
	}
	file, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: creating day file: %w", err)
	}
	w, err := NewWriter(file)
	if err != nil {
		file.Close()
		os.Remove(path)
		return nil, err
	}
	return &fileWriter{file: file, w: w}, nil
}

// OpenDay iterates a day partition file.
func (f *FileStore) OpenDay(day int) (RecordIterator, error) {
	file, err := os.Open(f.dayPath(day))
	if err != nil {
		return nil, fmt.Errorf("trace: opening day %d: %w", day, err)
	}
	r, err := NewReader(file)
	if err != nil {
		file.Close()
		return nil, err
	}
	return &fileIterator{file: file, r: r}, nil
}

// Days lists day partitions present on disk in ascending order.
func (f *FileStore) Days() ([]int, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("trace: listing store dir: %w", err)
	}
	var days []int
	for _, e := range entries {
		var day int
		if _, err := fmt.Sscanf(e.Name(), "ho_day_%03d.tlho", &day); err == nil {
			days = append(days, day)
		}
	}
	sort.Ints(days)
	return days, nil
}

type fileWriter struct {
	file *os.File
	w    *Writer
}

func (w *fileWriter) Write(rec *Record) error { return w.w.Write(rec) }

func (w *fileWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.file.Close()
		return err
	}
	return w.file.Close()
}

type fileIterator struct {
	file *os.File
	r    *Reader
}

func (it *fileIterator) Next(rec *Record) (bool, error) {
	err := it.r.Next(rec)
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (it *fileIterator) Close() error { return it.file.Close() }
