package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

var benchBlockRecords = DefaultBlockRecords

func benchStream(b *testing.B, codec Codec, compress bool) ([]byte, int) {
	r := rand.New(rand.NewSource(5))
	const n = 200_000
	recs := make([]Record, n)
	base := StudyStart.UnixMilli()
	for i := range recs {
		recs[i] = randRecord(r, base)
		recs[i].Timestamp = base + int64(i)*700 // sorted, like real partitions
		recs[i].UE = UEID(i % 20_000)           // sequential id space, like generation
	}
	var buf bytes.Buffer
	if codec == CodecV1 {
		w, err := NewWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	} else {
		w, err := NewWriterV2(&buf, WriterV2Options{Compress: compress, BlockRecords: benchBlockRecords})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteBatch(recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	return buf.Bytes(), n
}

func benchDecode(b *testing.B, codec Codec, compress bool, batched bool) {
	data, n := benchStream(b, codec, compress)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		if batched {
			var batch []Record
			for {
				k, err := r.NextBatch(&batch)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				total += k
			}
		} else {
			var rec Record
			for {
				err := r.Next(&rec)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				total++
			}
		}
		if total != n {
			b.Fatalf("decoded %d", total)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkDecodeStreamV1(b *testing.B)      { benchDecode(b, CodecV1, false, false) }
func BenchmarkDecodeStreamV1Batch(b *testing.B) { benchDecode(b, CodecV1, false, true) }
func BenchmarkDecodeStreamV2(b *testing.B)      { benchDecode(b, CodecV2, false, true) }
func BenchmarkDecodeStreamV2Flate(b *testing.B) { benchDecode(b, CodecV2, true, true) }
