package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

var benchBlockRecords = DefaultBlockRecords

func benchStream(b *testing.B, codec Codec, compress bool) ([]byte, int) {
	r := rand.New(rand.NewSource(5))
	const n = 200_000
	recs := make([]Record, n)
	base := StudyStart.UnixMilli()
	for i := range recs {
		recs[i] = randRecord(r, base)
		recs[i].Timestamp = base + int64(i)*700 // sorted, like real partitions
		recs[i].UE = UEID(i % 20_000)           // sequential id space, like generation
	}
	var buf bytes.Buffer
	switch codec {
	case CodecV1:
		w, err := NewWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	case CodecV3:
		w, err := NewWriterV3(&buf, WriterV3Options{FastCompress: compress, BlockRecords: benchBlockRecords})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteBatch(recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	default:
		w, err := NewWriterV2(&buf, WriterV2Options{Compress: compress, BlockRecords: benchBlockRecords})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteBatch(recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	return buf.Bytes(), n
}

func benchDecode(b *testing.B, codec Codec, compress bool, batched bool) {
	data, n := benchStream(b, codec, compress)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		if batched {
			var batch []Record
			for {
				k, err := r.NextBatch(&batch)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				total += k
			}
		} else {
			var rec Record
			for {
				err := r.Next(&rec)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				total++
			}
		}
		if total != n {
			b.Fatalf("decoded %d", total)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkUnpackColumn isolates the v3 bitpacked column decoder — the
// hottest loop of a v3 full scan — at representative widths.
func BenchmarkUnpackColumn(b *testing.B) {
	const n = 4096
	vals := make([]uint64, n)
	out := make([]uint32, n)
	r := rand.New(rand.NewSource(7))
	for _, w := range []uint8{9, 15, 21, 32} {
		mask := uint64(1)<<w - 1
		for i := range vals {
			vals[i] = r.Uint64() & mask
		}
		words := appendPacked(nil, vals, w)
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				if err := unpackColumn(words, w, 0, (1<<32)-1, out, "bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mvalues/s")
		})
	}
}

func BenchmarkDecodeStreamV1(b *testing.B)      { benchDecode(b, CodecV1, false, false) }
func BenchmarkDecodeStreamV1Batch(b *testing.B) { benchDecode(b, CodecV1, false, true) }
func BenchmarkDecodeStreamV2(b *testing.B)      { benchDecode(b, CodecV2, false, true) }
func BenchmarkDecodeStreamV2Flate(b *testing.B) { benchDecode(b, CodecV2, true, true) }
func BenchmarkDecodeStreamV3(b *testing.B)      { benchDecode(b, CodecV3, false, true) }
func BenchmarkDecodeStreamV3TLZ(b *testing.B)   { benchDecode(b, CodecV3, true, true) }
