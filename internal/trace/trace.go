// Package trace defines the handover record schema captured by the
// monitoring probes (the six variables of §3.1: timestamp, result,
// duration, failure cause, anonymized user, source/target sectors with
// their RATs, enriched with the device TAC) and a compact binary codec
// with day-partitioned stores for streaming analysis.
//
// The reader follows the gopacket decoding idiom: records decode into a
// caller-owned struct that is reused across calls, so iterating millions
// of records allocates nothing.
package trace

import (
	"fmt"
	"time"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/ho"
	"telcolens/internal/topology"
)

// Result is the outcome of a handover.
type Result uint8

// Handover outcomes.
const (
	Success Result = iota
	Failure
)

// String returns the result name.
func (r Result) String() string {
	if r == Failure {
		return "failure"
	}
	return "success"
}

// UEID is an anonymized subscriber identifier (the stand-in for the hashed
// IMSI of the paper's pipeline).
type UEID uint32

// Record is one captured handover event.
type Record struct {
	Timestamp  int64 // Unix milliseconds
	UE         UEID
	TAC        devices.TAC // device model via IMEI TAC prefix
	Source     topology.SectorID
	Target     topology.SectorID
	SourceRAT  topology.RAT
	TargetRAT  topology.RAT
	Result     Result
	Cause      causes.Code // CodeNone on success
	DurationMs float32     // signaling time, ms granularity in the paper
}

// HOType classifies the record as horizontal or vertical (§5.2).
func (r *Record) HOType() ho.Type { return ho.Classify(r.TargetRAT) }

// Time returns the record timestamp as a time.Time in UTC.
func (r *Record) Time() time.Time { return time.UnixMilli(r.Timestamp).UTC() }

// Validate performs cheap sanity checks used by property tests and by the
// reader in strict mode.
func (r *Record) Validate() error {
	if r.Result == Success && r.Cause != causes.CodeNone {
		return fmt.Errorf("trace: successful HO carries cause %d", r.Cause)
	}
	if r.Result == Failure && r.Cause == causes.CodeNone {
		return fmt.Errorf("trace: failed HO without cause")
	}
	if r.DurationMs < 0 {
		return fmt.Errorf("trace: negative duration %g", r.DurationMs)
	}
	if r.SourceRAT > topology.FiveG || r.TargetRAT > topology.FiveG {
		return fmt.Errorf("trace: invalid RAT")
	}
	return nil
}

// StudyStart is the first instant of the measurement window (the paper's
// capture starts 29 Jan 2024, 00:00).
var StudyStart = time.Date(2024, time.January, 29, 0, 0, 0, 0, time.UTC)

// DayStart returns the UTC start of the given study day (0-based).
func DayStart(day int) time.Time { return StudyStart.AddDate(0, 0, day) }

// DayOf returns the 0-based study day of a record timestamp.
func DayOf(tsMillis int64) int {
	return int(time.UnixMilli(tsMillis).UTC().Sub(StudyStart) / (24 * time.Hour))
}
