package trace

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"telcolens/internal/faultfs"
)

func countRecords(t *testing.T, s Store) int64 {
	t.Helper()
	var n int64
	if err := ForEach(s, func(int, *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	return n
}

// A failed partition write must abort cleanly on Close: no partial
// .tlho on disk, no sidecar, no manifest entry — the store looks
// exactly as it did before the append started.
func TestFailedWriteAbortsCleanly(t *testing.T) {
	for _, rule := range []faultfs.Rule{
		{Op: faultfs.OpWrite, Path: "ho_day_001*", Kind: faultfs.KindErr, Err: faultfs.ENOSPC},
		{Op: faultfs.OpWrite, Path: "ho_day_001*", Kind: faultfs.KindTorn, After: 1},
		{Op: faultfs.OpSync, Path: "ho_day_001*", Kind: faultfs.KindErr},
	} {
		t.Run(rule.String(), func(t *testing.T) {
			dir := t.TempDir()
			clean, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			writeTestPartition(t, clean, 0, 0, 500)

			ff := faultfs.NewFault(nil, faultfs.Plan{Rules: []faultfs.Rule{rule}})
			s, err := NewFileStoreOpts(dir, FileStoreOptions{FS: ff})
			if err != nil {
				t.Fatal(err)
			}
			w, err := s.AppendPartition(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			var failed error
			for i := 0; i < 100000 && failed == nil; i++ {
				rec := Record{Timestamp: DayStart(1).UnixMilli() + int64(i), UE: UEID(i)}
				failed = w.Write(&rec)
			}
			cerr := w.Close()
			if failed == nil && cerr == nil {
				t.Fatal("fault never fired")
			}
			if cerr == nil {
				t.Fatal("Close after failed write must error")
			}
			if failed != nil && !errors.Is(cerr, faultfs.ErrInjected) {
				t.Fatalf("Close error should carry the injected cause: %v", cerr)
			}

			// Old state intact, new partition gone everywhere.
			after, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			parts, err := after.Partitions()
			if err != nil {
				t.Fatal(err)
			}
			if len(parts) != 1 || parts[0] != (Partition{Day: 0}) {
				t.Fatalf("partitions after abort = %v", parts)
			}
			m, err := after.Manifest()
			if err != nil || m == nil {
				t.Fatalf("manifest unusable after abort: %v, %v", m, err)
			}
			if len(m.Partitions) != 1 {
				t.Fatalf("manifest entries = %v", m.Partitions)
			}
			if got := countRecords(t, after); got != 500 {
				t.Fatalf("records after abort = %d", got)
			}
			rep, err := Verify(context.Background(), after)
			if err != nil || !rep.OK() {
				t.Fatalf("verify after abort: %+v, %v", rep, err)
			}
		})
	}
}

// VerifyReads must catch a bit flip that the codec structure alone
// would let through, and classify it.
func TestVerifyReadsCatchesBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 2000)

	// Flip one bit in the middle of the stored payload.
	path := filepath.Join(dir, "ho_day_000.tlho")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	vs, err := NewFileStoreOpts(dir, FileStoreOptions{VerifyReads: true})
	if err != nil {
		t.Fatal(err)
	}
	it, err := vs.OpenPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var rec Record
	var scanErr error
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			scanErr = err
			break
		}
		if !ok {
			break
		}
	}
	if scanErr == nil {
		t.Fatal("verified read of a flipped stream must fail")
	}
	var ce *CorruptionError
	if !errors.As(scanErr, &ce) {
		// A mid-payload flip may also surface as a codec decode error
		// before the fingerprint check runs; classification happens at
		// the scan layer then. Accept checksum sentinel only when the
		// error is a CorruptionError.
		t.Fatalf("error not classified: %v", scanErr)
	}
	if ce.Class != CorruptChecksum && ce.Class != CorruptDecode {
		t.Fatalf("class = %s", ce.Class)
	}
}

// VerifyReads over an intact store is invisible: same records, no
// error.
func TestVerifyReadsCleanPass(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 1000)
	writeTestPartition(t, s, 1, 0, 1000)
	vs, err := NewFileStoreOpts(dir, FileStoreOptions{VerifyReads: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := countRecords(t, vs); got != 2000 {
		t.Fatalf("records = %d", got)
	}
}

// Scrub must quarantine a corrupted day, rewrite the manifest to the
// survivors, and leave the rest of the store serving.
func TestScrubQuarantinesCorruptPartition(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		writeTestPartition(t, s, day, 0, 300)
	}

	// Corrupt day 1 (truncate) behind the store's back.
	path := filepath.Join(dir, "ho_day_001.tlho")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Issues) != 1 || rep.Issues[0].Class != CorruptTruncated {
		t.Fatalf("verify report = %+v", rep)
	}

	res, err := Scrub(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != (Partition{Day: 1}) {
		t.Fatalf("quarantined = %v", res.Quarantined)
	}

	// The bad partition and its sidecar moved to quarantine/.
	if _, err := os.Stat(filepath.Join(dir, QuarantineDirName, "ho_day_001.tlho")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt partition still in store: %v", err)
	}
	recs, err := LoadQuarantine(nil, dir)
	if err != nil || len(recs) != 1 || recs[0].Day != 1 || recs[0].Class != CorruptTruncated {
		t.Fatalf("quarantine log = %+v, %v", recs, err)
	}
	if days := QuarantinedDays(recs); len(days) != 1 || days[0] != 1 {
		t.Fatalf("quarantined days = %v", days)
	}

	// Survivors serve: manifest usable, days 0 and 2 scan clean.
	m, err := s.Manifest()
	if err != nil || m == nil {
		t.Fatalf("manifest after scrub: %v, %v", m, err)
	}
	if len(m.Partitions) != 2 {
		t.Fatalf("manifest entries = %v", m.Partitions)
	}
	days, err := s.Days()
	if err != nil || len(days) != 2 || days[0] != 0 || days[1] != 2 {
		t.Fatalf("days = %v, %v", days, err)
	}
	if got := countRecords(t, s); got != 600 {
		t.Fatalf("surviving records = %d", got)
	}
	rep2, err := Verify(context.Background(), s)
	if err != nil || !rep2.OK() {
		t.Fatalf("store not clean after scrub: %+v, %v", rep2, err)
	}
}

// A corrupt sidecar on a clean partition must be dropped, not
// quarantined — the data is fine, only the accelerator is bad.
func TestScrubDropsCorruptIndexOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 300)
	idxPath := filepath.Join(dir, "ho_day_000.tlix")
	if err := os.WriteFile(idxPath, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Scrub(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 || len(res.IndexesDropped) != 1 {
		t.Fatalf("scrub result = %+v", res)
	}
	if _, err := os.Stat(idxPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt index still present: %v", err)
	}
	if got := countRecords(t, s); got != 300 {
		t.Fatalf("records = %d", got)
	}
}

// A manifest entry whose file vanished is dropped by Scrub so the
// survivors' manifest becomes usable again.
func TestScrubDropsMissingEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 100)
	writeTestPartition(t, s, 1, 0, 100)
	if err := os.Remove(filepath.Join(dir, "ho_day_001.tlho")); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "ho_day_001.tlix"))
	if m, err := s.Manifest(); err != nil || m != nil {
		t.Fatalf("manifest should be unusable before scrub: %v, %v", m, err)
	}
	res, err := Scrub(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EntriesDropped) != 1 {
		t.Fatalf("scrub result = %+v", res)
	}
	m, err := s.Manifest()
	if err != nil || m == nil || len(m.Partitions) != 1 {
		t.Fatalf("manifest after scrub: %+v, %v", m, err)
	}
}

// The manifest write path must go through the atomic-publish
// discipline: a failed rename leaves the previous MANIFEST intact.
func TestManifestRenameFailureKeepsOldManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestPartition(t, s, 0, 0, 100)

	ff := faultfs.NewFault(nil, faultfs.Plan{Rules: []faultfs.Rule{
		{Op: faultfs.OpRename, Path: ManifestName, Kind: faultfs.KindErr},
	}})
	fs2, err := NewFileStoreOpts(dir, FileStoreOptions{FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs2.AppendPartition(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Timestamp: DayStart(1).UnixMilli()}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Close should surface the manifest publish failure: %v", err)
	}
	// Old state intact: one partition, manifest still usable.
	after, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := after.Manifest()
	if err != nil || m == nil || len(m.Partitions) != 1 {
		t.Fatalf("manifest after failed publish: %+v, %v", m, err)
	}
}
