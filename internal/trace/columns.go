package trace

import (
	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

// ColumnBatch is the structure-of-arrays (SoA) view of one decoded run
// of records: every field lives in its own parallel slice, all of the
// same length. The v2 block codec decodes straight into this layout
// (its payload is already columnar), so a column-native scan never
// materializes []Record at all; stores without native column support
// transpose record batches into it via FromRecords.
//
// RAT pairs stay packed exactly as stored on the wire — source nibble
// high, target nibble low — so batch consumers that only classify the
// handover type can mask the low nibble without unpacking. Fields
// outside the scan's column projection are present but hold unspecified
// values, mirroring the Record contract.
type ColumnBatch struct {
	Timestamps []int64
	UEs        []UEID
	TACs       []devices.TAC
	Sources    []topology.SectorID
	Targets    []topology.SectorID
	Causes     []causes.Code
	// RATs holds the packed RAT byte of each record: SourceRAT<<4 | TargetRAT.
	RATs      []uint8
	Results   []Result
	Durations []float32
}

// Len returns the number of records in the batch.
func (b *ColumnBatch) Len() int { return len(b.Timestamps) }

// resize sets every column to length n, reusing capacity. Newly exposed
// entries hold unspecified values; callers overwrite what they project.
func (b *ColumnBatch) resize(n int) {
	b.Timestamps = growCol(b.Timestamps, n)
	b.UEs = growCol(b.UEs, n)
	b.TACs = growCol(b.TACs, n)
	b.Sources = growCol(b.Sources, n)
	b.Targets = growCol(b.Targets, n)
	b.Causes = growCol(b.Causes, n)
	b.RATs = growCol(b.RATs, n)
	b.Results = growCol(b.Results, n)
	b.Durations = growCol(b.Durations, n)
}

func growCol[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// FromRecords transposes recs into the batch, replacing its contents.
func (b *ColumnBatch) FromRecords(recs []Record) {
	b.resize(len(recs))
	for i := range recs {
		r := &recs[i]
		b.Timestamps[i] = r.Timestamp
		b.UEs[i] = r.UE
		b.TACs[i] = r.TAC
		b.Sources[i] = r.Source
		b.Targets[i] = r.Target
		b.Causes[i] = r.Cause
		b.RATs[i] = byte(r.SourceRAT)<<4 | byte(r.TargetRAT)&0x0f
		b.Results[i] = r.Result
		b.Durations[i] = r.DurationMs
	}
}

// Record copies row i into rec (unpacking the RAT byte).
func (b *ColumnBatch) Record(i int, rec *Record) {
	rec.Timestamp = b.Timestamps[i]
	rec.UE = b.UEs[i]
	rec.TAC = b.TACs[i]
	rec.Source = b.Sources[i]
	rec.Target = b.Targets[i]
	rec.Cause = b.Causes[i]
	rec.SourceRAT = topology.RAT(b.RATs[i] >> 4)
	rec.TargetRAT = topology.RAT(b.RATs[i] & 0x0f)
	rec.Result = b.Results[i]
	rec.DurationMs = b.Durations[i]
}

// FilterRange compacts the batch to rows with
// minTS <= Timestamp <= maxTS, preserving order across every column,
// and returns the new length.
func (b *ColumnBatch) FilterRange(minTS, maxTS int64) int {
	n := 0
	for i, ts := range b.Timestamps {
		if ts >= minTS && ts <= maxTS {
			if n != i {
				b.Timestamps[n] = ts
				b.UEs[n] = b.UEs[i]
				b.TACs[n] = b.TACs[i]
				b.Sources[n] = b.Sources[i]
				b.Targets[n] = b.Targets[i]
				b.Causes[n] = b.Causes[i]
				b.RATs[n] = b.RATs[i]
				b.Results[n] = b.Results[i]
				b.Durations[n] = b.Durations[i]
			}
			n++
		}
	}
	b.resize(n)
	return n
}
