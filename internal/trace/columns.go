package trace

import (
	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

// ColumnBatch is the structure-of-arrays (SoA) view of one decoded run
// of records: every field lives in its own parallel slice, all of the
// same length. The v2 block codec decodes straight into this layout
// (its payload is already columnar), so a column-native scan never
// materializes []Record at all; stores without native column support
// transpose record batches into it via FromRecords.
//
// RAT pairs stay packed exactly as stored on the wire — source nibble
// high, target nibble low — so batch consumers that only classify the
// handover type can mask the low nibble without unpacking. Fields
// outside the scan's column projection are present but hold unspecified
// values, mirroring the Record contract.
type ColumnBatch struct {
	Timestamps []int64
	UEs        []UEID
	TACs       []devices.TAC
	Sources    []topology.SectorID
	Targets    []topology.SectorID
	Causes     []causes.Code
	// RATs holds the packed RAT byte of each record: SourceRAT<<4 | TargetRAT.
	RATs      []uint8
	Results   []Result
	Durations []float32
}

// Len returns the number of records in the batch.
func (b *ColumnBatch) Len() int { return len(b.Timestamps) }

// resize sets every column to length n, reusing capacity. Newly exposed
// entries hold unspecified values; callers overwrite what they project.
func (b *ColumnBatch) resize(n int) {
	b.Timestamps = growCol(b.Timestamps, n)
	b.UEs = growCol(b.UEs, n)
	b.TACs = growCol(b.TACs, n)
	b.Sources = growCol(b.Sources, n)
	b.Targets = growCol(b.Targets, n)
	b.Causes = growCol(b.Causes, n)
	b.RATs = growCol(b.RATs, n)
	b.Results = growCol(b.Results, n)
	b.Durations = growCol(b.Durations, n)
}

func growCol[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// extend sets every column to length n like resize, but preserves the
// existing rows when the columns must grow (resize may not: decode paths
// overwrite everything anyway). Used by the append paths.
func (b *ColumnBatch) extend(n int) {
	b.Timestamps = growColKeep(b.Timestamps, n)
	b.UEs = growColKeep(b.UEs, n)
	b.TACs = growColKeep(b.TACs, n)
	b.Sources = growColKeep(b.Sources, n)
	b.Targets = growColKeep(b.Targets, n)
	b.Causes = growColKeep(b.Causes, n)
	b.RATs = growColKeep(b.RATs, n)
	b.Results = growColKeep(b.Results, n)
	b.Durations = growColKeep(b.Durations, n)
}

func growColKeep[T any](s []T, n int) []T {
	if cap(s) < n {
		t := make([]T, n, max(n, 2*cap(s)))
		copy(t, s)
		return t
	}
	return s[:n]
}

// Reset empties the batch, keeping column capacity for reuse.
func (b *ColumnBatch) Reset() { b.resize(0) }

// AppendRecord appends one record as a new row (packing the RAT pair).
// This is the generation-side entry point: producers push rows straight
// into column storage instead of materializing []Record.
func (b *ColumnBatch) AppendRecord(rec *Record) {
	b.Timestamps = append(b.Timestamps, rec.Timestamp)
	b.UEs = append(b.UEs, rec.UE)
	b.TACs = append(b.TACs, rec.TAC)
	b.Sources = append(b.Sources, rec.Source)
	b.Targets = append(b.Targets, rec.Target)
	b.Causes = append(b.Causes, rec.Cause)
	b.RATs = append(b.RATs, byte(rec.SourceRAT)<<4|byte(rec.TargetRAT)&0x0f)
	b.Results = append(b.Results, rec.Result)
	b.Durations = append(b.Durations, rec.DurationMs)
}

// AppendColumns appends every row of src to b: nine contiguous slice
// copies, no per-row work.
func (b *ColumnBatch) AppendColumns(src *ColumnBatch) {
	b.Timestamps = append(b.Timestamps, src.Timestamps...)
	b.UEs = append(b.UEs, src.UEs...)
	b.TACs = append(b.TACs, src.TACs...)
	b.Sources = append(b.Sources, src.Sources...)
	b.Targets = append(b.Targets, src.Targets...)
	b.Causes = append(b.Causes, src.Causes...)
	b.RATs = append(b.RATs, src.RATs...)
	b.Results = append(b.Results, src.Results...)
	b.Durations = append(b.Durations, src.Durations...)
}

// AppendGather appends src's rows selected by perm, in perm order. It is
// the columnar form of "copy these records out in sorted/sharded order":
// one pass per column over a contiguous index list.
func (b *ColumnBatch) AppendGather(src *ColumnBatch, perm []int32) {
	base := b.Len()
	b.extend(base + len(perm))
	for i, p := range perm {
		b.Timestamps[base+i] = src.Timestamps[p]
	}
	for i, p := range perm {
		b.UEs[base+i] = src.UEs[p]
	}
	for i, p := range perm {
		b.TACs[base+i] = src.TACs[p]
	}
	for i, p := range perm {
		b.Sources[base+i] = src.Sources[p]
	}
	for i, p := range perm {
		b.Targets[base+i] = src.Targets[p]
	}
	for i, p := range perm {
		b.Causes[base+i] = src.Causes[p]
	}
	for i, p := range perm {
		b.RATs[base+i] = src.RATs[p]
	}
	for i, p := range perm {
		b.Results[base+i] = src.Results[p]
	}
	for i, p := range perm {
		b.Durations[base+i] = src.Durations[p]
	}
}

// appendRecords appends recs as new rows, transposing column-at-a-time
// (one pass per field) rather than row-at-a-time.
func (b *ColumnBatch) appendRecords(recs []Record) {
	base := b.Len()
	b.extend(base + len(recs))
	for i := range recs {
		b.Timestamps[base+i] = recs[i].Timestamp
	}
	for i := range recs {
		b.UEs[base+i] = recs[i].UE
	}
	for i := range recs {
		b.TACs[base+i] = recs[i].TAC
	}
	for i := range recs {
		b.Sources[base+i] = recs[i].Source
	}
	for i := range recs {
		b.Targets[base+i] = recs[i].Target
	}
	for i := range recs {
		b.Causes[base+i] = recs[i].Cause
	}
	for i := range recs {
		b.RATs[base+i] = byte(recs[i].SourceRAT)<<4 | byte(recs[i].TargetRAT)&0x0f
	}
	for i := range recs {
		b.Results[base+i] = recs[i].Result
	}
	for i := range recs {
		b.Durations[base+i] = recs[i].DurationMs
	}
}

// appendRange appends rows [lo, hi) of src to b: nine contiguous copies.
func (b *ColumnBatch) appendRange(src *ColumnBatch, lo, hi int) {
	b.Timestamps = append(b.Timestamps, src.Timestamps[lo:hi]...)
	b.UEs = append(b.UEs, src.UEs[lo:hi]...)
	b.TACs = append(b.TACs, src.TACs[lo:hi]...)
	b.Sources = append(b.Sources, src.Sources[lo:hi]...)
	b.Targets = append(b.Targets, src.Targets[lo:hi]...)
	b.Causes = append(b.Causes, src.Causes[lo:hi]...)
	b.RATs = append(b.RATs, src.RATs[lo:hi]...)
	b.Results = append(b.Results, src.Results[lo:hi]...)
	b.Durations = append(b.Durations, src.Durations[lo:hi]...)
}

// FromRecords transposes recs into the batch, replacing its contents.
func (b *ColumnBatch) FromRecords(recs []Record) {
	b.resize(len(recs))
	for i := range recs {
		r := &recs[i]
		b.Timestamps[i] = r.Timestamp
		b.UEs[i] = r.UE
		b.TACs[i] = r.TAC
		b.Sources[i] = r.Source
		b.Targets[i] = r.Target
		b.Causes[i] = r.Cause
		b.RATs[i] = byte(r.SourceRAT)<<4 | byte(r.TargetRAT)&0x0f
		b.Results[i] = r.Result
		b.Durations[i] = r.DurationMs
	}
}

// Records transposes the batch into out (unpacking RAT bytes), one pass
// per column — the inverse of FromRecords, and much cheaper than a
// per-row Record loop when draining whole blocks. out must have exactly
// Len() rows.
func (b *ColumnBatch) Records(out []Record) {
	for i := range out {
		out[i].Timestamp = b.Timestamps[i]
	}
	for i := range out {
		out[i].UE = b.UEs[i]
	}
	for i := range out {
		out[i].TAC = b.TACs[i]
	}
	for i := range out {
		out[i].Source = b.Sources[i]
	}
	for i := range out {
		out[i].Target = b.Targets[i]
	}
	for i := range out {
		out[i].Cause = b.Causes[i]
	}
	for i := range out {
		out[i].SourceRAT = topology.RAT(b.RATs[i] >> 4)
		out[i].TargetRAT = topology.RAT(b.RATs[i] & 0x0f)
	}
	for i := range out {
		out[i].Result = b.Results[i]
	}
	for i := range out {
		out[i].DurationMs = b.Durations[i]
	}
}

// Record copies row i into rec (unpacking the RAT byte).
func (b *ColumnBatch) Record(i int, rec *Record) {
	rec.Timestamp = b.Timestamps[i]
	rec.UE = b.UEs[i]
	rec.TAC = b.TACs[i]
	rec.Source = b.Sources[i]
	rec.Target = b.Targets[i]
	rec.Cause = b.Causes[i]
	rec.SourceRAT = topology.RAT(b.RATs[i] >> 4)
	rec.TargetRAT = topology.RAT(b.RATs[i] & 0x0f)
	rec.Result = b.Results[i]
	rec.DurationMs = b.Durations[i]
}

// FilterRange compacts the batch to rows with
// minTS <= Timestamp <= maxTS, preserving order across every column,
// and returns the new length.
func (b *ColumnBatch) FilterRange(minTS, maxTS int64) int {
	n := 0
	for i, ts := range b.Timestamps {
		if ts >= minTS && ts <= maxTS {
			if n != i {
				b.Timestamps[n] = ts
				b.UEs[n] = b.UEs[i]
				b.TACs[n] = b.TACs[i]
				b.Sources[n] = b.Sources[i]
				b.Targets[n] = b.Targets[i]
				b.Causes[n] = b.Causes[i]
				b.RATs[n] = b.RATs[i]
				b.Results[n] = b.Results[i]
				b.Durations[n] = b.Durations[i]
			}
			n++
		}
	}
	b.resize(n)
	return n
}
