package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func encodeV3(t testing.TB, recs []Record, opts WriterV3Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV3(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("writer count = %d, want %d", w.Count(), len(recs))
	}
	w.Release()
	return buf.Bytes()
}

func TestCodecV3RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base := StudyStart.UnixMilli()
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		for _, opts := range []WriterV3Options{
			{BlockRecords: 64},
			{BlockRecords: 64, Compress: true},
			{BlockRecords: 64, FastCompress: true},
			{}, // default block size
		} {
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = randRecord(r, base)
			}
			got := decodeAll(t, encodeV3(t, recs, opts))
			if len(got) != n {
				t.Fatalf("opts=%+v n=%d: decoded %d records", opts, n, len(got))
			}
			for i := range recs {
				want := recs[i]
				want.DurationMs = quantizeDuration(want.DurationMs)
				if got[i] != want {
					t.Fatalf("opts=%+v record %d:\n in  %+v\n out %+v", opts, i, want, got[i])
				}
			}
		}
	}
}

// TestCodecV3ConstantColumns exercises the w=0 degenerate packing: a
// block where every variable-width column is constant stores only width
// bytes and references, and must still round-trip exactly.
func TestCodecV3ConstantColumns(t *testing.T) {
	base := StudyStart.UnixMilli()
	recs := make([]Record, 96)
	for i := range recs {
		recs[i] = Record{
			Timestamp: base, UE: 7, TAC: 35_000_001,
			Source: 3, Target: 9, SourceRAT: 3, TargetRAT: 2,
			DurationMs: 12.5,
		}
	}
	for _, opts := range []WriterV3Options{{BlockRecords: 64}, {BlockRecords: 64, FastCompress: true}} {
		got := decodeAll(t, encodeV3(t, recs, opts))
		if len(got) != len(recs) {
			t.Fatalf("decoded %d of %d", len(got), len(recs))
		}
		for i := range recs {
			want := recs[i]
			want.DurationMs = quantizeDuration(want.DurationMs)
			if got[i] != want {
				t.Fatalf("record %d:\n in  %+v\n out %+v", i, want, got[i])
			}
		}
	}
}

// TestCodecV3MatchesV2Decode is the cross-version property the CI
// determinism matrix pins: the same records written through v2 and v3
// (any compression) decode to bit-identical record sequences.
func TestCodecV3MatchesV2Decode(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(count%200) + 1
		recs := make([]Record, n)
		base := StudyStart.UnixMilli()
		for i := range recs {
			recs[i] = randRecord(r, base)
		}
		fromV2 := decodeAll(t, encodeV2(t, recs, WriterV2Options{BlockRecords: 32}))
		for _, opts := range []WriterV3Options{
			{BlockRecords: 32},
			{BlockRecords: 32, Compress: true},
			{BlockRecords: 32, FastCompress: true},
		} {
			fromV3 := decodeAll(t, encodeV3(t, recs, opts))
			if len(fromV2) != len(fromV3) {
				return false
			}
			for i := range fromV2 {
				if fromV2[i] != fromV3[i] {
					t.Logf("opts %+v record %d:\n v2 %+v\n v3 %+v", opts, i, fromV2[i], fromV3[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecV3Columns checks the SoA decode path against the record path
// and the column projection contract on v3 streams.
func TestCodecV3Columns(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	base := StudyStart.UnixMilli()
	recs := make([]Record, 300)
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	data := encodeV3(t, recs, WriterV3Options{BlockRecords: 64, FastCompress: true})

	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var cb ColumnBatch
	var got []Record
	for {
		n, err := rd.NextColumns(&cb)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			var rec Record
			cb.Record(i, &rec)
			got = append(got, rec)
		}
	}
	want := decodeAll(t, data)
	if len(got) != len(want) {
		t.Fatalf("columns decoded %d, records %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d:\n cols %+v\n recs %+v", i, got[i], want[i])
		}
	}

	// Projection: timestamps and UEs only; both must match full decode.
	rd2, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rd2.SetProjection(ColUE)
	var cb2 ColumnBatch
	idx := 0
	for {
		n, err := rd2.NextColumns(&cb2)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if cb2.Timestamps[i] != want[idx].Timestamp || cb2.UEs[i] != want[idx].UE {
				t.Fatalf("projected row %d: ts=%d ue=%d, want ts=%d ue=%d",
					idx, cb2.Timestamps[i], cb2.UEs[i], want[idx].Timestamp, want[idx].UE)
			}
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("projected decode yielded %d rows, want %d", idx, len(want))
	}
}

// TestCodecV3RangePrunesBlocks: v3 blocks outside the requested window
// are skipped without decoding, like v2.
func TestCodecV3RangePrunesBlocks(t *testing.T) {
	base := StudyStart.UnixMilli()
	recs := make([]Record, 512)
	for i := range recs {
		recs[i] = Record{Timestamp: base + int64(i)*1000, UE: UEID(i), TAC: 35_000_000, Source: 1, Target: 2, DurationMs: 50}
	}
	data := encodeV3(t, recs, WriterV3Options{BlockRecords: 64})
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rd.SetTimeRange(recs[200].Timestamp, recs[260].Timestamp)
	var rec Record
	n := 0
	for {
		err := rd.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 61 {
		t.Fatalf("windowed decode yielded %d records, want 61", n)
	}
	st := rd.Stats()
	if st.BlocksSkipped == 0 {
		t.Fatalf("no blocks pruned: %+v", st)
	}
}

// TestCodecV3RejectsCorrupt flips descriptor and payload bytes of valid
// v3 streams (all compression modes) and requires a declared error kind,
// never a panic.
func TestCodecV3RejectsCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	base := StudyStart.UnixMilli()
	recs := make([]Record, 130)
	for i := range recs {
		recs[i] = randRecord(r, base)
	}
	for _, opts := range []WriterV3Options{
		{BlockRecords: 64},
		{BlockRecords: 64, Compress: true},
		{BlockRecords: 64, FastCompress: true},
	} {
		data := encodeV3(t, recs, opts)
		for pos := HeaderSize; pos < len(data); pos++ {
			mut := bytes.Clone(data)
			mut[pos] ^= 0xff
			rd, err := NewReader(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			var rec Record
			for {
				if err := rd.Next(&rec); err != nil {
					if err != io.EOF && err != ErrTruncated && !isCorrupt(err) {
						t.Fatalf("opts=%+v pos=%d: undeclared error kind: %v", opts, pos, err)
					}
					break
				}
			}
		}
		// Truncations at every length must also land on a declared kind.
		for cut := HeaderSize; cut < len(data); cut += 7 {
			rd, err := NewReader(bytes.NewReader(data[:cut]))
			if err != nil {
				continue
			}
			var rec Record
			for {
				if err := rd.Next(&rec); err != nil {
					if err != io.EOF && err != ErrTruncated && !isCorrupt(err) {
						t.Fatalf("opts=%+v cut=%d: undeclared error kind: %v", opts, cut, err)
					}
					break
				}
			}
		}
	}
}

// TestCodecV3HeaderNegotiation: flag combinations the reader must
// reject at the header.
func TestCodecV3HeaderNegotiation(t *testing.T) {
	mk := func(flags uint16) []byte {
		return append([]byte("TLHO"), 3, 0, byte(flags), byte(flags>>8))
	}
	if _, err := NewReader(bytes.NewReader(mk(FlagFlate | FlagTLZ))); err == nil {
		t.Fatal("reader accepted v3 stream with both compression flags")
	}
	if _, err := NewReader(bytes.NewReader(mk(1 << 5))); err == nil {
		t.Fatal("reader accepted v3 stream with unknown flags")
	}
	for _, flags := range []uint16{0, FlagFlate, FlagTLZ} {
		rd, err := NewReader(bytes.NewReader(mk(flags)))
		if err != nil {
			t.Fatalf("flags %#x rejected: %v", flags, err)
		}
		var rec Record
		if err := rd.Next(&rec); err != io.EOF {
			t.Fatalf("empty v3 stream: got %v, want EOF", err)
		}
	}
	// v2 streams must keep rejecting the TLZ flag.
	hdr := append([]byte("TLHO"), 2, 0, byte(FlagTLZ), 0)
	if _, err := NewReader(bytes.NewReader(hdr)); err == nil {
		t.Fatal("reader accepted v2 stream with TLZ flag")
	}
	if _, err := NewWriterV3(io.Discard, WriterV3Options{Compress: true, FastCompress: true}); err == nil {
		t.Fatal("writer accepted both compression options")
	}
}

// TestTLZRoundTrip: the fast compressor round-trips arbitrary buffers —
// incompressible random bytes, highly repetitive runs, and everything
// between — and the strict decompressor rejects truncated input.
func TestTLZRoundTrip(t *testing.T) {
	table := make([]int32, tlzTableSize)
	f := func(seed int64, kind uint8, size uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size%8192) + 1
		src := make([]byte, n)
		switch kind % 3 {
		case 0: // incompressible
			r.Read(src)
		case 1: // constant
			for i := range src {
				src[i] = 0x42
			}
		default: // repetitive structure with noise
			for i := range src {
				src[i] = byte(i % 17)
				if r.Intn(20) == 0 {
					src[i] = byte(r.Intn(256))
				}
			}
		}
		comp := appendTLZ(nil, src, table)
		out := make([]byte, n)
		if err := tlzDecompress(out, comp); err != nil {
			t.Logf("decompress failed: %v", err)
			return false
		}
		if !bytes.Equal(out, src) {
			return false
		}
		if len(comp) > 1 {
			if err := tlzDecompress(out, comp[:len(comp)-1]); err == nil {
				// A truncated stream may still parse if the cut lands on
				// a sequence boundary, but then it must underrun the
				// output — which the length check catches. Reaching here
				// means silent acceptance.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func isCorrupt(err error) bool { return errors.Is(err, ErrCorruptBlock) }
