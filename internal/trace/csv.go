package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ExportCSV writes a day partition as CSV for interoperability with
// external analysis tooling (one row per handover, schema mirroring the
// paper's six captured variables plus the TAC join key).
//
// The csv.Writer buffers rows and swallows write errors until Flush, so
// every return path — including iterator failures partway through —
// flushes and surfaces cw.Error(); otherwise a short write to the
// underlying writer would be silently dropped and the caller would see a
// row count that was never durably written.
func ExportCSV(w io.Writer, it RecordIterator) (int64, error) {
	cw := csv.NewWriter(w)
	// finish flushes buffered rows and folds the writer error into the
	// primary one (the primary error wins; a flush failure only surfaces
	// when nothing else went wrong).
	finish := func(n int64, primary error) (int64, error) {
		cw.Flush()
		if err := cw.Error(); primary == nil && err != nil {
			return n, fmt.Errorf("trace: flushing csv: %w", err)
		}
		return n, primary
	}
	header := []string{
		"timestamp_ms", "ue", "tac", "source_sector", "target_sector",
		"source_rat", "target_rat", "result", "cause", "duration_ms",
	}
	if err := cw.Write(header); err != nil {
		return finish(0, err)
	}
	var rec Record
	var n int64
	for {
		ok, err := it.Next(&rec)
		if err != nil {
			return finish(n, err)
		}
		if !ok {
			break
		}
		row := []string{
			strconv.FormatInt(rec.Timestamp, 10),
			strconv.FormatUint(uint64(rec.UE), 10),
			strconv.FormatUint(uint64(rec.TAC), 10),
			strconv.FormatUint(uint64(rec.Source), 10),
			strconv.FormatUint(uint64(rec.Target), 10),
			rec.SourceRAT.String(),
			rec.TargetRAT.String(),
			rec.Result.String(),
			strconv.FormatUint(uint64(rec.Cause), 10),
			strconv.FormatFloat(float64(rec.DurationMs), 'f', 1, 32),
		}
		if err := cw.Write(row); err != nil {
			return finish(n, err)
		}
		n++
	}
	return finish(n, nil)
}
