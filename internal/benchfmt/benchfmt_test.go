package benchfmt

import (
	"strings"
	"testing"
)

const baseRun = `goos: linux
goarch: amd64
pkg: telcolens
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScan/raw/v1-8         	      15	  34199142 ns/op	  34361823 records/s
BenchmarkScan/raw/v2-8         	      15	  24005239 ns/op	  48953731 records/s
BenchmarkScanSharded/shards=4-8	      10	  52000000 ns/op
PASS
ok  	telcolens	33.567s
`

func TestParse(t *testing.T) {
	res, err := Parse(strings.NewReader(baseRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(res))
	}
	v1, ok := res["BenchmarkScan/raw/v1"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", res)
	}
	if v1.MedianNs() != 34199142 {
		t.Fatalf("median = %g", v1.MedianNs())
	}
}

func TestParseMultipleCountsUsesMedian(t *testing.T) {
	runs := `BenchmarkScan-8   10   100 ns/op
BenchmarkScan-8   10   300 ns/op
BenchmarkScan-8   10   120 ns/op
`
	res, err := Parse(strings.NewReader(runs))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkScan"].MedianNs(); got != 120 {
		t.Fatalf("median of {100,300,120} = %g, want 120", got)
	}
}

// TestGateFailsOnInjectedSlowdown is the acceptance check for the CI
// bench gate: a deliberate 20% slowdown must trip the 10% threshold,
// and an unchanged run must pass.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	old, err := Parse(strings.NewReader(baseRun))
	if err != nil {
		t.Fatal(err)
	}
	slow := strings.NewReader(`BenchmarkScan/raw/v1-8    15   41038970 ns/op
BenchmarkScan/raw/v2-8    15   24005239 ns/op
BenchmarkScanSharded/shards=4-8  10  52000000 ns/op
`)
	newRes, err := Parse(slow)
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare(old, newRes, 0.10)
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkScan/raw/v1" {
		t.Fatalf("regressions = %+v, want exactly the 20%% slowdown", regs)
	}
	if regs[0].DeltaPct < 19 || regs[0].DeltaPct > 21 {
		t.Fatalf("delta = %.1f%%, want ~20%%", regs[0].DeltaPct)
	}

	// Identical runs pass.
	same, _ := Parse(strings.NewReader(baseRun))
	if regs := Compare(old, same, 0.10).Regressions(); len(regs) != 0 {
		t.Fatalf("identical runs flagged: %+v", regs)
	}

	// A small improvement passes too.
	fast, _ := Parse(strings.NewReader(`BenchmarkScan/raw/v1-8  15  30000000 ns/op
BenchmarkScan/raw/v2-8  15  23000000 ns/op
BenchmarkScanSharded/shards=4-8  10  51000000 ns/op
`))
	if regs := Compare(old, fast, 0.10).Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

// TestCompareTolerateMissingPairs: renamed or new benchmarks are listed
// but never gate (otherwise every benchmark rename would block CI).
func TestCompareTolerateMissingPairs(t *testing.T) {
	old, _ := Parse(strings.NewReader("BenchmarkOld-8  10  100 ns/op\nBenchmarkShared-8  10  100 ns/op\n"))
	new_, _ := Parse(strings.NewReader("BenchmarkNew-8  10  9999 ns/op\nBenchmarkShared-8  10  101 ns/op\n"))
	rep := Compare(old, new_, 0.10)
	if len(rep.Regressions()) != 0 {
		t.Fatalf("unpaired benchmarks gated: %+v", rep.Regressions())
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "BenchmarkOld" {
		t.Fatalf("OnlyOld = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "BenchmarkNew" {
		t.Fatalf("OnlyNew = %v", rep.OnlyNew)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].Name != "BenchmarkShared" {
		t.Fatalf("Entries = %+v", rep.Entries)
	}
}

func TestThresholdBoundary(t *testing.T) {
	old, _ := Parse(strings.NewReader("BenchmarkX-8  10  1000 ns/op\n"))
	within, _ := Parse(strings.NewReader("BenchmarkX-8  10  1099 ns/op\n"))
	if regs := Compare(old, within, 0.10).Regressions(); len(regs) != 0 {
		t.Fatalf("+9.9%% flagged at 10%% threshold: %+v", regs)
	}
	over, _ := Parse(strings.NewReader("BenchmarkX-8  10  1101 ns/op\n"))
	if regs := Compare(old, over, 0.10).Regressions(); len(regs) != 1 {
		t.Fatalf("+10.1%% not flagged at 10%% threshold")
	}
}
