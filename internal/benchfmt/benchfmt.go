// Package benchfmt parses `go test -bench` output and compares two runs
// for time/op regressions. It is the engine behind cmd/benchgate, the CI
// gate that fails a pull request when a benchmark slows down by more
// than the configured threshold against the main branch.
//
// Only the standard benchmark result lines are consumed:
//
//	BenchmarkScan/raw/v2-8   	      10	  24005239 ns/op	  48953731 records/s
//
// Repeated runs of the same benchmark (-count=N) are aggregated by the
// median ns/op, which is robust to one-off scheduler noise the way
// benchstat's summaries are.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// resultLineRE matches one benchmark result line: name, iteration count,
// ns/op. Extra metrics after ns/op are ignored.
var resultLineRE = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// Result aggregates every run of one benchmark in a file.
type Result struct {
	Name    string
	Runs    int
	NsPerOp []float64 // one entry per run, in file order
}

// MedianNs returns the median ns/op across runs.
func (r *Result) MedianNs() float64 {
	s := append([]float64(nil), r.NsPerOp...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Parse reads a `go test -bench` output stream and returns results keyed
// by benchmark name (GOMAXPROCS suffix stripped, so "-8" and "-4" runs
// of the same benchmark compare against each other).
func Parse(r io.Reader) (map[string]*Result, error) {
	out := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := resultLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := out[name]
		if res == nil {
			res = &Result{Name: name}
			out[name] = res
		}
		res.Runs++
		res.NsPerOp = append(res.NsPerOp, ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stripProcSuffix drops the trailing "-<gomaxprocs>" the bench runner
// appends to every name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Entry is one benchmark's old-vs-new comparison.
type Entry struct {
	Name       string  `json:"name"`
	OldNsPerOp float64 `json:"old_ns_per_op"`
	NewNsPerOp float64 `json:"new_ns_per_op"`
	DeltaPct   float64 `json:"delta_pct"` // positive = slower
	Regression bool    `json:"regression"`
}

// Report is the full comparison of two bench runs.
type Report struct {
	Threshold float64 `json:"threshold"`
	Entries   []Entry `json:"entries"`
	// OnlyOld / OnlyNew list benchmarks present in one side only (renamed
	// or newly added); they are reported but never gate.
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
}

// Regressions returns the entries that exceeded the threshold.
func (r *Report) Regressions() []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if e.Regression {
			out = append(out, e)
		}
	}
	return out
}

// SnapshotEntry is one benchmark's aggregated result in a Snapshot.
type SnapshotEntry struct {
	Name          string  `json:"name"`
	MedianNsPerOp float64 `json:"median_ns_per_op"`
	Runs          int     `json:"runs"`
}

// Snapshot is a point-in-time record of one bench run's medians — the
// shape committed as BENCH_baseline.json, the repo's performance
// trajectory anchor (see `make bench-baseline`). Entries are sorted by
// name so regenerating a snapshot on unchanged performance diffs clean.
type Snapshot struct {
	Benchmarks []SnapshotEntry `json:"benchmarks"`
}

// MakeSnapshot aggregates parsed results into a Snapshot.
func MakeSnapshot(res map[string]*Result) *Snapshot {
	s := &Snapshot{}
	for _, r := range res {
		s.Benchmarks = append(s.Benchmarks, SnapshotEntry{
			Name:          r.Name,
			MedianNsPerOp: r.MedianNs(),
			Runs:          r.Runs,
		})
	}
	sort.Slice(s.Benchmarks, func(i, j int) bool { return s.Benchmarks[i].Name < s.Benchmarks[j].Name })
	return s
}

// Compare builds the old-vs-new report. A benchmark regresses when its
// median time/op grew by more than threshold (e.g. 0.10 = +10%).
// Benchmarks present on only one side are listed informationally.
func Compare(old, new map[string]*Result, threshold float64) *Report {
	rep := &Report{Threshold: threshold}
	var names []string
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		} else {
			rep.OnlyOld = append(rep.OnlyOld, name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	sort.Strings(names)
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	for _, name := range names {
		o, n := old[name].MedianNs(), new[name].MedianNs()
		e := Entry{Name: name, OldNsPerOp: o, NewNsPerOp: n}
		if o > 0 {
			e.DeltaPct = (n - o) / o * 100
			e.Regression = n > o*(1+threshold)
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep
}
