// Package query serves ad-hoc slices of a handover trace store: a
// single subscriber's records, a tracking-area code, a sector, a time
// window, or any conjunction of them, plus small per-UE aggregates
// (handover counts, ping-pong bounces).
//
// The engine answers without scanning whole days by pruning in three
// stages, each cheaper than the next would be:
//
//  1. partition zone maps — the MANIFEST's per-partition [MinTS, MaxTS]
//     extents drop partitions outside the window, and UE-hash sharding
//     drops the shards a UE cannot live in;
//  2. partition bloom filters — the .tlix sidecar's UE/TAC/sector
//     filters drop partitions that definitely lack the key;
//  3. block summaries — the sidecar's per-block time extents and
//     UE/TAC blooms turn into a block allow-list pushed down to the v2
//     reader (SetBlockFilter), so excluded blocks are never decoded.
//
// Every stage is conservative: a missing, stale or corrupt index only
// widens the set of blocks decoded, never narrows the result. Exact
// predicates re-check every decoded row, so indexed and index-absent
// executions return byte-identical results.
//
// Queries run against an immutable View (the partition set at one
// manifest generation — partitions are write-once, so a pinned view is
// a consistent snapshot even while new days land), and results are
// memoized in a small LRU keyed on (normalized query, view generation).
package query

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"telcolens/internal/analysis"
	"telcolens/internal/trace"
)

// DefaultLimit is the row cap applied when Params.Limit is 0.
const DefaultLimit = 1000

// MaxLimit bounds the rows a single query may return.
const MaxLimit = 100000

// Params is one query: a conjunction of optional predicates. Nil/zero
// fields match everything.
type Params struct {
	// UE restricts to one subscriber.
	UE *trace.UEID
	// TAC restricts to one device type-allocation code.
	TAC *uint32
	// Sector restricts to records with the sector as source or target.
	Sector *uint32
	// From/To restrict to From <= Timestamp <= To (Unix milliseconds,
	// inclusive). Zero means unbounded on that side — the study starts
	// in 2024, so 0 is never a real timestamp.
	From, To int64
	// Limit caps the rows returned (0 = DefaultLimit, max MaxLimit).
	// When the cap is hit the result is marked Truncated.
	Limit int
	// Aggregate additionally computes a per-slice summary (handover
	// counts, outcome and HO-type split, and — for single-UE queries —
	// ping-pong bounces per standard window). Aggregation always scans
	// the full slice even after the row cap is hit.
	Aggregate bool
	// NoIndex disables index-based pruning (stage 2 and 3), forcing the
	// scan-fallback path. Results are identical; the flag exists for
	// cross-checking and benchmarks.
	NoIndex bool
}

// normalize resolves defaults and validates the window.
func (p Params) normalize() (Params, error) {
	if p.From != 0 && p.To != 0 && p.From > p.To {
		return p, fmt.Errorf("query: from %d after to %d", p.From, p.To)
	}
	if p.Limit < 0 {
		return p, fmt.Errorf("query: negative limit %d", p.Limit)
	}
	if p.Limit == 0 {
		p.Limit = DefaultLimit
	}
	if p.Limit > MaxLimit {
		p.Limit = MaxLimit
	}
	return p, nil
}

// CacheKey renders the normalized parameters as a canonical string:
// two queries with the same key return the same result against the
// same view generation.
func (p Params) CacheKey() string {
	key := make([]byte, 0, 64)
	if p.UE != nil {
		key = append(key, "ue="...)
		key = strconv.AppendUint(key, uint64(*p.UE), 10)
	}
	if p.TAC != nil {
		key = append(key, "&tac="...)
		key = strconv.AppendUint(key, uint64(*p.TAC), 10)
	}
	if p.Sector != nil {
		key = append(key, "&sector="...)
		key = strconv.AppendUint(key, uint64(*p.Sector), 10)
	}
	key = append(key, "&from="...)
	key = strconv.AppendInt(key, p.From, 10)
	key = append(key, "&to="...)
	key = strconv.AppendInt(key, p.To, 10)
	key = append(key, "&limit="...)
	key = strconv.AppendInt(key, int64(p.Limit), 10)
	if p.Aggregate {
		key = append(key, "&agg"...)
	}
	if p.NoIndex {
		key = append(key, "&noindex"...)
	}
	return string(key)
}

// matches is the exact row predicate every decoded record is checked
// against, independent of any index pruning.
func (p *Params) matches(ts int64, ue trace.UEID, tac uint32, src, dst uint32) bool {
	if p.From != 0 && ts < p.From {
		return false
	}
	if p.To != 0 && ts > p.To {
		return false
	}
	if p.UE != nil && ue != *p.UE {
		return false
	}
	if p.TAC != nil && tac != *p.TAC {
		return false
	}
	if p.Sector != nil && src != *p.Sector && dst != *p.Sector {
		return false
	}
	return true
}

// Row is one matched record, shaped for JSON/CSV output.
type Row struct {
	Timestamp  int64   `json:"ts"`
	UE         uint32  `json:"ue"`
	TAC        uint32  `json:"tac"`
	Source     uint32  `json:"source"`
	Target     uint32  `json:"target"`
	SourceRAT  string  `json:"source_rat"`
	TargetRAT  string  `json:"target_rat"`
	Result     string  `json:"result"`
	Cause      uint16  `json:"cause,omitempty"`
	DurationMs float32 `json:"duration_ms"`
}

// rowFrom shapes one record.
func rowFrom(rec *trace.Record) Row {
	return Row{
		Timestamp:  rec.Timestamp,
		UE:         uint32(rec.UE),
		TAC:        uint32(rec.TAC),
		Source:     uint32(rec.Source),
		Target:     uint32(rec.Target),
		SourceRAT:  rec.SourceRAT.String(),
		TargetRAT:  rec.TargetRAT.String(),
		Result:     rec.Result.String(),
		Cause:      uint16(rec.Cause),
		DurationMs: rec.DurationMs,
	}
}

// Metrics reports what one query execution touched. BlocksPruned
// counts v2 blocks excluded without decoding — by the time range, the
// block allow-list, or a whole-partition index prune; BlocksDecoded
// counts blocks whose payload was read. The two are the query layer's
// efficiency contract: a point query should prune nearly everything.
type Metrics struct {
	PartitionsConsidered int64 `json:"partitions_considered"`
	PartitionsPruned     int64 `json:"partitions_pruned"`
	PartitionsScanned    int64 `json:"partitions_scanned"`
	BlocksPruned         int64 `json:"blocks_pruned"`
	BlocksDecoded        int64 `json:"blocks_decoded"`
	BytesRead            int64 `json:"bytes_read"`
	RowsScanned          int64 `json:"rows_scanned"`
}

// Result is one query's answer.
type Result struct {
	// Gen is the view generation the query ran against.
	Gen uint64 `json:"gen"`
	// Rows are the matched records in canonical (day, shard, storage)
	// order, capped at the limit.
	Rows []Row `json:"rows"`
	// Truncated reports that the row cap was hit before the slice was
	// exhausted.
	Truncated bool `json:"truncated,omitempty"`
	// Aggregate is the slice summary when Params.Aggregate was set.
	Aggregate *analysis.UESliceAggregate `json:"aggregate,omitempty"`
	// Metrics reports what the execution touched. Cached results carry
	// the metrics of the execution that produced them.
	Metrics Metrics `json:"metrics"`
}

// csvHeader is the column order WriteCSV emits.
var csvHeader = []string{
	"ts", "ue", "tac", "source", "target",
	"source_rat", "target_rat", "result", "cause", "duration_ms",
}

// WriteCSV renders the result's rows as CSV with a header line.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for i := range r.Rows {
		row := &r.Rows[i]
		rec[0] = strconv.FormatInt(row.Timestamp, 10)
		rec[1] = strconv.FormatUint(uint64(row.UE), 10)
		rec[2] = strconv.FormatUint(uint64(row.TAC), 10)
		rec[3] = strconv.FormatUint(uint64(row.Source), 10)
		rec[4] = strconv.FormatUint(uint64(row.Target), 10)
		rec[5] = row.SourceRAT
		rec[6] = row.TargetRAT
		rec[7] = row.Result
		rec[8] = strconv.FormatUint(uint64(row.Cause), 10)
		rec[9] = strconv.FormatFloat(float64(row.DurationMs), 'g', -1, 32)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// View pins the partition set of one manifest generation. Partitions
// are write-once, so a view stays internally consistent while new days
// land; queries against it see exactly the generation's data.
type View struct {
	// Gen is the manifest generation the view was built from (0 when
	// the store has no usable manifest).
	Gen uint64
	// Partitions lists the view's partitions in canonical order. Zone
	// pruning uses each entry's MinTS/MaxTS/Records; entries built
	// without a manifest carry no statistics (hasStats false).
	Partitions []trace.PartitionInfo

	hasStats bool
	// shardsOf caches, per day, the shard modulus when the day's shard
	// set is exactly {0..k-1} — the layout ShardOf writes — so a UE
	// query can drop the day's other shards with zero false negatives.
	shardsOf map[int]int
}

// NewView snapshots the store's current partition set. Stores with a
// usable manifest get zone statistics and a generation; others fall
// back to the bare partition listing (every partition is considered).
func NewView(s trace.Store) (*View, error) {
	v := &View{}
	if mr, ok := s.(trace.ManifestReader); ok {
		m, err := mr.Manifest()
		if err != nil {
			return nil, err
		}
		if m != nil {
			v.Gen = m.Gen
			v.Partitions = append([]trace.PartitionInfo(nil), m.Partitions...)
			v.hasStats = true
		}
	}
	if !v.hasStats {
		parts, err := s.Partitions()
		if err != nil {
			return nil, err
		}
		v.Partitions = make([]trace.PartitionInfo, len(parts))
		for i, p := range parts {
			v.Partitions[i] = trace.PartitionInfo{Day: p.Day, Shard: p.Shard}
		}
	}
	sort.Slice(v.Partitions, func(i, j int) bool {
		return v.Partitions[i].Partition().Less(v.Partitions[j].Partition())
	})
	v.shardsOf = make(map[int]int)
	byDay := make(map[int][]int)
	for i := range v.Partitions {
		byDay[v.Partitions[i].Day] = append(byDay[v.Partitions[i].Day], v.Partitions[i].Shard)
	}
	for day, shards := range byDay {
		contiguous := true
		for i, s := range shards { // shard lists inherit canonical order
			if s != i {
				contiguous = false
				break
			}
		}
		if contiguous {
			v.shardsOf[day] = len(shards)
		}
	}
	return v, nil
}

// IndexSource loads per-partition secondary indexes; *trace.FileStore
// implements it. Absent (nil, nil) indexes mean "scan".
type IndexSource interface {
	PartitionIndex(day, shard int) (*trace.PartitionIndex, error)
}

// Engine executes queries over one store, with index pruning when the
// store maintains .tlix sidecars and an LRU result cache keyed on
// (normalized query, view generation).
type Engine struct {
	store trace.Store
	idx   IndexSource
	cache *lruCache
}

// New returns an engine over s with the default cache size.
func New(s trace.Store) *Engine {
	e := &Engine{store: s, cache: newLRUCache(defaultCacheEntries)}
	if is, ok := s.(IndexSource); ok {
		e.idx = is
	}
	return e
}

// InvalidateCache drops every cached result. telcoserve calls it when
// a refresh swaps in a new snapshot; entries keyed on older generations
// would otherwise linger until evicted.
func (e *Engine) InvalidateCache() { e.cache.purge() }

// CacheStats reports the result cache's hit/miss counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Query executes p against the pinned view. The second return reports
// a cache hit. The returned Result is shared with the cache and must
// not be mutated.
func (e *Engine) Query(ctx context.Context, v *View, p Params) (*Result, bool, error) {
	p, err := p.normalize()
	if err != nil {
		return nil, false, err
	}
	key := strconv.FormatUint(v.Gen, 10) + "|" + p.CacheKey()
	if r := e.cache.get(key); r != nil {
		return r, true, nil
	}
	r, err := e.exec(ctx, v, p)
	if err != nil {
		return nil, false, err
	}
	e.cache.put(key, r)
	return r, false, nil
}

// Cached peeks the result cache without executing: the answer if this
// exact query is memoized for the view's generation, else nil. The
// degraded serving mode uses it to answer what it can from cache while
// shedding everything that would need a scan.
func (e *Engine) Cached(v *View, p Params) *Result {
	p, err := p.normalize()
	if err != nil {
		return nil
	}
	return e.cache.get(strconv.FormatUint(v.Gen, 10) + "|" + p.CacheKey())
}

// exec runs the pruning pipeline and the scan.
func (e *Engine) exec(ctx context.Context, v *View, p Params) (*Result, error) {
	res := &Result{Gen: v.Gen, Rows: []Row{}}
	m := &res.Metrics

	from, to := p.From, p.To
	if to == 0 {
		to = math.MaxInt64
	}
	window := p.From != 0 || p.To != 0

	var tracker *analysis.UESliceTracker
	var agg analysis.UESliceAggregate
	if p.Aggregate {
		tracker = analysis.NewUESliceTracker()
	}

	var rec trace.Record
	var cb trace.ColumnBatch
	for i := range v.Partitions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pi := &v.Partitions[i]
		m.PartitionsConsidered++
		if res.Truncated && !p.Aggregate {
			// The row cap is hit and nothing else is being computed;
			// later partitions cannot change the answer.
			m.PartitionsPruned++
			continue
		}
		// Stage 1a: zone-map prune on the manifest's time extents.
		if v.hasStats && pi.Records > 0 && (pi.MaxTS < from || pi.MinTS > to) {
			m.PartitionsPruned++
			continue
		}
		// Stage 1b: shard prune — a UE lives in exactly one shard of a
		// {0..k-1}-sharded day, with no false negatives.
		if p.UE != nil {
			if k, ok := v.shardsOf[pi.Day]; ok && k > 1 && trace.ShardOf(*p.UE, k) != pi.Shard {
				m.PartitionsPruned++
				continue
			}
		}
		// Stages 2 and 3: sidecar prune, when one is present and fresh.
		var allow []bool
		if !p.NoIndex && e.idx != nil {
			idx, err := e.idx.PartitionIndex(pi.Day, pi.Shard)
			if err != nil {
				idx = nil // corrupt or future-versioned: treat as unindexed
			}
			if idx != nil && v.hasStats && pi.Fingerprint != 0 && idx.Fingerprint != pi.Fingerprint {
				idx = nil // stale: partition rewritten behind the index
			}
			if idx != nil {
				if (p.UE != nil && !idx.MayContainUE(*p.UE)) ||
					(p.TAC != nil && !idx.MayContainTAC(*p.TAC)) ||
					(p.Sector != nil && !idx.MayContainSector(*p.Sector)) {
					m.PartitionsPruned++
					m.BlocksPruned += int64(len(idx.Blocks))
					continue
				}
				if len(idx.Blocks) > 0 {
					allow = make([]bool, len(idx.Blocks))
					any := false
					for b := range idx.Blocks {
						bs := &idx.Blocks[b]
						ok := bs.MaxTS >= from && bs.MinTS <= to
						if ok && p.UE != nil {
							ok = bs.UEs.MayContain(uint32(*p.UE))
						}
						if ok && p.TAC != nil {
							ok = bs.TACs.MayContain(*p.TAC)
						}
						allow[b] = ok
						any = any || ok
					}
					if !any {
						m.PartitionsPruned++
						m.BlocksPruned += int64(len(idx.Blocks))
						continue
					}
				}
			}
		}

		it, err := e.store.OpenPartition(pi.Day, pi.Shard)
		if err != nil {
			return nil, err
		}
		m.PartitionsScanned++
		if window {
			if rs, ok := it.(trace.TimeRangeSetter); ok {
				rs.SetTimeRange(from, to)
			}
		}
		if allow != nil {
			if bf, ok := it.(trace.BlockFilterSetter); ok {
				keep := allow
				bf.SetBlockFilter(func(b int) bool {
					// Ordinals beyond the summary list mean the index is
					// out of step with the stream; decode rather than drop.
					return b >= len(keep) || keep[b]
				})
			}
		}

		observe := func(r *trace.Record) {
			m.RowsScanned++
			if !p.matches(r.Timestamp, r.UE, uint32(r.TAC), uint32(r.Source), uint32(r.Target)) {
				return
			}
			if tracker != nil {
				tracker.Observe(r)
			}
			if len(res.Rows) < p.Limit {
				res.Rows = append(res.Rows, rowFrom(r))
			} else {
				res.Truncated = true
			}
		}
		if ci, ok := it.(trace.ColumnIterator); ok {
			for {
				if err := ctx.Err(); err != nil {
					it.Close()
					return nil, err
				}
				n, err := ci.NextColumns(&cb)
				if err != nil {
					it.Close()
					return nil, fmt.Errorf("query: day %d shard %d: %w", pi.Day, pi.Shard, err)
				}
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					cb.Record(j, &rec)
					observe(&rec)
				}
			}
		} else {
			for n := 0; ; n++ {
				// The record fallback has no block boundary to check the
				// deadline at; probe every few thousand rows instead.
				if n%4096 == 0 {
					if err := ctx.Err(); err != nil {
						it.Close()
						return nil, err
					}
				}
				ok, err := it.Next(&rec)
				if err != nil {
					it.Close()
					return nil, fmt.Errorf("query: day %d shard %d: %w", pi.Day, pi.Shard, err)
				}
				if !ok {
					break
				}
				observe(&rec)
			}
		}
		if sr, ok := it.(trace.BlockStatsReader); ok {
			bs := sr.ReadStats()
			m.BlocksDecoded += bs.BlocksRead
			m.BlocksPruned += bs.BlocksSkipped + bs.BlocksFiltered
			m.BytesRead += bs.BytesRead
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
	}
	if tracker != nil {
		agg = tracker.Aggregate()
		if p.UE == nil {
			// Ping-pong bounces are only defined per subscriber; a mixed
			// slice would interleave automata.
			agg.PingPongs = nil
		}
		res.Aggregate = &agg
	}
	return res, nil
}

// ParseTime parses a query time bound: Unix milliseconds, RFC 3339, or
// a bare "day:N" study-day shorthand resolving to the day's start.
func ParseTime(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if ms, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ms, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t.UnixMilli(), nil
	}
	var day int
	if _, err := fmt.Sscanf(s, "day:%d", &day); err == nil {
		return trace.DayStart(day).UnixMilli(), nil
	}
	return 0, fmt.Errorf("query: unparseable time %q (want unix millis, RFC 3339, or day:N)", s)
}
