package query

import (
	"container/list"
	"sync"
)

// defaultCacheEntries bounds the result cache. Results are whole
// Result values (rows capped at the query limit), so the cache is a
// few MB at worst; repeated dashboard-style queries hit it, anything
// long-tail evicts quickly.
const defaultCacheEntries = 128

// CacheStats reports result-cache activity.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// lruCache is a small mutex-guarded LRU of query results. Values are
// shared with callers and must be treated as immutable.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type lruEntry struct {
	key string
	res *Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, or nil.
func (c *lruCache) get(key string) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res
}

// put stores a result, evicting the least recently used entry at cap.
func (c *lruCache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// purge drops every entry (counters survive).
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
}

// stats snapshots the counters.
func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}
