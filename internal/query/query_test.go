package query

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// corpus is a deterministic synthetic campaign kept both as ground
// truth (records in canonical partition order) and on disk.
type corpus struct {
	days, shards int
	// recs maps each partition to its records in storage order.
	recs map[trace.Partition][]trace.Record
}

// genCorpus routes perDay records per study day to shards via ShardOf
// (the layout the simulator writes) with timestamps sorted inside each
// partition, mirroring real stream order.
func genCorpus(seed int64, days, shards, perDay int) *corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &corpus{days: days, shards: shards, recs: make(map[trace.Partition][]trace.Record)}
	tacs := []devices.TAC{35000001, 35000002, 35000003}
	for day := 0; day < days; day++ {
		base := trace.DayStart(day).UnixMilli()
		day24h := int64(24 * 60 * 60 * 1000)
		byShard := make([][]trace.Record, shards)
		for i := 0; i < perDay; i++ {
			ue := trace.UEID(rng.Intn(300))
			rec := trace.Record{
				Timestamp:  base + rng.Int63n(day24h),
				UE:         ue,
				TAC:        tacs[rng.Intn(len(tacs))],
				Source:     topology.SectorID(rng.Intn(200)),
				Target:     topology.SectorID(rng.Intn(200)),
				SourceRAT:  topology.RAT(rng.Intn(4)),
				TargetRAT:  topology.RAT(rng.Intn(4)),
				Result:     trace.Success,
				DurationMs: float32(rng.Intn(3000)) / 10,
			}
			if rng.Intn(40) == 0 {
				rec.Result = trace.Failure
				rec.Cause = causes.Code(1 + rng.Intn(100))
			}
			sh := trace.ShardOf(ue, shards)
			byShard[sh] = append(byShard[sh], rec)
		}
		for sh := 0; sh < shards; sh++ {
			rs := byShard[sh]
			for i := 1; i < len(rs); i++ { // insertion sort keeps ties stable
				for j := i; j > 0 && rs[j].Timestamp < rs[j-1].Timestamp; j-- {
					rs[j], rs[j-1] = rs[j-1], rs[j]
				}
			}
			c.recs[trace.Partition{Day: day, Shard: sh}] = rs
		}
	}
	return c
}

// write lands the corpus into a fresh FileStore under dir.
func (c *corpus) write(t *testing.T, dir string, opts trace.FileStoreOptions) *trace.FileStore {
	t.Helper()
	fs, err := trace.NewFileStoreOpts(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < c.days; day++ {
		for sh := 0; sh < c.shards; sh++ {
			w, err := fs.AppendPartition(day, sh)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.(trace.BatchWriter).WriteBatch(c.recs[trace.Partition{Day: day, Shard: sh}]); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fs
}

// expected computes the ground-truth rows for p by brute force over the
// corpus in canonical order.
func (c *corpus) expected(p Params) (rows []Row, truncated bool) {
	p, _ = p.normalize()
	rows = []Row{}
	for day := 0; day < c.days; day++ {
		for sh := 0; sh < c.shards; sh++ {
			for _, rec := range c.recs[trace.Partition{Day: day, Shard: sh}] {
				if !p.matches(rec.Timestamp, rec.UE, uint32(rec.TAC), uint32(rec.Source), uint32(rec.Target)) {
					continue
				}
				if len(rows) < p.Limit {
					r := rec
					rows = append(rows, rowFrom(&r))
				} else {
					truncated = true
				}
			}
		}
	}
	return rows, truncated
}

func u32(v uint32) *uint32      { return &v }
func ueID(v uint32) *trace.UEID { u := trace.UEID(v); return &u }
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestQueryMatchesScan is the cross-codec equivalence property: for
// every codec variant, for stores written with and without index
// sidecars, and across window edges, the indexed execution returns
// rows byte-identical to both the forced scan fallback (NoIndex) and
// the brute-force ground truth.
func TestQueryMatchesScan(t *testing.T) {
	c := genCorpus(29, 3, 2, 900)

	day1 := trace.DayRange(1, 1)
	// A mid-stream timestamp whose one-record window exercises the
	// single-block edge.
	pin := c.recs[trace.Partition{Day: 1, Shard: 0}][200]

	cases := []struct {
		name string
		p    Params
	}{
		{"ue", Params{UE: ueID(uint32(pin.UE))}},
		{"ue-day-window", Params{UE: ueID(uint32(pin.UE)), From: day1.MinTS, To: day1.MaxTS}},
		{"ue-cross-day", Params{UE: ueID(uint32(pin.UE)),
			From: trace.DayStart(0).UnixMilli() + 12*3600_000,
			To:   trace.DayStart(1).UnixMilli() + 12*3600_000}},
		{"ue-tac", Params{UE: ueID(uint32(pin.UE)), TAC: u32(uint32(pin.TAC))}},
		{"tac-truncated", Params{TAC: u32(35000002), Limit: 50}},
		{"sector", Params{Sector: u32(uint32(pin.Source))}},
		{"point-window", Params{UE: ueID(uint32(pin.UE)), From: pin.Timestamp, To: pin.Timestamp}},
		{"empty-window", Params{From: trace.DayStart(100).UnixMilli(), To: trace.DayStart(101).UnixMilli()}},
		{"absent-ue", Params{UE: ueID(999_999)}},
	}

	stores := []struct {
		name string
		opts trace.FileStoreOptions
	}{
		{"v1", trace.FileStoreOptions{Codec: trace.CodecV1}},
		{"v2", trace.FileStoreOptions{Codec: trace.CodecV2, BlockRecords: 64}},
		{"v2flate", trace.FileStoreOptions{Codec: trace.CodecV2, BlockRecords: 64, Compress: true}},
		{"v2-noindex", trace.FileStoreOptions{Codec: trace.CodecV2, BlockRecords: 64, NoIndex: true}},
		{"v3", trace.FileStoreOptions{Codec: trace.CodecV3, BlockRecords: 64}},
		{"v3tlz", trace.FileStoreOptions{Codec: trace.CodecV3, BlockRecords: 64, FastCompress: true}},
	}

	ctx := context.Background()
	for _, sc := range stores {
		t.Run(sc.name, func(t *testing.T) {
			fs := c.write(t, t.TempDir(), sc.opts)
			eng := New(fs)
			v, err := NewView(fs)
			if err != nil {
				t.Fatal(err)
			}
			if v.Gen == 0 {
				t.Fatal("file store view has no manifest generation")
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					indexed, _, err := eng.Query(ctx, v, tc.p)
					if err != nil {
						t.Fatal(err)
					}
					fb := tc.p
					fb.NoIndex = true
					fallback, _, err := eng.Query(ctx, v, fb)
					if err != nil {
						t.Fatal(err)
					}
					gotIdx := mustJSON(t, indexed.Rows)
					gotFb := mustJSON(t, fallback.Rows)
					if gotIdx != gotFb {
						t.Fatalf("indexed rows differ from scan fallback:\n%s\nvs\n%s", gotIdx, gotFb)
					}
					wantRows, wantTrunc := c.expected(tc.p)
					if want := mustJSON(t, wantRows); gotIdx != want {
						t.Fatalf("rows differ from ground truth:\ngot  %s\nwant %s", gotIdx, want)
					}
					if indexed.Truncated != wantTrunc || fallback.Truncated != wantTrunc {
						t.Fatalf("truncated = %v/%v, want %v", indexed.Truncated, fallback.Truncated, wantTrunc)
					}
				})
			}
		})
	}
}

// TestQueryPointPrunesBlocks is the efficiency acceptance bound: on a
// 31-day sharded campaign, a single-UE point query must decode at most
// 5% of the blocks a full-day scan touches.
func TestQueryPointPrunesBlocks(t *testing.T) {
	const (
		days     = 31
		shards   = 4
		perShard = 2000
		perBlock = 128
	)
	rng := rand.New(rand.NewSource(41))
	fs, err := trace.NewFileStoreOpts(t.TempDir(), trace.FileStoreOptions{BlockRecords: perBlock})
	if err != nil {
		t.Fatal(err)
	}
	// One subscriber appears only on day 15, three clustered records.
	target := trace.UEID(7)
	tshard := trace.ShardOf(target, shards)
	for day := 0; day < days; day++ {
		base := trace.DayStart(day).UnixMilli()
		for sh := 0; sh < shards; sh++ {
			recs := make([]trace.Record, 0, perShard+3)
			for i := 0; i < perShard; i++ {
				ue := trace.UEID(1000 + rng.Intn(49000))
				for trace.ShardOf(ue, shards) != sh {
					ue = trace.UEID(1000 + rng.Intn(49000))
				}
				recs = append(recs, trace.Record{
					Timestamp: base + int64(i)*40_000, // sorted, spread over the day
					UE:        ue,
					TAC:       devices.TAC(35000000 + rng.Intn(500)),
					Source:    topology.SectorID(rng.Intn(10000)),
					Target:    topology.SectorID(rng.Intn(10000)),
					SourceRAT: topology.RAT(rng.Intn(4)),
					TargetRAT: topology.RAT(rng.Intn(4)),
					Result:    trace.Success,
				})
			}
			if day == 15 && sh == tshard {
				at := base + 7*3600_000
				for i := 0; i < 3; i++ {
					recs = append(recs, trace.Record{
						Timestamp: at + int64(i)*5000,
						UE:        target,
						TAC:       35000042,
						Source:    topology.SectorID(10 + i),
						Target:    topology.SectorID(11 + i),
						SourceRAT: topology.FourG,
						TargetRAT: topology.FourG,
						Result:    trace.Success,
					})
				}
				for i := 1; i < len(recs); i++ {
					for j := i; j > 0 && recs[j].Timestamp < recs[j-1].Timestamp; j-- {
						recs[j], recs[j-1] = recs[j-1], recs[j]
					}
				}
			}
			w, err := fs.AppendPartition(day, sh)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.(trace.BatchWriter).WriteBatch(recs); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Baseline: what a full scan of one study day decodes.
	var dayBlocks int64
	day15 := trace.DayRange(15, 15)
	for sh := 0; sh < shards; sh++ {
		it, err := fs.OpenPartition(15, sh)
		if err != nil {
			t.Fatal(err)
		}
		it.(trace.TimeRangeSetter).SetTimeRange(day15.MinTS, day15.MaxTS)
		var rec trace.Record
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		dayBlocks += it.(trace.BlockStatsReader).ReadStats().BlocksRead
		it.Close()
	}
	if dayBlocks == 0 {
		t.Fatal("baseline scan decoded no blocks")
	}

	eng := New(fs)
	v, err := NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := eng.Query(context.Background(), v, Params{UE: &target})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("point query returned %d rows, want 3", len(res.Rows))
	}
	budget := float64(dayBlocks) * 0.05
	if got := float64(res.Metrics.BlocksDecoded); got > budget {
		t.Fatalf("point query decoded %d blocks; budget is 5%% of a %d-block day scan (%.1f)",
			res.Metrics.BlocksDecoded, dayBlocks, budget)
	}
	t.Logf("point query: %d blocks decoded, %d pruned; day scan decodes %d",
		res.Metrics.BlocksDecoded, res.Metrics.BlocksPruned, dayBlocks)
}

func TestQueryCacheLifecycle(t *testing.T) {
	c := genCorpus(5, 2, 2, 400)
	fs := c.write(t, t.TempDir(), trace.FileStoreOptions{BlockRecords: 64})
	eng := New(fs)
	v, err := NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := Params{UE: ueID(uint32(c.recs[trace.Partition{Day: 0, Shard: 0}][0].UE))}

	r1, hit, err := eng.Query(ctx, v, p)
	if err != nil || hit {
		t.Fatalf("first query: hit=%v err=%v", hit, err)
	}
	r2, hit, err := eng.Query(ctx, v, p)
	if err != nil || !hit {
		t.Fatalf("second query: hit=%v err=%v", hit, err)
	}
	if r1 != r2 {
		t.Fatal("cache hit returned a different result value")
	}
	eng.InvalidateCache()
	if _, hit, _ = eng.Query(ctx, v, p); hit {
		t.Fatal("query hit after InvalidateCache")
	}

	// A new generation (new partition landed) must miss even with a
	// warm cache for the old generation's key.
	w, err := fs.AppendPartition(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	v2, err := NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Gen == v.Gen {
		t.Fatal("generation did not advance after append")
	}
	if _, hit, _ = eng.Query(ctx, v2, p); hit {
		t.Fatal("new generation hit the old generation's cache entry")
	}
	cs := eng.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 || cs.Entries == 0 {
		t.Fatalf("implausible cache stats %+v", cs)
	}
}

// A canceled context aborts execution with the context's error, the
// abandoned partial result is never cached, and the Cached peek only
// answers for queries that actually completed.
func TestQueryCancelNotCached(t *testing.T) {
	c := genCorpus(9, 2, 2, 400)
	fs := c.write(t, t.TempDir(), trace.FileStoreOptions{BlockRecords: 64})
	eng := New(fs)
	v, err := NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{NoIndex: true} // force a full scan so cancellation has work to abort

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.Query(ctx, v, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query = %v, want context.Canceled", err)
	}
	if r := eng.Cached(v, p); r != nil {
		t.Fatal("canceled execution left a cached result")
	}

	// The same query, uncanceled, completes, caches, and the peek sees
	// exactly that entry — not other params, not other generations.
	r1, hit, err := eng.Query(context.Background(), v, p)
	if err != nil || hit {
		t.Fatalf("clean query: hit=%v err=%v", hit, err)
	}
	if r := eng.Cached(v, p); r != r1 {
		t.Fatalf("Cached peek = %p, want the memoized result %p", r, r1)
	}
	if r := eng.Cached(v, Params{NoIndex: true, Limit: 7}); r != nil {
		t.Fatal("Cached peek answered for different params")
	}
	other := *v
	other.Gen++
	if r := eng.Cached(&other, p); r != nil {
		t.Fatal("Cached peek answered across generations")
	}
	if r := eng.Cached(v, Params{Limit: -1}); r != nil {
		t.Fatal("Cached peek answered an invalid query")
	}
}

// The deadline probe in the record-iterator fallback aborts a scan
// mid-partition once the deadline passes.
func TestQueryDeadlineAbortsFallbackScan(t *testing.T) {
	c := genCorpus(11, 1, 1, 9000)
	fs := c.write(t, t.TempDir(), trace.FileStoreOptions{BlockRecords: 64})
	eng := New(fs)
	v, err := NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := eng.Query(ctx, v, Params{NoIndex: true, Aggregate: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired query = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryAggregate(t *testing.T) {
	fs, err := trace.NewFileStoreOpts(t.TempDir(), trace.FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := trace.DayStart(0).UnixMilli()
	ue := trace.UEID(9)
	mk := func(off int64, src, dst topology.SectorID, rat topology.RAT, res trace.Result) trace.Record {
		rec := trace.Record{Timestamp: base + off, UE: ue, TAC: 35000001,
			Source: src, Target: dst, SourceRAT: topology.FourG, TargetRAT: rat, Result: res}
		if res == trace.Failure {
			rec.Cause = 5
		}
		return rec
	}
	recs := []trace.Record{
		mk(0, 1, 2, topology.FourG, trace.Success),      // seeds A->B
		mk(1000, 2, 1, topology.FourG, trace.Success),   // bounce within every window
		mk(5000, 3, 4, topology.TwoG, trace.Success),    // vertical
		mk(9000, 4, 5, topology.FourG, trace.Failure),   // failure, no automaton advance
		mk(90_000, 5, 3, topology.FourG, trace.Success), // unrelated pair, no bounce
	}
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.(trace.BatchWriter).WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	eng := New(fs)
	v, err := NewView(fs)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := eng.Query(context.Background(), v, Params{UE: &ue, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a == nil {
		t.Fatal("no aggregate computed")
	}
	if a.Records != 5 || a.Handovers != 4 || a.Failures != 1 || a.Horizontal != 3 || a.Vertical != 1 {
		t.Fatalf("aggregate = %+v", a)
	}
	for w, n := range a.PingPongs {
		if n != 1 {
			t.Fatalf("window %s counted %d bounces, want 1", w, n)
		}
	}

	// A mixed (no-UE) slice keeps counts but drops ping-pongs: the
	// automata are only defined per subscriber.
	res, _, err = eng.Query(context.Background(), v, Params{Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate == nil || res.Aggregate.PingPongs != nil {
		t.Fatalf("mixed-slice aggregate = %+v, want counts without ping-pongs", res.Aggregate)
	}
}

func TestQueryCSV(t *testing.T) {
	res := &Result{Rows: []Row{
		{Timestamp: 1, UE: 2, TAC: 35000001, Source: 3, Target: 4,
			SourceRAT: "4G", TargetRAT: "5G", Result: "success", DurationMs: 12.5},
	}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	if lines[0] != "ts,ue,tac,source,target,source_rat,target_rat,result,cause,duration_ms" {
		t.Fatalf("bad header %q", lines[0])
	}
	if lines[1] != "1,2,35000001,3,4,4G,5G,success,0,12.5" {
		t.Fatalf("bad row %q", lines[1])
	}
}

func TestQueryParamValidation(t *testing.T) {
	eng := New(trace.NewMemStore())
	v := &View{}
	ctx := context.Background()
	if _, _, err := eng.Query(ctx, v, Params{From: 10, To: 5}); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, _, err := eng.Query(ctx, v, Params{Limit: -1}); err == nil {
		t.Fatal("negative limit accepted")
	}
	p, err := Params{Limit: MaxLimit + 1}.normalize()
	if err != nil || p.Limit != MaxLimit {
		t.Fatalf("limit not capped: %d, %v", p.Limit, err)
	}
	p, err = Params{}.normalize()
	if err != nil || p.Limit != DefaultLimit {
		t.Fatalf("default limit not applied: %d, %v", p.Limit, err)
	}
}

func TestParseTime(t *testing.T) {
	if ms, err := ParseTime(""); err != nil || ms != 0 {
		t.Fatalf("empty = %d, %v", ms, err)
	}
	if ms, err := ParseTime("1706486400000"); err != nil || ms != 1706486400000 {
		t.Fatalf("millis = %d, %v", ms, err)
	}
	if ms, err := ParseTime("2024-01-30T00:00:00Z"); err != nil || ms != trace.DayStart(1).UnixMilli() {
		t.Fatalf("rfc3339 = %d, %v", ms, err)
	}
	if ms, err := ParseTime("day:2"); err != nil || ms != trace.DayStart(2).UnixMilli() {
		t.Fatalf("day:N = %d, %v", ms, err)
	}
	if _, err := ParseTime("next tuesday"); err == nil {
		t.Fatal("garbage time accepted")
	}
}
