package corenet

import (
	"math"
	"sort"
	"testing"

	"telcolens/internal/causes"
	"telcolens/internal/census"
	"telcolens/internal/devices"
	"telcolens/internal/ho"
	"telcolens/internal/randx"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

type world struct {
	country *census.Country
	net     *topology.Network
	catalog *devices.Catalog
	epc     *EPC
}

func buildWorld(t testing.TB, cfg Config) *world {
	t.Helper()
	country, err := census.Generate(census.DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Generate(topology.DefaultGenConfig(42), country)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := devices.GenerateCatalog(42)
	if err != nil {
		t.Fatal(err)
	}
	causeCat, err := causes.NewCatalog(42, 1100)
	if err != nil {
		t.Fatal(err)
	}
	epc, err := NewEPC(net, country, causeCat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &world{country, net, catalog, epc}
}

// smartphoneModel finds a 5G-capable smartphone model for request stubs.
func smartphoneModel(t testing.TB, c *devices.Catalog) *devices.Model {
	t.Helper()
	for i := range c.Models {
		m := &c.Models[i]
		if m.Type == devices.Smartphone && m.MaxRAT == topology.FiveG && m.Quirk.HOFMult == 1.0 {
			return m
		}
	}
	for i := range c.Models {
		m := &c.Models[i]
		if m.Type == devices.Smartphone && m.MaxRAT >= topology.FourG {
			return m
		}
	}
	t.Fatal("no smartphone model found")
	return nil
}

func requestAt(w *world, site topology.SiteID, model *devices.Model) HORequest {
	s := w.net.Site(site)
	var srcSector topology.SectorID
	for _, sid := range s.Sectors {
		if w.net.Sector(sid).RAT == topology.FourG {
			srcSector = sid
			break
		}
	}
	return HORequest{
		TimeMs:     trace.StudyStart.UnixMilli(),
		UE:         1,
		Model:      model,
		Source:     srcSector,
		TargetSite: site,
		Area:       s.Area,
		DistrictID: s.DistrictID,
		LoadFactor: 0.5,
	}
}

func TestExecuteHOBasics(t *testing.T) {
	w := buildWorld(t, Config{})
	model := smartphoneModel(t, w.catalog)
	r := randx.New(1)
	for i := 0; i < 2000; i++ {
		site := topology.SiteID(r.Intn(len(w.net.Sites)))
		req := requestAt(w, site, model)
		out := w.epc.ExecuteHO(r, req)
		if w.net.Sector(out.Target) == nil {
			t.Fatal("outcome targets unknown sector")
		}
		if w.net.Sector(out.Target).RAT != out.TargetRAT {
			t.Fatal("target RAT mismatch")
		}
		if out.Result == trace.Failure && out.Cause == causes.CodeNone {
			t.Fatal("failure without cause")
		}
		if out.Result == trace.Success && out.Cause != causes.CodeNone {
			t.Fatal("success with cause")
		}
		if out.DurationMs < 0 {
			t.Fatal("negative duration")
		}
		if len(out.Sequence) < 2 {
			t.Fatal("degenerate message sequence")
		}
		if out.Sequence[0] != MeasurementReport {
			t.Fatal("procedure must start with a measurement report")
		}
	}
	if w.epc.MME.Stats.Handovers != 2000 {
		t.Fatalf("MME saw %d handovers", w.epc.MME.Stats.Handovers)
	}
}

func TestVerticalShareCalibration(t *testing.T) {
	w := buildWorld(t, Config{})
	model := smartphoneModel(t, w.catalog)
	r := randx.New(5)

	// Sample sites population-proportionally the way real HOs occur:
	// weight districts by population.
	weights := make([]float64, len(w.country.Districts))
	for i, d := range w.country.Districts {
		weights[i] = float64(d.Population)
	}
	dc := randx.MustWeightedChoice(weights)

	const n = 150000
	counts := make(map[ho.Type]int)
	for i := 0; i < n; i++ {
		dist := dc.Sample(r)
		sites := w.net.SitesInDistrict(dist)
		site := sites[r.Intn(len(sites))]
		out := w.epc.ExecuteHO(r, requestAt(w, site, model))
		counts[out.Type]++
	}
	intra := float64(counts[ho.Intra]) / n
	to3g := float64(counts[ho.To3G]) / n
	// §5.2 Table 2: 94.14% intra, 5.86% to 3G.
	if math.Abs(intra-0.9414) > 0.025 {
		t.Errorf("intra share = %.4f, want ≈0.941", intra)
	}
	if math.Abs(to3g-0.0586) > 0.025 {
		t.Errorf("3G share = %.4f, want ≈0.059", to3g)
	}
	// 2G handovers are vanishingly rare without boost.
	if float64(counts[ho.To2G])/n > 0.001 {
		t.Errorf("2G share = %.5f, want <0.1%%", float64(counts[ho.To2G])/n)
	}
}

func TestRareBoostScales2G(t *testing.T) {
	base := buildWorld(t, Config{})
	boosted := buildWorld(t, Config{RareBoost: 200})
	for i, d := range base.country.Districts {
		pb := base.epc.fallback2G[i]
		pB := boosted.epc.fallback2G[i]
		if pb > 0 && pB < pb*50 {
			t.Fatalf("district %s: boost did not scale 2G fallback (%g vs %g)", d.Name, pb, pB)
		}
	}
}

func TestRuralDistrictsFallBackMore(t *testing.T) {
	w := buildWorld(t, Config{})
	rank := w.country.DensityRank()
	least := w.epc.Fallback3G(rank[0], census.Rural)
	most := w.epc.Fallback3G(rank[len(rank)-1], census.Rural)
	urban := w.epc.Fallback3G(rank[len(rank)-1], census.Urban)
	// Fig 9: the remotest district reaches ≈58% vertical HOs; rural
	// pockets of dense districts fall back far less; urban sectors rely
	// on 4G/5G for >99.8% of HOs.
	if least < 0.45 {
		t.Fatalf("least dense district rural fallback = %.3f, want ≈0.6", least)
	}
	if most > 0.2 {
		t.Fatalf("densest district rural fallback = %.4f, want modest", most)
	}
	if least < 2*most {
		t.Fatalf("rural fallback gradient too flat: %.3f vs %.3f", least, most)
	}
	if urban > 0.003 {
		t.Fatalf("urban fallback = %.4f, want ≈0.0015", urban)
	}
}

func TestFailureRatesByHOType(t *testing.T) {
	w := buildWorld(t, Config{RareBoost: 5000}) // force 2G samples
	model := smartphoneModel(t, w.catalog)
	r := randx.New(7)
	fails := make(map[ho.Type]int)
	totals := make(map[ho.Type]int)
	// Rural sites produce enough vertical HOs.
	rank := w.country.DensityRank()
	var ruralSites []topology.SiteID
	for _, distID := range rank[:60] {
		ruralSites = append(ruralSites, w.net.SitesInDistrict(distID)...)
	}
	for i := 0; i < 400000 && (totals[ho.To2G] < 2000 || totals[ho.Intra] < 30000); i++ {
		site := ruralSites[r.Intn(len(ruralSites))]
		out := w.epc.ExecuteHO(r, requestAt(w, site, model))
		totals[out.Type]++
		if out.Result == trace.Failure {
			fails[out.Type]++
		}
	}
	rate := func(t ho.Type) float64 { return float64(fails[t]) / float64(totals[t]) }
	rIntra, r3, r2 := rate(ho.Intra), rate(ho.To3G), rate(ho.To2G)
	if rIntra > 0.01 {
		t.Errorf("intra failure rate = %.4f, want ≈0.1%%", rIntra)
	}
	if r3 < 10*rIntra {
		t.Errorf("3G failure rate %.4f not ≫ intra %.5f", r3, rIntra)
	}
	if r2 < 2*r3 {
		t.Errorf("2G failure rate %.4f not ≫ 3G %.4f", r2, r3)
	}
	// §6.3 first look: 2G median ≈21%, 3G ≈6%.
	if r2 < 0.12 || r2 > 0.6 {
		t.Errorf("2G failure rate = %.3f, want ≈0.2-0.4", r2)
	}
}

func TestSuccessDurationMedians(t *testing.T) {
	w := buildWorld(t, Config{})
	model := smartphoneModel(t, w.catalog)
	r := randx.New(11)
	durations := make(map[ho.Type][]float64)
	rank := w.country.DensityRank()
	var sites []topology.SiteID
	for _, distID := range rank[:80] {
		sites = append(sites, w.net.SitesInDistrict(distID)...)
	}
	for i := 0; i < 120000; i++ {
		site := sites[r.Intn(len(sites))]
		out := w.epc.ExecuteHO(r, requestAt(w, site, model))
		if out.Result == trace.Success {
			durations[out.Type] = append(durations[out.Type], out.DurationMs)
		}
	}
	med := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	// Fig 8: medians 43ms / 412ms / (1041ms for 2G, too rare here).
	if m := med(durations[ho.Intra]); math.Abs(m-43)/43 > 0.05 {
		t.Errorf("intra median duration = %.1f, want ≈43", m)
	}
	if m := med(durations[ho.To3G]); math.Abs(m-412)/412 > 0.08 {
		t.Errorf("3G median duration = %.1f, want ≈412", m)
	}
}

func TestSequencesDifferByType(t *testing.T) {
	intra := successSequence(ho.Intra, false)
	inter := successSequence(ho.To3G, false)
	voice := successSequence(ho.To3G, true)

	if contains(intra, ForwardRelocationRequest) {
		t.Fatal("intra handover carries Forward Relocation")
	}
	if !contains(inter, ForwardRelocationRequest) || !contains(inter, ForwardRelocationComplete) {
		t.Fatal("inter-RAT handover lacks Forward Relocation exchange")
	}
	if !contains(voice, PSToCSRequest) {
		t.Fatal("SRVCC handover lacks PS-to-CS exchange")
	}
	if contains(inter, PSToCSRequest) {
		t.Fatal("data-only handover carries SRVCC messages")
	}
}

func TestFailureSequencesTruncated(t *testing.T) {
	full := len(successSequence(ho.To3G, false))
	for _, cause := range []causes.Code{1, 2, 3, 4, 5, 6, 7} {
		seq := failureSequence(ho.To3G, cause, false)
		if len(seq) >= full {
			t.Errorf("cause %d sequence not truncated (%d >= %d)", cause, len(seq), full)
		}
	}
	// Cause #3/#6 die right after HandoverRequired.
	if seq := failureSequence(ho.To3G, 3, false); len(seq) != 2 || seq[1] != HandoverRequired {
		t.Fatalf("cause 3 sequence = %v", seq)
	}
	// Cause #8 never sees ForwardRelocationComplete.
	if contains(failureSequence(ho.To3G, 8, false), ForwardRelocationComplete) {
		t.Fatal("timeout cause contains relocation complete")
	}
}

func TestQuirkRaisesFailures(t *testing.T) {
	// Default failure scale: amplifying it would push vertical handovers
	// into the 0.95 probability cap and compress the quirk contrast.
	w := buildWorld(t, Config{})
	var normal, flaky *devices.Model
	for i := range w.catalog.Models {
		m := &w.catalog.Models[i]
		if m.Type == devices.Smartphone && m.MaxRAT >= topology.FourG {
			if m.Quirk.HOFMult == 1.0 && normal == nil {
				normal = m
			}
			if m.Quirk.HOFMult >= 5 && flaky == nil {
				flaky = m
			}
		}
	}
	if normal == nil || flaky == nil {
		t.Fatal("catalog lacks quirk contrast")
	}
	r := randx.New(3)
	failsOf := func(m *devices.Model) int {
		fails := 0
		for i := 0; i < 60000; i++ {
			site := topology.SiteID(r.Intn(len(w.net.Sites)))
			out := w.epc.ExecuteHO(r, requestAt(w, site, m))
			if out.Result == trace.Failure {
				fails++
			}
		}
		return fails
	}
	fNormal := failsOf(normal)
	fFlaky := failsOf(flaky)
	if fFlaky < 3*fNormal {
		t.Fatalf("flaky device fails %d vs normal %d, want ≫", fFlaky, fNormal)
	}
}

func TestMSCSeesSRVCC(t *testing.T) {
	w := buildWorld(t, Config{})
	model := smartphoneModel(t, w.catalog)
	r := randx.New(13)
	rank := w.country.DensityRank()
	sites := w.net.SitesInDistrict(rank[0])
	for i := 0; i < 20000; i++ {
		req := requestAt(w, sites[r.Intn(len(sites))], model)
		req.VoiceActive = true
		w.epc.ExecuteHO(r, req)
	}
	if w.epc.MSC.Stats.SRVCCAttempts == 0 {
		t.Fatal("MSC never saw SRVCC attempts despite rural voice handovers")
	}
	if w.epc.SGSN.Stats.Handovers == 0 {
		t.Fatal("SGSN never saw inter-RAT handovers")
	}
}

func TestNewEPCErrors(t *testing.T) {
	if _, err := NewEPC(nil, nil, nil, Config{}); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestMessageStrings(t *testing.T) {
	if MeasurementReport.String() != "MeasurementReport" {
		t.Fatal("message name wrong")
	}
	if ReleaseResource.String() != "ReleaseResource" {
		t.Fatal("message name wrong")
	}
}

func contains(seq []Message, m Message) bool {
	for _, s := range seq {
		if s == m {
			return true
		}
	}
	return false
}

func BenchmarkExecuteHO(b *testing.B) {
	w := buildWorld(b, Config{})
	model := smartphoneModel(b, w.catalog)
	r := randx.New(1)
	req := requestAt(w, 0, model)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.epc.ExecuteHO(r, req)
	}
}
