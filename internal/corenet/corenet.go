// Package corenet simulates the core-network side of the handover
// procedure (§2, Fig 1 and 2): the MME anchoring 4G/5G-NSA mobility, the
// SGSN handling relocations toward 2G/3G, and the MSC terminating SRVCC
// voice continuity. It decides handover targets (including vertical
// fallback to legacy RATs), injects failures per the calibrated cause
// model, and produces the signaling message sequence and duration of every
// handover. A monitoring probe at the MME turns outcomes into trace
// records — exactly the measurement point of the paper.
package corenet

import (
	"fmt"
	"math"

	"telcolens/internal/causes"
	"telcolens/internal/census"
	"telcolens/internal/devices"
	"telcolens/internal/ho"
	"telcolens/internal/randx"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// Message is one signaling message type of the handover procedure.
type Message uint8

// Handover signaling messages, in rough procedural order. Inter-RAT
// relocations add the GTPv2-C Forward Relocation exchange; SRVCC adds the
// PS-to-CS exchange with the MSC.
const (
	MeasurementReport Message = iota
	HandoverRequired
	HandoverRequest
	HandoverRequestAck
	RRCReconfiguration
	RACHAccess
	HandoverConfirm
	PathSwitchRequest
	ForwardRelocationRequest
	ForwardRelocationResponse
	ForwardRelocationComplete
	PSToCSRequest
	PSToCSResponse
	ReleaseResource
	numMessages
)

var messageNames = [numMessages]string{
	"MeasurementReport", "HandoverRequired", "HandoverRequest",
	"HandoverRequestAck", "RRCReconfiguration", "RACHAccess",
	"HandoverConfirm", "PathSwitchRequest", "ForwardRelocationRequest",
	"ForwardRelocationResponse", "ForwardRelocationComplete",
	"PSToCSRequest", "PSToCSResponse", "ReleaseResource",
}

// String returns the message name.
func (m Message) String() string {
	if int(m) < len(messageNames) {
		return messageNames[m]
	}
	return fmt.Sprintf("Message(%d)", uint8(m))
}

// ElementStats counts the signaling load seen by one core element.
type ElementStats struct {
	Handovers     int64
	Failures      int64
	Messages      int64
	SRVCCAttempts int64
}

// MME is the Mobility Management Entity: every captured handover crosses it.
type MME struct{ Stats ElementStats }

// SGSN serves 2G/3G relocations.
type SGSN struct{ Stats ElementStats }

// MSC terminates SRVCC voice handovers.
type MSC struct{ Stats ElementStats }

// Config tunes the handover engine.
type Config struct {
	// Seed drives the deterministic per-district coverage-quality draw.
	Seed uint64
	// RareBoost multiplies the 2G fallback probability. Default 1
	// reproduces the paper's ≈0.001% share of HOs; regression
	// experiments boost it for sample efficiency (see DESIGN.md).
	RareBoost float64
	// FailScale globally scales failure probabilities (ablations).
	FailScale float64
}

func (c Config) seed() uint64 { return c.Seed }

// Duration models per handover type (§5.2, Fig 8): median/p95 ms.
var successDuration = map[ho.Type][2]float64{
	ho.Intra: {43, 92},
	ho.To3G:  {412, 1087},
	ho.To2G:  {1041, 3799},
}

// Base failure probabilities per handover type, calibrated to the paper's
// §6 marginals: sector-day median HOF rates of 0.04%/5.85%/21.42% and the
// 24.9%/75.1%/0.03% split of failures across types.
var baseFailure = map[ho.Type]float64{
	ho.Intra: 0.0014,
	ho.To3G:  0.050,
	ho.To2G:  0.280,
}

// vendorFailMult mirrors the Table 5 vendor coefficients (V3 ≈ e^0.72).
var vendorFailMult = [4]float64{1.0, 1.12, 2.0, 1.06}

// EPC is the simulated 4G/5G-NSA core with its attached legacy elements.
type EPC struct {
	MME  MME
	SGSN SGSN
	MSC  MSC

	net     *topology.Network
	country *census.Country
	causes  *causes.Catalog
	cfg     Config

	fallback3G      []float64 // per-district P(vertical HO to 3G), rural sectors
	fallback2G      []float64
	fallback3GUrban []float64 // same for urban sectors
	fallback2GUrban []float64
}

// NewEPC builds the handover engine over a deployment.
func NewEPC(net *topology.Network, country *census.Country, causeCat *causes.Catalog, cfg Config) (*EPC, error) {
	if net == nil || country == nil || causeCat == nil {
		return nil, fmt.Errorf("corenet: nil inputs")
	}
	if cfg.RareBoost <= 0 {
		cfg.RareBoost = 1
	}
	if cfg.FailScale <= 0 {
		cfg.FailScale = 1
	}
	e := &EPC{net: net, country: country, causes: causeCat, cfg: cfg}
	e.buildFallbackTables()
	return e, nil
}

// buildFallbackTables computes vertical-handover probabilities per
// district and area type. Vertical fallback is an area-and-density
// phenomenon: rural sectors lack 4G depth everywhere (steeper in sparse
// districts), and urban sectors outside the dense cores also shed load to
// 3G — the paper's urban areas carry ≈75% of all failures (Fig 12/15)
// while the capital core stays >99.9% intra (Fig 9a).
func (e *EPC) buildFallbackTables() {
	n := len(e.country.Districts)
	e.fallback3G = make([]float64, n)
	e.fallback2G = make([]float64, n)
	e.fallback3GUrban = make([]float64, n)
	e.fallback2GUrban = make([]float64, n)

	// Rank-normalize district density: 0 = least dense, 1 = densest.
	rank := e.country.DensityRank()
	rankNorm := make([]float64, n)
	for pos, id := range rank {
		if n > 1 {
			rankNorm[id] = float64(pos) / float64(n-1)
		}
	}
	// Per-district coverage-quality heterogeneity: real deployments vary
	// widely at equal density (terrain, spectrum, build-out age), which is
	// what makes the paper's Fig 9b distribution so skewed — district
	// median 1.21% vertical HOs against a mean of 5.41%.
	qr := randx.NewStream(e.cfg.seed(), "coverage-quality", 0)
	for i := range e.country.Districts {
		inv := 1 - rankNorm[i]
		q := qr.LogNormal(0, 1.1)
		rural := (0.040 + 0.45*math.Pow(inv, 2.8)) * q
		urban := (0.018 + 0.150*math.Pow(inv, 1.5)) * q
		e.fallback3G[i] = math.Min(rural, 0.63)
		e.fallback3GUrban[i] = math.Min(urban, 0.25)
		e.fallback2G[i] = math.Min(rural*0.00018*e.cfg.RareBoost, 0.25)
		e.fallback2GUrban[i] = math.Min(urban*0.00018*e.cfg.RareBoost, 0.25)
	}
	// Pin the paper's landmark extremes: the densest (capital-core)
	// district stays >99.9% intra, the least dense approaches ≈58%.
	e.fallback3G[rank[0]] = 0.60
	e.fallback3GUrban[rank[0]] = 0.30
	e.fallback3GUrban[rank[n-1]] = 0.0008
	e.fallback3G[rank[n-1]] = 0.002
}

// Fallback3G exposes the 3G fallback probability for sectors of the given
// area type in a district (used by tests and the decommissioning example).
func (e *EPC) Fallback3G(districtID int, area census.AreaType) float64 {
	if area == census.Urban {
		return e.fallback3GUrban[districtID]
	}
	return e.fallback3G[districtID]
}

// HORequest is one handover trigger from the RAN.
type HORequest struct {
	TimeMs      int64 // Unix ms
	UE          trace.UEID
	Model       *devices.Model
	Source      topology.SectorID
	TargetSite  topology.SiteID
	Area        census.AreaType // area of the source sector
	DistrictID  int
	LoadFactor  float64 // diurnal load in [0,1]
	VoiceActive bool
}

// Outcome is the result of executing one handover.
type Outcome struct {
	Target     topology.SectorID
	TargetRAT  topology.RAT
	Type       ho.Type
	Result     trace.Result
	Cause      causes.Code
	DurationMs float64
	Sequence   []Message
}

// ExecuteHO runs the full handover procedure for one trigger and returns
// its outcome. The supplied Rand must be the caller's deterministic
// per-UE stream.
func (e *EPC) ExecuteHO(r *randx.Rand, req HORequest) Outcome {
	hoType := e.selectHOType(r, req)
	targetRAT := hoType.TargetRAT()
	target := e.selectTargetSector(r, req, targetRAT)
	if target == nil {
		// No sector of the fallback RAT reachable: stay horizontal.
		hoType = ho.Intra
		targetRAT = topology.FourG
		target = e.selectTargetSector(r, req, targetRAT)
	}

	out := Outcome{
		Target:    target.ID,
		TargetRAT: targetRAT,
		Type:      hoType,
	}

	pFail := e.failureProbability(req, hoType)
	if r.Bool(pFail) {
		out.Result = trace.Failure
		out.Cause = e.causes.Sample(r, hoType, req.Area, req.Model.Type)
		out.DurationMs = e.causes.SampleDuration(r, out.Cause)
		out.Sequence = failureSequence(hoType, out.Cause, req.VoiceActive)
	} else {
		out.Result = trace.Success
		med := successDuration[hoType]
		out.DurationMs = r.LogNormalMedP95(med[0], med[1])
		out.Sequence = successSequence(hoType, req.VoiceActive)
	}
	e.account(req, hoType, &out)
	return out
}

// selectHOType decides horizontal vs vertical per the sector's area type,
// district coverage and device capability.
func (e *EPC) selectHOType(r *randx.Rand, req HORequest) ho.Type {
	var p3, p2 float64
	if req.Area == census.Urban {
		p3 = e.fallback3GUrban[req.DistrictID]
		p2 = e.fallback2GUrban[req.DistrictID]
	} else {
		p3 = e.fallback3G[req.DistrictID]
		p2 = e.fallback2G[req.DistrictID]
	}
	if req.Model.SupportsRAT(topology.TwoG) && r.Bool(p2) {
		return ho.To2G
	}
	if req.Model.SupportsRAT(topology.ThreeG) && r.Bool(p3) {
		return ho.To3G
	}
	return ho.Intra
}

// selectTargetSector picks a sector of the wanted RAT at the destination
// site, its neighbors, or (for vertical HOs) anywhere in the district.
func (e *EPC) selectTargetSector(r *randx.Rand, req HORequest, rat topology.RAT) *topology.Sector {
	site := e.net.Site(req.TargetSite)
	if sec := pickSectorOfRAT(r, e.net, site, rat); sec != nil {
		return sec
	}
	for _, nb := range e.net.NeighborSites(site.ID) {
		if sec := pickSectorOfRAT(r, e.net, e.net.Site(nb), rat); sec != nil {
			return sec
		}
	}
	// Last resort for legacy RATs: any sector of that RAT in the district.
	for _, sid := range e.net.SectorsInDistrict(req.DistrictID) {
		if sec := e.net.Sector(sid); sec.RAT == rat {
			return sec
		}
	}
	return nil
}

func pickSectorOfRAT(r *randx.Rand, net *topology.Network, site *topology.Site, rat topology.RAT) *topology.Sector {
	if site == nil || !site.HasRAT(rat) {
		return nil
	}
	var candidates []topology.SectorID
	for _, sid := range site.Sectors {
		if net.Sector(sid).RAT == rat {
			candidates = append(candidates, sid)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return net.Sector(candidates[r.Intn(len(candidates))])
}

// failureProbability composes the calibrated multipliers: HO type base ×
// source-sector vendor × area × diurnal load × manufacturer quirk.
func (e *EPC) failureProbability(req HORequest, t ho.Type) float64 {
	p := baseFailure[t] * e.cfg.FailScale
	src := e.net.Sector(req.Source)
	p *= vendorFailMult[src.Vendor]
	if req.Area == census.Rural {
		// Sparse deployments raise failure odds (paper Table 5: rural
		// coefficient +0.26 on the log scale).
		p *= 1.45
	} else if t != ho.Intra {
		// Urban vertical handovers fail disproportionately on target-load
		// rejections (cause #4 drives 42% of urban HOFs, §6.2).
		p *= 1.3
	}
	p *= 0.8 + 0.5*req.LoadFactor
	p *= req.Model.Quirk.HOFMult
	return math.Min(p, 0.95)
}

func (e *EPC) account(req HORequest, t ho.Type, out *Outcome) {
	e.MME.Stats.Handovers++
	e.MME.Stats.Messages += int64(len(out.Sequence))
	if out.Result == trace.Failure {
		e.MME.Stats.Failures++
	}
	if t != ho.Intra {
		e.SGSN.Stats.Handovers++
		e.SGSN.Stats.Messages += int64(len(out.Sequence))
		if out.Result == trace.Failure {
			e.SGSN.Stats.Failures++
		}
		if req.VoiceActive {
			e.MSC.Stats.SRVCCAttempts++
			e.MSC.Stats.Messages += 2
		}
	}
}

// successSequence is the full message exchange of a completed handover.
func successSequence(t ho.Type, voice bool) []Message {
	if t == ho.Intra {
		return []Message{
			MeasurementReport, HandoverRequired, HandoverRequest,
			HandoverRequestAck, RRCReconfiguration, RACHAccess,
			HandoverConfirm, PathSwitchRequest, ReleaseResource,
		}
	}
	seq := []Message{
		MeasurementReport, HandoverRequired, ForwardRelocationRequest,
		ForwardRelocationResponse,
	}
	if voice {
		seq = append(seq, PSToCSRequest, PSToCSResponse)
	}
	seq = append(seq, RRCReconfiguration, RACHAccess, HandoverConfirm,
		ForwardRelocationComplete, ReleaseResource)
	return seq
}

// failureSequence truncates the procedure at the point where each cause
// strikes: causes #3/#6 reject before initiation, #4 during admission,
// #7 during SRVCC preparation, #8 after the command (waiting forever for
// Forward Relocation Complete), others mid-procedure.
func failureSequence(t ho.Type, cause causes.Code, voice bool) []Message {
	switch cause {
	case 3, 6:
		return []Message{MeasurementReport, HandoverRequired}
	case 4:
		if t == ho.Intra {
			return []Message{MeasurementReport, HandoverRequired, HandoverRequest}
		}
		return []Message{MeasurementReport, HandoverRequired, ForwardRelocationRequest}
	case 7:
		return []Message{MeasurementReport, HandoverRequired, ForwardRelocationRequest, PSToCSRequest, PSToCSResponse}
	case 8:
		seq := []Message{MeasurementReport, HandoverRequired, ForwardRelocationRequest, ForwardRelocationResponse}
		if voice {
			seq = append(seq, PSToCSRequest, PSToCSResponse)
		}
		return append(seq, RRCReconfiguration, RACHAccess)
	default:
		if t == ho.Intra {
			return []Message{MeasurementReport, HandoverRequired, HandoverRequest, HandoverRequestAck}
		}
		return []Message{MeasurementReport, HandoverRequired, ForwardRelocationRequest, ForwardRelocationResponse}
	}
}
