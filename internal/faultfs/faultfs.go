// Package faultfs is the filesystem seam under every durable path of
// telcolens: a small FS interface over exactly the operations the
// storage layers perform (open/read/write/sync/rename/remove/...), an
// OS implementation that is a thin veneer over the os package, and a
// deterministic fault-injecting wrapper (see Fault) that can make any
// single operation fail the way real storage fails — torn writes,
// fsync errors, ENOSPC, bit rot on the read path, lost acknowledgments
// around rename commit points.
//
// The trace store, the ingest WAL/seal pipeline, the campaign
// descriptor writer and the analysis checkpoint files all take an FS,
// so the chaos test matrix can provoke every failure mode the
// durability contract claims to survive, with a seeded plan instead of
// luck. Production code paths pass OS{} (or nil, which means OS{}).
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// File is the per-file surface the storage layers use. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
}

// FS is the filesystem surface the storage layers write through. All
// paths are OS paths (the same strings the os package would take).
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// Rename is os.Rename — the atomic commit primitive.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// Stat is os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// Chmod is os.Chmod.
	Chmod(name string, mode fs.FileMode) error
	// SyncDir fsyncs a directory, making previously created, renamed or
	// removed entries in it durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

// OpenFile opens a real file.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile reads a real file.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir lists a real directory.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll creates a real directory tree.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Rename renames a real file.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes a real file.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat stats a real file.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Chmod changes a real file's mode.
func (OS) Chmod(name string, mode fs.FileMode) error { return os.Chmod(name, mode) }

// SyncDir fsyncs a real directory. Filesystems that do not support
// directory fsync (some network mounts) report EINVAL/ENOTSUP; that is
// swallowed — the rename itself was still atomic, the platform simply
// offers no stronger guarantee to wait for.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Resolve returns fsys, or OS{} when fsys is nil, so storage layers
// can keep a zero-value-friendly options struct.
func Resolve(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}

// Open opens a file read-only through fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// Create creates or truncates a file through fsys.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
}

// CreateTemp creates a new unique file in dir through fsys, with the
// "*" in pattern replaced by a unique suffix (os.CreateTemp semantics,
// but routed through the FS so fault plans see the create).
func CreateTemp(fsys FS, dir, pattern string) (File, error) {
	prefix, suffix, found := strings.Cut(pattern, "*")
	if !found {
		prefix, suffix = pattern, ""
	}
	for i := 0; i < 10000; i++ {
		name := filepath.Join(dir, prefix+strconv.FormatUint(tempSalt(), 36)+suffix)
		f, err := fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("faultfs: could not create temp file in %s", dir)
}

// WriteFileAtomic is the one full-durability publish primitive the
// storage layers share: data is staged into a temp file in the target's
// directory, fsynced, chmodded, renamed over path, and the directory is
// fsynced, so a crash at any instant leaves either the old file or the
// new one — never a torn mix — and a completed call means the bytes
// survive power loss. A failed stage is removed.
func WriteFileAtomic(fsys FS, path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := CreateTemp(fsys, dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("faultfs: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("faultfs: staging %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("faultfs: syncing stage of %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("faultfs: staging %s: %w", path, err)
	}
	if err := fsys.Chmod(tmpName, perm); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("faultfs: staging %s: %w", path, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("faultfs: publishing %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("faultfs: syncing dir of %s: %w", path, err)
	}
	return nil
}
