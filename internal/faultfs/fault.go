package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the base error wrapped by every clean injected
// failure (KindErr with no explicit Err, torn writes, ghost commits),
// so chaos tests can tell a provoked fault from a real bug with
// errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names one filesystem operation class a Rule can match.
type Op string

// Operation classes. OpWrite/OpRead/OpSync/OpClose match per-file
// operations on files whose base name matches the rule; the rest match
// the FS-level call.
const (
	OpOpen    Op = "open"
	OpRead    Op = "read"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpMkdir   Op = "mkdir"
	OpReadDir Op = "readdir"
	OpStat    Op = "stat"
	OpChmod   Op = "chmod"
	OpSyncDir Op = "syncdir"
)

// Kind selects how a matched operation fails.
type Kind int

const (
	// KindErr fails the operation cleanly: no side effect happens (for
	// writes, no bytes are written), the configured Err (default
	// ErrInjected) is returned.
	KindErr Kind = iota
	// KindTorn applies a prefix of the operation and then fails: a write
	// persists Frac of its bytes (rounded down, at least 1 when the
	// payload is non-empty) before returning an error. On non-write ops
	// it behaves like KindErr.
	KindTorn
	// KindGhost performs the operation fully and then reports failure —
	// the lost-acknowledgment case. A ghost rename really renames; a
	// ghost sync really syncs. Callers that treat the error as "did not
	// happen" must converge anyway.
	KindGhost
	// KindFlip corrupts data flowing through the operation instead of
	// failing it: a read succeeds but the byte at offset Bit%len has its
	// (Bit/8)%8-th bit inverted. On non-read ops it behaves like
	// KindErr.
	KindFlip
	// KindStall sleeps Delay before performing the operation normally.
	// It does not consume an error budget — the op succeeds.
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindErr:
		return "err"
	case KindTorn:
		return "torn"
	case KindGhost:
		return "ghost"
	case KindFlip:
		return "flip"
	case KindStall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule arms one deterministic fault: the After-th operation (1-based)
// whose class is Op and whose file base name matches the Path glob
// fails according to Kind. Counting is per rule — each rule keeps its
// own tally of matching operations, so two rules on the same path
// trigger independently.
type Rule struct {
	// Op is the operation class to match.
	Op Op
	// Path is a glob (path.Match syntax) tested against the base name of
	// the operation's path; for renames, against the destination. Empty
	// matches everything.
	Path string
	// After triggers on the Nth matching operation, 1-based. Zero means
	// first.
	After int
	// Times limits how many consecutive matching operations fail once
	// triggered. Zero means 1. Use a large value for a "disk stays
	// broken" plan.
	Times int
	// Kind selects the failure mode.
	Kind Kind
	// Err overrides the returned error (e.g. syscall.ENOSPC). Nil means
	// ErrInjected. The returned error always wraps ErrInjected unless
	// Err itself is returned verbatim for errno checks — both are
	// matched by Fired() records.
	Err error
	// Frac is the fraction of a torn write that persists, in percent
	// (0 means 50).
	Frac int
	// Bit selects which bit a KindFlip inverts, as an absolute bit
	// offset into the read payload (wrapped to its length).
	Bit int
	// Delay is the KindStall sleep.
	Delay time.Duration
}

func (r Rule) String() string {
	return fmt.Sprintf("%s(%s)@%d x%d %s", r.Op, r.Path, r.After, r.Times, r.Kind)
}

// Plan is a deterministic fault schedule: an ordered set of rules. The
// Seed is not used for randomness inside the wrapper (matching is
// fully deterministic); it is carried so a chaos matrix can derive a
// plan from a seed and report it on failure.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// Fired records one injected fault, for post-hoc assertions.
type Fired struct {
	Rule Rule
	Op   Op
	Path string
	N    int // the per-rule match count at which it fired
}

// Fault wraps an FS and applies a Plan. Safe for concurrent use.
type Fault struct {
	inner FS
	plan  Plan

	mu     sync.Mutex
	counts []int // per-rule matching-op tally
	used   []int // per-rule fires so far
	fired  []Fired
	ops    map[Op]int
}

// NewFault wraps inner (nil means OS{}) with the plan.
func NewFault(inner FS, plan Plan) *Fault {
	return &Fault{
		inner:  Resolve(inner),
		plan:   plan,
		counts: make([]int, len(plan.Rules)),
		used:   make([]int, len(plan.Rules)),
		ops:    make(map[Op]int),
	}
}

// Fired returns the faults injected so far, in order.
func (f *Fault) Fired() []Fired {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Fired(nil), f.fired...)
}

// OpCounts returns how many operations of each class the wrapped FS
// has seen (fired or not) — useful for building fail-at-every-step
// matrices: run once fault-free, read the counts, then generate one
// plan per (op, n).
func (f *Fault) OpCounts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.ops))
	for k, v := range f.ops {
		out[k] = v
	}
	return out
}

// check records one operation and decides whether a rule fires for it.
// It returns the rule and true when the caller must inject.
func (f *Fault) check(op Op, path string) (Rule, bool) {
	base := filepath.Base(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[op]++
	for i, r := range f.plan.Rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" {
			ok, err := filepath.Match(r.Path, base)
			if err != nil || !ok {
				continue
			}
		}
		f.counts[i]++
		after := r.After
		if after <= 0 {
			after = 1
		}
		times := r.Times
		if times <= 0 {
			times = 1
		}
		if f.counts[i] < after || f.used[i] >= times {
			continue
		}
		f.used[i]++
		f.fired = append(f.fired, Fired{Rule: r, Op: op, Path: path, N: f.counts[i]})
		return r, true
	}
	return Rule{}, false
}

// err builds the error a fired rule reports.
func (r Rule) err(op Op, path string) error {
	if r.Err != nil {
		// Wrap so both errors.Is(err, r.Err) and errors.Is(err,
		// ErrInjected) hold.
		return fmt.Errorf("faultfs: %s %s: %w (%w)", op, filepath.Base(path), r.Err, ErrInjected)
	}
	return fmt.Errorf("faultfs: %s %s: %w", op, filepath.Base(path), ErrInjected)
}

// ENOSPC is syscall.ENOSPC, re-exported so fault plans read naturally
// without importing syscall.
var ENOSPC error = syscall.ENOSPC

func (f *Fault) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if r, hit := f.check(OpOpen, name); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		default:
			return nil, r.err(OpOpen, name)
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner, name: name}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if r, hit := f.check(OpRead, name); hit {
		switch r.Kind {
		case KindFlip:
			if err == nil && len(data) > 0 {
				flipBit(data, r.Bit)
				return data, nil
			}
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			return data, r.err(OpRead, name)
		default:
			return nil, r.err(OpRead, name)
		}
	}
	return data, err
}

func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) {
	if r, hit := f.check(OpReadDir, name); hit {
		if r.Kind == KindStall {
			time.Sleep(r.Delay)
		} else {
			return nil, r.err(OpReadDir, name)
		}
	}
	return f.inner.ReadDir(name)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if r, hit := f.check(OpMkdir, path); hit {
		if r.Kind == KindStall {
			time.Sleep(r.Delay)
		} else {
			return r.err(OpMkdir, path)
		}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if r, hit := f.check(OpRename, newpath); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			if err := f.inner.Rename(oldpath, newpath); err != nil {
				return err
			}
			return r.err(OpRename, newpath)
		default:
			return r.err(OpRename, newpath)
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if r, hit := f.check(OpRemove, name); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			if err := f.inner.Remove(name); err != nil {
				return err
			}
			return r.err(OpRemove, name)
		default:
			return r.err(OpRemove, name)
		}
	}
	return f.inner.Remove(name)
}

func (f *Fault) Stat(name string) (fs.FileInfo, error) {
	if r, hit := f.check(OpStat, name); hit {
		if r.Kind == KindStall {
			time.Sleep(r.Delay)
		} else {
			return nil, r.err(OpStat, name)
		}
	}
	return f.inner.Stat(name)
}

func (f *Fault) Chmod(name string, mode fs.FileMode) error {
	if r, hit := f.check(OpChmod, name); hit {
		if r.Kind == KindStall {
			time.Sleep(r.Delay)
		} else {
			return r.err(OpChmod, name)
		}
	}
	return f.inner.Chmod(name, mode)
}

func (f *Fault) SyncDir(dir string) error {
	if r, hit := f.check(OpSyncDir, dir); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			if err := f.inner.SyncDir(dir); err != nil {
				return err
			}
			return r.err(OpSyncDir, dir)
		default:
			return r.err(OpSyncDir, dir)
		}
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies per-file rules on the wrapped handle.
type faultFile struct {
	f     *Fault
	inner File
	name  string
}

func (ff *faultFile) Name() string { return ff.name }

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.inner.Read(p)
	if r, hit := ff.f.check(OpRead, ff.name); hit {
		switch r.Kind {
		case KindFlip:
			if n > 0 {
				flipBit(p[:n], r.Bit)
			}
			return n, err
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			return n, r.err(OpRead, ff.name)
		default:
			return 0, r.err(OpRead, ff.name)
		}
	}
	return n, err
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := ff.inner.ReadAt(p, off)
	if r, hit := ff.f.check(OpRead, ff.name); hit {
		switch r.Kind {
		case KindFlip:
			if n > 0 {
				flipBit(p[:n], r.Bit)
			}
			return n, err
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			return n, r.err(OpRead, ff.name)
		default:
			return 0, r.err(OpRead, ff.name)
		}
	}
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if r, hit := ff.f.check(OpWrite, ff.name); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		case KindTorn:
			frac := r.Frac
			if frac <= 0 {
				frac = 50
			}
			keep := len(p) * frac / 100
			if keep == 0 && len(p) > 0 {
				keep = 1
			}
			if keep > len(p) {
				keep = len(p)
			}
			n, err := ff.inner.Write(p[:keep])
			if err != nil {
				return n, err
			}
			return n, r.err(OpWrite, ff.name)
		case KindGhost:
			n, err := ff.inner.Write(p)
			if err != nil {
				return n, err
			}
			return n, r.err(OpWrite, ff.name)
		default:
			return 0, r.err(OpWrite, ff.name)
		}
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.inner.Seek(offset, whence)
}

func (ff *faultFile) Sync() error {
	if r, hit := ff.f.check(OpSync, ff.name); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			if err := ff.inner.Sync(); err != nil {
				return err
			}
			return r.err(OpSync, ff.name)
		default:
			return r.err(OpSync, ff.name)
		}
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error { return ff.inner.Truncate(size) }

func (ff *faultFile) Close() error {
	if r, hit := ff.f.check(OpClose, ff.name); hit {
		switch r.Kind {
		case KindStall:
			time.Sleep(r.Delay)
		case KindGhost:
			if err := ff.inner.Close(); err != nil {
				return err
			}
			return r.err(OpClose, ff.name)
		default:
			// A clean close failure still releases the descriptor — that
			// is how real close(2) behaves on almost every filesystem.
			ff.inner.Close()
			return r.err(OpClose, ff.name)
		}
	}
	return ff.inner.Close()
}

// flipBit inverts one bit of p, selected by the absolute bit offset
// wrapped to the payload size.
func flipBit(p []byte, bit int) {
	if len(p) == 0 {
		return
	}
	if bit < 0 {
		bit = -bit
	}
	byteOff := (bit / 8) % len(p)
	p[byteOff] ^= 1 << (bit % 8)
}

// String renders a plan compactly for failure reports.
func (p Plan) String() string {
	if len(p.Rules) == 0 {
		return fmt.Sprintf("plan(seed=%d, no rules)", p.Seed)
	}
	out := fmt.Sprintf("plan(seed=%d:", p.Seed)
	for _, r := range p.Rules {
		out += " " + r.String()
	}
	return out + ")"
}

// tempCounter salts CreateTemp names; the pid term keeps two processes
// sharing a directory from colliding on the same sequence.
var tempCounter atomic.Uint64

func tempSalt() uint64 {
	return uint64(os.Getpid())<<32 ^ tempCounter.Add(1)
}

// SortedOps lists the op classes seen by a Fault in stable order, for
// deterministic matrix generation.
func SortedOps(counts map[Op]int) []Op {
	ops := make([]Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}
