package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := Resolve(nil)
	p := filepath.Join(dir, "a.txt")
	f, err := Create(fsys, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(p)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "MANIFEST")
	if err := WriteFileAtomic(OS{}, p, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(OS{}, p, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil || string(data) != "v2" {
		t.Fatalf("got %q, %v", data, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("stage debris left behind: %v", ents)
	}
}

func TestWriteFileAtomicFailureLeavesOldFile(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule Rule
	}{
		{"write-enospc", Rule{Op: OpWrite, Path: ".target-*", Kind: KindErr, Err: ENOSPC}},
		{"torn-write", Rule{Op: OpWrite, Path: ".target-*", Kind: KindTorn}},
		{"sync-fail", Rule{Op: OpSync, Path: ".target-*", Kind: KindErr}},
		{"rename-fail", Rule{Op: OpRename, Path: "target", Kind: KindErr}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			p := filepath.Join(dir, "target")
			if err := WriteFileAtomic(OS{}, p, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			ff := NewFault(nil, Plan{Rules: []Rule{tc.rule}})
			err := WriteFileAtomic(ff, p, []byte("newnewnew"), 0o644)
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("want injected error, got %v", err)
			}
			data, rerr := os.ReadFile(p)
			if rerr != nil || string(data) != "old" {
				t.Fatalf("old file not intact: %q, %v", data, rerr)
			}
			ents, _ := os.ReadDir(dir)
			if len(ents) != 1 {
				t.Fatalf("stage debris left behind: %v", ents)
			}
			if len(ff.Fired()) != 1 {
				t.Fatalf("fired = %v", ff.Fired())
			}
		})
	}
}

func TestFailAtNth(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpWrite, After: 3}}})
	f, err := Create(ff, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 1; i <= 5; i++ {
		_, err := f.Write([]byte("chunk"))
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: want injected, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fired := ff.Fired()
	if len(fired) != 1 || fired[0].N != 3 {
		t.Fatalf("fired = %+v", fired)
	}
}

func TestTimesBudget(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpSync, After: 1, Times: 2}}})
	f, err := Create(ff, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 1; i <= 3; i++ {
		err := f.Sync()
		if i <= 2 && !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: want injected, got %v", i, err)
		}
		if i == 3 && err != nil {
			t.Fatalf("sync 3 should pass after budget: %v", err)
		}
	}
}

func TestENOSPCErrno(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpWrite, Err: ENOSPC}}})
	f, err := Create(ff, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Write([]byte("y"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want ENOSPC wrapping ErrInjected, got %v", err)
	}
}

func TestTornWriteKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpWrite, Kind: KindTorn, Frac: 25}}})
	p := filepath.Join(dir, "x")
	f, err := Create(ff, p)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected, got %v", err)
	}
	if n != 25 {
		t.Fatalf("torn write persisted %d bytes, want 25", n)
	}
	f.Close()
	data, _ := os.ReadFile(p)
	if len(data) != 25 || data[24] != 24 {
		t.Fatalf("on-disk prefix = %d bytes", len(data))
	}
}

func TestGhostRename(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpRename, Path: "dst", Kind: KindGhost}}})
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := ff.Rename(src, dst)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected, got %v", err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("ghost rename must still land: %v", err)
	}
}

func TestBitFlipOnRead(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x")
	if err := os.WriteFile(p, []byte{0x00, 0x00, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpRead, Kind: KindFlip, Bit: 9}}})
	data, err := ff.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// bit 9 = byte 1, bit 1.
	if data[1] != 0x02 || data[0] != 0 || data[2] != 0 {
		t.Fatalf("flip landed wrong: %v", data)
	}
	// Handle-based read path too.
	ff2 := NewFault(nil, Plan{Rules: []Rule{{Op: OpRead, Kind: KindFlip, Bit: 0}}})
	f, err := Open(ff2, p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x01 {
		t.Fatalf("handle flip landed wrong: %v", buf)
	}
}

func TestPathGlobScoping(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{Rules: []Rule{{Op: OpWrite, Path: "*.tlho"}}})
	other, err := Create(ff, filepath.Join(dir, "notes.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Write([]byte("ok")); err != nil {
		t.Fatalf("non-matching path must pass: %v", err)
	}
	other.Close()
	part, err := Create(ff, filepath.Join(dir, "ho_day_000.tlho"))
	if err != nil {
		t.Fatal(err)
	}
	defer part.Close()
	if _, err := part.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path must fail: %v", err)
	}
}

func TestOpCounts(t *testing.T) {
	dir := t.TempDir()
	ff := NewFault(nil, Plan{})
	f, err := Create(ff, filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("a"))
	f.Write([]byte("b"))
	f.Sync()
	f.Close()
	counts := ff.OpCounts()
	if counts[OpOpen] != 1 || counts[OpWrite] != 2 || counts[OpSync] != 1 || counts[OpClose] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if got := SortedOps(counts); len(got) != 4 {
		t.Fatalf("SortedOps = %v", got)
	}
}

func TestCreateTempUnique(t *testing.T) {
	dir := t.TempDir()
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		f, err := CreateTemp(OS{}, dir, ".stage-*")
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.Name()] {
			t.Fatalf("duplicate temp name %s", f.Name())
		}
		seen[f.Name()] = true
		f.Close()
	}
}
