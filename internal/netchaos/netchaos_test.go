package netchaos

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/ingest"
	"telcolens/internal/simulate"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// Rule counters are per-rule and deterministic: a plan fires on
// exactly the occurrences it names, and ops of other classes do not
// advance the counter.
func TestRuleMatching(t *testing.T) {
	rs := &ruleState{Rule: Rule{Op: OpUp, After: 2, Count: 2, Kind: KindReset}}
	var fired []int
	for i := 0; i < 8; i++ {
		rs.matches(OpDown) // other class: must not consume occurrences
		if rs.matches(OpUp) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("contiguous rule fired at %v, want [2 3]", fired)
	}

	ev := &ruleState{Rule: Rule{Op: OpDown, After: 1, Every: 3, Count: 2}}
	fired = fired[:0]
	for i := 0; i < 12; i++ {
		if ev.matches(OpDown) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 4 {
		t.Fatalf("periodic rule fired at %v, want [1 4]", fired)
	}

	unl := &ruleState{Rule: Rule{Op: OpUp, Every: 2, Count: -1}}
	n := 0
	for i := 0; i < 10; i++ {
		if unl.matches(OpUp) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("unbounded periodic rule fired %d times over 10 ops, want 5", n)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("reset:up:after=10:every=50, torn:up:after=100:frac=0.3, latency:down:delay=5ms:jitter=2ms, trickle:up:delay=1ms:bytes=64, bandwidth:down:rate=65536, blackhole:down:after=200:count=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 6 {
		t.Fatalf("parsed %d rules, want 6", len(rules))
	}
	r := rules[0]
	if r.Kind != KindReset || r.Op != OpUp || r.After != 10 || r.Every != 50 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if rules[1].Frac != 0.3 || rules[2].Delay != 5*time.Millisecond ||
		rules[2].Jitter != 2*time.Millisecond || rules[3].TrickleBytes != 64 ||
		rules[4].Rate != 65536 || rules[5].Count != 1 {
		t.Fatalf("parsed fields wrong: %+v", rules)
	}
	for _, bad := range []string{"explode:up", "reset:sideways", "reset:up:after=x", "reset:up:when=3", "reset"} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted", bad)
		}
	}
}

// chaosMeta is a minimal streaming campaign descriptor (the netchaos
// twin of the ingest package's testMeta).
func chaosMeta(windowDays int) *simulate.CampaignMeta {
	return &simulate.CampaignMeta{
		Config: simulate.Config{
			Seed:       7,
			Days:       0,
			WindowDays: windowDays,
			UEs:        10,
		},
		Codec: trace.CodecV2,
	}
}

// chaosBatch builds n deterministic records inside one study day,
// varied by salt so distinct batches hold distinct rows.
func chaosBatch(day, n, salt int) *trace.ColumnBatch {
	cb := new(trace.ColumnBatch)
	base := trace.DayStart(day).UnixMilli()
	var rec trace.Record
	for i := 0; i < n; i++ {
		k := i + salt*1000
		rec.Timestamp = base + int64(k%86_400_000)
		rec.UE = trace.UEID(k % 7)
		rec.TAC = devices.TAC(350000 + k%5)
		rec.Source = topology.SectorID(100 + k%13)
		rec.Target = topology.SectorID(200 + k%11)
		rec.Cause = causes.Code(k % 30)
		rec.SourceRAT = 1
		rec.TargetRAT = 2
		rec.Result = trace.Result(k % 2)
		rec.DurationMs = float32(k%500) / 10
		cb.AppendRecord(&rec)
	}
	return cb
}

// newIngestStack starts an initialized ingest service, its HTTP
// surface, and a chaos proxy in front, returning the service (for
// direct state assertions) and the proxy.
func newIngestStack(t *testing.T, rules []Rule) (*ingest.Service, *Proxy) {
	t.Helper()
	svc, err := ingest.Open(t.TempDir(), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	if err := svc.Init(chaosMeta(1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	p, err := New(strings.TrimPrefix(srv.URL, "http://"), Options{Rules: rules, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return svc, p
}

// resilientClient is an ingest client tuned so retries through a hostile
// proxy converge fast under test.
func resilientClient(base string, stream uint32) *ingest.Client {
	return &ingest.Client{
		Base:            base,
		Stream:          stream,
		HTTP:            &http.Client{Timeout: time.Second},
		RetryFor:        30 * time.Second,
		MaxBackoff:      10 * time.Millisecond,
		FailThreshold:   4,
		BreakerCooldown: 20 * time.Millisecond,
	}
}

// TestProxyFaultMatrix drives the ingest client through the proxy under
// every fault kind in turn. The contract for each: every logical send
// either succeeds (possibly via idempotent retry — duplicates are
// detected, never double-counted) or fails with a clean error, and the
// server's accepted multiset equals the sent multiset. No partial acks,
// no hangs.
func TestProxyFaultMatrix(t *testing.T) {
	const batches, perBatch = 5, 40
	cases := []struct {
		name  string
		rules []Rule
		fired func(Stats) int64
	}{
		{"reset-up", []Rule{{Op: OpUp, After: 1, Kind: KindReset}}, func(s Stats) int64 { return s.Resets }},
		{"reset-down", []Rule{{Op: OpDown, Kind: KindReset}}, func(s Stats) int64 { return s.Resets }},
		{"torn-up", []Rule{{Op: OpUp, After: 2, Kind: KindTorn, Frac: 0.4}}, func(s Stats) int64 { return s.Torn }},
		{"torn-down", []Rule{{Op: OpDown, After: 1, Kind: KindTorn}}, func(s Stats) int64 { return s.Torn }},
		{"blackhole-up", []Rule{{Op: OpUp, After: 1, Kind: KindBlackhole}}, func(s Stats) int64 { return s.Blackholed }},
		{"blackhole-down", []Rule{{Op: OpDown, After: 1, Kind: KindBlackhole}}, func(s Stats) int64 { return s.Blackholed }},
		{"latency", []Rule{{Op: OpUp, Count: -1, Kind: KindLatency, Delay: time.Millisecond, Jitter: time.Millisecond}}, func(s Stats) int64 { return s.Delayed }},
		{"trickle-down", []Rule{{Op: OpDown, Count: -1, Kind: KindTrickle, Delay: 100 * time.Microsecond, TrickleBytes: 16}}, func(s Stats) int64 { return s.Trickled }},
		{"bandwidth-up", []Rule{{Op: OpUp, Count: -1, Kind: KindBandwidth, Rate: 512 << 10}}, func(s Stats) int64 { return s.Throttled }},
		{"dial-fail", []Rule{{Op: OpDial, Count: 2, Kind: KindReset}}, func(s Stats) int64 { return s.DialErrors }},
		{"accept-reset", []Rule{{Op: OpAccept, Count: 2, Kind: KindReset}}, func(s Stats) int64 { return s.Resets }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc, p := newIngestStack(t, tc.rules)
			cl := resilientClient(p.URL(), 1)
			var accepted, acked int
			for b := 0; b < batches; b++ {
				res, err := cl.Send(context.Background(), chaosBatch(0, perBatch, b))
				if err != nil {
					t.Fatalf("send %d did not converge through %s: %v", b, tc.name, err)
				}
				if res.Accepted+res.Duplicate != perBatch {
					t.Fatalf("send %d partial ack: %+v", b, res)
				}
				accepted += res.Accepted
				acked += res.Accepted + res.Duplicate
			}
			// Idempotency: every record landed exactly once, whatever the
			// acks said about retries.
			if st := svc.Stats(); st.MemtableRecords != batches*perBatch {
				t.Fatalf("server holds %d records, want %d (accepted=%d acked=%d, proxy=%+v)",
					st.MemtableRecords, batches*perBatch, accepted, acked, p.Stats())
			}
			if tc.fired(p.Stats()) == 0 {
				t.Fatalf("fault %s never fired: %+v", tc.name, p.Stats())
			}
		})
	}
}

// A wire that stays dead fails the send with a typed clean error — the
// circuit breaker's — and leaves no partial state on the server.
func TestDeadWireTypedError(t *testing.T) {
	svc, p := newIngestStack(t, []Rule{{Op: OpAccept, Count: -1, Kind: KindReset}})
	cl := resilientClient(p.URL(), 1)
	cl.RetryFor = 300 * time.Millisecond
	cl.FailThreshold = 2
	cl.BreakerCooldown = time.Hour

	_, err := cl.Send(context.Background(), chaosBatch(0, 10, 0))
	var open *ingest.BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("send over dead wire = %v, want BreakerOpenError", err)
	}
	if st := svc.Stats(); st.MemtableRecords != 0 {
		t.Fatalf("dead wire still landed %d records", st.MemtableRecords)
	}
	if m := cl.Metrics(); m.BreakerOpens != 1 || m.TransportFailures != 2 {
		t.Fatalf("client metrics = %+v", m)
	}
}

// dayRecords reads every record of one study day back out of a
// campaign directory, across all shards.
func dayRecords(t *testing.T, dir string, day int) *trace.ColumnBatch {
	t.Helper()
	fs, err := trace.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fs.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	cb := new(trace.ColumnBatch)
	var rec trace.Record
	for _, p := range parts {
		if p.Day != day {
			continue
		}
		it, err := fs.OpenPartition(p.Day, p.Shard)
		if err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			cb.AppendRecord(&rec)
		}
		it.Close()
	}
	return cb
}

// compareSealedDirs asserts the sealed artifacts — partitions and the
// campaign descriptor — are byte-identical across two campaign
// directories.
func compareSealedDirs(t *testing.T, want, got string) {
	t.Helper()
	read := func(dir string) map[string][]byte {
		out := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if name != "manifest.json" && !strings.HasSuffix(name, ".tlho") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			out[name] = data
		}
		return out
	}
	w, g := read(want), read(got)
	if len(w) == 0 {
		t.Fatal("reference campaign has no sealed artifacts")
	}
	for name, data := range w {
		gd, ok := g[name]
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if !bytes.Equal(data, gd) {
			t.Errorf("%s differs (%d vs %d bytes)", name, len(data), len(gd))
		}
	}
	for name := range g {
		if _, ok := w[name]; !ok {
			t.Errorf("unexpected %s", name)
		}
	}
}

// TestStreamedThroughChaosMatchesBatch is the wire-level acceptance
// property: a full campaign streamed through an adversarial proxy —
// connection resets, torn writes, injected latency, trickled acks, the
// lot — seals byte-identical to the batch-generated reference. Every
// fault along the way resolved into an idempotent retry.
func TestStreamedThroughChaosMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a campaign")
	}
	src := t.TempDir()
	fs, err := trace.NewFileStore(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.DefaultConfig(42)
	cfg.UEs = 250
	cfg.Days = 2
	cfg.Shards = 2
	cfg.Store = fs
	ds, err := simulate.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveManifest(src); err != nil {
		t.Fatal(err)
	}
	meta, err := simulate.LoadMeta(src)
	if err != nil {
		t.Fatal(err)
	}

	// Re-deliver as a shuffled, interleaved live stream.
	rng := rand.New(rand.NewSource(7))
	const batchSize = 157
	batches := make([][]*trace.ColumnBatch, cfg.Days)
	for day := 0; day < cfg.Days; day++ {
		recs := dayRecords(t, src, day)
		perm := rng.Perm(recs.Len())
		for lo := 0; lo < len(perm); lo += batchSize {
			hi := min(lo+batchSize, len(perm))
			idx := make([]int32, 0, hi-lo)
			for _, p := range perm[lo:hi] {
				idx = append(idx, int32(p))
			}
			b := new(trace.ColumnBatch)
			b.AppendGather(recs, idx)
			batches[day] = append(batches[day], b)
		}
	}

	dst := t.TempDir()
	svc, err := ingest.Open(dst, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// The adversarial wire: periodic resets in both directions, torn
	// writes mid-request, latency with seeded jitter, trickled acks,
	// and the occasional connection killed at accept.
	p, err := New(strings.TrimPrefix(srv.URL, "http://"), Options{
		Seed: 1337,
		Rules: []Rule{
			{Op: OpUp, After: 3, Every: 11, Kind: KindReset},
			{Op: OpUp, After: 7, Every: 17, Kind: KindTorn, Frac: 0.5},
			{Op: OpDown, After: 4, Every: 13, Kind: KindReset},
			{Op: OpUp, After: 1, Every: 3, Kind: KindLatency, Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond},
			{Op: OpDown, After: 2, Every: 19, Kind: KindTrickle, Delay: 50 * time.Microsecond, TrickleBytes: 32},
			{Op: OpAccept, After: 3, Every: 9, Kind: KindReset},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// One client per stream (= study day), all pointed at the proxy.
	clients := make([]*ingest.Client, cfg.Days)
	for day := range clients {
		clients[day] = resilientClient(p.URL(), uint32(day))
	}
	ctx := context.Background()
	streamMeta := *meta
	streamMeta.Config.Days = 0
	streamMeta.Config.WindowDays = cfg.Days
	streamMeta.DayStats = nil
	if err := clients[0].Init(ctx, &streamMeta); err != nil {
		t.Fatal(err)
	}

	// Interleave all days' batches round-robin through the hostile wire.
	sent := 0
	for i := 0; ; i++ {
		any := false
		for day := 0; day < cfg.Days; day++ {
			if i >= len(batches[day]) {
				continue
			}
			any = true
			res, err := clients[day].Send(ctx, batches[day][i])
			if err != nil {
				t.Fatalf("day %d batch %d did not converge: %v (proxy %+v)", day, i, err, p.Stats())
			}
			if res.Accepted+res.Duplicate != batches[day][i].Len() {
				t.Fatalf("day %d batch %d partial ack: %+v", day, i, res)
			}
			sent += batches[day][i].Len()
		}
		if !any {
			break
		}
	}
	for day := 0; day < cfg.Days; day++ {
		if err := clients[day].DayDone(ctx, day, meta.DayStats[day]); err != nil {
			t.Fatalf("day %d completion did not converge: %v", day, err)
		}
	}
	if st := svc.Stats(); st.SealedDays != cfg.Days || st.MemtableRecords != 0 {
		t.Fatalf("post-stream stats = %+v after %d records", st, sent)
	}

	// The proxy must actually have been adversarial, or this test
	// proves nothing.
	ps := p.Stats()
	if ps.Resets == 0 || ps.Torn == 0 || ps.Delayed == 0 {
		t.Fatalf("fault plan never fired: %+v", ps)
	}
	t.Logf("streamed %d records through %+v", sent, ps)

	compareSealedDirs(t, src, dst)
	if _, err := simulate.Load(dst); err != nil {
		t.Fatal(err)
	}
}
