// Package netchaos is the wire-level sibling of internal/faultfs: a
// seeded, deterministic in-process TCP chaos proxy that sits between a
// client (ingest.Client, telcoload) and a server (telcoserve) and
// makes the connection fail the way real networks fail — injected
// latency, bandwidth caps, abrupt connection resets, torn writes that
// deliver a prefix and die, blackholes that swallow bytes without
// forwarding, and slowloris trickle that stretches one payload over
// seconds.
//
// Faults are declared as rules in faultfs.Fault's fail-at-Nth-op
// style: each rule names an operation class (accept, upstream dial,
// client→upstream chunk, upstream→client chunk), the occurrence to
// fire at, and the failure kind. Each rule keeps its own match
// counter, so a plan is a pure function of the traffic shape and the
// seed — the chaos matrix replays identical fault schedules across
// runs. Latency jitter is drawn from a seeded PRNG.
//
// The proxy never rewrites bytes: every payload that is forwarded is
// forwarded verbatim, so an ingest stream that survives the proxy is
// the same stream — the matrix in this package's tests asserts a full
// campaign streamed through an adversarial proxy seals byte-identical
// to the batch campaign.
package netchaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op names one proxied operation class a Rule can match.
type Op string

// Operation classes. OpUp and OpDown count per forwarded chunk (one
// Read/Write cycle of the relay buffer), OpAccept per accepted client
// connection, OpDial per upstream dial.
const (
	OpAccept Op = "accept"
	OpDial   Op = "dial"
	OpUp     Op = "up"
	OpDown   Op = "down"
)

// Kind selects how a matched operation misbehaves.
type Kind int

const (
	// KindReset aborts both sides of the connection abruptly (SO_LINGER
	// 0, so the peer sees a RST where the platform supports it).
	KindReset Kind = iota
	// KindTorn forwards a prefix of the chunk (Frac of its bytes,
	// rounded down, at least 1) and then resets — the receiver sees a
	// torn payload.
	KindTorn
	// KindBlackhole stops forwarding in the matched direction: bytes
	// are still read from the source and dropped, the connection stays
	// open, and the peer waits until its own deadline fires.
	KindBlackhole
	// KindLatency delays the chunk by Delay plus seeded jitter, then
	// forwards it normally.
	KindLatency
	// KindTrickle forwards the chunk slowloris-style: TrickleBytes at a
	// time with Delay between slices.
	KindTrickle
	// KindBandwidth caps the connection's throughput in the matched
	// direction at Rate bytes/second from this chunk on.
	KindBandwidth
)

func (k Kind) String() string {
	switch k {
	case KindReset:
		return "reset"
	case KindTorn:
		return "torn"
	case KindBlackhole:
		return "blackhole"
	case KindLatency:
		return "latency"
	case KindTrickle:
		return "trickle"
	case KindBandwidth:
		return "bandwidth"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule makes matching operations misbehave. A rule matches the ops of
// its class numbered [After, After+Count) by that rule's own counter —
// or, with Every > 0, every Every-th op from After on. Count 0 means
// 1; Count < 0 means unlimited.
type Rule struct {
	// Op is the operation class to match.
	Op Op
	// After is the 0-based index of the first matching op.
	After int
	// Count bounds how many ops fire. For contiguous rules 0 means 1;
	// with Every > 0 it means unlimited. Negative is always unlimited.
	Count int
	// Every, when > 0, fires on every Every-th op from After instead of
	// a contiguous run.
	Every int
	// Kind selects the failure mode.
	Kind Kind
	// Delay is the injected wait for KindLatency and the inter-slice
	// wait for KindTrickle.
	Delay time.Duration
	// Jitter adds up to this much seeded-random extra wait to Delay.
	Jitter time.Duration
	// Frac is the delivered fraction for KindTorn (0 = 0.5).
	Frac float64
	// Rate is the KindBandwidth cap in bytes/second.
	Rate int
	// TrickleBytes is the KindTrickle slice size (0 = 1).
	TrickleBytes int
}

// ruleState pairs a rule with its private match counter.
type ruleState struct {
	Rule
	n     atomic.Int64 // ops of this class seen so far
	fired atomic.Int64
}

// matches reports whether this occurrence (the state's own counter)
// fires, and burns one firing from the budget if so.
func (rs *ruleState) matches(op Op) bool {
	if rs.Op != op {
		return false
	}
	n := int(rs.n.Add(1)) - 1
	if n < rs.After {
		return false
	}
	if rs.Every > 0 {
		if (n-rs.After)%rs.Every != 0 {
			return false
		}
	} else if rs.Count >= 0 {
		count := rs.Count
		if count == 0 {
			count = 1
		}
		if n >= rs.After+count {
			return false
		}
		rs.fired.Add(1)
		return true
	}
	if rs.Count > 0 && int(rs.fired.Load()) >= rs.Count {
		return false
	}
	rs.fired.Add(1)
	return true
}

// Stats counts what the proxy did, for assertions and operator output.
type Stats struct {
	Accepted   int64 `json:"accepted"`
	DialErrors int64 `json:"dial_errors"`
	Resets     int64 `json:"resets"`
	Torn       int64 `json:"torn"`
	Blackholed int64 `json:"blackholed"`
	Delayed    int64 `json:"delayed"`
	Trickled   int64 `json:"trickled"`
	Throttled  int64 `json:"throttled"`
	BytesUp    int64 `json:"bytes_up"`
	BytesDown  int64 `json:"bytes_down"`
}

// Options tunes a Proxy.
type Options struct {
	// Rules is the fault plan (empty = transparent proxy).
	Rules []Rule
	// Seed feeds the jitter PRNG (0 = 1).
	Seed int64
	// Addr is the listen address ("" = "127.0.0.1:0").
	Addr string
	// DialTimeout bounds each upstream dial (0 = 5s).
	DialTimeout time.Duration
}

// Proxy is a running chaos proxy. Close it to stop listening and tear
// down every proxied connection.
type Proxy struct {
	target string
	ln     net.Listener
	rules  []*ruleState
	dialTO time.Duration

	jmu sync.Mutex
	rng *rand.Rand

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}

	accepted   atomic.Int64
	dialErrors atomic.Int64
	resets     atomic.Int64
	torn       atomic.Int64
	blackholed atomic.Int64
	delayed    atomic.Int64
	trickled   atomic.Int64
	throttled  atomic.Int64
	bytesUp    atomic.Int64
	bytesDown  atomic.Int64
}

// New starts a proxy forwarding to target ("host:port").
func New(target string, opts Options) (*Proxy, error) {
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netchaos: listen %s: %w", addr, err)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	dialTO := opts.DialTimeout
	if dialTO == 0 {
		dialTO = 5 * time.Second
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
		dialTO: dialTO,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	for i := range opts.Rules {
		p.rules = append(p.rules, &ruleState{Rule: opts.Rules[i]})
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address ("host:port") for clients.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:   p.accepted.Load(),
		DialErrors: p.dialErrors.Load(),
		Resets:     p.resets.Load(),
		Torn:       p.torn.Load(),
		Blackholed: p.blackholed.Load(),
		Delayed:    p.delayed.Load(),
		Trickled:   p.trickled.Load(),
		Throttled:  p.throttled.Load(),
		BytesUp:    p.bytesUp.Load(),
		BytesDown:  p.bytesDown.Load(),
	}
}

// Close stops accepting and hard-closes every live connection.
func (p *Proxy) Close() error {
	close(p.done)
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	return err
}

// closed reports whether Close has been called.
func (p *Proxy) closed() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// jitter draws a seeded random wait in [0, j].
func (p *Proxy) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	p.jmu.Lock()
	defer p.jmu.Unlock()
	return time.Duration(p.rng.Int63n(int64(j) + 1))
}

// firing finds the first rule matching this op occurrence (each rule
// burns its own counter, so probing is itself the op accounting).
func (p *Proxy) firing(op Op) *ruleState {
	var hit *ruleState
	for _, rs := range p.rules {
		if rs.matches(op) && hit == nil {
			hit = rs
		}
	}
	return hit
}

// track registers a connection for teardown on Close.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// reset aborts a connection abruptly: linger 0 turns the close into a
// RST on platforms that support it, which is exactly the "connection
// reset by peer" a flaky middlebox produces.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		if rs := p.firing(OpAccept); rs != nil {
			switch rs.Kind {
			case KindLatency:
				time.Sleep(rs.Delay + p.jitter(rs.Jitter))
				p.delayed.Add(1)
			default:
				// Any non-latency fault at accept time is a reset: the
				// client's connection dies before a byte moves.
				p.resets.Add(1)
				reset(client)
				continue
			}
		}
		go p.serve(client)
	}
}

// serve relays one client connection to a fresh upstream connection.
func (p *Proxy) serve(client net.Conn) {
	defer client.Close()
	p.track(client)
	defer p.untrack(client)

	if rs := p.firing(OpDial); rs != nil && rs.Kind != KindLatency {
		// A faulted dial: the upstream is unreachable for this
		// connection. The client sees its connection die.
		p.dialErrors.Add(1)
		p.resets.Add(1)
		reset(client)
		return
	}
	up, err := net.DialTimeout("tcp", p.target, p.dialTO)
	if err != nil {
		p.dialErrors.Add(1)
		reset(client)
		return
	}
	defer up.Close()
	p.track(up)
	defer p.untrack(up)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.relay(client, up, OpUp, &p.bytesUp)
	}()
	go func() {
		defer wg.Done()
		p.relay(up, client, OpDown, &p.bytesDown)
	}()
	wg.Wait()
}

// relayBufSize is the chunk granularity faults operate at. Small
// enough that a batch POST spans several chunks (so mid-payload faults
// exist), large enough to stay cheap.
const relayBufSize = 16 << 10

// relay copies src→dst chunk-wise, applying the fault plan to each
// chunk. Any fault or copy error tears down both directions (closing
// the conns unblocks the sibling relay's Read).
func (p *Proxy) relay(src, dst net.Conn, op Op, bytes *atomic.Int64) {
	buf := make([]byte, relayBufSize)
	blackholed := false
	var capRate int // bytes/sec, 0 = uncapped
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if rs := p.firing(op); rs != nil {
				switch rs.Kind {
				case KindReset:
					p.resets.Add(1)
					reset(src)
					reset(dst)
					return
				case KindTorn:
					frac := rs.Frac
					if frac <= 0 || frac >= 1 {
						frac = 0.5
					}
					keep := int(float64(n) * frac)
					if keep < 1 {
						keep = 1
					}
					if _, err := dst.Write(buf[:keep]); err == nil {
						bytes.Add(int64(keep))
					}
					p.torn.Add(1)
					p.resets.Add(1)
					reset(src)
					reset(dst)
					return
				case KindBlackhole:
					if !blackholed {
						p.blackholed.Add(1)
					}
					blackholed = true
				case KindLatency:
					p.delayed.Add(1)
					if !p.sleep(rs.Delay + p.jitter(rs.Jitter)) {
						return
					}
				case KindTrickle:
					p.trickled.Add(1)
					if !p.trickle(dst, buf[:n], rs, bytes) {
						reset(src)
						reset(dst)
						return
					}
					if rerr != nil {
						dst.Close()
						return
					}
					continue
				case KindBandwidth:
					if rs.Rate > 0 {
						if capRate == 0 {
							p.throttled.Add(1)
						}
						capRate = rs.Rate
					}
				}
			}
			if blackholed {
				// Swallow the chunk: the sender believes it made progress,
				// the receiver waits for bytes that never come.
				continue
			}
			if capRate > 0 {
				if !p.sleep(time.Duration(float64(n) / float64(capRate) * float64(time.Second))) {
					return
				}
			}
			if _, err := dst.Write(buf[:n]); err != nil {
				src.Close()
				return
			}
			bytes.Add(int64(n))
		}
		if rerr != nil {
			// Half-close where possible so the peer sees EOF, matching
			// what a transparent TCP path would deliver.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			return
		}
	}
}

// sleep waits d unless the proxy is closed first; false means closed.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return !p.closed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}

// trickle writes chunk in TrickleBytes-sized slices with Delay between
// them — the slowloris shape. False means the write failed or the
// proxy closed.
func (p *Proxy) trickle(dst net.Conn, chunk []byte, rs *ruleState, bytes *atomic.Int64) bool {
	slice := rs.TrickleBytes
	if slice < 1 {
		slice = 1
	}
	for lo := 0; lo < len(chunk); lo += slice {
		hi := min(lo+slice, len(chunk))
		if _, err := dst.Write(chunk[lo:hi]); err != nil {
			return false
		}
		bytes.Add(int64(hi - lo))
		if hi < len(chunk) && !p.sleep(rs.Delay) {
			return false
		}
	}
	return true
}

// ParseRules parses a comma-separated fault plan, the CLI surface of
// the proxy (telcoload -chaos-faults):
//
//	reset:up:after=10:every=50        reset every 50th upstream chunk
//	torn:up:after=100:frac=0.3        one torn write, 30% delivered
//	latency:down:delay=5ms:jitter=5ms delay every downstream chunk
//	trickle:up:after=5:delay=1ms:bytes=64
//	bandwidth:down:rate=65536         cap downstream at 64 KiB/s
//	blackhole:down:after=200:count=1
//
// Fields: kind:op[:k=v...]. Keys: after, count, every, delay, jitter,
// frac, rate, bytes.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("netchaos: rule %q: want kind:op[:k=v...]", part)
		}
		var r Rule
		switch fields[0] {
		case "reset":
			r.Kind = KindReset
		case "torn":
			r.Kind = KindTorn
		case "blackhole":
			r.Kind = KindBlackhole
		case "latency":
			r.Kind = KindLatency
		case "trickle":
			r.Kind = KindTrickle
		case "bandwidth":
			r.Kind = KindBandwidth
		default:
			return nil, fmt.Errorf("netchaos: rule %q: unknown kind %q", part, fields[0])
		}
		switch Op(fields[1]) {
		case OpAccept, OpDial, OpUp, OpDown:
			r.Op = Op(fields[1])
		default:
			return nil, fmt.Errorf("netchaos: rule %q: unknown op %q", part, fields[1])
		}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("netchaos: rule %q: bad field %q", part, kv)
			}
			var err error
			switch k {
			case "after":
				_, err = fmt.Sscanf(v, "%d", &r.After)
			case "count":
				_, err = fmt.Sscanf(v, "%d", &r.Count)
			case "every":
				_, err = fmt.Sscanf(v, "%d", &r.Every)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "jitter":
				r.Jitter, err = time.ParseDuration(v)
			case "frac":
				_, err = fmt.Sscanf(v, "%g", &r.Frac)
			case "rate":
				_, err = fmt.Sscanf(v, "%d", &r.Rate)
			case "bytes":
				_, err = fmt.Sscanf(v, "%d", &r.TrickleBytes)
			default:
				err = errors.New("unknown key")
			}
			if err != nil {
				return nil, fmt.Errorf("netchaos: rule %q: field %q: %v", part, kv, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}
