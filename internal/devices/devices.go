// Package devices models the GSMA device catalog the paper joins against
// (§3.1): TAC-indexed device models with manufacturer, device type and
// maximum supported RAT, plus the APN-keyword classification heuristic used
// to separate smartphones, M2M/IoT devices and low-tier feature phones.
package devices

import (
	"fmt"
	"strings"

	"telcolens/internal/topology"
)

// DeviceType is the paper's three-way device classification.
type DeviceType uint8

// Device types with their §4.2 population shares: smartphones 59.1%,
// M2M/IoT 39.8%, low-tier feature phones 1.1%.
const (
	Smartphone DeviceType = iota
	M2MIoT
	FeaturePhone
	numDeviceTypes
)

// AllDeviceTypes lists the device types in canonical order.
func AllDeviceTypes() []DeviceType { return []DeviceType{Smartphone, M2MIoT, FeaturePhone} }

// String returns the device type name.
func (d DeviceType) String() string {
	switch d {
	case Smartphone:
		return "Smartphone"
	case M2MIoT:
		return "M2M/IoT"
	case FeaturePhone:
		return "Feature Phone"
	default:
		return fmt.Sprintf("DeviceType(%d)", uint8(d))
	}
}

// TAC is the 8-digit Type Allocation Code prefix of an IMEI identifying a
// device model.
type TAC uint32

// Quirk captures manufacturer-specific mobility-management behaviour. The
// paper observes (Fig 11) that most manufacturers behave like their peers
// (ratios ≈1), Google devices see fewer failures (-27%), and some niche
// manufacturers show up to +600% HOF rates (KVD, HMD) or +293% HO
// signaling (Simcom).
type Quirk struct {
	HOMult  float64 // multiplier on handovers generated per UE
	HOFMult float64 // multiplier on handover failure probability
}

// DefaultQuirk is neutral behaviour.
var DefaultQuirk = Quirk{HOMult: 1, HOFMult: 1}

// Model is one catalog entry (a device model identified by TAC).
type Model struct {
	TAC          TAC
	Manufacturer string
	Type         DeviceType // ground-truth type (hidden from the classifier)
	MaxRAT       topology.RAT
	Category     string // the GSMA marketing category the classifier sees
	Quirk        Quirk
	Weight       float64 // relative population share of this model
}

// SupportsRAT reports whether the model can attach to the given RAT.
func (m *Model) SupportsRAT(r topology.RAT) bool { return r <= m.MaxRAT }

// Catalog is the full TAC database.
type Catalog struct {
	Models []Model
	byTAC  map[TAC]int
}

// ByTAC resolves a TAC to its model, or nil.
func (c *Catalog) ByTAC(t TAC) *Model {
	idx, ok := c.byTAC[t]
	if !ok {
		return nil
	}
	return &c.Models[idx]
}

// Len returns the number of catalog entries.
func (c *Catalog) Len() int { return len(c.Models) }

// buildIndex fills the TAC lookup map.
func (c *Catalog) buildIndex() error {
	c.byTAC = make(map[TAC]int, len(c.Models))
	for i, m := range c.Models {
		if _, dup := c.byTAC[m.TAC]; dup {
			return fmt.Errorf("devices: duplicate TAC %d", m.TAC)
		}
		c.byTAC[m.TAC] = i
	}
	return nil
}

// m2mAPNKeywords are the APN substrings the paper's heuristic associates
// with IoT verticals (§3.1).
var m2mAPNKeywords = []string{"m2m", "smart-meter", "smartmeter", "telemetry", "iot", "fleet", "scada"}

// Classify reproduces the paper's device classification heuristic: the APN
// is checked for IoT-vertical keywords first; otherwise the GSMA marketing
// category decides. It never consults the hidden ground-truth type, so
// tests can measure its accuracy against the generator's truth.
func Classify(m *Model, apn string) DeviceType {
	lower := strings.ToLower(apn)
	for _, kw := range m2mAPNKeywords {
		if strings.Contains(lower, kw) {
			return M2MIoT
		}
	}
	if m == nil {
		return Smartphone // unknown TAC: the dominant class
	}
	switch m.Category {
	case "Module", "Router", "Modem", "Wearable", "Tracker", "Meter":
		return M2MIoT
	case "Basic Phone", "Feature Phone":
		return FeaturePhone
	default: // "Handheld", "Smartphone", "Tablet", ...
		return Smartphone
	}
}
