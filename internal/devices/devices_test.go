package devices

import (
	"math"
	"testing"

	"telcolens/internal/randx"
	"telcolens/internal/topology"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := GenerateCatalog(42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCatalogShape(t *testing.T) {
	c := testCatalog(t)
	if c.Len() < 200 {
		t.Fatalf("catalog has only %d models", c.Len())
	}
	// TACs unique and resolvable.
	for i := range c.Models {
		m := &c.Models[i]
		if got := c.ByTAC(m.TAC); got != m {
			t.Fatalf("ByTAC(%d) failed", m.TAC)
		}
	}
	if c.ByTAC(1) != nil {
		t.Fatal("unknown TAC resolved")
	}
}

func TestCatalogDeterminism(t *testing.T) {
	a, err := GenerateCatalog(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCatalog(9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic catalog size")
	}
	for i := range a.Models {
		if a.Models[i] != b.Models[i] {
			t.Fatalf("model %d differs", i)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	c := testCatalog(t)
	var sum float64
	for _, m := range c.Models {
		if m.Weight <= 0 {
			t.Fatalf("model %d has non-positive weight", m.TAC)
		}
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

func sampleUEs(t *testing.T, c *Catalog, n int) []*Model {
	t.Helper()
	s, err := NewSampler(c)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(7)
	out := make([]*Model, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

func TestSampledTypeShares(t *testing.T) {
	c := testCatalog(t)
	ues := sampleUEs(t, c, 200000)
	counts := make(map[DeviceType]int)
	for _, m := range ues {
		counts[m.Type]++
	}
	n := float64(len(ues))
	// Fig 4a: smartphones 59.1%, M2M 39.8%, feature 1.1%.
	if got := float64(counts[Smartphone]) / n; math.Abs(got-0.591) > 0.01 {
		t.Errorf("smartphone share = %.4f", got)
	}
	if got := float64(counts[M2MIoT]) / n; math.Abs(got-0.398) > 0.01 {
		t.Errorf("M2M share = %.4f", got)
	}
	if got := float64(counts[FeaturePhone]) / n; math.Abs(got-0.011) > 0.005 {
		t.Errorf("feature share = %.4f", got)
	}
}

func TestSampledManufacturerShares(t *testing.T) {
	c := testCatalog(t)
	ues := sampleUEs(t, c, 200000)
	smart := make(map[string]int)
	nSmart := 0
	for _, m := range ues {
		if m.Type == Smartphone {
			smart[m.Manufacturer]++
			nSmart++
		}
	}
	// Fig 4a smartphone panel.
	want := map[string]float64{"Apple": 0.548, "Samsung": 0.302, "Motorola": 0.030, "Google": 0.020, "Huawei": 0.019}
	for mfr, share := range want {
		got := float64(smart[mfr]) / float64(nSmart)
		if math.Abs(got-share) > 0.012 {
			t.Errorf("%s share = %.4f, want %.3f", mfr, got, share)
		}
	}
}

func TestSampledRATSupport(t *testing.T) {
	c := testCatalog(t)
	ues := sampleUEs(t, c, 200000)
	var only2G, upTo3G, fiveG, smart5G, nSmart, m2mUpTo3G, nM2M int
	for _, m := range ues {
		switch m.MaxRAT {
		case topology.TwoG:
			only2G++
			upTo3G++
		case topology.ThreeG:
			upTo3G++
		case topology.FiveG:
			fiveG++
		}
		if m.Type == Smartphone {
			nSmart++
			if m.MaxRAT == topology.FiveG {
				smart5G++
			}
		}
		if m.Type == M2MIoT {
			nM2M++
			if m.MaxRAT <= topology.ThreeG {
				m2mUpTo3G++
			}
		}
	}
	n := float64(len(ues))
	// §4.2: 12.6% only 2G; 32.7% at most 3G; 48.5% of smartphones 5G-able;
	// ≈80% of M2M top out at 3G.
	if got := float64(only2G) / n; math.Abs(got-0.126) > 0.02 {
		t.Errorf("2G-only share = %.4f", got)
	}
	if got := float64(upTo3G) / n; math.Abs(got-0.327) > 0.03 {
		t.Errorf("up-to-3G share = %.4f", got)
	}
	if got := float64(smart5G) / float64(nSmart); math.Abs(got-0.485) > 0.03 {
		t.Errorf("5G smartphone share = %.4f", got)
	}
	if got := float64(m2mUpTo3G) / float64(nM2M); math.Abs(got-0.79) > 0.05 {
		t.Errorf("M2M up-to-3G share = %.4f", got)
	}
}

func TestSupportsRAT(t *testing.T) {
	m := Model{MaxRAT: topology.ThreeG}
	if !m.SupportsRAT(topology.TwoG) || !m.SupportsRAT(topology.ThreeG) {
		t.Fatal("lower RATs must be supported")
	}
	if m.SupportsRAT(topology.FourG) || m.SupportsRAT(topology.FiveG) {
		t.Fatal("higher RATs must not be supported")
	}
}

func TestQuirkOutliersPresent(t *testing.T) {
	c := testCatalog(t)
	seen := map[string]Quirk{}
	for _, m := range c.Models {
		seen[m.Manufacturer] = m.Quirk
	}
	if q := seen["KVD"]; q.HOFMult < 5 {
		t.Fatalf("KVD HOF quirk = %+v, want ~7x", q)
	}
	if q := seen["Simcom"]; q.HOMult < 3 {
		t.Fatalf("Simcom HO quirk = %+v, want ~3.9x", q)
	}
	if q := seen["Google"]; q.HOFMult > 0.8 {
		t.Fatalf("Google HOF quirk = %+v, want ~0.73x", q)
	}
}

func TestClassifierAPNKeywordWins(t *testing.T) {
	m := &Model{Category: "Smartphone", Type: Smartphone}
	if got := Classify(m, "smart-meter.grid.example"); got != M2MIoT {
		t.Fatalf("APN keyword ignored: %s", got)
	}
	if got := Classify(m, "M2M.OPERATOR.example"); got != M2MIoT {
		t.Fatal("classifier is case-sensitive")
	}
	if got := Classify(nil, "internet"); got != Smartphone {
		t.Fatal("nil model should default to smartphone")
	}
}

func TestClassifierAccuracy(t *testing.T) {
	c := testCatalog(t)
	s, err := NewSampler(c)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(3)
	const n = 50000
	correct := 0
	for i := 0; i < n; i++ {
		m := s.Sample(r)
		apn := SampleAPN(r, m.Type)
		if Classify(m, apn) == m.Type {
			correct++
		}
	}
	acc := float64(correct) / n
	// The heuristic should be good but not magically perfect.
	if acc < 0.95 {
		t.Fatalf("classifier accuracy = %.4f, want ≥0.95", acc)
	}
	if acc == 1.0 {
		t.Fatal("classifier accuracy exactly 1.0: catalog noise is not being exercised")
	}
}

func TestSampleOfType(t *testing.T) {
	c := testCatalog(t)
	s, err := NewSampler(c)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(11)
	for _, dt := range AllDeviceTypes() {
		for i := 0; i < 100; i++ {
			if m := s.SampleOfType(r, dt); m.Type != dt {
				t.Fatalf("SampleOfType(%s) returned %s", dt, m.Type)
			}
		}
	}
}

func TestDeviceTypeStrings(t *testing.T) {
	if Smartphone.String() != "Smartphone" || M2MIoT.String() != "M2M/IoT" || FeaturePhone.String() != "Feature Phone" {
		t.Fatal("device type names wrong")
	}
}

func BenchmarkSample(b *testing.B) {
	c, err := GenerateCatalog(1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSampler(c)
	if err != nil {
		b.Fatal(err)
	}
	r := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(r)
	}
}
