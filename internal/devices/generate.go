package devices

import (
	"fmt"
	"math"
	"sort"

	"telcolens/internal/randx"
	"telcolens/internal/topology"
)

// TypeShares are the §4.2 device-type population shares.
var TypeShares = map[DeviceType]float64{
	Smartphone:   0.591,
	M2MIoT:       0.398,
	FeaturePhone: 0.011,
}

// manufacturerEntry defines one manufacturer's share within a device type
// plus its behavioural quirk.
type manufacturerEntry struct {
	name   string
	share  float64 // percent within the device type
	models int     // catalog entries to generate
	quirk  Quirk
}

// Manufacturer mixes per device type, from Fig 4a. The named "Other"
// remainder is split across plausible niche manufacturers, including the
// high-HOF / high-signaling outliers of Fig 11 (KVD, HMD, Simcom, Gotron,
// Tecno).
var manufacturerMix = map[DeviceType][]manufacturerEntry{
	Smartphone: {
		{"Apple", 54.8, 40, Quirk{HOMult: 1.04, HOFMult: 1.08}},
		{"Samsung", 30.2, 45, Quirk{HOMult: 1.00, HOFMult: 1.00}},
		{"Motorola", 3.0, 12, Quirk{HOMult: 0.97, HOFMult: 1.05}},
		{"Google", 2.0, 8, Quirk{HOMult: 1.00, HOFMult: 0.73}},
		{"Huawei", 1.9, 14, Quirk{HOMult: 1.02, HOFMult: 1.00}},
		{"Xiaomi", 3.4, 14, Quirk{HOMult: 1.01, HOFMult: 1.10}},
		{"Oppo", 1.6, 8, Quirk{HOMult: 0.99, HOFMult: 1.15}},
		{"KVD", 0.9, 4, Quirk{HOMult: 1.30, HOFMult: 7.00}},
		{"Tecno", 1.1, 5, Quirk{HOMult: 1.15, HOFMult: 3.20}},
		{"Gotron", 1.1, 4, Quirk{HOMult: 1.20, HOFMult: 4.20}},
	},
	M2MIoT: {
		{"Wistron", 23.2, 10, Quirk{HOMult: 1.00, HOFMult: 1.00}},
		{"Toshiba", 18.1, 9, Quirk{HOMult: 0.95, HOFMult: 1.05}},
		{"Gemalto", 15.4, 9, Quirk{HOMult: 1.00, HOFMult: 1.00}},
		{"Telit", 9.4, 8, Quirk{HOMult: 1.05, HOFMult: 1.10}},
		{"Peiker", 6.3, 6, Quirk{HOMult: 1.00, HOFMult: 1.00}},
		{"Simcom", 7.9, 6, Quirk{HOMult: 3.93, HOFMult: 1.60}},
		{"Quectel", 7.2, 6, Quirk{HOMult: 1.10, HOFMult: 1.20}},
		{"Sierra", 6.5, 5, Quirk{HOMult: 1.00, HOFMult: 1.00}},
		{"Cinterion", 6.0, 5, Quirk{HOMult: 1.00, HOFMult: 1.00}},
	},
	FeaturePhone: {
		{"HMD", 16.7, 6, Quirk{HOMult: 1.10, HOFMult: 7.00}},
		{"Doro", 12.5, 5, Quirk{HOMult: 1.00, HOFMult: 1.80}},
		{"Samsung", 11.0, 5, Quirk{HOMult: 1.00, HOFMult: 1.00}},
		{"TCL", 9.6, 4, Quirk{HOMult: 1.00, HOFMult: 1.20}},
		{"Verve", 7.6, 4, Quirk{HOMult: 1.00, HOFMult: 1.50}},
		{"Alcatel", 15.0, 5, Quirk{HOMult: 1.00, HOFMult: 1.30}},
		{"Emporia", 14.0, 5, Quirk{HOMult: 1.00, HOFMult: 1.40}},
		{"Energizer", 13.6, 5, Quirk{HOMult: 1.00, HOFMult: 1.25}},
	},
}

// ratSupportMix gives, per device type, the probability that a model's
// maximum supported RAT is 2G/3G/4G/5G. Calibrated to Fig 4b: 12.6% of all
// UEs support only 2G, 20.1% up to 3G, ≈80% of M2M/IoT tops out at 3G, and
// 48.5% of smartphones are 5G-capable.
var ratSupportMix = map[DeviceType][4]float64{
	Smartphone:   {0.002, 0.028, 0.485, 0.485},
	M2MIoT:       {0.309, 0.480, 0.195, 0.016},
	FeaturePhone: {0.287, 0.234, 0.479, 0.000},
}

// categoryOf maps (type, manufacturer) to the GSMA marketing category the
// classifier sees. A small error rate models catalog noise.
func categoryOf(r *randx.Rand, t DeviceType) string {
	noise := r.Float64()
	switch t {
	case Smartphone:
		if noise < 0.01 {
			return "Handheld"
		}
		return "Smartphone"
	case M2MIoT:
		if noise < 0.02 {
			// Mislabeled entries: the APN keyword usually rescues these.
			return "Handheld"
		}
		cats := []string{"Module", "Router", "Modem", "Tracker", "Meter", "Wearable"}
		return cats[r.Intn(len(cats))]
	default:
		if noise < 0.03 {
			return "Handheld"
		}
		if r.Bool(0.5) {
			return "Basic Phone"
		}
		return "Feature Phone"
	}
}

// GenerateCatalog builds a deterministic synthetic TAC catalog with the
// calibrated manufacturer, type and RAT-support mixes.
func GenerateCatalog(seed uint64) (*Catalog, error) {
	r := randx.NewStream(seed, "devices", 0)
	c := &Catalog{}
	nextTAC := TAC(35_000_000)
	for _, t := range AllDeviceTypes() {
		mix := manufacturerMix[t]
		var shareSum float64
		for _, e := range mix {
			shareSum += e.share
		}
		if shareSum < 99.9 || shareSum > 100.1 {
			return nil, fmt.Errorf("devices: %s manufacturer shares sum to %.2f", t, shareSum)
		}
		ratMix := ratSupportMix[t]
		for _, e := range mix {
			// Per-model popularity: a heavy-tailed split of the
			// manufacturer share across its models.
			weights := make([]float64, e.models)
			var wsum float64
			for i := range weights {
				weights[i] = r.Pareto(1, 1.3)
				wsum += weights[i]
			}
			for i := 0; i < e.models; i++ {
				c.Models = append(c.Models, Model{
					TAC:          nextTAC,
					Manufacturer: e.name,
					Type:         t,
					Category:     categoryOf(r, t),
					Quirk:        e.quirk,
					Weight:       TypeShares[t] * e.share / 100 * weights[i] / wsum,
				})
				nextTAC++
			}
		}
		assignMaxRATs(c, t, ratMix)
	}
	if err := c.buildIndex(); err != nil {
		return nil, err
	}
	return c, nil
}

// assignMaxRATs distributes maximum supported RATs over a device type's
// models so that the *population-weighted* RAT-support shares match the
// calibration targets despite heavy-tailed model popularity: models are
// processed in descending weight order and each one is assigned the RAT
// with the largest remaining share deficit.
func assignMaxRATs(c *Catalog, t DeviceType, mix [4]float64) {
	var idx []int
	var totalW float64
	for i := range c.Models {
		if c.Models[i].Type == t {
			idx = append(idx, i)
			totalW += c.Models[i].Weight
		}
	}
	sort.Slice(idx, func(a, b int) bool { return c.Models[idx[a]].Weight > c.Models[idx[b]].Weight })
	var assigned [4]float64
	for _, i := range idx {
		best, bestDeficit := 0, math.Inf(-1)
		for rat := 0; rat < 4; rat++ {
			deficit := mix[rat]*totalW - assigned[rat]
			if deficit > bestDeficit {
				best, bestDeficit = rat, deficit
			}
		}
		c.Models[i].MaxRAT = topology.RAT(best)
		assigned[best] += c.Models[i].Weight
	}
}

// Sampler draws device models with probability proportional to their
// population weight, optionally restricted to a device type.
type Sampler struct {
	catalog *Catalog
	all     *randx.WeightedChoice
	byType  map[DeviceType]*typeSampler
}

type typeSampler struct {
	choice  *randx.WeightedChoice
	indexes []int
}

// NewSampler prepares weighted samplers over the catalog.
func NewSampler(c *Catalog) (*Sampler, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("devices: empty catalog")
	}
	weights := make([]float64, c.Len())
	for i, m := range c.Models {
		weights[i] = m.Weight
	}
	all, err := randx.NewWeightedChoice(weights)
	if err != nil {
		return nil, err
	}
	s := &Sampler{catalog: c, all: all, byType: make(map[DeviceType]*typeSampler)}
	for _, t := range AllDeviceTypes() {
		var idx []int
		var w []float64
		for i, m := range c.Models {
			if m.Type == t {
				idx = append(idx, i)
				w = append(w, m.Weight)
			}
		}
		if len(idx) == 0 {
			return nil, fmt.Errorf("devices: no models of type %s", t)
		}
		choice, err := randx.NewWeightedChoice(w)
		if err != nil {
			return nil, err
		}
		s.byType[t] = &typeSampler{choice: choice, indexes: idx}
	}
	return s, nil
}

// Sample draws a model according to population weights.
func (s *Sampler) Sample(r *randx.Rand) *Model {
	return &s.catalog.Models[s.all.Sample(r)]
}

// SampleOfType draws a model of the given device type.
func (s *Sampler) SampleOfType(r *randx.Rand, t DeviceType) *Model {
	ts := s.byType[t]
	return &s.catalog.Models[ts.indexes[ts.choice.Sample(r)]]
}

// SampleAPN draws an APN string consistent with a device's true type: IoT
// verticals configure keyword-bearing APNs on most of their fleet, while
// phones use generic consumer APNs.
func SampleAPN(r *randx.Rand, t DeviceType) string {
	if t == M2MIoT && r.Bool(0.9) {
		apns := []string{
			"m2m.operator.example", "smart-meter.grid.example", "telemetry.fleet.example",
			"iot.vertical.example", "fleet.m2m.example", "scada.utility.example",
		}
		return apns[r.Intn(len(apns))]
	}
	apns := []string{"internet.operator.example", "wap.operator.example", "lte.operator.example"}
	return apns[r.Intn(len(apns))]
}
