package topology

// YearDeployment is one year of the network deployment evolution series
// behind the paper's Figure 3a: the share of sectors per RAT and the total
// deployment size normalized to the final year.
type YearDeployment struct {
	Year            int
	Share           map[RAT]float64 // sums to 1
	TotalNormalized float64         // total sectors / total sectors in 2023
}

// evolutionTable is the reconstructed 2009–2023 deployment history. The
// endpoints are pinned to the paper's published 2023 mix (5G 8.4%, 4G 55%,
// 2G/3G ≈18.3% each) and to its qualitative description: exponential
// growth (≈59% cumulative over 2018–2023), 4G arriving in 2012, 5G-NR in
// 2019, and gradual 2G/3G decommissioning.
var evolutionTable = []struct {
	year                    int
	s2g, s3g, s4g, s5g, tot float64
}{
	{2009, 0.780, 0.220, 0.000, 0.000, 0.130},
	{2010, 0.720, 0.280, 0.000, 0.000, 0.160},
	{2011, 0.660, 0.340, 0.000, 0.000, 0.200},
	{2012, 0.580, 0.380, 0.040, 0.000, 0.250},
	{2013, 0.500, 0.400, 0.100, 0.000, 0.300},
	{2014, 0.440, 0.390, 0.170, 0.000, 0.360},
	{2015, 0.390, 0.370, 0.240, 0.000, 0.420},
	{2016, 0.350, 0.340, 0.310, 0.000, 0.480},
	{2017, 0.310, 0.310, 0.380, 0.000, 0.550},
	{2018, 0.280, 0.280, 0.440, 0.000, 0.630},
	{2019, 0.260, 0.250, 0.480, 0.010, 0.690},
	{2020, 0.240, 0.230, 0.500, 0.030, 0.760},
	{2021, 0.220, 0.210, 0.520, 0.050, 0.840},
	{2022, 0.200, 0.195, 0.535, 0.070, 0.920},
	{2023, 0.183, 0.183, 0.550, 0.084, 1.000},
}

// EvolutionSeries returns the 2009–2023 deployment evolution used to
// regenerate Figure 3a.
func EvolutionSeries() []YearDeployment {
	out := make([]YearDeployment, len(evolutionTable))
	for i, row := range evolutionTable {
		out[i] = YearDeployment{
			Year: row.year,
			Share: map[RAT]float64{
				TwoG:   row.s2g,
				ThreeG: row.s3g,
				FourG:  row.s4g,
				FiveG:  row.s5g,
			},
			TotalNormalized: row.tot,
		}
	}
	return out
}
