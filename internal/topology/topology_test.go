package topology

import (
	"math"
	"testing"

	"telcolens/internal/census"
	"telcolens/internal/geo"
)

func testNetwork(t *testing.T) (*Network, *census.Country) {
	t.Helper()
	country, err := census.Generate(census.DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Generate(DefaultGenConfig(42), country)
	if err != nil {
		t.Fatal(err)
	}
	return net, country
}

func TestGenerateValidates(t *testing.T) {
	net, _ := testNetwork(t)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.Sites) < 2000 {
		t.Fatalf("sites = %d", len(net.Sites))
	}
	if len(net.Sectors) < 5*len(net.Sites) {
		t.Fatalf("sectors = %d for %d sites", len(net.Sectors), len(net.Sites))
	}
}

func TestRATMixMatchesPaper(t *testing.T) {
	net, _ := testNetwork(t)
	share := net.ShareByRAT()
	// Paper §4.1: 5G 8.4%, 4G 55%, 2G/3G ≈18.3% each. Allow sampling slack.
	cases := []struct {
		rat  RAT
		want float64
		tol  float64
	}{
		{FiveG, 0.084, 0.02},
		{FourG, 0.55, 0.03},
		{TwoG, 0.183, 0.03},
		{ThreeG, 0.183, 0.03},
	}
	for _, c := range cases {
		if got := share[c.rat]; math.Abs(got-c.want) > c.tol {
			t.Errorf("%s share = %.4f, want %.3f±%.3f", c.rat, got, c.want, c.tol)
		}
	}
}

func TestUrbanSectorShare(t *testing.T) {
	net, _ := testNetwork(t)
	got := net.UrbanSectorShare()
	// Paper §5.1: ≈80% of sectors are in urban areas.
	if got < 0.70 || got > 0.92 {
		t.Fatalf("urban sector share = %.3f, want ≈0.80", got)
	}
}

func TestEverySiteHasFourG(t *testing.T) {
	net, _ := testNetwork(t)
	for _, s := range net.Sites {
		if !s.HasRAT(FourG) {
			t.Fatalf("site %d lacks the 4G anchor layer", s.ID)
		}
	}
}

func TestCapitalCenterDensity(t *testing.T) {
	net, country := testNetwork(t)
	var capID int = -1
	for _, d := range country.Districts {
		if d.CapitalCenter {
			capID = d.ID
		}
	}
	if capID < 0 {
		t.Fatal("no capital center district")
	}
	capDistrict := country.District(capID)
	capDensity := float64(len(net.SectorsInDistrict(capID))) / capDistrict.AreaKm2
	// Every other district must have lower sector density.
	for _, d := range country.Districts {
		if d.ID == capID {
			continue
		}
		density := float64(len(net.SectorsInDistrict(d.ID))) / d.AreaKm2
		if density > capDensity {
			t.Fatalf("district %s sector density %.2f exceeds capital center %.2f",
				d.Name, density, capDensity)
		}
	}
}

func TestEveryDistrictHasSites(t *testing.T) {
	net, country := testNetwork(t)
	for _, d := range country.Districts {
		if len(net.SitesInDistrict(d.ID)) == 0 {
			t.Fatalf("district %s has no sites", d.Name)
		}
		if len(net.SectorsInDistrict(d.ID)) == 0 {
			t.Fatalf("district %s has no sectors", d.Name)
		}
	}
}

func TestVendorRegionalSkew(t *testing.T) {
	net, _ := testNetwork(t)
	shares := net.VendorShareByRegion()
	// V3 concentrates in the West, per the generator's calibration.
	if shares[census.West][V3] < 0.4 {
		t.Fatalf("V3 share in West = %.3f, want majority-ish", shares[census.West][V3])
	}
	if shares[census.CapitalArea][V3] > 0.15 {
		t.Fatalf("V3 share in capital = %.3f, want small", shares[census.CapitalArea][V3])
	}
	// All four vendors exist somewhere.
	seen := make(map[Vendor]bool)
	for _, s := range net.Sectors {
		seen[s.Vendor] = true
	}
	for _, v := range AllVendors() {
		if !seen[v] {
			t.Fatalf("vendor %s absent from deployment", v)
		}
	}
}

func TestNeighborGraph(t *testing.T) {
	net, _ := testNetwork(t)
	for _, s := range net.Sites {
		nbs := net.NeighborSites(s.ID)
		for _, nb := range nbs {
			if nb == s.ID {
				t.Fatalf("site %d is its own neighbor", s.ID)
			}
			if net.Sites[nb].DistrictID != s.DistrictID {
				t.Fatalf("site %d neighbor %d crosses districts", s.ID, nb)
			}
		}
	}
	// Neighbors should be sorted by distance (closest first).
	site := net.Sites[0]
	nbs := net.NeighborSites(site.ID)
	var prev float64 = -1
	for _, nb := range nbs {
		d := geo.DistanceKm(site.Loc, net.Sites[nb].Loc)
		if d < prev {
			t.Fatal("neighbors not in ascending distance order")
		}
		prev = d
	}
}

func TestDeterminism(t *testing.T) {
	country, err := census.Generate(census.DefaultGenConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(DefaultGenConfig(9), country)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(9), country)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sectors) != len(b.Sectors) {
		t.Fatal("same seed produced different sector counts")
	}
	for i := range a.Sectors {
		if a.Sectors[i] != b.Sectors[i] {
			t.Fatalf("sector %d differs across identical runs", i)
		}
	}
}

func TestNewSitesWithinWindow(t *testing.T) {
	net, _ := testNetwork(t)
	upgraded := 0
	for _, s := range net.Sites {
		if s.DeployedDay > 0 {
			upgraded++
			if s.DeployedDay > 28 {
				t.Fatalf("site %d deployed on day %d, window is 28", s.ID, s.DeployedDay)
			}
		}
	}
	if upgraded == 0 {
		t.Fatal("no mid-window deployments generated")
	}
}

func TestLookupsOutOfRange(t *testing.T) {
	net, _ := testNetwork(t)
	if net.Sector(SectorID(len(net.Sectors))) != nil {
		t.Fatal("out-of-range sector lookup returned non-nil")
	}
	if net.Site(SiteID(len(net.Sites))) != nil {
		t.Fatal("out-of-range site lookup returned non-nil")
	}
	if net.SectorsInDistrict(-1) != nil || net.SitesInDistrict(10000) != nil {
		t.Fatal("out-of-range district lookup returned non-nil")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(DefaultGenConfig(1), nil); err == nil {
		t.Fatal("nil country accepted")
	}
	country, err := census.Generate(census.DefaultGenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGenConfig(1)
	cfg.SitesTarget = 10 // below district count
	if _, err := Generate(cfg, country); err == nil {
		t.Fatal("tiny SitesTarget accepted")
	}
}

func TestEvolutionSeries(t *testing.T) {
	series := EvolutionSeries()
	if len(series) != 15 {
		t.Fatalf("%d years", len(series))
	}
	if series[0].Year != 2009 || series[len(series)-1].Year != 2023 {
		t.Fatal("year range wrong")
	}
	var prevTot float64
	for _, y := range series {
		var sum float64
		for _, s := range y.Share {
			if s < 0 {
				t.Fatalf("negative share in %d", y.Year)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("year %d shares sum to %g", y.Year, sum)
		}
		if y.TotalNormalized < prevTot {
			t.Fatalf("deployment shrank in %d", y.Year)
		}
		prevTot = y.TotalNormalized
	}
	last := series[len(series)-1]
	if last.Share[FiveG] != 0.084 || last.Share[FourG] != 0.55 {
		t.Fatalf("2023 mix = %+v", last.Share)
	}
	// Paper: ≈59% cumulative growth 2018-2023.
	var y2018 float64
	for _, y := range series {
		if y.Year == 2018 {
			y2018 = y.TotalNormalized
		}
	}
	growth := (1 - y2018) / y2018
	if math.Abs(growth-0.59) > 0.02 {
		t.Fatalf("2018→2023 growth = %.3f, want ≈0.59", growth)
	}
}

func TestRATAndVendorStrings(t *testing.T) {
	if TwoG.String() != "2G" || FiveG.String() != "5G" {
		t.Fatal("RAT strings wrong")
	}
	if V1.String() != "V1" || V4.String() != "V4" {
		t.Fatal("vendor strings wrong")
	}
}

func BenchmarkGenerate(b *testing.B) {
	country, err := census.Generate(census.DefaultGenConfig(42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(DefaultGenConfig(uint64(i)), country); err != nil {
			b.Fatal(err)
		}
	}
}
