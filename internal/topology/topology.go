// Package topology models the MNO's radio access network deployment: cell
// sites carrying radio sectors for up to four radio access technologies
// (2G–5G), installed by four antenna vendors with region-skewed footprints,
// placed across the census districts in proportion to population. It also
// provides the 2009–2023 deployment-evolution series behind the paper's
// Figure 3a.
package topology

import (
	"fmt"
	"sort"

	"telcolens/internal/census"
	"telcolens/internal/geo"
)

// RAT is a radio access technology generation.
type RAT uint8

// RATs in generation order. FourG covers both 4G and the 5G-NSA anchor
// behaviour (the paper cannot distinguish them at the EPC, §2), while FiveG
// marks NR sectors in the deployment inventory.
const (
	TwoG RAT = iota
	ThreeG
	FourG
	FiveG
	numRATs
)

// AllRATs lists the RATs in generation order.
func AllRATs() []RAT { return []RAT{TwoG, ThreeG, FourG, FiveG} }

// String returns the conventional RAT name.
func (r RAT) String() string {
	switch r {
	case TwoG:
		return "2G"
	case ThreeG:
		return "3G"
	case FourG:
		return "4G"
	case FiveG:
		return "5G"
	default:
		return fmt.Sprintf("RAT(%d)", uint8(r))
	}
}

// Vendor is an anonymized antenna vendor, V1 through V4 as in the paper.
type Vendor uint8

// Vendors.
const (
	V1 Vendor = iota
	V2
	V3
	V4
	numVendors
)

// AllVendors lists the vendors.
func AllVendors() []Vendor { return []Vendor{V1, V2, V3, V4} }

// String returns the anonymized vendor code.
func (v Vendor) String() string { return fmt.Sprintf("V%d", uint8(v)+1) }

// SectorID identifies a radio sector within a Network.
type SectorID uint32

// SiteID identifies a cell site within a Network.
type SiteID uint32

// Sector is one radio sector: an antenna face on a site serving one RAT.
type Sector struct {
	ID         SectorID
	Site       SiteID
	RAT        RAT
	Vendor     Vendor
	DistrictID int
	Postcode   string
	Area       census.AreaType
	Region     census.Region
	Loc        geo.Point
	Azimuth    uint16 // degrees, informational
}

// Site is a physical cell site hosting sectors for one or more RATs.
type Site struct {
	ID          SiteID
	Loc         geo.Point
	DistrictID  int
	Postcode    string
	Area        census.AreaType
	Region      census.Region
	Vendor      Vendor
	Sectors     []SectorID
	RATs        [numRATs]bool // which RATs the site carries
	DeployedDay int           // day offset within the study window; <=0 means pre-existing
}

// HasRAT reports whether the site carries sectors of the given RAT.
func (s *Site) HasRAT(r RAT) bool { return s.RATs[r] }

// Network is the full deployment inventory plus lookup structures.
type Network struct {
	Sites   []Site
	Sectors []Sector

	sectorsByDistrict [][]SectorID
	sitesByDistrict   [][]SiteID
	neighborSites     [][]SiteID // k nearest same-district sites
}

// Sector returns the sector with the given ID, or nil.
func (n *Network) Sector(id SectorID) *Sector {
	if int(id) >= len(n.Sectors) {
		return nil
	}
	return &n.Sectors[id]
}

// Site returns the site with the given ID, or nil.
func (n *Network) Site(id SiteID) *Site {
	if int(id) >= len(n.Sites) {
		return nil
	}
	return &n.Sites[id]
}

// SectorsInDistrict returns the sector IDs deployed in a district.
func (n *Network) SectorsInDistrict(districtID int) []SectorID {
	if districtID < 0 || districtID >= len(n.sectorsByDistrict) {
		return nil
	}
	return n.sectorsByDistrict[districtID]
}

// SitesInDistrict returns the site IDs deployed in a district.
func (n *Network) SitesInDistrict(districtID int) []SiteID {
	if districtID < 0 || districtID >= len(n.sitesByDistrict) {
		return nil
	}
	return n.sitesByDistrict[districtID]
}

// NeighborSites returns the precomputed nearest same-district neighbor
// sites of a site, used by the mobility model to walk the site graph.
func (n *Network) NeighborSites(id SiteID) []SiteID {
	if int(id) >= len(n.neighborSites) {
		return nil
	}
	return n.neighborSites[id]
}

// CountByRAT returns the number of sectors per RAT.
func (n *Network) CountByRAT() map[RAT]int {
	m := make(map[RAT]int, numRATs)
	for _, s := range n.Sectors {
		m[s.RAT]++
	}
	return m
}

// ShareByRAT returns each RAT's share of the sector inventory.
func (n *Network) ShareByRAT() map[RAT]float64 {
	counts := n.CountByRAT()
	total := len(n.Sectors)
	m := make(map[RAT]float64, numRATs)
	if total == 0 {
		return m
	}
	for r, c := range counts {
		m[r] = float64(c) / float64(total)
	}
	return m
}

// UrbanSectorShare returns the fraction of sectors in urban postcodes (the
// paper reports ≈80%).
func (n *Network) UrbanSectorShare() float64 {
	if len(n.Sectors) == 0 {
		return 0
	}
	urban := 0
	for _, s := range n.Sectors {
		if s.Area == census.Urban {
			urban++
		}
	}
	return float64(urban) / float64(len(n.Sectors))
}

// VendorShareByRegion returns, per region, each vendor's share of sectors.
func (n *Network) VendorShareByRegion() map[census.Region]map[Vendor]float64 {
	counts := make(map[census.Region]map[Vendor]int)
	totals := make(map[census.Region]int)
	for _, s := range n.Sectors {
		if counts[s.Region] == nil {
			counts[s.Region] = make(map[Vendor]int)
		}
		counts[s.Region][s.Vendor]++
		totals[s.Region]++
	}
	out := make(map[census.Region]map[Vendor]float64)
	for reg, byV := range counts {
		out[reg] = make(map[Vendor]float64)
		for v, c := range byV {
			out[reg][v] = float64(c) / float64(totals[reg])
		}
	}
	return out
}

// Validate checks referential integrity of the inventory.
func (n *Network) Validate() error {
	for i, s := range n.Sites {
		if s.ID != SiteID(i) {
			return fmt.Errorf("topology: site %d has ID %d", i, s.ID)
		}
		if len(s.Sectors) == 0 {
			return fmt.Errorf("topology: site %d has no sectors", i)
		}
		for _, sec := range s.Sectors {
			if int(sec) >= len(n.Sectors) {
				return fmt.Errorf("topology: site %d references missing sector %d", i, sec)
			}
			if n.Sectors[sec].Site != s.ID {
				return fmt.Errorf("topology: sector %d does not point back to site %d", sec, i)
			}
		}
	}
	for i, s := range n.Sectors {
		if s.ID != SectorID(i) {
			return fmt.Errorf("topology: sector %d has ID %d", i, s.ID)
		}
		if int(s.Site) >= len(n.Sites) {
			return fmt.Errorf("topology: sector %d references missing site %d", i, s.Site)
		}
		if !n.Sites[s.Site].RATs[s.RAT] {
			return fmt.Errorf("topology: sector %d RAT %s not declared on site %d", i, s.RAT, s.Site)
		}
	}
	return nil
}

// buildIndexes fills the lookup structures after generation.
func (n *Network) buildIndexes(districts int, neighborK int) {
	n.sectorsByDistrict = make([][]SectorID, districts)
	n.sitesByDistrict = make([][]SiteID, districts)
	for _, s := range n.Sectors {
		n.sectorsByDistrict[s.DistrictID] = append(n.sectorsByDistrict[s.DistrictID], s.ID)
	}
	for _, s := range n.Sites {
		n.sitesByDistrict[s.DistrictID] = append(n.sitesByDistrict[s.DistrictID], s.ID)
	}

	// k nearest same-district sites per site. District site counts are
	// modest at simulation scale, so the quadratic pass stays cheap; it
	// is also only run once per generated network.
	n.neighborSites = make([][]SiteID, len(n.Sites))
	type distSite struct {
		d  float64
		id SiteID
	}
	for _, siteIDs := range n.sitesByDistrict {
		for _, id := range siteIDs {
			me := &n.Sites[id]
			cands := make([]distSite, 0, len(siteIDs)-1)
			for _, other := range siteIDs {
				if other == id {
					continue
				}
				cands = append(cands, distSite{geo.DistanceKm(me.Loc, n.Sites[other].Loc), other})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
			k := neighborK
			if k > len(cands) {
				k = len(cands)
			}
			nb := make([]SiteID, k)
			for i := 0; i < k; i++ {
				nb[i] = cands[i].id
			}
			n.neighborSites[id] = nb
		}
	}
}
