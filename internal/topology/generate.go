package topology

import (
	"fmt"
	"math"

	"telcolens/internal/census"
	"telcolens/internal/geo"
	"telcolens/internal/randx"
)

// GenConfig parameterizes deployment generation. Defaults mirror the
// studied MNO at a configurable scale: the paper's network has 24k+ sites
// and 350k+ sectors; the default 1:10 scale generates ≈2.4k sites while
// preserving every share-based statistic.
type GenConfig struct {
	Seed          uint64
	SitesTarget   int     // approximate total sites; default 2400
	NeighborK     int     // nearest-neighbor fan-out for the site graph; default 8
	NewSites      int     // sites deployed during the study window; default 0.5% of target
	WindowDays    int     // length of the study window for DeployedDay; default 28
	CapitalBoost  float64 // extra site weight multiplier in the capital core; default 2.5
	FiveGUrbanPct float64 // probability an urban site carries 5G; default solved from RAT mix
}

// DefaultGenConfig returns the calibrated defaults described above.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{
		Seed:         seed,
		SitesTarget:  2400,
		NeighborK:    8,
		NewSites:     12,
		WindowDays:   28,
		CapitalBoost: 2.5,
	}
}

// RAT mix targets from the paper (§4.1): sector share by RAT in 2023.
const (
	targetShare5G = 0.084
	targetShare4G = 0.55
	targetShare2G = 0.183
	targetShare3G = 0.183
)

// sectorsPerFaceGroup is how many sectors one RAT contributes on one site
// (a standard three-sector site layout).
const sectorsPerFaceGroup = 3

// vendorMix is the region-conditional vendor distribution. V3 concentrates
// in the West, matching the vendor/region skew in the paper's Fig 17 and
// the large V3 and West coefficients in Table 5.
var vendorMix = map[census.Region][]float64{
	census.CapitalArea: {0.60, 0.30, 0.05, 0.05},
	census.North:       {0.25, 0.60, 0.02, 0.13},
	census.South:       {0.45, 0.45, 0.05, 0.05},
	census.West:        {0.20, 0.18, 0.57, 0.05},
}

// Generate builds a deterministic synthetic deployment over the country.
func Generate(cfg GenConfig, country *census.Country) (*Network, error) {
	if country == nil || len(country.Districts) == 0 {
		return nil, fmt.Errorf("topology: nil or empty country")
	}
	if cfg.SitesTarget < len(country.Districts) {
		return nil, fmt.Errorf("topology: SitesTarget %d below district count %d", cfg.SitesTarget, len(country.Districts))
	}
	if cfg.NeighborK <= 0 {
		cfg.NeighborK = 8
	}
	if cfg.WindowDays <= 0 {
		cfg.WindowDays = 28
	}
	if cfg.CapitalBoost <= 0 {
		cfg.CapitalBoost = 2.5
	}
	r := randx.NewStream(cfg.Seed, "topology", 0)

	// Solve site-level RAT probabilities from the sector-share targets,
	// assuming every site carries 4G (the anchor layer).
	// share(RAT) = P(RAT) / (1 + P2 + P3 + P5)
	denom := 1 / targetShare4G // = 1 + P2 + P3 + P5
	p5 := targetShare5G * denom
	p2 := targetShare2G * denom
	p3 := targetShare3G * denom

	// Split by area: 5G concentrates in urban sites; legacy RATs are
	// relatively denser in rural deployments where they provide coverage.
	const urbanSiteShare = 0.8 // emergent from population-proportional placement
	p5Urban := cfg.FiveGUrbanPct
	if p5Urban == 0 {
		p5Urban = p5 / urbanSiteShare * 0.98
	}
	p5Rural := (p5 - urbanSiteShare*p5Urban) / (1 - urbanSiteShare)
	if p5Rural < 0 {
		p5Rural = 0
	}
	const legacyRuralProb = 0.62
	p2Urban := (p2 - (1-urbanSiteShare)*legacyRuralProb) / urbanSiteShare
	p3Urban := (p3 - (1-urbanSiteShare)*legacyRuralProb) / urbanSiteShare
	if p2Urban < 0 || p3Urban < 0 {
		return nil, fmt.Errorf("topology: legacy RAT mix infeasible")
	}

	// Distribute sites across districts proportionally to population,
	// with the capital-core boost and at least one site everywhere.
	weights := make([]float64, len(country.Districts))
	var totalW float64
	for i, d := range country.Districts {
		w := float64(d.Population)
		if d.CapitalCenter {
			w *= cfg.CapitalBoost
		}
		weights[i] = w
		totalW += w
	}

	net := &Network{}
	for i := range country.Districts {
		d := &country.Districts[i]
		nSites := int(math.Round(weights[i] / totalW * float64(cfg.SitesTarget)))
		if nSites < 1 {
			nSites = 1
		}
		// Postcode choice weighted by population puts sites where people
		// are, which yields the ≈80% urban sector share the paper reports.
		pcWeights := make([]float64, len(d.Postcodes))
		for j, pc := range d.Postcodes {
			pcWeights[j] = float64(pc.Population) + 1
		}
		pcChoice, err := randx.NewWeightedChoice(pcWeights)
		if err != nil {
			return nil, fmt.Errorf("topology: district %d: %w", i, err)
		}
		for s := 0; s < nSites; s++ {
			pc := &d.Postcodes[pcChoice.Sample(r)]
			radius := math.Sqrt(pc.AreaKm2/math.Pi) * 0.9
			ang := r.Float64() * 2 * math.Pi
			dist := math.Sqrt(r.Float64()) * radius
			loc := geo.Offset(pc.Center, dist*math.Cos(ang), dist*math.Sin(ang))

			vmix := vendorMix[d.Region]
			vendor := Vendor(sampleIndex(r, vmix))

			site := Site{
				ID:         SiteID(len(net.Sites)),
				Loc:        loc,
				DistrictID: d.ID,
				Postcode:   pc.Code,
				Area:       pc.Type(),
				Region:     d.Region,
				Vendor:     vendor,
			}
			site.RATs[FourG] = true
			urban := pc.Type() == census.Urban
			if urban {
				site.RATs[FiveG] = r.Bool(p5Urban)
				site.RATs[TwoG] = r.Bool(p2Urban)
				site.RATs[ThreeG] = r.Bool(p3Urban)
			} else {
				site.RATs[FiveG] = r.Bool(p5Rural)
				site.RATs[TwoG] = r.Bool(legacyRuralProb)
				site.RATs[ThreeG] = r.Bool(legacyRuralProb)
			}

			for _, rat := range AllRATs() {
				if !site.RATs[rat] {
					continue
				}
				for face := 0; face < sectorsPerFaceGroup; face++ {
					sec := Sector{
						ID:         SectorID(len(net.Sectors)),
						Site:       site.ID,
						RAT:        rat,
						Vendor:     vendor,
						DistrictID: d.ID,
						Postcode:   pc.Code,
						Area:       pc.Type(),
						Region:     d.Region,
						Loc:        loc,
						Azimuth:    uint16(face * 120),
					}
					site.Sectors = append(site.Sectors, sec.ID)
					net.Sectors = append(net.Sectors, sec)
				}
			}
			net.Sites = append(net.Sites, site)
		}
	}

	// Mark a handful of sites as deployed mid-window (the paper captures
	// topology daily specifically to track such upgrades).
	for i := 0; i < cfg.NewSites && i < len(net.Sites); i++ {
		id := SiteID(r.Intn(len(net.Sites)))
		net.Sites[id].DeployedDay = 1 + r.Intn(cfg.WindowDays)
	}

	net.buildIndexes(len(country.Districts), cfg.NeighborK)
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

func sampleIndex(r *randx.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}
