package chaos

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"telcolens/internal/analysis"
	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/faultfs"
	"telcolens/internal/ingest"
	"telcolens/internal/query"
	"telcolens/internal/simulate"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// The matrix seed: every fault plan in this file derives from it, so a
// failure reproduces with the printed rule alone.
const matrixSeed = 20240814

// perOpCap bounds fail points per op class; each class's first few and
// final steps cover the distinct code paths without N× runtime.
const perOpCap = 3

// dayRecords builds the deterministic record set for one study day.
func dayRecords(day, n int) []trace.Record {
	base := trace.DayStart(day).UnixMilli()
	recs := make([]trace.Record, n)
	for i := range recs {
		k := i + day*100_000
		recs[i] = trace.Record{
			Timestamp:  base + int64(i)*977,
			UE:         trace.UEID(k % 23),
			TAC:        devices.TAC(350000 + k%5),
			Source:     topology.SectorID(100 + k%13),
			Target:     topology.SectorID(200 + k%11),
			Cause:      causes.Code(k % 30),
			SourceRAT:  1,
			TargetRAT:  2,
			Result:     trace.Result(k % 2),
			DurationMs: float32(k%500) / 10,
		}
	}
	return recs
}

// writeDay appends one day's records as a partition, returning the
// first error instead of failing the test (chaos runs expect errors).
func writeDay(s *trace.FileStore, day, n int) error {
	w, err := s.AppendPartition(day, 0)
	if err != nil {
		return err
	}
	if err := w.(trace.BatchWriter).WriteBatch(dayRecords(day, n)); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// mustDigest fingerprints dir minus the serving MANIFEST (its Gen
// counts aborted attempts; correctness of the manifest is asserted via
// Verify instead).
func mustDigest(t *testing.T, dir string) map[string]uint64 {
	t.Helper()
	d, err := TreeDigest(dir, trace.ManifestName)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func verifyClean(t *testing.T, dir string) *trace.VerifyReport {
	t.Helper()
	s, err := trace.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.Verify(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store not clean: %+v", rep)
	}
	return rep
}

// TestMatrixPartitionWrite fails a partition append at every Nth
// filesystem op in turn. Invariant: a failed append leaves the store
// exactly as before (nothing registered, Verify clean), and the
// fault-free retry lands partitions byte-identical to a run that never
// failed.
func TestMatrixPartitionWrite(t *testing.T) {
	const recsPerDay = 3000
	control := t.TempDir()
	cs, err := trace.NewFileStore(control)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeDay(cs, 0, recsPerDay); err != nil {
		t.Fatal(err)
	}
	want := mustDigest(t, control)

	probe := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed})
	pdir := t.TempDir()
	ps, err := trace.NewFileStoreOpts(pdir, trace.FileStoreOptions{FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeDay(ps, 0, recsPerDay); err != nil {
		t.Fatal(err)
	}
	if got := mustDigest(t, pdir); DiffTrees(want, got) != "" {
		t.Fatalf("probe run diverged from control: %s", DiffTrees(want, got))
	}

	for _, rule := range FailPoints(probe.OpCounts(), perOpCap) {
		t.Run(rule.String(), func(t *testing.T) {
			dir := t.TempDir()
			ff := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed, Rules: []faultfs.Rule{rule}})
			s, err := trace.NewFileStoreOpts(dir, trace.FileStoreOptions{FS: ff})
			if err == nil {
				err = writeDay(s, 0, recsPerDay)
			}
			if err != nil {
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("error does not carry the injected cause: %v", err)
				}
				// Old state (the empty store) intact: nothing registered.
				rep := verifyClean(t, dir)
				if rep.Partitions != 0 {
					t.Fatalf("failed append left %d partitions behind", rep.Partitions)
				}
				// Fault-free retry converges.
				clean, err := trace.NewFileStore(dir)
				if err != nil {
					t.Fatal(err)
				}
				if err := writeDay(clean, 0, recsPerDay); err != nil {
					t.Fatal(err)
				}
			}
			if diff := DiffTrees(want, mustDigest(t, dir)); diff != "" {
				t.Fatalf("recovered store differs from control: %s", diff)
			}
			rep := verifyClean(t, dir)
			if rep.Partitions != 1 || rep.Records != recsPerDay {
				t.Fatalf("recovered store: %+v", rep)
			}
		})
	}
}

func ingestMeta(windowDays int) *simulate.CampaignMeta {
	return &simulate.CampaignMeta{
		Config: simulate.Config{
			Seed:       7,
			Days:       0,
			WindowDays: windowDays,
			UEs:        10,
		},
		Codec: trace.CodecV2,
	}
}

// ingestDay runs the full streaming day against svc: one batch append,
// the day-completion marker, then a forced flush to drain the seal.
func ingestDay(svc *ingest.Service, n int) error {
	cb := new(trace.ColumnBatch)
	for _, rec := range dayRecords(0, n) {
		r := rec
		cb.AppendRecord(&r)
	}
	if _, err := svc.Append(1, 1, cb); err != nil {
		return err
	}
	if err := svc.DayComplete(0, simulate.DayAggregate{Handovers: int64(n)}); err != nil {
		return err
	}
	_, err := svc.Flush(true)
	return err
}

// TestMatrixIngest fails the WAL append and the seal commit at every
// Nth filesystem op of their respective phases. Invariant: the error
// is clean, and reopening the service (crash-restart: WAL replay +
// debris removal + idempotent re-append and re-seal) converges to
// partitions byte-identical to a run that never failed.
func TestMatrixIngest(t *testing.T) {
	const recs = 2000
	control := t.TempDir()
	csvc, err := ingest.Open(control, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := csvc.Init(ingestMeta(1)); err != nil {
		t.Fatal(err)
	}
	if err := ingestDay(csvc, recs); err != nil {
		t.Fatal(err)
	}
	csvc.Close()
	want := mustDigest(t, control)

	// Probe with phase snapshots: [open+init, append) and [append, seal].
	probe := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed})
	pdir := t.TempDir()
	psvc, err := ingest.Open(pdir, ingest.Options{FS: probe, SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := psvc.Init(ingestMeta(1)); err != nil {
		t.Fatal(err)
	}
	afterInit := probe.OpCounts()
	cb := new(trace.ColumnBatch)
	for _, rec := range dayRecords(0, recs) {
		r := rec
		cb.AppendRecord(&r)
	}
	if _, err := psvc.Append(1, 1, cb); err != nil {
		t.Fatal(err)
	}
	afterAppend := probe.OpCounts()
	if err := psvc.DayComplete(0, simulate.DayAggregate{Handovers: recs}); err != nil {
		t.Fatal(err)
	}
	if _, err := psvc.Flush(true); err != nil {
		t.Fatal(err)
	}
	afterSeal := probe.OpCounts()
	psvc.Close()
	if diff := DiffTrees(want, mustDigest(t, pdir)); diff != "" {
		t.Fatalf("probe run diverged from control: %s", diff)
	}

	phases := []struct {
		name          string
		before, after map[faultfs.Op]int
	}{
		{"wal-append", afterInit, afterAppend},
		{"seal-commit", afterAppend, afterSeal},
	}
	for _, ph := range phases {
		for _, rule := range FailPointsBetween(ph.before, ph.after, perOpCap) {
			t.Run(ph.name+"/"+rule.String(), func(t *testing.T) {
				dir := t.TempDir()
				ff := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed, Rules: []faultfs.Rule{rule}})
				svc, err := ingest.Open(dir, ingest.Options{FS: ff, SyncEvery: true})
				if err == nil {
					if err = svc.Init(ingestMeta(1)); err == nil {
						err = ingestDay(svc, recs)
					}
					svc.Close()
				}
				if err != nil && !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("error does not carry the injected cause: %v", err)
				}
				// Crash-restart recovery on a clean filesystem: replay the
				// WAL, re-append idempotently, re-seal.
				rsvc, rerr := ingest.Open(dir, ingest.Options{})
				if rerr != nil {
					t.Fatal(rerr)
				}
				if !rsvc.Initialized() {
					if err := rsvc.Init(ingestMeta(1)); err != nil {
						t.Fatal(err)
					}
				}
				if err := ingestDay(rsvc, recs); err != nil {
					// A fault past the commit point means the original run's
					// seal actually landed; the replayed day is then refused
					// as already sealed — which is the durable outcome we
					// want, not a failure.
					var sealed *ingest.DaySealedError
					if !errors.As(err, &sealed) {
						t.Fatal(err)
					}
				}
				rsvc.Close()
				if diff := DiffTrees(want, mustDigest(t, dir)); diff != "" {
					t.Fatalf("recovered ingest dir differs from control: %s", diff)
				}
				verifyClean(t, dir)
			})
		}
	}
}

// chaosCampaign generates a small on-disk campaign for the analysis
// scenarios.
func chaosCampaign(t *testing.T, dir string, days, windowDays int) *simulate.Dataset {
	t.Helper()
	fs, err := trace.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.DefaultConfig(1234)
	cfg.UEs = 1200
	cfg.Days = days
	cfg.WindowDays = windowDays
	cfg.Store = fs
	ds, err := simulate.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveManifest(dir); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestMatrixCheckpointSave fails a checkpoint save at every Nth
// filesystem op. Invariant: the previous checkpoint file stays byte
// intact, no stage debris survives, and the fault-free retry publishes
// the new state.
func TestMatrixCheckpointSave(t *testing.T) {
	ds := chaosCampaign(t, t.TempDir(), 2, 0)
	a1, err := analysis.New(ds, analysis.WithParallelism(1), analysis.WithWindow(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.Require(context.Background(), analysis.NeedAll); err != nil {
		t.Fatal(err)
	}
	a2, err := analysis.New(ds, analysis.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Require(context.Background(), analysis.NeedAll); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := dir + "/state.tlckpt"
	// Probe the save path.
	probe := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed})
	if err := analysis.SaveCheckpointFile(probe, path, a2); err != nil {
		t.Fatal(err)
	}
	wantNew := mustDigest(t, dir)

	for _, rule := range FailPoints(probe.OpCounts(), perOpCap) {
		t.Run(rule.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := dir + "/state.tlckpt"
			if err := analysis.SaveCheckpointFile(nil, path, a1); err != nil {
				t.Fatal(err)
			}
			wantOld := mustDigest(t, dir)
			ff := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed, Rules: []faultfs.Rule{rule}})
			err := analysis.SaveCheckpointFile(ff, path, a2)
			if err != nil {
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("error does not carry the injected cause: %v", err)
				}
				// Atomic replace: a failed save leaves either the complete
				// old file or the complete new file (a directory-sync fault
				// after the rename reports an error with the new bytes
				// already committed) — never a torn mix or stage debris.
				got := mustDigest(t, dir)
				if DiffTrees(wantOld, got) != "" && DiffTrees(wantNew, got) != "" {
					t.Fatalf("failed save left a torn state: old=%s new=%s",
						DiffTrees(wantOld, got), DiffTrees(wantNew, got))
				}
				if err := analysis.SaveCheckpointFile(nil, path, a2); err != nil {
					t.Fatal(err)
				}
			}
			if diff := DiffTrees(wantNew, mustDigest(t, dir)); diff != "" {
				t.Fatalf("recovered checkpoint differs: %s", diff)
			}
			// Either way the surviving file resumes.
			if _, resumed, err := analysis.ResumeAnalyzerFile(nil, path, ds); err != nil || !resumed {
				t.Fatalf("surviving checkpoint not resumable: resumed=%v err=%v", resumed, err)
			}
		})
	}
}

// TestIndexedQueryFaults drives /query's engine against a store whose
// reads flip bits or fail outright. Invariant: a query either errors
// cleanly (classified corruption) or returns exactly the control rows
// — never silently wrong data.
func TestIndexedQueryFaults(t *testing.T) {
	dir := t.TempDir()
	s, err := trace.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeDay(s, 0, 4000); err != nil {
		t.Fatal(err)
	}
	params := query.Params{}
	ue := trace.UEID(3)
	params.UE = &ue
	params.Limit = 100000

	view, err := query.NewView(s)
	if err != nil {
		t.Fatal(err)
	}
	control, _, err := query.New(s).Query(context.Background(), view, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(control.Rows) == 0 {
		t.Fatal("control query returned nothing")
	}

	rules := []faultfs.Rule{
		{Op: faultfs.OpRead, Path: "*.tlho", Kind: faultfs.KindFlip, Bit: 7, After: 0},
		{Op: faultfs.OpRead, Path: "*.tlho", Kind: faultfs.KindFlip, Bit: 4001, After: 1},
		{Op: faultfs.OpRead, Path: "*.tlho", Kind: faultfs.KindErr},
		{Op: faultfs.OpOpen, Path: "*.tlix", Kind: faultfs.KindErr},
		{Op: faultfs.OpRead, Path: "*.tlix", Kind: faultfs.KindErr},
	}
	for _, rule := range rules {
		t.Run(rule.String(), func(t *testing.T) {
			ff := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed, Rules: []faultfs.Rule{rule}})
			fs, err := trace.NewFileStoreOpts(dir, trace.FileStoreOptions{FS: ff, VerifyReads: true})
			if err != nil {
				t.Fatal(err)
			}
			fview, err := query.NewView(fs)
			if err != nil {
				return // clean refusal at view build is acceptable
			}
			res, _, err := query.New(fs).Query(context.Background(), fview, params)
			if err != nil {
				return // clean error: the contract allows refusing
			}
			if len(res.Rows) != len(control.Rows) {
				t.Fatalf("faulted query silently returned %d rows, control %d",
					len(res.Rows), len(control.Rows))
			}
			for i := range res.Rows {
				if res.Rows[i] != control.Rows[i] {
					t.Fatalf("faulted query silently diverged at row %d", i)
				}
			}
		})
	}
}

// TestRefreshReadFaults fails each partition read of an incremental
// refresh. Invariant: Refresh errors cleanly, the warm analyzer keeps
// rendering its previous state, and a fault-free retry produces output
// byte-identical to a cold full scan.
func TestRefreshReadFaults(t *testing.T) {
	dir := t.TempDir()
	ds := chaosCampaign(t, dir, 2, 3)
	warm, err := analysis.New(ds, analysis.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Require(context.Background(), analysis.NeedAll); err != nil {
		t.Fatal(err)
	}
	ckptPath := t.TempDir() + "/state.tlckpt"
	if err := analysis.SaveCheckpointFile(nil, ckptPath, warm); err != nil {
		t.Fatal(err)
	}
	// The campaign grows a day; a refresh must scan it.
	if err := ds.GenerateDays(1); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveManifest(dir); err != nil {
		t.Fatal(err)
	}

	// Control: cold full scan of the final store.
	cold, err := simulate.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := analysis.New(cold, analysis.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := analysis.RunAll(context.Background(), ca, &want); err != nil {
		t.Fatal(err)
	}

	// Probe: resumed refresh through a counting FS.
	probeRun := func(ff faultfs.FS) (*analysis.Analyzer, error) {
		rds, err := simulate.Load(dir)
		if err != nil {
			return nil, err
		}
		fstore, err := trace.NewFileStoreOpts(dir, trace.FileStoreOptions{FS: ff})
		if err != nil {
			return nil, err
		}
		rds.Store = fstore
		rds.Config.Store = fstore
		a, resumed, err := analysis.ResumeAnalyzerFile(nil, ckptPath, rds, analysis.WithParallelism(1))
		if err != nil {
			return nil, err
		}
		if !resumed {
			return nil, errors.New("checkpoint did not resume")
		}
		if _, err := a.Refresh(context.Background()); err != nil {
			return a, err
		}
		return a, nil
	}
	probe := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed})
	pa, err := probeRun(probe)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := analysis.RunAll(context.Background(), pa, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("probe refresh output differs from cold full scan")
	}

	counts := map[faultfs.Op]int{faultfs.OpRead: probe.OpCounts()[faultfs.OpRead]}
	for _, rule := range FailPoints(counts, perOpCap) {
		rule.Path = "*.tlho"
		t.Run(rule.String(), func(t *testing.T) {
			ff := faultfs.NewFault(nil, faultfs.Plan{Seed: matrixSeed, Rules: []faultfs.Rule{rule}})
			a, err := probeRun(ff)
			if err == nil {
				// The rule targeted a read the refresh path never reached
				// (probe counted all reads, some are index/manifest): the
				// run must then match the control.
				var out bytes.Buffer
				if err := analysis.RunAll(context.Background(), a, &out); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want.Bytes(), out.Bytes()) {
					t.Fatal("unfaulted refresh output differs from cold scan")
				}
				return
			}
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("refresh error does not carry the injected cause: %v", err)
			}
			// Fault-free retry converges to the cold control.
			ra, rerr := probeRun(faultfs.OS{})
			if rerr != nil {
				t.Fatal(rerr)
			}
			var out bytes.Buffer
			if err := analysis.RunAll(context.Background(), ra, &out); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), out.Bytes()) {
				t.Fatal("recovered refresh output differs from cold scan")
			}
		})
	}
}
