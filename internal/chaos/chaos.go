// Package chaos is the deterministic fault-injection harness for the
// repo's durability contract. Its tests drive every durable operation
// — partition write, WAL append, seal commit, checkpoint save, indexed
// query, incremental refresh — through seeded faultfs plans that fail
// at every Nth filesystem operation in turn, and assert the invariant
// the failure model promises (see DESIGN.md "Failure model &
// durability"): a faulted operation either surfaces a clean error with
// the previous on-disk state intact, or the next fault-free attempt
// recovers to artifacts byte-identical to a run that never failed.
//
// The helpers here are the reusable half: probe an operation once to
// enumerate the filesystem ops it performs, expand that count into a
// fail-at-every-step rule matrix, and fingerprint directory trees so
// "byte-identical recovery" is one map comparison.
//
// Package netchaos is this harness's wire-level sibling: the same
// seeded fail-at-the-Nth-op design applied to the TCP path between
// ingest clients and the daemon (resets, torn writes, blackholes,
// latency) instead of the filesystem beneath it. The two matrices
// together cover both halves of DESIGN.md's failure model — a failing
// disk under a healthy network, and a failing network over a healthy
// disk.
package chaos

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"telcolens/internal/faultfs"
)

// FailPoints expands a probed op count (Fault.OpCounts after a clean
// run) into one single-shot KindErr rule per (op, nth) step, in stable
// order. perOpCap bounds the points per op class (0 = all): failing at
// every one of ten thousand writes re-tests the same code path, so
// matrices sample the first perOpCap and the final step of each class
// — the last op before success is where commit-point bugs live.
func FailPoints(counts map[faultfs.Op]int, perOpCap int) []faultfs.Rule {
	return FailPointsBetween(nil, counts, perOpCap)
}

// FailPointsBetween is FailPoints for one phase of a longer probe: it
// targets only the ops performed between two OpCounts snapshots (the
// Fault's counters are cumulative), so a matrix can aim at the seal
// commit without also failing the service open that precedes it.
func FailPointsBetween(before, after map[faultfs.Op]int, perOpCap int) []faultfs.Rule {
	var rules []faultfs.Rule
	for _, op := range faultfs.SortedOps(after) {
		lo, hi := before[op], after[op]
		if hi <= lo {
			continue
		}
		steps := hi - lo
		if perOpCap > 0 && steps > perOpCap {
			steps = perOpCap
		}
		for i := 0; i < steps; i++ {
			rules = append(rules, faultfs.Rule{Op: op, After: lo + i, Kind: faultfs.KindErr})
		}
		if perOpCap > 0 && hi-lo > perOpCap {
			rules = append(rules, faultfs.Rule{Op: op, After: hi - 1, Kind: faultfs.KindErr})
		}
	}
	return rules
}

// TreeDigest fingerprints every regular file under dir (recursively)
// as relpath -> FNV-1a of contents, skipping base names listed in
// ignore. Two trees with equal digests hold byte-identical files.
func TreeDigest(dir string, ignore ...string) (map[string]uint64, error) {
	skip := make(map[string]bool, len(ignore))
	for _, name := range ignore {
		skip[name] = true
	}
	out := map[string]uint64{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || skip[d.Name()] {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		h := fnv.New64a()
		h.Write(data)
		out[rel] = h.Sum64()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DiffTrees describes how two TreeDigest maps differ (empty = byte
// identical), for test failure messages.
func DiffTrees(want, got map[string]uint64) string {
	var diffs []string
	for name, h := range want {
		gh, ok := got[name]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("missing %s", name))
		case gh != h:
			diffs = append(diffs, fmt.Sprintf("differs %s", name))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			diffs = append(diffs, fmt.Sprintf("extra %s", name))
		}
	}
	sort.Strings(diffs)
	return strings.Join(diffs, ", ")
}
