package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearModel is a fitted ordinary-least-squares regression, mirroring the
// regression summaries in the paper's Tables 4, 5 and 7: coefficients with
// standard errors, t-values and two-sided p-values, plus global fit
// statistics (R², RMSE, MAE, AIC).
type LinearModel struct {
	Names  []string  // coefficient names, Names[0] == "(Intercept)" if fitted
	Coef   []float64 // estimated coefficients
	StdErr []float64 // coefficient standard errors
	TValue []float64 // t statistics
	PValue []float64 // two-sided p-values
	N      int       // observations
	DF     int       // residual degrees of freedom
	R2     float64   // coefficient of determination
	AdjR2  float64   // adjusted R²
	RMSE   float64   // root mean squared error of residuals
	MAE    float64   // mean absolute error of residuals
	AIC    float64   // Akaike information criterion (Gaussian likelihood)
	Sigma2 float64   // residual variance estimate
	Fitted []float64 // fitted values (same order as input rows)
	Resid  []float64 // residuals
}

// FitOLS fits y = X·β by ordinary least squares. X is row-major with one
// row per observation; an intercept column is prepended automatically when
// addIntercept is true. names labels the columns of X (excluding the
// intercept). The design must have more rows than columns and no perfect
// collinearity.
func FitOLS(y []float64, X [][]float64, names []string, addIntercept bool) (*LinearModel, error) {
	n := len(y)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(X) != n {
		return nil, ErrLengthMismatch
	}
	k := len(X[0])
	if len(names) != k {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), k)
	}
	p := k
	if addIntercept {
		p++
	}
	if n <= p {
		return nil, fmt.Errorf("stats: %d observations for %d parameters", n, p)
	}

	// Build X'X and X'y without materializing the design matrix copy.
	row := make([]float64, p)
	xtx := newSquare(p)
	xty := make([]float64, p)
	for i := 0; i < n; i++ {
		if len(X[i]) != k {
			return nil, fmt.Errorf("stats: ragged design row %d", i)
		}
		fillRow(row, X[i], addIntercept)
		for a := 0; a < p; a++ {
			xty[a] += row[a] * y[i]
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}

	inv, err := invertSPD(xtx)
	if err != nil {
		return nil, err
	}
	coef := make([]float64, p)
	for a := 0; a < p; a++ {
		for b := 0; b < p; b++ {
			coef[a] += inv[a][b] * xty[b]
		}
	}

	m := &LinearModel{
		Coef:   coef,
		N:      n,
		DF:     n - p,
		Fitted: make([]float64, n),
		Resid:  make([]float64, n),
	}
	m.Names = make([]string, p)
	if addIntercept {
		m.Names[0] = "(Intercept)"
		copy(m.Names[1:], names)
	} else {
		copy(m.Names, names)
	}

	var ssRes, sumAbs, ssTot float64
	my := Mean(y)
	for i := 0; i < n; i++ {
		fillRow(row, X[i], addIntercept)
		var fit float64
		for a := 0; a < p; a++ {
			fit += row[a] * coef[a]
		}
		r := y[i] - fit
		m.Fitted[i] = fit
		m.Resid[i] = r
		ssRes += r * r
		sumAbs += math.Abs(r)
		d := y[i] - my
		ssTot += d * d
	}
	m.Sigma2 = ssRes / float64(m.DF)
	m.RMSE = math.Sqrt(ssRes / float64(n))
	m.MAE = sumAbs / float64(n)
	if ssTot > 0 {
		m.R2 = 1 - ssRes/ssTot
		m.AdjR2 = 1 - (1-m.R2)*float64(n-1)/float64(m.DF)
	}
	// Gaussian log-likelihood AIC with p slope params + 1 variance param.
	if ssRes > 0 {
		ll := -0.5 * float64(n) * (math.Log(2*math.Pi*ssRes/float64(n)) + 1)
		m.AIC = -2*ll + 2*float64(p+1)
	}

	m.StdErr = make([]float64, p)
	m.TValue = make([]float64, p)
	m.PValue = make([]float64, p)
	for a := 0; a < p; a++ {
		se := math.Sqrt(m.Sigma2 * inv[a][a])
		m.StdErr[a] = se
		if se > 0 {
			m.TValue[a] = coef[a] / se
			m.PValue[a] = StudentTTwoSidedP(m.TValue[a], float64(m.DF))
		} else {
			m.TValue[a] = math.Inf(sign(coef[a]))
			m.PValue[a] = 0
		}
	}
	return m, nil
}

// Predict evaluates the fitted model on a covariate row (without the
// intercept column, which is applied automatically if the model has one).
func (m *LinearModel) Predict(x []float64) (float64, error) {
	p := len(m.Coef)
	hasIntercept := len(m.Names) > 0 && m.Names[0] == "(Intercept)"
	want := p
	if hasIntercept {
		want = p - 1
	}
	if len(x) != want {
		return 0, fmt.Errorf("stats: predict row has %d values, want %d", len(x), want)
	}
	var fit float64
	i := 0
	if hasIntercept {
		fit = m.Coef[0]
		i = 1
	}
	for j := 0; j < len(x); j++ {
		fit += m.Coef[i+j] * x[j]
	}
	return fit, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

func fillRow(dst, src []float64, addIntercept bool) {
	if addIntercept {
		dst[0] = 1
		copy(dst[1:], src)
	} else {
		copy(dst, src)
	}
}

func newSquare(p int) [][]float64 {
	m := make([][]float64, p)
	backing := make([]float64, p*p)
	for i := range m {
		m[i], backing = backing[:p], backing[p:]
	}
	return m
}

// invertSPD inverts a symmetric positive-definite matrix via Gauss-Jordan
// elimination with partial pivoting. It destroys its argument.
func invertSPD(a [][]float64) ([][]float64, error) {
	p := len(a)
	inv := newSquare(p)
	for i := 0; i < p; i++ {
		inv[i][i] = 1
	}
	for col := 0; col < p; col++ {
		// partial pivot
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("stats: singular design matrix (collinear covariates?)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		pv := a[col][col]
		for j := 0; j < p; j++ {
			a[col][j] /= pv
			inv[col][j] /= pv
		}
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				a[r][j] -= f * a[col][j]
				inv[r][j] -= f * inv[col][j]
			}
		}
	}
	return inv, nil
}
