// Package stats implements the statistical toolbox the paper relies on:
// descriptive statistics, empirical CDFs, correlation, ordinary least
// squares with t/F inference, one-way ANOVA, the Kruskal–Wallis test and
// quantile regression. Everything is stdlib-only and deterministic.
//
// Quantiles use linear interpolation between order statistics (the same
// convention as R's default type-7 quantile), which keeps medians and p95s
// comparable with the values the paper reports.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by computations that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean; 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance; 0 for n < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the sample extrema. It returns (0, 0) for an empty sample.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using type-7 linear
// interpolation. xs does not need to be sorted. Returns 0 for an empty
// sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for an already-sorted sample, avoiding the
// copy+sort. The slice must be in ascending order.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantiles returns the requested quantiles of xs with a single
// copy+sort; each entry equals Quantile(xs, q) exactly. Use it when an
// experiment needs several quantiles of one large sample — repeated
// Quantile calls re-sort the sample every time.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = QuantileSorted(s, q)
	}
	return out
}

// QuantilesSorted is Quantiles for an already-sorted sample: no copy, no
// sort. Each entry equals Quantile(xs, q) for any xs whose ascending
// order is sorted.
func QuantilesSorted(sorted []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(sorted, q)
	}
	return out
}

// Summary is the descriptive summary the paper prints for its regression
// dataset (Table 6): min, quartiles, mean, max.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Mean   float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     QuantileSorted(s, 0.25),
		Median: QuantileSorted(s, 0.5),
		Mean:   Mean(s),
		Q3:     QuantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// Boxplot holds the five-number summary plus whisker bounds used by the
// paper's boxplot figures (Figs 11, 18).
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	LoWhisker, HiWhisker     float64 // Tukey 1.5*IQR fences clipped to data
	Mean                     float64
	N                        int
}

// BoxplotOf computes boxplot statistics for xs.
func BoxplotOf(xs []float64) Boxplot {
	if len(xs) == 0 {
		return Boxplot{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b := Boxplot{
		Min:    s[0],
		Q1:     QuantileSorted(s, 0.25),
		Median: QuantileSorted(s, 0.5),
		Q3:     QuantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LoWhisker, b.HiWhisker = b.Min, b.Max
	for _, v := range s {
		if v >= loFence {
			b.LoWhisker = v
			break
		}
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] <= hiFence {
			b.HiWhisker = s[i]
			break
		}
	}
	return b
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted). It returns ErrEmpty
// for an empty sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// NewECDFSorted wraps an already-ascending sample without copying it, for
// callers that keep sorted data around (cached sampler snapshots). The
// ECDF aliases xs, so the caller must not mutate it afterwards.
func NewECDFSorted(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	return &ECDF{sorted: xs}, nil
}

// Eval returns the fraction of the sample that is ≤ x.
func (e *ECDF) Eval(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 { return QuantileSorted(e.sorted, q) }

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns up to max evenly spaced (x, F(x)) pairs for plotting or
// reporting. If max <= 0 or exceeds the sample size, all points are used.
func (e *ECDF) Points(max int) (xs, fs []float64) {
	n := len(e.sorted)
	if max <= 0 || max > n {
		max = n
	}
	xs = make([]float64, max)
	fs = make([]float64, max)
	for i := 0; i < max; i++ {
		j := i * (n - 1) / maxInt(max-1, 1)
		xs[i] = e.sorted[j]
		fs[i] = float64(j+1) / float64(n)
	}
	return xs, fs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Histogram bins observations into fixed intervals.
type Histogram struct {
	Edges  []float64 // len = bins+1, ascending
	Counts []int     // len = bins
	Under  int       // observations below Edges[0]
	Over   int       // observations at or above Edges[len-1]
}

// NewHistogram creates a histogram with the given bin edges, which must be
// strictly ascending and at least two.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, errors.New("stats: need at least two bin edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, errors.New("stats: bin edges must be strictly ascending")
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int, len(edges)-1),
	}, nil
}

// Add bins a single observation.
func (h *Histogram) Add(x float64) {
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// binary search for the bin: greatest i with Edges[i] <= x
	i := sort.SearchFloat64s(h.Edges, x)
	if i < len(h.Edges) && h.Edges[i] == x {
		h.Counts[i]++
		return
	}
	h.Counts[i-1]++
}

// Total returns the number of binned observations including under/overflow.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}
