package stats

import (
	"errors"
	"math"
	"sort"
)

// ANOVAResult summarizes a one-way analysis of variance, as used in §6.3 and
// Appendix B to test the effect of HO type, antenna vendor and area type on
// HOF rates.
type ANOVAResult struct {
	F       float64 // F statistic
	DFB     int     // between-group degrees of freedom (k-1)
	DFW     int     // within-group degrees of freedom (N-k)
	P       float64 // upper-tail p-value
	EtaSq   float64 // effect size η² = SS_between / SS_total
	Groups  int
	N       int
	GrandMu float64
}

// OneWayANOVA performs a one-way ANOVA across the given groups. Each group
// needs at least one observation and at least two groups must be non-empty;
// the within-group degrees of freedom must be positive.
func OneWayANOVA(groups [][]float64) (*ANOVAResult, error) {
	k := 0
	n := 0
	var grand float64
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		k++
		n += len(g)
		for _, v := range g {
			grand += v
		}
	}
	if k < 2 {
		return nil, errors.New("stats: ANOVA needs at least two non-empty groups")
	}
	if n-k <= 0 {
		return nil, errors.New("stats: ANOVA needs replication within groups")
	}
	grandMu := grand / float64(n)

	var ssb, ssw float64
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		mu := Mean(g)
		d := mu - grandMu
		ssb += float64(len(g)) * d * d
		for _, v := range g {
			r := v - mu
			ssw += r * r
		}
	}
	dfb := k - 1
	dfw := n - k
	res := &ANOVAResult{
		DFB:     dfb,
		DFW:     dfw,
		Groups:  k,
		N:       n,
		GrandMu: grandMu,
	}
	if ssb+ssw > 0 {
		res.EtaSq = ssb / (ssb + ssw)
	}
	if ssw == 0 {
		// Perfect separation: infinite F, p = 0.
		res.F = math.Inf(1)
		res.P = 0
		return res, nil
	}
	res.F = (ssb / float64(dfb)) / (ssw / float64(dfw))
	res.P = FSurvival(res.F, float64(dfb), float64(dfw))
	return res, nil
}

// KruskalWallisResult summarizes the rank-based Kruskal–Wallis H test.
type KruskalWallisResult struct {
	H  float64 // H statistic, tie-corrected
	DF int     // k-1
	P  float64 // chi-square upper-tail p-value
	N  int
}

// KruskalWallis performs the Kruskal–Wallis test across groups, with the
// standard tie correction.
func KruskalWallis(groups [][]float64) (*KruskalWallisResult, error) {
	k := 0
	n := 0
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		k++
		n += len(g)
	}
	if k < 2 {
		return nil, errors.New("stats: Kruskal-Wallis needs at least two non-empty groups")
	}
	if n < 3 {
		return nil, errors.New("stats: Kruskal-Wallis needs at least three observations")
	}

	all := make([]float64, 0, n)
	sizes := make([]int, 0, k)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		all = append(all, g...)
		sizes = append(sizes, len(g))
	}
	ranks := Ranks(all)

	var h float64
	offset := 0
	for _, sz := range sizes {
		var rsum float64
		for i := 0; i < sz; i++ {
			rsum += ranks[offset+i]
		}
		h += rsum * rsum / float64(sz)
		offset += sz
	}
	fn := float64(n)
	h = 12/(fn*(fn+1))*h - 3*(fn+1)

	// Tie correction.
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)
	var tieSum float64
	for i := 0; i < n; {
		j := i
		for j+1 < n && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			tieSum += t*t*t - t
		}
		i = j + 1
	}
	correction := 1 - tieSum/(fn*fn*fn-fn)
	if correction > 0 {
		h /= correction
	}

	res := &KruskalWallisResult{H: h, DF: k - 1, N: n}
	res.P = ChiSquareSurvival(h, float64(k-1))
	return res, nil
}

// WelchT holds a two-sample Welch t-test result (unequal variances).
type WelchT struct {
	T  float64
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest compares the means of two samples without assuming equal
// variances. Used (with Bonferroni correction) as the post-hoc pairwise
// comparison standing in for Tukey's HSD — see DESIGN.md substitutions.
func WelchTTest(a, b []float64) (*WelchT, error) {
	if len(a) < 2 || len(b) < 2 {
		return nil, errors.New("stats: Welch t-test needs at least two observations per group")
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	denom := sa + sb
	if denom == 0 {
		if ma == mb {
			return &WelchT{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return &WelchT{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / math.Sqrt(denom)
	df := denom * denom / (sa*sa/(na-1) + sb*sb/(nb-1))
	return &WelchT{T: t, DF: df, P: StudentTTwoSidedP(t, df)}, nil
}

// PairwiseComparison is one entry of a Bonferroni-corrected post-hoc
// comparison table.
type PairwiseComparison struct {
	A, B        int // group indices
	Diff        float64
	P           float64 // raw p-value
	PAdjusted   float64 // Bonferroni-adjusted
	Significant bool    // PAdjusted < alpha
}

// PairwisePostHoc runs Welch t-tests for every pair of groups with a
// Bonferroni correction at level alpha.
func PairwisePostHoc(groups [][]float64, alpha float64) ([]PairwiseComparison, error) {
	var idx []int
	for i, g := range groups {
		if len(g) >= 2 {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return nil, errors.New("stats: post-hoc needs two groups with replication")
	}
	m := len(idx) * (len(idx) - 1) / 2
	out := make([]PairwiseComparison, 0, m)
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			a, b := groups[idx[i]], groups[idx[j]]
			w, err := WelchTTest(a, b)
			if err != nil {
				return nil, err
			}
			adj := math.Min(1, w.P*float64(m))
			out = append(out, PairwiseComparison{
				A:           idx[i],
				B:           idx[j],
				Diff:        Mean(a) - Mean(b),
				P:           w.P,
				PAdjusted:   adj,
				Significant: adj < alpha,
			})
		}
	}
	return out, nil
}
