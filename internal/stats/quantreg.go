package stats

import (
	"errors"
	"fmt"
	"math"
)

// QuantileModel is a fitted quantile (pinball-loss) regression at a single
// quantile level tau, used to reproduce the paper's Tables 8 and 9.
type QuantileModel struct {
	Tau   float64
	Names []string
	Coef  []float64
	N     int
	Iter  int     // IRLS iterations used
	Loss  float64 // final pinball loss (mean)
}

// FitQuantile fits a linear quantile regression of y on X at quantile tau
// using iteratively reweighted least squares (IRLS) on a smoothed pinball
// loss. For purely categorical designs (the paper's case: HO type dummies)
// the solution converges to within-group quantiles, which tests verify.
func FitQuantile(y []float64, X [][]float64, names []string, tau float64, addIntercept bool) (*QuantileModel, error) {
	if tau <= 0 || tau >= 1 {
		return nil, fmt.Errorf("stats: tau %g out of (0,1)", tau)
	}
	n := len(y)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(X) != n {
		return nil, ErrLengthMismatch
	}
	k := len(X[0])
	if len(names) != k {
		return nil, fmt.Errorf("stats: %d names for %d columns", len(names), k)
	}
	p := k
	if addIntercept {
		p++
	}
	if n <= p {
		return nil, fmt.Errorf("stats: %d observations for %d parameters", n, p)
	}

	// Start from the OLS solution.
	ols, err := FitOLS(y, X, names, addIntercept)
	if err != nil {
		return nil, err
	}
	coef := append([]float64(nil), ols.Coef...)

	const (
		maxIter = 200
		eps     = 1e-6 // smoothing floor for |residual|
		tol     = 1e-9
	)
	row := make([]float64, p)
	xtwx := newSquare(p)
	xtwy := make([]float64, p)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		for a := 0; a < p; a++ {
			xtwy[a] = 0
			for b := 0; b < p; b++ {
				xtwx[a][b] = 0
			}
		}
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			var fit float64
			for a := 0; a < p; a++ {
				fit += row[a] * coef[a]
			}
			r := y[i] - fit
			var w float64
			if r > 0 {
				w = tau / math.Max(math.Abs(r), eps)
			} else {
				w = (1 - tau) / math.Max(math.Abs(r), eps)
			}
			for a := 0; a < p; a++ {
				// w*row[a] is the left-grouped common factor of both
				// updates; hoisting it is bit-identical.
				wra := w * row[a]
				xtwy[a] += wra * y[i]
				xa := xtwx[a]
				for b := a; b < p; b++ {
					xa[b] += wra * row[b]
				}
			}
		}
		for a := 0; a < p; a++ {
			for b := 0; b < a; b++ {
				xtwx[a][b] = xtwx[b][a]
			}
		}
		inv, err := invertSPD(xtwx)
		if err != nil {
			return nil, errors.New("stats: quantile regression design became singular")
		}
		next := make([]float64, p)
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				next[a] += inv[a][b] * xtwy[b]
			}
		}
		var delta float64
		for a := 0; a < p; a++ {
			delta += math.Abs(next[a] - coef[a])
		}
		coef = next
		if delta < tol {
			break
		}
	}

	m := &QuantileModel{Tau: tau, Coef: coef, N: n, Iter: iter + 1}
	m.Names = make([]string, p)
	if addIntercept {
		m.Names[0] = "(Intercept)"
		copy(m.Names[1:], names)
	} else {
		copy(m.Names, names)
	}
	var loss float64
	for i := 0; i < n; i++ {
		fillRow(row, X[i], addIntercept)
		var fit float64
		for a := 0; a < p; a++ {
			fit += row[a] * coef[a]
		}
		r := y[i] - fit
		if r > 0 {
			loss += tau * r
		} else {
			loss += (tau - 1) * r
		}
	}
	m.Loss = loss / float64(n)
	return m, nil
}

// PinballLoss returns the mean pinball (quantile) loss of predictions yhat
// against observations y at level tau.
func PinballLoss(y, yhat []float64, tau float64) (float64, error) {
	if len(y) != len(yhat) {
		return 0, ErrLengthMismatch
	}
	if len(y) == 0 {
		return 0, ErrEmpty
	}
	var loss float64
	for i := range y {
		r := y[i] - yhat[i]
		if r > 0 {
			loss += tau * r
		} else {
			loss += (tau - 1) * r
		}
	}
	return loss / float64(len(y)), nil
}
