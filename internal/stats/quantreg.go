package stats

import (
	"errors"
	"fmt"
	"math"
)

// QuantileModel is a fitted quantile (pinball-loss) regression at a single
// quantile level tau, used to reproduce the paper's Tables 8 and 9.
type QuantileModel struct {
	Tau   float64
	Names []string
	Coef  []float64
	N     int
	Iter  int     // solver iterations used
	Loss  float64 // final pinball loss (mean)
}

// FitQuantile fits a linear quantile regression of y on X at quantile tau.
// The default solver is a Frisch–Newton interior-point method on the dual
// LP (Mehrotra predictor-corrector), which converges in ~10–25 iterations
// where the legacy smoothed-IRLS solver needs up to 200; each iteration
// costs the same O(n·p²) normal-equations solve, so the wall-time ratio is
// roughly the iteration ratio. If the interior-point normal equations turn
// singular (degenerate designs), the fit falls back to the legacy solver.
// FitQuantileIRLS keeps the previous solver callable directly; equivalence
// of the two is covered by tests in this package.
func FitQuantile(y []float64, X [][]float64, names []string, tau float64, addIntercept bool) (*QuantileModel, error) {
	m, err := fitQuantileFN(y, X, names, tau, addIntercept)
	if err == nil {
		return m, nil
	}
	if !errors.Is(err, errFNSingular) {
		return nil, err
	}
	return FitQuantileIRLS(y, X, names, tau, addIntercept)
}

// errFNSingular marks an interior-point failure that the IRLS fallback may
// still be able to handle (the two solvers hit singularities at different
// points).
var errFNSingular = errors.New("stats: interior-point normal equations singular")

// checkQuantileDesign validates the shared (y, X, names, tau) contract and
// returns the column and parameter counts.
func checkQuantileDesign(y []float64, X [][]float64, names []string, tau float64, addIntercept bool) (n, p int, err error) {
	if tau <= 0 || tau >= 1 {
		return 0, 0, fmt.Errorf("stats: tau %g out of (0,1)", tau)
	}
	n = len(y)
	if n == 0 {
		return 0, 0, ErrEmpty
	}
	if len(X) != n {
		return 0, 0, ErrLengthMismatch
	}
	k := len(X[0])
	if len(names) != k {
		return 0, 0, fmt.Errorf("stats: %d names for %d columns", len(names), k)
	}
	p = k
	if addIntercept {
		p++
	}
	if n <= p {
		return 0, 0, fmt.Errorf("stats: %d observations for %d parameters", n, p)
	}
	return n, p, nil
}

// quantileNames builds the coefficient-name slice shared by both solvers.
func quantileNames(names []string, p int, addIntercept bool) []string {
	out := make([]string, p)
	if addIntercept {
		out[0] = "(Intercept)"
		copy(out[1:], names)
	} else {
		copy(out, names)
	}
	return out
}

// quantilePinball evaluates the mean pinball loss of coef on the design.
func quantilePinball(y []float64, X [][]float64, coef []float64, tau float64, addIntercept bool) float64 {
	p := len(coef)
	row := make([]float64, p)
	var loss float64
	for i := range y {
		fillRow(row, X[i], addIntercept)
		var fit float64
		for a := 0; a < p; a++ {
			fit += row[a] * coef[a]
		}
		r := y[i] - fit
		if r > 0 {
			loss += tau * r
		} else {
			loss += (tau - 1) * r
		}
	}
	return loss / float64(len(y))
}

// fitQuantileFN solves the quantile regression via the Frisch–Newton
// interior-point method on the bounded dual LP
//
//	min c'a  s.t.  X'a = (1-tau)·X'1,  0 ≤ a ≤ 1,  c = -y,
//
// whose equality multipliers are -coef. Primal and dual feasibility are
// maintained exactly (a starts at (1-tau)·1, steps satisfy X'da = 0 and
// dz - dw = -X dβ), so the iteration only drives complementarity to zero
// with a Mehrotra predictor-corrector step.
func fitQuantileFN(y []float64, X [][]float64, names []string, tau float64, addIntercept bool) (*QuantileModel, error) {
	n, p, err := checkQuantileDesign(y, X, names, tau, addIntercept)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if len(X[i]) != len(X[0]) {
			return nil, fmt.Errorf("stats: ragged design row %d", i)
		}
	}

	const (
		maxIter = 50
		epsGap  = 1e-8  // duality-gap stop, scaled by n
		epsInit = 1e-4  // interior floor for the initial z/w split
		damp    = 0.999 // fraction of the max feasible step taken
	)

	// Interior starting point: a = (1-tau)·1 satisfies X'a = (1-tau)X'1
	// exactly; β from the least-squares dual; z-w = r split elementwise.
	a := make([]float64, n)
	s := make([]float64, n)
	for i := range a {
		a[i] = 1 - tau
		s[i] = tau
	}
	row := make([]float64, p)
	ada := newSquare(p)
	rhs := make([]float64, p)
	beta := make([]float64, p)
	dbeta := make([]float64, p)
	r := make([]float64, n)
	z := make([]float64, n)
	w := make([]float64, n)
	d := make([]float64, n)
	daAff := make([]float64, n)
	dzAff := make([]float64, n)
	dwAff := make([]float64, n)
	da := make([]float64, n)
	dz := make([]float64, n)
	dw := make([]float64, n)

	// β₀ solves (X'X)β = X'c (the OLS dual start).
	for i := 0; i < n; i++ {
		fillRow(row, X[i], addIntercept)
		c := -y[i]
		for u := 0; u < p; u++ {
			rhs[u] += row[u] * c
			au := ada[u]
			for v := u; v < p; v++ {
				au[v] += row[u] * row[v]
			}
		}
	}
	for u := 0; u < p; u++ {
		for v := 0; v < u; v++ {
			ada[u][v] = ada[v][u]
		}
	}
	if err := solveSPDInto(ada, rhs, beta); err != nil {
		return nil, errFNSingular
	}
	// r = c - Xβ; z = r⁺+ε, w = r⁻+ε keeps z-w = r with z,w interior.
	for i := 0; i < n; i++ {
		fillRow(row, X[i], addIntercept)
		var fit float64
		for u := 0; u < p; u++ {
			fit += row[u] * beta[u]
		}
		r[i] = -y[i] - fit
		if r[i] > 0 {
			z[i] = r[i] + epsInit
			w[i] = epsInit
		} else {
			z[i] = epsInit
			w[i] = epsInit - r[i]
		}
	}

	gap := 0.0
	for i := 0; i < n; i++ {
		gap += z[i]*a[i] + w[i]*s[i]
	}

	var iter int
	for iter = 0; iter < maxIter && gap > epsGap*float64(n); iter++ {
		// Affine (predictor) direction: (XDX')dβ = X(d⊙r).
		for i := 0; i < n; i++ {
			d[i] = 1 / (z[i]/a[i] + w[i]/s[i])
		}
		for u := 0; u < p; u++ {
			rhs[u] = 0
			au := ada[u]
			for v := 0; v < p; v++ {
				au[v] = 0
			}
		}
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			dr := d[i] * r[i]
			for u := 0; u < p; u++ {
				rhs[u] += row[u] * dr
				du := d[i] * row[u]
				au := ada[u]
				for v := u; v < p; v++ {
					au[v] += du * row[v]
				}
			}
		}
		for u := 0; u < p; u++ {
			for v := 0; v < u; v++ {
				ada[u][v] = ada[v][u]
			}
		}
		if err := solveSPDInto(ada, rhs, dbeta); err != nil {
			return nil, errFNSingular
		}
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			var xd float64
			for u := 0; u < p; u++ {
				xd += row[u] * dbeta[u]
			}
			daAff[i] = d[i] * (xd - r[i])
			dzAff[i] = -z[i] * (1 + daAff[i]/a[i])
			dwAff[i] = -w[i] * (1 - daAff[i]/s[i])
		}
		alphaP, alphaD := stepLengths(a, s, z, w, daAff, dzAff, dwAff, damp)

		// Mehrotra centering from the affine gap.
		gapAff := 0.0
		for i := 0; i < n; i++ {
			gapAff += (z[i] + alphaD*dzAff[i]) * (a[i] + alphaP*daAff[i])
			gapAff += (w[i] + alphaD*dwAff[i]) * (s[i] - alphaP*daAff[i])
		}
		sigma := gapAff / gap
		sigma = sigma * sigma * sigma
		mu := sigma * gap / (2 * float64(n))

		// Corrector: fold the centering term and the affine second-order
		// products into the rhs. g_i collects everything in dz_i-dw_i that
		// is not the -(z/a+w/s)·da part; ds = -da makes the dw second-order
		// term -dwAff·daAff/s.
		for u := 0; u < p; u++ {
			rhs[u] = 0
		}
		for i := 0; i < n; i++ {
			gi := mu*(1/a[i]-1/s[i]) - dzAff[i]*daAff[i]/a[i] - dwAff[i]*daAff[i]/s[i]
			da[i] = gi // stash g_i; replaced by the real da below
			fillRow(row, X[i], addIntercept)
			dr := d[i] * (r[i] - gi)
			for u := 0; u < p; u++ {
				rhs[u] += row[u] * dr
			}
		}
		// The matrix XDX' from the predictor solve was destroyed by the
		// solver, so rebuild it.
		for u := 0; u < p; u++ {
			au := ada[u]
			for v := 0; v < p; v++ {
				au[v] = 0
			}
		}
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			for u := 0; u < p; u++ {
				du := d[i] * row[u]
				au := ada[u]
				for v := u; v < p; v++ {
					au[v] += du * row[v]
				}
			}
		}
		for u := 0; u < p; u++ {
			for v := 0; v < u; v++ {
				ada[u][v] = ada[v][u]
			}
		}
		if err := solveSPDInto(ada, rhs, dbeta); err != nil {
			return nil, errFNSingular
		}
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			var xd float64
			for u := 0; u < p; u++ {
				xd += row[u] * dbeta[u]
			}
			gi := da[i]
			da[i] = d[i] * (xd - r[i] + gi)
			dz[i] = (mu-dzAff[i]*daAff[i])/a[i] - z[i] - z[i]/a[i]*da[i]
			dw[i] = (mu-dwAff[i]*-daAff[i])/s[i] - w[i] + w[i]/s[i]*da[i]
		}
		alphaP, alphaD = stepLengths(a, s, z, w, da, dz, dw, damp)
		for i := 0; i < n; i++ {
			a[i] += alphaP * da[i]
			s[i] -= alphaP * da[i]
			z[i] += alphaD * dz[i]
			w[i] += alphaD * dw[i]
		}
		for u := 0; u < p; u++ {
			beta[u] += alphaD * dbeta[u]
		}
		// Recompute r = c - Xβ exactly to stop feasibility drift.
		gap = 0
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			var fit float64
			for u := 0; u < p; u++ {
				fit += row[u] * beta[u]
			}
			r[i] = -y[i] - fit
			gap += z[i]*a[i] + w[i]*s[i]
		}
	}

	coef := make([]float64, p)
	for u := 0; u < p; u++ {
		coef[u] = -beta[u]
	}
	m := &QuantileModel{Tau: tau, Coef: coef, N: n, Iter: iter}
	m.Names = quantileNames(names, p, addIntercept)
	m.Loss = quantilePinball(y, X, coef, tau, addIntercept)
	return m, nil
}

// stepLengths returns the damped primal/dual step fractions that keep
// (a, s) and (z, w) strictly positive. ds = -da throughout.
func stepLengths(a, s, z, w, da, dz, dw []float64, damp float64) (alphaP, alphaD float64) {
	alphaP, alphaD = 1, 1
	for i := range a {
		if da[i] < 0 {
			if t := -damp * a[i] / da[i]; t < alphaP {
				alphaP = t
			}
		} else if da[i] > 0 {
			if t := damp * s[i] / da[i]; t < alphaP {
				alphaP = t
			}
		}
		if dz[i] < 0 {
			if t := -damp * z[i] / dz[i]; t < alphaD {
				alphaD = t
			}
		}
		if dw[i] < 0 {
			if t := -damp * w[i] / dw[i]; t < alphaD {
				alphaD = t
			}
		}
	}
	return alphaP, alphaD
}

// solveSPDInto solves m·x = b for a symmetric positive-definite m via
// Cholesky factorization, writing the solution into x. m is destroyed.
func solveSPDInto(m [][]float64, b, x []float64) error {
	p := len(m)
	// In-place Cholesky: m = L·L', lower triangle.
	for j := 0; j < p; j++ {
		diag := m[j][j]
		for k := 0; k < j; k++ {
			diag -= m[j][k] * m[j][k]
		}
		if diag < 1e-12 || math.IsNaN(diag) {
			return errors.New("stats: matrix not positive definite")
		}
		diag = math.Sqrt(diag)
		m[j][j] = diag
		for i := j + 1; i < p; i++ {
			v := m[i][j]
			for k := 0; k < j; k++ {
				v -= m[i][k] * m[j][k]
			}
			m[i][j] = v / diag
		}
	}
	// Forward solve L·t = b, then back solve L'·x = t.
	for i := 0; i < p; i++ {
		v := b[i]
		for k := 0; k < i; k++ {
			v -= m[i][k] * x[k]
		}
		x[i] = v / m[i][i]
	}
	for i := p - 1; i >= 0; i-- {
		v := x[i]
		for k := i + 1; k < p; k++ {
			v -= m[k][i] * x[k]
		}
		x[i] = v / m[i][i]
	}
	return nil
}

// FitQuantileIRLS is the legacy quantile-regression solver: iteratively
// reweighted least squares on a smoothed pinball loss. It is kept as the
// fallback for designs where the interior-point method fails and as the
// oracle for the solver-equivalence tests. For purely categorical designs
// (the paper's case: HO type dummies) the solution converges to
// within-group quantiles, which tests verify.
func FitQuantileIRLS(y []float64, X [][]float64, names []string, tau float64, addIntercept bool) (*QuantileModel, error) {
	n, p, err := checkQuantileDesign(y, X, names, tau, addIntercept)
	if err != nil {
		return nil, err
	}

	// Start from the OLS solution.
	ols, err := FitOLS(y, X, names, addIntercept)
	if err != nil {
		return nil, err
	}
	coef := append([]float64(nil), ols.Coef...)

	const (
		maxIter = 200
		eps     = 1e-6 // smoothing floor for |residual|
		tol     = 1e-9
	)
	row := make([]float64, p)
	xtwx := newSquare(p)
	xtwy := make([]float64, p)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		for a := 0; a < p; a++ {
			xtwy[a] = 0
			for b := 0; b < p; b++ {
				xtwx[a][b] = 0
			}
		}
		for i := 0; i < n; i++ {
			fillRow(row, X[i], addIntercept)
			var fit float64
			for a := 0; a < p; a++ {
				fit += row[a] * coef[a]
			}
			r := y[i] - fit
			var w float64
			if r > 0 {
				w = tau / math.Max(math.Abs(r), eps)
			} else {
				w = (1 - tau) / math.Max(math.Abs(r), eps)
			}
			for a := 0; a < p; a++ {
				// w*row[a] is the left-grouped common factor of both
				// updates; hoisting it is bit-identical.
				wra := w * row[a]
				xtwy[a] += wra * y[i]
				xa := xtwx[a]
				for b := a; b < p; b++ {
					xa[b] += wra * row[b]
				}
			}
		}
		for a := 0; a < p; a++ {
			for b := 0; b < a; b++ {
				xtwx[a][b] = xtwx[b][a]
			}
		}
		inv, err := invertSPD(xtwx)
		if err != nil {
			return nil, errors.New("stats: quantile regression design became singular")
		}
		next := make([]float64, p)
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				next[a] += inv[a][b] * xtwy[b]
			}
		}
		var delta float64
		for a := 0; a < p; a++ {
			delta += math.Abs(next[a] - coef[a])
		}
		coef = next
		if delta < tol {
			break
		}
	}

	m := &QuantileModel{Tau: tau, Coef: coef, N: n, Iter: iter + 1}
	m.Names = quantileNames(names, p, addIntercept)
	m.Loss = quantilePinball(y, X, coef, tau, addIntercept)
	return m, nil
}

// PinballLoss returns the mean pinball (quantile) loss of predictions yhat
// against observations y at level tau.
func PinballLoss(y, yhat []float64, tau float64) (float64, error) {
	if len(y) != len(yhat) {
		return 0, ErrLengthMismatch
	}
	if len(y) == 0 {
		return 0, ErrEmpty
	}
	var loss float64
	for i := range y {
		r := y[i] - yhat[i]
		if r > 0 {
			loss += tau * r
		} else {
			loss += (tau - 1) * r
		}
	}
	return loss / float64(len(y)), nil
}
