package stats

import "math"

// This file implements the special functions needed for classical
// inference: the regularized incomplete beta and gamma functions, and the
// Student-t, F, chi-square and normal distribution functions built on them.
// The continued-fraction and series expansions follow the standard
// formulations (Abramowitz & Stegun §6.4, §26.5; Lentz's algorithm).

const (
	cfEpsilon = 3e-14
	cfTiny    = 1e-300
	cfMaxIter = 500
)

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1]. It returns NaN outside the domain.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz algorithm.
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < cfTiny {
		d = cfTiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= cfMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < cfTiny {
			d = cfTiny
		}
		c = 1 + aa/c
		if math.Abs(c) < cfTiny {
			c = cfTiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < cfTiny {
			d = cfTiny
		}
		c = 1 + aa/c
		if math.Abs(c) < cfTiny {
			c = cfTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < cfEpsilon {
			break
		}
	}
	return h
}

// RegIncGammaLower returns the regularized lower incomplete gamma function
// P(a, x) for a > 0, x ≥ 0.
func RegIncGammaLower(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < cfMaxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*cfEpsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1 - P(a,x) by continued fraction (x ≥ a+1).
func gammaCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / cfTiny
	d := 1 / b
	h := d
	for i := 1; i <= cfMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < cfTiny {
			d = cfTiny
		}
		c = b + an/c
		if math.Abs(c) < cfTiny {
			c = cfTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < cfEpsilon {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lg)
}

// NormalCDF returns P(Z ≤ z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// StudentTCDF returns P(T ≤ t) for a Student-t variate with df degrees of
// freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTTwoSidedP returns the two-sided p-value for |T| ≥ |t| under a
// Student-t distribution with df degrees of freedom.
func StudentTTwoSidedP(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	return RegIncBeta(df/2, 0.5, x)
}

// FCDF returns P(F ≤ f) for an F distribution with d1 and d2 degrees of
// freedom.
func FCDF(f, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 {
		return math.NaN()
	}
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegIncBeta(d1/2, d2/2, x)
}

// FSurvival returns P(F > f), the upper tail used for ANOVA p-values.
func FSurvival(f, d1, d2 float64) float64 {
	if f <= 0 {
		return 1
	}
	return 1 - FCDF(f, d1, d2)
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square variate with k degrees of
// freedom.
func ChiSquareCDF(x, k float64) float64 {
	if k <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return RegIncGammaLower(k/2, x/2)
}

// ChiSquareSurvival returns P(X > x), the upper tail used by the
// Kruskal–Wallis test.
func ChiSquareSurvival(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - ChiSquareCDF(x, k)
}
