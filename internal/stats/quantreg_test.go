package stats

import (
	"math"
	"sort"
	"testing"

	"telcolens/internal/randx"
)

func TestFitQuantileCategoricalMatchesGroupQuantiles(t *testing.T) {
	// This is the exact structure of the paper's Tables 8/9: dummy-coded
	// HO type as the only covariate. The quantile regression solution is
	// then intercept = baseline group quantile, coefficient = difference
	// of group quantiles.
	r := randx.New(17)
	var y []float64
	var X [][]float64
	var base, treat []float64
	for i := 0; i < 800; i++ {
		v := r.LogNormal(0, 1)
		base = append(base, v)
		y = append(y, v)
		X = append(X, []float64{0})
	}
	for i := 0; i < 800; i++ {
		v := r.LogNormal(2, 0.8)
		treat = append(treat, v)
		y = append(y, v)
		X = append(X, []float64{1})
	}
	for _, tau := range []float64{0.2, 0.4, 0.6, 0.8} {
		m, err := FitQuantile(y, X, []string{"treat"}, tau, true)
		if err != nil {
			t.Fatal(err)
		}
		wantIntercept := Quantile(base, tau)
		wantCoef := Quantile(treat, tau) - wantIntercept
		// IRLS smoothing keeps this approximate: 5% relative tolerance.
		if relErr(m.Coef[0], wantIntercept) > 0.05 {
			t.Errorf("tau=%g intercept %g, want %g", tau, m.Coef[0], wantIntercept)
		}
		if relErr(m.Coef[1], wantCoef) > 0.08 {
			t.Errorf("tau=%g coef %g, want %g", tau, m.Coef[1], wantCoef)
		}
	}
}

func TestFitQuantileMedianLine(t *testing.T) {
	// Median regression on symmetric noise recovers the OLS line.
	r := randx.New(5)
	n := 3000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.Float64() * 10
		X[i] = []float64{x}
		y[i] = 1 + 2*x + r.NormFloat64()
	}
	m, err := FitQuantile(y, X, []string{"x"}, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-1) > 0.1 || math.Abs(m.Coef[1]-2) > 0.03 {
		t.Fatalf("median line coef = %v", m.Coef)
	}
}

func TestFitQuantileInterceptOnlyIsSampleQuantile(t *testing.T) {
	r := randx.New(23)
	y := make([]float64, 2001)
	for i := range y {
		y[i] = r.ExpFloat64() * 10
	}
	// Intercept-only design: one constant pseudo-covariate is not needed;
	// use addIntercept with an empty column set via a zero-width design.
	X := make([][]float64, len(y))
	for i := range X {
		X[i] = []float64{}
	}
	for _, tau := range []float64{0.25, 0.5, 0.9} {
		m, err := FitQuantile(y, X, nil, tau, true)
		if err != nil {
			t.Fatal(err)
		}
		want := Quantile(y, tau)
		if relErr(m.Coef[0], want) > 0.05 {
			t.Errorf("tau=%g intercept %g, want %g", tau, m.Coef[0], want)
		}
	}
}

func TestFitQuantileTauOrdering(t *testing.T) {
	// Fitted quantile levels must be (weakly) ordered in tau for an
	// intercept-only model.
	r := randx.New(2)
	y := make([]float64, 1500)
	for i := range y {
		y[i] = r.LogNormal(1, 1.2)
	}
	X := make([][]float64, len(y))
	for i := range X {
		X[i] = []float64{}
	}
	var prev float64 = math.Inf(-1)
	for _, tau := range []float64{0.2, 0.4, 0.6, 0.8} {
		m, err := FitQuantile(y, X, nil, tau, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.Coef[0] < prev-1e-6 {
			t.Fatalf("quantile fits not ordered at tau=%g", tau)
		}
		prev = m.Coef[0]
	}
}

func TestFitQuantileErrors(t *testing.T) {
	y := []float64{1, 2, 3}
	X := [][]float64{{1}, {2}, {3}}
	if _, err := FitQuantile(y, X, []string{"x"}, 0, true); err == nil {
		t.Fatal("tau=0 accepted")
	}
	if _, err := FitQuantile(y, X, []string{"x"}, 1, true); err == nil {
		t.Fatal("tau=1 accepted")
	}
	if _, err := FitQuantile(nil, nil, nil, 0.5, true); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestPinballLoss(t *testing.T) {
	y := []float64{1, 2, 3}
	yhat := []float64{1, 1, 4}
	// residuals: 0, 1, -1 → tau=0.5: (0 + .5 + .5)/3
	got, err := PinballLoss(y, yhat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 1.0/3.0, 1e-12) {
		t.Fatalf("loss = %g", got)
	}
	if _, err := PinballLoss(y, yhat[:2], 0.5); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestQuantileModelBeatsOLSOnPinball(t *testing.T) {
	// For asymmetric noise and tau != 0.5 the quantile fit must achieve
	// lower pinball loss than the OLS fit.
	r := randx.New(91)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.Float64() * 5
		X[i] = []float64{x}
		y[i] = x + r.ExpFloat64()*3 // skewed noise
	}
	tau := 0.8
	qm, err := FitQuantile(y, X, []string{"x"}, tau, true)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := FitOLS(y, X, []string{"x"}, true)
	if err != nil {
		t.Fatal(err)
	}
	qhat := make([]float64, n)
	ohat := make([]float64, n)
	for i := 0; i < n; i++ {
		qhat[i] = qm.Coef[0] + qm.Coef[1]*X[i][0]
		ohat[i] = ols.Coef[0] + ols.Coef[1]*X[i][0]
	}
	ql, _ := PinballLoss(y, qhat, tau)
	ol, _ := PinballLoss(y, ohat, tau)
	if ql >= ol {
		t.Fatalf("quantile loss %g not better than OLS loss %g", ql, ol)
	}
}

func TestFitQuantileEquivalentToIRLSRandomDesigns(t *testing.T) {
	// Satellite: solver equivalence. The interior-point default and the
	// legacy IRLS oracle must agree on random continuous designs across
	// seeds and quantile levels — coefficients within tolerance, and the
	// interior-point fit at least as good on the exact pinball objective
	// (it solves the LP; IRLS solves a smoothed surrogate).
	for _, seed := range []uint64{3, 41, 107} {
		r := randx.New(seed)
		n := 400
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x1 := r.Float64() * 4
			x2 := r.NormFloat64()
			X[i] = []float64{x1, x2}
			y[i] = 0.5 + 1.5*x1 - 0.7*x2 + r.ExpFloat64()*2
		}
		names := []string{"x1", "x2"}
		for _, tau := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			fn, err := FitQuantile(y, X, names, tau, true)
			if err != nil {
				t.Fatalf("seed=%d tau=%g fn: %v", seed, tau, err)
			}
			ir, err := FitQuantileIRLS(y, X, names, tau, true)
			if err != nil {
				t.Fatalf("seed=%d tau=%g irls: %v", seed, tau, err)
			}
			for j := range fn.Coef {
				// Extreme taus sit on weakly determined LP faces, so
				// coefficients carry a looser tolerance than the loss.
				scale := math.Max(math.Abs(ir.Coef[j]), 0.5)
				if math.Abs(fn.Coef[j]-ir.Coef[j])/scale > 0.10 {
					t.Errorf("seed=%d tau=%g coef[%d]: fn=%g irls=%g",
						seed, tau, j, fn.Coef[j], ir.Coef[j])
				}
			}
			if fn.Loss > ir.Loss*(1+1e-6) {
				t.Errorf("seed=%d tau=%g: fn loss %g worse than irls %g",
					seed, tau, fn.Loss, ir.Loss)
			}
			if relErr(fn.Loss, ir.Loss) > 0.005 {
				t.Errorf("seed=%d tau=%g: losses diverge fn=%g irls=%g",
					seed, tau, fn.Loss, ir.Loss)
			}
			if fn.Iter >= 200 {
				t.Errorf("seed=%d tau=%g: interior point used %d iters", seed, tau, fn.Iter)
			}
		}
	}
}

func TestFitQuantileSolverLossRankingMatchesIRLS(t *testing.T) {
	// Satellite property test: across a family of candidate designs, both
	// solvers must rank the designs identically by final pinball loss
	// (what model selection consumes), even where coefficients differ in
	// the last digits.
	r := randx.New(77)
	n := 600
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	x3 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = r.Float64() * 3
		x2[i] = r.NormFloat64()
		x3[i] = r.Float64() // pure noise covariate
		y[i] = 2*x1[i] - x2[i] + r.LogNormal(0, 0.7)
	}
	designs := []struct {
		name  string
		cols  []string
		build func(i int) []float64
	}{
		{"intercept", nil, func(i int) []float64 { return []float64{} }},
		{"x1", []string{"x1"}, func(i int) []float64 { return []float64{x1[i]} }},
		{"x1+x2", []string{"x1", "x2"}, func(i int) []float64 { return []float64{x1[i], x2[i]} }},
		{"x1+x2+x3", []string{"x1", "x2", "x3"}, func(i int) []float64 { return []float64{x1[i], x2[i], x3[i]} }},
	}
	for _, tau := range []float64{0.3, 0.5, 0.8} {
		type scored struct {
			name string
			loss float64
		}
		var fnScores, irScores []scored
		for _, d := range designs {
			X := make([][]float64, n)
			for i := range X {
				X[i] = d.build(i)
			}
			fn, err := FitQuantile(y, X, d.cols, tau, true)
			if err != nil {
				t.Fatalf("tau=%g %s fn: %v", tau, d.name, err)
			}
			ir, err := FitQuantileIRLS(y, X, d.cols, tau, true)
			if err != nil {
				t.Fatalf("tau=%g %s irls: %v", tau, d.name, err)
			}
			fnScores = append(fnScores, scored{d.name, fn.Loss})
			irScores = append(irScores, scored{d.name, ir.Loss})
		}
		sort.Slice(fnScores, func(a, b int) bool { return fnScores[a].loss < fnScores[b].loss })
		sort.Slice(irScores, func(a, b int) bool { return irScores[a].loss < irScores[b].loss })
		for i := range fnScores {
			if fnScores[i].name != irScores[i].name {
				t.Fatalf("tau=%g: loss ranking diverged: fn=%v irls=%v", tau, fnScores, irScores)
			}
		}
	}
}

func TestFitQuantileDegenerateDesigns(t *testing.T) {
	// Regression test for degenerate designs: perfectly collinear columns
	// must fail cleanly (no panic, no NaN coefficients), and a constant
	// response must be recovered exactly by the intercept.
	r := randx.New(9)
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.Float64()
		X[i] = []float64{x, 2 * x} // collinear pair
		y[i] = x + r.NormFloat64()
	}
	if _, err := FitQuantile(y, X, []string{"x", "2x"}, 0.5, true); err == nil {
		t.Fatal("collinear design accepted")
	}

	for i := 0; i < n; i++ {
		X[i] = []float64{r.Float64()}
		y[i] = 42
	}
	m, err := FitQuantile(y, X, []string{"x"}, 0.7, true)
	if err != nil {
		t.Fatalf("constant response: %v", err)
	}
	for j, c := range m.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("constant response coef[%d] = %g", j, c)
		}
	}
	if math.Abs(m.Coef[0]-42) > 1e-3 || math.Abs(m.Coef[1]) > 1e-3 {
		t.Fatalf("constant response coef = %v", m.Coef)
	}
	if m.Loss > 1e-6 {
		t.Fatalf("constant response loss = %g", m.Loss)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// ensure sort is linked for helpers in other tests within package
var _ = sort.Float64s
