package stats

import (
	"testing"

	"telcolens/internal/randx"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("r = %g", r)
	}
	neg := []float64{40, 30, 20, 10}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("r = %g", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	rng := randx.New(4)
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if r < -1 || r > 1 {
			t.Fatalf("r = %g out of bounds", r)
		}
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero-variance sample accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone but non-linear relationship: Spearman = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 1, 1e-12) {
		t.Fatalf("rho = %g", rho)
	}
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	fit := []float64{1.1, 1.9, 3.05, 3.95}
	r2, err := RSquared(ys, fit)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.98 || r2 > 1 {
		t.Fatalf("r2 = %g", r2)
	}
	// Perfect fit
	r2, _ = RSquared(ys, ys)
	if r2 != 1 {
		t.Fatalf("perfect r2 = %g", r2)
	}
	if _, err := RSquared(ys, fit[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
