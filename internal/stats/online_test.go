package stats

import (
	"math"
	"testing"
	"testing/quick"

	"telcolens/internal/randx"
)

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != int64(len(xs)) {
		t.Fatalf("n = %d", o.N())
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("mean = %g vs %g", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-12) {
		t.Fatalf("var = %g vs %g", o.Variance(), Variance(xs))
	}
	min, max := MinMax(xs)
	if o.Min() != min || o.Max() != max {
		t.Fatalf("minmax = %g,%g", o.Min(), o.Max())
	}
}

func TestOnlineMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var oa, ob, oAll Online
		for _, v := range a {
			oa.Add(v)
			oAll.Add(v)
		}
		for _, v := range b {
			ob.Add(v)
			oAll.Add(v)
		}
		oa.Merge(&ob)
		if oa.N() != oAll.N() {
			return false
		}
		if oa.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(oAll.Mean()))
		if math.Abs(oa.Mean()-oAll.Mean()) > tol {
			return false
		}
		return math.Abs(oa.Variance()-oAll.Variance()) <= 1e-5*(1+oAll.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineEmptyMerge(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge with empty changed state: %+v", a)
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty failed: n=%d", b.N())
	}
}

func TestLogHistQuantiles(t *testing.T) {
	r := randx.New(3)
	h := NewLogHist(0.1, 100000, 400)
	exact := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := r.LogNormalMedP95(43, 92)
		h.Add(v)
		exact = append(exact, v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95} {
		approx := h.Quantile(q)
		want := Quantile(exact, q)
		if relErr(approx, want) > 0.05 {
			t.Errorf("q=%g: sketch %g vs exact %g", q, approx, want)
		}
	}
	if h.N() != 100000 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestLogHistMerge(t *testing.T) {
	a := NewLogHist(1, 1000, 50)
	b := NewLogHist(1, 1000, 50)
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
		b.Add(float64(i * 5))
	}
	a.Merge(b)
	if a.N() != 200 {
		t.Fatalf("merged N = %d", a.N())
	}
}

func TestLogHistMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible merge did not panic")
		}
	}()
	a := NewLogHist(1, 1000, 50)
	b := NewLogHist(1, 1000, 60)
	a.Merge(b)
}

func TestLogHistBounds(t *testing.T) {
	h := NewLogHist(1, 100, 10)
	h.Add(0.5) // underflow
	h.Add(1e9) // overflow
	h.Add(10)  // in range
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("underflow quantile = %g", q)
	}
	if q := h.Quantile(0.99); q < 100 {
		t.Fatalf("overflow quantile = %g", q)
	}
}

func TestLogHistInvalidConfig(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		bins   int
	}{{0, 1, 5}, {1, 1, 5}, {1, 10, 0}} {
		func() {
			defer func() { _ = recover() }()
			NewLogHist(c.lo, c.hi, c.bins)
			t.Errorf("NewLogHist(%g,%g,%d) did not panic", c.lo, c.hi, c.bins)
		}()
	}
}
