package stats

import (
	"math"
	"testing"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// I_x(2,2) = x^2(3-2x).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); !almostEq(got, want, 1e-10) {
			t.Errorf("I_%g(2,2) = %g, want %g", x, got, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.4, 0.7} {
		lhs := RegIncBeta(3.5, 1.25, x)
		rhs := 1 - RegIncBeta(1.25, 3.5, 1-x)
		if !almostEq(lhs, rhs, 1e-10) {
			t.Errorf("symmetry broken at %g: %g vs %g", x, lhs, rhs)
		}
	}
	if !math.IsNaN(RegIncBeta(-1, 1, 0.5)) {
		t.Fatal("invalid a accepted")
	}
}

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaLower(1, x); !almostEq(got, want, 1e-10) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	if RegIncGammaLower(2, 0) != 0 {
		t.Fatal("P(2,0) != 0")
	}
	if !math.IsNaN(RegIncGammaLower(0, 1)) {
		t.Fatal("invalid a accepted")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.95},
		{-1.6448536269514722, 0.05},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Phi(%g) = %g, want %g", c.z, got, c.want)
		}
	}
}

func TestStudentTCDF(t *testing.T) {
	// t with df=1 is Cauchy: CDF(1) = 3/4.
	if got := StudentTCDF(1, 1); !almostEq(got, 0.75, 1e-9) {
		t.Fatalf("T1(1) = %g", got)
	}
	if got := StudentTCDF(0, 7); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("T7(0) = %g", got)
	}
	// Large df approaches the normal.
	if got := StudentTCDF(1.96, 1e6); !almostEq(got, NormalCDF(1.96), 1e-4) {
		t.Fatalf("T(1.96, big df) = %g", got)
	}
	// Known: P(T<=2.0) for df=10 is ~0.963306.
	if got := StudentTCDF(2.0, 10); !almostEq(got, 0.9633060, 1e-5) {
		t.Fatalf("T10(2) = %g", got)
	}
	if StudentTCDF(math.Inf(1), 3) != 1 || StudentTCDF(math.Inf(-1), 3) != 0 {
		t.Fatal("infinite t mishandled")
	}
}

func TestStudentTTwoSidedP(t *testing.T) {
	// df=10, t=2.228 is the 97.5th percentile → two-sided p = 0.05.
	if got := StudentTTwoSidedP(2.228, 10); !almostEq(got, 0.05, 2e-4) {
		t.Fatalf("p = %g", got)
	}
	// symmetric in t
	if StudentTTwoSidedP(2, 5) != StudentTTwoSidedP(-2, 5) {
		t.Fatal("two-sided p not symmetric")
	}
}

func TestFCDF(t *testing.T) {
	// F(d1=1, d2=k) at f equals T_k CDF identity: P(F<=t²)=2P(T<=|t|)-1.
	tv := 2.0
	k := 12.0
	want := 2*StudentTCDF(tv, k) - 1
	if got := FCDF(tv*tv, 1, k); !almostEq(got, want, 1e-9) {
		t.Fatalf("F CDF = %g, want %g", got, want)
	}
	if FCDF(-1, 2, 2) != 0 {
		t.Fatal("negative f mishandled")
	}
	if got := FSurvival(0, 3, 7); got != 1 {
		t.Fatalf("FSurvival(0) = %g", got)
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Chi-square with 2 df is exponential(mean 2): CDF(x) = 1-exp(-x/2).
	for _, x := range []float64{0.5, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !almostEq(got, want, 1e-9) {
			t.Errorf("Chi2_2(%g) = %g, want %g", x, got, want)
		}
	}
	// Known: P(X ≤ 3.841) for 1 df ≈ 0.95.
	if got := ChiSquareCDF(3.841458820694124, 1); !almostEq(got, 0.95, 1e-6) {
		t.Fatalf("Chi2_1(3.84) = %g", got)
	}
	if ChiSquareSurvival(0, 3) != 1 {
		t.Fatal("survival at 0 should be 1")
	}
}

func TestCDFsMonotone(t *testing.T) {
	prevT, prevF, prevC := 0.0, 0.0, 0.0
	for x := 0.0; x < 20; x += 0.25 {
		ct := StudentTCDF(x, 5)
		cf := FCDF(x, 3, 9)
		cc := ChiSquareCDF(x, 4)
		if ct < prevT || cf < prevF || cc < prevC {
			t.Fatalf("non-monotone CDF at x=%g", x)
		}
		prevT, prevF, prevC = ct, cf, cc
	}
}
