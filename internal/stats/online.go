package stats

import "math"

// Online accumulates mean and variance in one pass using Welford's
// algorithm. The analysis engine uses it to aggregate millions of HO
// records without retaining samples.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.sum += x
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge combines another accumulator into this one (parallel aggregation).
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	delta := other.mean - o.mean
	tot := n1 + n2
	o.mean += delta * n2 / tot
	o.m2 += other.m2 + delta*delta*n1*n2/tot
	o.n += other.n
	o.sum += other.sum
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Sum returns the running sum.
func (o *Online) Sum() float64 { return o.sum }

// Variance returns the unbiased running variance (0 for n < 2).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 { return o.max }

// LogHist is a fixed-memory quantile sketch over positive values using
// logarithmically spaced bins. It trades exactness for O(1) memory and is
// the ablation alternative to exact sample collection for duration ECDFs
// (see DESIGN.md §7). Relative quantile error is bounded by the bin growth
// factor.
type LogHist struct {
	lo     float64 // lower bound of first bin (exclusive of zero bucket)
	ratio  float64 // bin growth factor
	logR   float64
	counts []uint64
	zero   uint64 // values <= lo
	over   uint64 // values beyond the last bin
	total  uint64
}

// NewLogHist creates a sketch covering (lo, hi] with the given number of
// bins. lo and hi must be positive with hi > lo and bins >= 1.
func NewLogHist(lo, hi float64, bins int) *LogHist {
	if lo <= 0 || hi <= lo || bins < 1 {
		panic("stats: invalid LogHist configuration")
	}
	ratio := math.Pow(hi/lo, 1/float64(bins))
	return &LogHist{
		lo:     lo,
		ratio:  ratio,
		logR:   math.Log(ratio),
		counts: make([]uint64, bins),
	}
}

// Add records a value.
func (h *LogHist) Add(x float64) {
	h.total++
	if x <= h.lo {
		h.zero++
		return
	}
	idx := int(math.Log(x/h.lo) / h.logR)
	if idx >= len(h.counts) {
		h.over++
		return
	}
	h.counts[idx]++
}

// N returns the number of recorded values.
func (h *LogHist) N() uint64 { return h.total }

// Quantile returns an approximate q-th quantile (geometric midpoint of the
// containing bin). Values in the under/overflow regions return the range
// bounds.
func (h *LogHist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	if target < h.zero {
		return h.lo
	}
	cum := h.zero
	for i, c := range h.counts {
		cum += c
		if target < cum {
			lo := h.lo * math.Pow(h.ratio, float64(i))
			return lo * math.Sqrt(h.ratio) // geometric midpoint
		}
	}
	return h.lo * math.Pow(h.ratio, float64(len(h.counts)))
}

// Merge combines another sketch with identical configuration.
func (h *LogHist) Merge(other *LogHist) {
	if len(other.counts) != len(h.counts) || other.lo != h.lo || other.ratio != h.ratio {
		panic("stats: merging incompatible LogHist sketches")
	}
	h.zero += other.zero
	h.over += other.over
	h.total += other.total
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}
