package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean = %g", m)
	}
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %g", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty-sample conventions violated")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("minmax = %g,%g", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("empty minmax convention violated")
	}
}

func TestQuantileType7(t *testing.T) {
	// R: quantile(c(1,2,3,4), 0.25) == 1.75 with type 7.
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 1.75}, {0.5, 2.5}, {0.75, 3.25}, {1, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileSingleton(t *testing.T) {
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if got := Quantile([]float64{42}, q); got != 42 {
			t.Fatalf("Quantile(singleton, %g) = %g", q, got)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		qq := math.Mod(math.Abs(q), 1)
		v := Quantile(xs, qq)
		min, max := MinMax(xs)
		return v >= min-1e-9 && v <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %g,%g", s.Q1, s.Q3)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100} // 100 is an outlier
	b := BoxplotOf(xs)
	if b.Max != 100 || b.Min != 1 {
		t.Fatalf("extrema %g,%g", b.Min, b.Max)
	}
	if b.HiWhisker == 100 {
		t.Fatal("whisker included the outlier")
	}
	if b.LoWhisker != 1 {
		t.Fatalf("lo whisker = %g", b.LoWhisker)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 {
		t.Fatal("quartile ordering broken")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("empty ECDF accepted")
	}
}

func TestECDFMonotoneNondecreasingProperty(t *testing.T) {
	f := func(raw []float64, x1, x2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		e, err := NewECDF(clean)
		if err != nil {
			return false
		}
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return e.Eval(x1) <= e.Eval(x2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	e, _ := NewECDF(xs)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		v := e.Quantile(q)
		got := e.Eval(v)
		if math.Abs(got-q) > 0.01 {
			t.Errorf("Eval(Quantile(%g)) = %g", q, got)
		}
	}
}

func TestECDFPoints(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	e, _ := NewECDF(xs)
	px, pf := e.Points(3)
	if len(px) != 3 || len(pf) != 3 {
		t.Fatalf("points lengths %d,%d", len(px), len(pf))
	}
	if !sort.Float64sAreSorted(px) {
		t.Fatal("x points not sorted")
	}
	if pf[len(pf)-1] != 1 {
		t.Fatalf("last F = %g", pf[len(pf)-1])
	}
	px, _ = e.Points(0)
	if len(px) != 5 {
		t.Fatalf("Points(0) returned %d", len(px))
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 5, 10, 15, 29.9, 30, 99} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBadEdges(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Fatal("single edge accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-ascending edges accepted")
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := NewHistogram([]float64{-100, 0, 100})
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		return h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
