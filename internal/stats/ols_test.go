package stats

import (
	"math"
	"testing"

	"telcolens/internal/randx"
)

func TestFitOLSExactLine(t *testing.T) {
	// y = 3 + 2x, noise-free.
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		X[i] = []float64{x}
		y[i] = 3 + 2*x
	}
	m, err := FitOLS(y, X, []string{"x"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 3, 1e-8) || !almostEq(m.Coef[1], 2, 1e-8) {
		t.Fatalf("coef = %v", m.Coef)
	}
	if !almostEq(m.R2, 1, 1e-9) {
		t.Fatalf("R2 = %g", m.R2)
	}
	if m.RMSE > 1e-8 {
		t.Fatalf("RMSE = %g", m.RMSE)
	}
}

func TestFitOLSRecoversNoisyCoefficients(t *testing.T) {
	r := randx.New(42)
	n := 5000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1 := r.NormFloat64()
		x2 := r.Float64() * 4
		X[i] = []float64{x1, x2}
		y[i] = 1.5 - 2*x1 + 0.5*x2 + 0.3*r.NormFloat64()
	}
	m, err := FitOLS(y, X, []string{"x1", "x2"}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 0.5}
	for i, w := range want {
		if math.Abs(m.Coef[i]-w) > 0.05 {
			t.Errorf("coef[%d] = %g, want %g", i, m.Coef[i], w)
		}
	}
	// The true slopes are highly significant.
	for i := 1; i < 3; i++ {
		if m.PValue[i] > 1e-10 {
			t.Errorf("p-value[%d] = %g, expected tiny", i, m.PValue[i])
		}
	}
}

func TestFitOLSInsignificantCovariate(t *testing.T) {
	r := randx.New(7)
	n := 2000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1 := r.NormFloat64()
		junk := r.NormFloat64()
		X[i] = []float64{x1, junk}
		y[i] = 2 + x1 + r.NormFloat64()
	}
	m, err := FitOLS(y, X, []string{"x1", "junk"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.PValue[2] < 0.01 {
		t.Fatalf("junk covariate spuriously significant: p=%g coef=%g", m.PValue[2], m.Coef[2])
	}
}

func TestFitOLSCategoricalEqualsGroupMeans(t *testing.T) {
	// With dummy coding, intercept = baseline mean, coefficient = group
	// mean difference. This is exactly how the paper's HO-type models work.
	groupA := []float64{1, 2, 3}    // mean 2
	groupB := []float64{10, 12, 14} // mean 12
	var y []float64
	var X [][]float64
	for _, v := range groupA {
		y = append(y, v)
		X = append(X, []float64{0})
	}
	for _, v := range groupB {
		y = append(y, v)
		X = append(X, []float64{1})
	}
	m, err := FitOLS(y, X, []string{"isB"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m.Coef[0], 2, 1e-9) {
		t.Fatalf("intercept = %g, want 2", m.Coef[0])
	}
	if !almostEq(m.Coef[1], 10, 1e-9) {
		t.Fatalf("dummy coef = %g, want 10", m.Coef[1])
	}
}

func TestFitOLSResidualOrthogonality(t *testing.T) {
	// OLS residuals are orthogonal to every column of the design.
	r := randx.New(99)
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{r.NormFloat64(), r.Float64()}
		y[i] = r.NormFloat64() * 3
	}
	m, err := FitOLS(y, X, []string{"a", "b"}, true)
	if err != nil {
		t.Fatal(err)
	}
	var dotIntercept, dotA, dotB float64
	for i := 0; i < n; i++ {
		dotIntercept += m.Resid[i]
		dotA += m.Resid[i] * X[i][0]
		dotB += m.Resid[i] * X[i][1]
	}
	for _, d := range []float64{dotIntercept, dotA, dotB} {
		if math.Abs(d) > 1e-6*float64(n) {
			t.Fatalf("residuals not orthogonal: %g", d)
		}
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil, nil, true); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, err := FitOLS([]float64{1, 2}, [][]float64{{1}}, []string{"x"}, true); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Perfect collinearity.
	y := []float64{1, 2, 3, 4, 5}
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {5, 10}}
	if _, err := FitOLS(y, X, []string{"a", "b"}, true); err == nil {
		t.Fatal("collinear design accepted")
	}
	// Too few observations.
	if _, err := FitOLS([]float64{1, 2}, [][]float64{{1}, {2}}, []string{"x"}, true); err == nil {
		t.Fatal("n <= p accepted")
	}
	// Ragged rows.
	if _, err := FitOLS([]float64{1, 2, 3}, [][]float64{{1}, {2, 3}, {4}}, []string{"x"}, true); err == nil {
		t.Fatal("ragged design accepted")
	}
}

func TestPredict(t *testing.T) {
	y := []float64{1, 3, 5, 7}
	X := [][]float64{{0}, {1}, {2}, {3}}
	m, err := FitOLS(y, X, []string{"x"}, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 21, 1e-9) {
		t.Fatalf("Predict(10) = %g", got)
	}
	if _, err := m.Predict([]float64{1, 2}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestOLSNoIntercept(t *testing.T) {
	y := []float64{2, 4, 6, 8}
	X := [][]float64{{1}, {2}, {3}, {4}}
	m, err := FitOLS(y, X, []string{"x"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Coef) != 1 || !almostEq(m.Coef[0], 2, 1e-9) {
		t.Fatalf("coef = %v", m.Coef)
	}
}

func TestAICOrdersModels(t *testing.T) {
	// A model including the true covariate must beat an intercept-only fit.
	r := randx.New(31)
	n := 400
	Xgood := make([][]float64, n)
	Xbad := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		Xgood[i] = []float64{x}
		Xbad[i] = []float64{r.NormFloat64()}
		y[i] = 3*x + 0.5*r.NormFloat64()
	}
	good, err := FitOLS(y, Xgood, []string{"x"}, true)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := FitOLS(y, Xbad, []string{"noise"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if good.AIC >= bad.AIC {
		t.Fatalf("AIC ordering wrong: good=%g bad=%g", good.AIC, bad.AIC)
	}
}
