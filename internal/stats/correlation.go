package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: sample length mismatch")

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples. It returns an error for mismatched lengths, fewer than
// two pairs, or zero variance in either sample.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient, i.e. the
// Pearson correlation of the ranks, with average ranks for ties.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs, assigning tied values their
// average rank (the convention required by Spearman and Kruskal–Wallis).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// RSquared returns the coefficient of determination between observed ys and
// fitted yhats: 1 - SS_res/SS_tot.
func RSquared(ys, yhats []float64) (float64, error) {
	if len(ys) != len(yhats) {
		return 0, ErrLengthMismatch
	}
	if len(ys) < 2 {
		return 0, ErrEmpty
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range ys {
		r := ys[i] - yhats[i]
		d := ys[i] - my
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0, errors.New("stats: zero variance response")
	}
	return 1 - ssRes/ssTot, nil
}
