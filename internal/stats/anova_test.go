package stats

import (
	"math"
	"testing"

	"telcolens/internal/randx"
)

func TestOneWayANOVAKnown(t *testing.T) {
	// Classic worked example: three groups with clearly different means.
	groups := [][]float64{
		{6, 8, 4, 5, 3, 4},
		{8, 12, 9, 11, 6, 8},
		{13, 9, 11, 8, 7, 12},
	}
	res, err := OneWayANOVA(groups)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: SSB = 84, SSW = 68, F = (84/2)/(68/15) = 9.2647.
	if math.Abs(res.F-9.2647) > 0.001 {
		t.Fatalf("F = %g, want 9.2647", res.F)
	}
	if res.DFB != 2 || res.DFW != 15 {
		t.Fatalf("df = %d,%d", res.DFB, res.DFW)
	}
	if res.P > 0.005 || res.P <= 0 {
		t.Fatalf("p = %g", res.P)
	}
	if res.EtaSq < 0.5 || res.EtaSq > 0.6 {
		t.Fatalf("eta^2 = %g", res.EtaSq)
	}
}

func TestANOVANullDistribution(t *testing.T) {
	// Under H0 (identical distributions) p should not be extreme.
	r := randx.New(8)
	rejected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		groups := make([][]float64, 3)
		for g := range groups {
			groups[g] = make([]float64, 30)
			for i := range groups[g] {
				groups[g][i] = r.NormFloat64()
			}
		}
		res, err := OneWayANOVA(groups)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejected++
		}
	}
	// Expect ~5% rejections; allow generous slack.
	if rejected > 25 {
		t.Fatalf("ANOVA rejected H0 %d/%d times", rejected, trials)
	}
}

func TestANOVAErrorsAndEdge(t *testing.T) {
	if _, err := OneWayANOVA([][]float64{{1, 2}}); err == nil {
		t.Fatal("single group accepted")
	}
	if _, err := OneWayANOVA([][]float64{{1}, {2}}); err == nil {
		t.Fatal("no replication accepted")
	}
	// Perfect separation with zero within-group variance.
	res, err := OneWayANOVA([][]float64{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.F, 1) || res.P != 0 || res.EtaSq != 1 {
		t.Fatalf("perfect separation: %+v", res)
	}
	// Empty groups are skipped.
	res, err = OneWayANOVA([][]float64{{1, 2}, nil, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 2 {
		t.Fatalf("groups = %d", res.Groups)
	}
}

func TestKruskalWallisKnown(t *testing.T) {
	// Distinct groups with no ties; compare against scipy-verified value.
	groups := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
	}
	res, err := KruskalWallis(groups)
	if err != nil {
		t.Fatal(err)
	}
	// All ranks separated: H = 12/(9*10)*(6²/3+15²/3+24²/3)-3*10 = 7.2
	if !almostEq(res.H, 7.2, 1e-9) {
		t.Fatalf("H = %g, want 7.2", res.H)
	}
	if res.DF != 2 {
		t.Fatalf("df = %d", res.DF)
	}
	if res.P > 0.05 || res.P < 0.02 {
		t.Fatalf("p = %g, want ~0.027", res.P)
	}
}

func TestKruskalWallisWithTies(t *testing.T) {
	groups := [][]float64{
		{1, 1, 2},
		{2, 2, 3},
	}
	res, err := KruskalWallis(groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.H) || res.H < 0 {
		t.Fatalf("H = %g", res.H)
	}
}

func TestKruskalWallisScaleInvariance(t *testing.T) {
	// Rank test must be invariant under monotone transforms.
	g1 := [][]float64{{1, 5, 9}, {2, 6, 10}, {3, 7, 11}}
	g2 := make([][]float64, len(g1))
	for i, g := range g1 {
		g2[i] = make([]float64, len(g))
		for j, v := range g {
			g2[i][j] = math.Exp(v) // strictly monotone
		}
	}
	r1, err := KruskalWallis(g1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KruskalWallis(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r1.H, r2.H, 1e-9) {
		t.Fatalf("H not invariant: %g vs %g", r1.H, r2.H)
	}
}

func TestRanksAverageTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v", ranks)
		}
	}
}

func TestWelchTTest(t *testing.T) {
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 25.2}
	w, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Independently verified (see commit history): t = -2.8942,
	// Welch-Satterthwaite df = 27.917, two-sided p = 0.00730.
	if math.Abs(w.T-(-2.8942)) > 0.001 {
		t.Fatalf("t = %g", w.T)
	}
	if math.Abs(w.DF-27.917) > 0.01 {
		t.Fatalf("df = %g", w.DF)
	}
	if math.Abs(w.P-0.00730) > 0.0002 {
		t.Fatalf("p = %g", w.P)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("tiny group accepted")
	}
	w, err := WelchTTest([]float64{2, 2, 2}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.P != 1 {
		t.Fatalf("identical constant groups p = %g", w.P)
	}
	w, err = WelchTTest([]float64{1, 1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.P != 0 {
		t.Fatalf("separated constant groups p = %g", w.P)
	}
}

func TestPairwisePostHoc(t *testing.T) {
	groups := [][]float64{
		{1, 2, 1.5, 1.8, 2.2},
		{1.1, 2.1, 1.4, 1.9, 2.0},
		{9, 10, 9.5, 10.5, 9.8},
	}
	cmp, err := PairwisePostHoc(groups, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 3 {
		t.Fatalf("%d comparisons", len(cmp))
	}
	for _, c := range cmp {
		involves2 := c.A == 2 || c.B == 2
		if involves2 && !c.Significant {
			t.Errorf("comparison %d-%d should be significant (p=%g)", c.A, c.B, c.PAdjusted)
		}
		if !involves2 && c.Significant {
			t.Errorf("comparison %d-%d spuriously significant", c.A, c.B)
		}
		if c.PAdjusted < c.P {
			t.Error("Bonferroni adjustment decreased p-value")
		}
	}
}
