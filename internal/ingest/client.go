package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// Client posts record batches to an ingest endpoint with the retry
// discipline the durability contract expects: every batch carries a
// monotonically increasing sequence number per stream, a failed or
// unacknowledged send is retried with the same sequence number (the
// server deduplicates), and backpressure responses are honored by
// waiting out Retry-After. A Client is not safe for concurrent use; run
// one per stream.
type Client struct {
	// Base is the endpoint root, e.g. "http://127.0.0.1:8080".
	Base string
	// Stream identifies this client's sequence space (e.g. a UE shard or
	// worker index of the generator).
	Stream uint32
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// RetryFor bounds how long one send keeps retrying before giving up
	// (0 = 30s).
	RetryFor time.Duration
	// MaxAttempts caps the total attempts per logical send, including
	// the first (0 = unlimited within RetryFor).
	MaxAttempts int
	// MaxBackoff caps every retry wait, including server-supplied
	// Retry-After delays (0 = 5s). A server cannot stall a client past
	// its own patience.
	MaxBackoff time.Duration
	// FailThreshold opens the circuit breaker after this many
	// consecutive transport failures (0 = 5). Any HTTP response — even
	// a 5xx — closes it again: the wire works, only the server is
	// unhappy.
	FailThreshold int
	// BreakerCooldown is how long an open breaker short-circuits sends
	// before letting one half-open probe through (0 = 2s).
	BreakerCooldown time.Duration
	// Sleep overrides the retry wait (tests); nil = time.Sleep.
	Sleep func(time.Duration)

	seq uint64
	buf []byte

	// Circuit-breaker state. The Client is single-goroutine by
	// contract, so plain fields suffice.
	consecFails int
	openUntil   time.Time
	m           ClientMetrics
}

// ClientMetrics counts what a Client did on the wire, for operator
// output and test assertions.
type ClientMetrics struct {
	// Sends is the number of logical sends started (Send/Init/DayDone/
	// Flush calls that hit the network).
	Sends int64 `json:"sends"`
	// Retries counts attempts beyond the first across all sends.
	Retries int64 `json:"retries"`
	// TransportFailures counts attempts that died below HTTP (dial,
	// reset, torn response).
	TransportFailures int64 `json:"transport_failures"`
	// BreakerOpens counts breaker trips.
	BreakerOpens int64 `json:"breaker_opens"`
	// ShortCircuits counts attempts delayed or refused by an open
	// breaker.
	ShortCircuits int64 `json:"short_circuits"`
	// RetryAfterHonored counts server-mandated waits obeyed (after
	// capping at MaxBackoff).
	RetryAfterHonored int64 `json:"retry_after_honored"`
}

// Metrics snapshots the client's wire counters.
func (c *Client) Metrics() ClientMetrics { return c.m }

// BreakerOpenError is returned when the circuit breaker is open and
// the send's retry budget would expire before the next half-open
// probe.
type BreakerOpenError struct {
	// Until is when the breaker next admits a probe.
	Until time.Time
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("ingest client: circuit breaker open until %s", e.Until.Format(time.RFC3339))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// sleep waits d or until ctx is canceled, whichever comes first — a
// canceled context must abort a backoff wait immediately, not after it
// elapses. The Sleep override (tests) wins over the real timer.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) retryFor() time.Duration {
	if c.RetryFor > 0 {
		return c.RetryFor
	}
	return 30 * time.Second
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return backoffCap
}

func (c *Client) failThreshold() int {
	if c.FailThreshold > 0 {
		return c.FailThreshold
	}
	return 5
}

func (c *Client) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 2 * time.Second
}

// Full-jitter backoff bounds: the retry wait for attempt n (0-based)
// is uniform in (0, min(backoffCap, backoffBase<<n)] — decorrelated
// clients spread their retries instead of stampeding in lockstep. An
// explicit Retry-After from the server overrides the jitter: that is
// the backpressure contract, not a guess.
const (
	backoffBase = 100 * time.Millisecond
	backoffCap  = 5 * time.Second
)

func jitterWait(attempt int) time.Duration {
	cap := backoffCap
	if shifted := backoffBase << uint(min(attempt, 10)); shifted < cap {
		cap = shifted
	}
	return time.Duration(rand.Int63n(int64(cap))) + 1
}

// post sends body once and classifies the outcome: ok, retryable (with
// a server-mandated wait, 0 = client-paced), or terminal (wait < 0).
func (c *Client) post(ctx context.Context, path, contentType string, body []byte) (respBody []byte, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Network errors are retryable: the request may or may not have
		// landed, which is exactly what the seq dedup is for. They also
		// feed the circuit breaker — enough of them in a row and the
		// wire, not the request, is the problem.
		c.noteTransportFailure()
		return nil, 0, err
	}
	// Any HTTP response closes the breaker: the transport works.
	c.consecFails = 0
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if rerr != nil {
		// The response died mid-body — a transport failure, not a
		// server verdict.
		c.noteTransportFailure()
		return nil, 0, rerr
	}
	switch {
	case resp.StatusCode < 300:
		return data, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode >= 500:
		wait := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return nil, wait, fmt.Errorf("ingest client: %s: %s (%s)", path, resp.Status, bytes.TrimSpace(data))
	default:
		return nil, -1, fmt.Errorf("ingest client: %s: %s (%s)", path, resp.Status, bytes.TrimSpace(data))
	}
}

// noteTransportFailure feeds the breaker: FailThreshold consecutive
// transport failures open it for BreakerCooldown. The counter is not
// reset on open, so a failed half-open probe re-opens immediately.
func (c *Client) noteTransportFailure() {
	c.m.TransportFailures++
	c.consecFails++
	if c.consecFails >= c.failThreshold() {
		c.openUntil = time.Now().Add(c.breakerCooldown())
		c.m.BreakerOpens++
	}
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds or an HTTP-date. Unparseable or non-positive values
// mean "no server-mandated wait".
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// postRetry keeps resending until success, a terminal response, context
// cancellation, or the retry budget (RetryFor wall clock and
// MaxAttempts count) runs out. Client-paced waits use full-jitter
// exponential backoff; a server Retry-After is honored up to
// MaxBackoff. An open circuit breaker delays the next attempt until
// its half-open probe window, or fails the send outright if the budget
// cannot reach it.
func (c *Client) postRetry(ctx context.Context, path, contentType string, body []byte) ([]byte, error) {
	deadline := time.Now().Add(c.retryFor())
	c.m.Sends++
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.m.Retries++
		}
		if hold := time.Until(c.openUntil); hold > 0 {
			c.m.ShortCircuits++
			if time.Now().Add(hold).After(deadline) {
				return nil, &BreakerOpenError{Until: c.openUntil}
			}
			if serr := c.sleep(ctx, hold); serr != nil {
				return nil, fmt.Errorf("ingest client: %s: %w (breaker open)", path, serr)
			}
		}
		data, wait, err := c.post(ctx, path, contentType, body)
		if err == nil {
			return data, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("ingest client: %s: %w (last error: %v)", path, cerr, err)
		}
		if wait < 0 || time.Now().After(deadline) {
			return nil, err
		}
		if c.MaxAttempts > 0 && attempt+1 >= c.MaxAttempts {
			return nil, fmt.Errorf("ingest client: %s: attempt budget (%d) exhausted: %w", path, c.MaxAttempts, err)
		}
		if wait > 0 {
			c.m.RetryAfterHonored++
		} else {
			wait = jitterWait(attempt)
		}
		if mb := c.maxBackoff(); wait > mb {
			wait = mb
		}
		if serr := c.sleep(ctx, wait); serr != nil {
			return nil, fmt.Errorf("ingest client: %s: %w (last error: %v)", path, serr, err)
		}
	}
}

// Send posts one batch of records, blocking through backpressure and
// transient failures, and returns the server's acknowledgment. The
// sequence number advances only after the send is resolved, so retries
// stay idempotent.
func (c *Client) Send(ctx context.Context, cb *trace.ColumnBatch) (AppendResult, error) {
	var res AppendResult
	if cb.Len() == 0 {
		return res, nil
	}
	c.seq++
	c.buf = AppendBatchPayload(c.buf[:0], c.Stream, c.seq, cb)
	data, err := c.postRetry(ctx, "/ingest", ContentTypeBinary, c.buf)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("ingest client: decoding ack: %w", err)
	}
	return res, nil
}

// Init establishes the campaign descriptor on the server (idempotent).
func (c *Client) Init(ctx context.Context, meta *simulate.CampaignMeta) error {
	body, err := meta.Encode()
	if err != nil {
		return err
	}
	_, err = c.postRetry(ctx, "/ingest/init", "application/json", body)
	return err
}

// DayDone marks a study day complete, shipping its generation
// ground-truth aggregate.
func (c *Client) DayDone(ctx context.Context, day int, agg simulate.DayAggregate) error {
	body, err := json.Marshal(jsonDayDone{Day: day, Agg: agg})
	if err != nil {
		return err
	}
	_, err = c.postRetry(ctx, "/ingest/day", "application/json", body)
	return err
}

// Flush asks the server to seal completed head days (force drains every
// pending day) and returns the days sealed.
func (c *Client) Flush(ctx context.Context, force bool) ([]int, error) {
	path := "/ingest/flush"
	if force {
		path += "?force=1"
	}
	data, err := c.postRetry(ctx, path, "application/json", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Sealed []int `json:"sealed"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out.Sealed, nil
}

// Stats fetches the server's ingest statistics.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	resp, err := c.httpClient().Get(c.Base + "/ingest/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("ingest client: stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}
