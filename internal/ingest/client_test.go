package ingest

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"telcolens/internal/trace"
)

// A canceled context must abort a retry sleep immediately — even one
// the server stretched with Retry-After — not wait it out.
func TestClientSendCancelAbortsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "hold", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Stream: 1, RetryFor: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cl.Send(ctx, mkBatch(0, 3, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Send after cancel = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel took %s to abort the backoff sleep", d)
	}
}

// The client-paced retry wait is full jitter: bounded by the
// exponential cap for its attempt and never zero.
func TestJitterWaitBounds(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		cap := backoffBase << uint(min(attempt, 10))
		if cap > backoffCap {
			cap = backoffCap
		}
		for i := 0; i < 100; i++ {
			w := jitterWait(attempt)
			if w <= 0 || w > cap {
				t.Fatalf("attempt %d: wait %s outside (0, %s]", attempt, w, cap)
			}
		}
	}
}

// An already-canceled context fails fast without a network round trip
// being retried for the whole budget.
func TestClientPreCanceled(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := &Client{Base: srv.URL, Stream: 2, RetryFor: time.Hour}
	var cb trace.ColumnBatch
	cb.AppendRecord(&trace.Record{Timestamp: trace.DayStart(0).UnixMilli()})
	if _, err := cl.Send(ctx, &cb); !errors.Is(err, context.Canceled) {
		t.Fatalf("Send = %v, want context.Canceled", err)
	}
	if hits > 1 {
		t.Fatalf("pre-canceled send hit the server %d times", hits)
	}
}
