package ingest

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"telcolens/internal/trace"
)

// A canceled context must abort a retry sleep immediately — even one
// the server stretched with Retry-After — not wait it out.
func TestClientSendCancelAbortsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "hold", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cl := &Client{Base: srv.URL, Stream: 1, RetryFor: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cl.Send(ctx, mkBatch(0, 3, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Send after cancel = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel took %s to abort the backoff sleep", d)
	}
}

// The client-paced retry wait is full jitter: bounded by the
// exponential cap for its attempt and never zero.
func TestJitterWaitBounds(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		cap := backoffBase << uint(min(attempt, 10))
		if cap > backoffCap {
			cap = backoffCap
		}
		for i := 0; i < 100; i++ {
			w := jitterWait(attempt)
			if w <= 0 || w > cap {
				t.Fatalf("attempt %d: wait %s outside (0, %s]", attempt, w, cap)
			}
		}
	}
}

// Retry-After in HTTP-date form is honored like delay-seconds, and any
// server-supplied wait is capped at the client's MaxBackoff — a server
// cannot park a client for an hour.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-2", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // past date = no wait
		{"soon", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Fatalf("parseRetryAfter(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// A server-mandated wait — integer or HTTP-date — never exceeds the
// client's MaxBackoff.
func TestClientCapsServerRetryAfter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
			http.Error(w, "hold", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"accepted":3}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	cl := &Client{
		Base: srv.URL, Stream: 1, RetryFor: time.Hour,
		MaxBackoff: 50 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	if _, err := cl.Send(context.Background(), mkBatch(0, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] > 50*time.Millisecond {
		t.Fatalf("waits = %v, want one wait capped at 50ms", slept)
	}
	m := cl.Metrics()
	if m.RetryAfterHonored != 1 || m.Retries != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// MaxAttempts bounds a logical send even when the wall-clock budget
// has room left.
func TestClientAttemptBudget(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	cl := &Client{
		Base: srv.URL, Stream: 1, RetryFor: time.Hour,
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
	}
	_, err := cl.Send(context.Background(), mkBatch(0, 3, 0))
	if err == nil {
		t.Fatal("send succeeded against an always-500 server")
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server hit %d times, want MaxAttempts = 3", n)
	}
}

// The circuit breaker opens after FailThreshold consecutive transport
// failures, short-circuits while open, admits a half-open probe after
// the cooldown, and closes on any HTTP response.
func TestClientCircuitBreaker(t *testing.T) {
	// A server that accepts connections and resets them cold: every
	// request is a transport failure until healthy flips.
	var healthy atomic.Bool
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Write([]byte(`{"accepted":3}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	cl := &Client{
		Base: srv.URL, Stream: 1,
		RetryFor:        200 * time.Millisecond,
		FailThreshold:   2,
		BreakerCooldown: time.Hour,
		Sleep:           func(d time.Duration) { slept = append(slept, d) },
	}
	// Two transport failures trip the breaker; with an hour's cooldown
	// and a 200ms budget the send fails typed, without further probes.
	_, err := cl.Send(context.Background(), mkBatch(0, 3, 0))
	var open *BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("send through dead wire = %v, want BreakerOpenError", err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server hit %d times before the breaker opened, want 2", n)
	}
	m := cl.Metrics()
	if m.TransportFailures != 2 || m.BreakerOpens != 1 || m.ShortCircuits != 1 {
		t.Fatalf("metrics = %+v", m)
	}

	// Cooldown elapsed (simulate by rewinding the clock) and the server
	// recovered: the half-open probe goes through and closes the breaker.
	healthy.Store(true)
	cl.openUntil = time.Now().Add(-time.Millisecond)
	if _, err := cl.Send(context.Background(), mkBatch(0, 3, 1)); err != nil {
		t.Fatalf("half-open probe against recovered server: %v", err)
	}
	if cl.consecFails != 0 {
		t.Fatalf("breaker did not close on success: consecFails = %d", cl.consecFails)
	}
}

// An already-canceled context fails fast without a network round trip
// being retried for the whole budget.
func TestClientPreCanceled(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := &Client{Base: srv.URL, Stream: 2, RetryFor: time.Hour}
	var cb trace.ColumnBatch
	cb.AppendRecord(&trace.Record{Timestamp: trace.DayStart(0).UnixMilli()})
	if _, err := cl.Send(ctx, &cb); !errors.Is(err, context.Canceled) {
		t.Fatalf("Send = %v, want context.Canceled", err)
	}
	if hits > 1 {
		t.Fatalf("pre-canceled send hit the server %d times", hits)
	}
}
