package ingest

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"telcolens/internal/faultfs"
	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// walDirName is the WAL subdirectory inside the campaign directory. One
// log file per pending (unsealed) study day: a record's day is a pure
// function of its timestamp, so routing frames by day gives the log a
// trivial retention rule — sealing a day deletes its log — instead of
// segment compaction bookkeeping.
const walDirName = "wal"

// DefaultMaxPendingRecords bounds the ingest backlog (WAL + memtable
// rows not yet sealed) before the endpoint starts shedding load with
// 429 + Retry-After.
const DefaultMaxPendingRecords = 2 << 20

// Errors the ingest surface maps to HTTP statuses.
var (
	// ErrNotInitialized: the campaign directory has no descriptor yet;
	// POST /ingest/init (or pre-seeding the directory with telcogen)
	// must establish the campaign before records are accepted.
	ErrNotInitialized = errors.New("ingest: campaign not initialized")
	// ErrConfigMismatch: an init request disagrees with the campaign
	// descriptor already on disk.
	ErrConfigMismatch = errors.New("ingest: campaign config mismatch")
)

// BackpressureError rejects a batch that would push the pending backlog
// over budget. Clients should honor Retry-After and resend the same
// (stream, seq) batch.
type BackpressureError struct {
	Pending int64
	Budget  int64
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("ingest: backlog %d records at budget %d, retry later", e.Pending, e.Budget)
}

// DaySealedError rejects records for a study day that has already been
// sealed into partitions (its WAL — and with it the idempotency state —
// is gone, so a late or replayed batch cannot be safely merged).
type DaySealedError struct{ Day int }

func (e *DaySealedError) Error() string {
	return fmt.Sprintf("ingest: day %d already sealed", e.Day)
}

// Options tunes a Service.
type Options struct {
	// MaxPendingRecords bounds the unsealed backlog (0 = default).
	MaxPendingRecords int64
	// SyncEvery fsyncs the day WAL on every batch append, extending the
	// durability contract from process crashes (kill -9) to machine
	// crashes. Day-completion markers are always synced.
	SyncEvery bool
	// SealAge force-seals the oldest pending day once no record has
	// arrived for it for this long, even without a completion marker (its
	// day aggregate is then whatever markers supplied, usually zero).
	// 0 disables age-based sealing; explicit markers/flush always work.
	SealAge time.Duration
	// OnSeal, when set, is called (outside the service lock) after each
	// day seals — telcoserve uses it to nudge its refresh loop instead of
	// waiting for the next manifest poll.
	OnSeal func(day int)
	// Now overrides the clock (tests).
	Now func() time.Time
	// FS routes every filesystem operation the service performs (WAL
	// files, campaign descriptor, and the trace store it opens); nil
	// means the real OS. Chaos tests pass a faultfs.Fault here.
	FS faultfs.FS
}

// AppendResult acknowledges one ingested batch.
type AppendResult struct {
	// Accepted rows were appended to the WAL and memtable.
	Accepted int `json:"accepted"`
	// Duplicate rows were dropped because their (stream, seq) was already
	// acknowledged for their day (a client retry after a lost ack).
	Duplicate int `json:"duplicate"`
	// Pending is the post-append unsealed backlog in records.
	Pending int64 `json:"pending"`
}

// Stats snapshots the ingest side for /healthz, /stats and load tests.
type Stats struct {
	Initialized bool `json:"initialized"`
	// SealedDays is the landed-day prefix (the campaign descriptor's day
	// count); PendingDays lists unsealed days holding WAL/memtable state.
	SealedDays  int   `json:"sealed_days"`
	WindowDays  int   `json:"window_days"`
	Shards      int   `json:"shards"`
	PendingDays []int `json:"pending_days"`
	// MemtableRecords is the unsealed backlog; WALBytes its on-disk
	// write-ahead footprint.
	MemtableRecords   int64 `json:"memtable_records"`
	WALBytes          int64 `json:"wal_bytes"`
	MaxPendingRecords int64 `json:"max_pending_records"`
	// IngestLagSec is the age of the oldest unsealed record's arrival —
	// how far sealing trails the stream.
	IngestLagSec float64 `json:"ingest_lag_sec"`
	// ManifestGen is the trace store's current MANIFEST generation.
	ManifestGen uint64 `json:"manifest_gen"`

	IngestedRecords     int64     `json:"ingested_records"`
	DuplicateBatches    int64     `json:"duplicate_batches"`
	BackpressureRejects int64     `json:"backpressure_rejects"`
	Seals               int64     `json:"seals"`
	LastSealDay         int       `json:"last_seal_day"`
	LastSealRecords     int64     `json:"last_seal_records"`
	LastSealAt          time.Time `json:"last_seal_at"`
}

// dayState is one pending (unsealed) study day: its memtable, its WAL
// file, and the per-stream idempotency watermarks.
type dayState struct {
	day      int
	cols     *trace.ColumnBatch
	lastSeq  map[uint32]uint64
	complete bool
	agg      simulate.DayAggregate

	wal      faultfs.File
	walBytes int64

	firstArrival time.Time
	lastArrival  time.Time
}

// Service is the streaming ingest engine for one campaign directory.
// All methods are safe for concurrent use.
type Service struct {
	dir  string
	opts Options
	fs   faultfs.FS

	mu      sync.Mutex
	meta    *simulate.CampaignMeta // nil until initialized
	store   *trace.FileStore
	days    map[int]*dayState
	pending int64 // unsealed rows across all day memtables

	// scratch reused across appends/seals (guarded by mu).
	walBuf   []byte
	subBatch trace.ColumnBatch
	outBatch trace.ColumnBatch
	perm     []int32

	ingested            int64
	duplicateBatches    int64
	backpressureRejects int64
	seals               int64
	lastSealDay         int
	lastSealRecords     int64
	lastSealAt          time.Time
}

// Open attaches an ingest service to a campaign directory. A directory
// with a campaign descriptor recovers immediately: every pending day's
// WAL is replayed (torn tails truncated), partition debris from a
// crashed seal is removed, and recovered days that were already marked
// complete are re-sealed — idempotently, because the canonical seal sort
// makes sealed bytes a function of the record multiset. A directory
// without a descriptor starts uninitialized and accepts Init.
func Open(dir string, opts Options) (*Service, error) {
	if opts.MaxPendingRecords <= 0 {
		opts.MaxPendingRecords = DefaultMaxPendingRecords
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	fsys := faultfs.Resolve(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating campaign dir: %w", err)
	}
	s := &Service{dir: dir, opts: opts, fs: fsys, days: make(map[int]*dayState), lastSealDay: -1}
	meta, err := simulate.LoadMetaFS(fsys, dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return s, nil
		}
		return nil, err
	}
	s.mu.Lock()
	sealed, err := s.attachLocked(meta, false)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.notifySealed(sealed)
	return s, nil
}

// Initialized reports whether the campaign descriptor exists.
func (s *Service) Initialized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta != nil
}

// Meta returns a copy of the campaign descriptor (nil when
// uninitialized).
func (s *Service) Meta() *simulate.CampaignMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta == nil {
		return nil
	}
	cp := *s.meta
	cp.DayStats = append([]simulate.DayAggregate(nil), s.meta.DayStats...)
	return &cp
}

// Init establishes the campaign: the descriptor is validated, written
// atomically as manifest.json, and the store is opened with the
// descriptor's codec options. Initializing an already-initialized
// service is idempotent when the configs agree and ErrConfigMismatch
// when they do not. The descriptor's landed-day count must equal its
// DayStats length (a fresh stream target starts at 0 days with the full
// study window declared in WindowDays).
func (s *Service) Init(meta *simulate.CampaignMeta) error {
	s.mu.Lock()
	if s.meta != nil {
		defer s.mu.Unlock()
		if !configsAgree(s.meta, meta) {
			return fmt.Errorf("%w: directory %s already describes seed=%d days=%d ues=%d shards=%d",
				ErrConfigMismatch, s.dir, s.meta.Config.Seed, s.meta.Config.Days, s.meta.Config.UEs, s.meta.Config.Shards)
		}
		return nil
	}
	cp := *meta
	cp.Config.Store = nil
	cp.Config.Workers = 0
	cp.DayStats = append([]simulate.DayAggregate(nil), meta.DayStats...)
	sealed, err := s.attachLocked(&cp, true)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.notifySealed(sealed)
	return nil
}

// configsAgree compares the identity-bearing parts of two descriptors.
// Landed-day counts are deliberately excluded: an init retried against a
// directory that has sealed days in the meantime still agrees.
func configsAgree(a, b *simulate.CampaignMeta) bool {
	ac, bc := a.Config, b.Config
	return ac.Seed == bc.Seed && ac.UEs == bc.UEs && ac.Districts == bc.Districts &&
		ac.SitesTarget == bc.SitesTarget && ac.RareBoost == bc.RareBoost &&
		ac.LongTailCauses == bc.LongTailCauses && ac.FullScaleUEs == bc.FullScaleUEs &&
		max(ac.Shards, 1) == max(bc.Shards, 1) &&
		windowOf(ac) == windowOf(bc) &&
		a.Codec == b.Codec && a.Compress == b.Compress && a.FastCompress == b.FastCompress
}

// windowOf is the effective world-model window of a config: the declared
// growth target when present, otherwise the landed-day count.
func windowOf(c simulate.Config) int {
	if c.WindowDays > c.Days {
		return c.WindowDays
	}
	return c.Days
}

// attachLocked wires meta + store and recovers pending WAL state,
// returning the days sealed during recovery.
func (s *Service) attachLocked(meta *simulate.CampaignMeta, create bool) ([]int, error) {
	cfg := &meta.Config
	if cfg.Days != len(meta.DayStats) {
		return nil, fmt.Errorf("ingest: descriptor day count %d does not match %d day aggregates", cfg.Days, len(meta.DayStats))
	}
	if cfg.Shards > 256 {
		return nil, fmt.Errorf("ingest: %d shards exceeds the 256-shard cap", cfg.Shards)
	}
	store, err := trace.NewFileStoreOpts(s.dir, trace.FileStoreOptions{
		Codec: meta.Codec, Compress: meta.Compress, FastCompress: meta.FastCompress, FS: s.fs,
	})
	if err != nil {
		return nil, err
	}
	if create {
		if err := meta.SaveFS(s.fs, s.dir); err != nil {
			return nil, err
		}
	}
	s.meta = meta
	s.store = store
	return s.recoverLocked()
}

// recoverLocked rebuilds pending-day state from the WAL directory and
// finishes any interrupted seal.
func (s *Service) recoverLocked() ([]int, error) {
	walDir := filepath.Join(s.dir, walDirName)
	if err := s.fs.MkdirAll(walDir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating WAL dir: %w", err)
	}
	entries, err := s.fs.ReadDir(walDir)
	if err != nil {
		return nil, fmt.Errorf("ingest: listing WAL dir: %w", err)
	}
	for _, e := range entries {
		day, ok := parseWALName(e.Name())
		if !ok {
			continue
		}
		path := filepath.Join(walDir, e.Name())
		if day < s.meta.Config.Days {
			// The day sealed (descriptor updated) but the crash hit before
			// the WAL was deleted: finish the deletion.
			if err := s.fs.Remove(path); err != nil {
				return nil, fmt.Errorf("ingest: removing sealed-day WAL: %w", err)
			}
			continue
		}
		ds := s.dayStateLocked(day)
		validSize, err := replayWAL(s.fs, path, func(typ byte, payload []byte) error {
			switch typ {
			case frameBatch:
				before := ds.cols.Len()
				stream, seq, _, err := DecodeBatchPayload(payload, ds.cols)
				if err != nil {
					return err
				}
				if seq > ds.lastSeq[stream] {
					ds.lastSeq[stream] = seq
				}
				s.pending += int64(ds.cols.Len() - before)
			case frameDayDone:
				var agg simulate.DayAggregate
				if len(payload) < 4 {
					return fmt.Errorf("ingest: short day-done frame")
				}
				if err := json.Unmarshal(payload[4:], &agg); err != nil {
					return fmt.Errorf("ingest: decoding day-done frame: %w", err)
				}
				ds.complete = true
				ds.agg = agg
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		f, size, err := openWALForAppend(s.fs, path, validSize)
		if err != nil {
			return nil, err
		}
		ds.wal = f
		ds.walBytes = size
		now := s.opts.Now()
		ds.firstArrival, ds.lastArrival = now, now
	}
	// Partition debris beyond the sealed prefix is the leavings of a
	// crashed seal; remove it so the re-seal starts clean.
	if err := s.removeDebrisLocked(-1); err != nil {
		return nil, err
	}
	return s.drainSealsLocked()
}

// removeDebrisLocked deletes partitions that are not covered by the
// sealed prefix: every partition of day (or, when day < 0, of any day >=
// the sealed prefix).
func (s *Service) removeDebrisLocked(day int) error {
	parts, err := s.store.Partitions()
	if err != nil {
		return err
	}
	for _, p := range parts {
		if (day >= 0 && p.Day != day) || (day < 0 && p.Day < s.meta.Config.Days) {
			continue
		}
		if err := s.store.RemovePartition(p.Day, p.Shard); err != nil {
			return fmt.Errorf("ingest: removing partition debris day %d shard %d: %w", p.Day, p.Shard, err)
		}
	}
	return nil
}

// dayStateLocked returns (creating if needed) the pending state of day.
func (s *Service) dayStateLocked(day int) *dayState {
	ds := s.days[day]
	if ds == nil {
		ds = &dayState{day: day, cols: new(trace.ColumnBatch), lastSeq: make(map[uint32]uint64)}
		s.days[day] = ds
	}
	return ds
}

// walPath returns the day WAL location.
func (s *Service) walPath(day int) string {
	return filepath.Join(s.dir, walDirName, fmt.Sprintf("day_%03d.wal", day))
}

// parseWALName recovers the study day from a "day_NNN.wal" filename.
func parseWALName(name string) (int, bool) {
	if !strings.HasPrefix(name, "day_") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	mid := name[len("day_") : len(name)-len(".wal")]
	if len(mid) != 3 {
		return 0, false
	}
	day, err := strconv.Atoi(mid)
	if err != nil || day < 0 {
		return 0, false
	}
	return day, true
}

// ensureWALLocked opens the day's WAL lazily.
func (s *Service) ensureWALLocked(ds *dayState) error {
	if ds.wal != nil {
		return nil
	}
	f, size, err := openWALForAppend(s.fs, s.walPath(ds.day), 0)
	if err != nil {
		return err
	}
	ds.wal = f
	ds.walBytes = size
	if s.opts.SyncEvery {
		// The durability contract extends to machine crashes: the new log
		// file's directory entry must be durable before its frames are
		// acknowledged.
		if err := f.Sync(); err != nil {
			return fmt.Errorf("ingest: syncing new WAL: %w", err)
		}
		if err := s.fs.SyncDir(filepath.Join(s.dir, walDirName)); err != nil {
			return fmt.Errorf("ingest: syncing WAL dir: %w", err)
		}
	}
	return nil
}

// appendFrameLocked lands one frame in the day WAL, keeping the log
// self-consistent on partial writes: a failed append truncates back to
// the last intact frame boundary, so a later retry does not append valid
// frames behind a torn one (replay stops at the first tear).
func (s *Service) appendFrameLocked(ds *dayState, typ byte, payload []byte, sync bool) error {
	if err := s.ensureWALLocked(ds); err != nil {
		return err
	}
	n, err := appendFrame(ds.wal, typ, payload)
	if err != nil {
		if terr := ds.wal.Truncate(ds.walBytes); terr == nil {
			_, _ = ds.wal.Seek(ds.walBytes, 0)
		}
		return fmt.Errorf("ingest: appending WAL frame: %w", err)
	}
	ds.walBytes += int64(n)
	if sync || s.opts.SyncEvery {
		if err := ds.wal.Sync(); err != nil {
			return fmt.Errorf("ingest: syncing WAL: %w", err)
		}
	}
	return nil
}

// Append ingests one batch of records. The batch is split by study day,
// deduplicated per (day, stream) against the seq watermark — a retried
// batch whose ack was lost lands exactly once — written to each day's
// WAL, and appended to the day memtables. The acknowledgment (a nil
// error) promises the records are durable to a process crash and will be
// sealed. Batches for already-sealed days are refused (DaySealedError),
// and batches that would push the backlog over budget are shed
// (BackpressureError).
func (s *Service) Append(stream uint32, seq uint64, cb *trace.ColumnBatch) (AppendResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res AppendResult
	if s.meta == nil {
		return res, ErrNotInitialized
	}
	n := cb.Len()
	res.Pending = s.pending
	if n == 0 {
		return res, nil
	}
	// Validate every row's day up front so a rejected batch leaves no
	// partial state behind.
	sealedBefore := s.meta.Config.Days
	for _, ts := range cb.Timestamps {
		day := trace.DayOf(ts)
		if day < 0 || day > 999 {
			return res, fmt.Errorf("ingest: record timestamp %d maps to study day %d outside [0, 999]", ts, day)
		}
		if day < sealedBefore {
			return res, &DaySealedError{Day: day}
		}
	}
	if s.pending+int64(n) > s.opts.MaxPendingRecords {
		s.backpressureRejects++
		return res, &BackpressureError{Pending: s.pending, Budget: s.opts.MaxPendingRecords}
	}

	// Group rows by day, preserving arrival order inside each day.
	byDay := map[int][]int32{}
	var dayOrder []int
	for i, ts := range cb.Timestamps {
		day := trace.DayOf(ts)
		if _, ok := byDay[day]; !ok {
			dayOrder = append(dayOrder, day)
		}
		byDay[day] = append(byDay[day], int32(i))
	}
	sort.Ints(dayOrder)
	now := s.opts.Now()
	for _, day := range dayOrder {
		idx := byDay[day]
		ds := s.dayStateLocked(day)
		if seq != 0 && seq <= ds.lastSeq[stream] {
			res.Duplicate += len(idx)
			s.duplicateBatches++
			continue
		}
		sub := &s.subBatch
		sub.Reset()
		sub.AppendGather(cb, idx)
		s.walBuf = AppendBatchPayload(s.walBuf[:0], stream, seq, sub)
		if err := s.appendFrameLocked(ds, frameBatch, s.walBuf, false); err != nil {
			return res, err
		}
		ds.cols.AppendColumns(sub)
		ds.lastSeq[stream] = seq
		if ds.firstArrival.IsZero() {
			ds.firstArrival = now
		}
		ds.lastArrival = now
		s.pending += int64(len(idx))
		s.ingested += int64(len(idx))
		res.Accepted += len(idx)
	}
	res.Pending = s.pending
	return res, nil
}

// DayComplete marks a study day finished, records its generation
// ground-truth aggregate (persisted through the WAL so a crash between
// marker and seal cannot lose it), and seals every completed day at the
// head of the pending sequence. Days seal strictly in order — a
// completion marker for day 5 while day 4 is still open just waits.
// Completing an already-sealed day is an idempotent no-op (a client
// retry after a lost ack).
func (s *Service) DayComplete(day int, agg simulate.DayAggregate) error {
	s.mu.Lock()
	sealed, err := s.dayCompleteLocked(day, agg)
	s.mu.Unlock()
	s.notifySealed(sealed)
	return err
}

func (s *Service) dayCompleteLocked(day int, agg simulate.DayAggregate) ([]int, error) {
	if s.meta == nil {
		return nil, ErrNotInitialized
	}
	if day < 0 || day > 999 {
		return nil, fmt.Errorf("ingest: day %d outside [0, 999]", day)
	}
	if day < s.meta.Config.Days {
		return nil, nil
	}
	ds := s.dayStateLocked(day)
	payload := make([]byte, 4, 256)
	binary.LittleEndian.PutUint32(payload, uint32(day))
	aggJSON, err := json.Marshal(agg)
	if err != nil {
		return nil, fmt.Errorf("ingest: encoding day aggregate: %w", err)
	}
	payload = append(payload, aggJSON...)
	if err := s.appendFrameLocked(ds, frameDayDone, payload, true); err != nil {
		return nil, err
	}
	ds.complete = true
	ds.agg = agg
	if ds.firstArrival.IsZero() {
		now := s.opts.Now()
		ds.firstArrival, ds.lastArrival = now, now
	}
	return s.drainSealsLocked()
}

// Flush seals completed days waiting at the head of the pending
// sequence. With force, the lowest pending day is sealed even without a
// completion marker (its aggregate is whatever a marker supplied, or
// zero) — an operator action for draining a stalled stream; late records
// for a force-sealed day are refused like any sealed day's.
func (s *Service) Flush(force bool) ([]int, error) {
	s.mu.Lock()
	sealed, err := s.flushLocked(force)
	s.mu.Unlock()
	s.notifySealed(sealed)
	return sealed, err
}

func (s *Service) flushLocked(force bool) ([]int, error) {
	if s.meta == nil {
		return nil, ErrNotInitialized
	}
	sealed, err := s.drainSealsLocked()
	if err != nil || !force {
		return sealed, err
	}
	// Force: complete everything up to the highest pending day as-is
	// (gap days with no records seal as empty), then drain again.
	high := -1
	for day := range s.days {
		if day > high {
			high = day
		}
	}
	if high < 0 {
		return sealed, nil
	}
	for day := s.meta.Config.Days; day <= high; day++ {
		s.dayStateLocked(day).complete = true
	}
	more, err := s.drainSealsLocked()
	return append(sealed, more...), err
}

// drainSealsLocked seals days from the head of the pending sequence
// while the next expected day is complete.
func (s *Service) drainSealsLocked() ([]int, error) {
	var sealed []int
	for {
		next := s.meta.Config.Days
		ds, ok := s.days[next]
		if !ok || !ds.complete {
			return sealed, nil
		}
		if err := s.sealLocked(ds); err != nil {
			return sealed, err
		}
		sealed = append(sealed, next)
	}
}

// maybeSealByAge force-seals the oldest pending day when it has gone
// quiet for longer than the configured seal age. Called from the stats
// path (cheap, already periodic); returns the days sealed.
func (s *Service) maybeSealByAge() []int {
	if s.opts.SealAge <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta == nil {
		return nil
	}
	ds, ok := s.days[s.meta.Config.Days]
	if !ok || ds.complete || ds.lastArrival.IsZero() {
		return nil
	}
	if s.opts.Now().Sub(ds.lastArrival) < s.opts.SealAge {
		return nil
	}
	ds.complete = true
	sealed, err := s.drainSealsLocked()
	if err != nil {
		return sealed
	}
	return sealed
}

// sealLocked turns one completed day's memtable into ordinary (day,
// shard) v2 partitions and commits: partitions first, then the campaign
// descriptor (day count + aggregate), then the WAL deletion. A crash
// anywhere in that sequence recovers idempotently — debris partitions
// are removed and the canonical-order re-seal lands byte-identical
// streams, and a WAL that outlived the descriptor update is simply
// deleted.
func (s *Service) sealLocked(ds *dayState) error {
	if err := s.removeDebrisLocked(ds.day); err != nil {
		return err
	}
	s.perm = ds.cols.SortPermCanonical(s.perm)
	shards := max(s.meta.Config.Shards, 1)
	if shards == 1 {
		if err := s.writePartitionLocked(ds.day, 0, ds.cols, s.perm); err != nil {
			return err
		}
	} else {
		buckets := make([][]int32, shards)
		for _, p := range s.perm {
			sh := trace.ShardOf(ds.cols.UEs[p], shards)
			buckets[sh] = append(buckets[sh], p)
		}
		for sh := 0; sh < shards; sh++ {
			if err := s.writePartitionLocked(ds.day, sh, ds.cols, buckets[sh]); err != nil {
				return err
			}
		}
	}
	s.meta.Config.Days = ds.day + 1
	s.meta.DayStats = append(s.meta.DayStats, ds.agg)
	if err := s.meta.SaveFS(s.fs, s.dir); err != nil {
		// The descriptor is the commit point: without it the seal did not
		// happen. Roll the in-memory copy back so a retry re-runs cleanly.
		s.meta.Config.Days = ds.day
		s.meta.DayStats = s.meta.DayStats[:len(s.meta.DayStats)-1]
		return err
	}
	records := int64(ds.cols.Len())
	if ds.wal != nil {
		ds.wal.Close()
	}
	if err := s.fs.Remove(s.walPath(ds.day)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return fmt.Errorf("ingest: removing sealed WAL: %w", err)
	}
	s.pending -= records
	delete(s.days, ds.day)
	s.seals++
	s.lastSealDay = ds.day
	s.lastSealRecords = records
	s.lastSealAt = s.opts.Now()
	return nil
}

// writePartitionLocked gathers the rows selected by perm (in perm order)
// and lands them as one partition through the column write path. Because
// this is the ordinary FileStore writer, sealed partitions get the same
// .tlix query-index sidecar (and manifest index version) batch-generated
// ones do — streamed days are immediately index-prunable by /query.
func (s *Service) writePartitionLocked(day, shard int, src *trace.ColumnBatch, perm []int32) error {
	out := &s.outBatch
	out.Reset()
	out.AppendGather(src, perm)
	w, err := s.store.AppendPartition(day, shard)
	if err != nil {
		return err
	}
	if cw, ok := w.(trace.ColumnWriter); ok {
		if err := cw.WriteColumns(out); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	}
	var rec trace.Record
	for i := 0; i < out.Len(); i++ {
		out.Record(i, &rec)
		if err := w.Write(&rec); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// notifySealed runs the OnSeal hook outside the lock.
func (s *Service) notifySealed(days []int) {
	if s.opts.OnSeal == nil {
		return
	}
	for _, d := range days {
		s.opts.OnSeal(d)
	}
}

// Stats snapshots the service. When age-based sealing is configured the
// stats path doubles as its ticker.
func (s *Service) Stats() Stats {
	s.notifySealed(s.maybeSealByAge())
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Initialized:         s.meta != nil,
		MaxPendingRecords:   s.opts.MaxPendingRecords,
		MemtableRecords:     s.pending,
		IngestedRecords:     s.ingested,
		DuplicateBatches:    s.duplicateBatches,
		BackpressureRejects: s.backpressureRejects,
		Seals:               s.seals,
		LastSealDay:         s.lastSealDay,
		LastSealRecords:     s.lastSealRecords,
		LastSealAt:          s.lastSealAt,
	}
	if s.meta == nil {
		return st
	}
	st.SealedDays = s.meta.Config.Days
	st.WindowDays = s.meta.Config.Days
	if s.meta.Config.WindowDays > st.WindowDays {
		st.WindowDays = s.meta.Config.WindowDays
	}
	st.Shards = max(s.meta.Config.Shards, 1)
	var oldest time.Time
	for day, ds := range s.days {
		st.PendingDays = append(st.PendingDays, day)
		st.WALBytes += ds.walBytes
		if !ds.firstArrival.IsZero() && (oldest.IsZero() || ds.firstArrival.Before(oldest)) {
			oldest = ds.firstArrival
		}
	}
	sort.Ints(st.PendingDays)
	if !oldest.IsZero() {
		st.IngestLagSec = s.opts.Now().Sub(oldest).Seconds()
	}
	if m, err := s.store.Manifest(); err == nil && m != nil {
		st.ManifestGen = m.Gen
	}
	return st
}

// Close releases the open WAL files. Pending state stays on disk and is
// recovered by the next Open.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, ds := range s.days {
		if ds.wal != nil {
			if err := ds.wal.Close(); err != nil && first == nil {
				first = err
			}
			ds.wal = nil
		}
	}
	return first
}
