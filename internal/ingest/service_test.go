package ingest

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/faultfs"
	"telcolens/internal/simulate"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// testMeta is a minimal streaming campaign descriptor: no landed days,
// a declared growth window, and a world config the ingest path never
// has to instantiate.
func testMeta(windowDays int) *simulate.CampaignMeta {
	return &simulate.CampaignMeta{
		Config: simulate.Config{
			Seed:       7,
			Days:       0,
			WindowDays: windowDays,
			UEs:        10,
		},
		Codec: trace.CodecV2,
	}
}

// mkBatch builds n deterministic records inside the given study day,
// varied by salt so distinct batches hold distinct rows.
func mkBatch(day, n, salt int) *trace.ColumnBatch {
	cb := new(trace.ColumnBatch)
	base := trace.DayStart(day).UnixMilli()
	var rec trace.Record
	for i := 0; i < n; i++ {
		k := i + salt*1000
		rec.Timestamp = base + int64(k%86_400_000)
		rec.UE = trace.UEID(k % 7)
		rec.TAC = devices.TAC(350000 + k%5)
		rec.Source = topology.SectorID(100 + k%13)
		rec.Target = topology.SectorID(200 + k%11)
		rec.Cause = causes.Code(k % 30)
		rec.SourceRAT = 1
		rec.TargetRAT = 2
		rec.Result = trace.Result(k % 2)
		rec.DurationMs = float32(k%500) / 10
		cb.AppendRecord(&rec)
	}
	return cb
}

func mustOpen(t *testing.T, dir string, opts Options) *Service {
	t.Helper()
	svc, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestAppendRequiresInit(t *testing.T) {
	svc := mustOpen(t, t.TempDir(), Options{})
	if _, err := svc.Append(1, 1, mkBatch(0, 5, 0)); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("append before init: %v", err)
	}
	if err := svc.Init(testMeta(2)); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Append(1, 1, mkBatch(0, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 5 || res.Pending != 5 {
		t.Fatalf("ack = %+v, want 5 accepted/pending", res)
	}
}

func TestInitIdempotentAndMismatch(t *testing.T) {
	svc := mustOpen(t, t.TempDir(), Options{})
	if err := svc.Init(testMeta(2)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Init(testMeta(2)); err != nil {
		t.Fatalf("idempotent re-init: %v", err)
	}
	other := testMeta(2)
	other.Config.Seed = 8
	if err := svc.Init(other); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("mismatched re-init: %v", err)
	}
}

func TestDuplicateBatchDroppedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, Options{})
	if err := svc.Init(testMeta(2)); err != nil {
		t.Fatal(err)
	}
	batch := mkBatch(0, 8, 3)
	if _, err := svc.Append(2, 5, batch); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Append(2, 5, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Duplicate != 8 {
		t.Fatalf("same-process retry ack = %+v, want 8 duplicates", res)
	}
	svc.Close()

	svc2 := mustOpen(t, dir, Options{})
	if st := svc2.Stats(); st.MemtableRecords != 8 {
		t.Fatalf("recovered %d records, want 8", st.MemtableRecords)
	}
	res, err = svc2.Append(2, 5, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Duplicate != 8 {
		t.Fatalf("post-restart retry ack = %+v, want 8 duplicates", res)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, Options{})
	if err := svc.Init(testMeta(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 1, mkBatch(0, 20, 0)); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// A crash mid-append leaves a partial frame at the tail.
	walPath := filepath.Join(dir, walDirName, "day_000.wal")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{frameBatch, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2 := mustOpen(t, dir, Options{})
	if st := svc2.Stats(); st.MemtableRecords != 20 {
		t.Fatalf("recovered %d records, want the 20 acknowledged", st.MemtableRecords)
	}
	// The truncated log must accept further appends and seal cleanly.
	if _, err := svc2.Append(1, 2, mkBatch(0, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := svc2.DayComplete(0, simulate.DayAggregate{}); err != nil {
		t.Fatal(err)
	}
	st := svc2.Stats()
	if st.SealedDays != 1 || st.MemtableRecords != 0 {
		t.Fatalf("post-seal stats = %+v", st)
	}
	n, err := trace.Count(mustStore(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("sealed %d records, want 30", n)
	}
}

func mustStore(t *testing.T, dir string) *trace.FileStore {
	t.Helper()
	fs, err := trace.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestBackpressure(t *testing.T) {
	svc := mustOpen(t, t.TempDir(), Options{MaxPendingRecords: 10})
	if err := svc.Init(testMeta(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 1, mkBatch(0, 8, 0)); err != nil {
		t.Fatal(err)
	}
	var bp *BackpressureError
	if _, err := svc.Append(1, 2, mkBatch(0, 5, 1)); !errors.As(err, &bp) {
		t.Fatalf("over-budget append: %v", err)
	}
	if st := svc.Stats(); st.BackpressureRejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.BackpressureRejects)
	}
	// Sealing drains the backlog and reopens the window.
	if err := svc.DayComplete(0, simulate.DayAggregate{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 3, mkBatch(1, 5, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestSealedDayRefusedAndCompleteIdempotent(t *testing.T) {
	svc := mustOpen(t, t.TempDir(), Options{})
	if err := svc.Init(testMeta(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 1, mkBatch(0, 5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := svc.DayComplete(0, simulate.DayAggregate{}); err != nil {
		t.Fatal(err)
	}
	var sealed *DaySealedError
	if _, err := svc.Append(1, 2, mkBatch(0, 5, 1)); !errors.As(err, &sealed) {
		t.Fatalf("append to sealed day: %v", err)
	}
	if err := svc.DayComplete(0, simulate.DayAggregate{}); err != nil {
		t.Fatalf("re-complete sealed day: %v", err)
	}
}

func TestOutOfOrderDaysSealInOrder(t *testing.T) {
	svc := mustOpen(t, t.TempDir(), Options{})
	if err := svc.Init(testMeta(3)); err != nil {
		t.Fatal(err)
	}
	// One batch spanning two days plus an early day-2 batch.
	mixed := mkBatch(0, 5, 0)
	mixed.AppendColumns(mkBatch(1, 5, 0))
	if _, err := svc.Append(1, 1, mixed); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 2, mkBatch(2, 5, 0)); err != nil {
		t.Fatal(err)
	}
	// Completing day 1 first must not seal anything: day 0 is still open.
	if err := svc.DayComplete(1, simulate.DayAggregate{}); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.SealedDays != 0 {
		t.Fatalf("sealed %d days before head completion", st.SealedDays)
	}
	// Completing day 0 seals days 0 and 1 together.
	if err := svc.DayComplete(0, simulate.DayAggregate{}); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.SealedDays != 2 {
		t.Fatalf("sealed %d days, want 2", st.SealedDays)
	}
	if len(st.PendingDays) != 1 || st.PendingDays[0] != 2 {
		t.Fatalf("pending days = %v, want [2]", st.PendingDays)
	}
	// Force-flush drains the tail.
	sealedDays, err := svc.Flush(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealedDays) != 1 || sealedDays[0] != 2 {
		t.Fatalf("force flush sealed %v, want [2]", sealedDays)
	}
}

func TestCrashMidSealRecoversToSameBytes(t *testing.T) {
	// Reference: the same stream sealed without interruption.
	want := t.TempDir()
	svc := mustOpen(t, want, Options{})
	if err := svc.Init(testMeta(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 1, mkBatch(0, 40, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Append(1, 2, mkBatch(0, 40, 1)); err != nil {
		t.Fatal(err)
	}
	agg := simulate.DayAggregate{Handovers: 80, Failures: 3}
	if err := svc.DayComplete(0, agg); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Crash scenario: same acknowledged stream (different batch split),
	// day-done marker durable, then a seal that died after writing a
	// partition but before committing the descriptor.
	got := t.TempDir()
	svc2 := mustOpen(t, got, Options{})
	if err := svc2.Init(testMeta(1)); err != nil {
		t.Fatal(err)
	}
	full := mkBatch(0, 40, 0)
	full.AppendColumns(mkBatch(0, 40, 1))
	if _, err := svc2.Append(3, 9, full); err != nil {
		t.Fatal(err)
	}
	svc2.Close()

	// Hand-write the day-done frame (the marker landed, the seal did not).
	walPath := filepath.Join(got, walDirName, "day_000.wal")
	f, _, err := openWALForAppend(faultfs.OS{}, walPath, fileSize(t, walPath))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, 0)
	aggJSON, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := appendFrame(f, frameDayDone, append(payload, aggJSON...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Partition debris from the died seal: wrong subset, wrong order.
	fs := mustStore(t, got)
	w, err := fs.AppendPartition(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	debris := mkBatch(0, 7, 2)
	var rec trace.Record
	for i := 0; i < debris.Len(); i++ {
		debris.Record(i, &rec)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must discard the debris and re-seal deterministically.
	svc3 := mustOpen(t, got, Options{})
	if st := svc3.Stats(); st.SealedDays != 1 || st.MemtableRecords != 0 {
		t.Fatalf("post-recovery stats = %+v, want day sealed", st)
	}
	compareCampaignDirs(t, want, got)
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// compareCampaignDirs asserts two campaign directories carry the same
// partitions and descriptor, byte for byte. The store MANIFEST is
// excluded: its generation counter reflects write history, not content
// (the recorded partition digests are covered by the partition bytes).
func compareCampaignDirs(t *testing.T, want, got string) {
	t.Helper()
	read := func(dir string) map[string][]byte {
		out := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if name != "manifest.json" && !strings.HasSuffix(name, ".tlho") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			out[name] = data
		}
		return out
	}
	wantFiles, gotFiles := read(want), read(got)
	for name, wantData := range wantFiles {
		gotData, ok := gotFiles[name]
		if !ok {
			t.Errorf("missing file %s", name)
			continue
		}
		if string(wantData) != string(gotData) {
			t.Errorf("%s differs: %d vs %d bytes", name, len(wantData), len(gotData))
		}
	}
	for name := range gotFiles {
		if _, ok := wantFiles[name]; !ok {
			t.Errorf("unexpected file %s", name)
		}
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, Options{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := &Client{Base: srv.URL, Stream: 4, Sleep: func(time.Duration) {}}

	// Uninitialized service: 503 until the descriptor arrives.
	cl.RetryFor = 1 // nanosecond budget: fail fast
	if _, err := cl.Send(context.Background(), mkBatch(0, 3, 0)); err == nil {
		t.Fatal("send before init succeeded")
	}
	cl.RetryFor = 0
	if err := cl.Init(context.Background(), testMeta(1)); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Send(context.Background(), mkBatch(0, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 6 {
		t.Fatalf("binary ack = %+v", res)
	}

	// JSON alternative path.
	var recs []trace.Record
	jb := mkBatch(0, 4, 1)
	for i := 0; i < jb.Len(); i++ {
		var rec trace.Record
		jb.Record(i, &rec)
		recs = append(recs, rec)
	}
	body, err := json.Marshal(jsonBatch{Stream: 5, Seq: 1, Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON append status %s", resp.Status)
	}

	if err := cl.DayDone(context.Background(), 0, simulate.DayAggregate{Handovers: 10}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SealedDays != 1 || st.IngestedRecords != 10 {
		t.Fatalf("stats = %+v", st)
	}
	sealed, err := cl.Flush(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 0 {
		t.Fatalf("flush sealed %v, want nothing left", sealed)
	}
	n, err := trace.Count(mustStore(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("stored %d records, want 10", n)
	}
}
