// Package ingest is the live streaming front end of telcolens: an HTTP
// endpoint (see Service.Handler) that accepts batched handover records,
// makes them durable in a per-day write-ahead log, accumulates them in
// in-memory columnar memtables, and seals completed study days into
// ordinary v2 (day, shard) trace partitions through the batch-native
// column write path — bumping the store MANIFEST generation so an
// incremental consumer (telcoserve's Refresh loop) merges the delta
// without any change to the analysis layer.
//
// The crash-recovery invariant: a record is acknowledged only after its
// WAL frame is written, sealing is idempotent (partition debris from a
// crashed seal is removed and the day re-sealed from the WAL), and the
// seal sort is the canonical day-stream order (trace.CanonicalLess) —
// a total order over record content — so the sealed bytes are a function
// of the acknowledged record multiset alone. Kill the daemon at any
// point, restart, finish the replay: the partitions (and therefore every
// analysis artifact) are byte-identical to the same campaign generated
// through the batch simulate path.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"math"
	"os"

	"telcolens/internal/causes"
	"telcolens/internal/devices"
	"telcolens/internal/faultfs"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// WAL file layout: an 8-byte magic header followed by a sequence of
// frames. Each frame is
//
//	type   uint8
//	length uint32  (payload bytes, little-endian)
//	crc    uint32  (CRC-32/IEEE of the payload)
//	payload
//
// The log is append-only and self-delimiting: replay walks frames until
// EOF or the first frame that is short, oversized, of unknown type, or
// fails its CRC — everything from there on is a torn tail (the partial
// write of a crashed append) and is truncated away. A record batch is
// acknowledged to the client only after its frame hit the log, so
// truncation only ever discards unacknowledged data.
var walMagic = [8]byte{'T', 'L', 'W', 'A', 'L', '0', '0', '1'}

const (
	// frameBatch carries one batch of records for the file's day:
	// stream uint32 | seq uint64 | count uint32 | count * record.
	frameBatch = byte(1)
	// frameDayDone marks the day complete and carries its generation
	// ground truth: day uint32 | JSON DayAggregate.
	frameDayDone = byte(2)

	frameHeaderLen = 1 + 4 + 4

	// walRecordLen is the fixed on-log record image:
	// ts i64 | ue u32 | tac u32 | source u32 | target u32 |
	// cause u16 | packed RATs u8 | result u8 | duration f32 bits.
	walRecordLen = 32

	// batchHeaderLen prefixes every batch payload: stream | seq | count.
	batchHeaderLen = 4 + 8 + 4

	// maxFramePayload bounds a single frame (sanity check on replay; a
	// length field beyond it is treated as a torn tail, not an
	// allocation request).
	maxFramePayload = 64 << 20
)

// appendRecord appends row i of cb as a fixed-width wire image.
func appendRecord(dst []byte, cb *trace.ColumnBatch, i int) []byte {
	var buf [walRecordLen]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(cb.Timestamps[i]))
	binary.LittleEndian.PutUint32(buf[8:], uint32(cb.UEs[i]))
	binary.LittleEndian.PutUint32(buf[12:], uint32(cb.TACs[i]))
	binary.LittleEndian.PutUint32(buf[16:], uint32(cb.Sources[i]))
	binary.LittleEndian.PutUint32(buf[20:], uint32(cb.Targets[i]))
	binary.LittleEndian.PutUint16(buf[24:], uint16(cb.Causes[i]))
	buf[26] = cb.RATs[i]
	buf[27] = byte(cb.Results[i])
	binary.LittleEndian.PutUint32(buf[28:], math.Float32bits(cb.Durations[i]))
	return append(dst, buf[:]...)
}

// AppendBatchPayload appends the wire form of a record batch — the body
// of a binary POST /ingest request and of a WAL batch frame — to dst:
// the (stream, seq) idempotency key, the row count, then every row of cb
// as a fixed-width image.
func AppendBatchPayload(dst []byte, stream uint32, seq uint64, cb *trace.ColumnBatch) []byte {
	var hdr [batchHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], stream)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(cb.Len()))
	dst = append(dst, hdr[:]...)
	for i := 0; i < cb.Len(); i++ {
		dst = appendRecord(dst, cb, i)
	}
	return dst
}

// DecodeBatchPayload parses a record-batch wire payload, appending the
// rows to cb (which is NOT reset — callers accumulate).
func DecodeBatchPayload(p []byte, cb *trace.ColumnBatch) (stream uint32, seq uint64, n int, err error) {
	if len(p) < batchHeaderLen {
		return 0, 0, 0, fmt.Errorf("ingest: batch payload too short (%d bytes)", len(p))
	}
	stream = binary.LittleEndian.Uint32(p[0:])
	seq = binary.LittleEndian.Uint64(p[4:])
	n = int(binary.LittleEndian.Uint32(p[12:]))
	body := p[batchHeaderLen:]
	if len(body) != n*walRecordLen {
		return 0, 0, 0, fmt.Errorf("ingest: batch payload length %d does not match %d records", len(body), n)
	}
	var rec trace.Record
	for i := 0; i < n; i++ {
		b := body[i*walRecordLen:]
		rec.Timestamp = int64(binary.LittleEndian.Uint64(b[0:]))
		rec.UE = trace.UEID(binary.LittleEndian.Uint32(b[8:]))
		rec.TAC = devices.TAC(binary.LittleEndian.Uint32(b[12:]))
		rec.Source = topology.SectorID(binary.LittleEndian.Uint32(b[16:]))
		rec.Target = topology.SectorID(binary.LittleEndian.Uint32(b[20:]))
		rec.Cause = causes.Code(binary.LittleEndian.Uint16(b[24:]))
		rec.SourceRAT = topology.RAT(b[26] >> 4)
		rec.TargetRAT = topology.RAT(b[26] & 0x0f)
		rec.Result = trace.Result(b[27])
		rec.DurationMs = math.Float32frombits(binary.LittleEndian.Uint32(b[28:]))
		cb.AppendRecord(&rec)
	}
	return stream, seq, n, nil
}

// appendFrame writes one frame to w and reports the bytes written.
func appendFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return frameHeaderLen + len(payload), nil
}

// replayWAL reads a day WAL, invoking fn for every intact frame in
// order, and returns the byte offset of the end of the last intact frame
// — the length the file must be truncated to before further appends. A
// missing file replays as empty (0, nil). A file without the full magic
// header is treated as all torn tail (validSize 0).
func replayWAL(fsys faultfs.FS, path string, fn func(typ byte, payload []byte) error) (validSize int64, err error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, iofs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("ingest: reading WAL %s: %w", path, err)
	}
	if len(data) < len(walMagic) || [8]byte(data[:8]) != walMagic {
		return 0, nil
	}
	off := int64(len(walMagic))
	for {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			return off, nil // clean EOF or torn header
		}
		typ := rest[0]
		plen := int64(binary.LittleEndian.Uint32(rest[1:]))
		crc := binary.LittleEndian.Uint32(rest[5:])
		if typ != frameBatch && typ != frameDayDone {
			return off, nil
		}
		if plen > maxFramePayload || int64(len(rest)) < frameHeaderLen+plen {
			return off, nil
		}
		payload := rest[frameHeaderLen : frameHeaderLen+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil
		}
		if err := fn(typ, payload); err != nil {
			return off, err
		}
		off += frameHeaderLen + plen
	}
}

// openWALForAppend truncates path to validSize (discarding a torn tail)
// and opens it for appending, writing the magic header when the file is
// new (validSize 0 with no intact header).
func openWALForAppend(fsys faultfs.FS, path string, validSize int64) (faultfs.File, int64, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: opening WAL %s: %w", path, err)
	}
	if validSize < int64(len(walMagic)) {
		validSize = 0
	}
	if validSize == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("ingest: resetting WAL %s: %w", path, err)
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("ingest: writing WAL header: %w", err)
		}
		return f, int64(len(walMagic)), nil
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ingest: truncating WAL %s to %d: %w", path, validSize, err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ingest: seeking WAL %s: %w", path, err)
	}
	return f, validSize, nil
}
