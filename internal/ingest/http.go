package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// ContentTypeBinary is the wire format of a binary POST /ingest body:
// the AppendBatchPayload encoding (stream | seq | count | fixed-width
// records). The JSON alternative posts {"stream", "seq", "records"}.
const ContentTypeBinary = "application/x-telcolens-ingest"

// maxRequestBody bounds one ingest POST (matches the WAL frame bound).
const maxRequestBody = maxFramePayload

// jsonBatch is the JSON request shape of POST /ingest.
type jsonBatch struct {
	Stream  uint32         `json:"stream"`
	Seq     uint64         `json:"seq"`
	Records []trace.Record `json:"records"`
}

// jsonDayDone is the request shape of POST /ingest/day.
type jsonDayDone struct {
	Day int                   `json:"day"`
	Agg simulate.DayAggregate `json:"agg"`
}

// Handler exposes the service over HTTP:
//
//	POST /ingest       record batch (binary or JSON) -> AppendResult
//	POST /ingest/day   day-completion marker + day aggregate
//	POST /ingest/init  campaign descriptor (manifest.json bytes)
//	POST /ingest/flush seal completed head days (?force=1 drains all)
//	GET  /ingest/stats ingest Stats
//
// Error mapping: 503 uninitialized, 429 + Retry-After backpressure,
// 409 sealed day or config mismatch, 400 malformed.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleAppend)
	mux.HandleFunc("/ingest/day", s.handleDayDone)
	mux.HandleFunc("/ingest/init", s.handleInit)
	mux.HandleFunc("/ingest/flush", s.handleFlush)
	mux.HandleFunc("/ingest/stats", s.handleStats)
	return mux
}

func writeIngestError(w http.ResponseWriter, err error) {
	var bp *BackpressureError
	var sealed *DaySealedError
	switch {
	case errors.Is(err, ErrNotInitialized):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &bp):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &sealed), errors.Is(err, ErrConfigMismatch):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading request body: %v", err), http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

func (s *Service) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var (
		stream uint32
		seq    uint64
		cb     trace.ColumnBatch
	)
	if r.Header.Get("Content-Type") == ContentTypeBinary {
		var err error
		stream, seq, _, err = DecodeBatchPayload(body, &cb)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var jb jsonBatch
		if err := json.Unmarshal(body, &jb); err != nil {
			http.Error(w, fmt.Sprintf("decoding JSON batch: %v", err), http.StatusBadRequest)
			return
		}
		stream, seq = jb.Stream, jb.Seq
		cb.FromRecords(jb.Records)
	}
	res, err := s.Append(stream, seq, &cb)
	if err != nil {
		if isMappedErr(err) {
			writeIngestError(w, err)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	writeJSON(w, res)
}

// isMappedErr reports whether err carries its own HTTP status mapping in
// writeIngestError; anything else from request processing is a 400.
func isMappedErr(err error) bool {
	var sealed *DaySealedError
	var bp *BackpressureError
	return errors.Is(err, ErrNotInitialized) || errors.As(err, &sealed) || errors.As(err, &bp)
}

func (s *Service) handleDayDone(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var jd jsonDayDone
	if err := json.Unmarshal(body, &jd); err != nil {
		http.Error(w, fmt.Sprintf("decoding day-done: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.DayComplete(jd.Day, jd.Agg); err != nil {
		if isMappedErr(err) {
			writeIngestError(w, err)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	writeJSON(w, map[string]any{"ok": true, "day": jd.Day})
}

func (s *Service) handleInit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	meta, err := simulate.DecodeMeta(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.Init(meta); err != nil {
		writeIngestError(w, err)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

func (s *Service) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	force, _ := strconv.ParseBool(r.URL.Query().Get("force"))
	sealed, err := s.Flush(force)
	if err != nil {
		writeIngestError(w, err)
		return
	}
	if sealed == nil {
		sealed = []int{}
	}
	writeJSON(w, map[string]any{"sealed": sealed})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
