package ingest

import (
	"math/rand"
	"testing"

	"telcolens/internal/simulate"
	"telcolens/internal/trace"
)

// dayRecords reads every record of one study day back out of a campaign
// directory, across all shards.
func dayRecords(t *testing.T, dir string, day int) *trace.ColumnBatch {
	t.Helper()
	fs := mustStore(t, dir)
	parts, err := fs.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	cb := new(trace.ColumnBatch)
	var rec trace.Record
	for _, p := range parts {
		if p.Day != day {
			continue
		}
		it, err := fs.OpenPartition(p.Day, p.Shard)
		if err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := it.Next(&rec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			cb.AppendRecord(&rec)
		}
		it.Close()
	}
	return cb
}

// TestStreamedCampaignMatchesBatch is the acceptance property of the
// streaming subsystem: the same record multiset, delivered live —
// shuffled within days, batches interleaved across days, with a process
// restart in the middle of the stream — seals into partitions and a
// campaign descriptor byte-identical to the batch simulate path's. Every
// analysis artifact is a function of those bytes, so artifact identity
// follows.
func TestStreamedCampaignMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a campaign")
	}
	// Reference: a small sharded campaign from the batch generator.
	src := t.TempDir()
	fs, err := trace.NewFileStore(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.DefaultConfig(42)
	cfg.UEs = 600
	cfg.Days = 3
	cfg.Shards = 2
	cfg.Store = fs
	ds, err := simulate.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveManifest(src); err != nil {
		t.Fatal(err)
	}
	meta, err := simulate.LoadMeta(src)
	if err != nil {
		t.Fatal(err)
	}

	// Re-deliver the campaign as a live stream: per-day record order
	// shuffled, fixed-size batches, days interleaved round-robin.
	rng := rand.New(rand.NewSource(7))
	const batchSize = 193
	batches := make([][]*trace.ColumnBatch, cfg.Days)
	for day := 0; day < cfg.Days; day++ {
		recs := dayRecords(t, src, day)
		perm := rng.Perm(recs.Len())
		for lo := 0; lo < len(perm); lo += batchSize {
			hi := min(lo+batchSize, len(perm))
			idx := make([]int32, 0, hi-lo)
			for _, p := range perm[lo:hi] {
				idx = append(idx, int32(p))
			}
			b := new(trace.ColumnBatch)
			b.AppendGather(recs, idx)
			batches[day] = append(batches[day], b)
		}
	}

	dst := t.TempDir()
	svc := mustOpen(t, dst, Options{})
	streamMeta := *meta
	streamMeta.Config.Days = 0
	streamMeta.Config.WindowDays = cfg.Days
	streamMeta.DayStats = nil
	if err := svc.Init(&streamMeta); err != nil {
		t.Fatal(err)
	}

	// Interleave all days' batches; restart the service halfway through.
	type send struct {
		day   int
		seq   uint64
		batch *trace.ColumnBatch
	}
	var plan []send
	for i := 0; ; i++ {
		any := false
		for day := 0; day < cfg.Days; day++ {
			if i < len(batches[day]) {
				plan = append(plan, send{day: day, seq: uint64(i + 1), batch: batches[day][i]})
				any = true
			}
		}
		if !any {
			break
		}
	}
	half := len(plan) / 2
	for _, sd := range plan[:half] {
		if _, err := svc.Append(uint32(sd.day), sd.seq, sd.batch); err != nil {
			t.Fatal(err)
		}
	}
	// Process restart mid-stream: acknowledged records must survive, and
	// one retried batch must deduplicate.
	svc.Close()
	svc = mustOpen(t, dst, Options{})
	if half > 0 {
		retry := plan[half-1]
		res, err := svc.Append(uint32(retry.day), retry.seq, retry.batch)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != 0 || res.Duplicate != retry.batch.Len() {
			t.Fatalf("post-restart retry ack = %+v, want all duplicates", res)
		}
	}
	for _, sd := range plan[half:] {
		if _, err := svc.Append(uint32(sd.day), sd.seq, sd.batch); err != nil {
			t.Fatal(err)
		}
	}
	for day := 0; day < cfg.Days; day++ {
		if err := svc.DayComplete(day, meta.DayStats[day]); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.SealedDays != cfg.Days || st.MemtableRecords != 0 || len(st.PendingDays) != 0 {
		t.Fatalf("post-stream stats = %+v", st)
	}

	compareCampaignDirs(t, src, dst)

	// The sealed directory must load as an ordinary campaign.
	if _, err := simulate.Load(dst); err != nil {
		t.Fatal(err)
	}
}
