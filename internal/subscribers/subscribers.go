// Package subscribers models the UE population: ~40M devices in the paper,
// a configurable scale here. Each UE couples a device model (TAC) with a
// home location (postcode/district, sampled population-proportionally) and
// a mobility class that drives the paper's mobility metrics (Fig 10).
package subscribers

import (
	"fmt"

	"telcolens/internal/census"
	"telcolens/internal/devices"
	"telcolens/internal/randx"
	"telcolens/internal/topology"
	"telcolens/internal/trace"
)

// MobilityClass partitions UEs by movement behaviour.
type MobilityClass uint8

// Mobility classes, from immobile smart meters to modems on high-speed
// trains (the paper's §5.3 highlights both extremes).
const (
	Stationary MobilityClass = iota
	Local
	Commuter
	LongDistance
	HighSpeed
	numClasses
)

// String returns the class name.
func (c MobilityClass) String() string {
	switch c {
	case Stationary:
		return "stationary"
	case Local:
		return "local"
	case Commuter:
		return "commuter"
	case LongDistance:
		return "long-distance"
	case HighSpeed:
		return "high-speed"
	default:
		return fmt.Sprintf("MobilityClass(%d)", uint8(c))
	}
}

// classMix gives the mobility class distribution per device type,
// calibrated against Fig 10 (visited sectors and radius of gyration per
// device type; see DESIGN.md §5).
var classMix = map[devices.DeviceType][numClasses]float64{
	//                       Stationary, Local, Commuter, LongDist, HighSpeed
	devices.Smartphone:   {0.06, 0.42, 0.46, 0.052, 0.008},
	devices.M2MIoT:       {0.62, 0.20, 0.08, 0.07, 0.03},
	devices.FeaturePhone: {0.30, 0.50, 0.08, 0.11, 0.01},
}

// UE is one subscriber device.
type UE struct {
	ID           trace.UEID
	TAC          devices.TAC
	HomeDistrict int
	HomePostcode string
	HomeSite     topology.SiteID
	Class        MobilityClass
	APN          string
}

// Population is the generated subscriber base.
type Population struct {
	UEs     []UE
	catalog *devices.Catalog
}

// Model resolves a UE's device model from the catalog.
func (p *Population) Model(ue *UE) *devices.Model { return p.catalog.ByTAC(ue.TAC) }

// Catalog returns the device catalog backing the population.
func (p *Population) Catalog() *devices.Catalog { return p.catalog }

// Len returns the population size.
func (p *Population) Len() int { return len(p.UEs) }

// Generate builds a deterministic population of n UEs.
func Generate(seed uint64, n int, country *census.Country, net *topology.Network, catalog *devices.Catalog) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("subscribers: non-positive population %d", n)
	}
	if country == nil || net == nil || catalog == nil {
		return nil, fmt.Errorf("subscribers: nil inputs")
	}
	sampler, err := devices.NewSampler(catalog)
	if err != nil {
		return nil, err
	}

	// Home district sampling is population-proportional: this is what
	// makes the Fig 5 census comparison and the Fig 6 density correlation
	// emerge from the generated traces rather than being painted on.
	weights := make([]float64, len(country.Districts))
	for i, d := range country.Districts {
		weights[i] = float64(d.Population)
	}
	districtChoice, err := randx.NewWeightedChoice(weights)
	if err != nil {
		return nil, err
	}

	r := randx.NewStream(seed, "subscribers", 0)
	pop := &Population{catalog: catalog, UEs: make([]UE, 0, n)}
	for i := 0; i < n; i++ {
		model := sampler.Sample(r)
		distID := districtChoice.Sample(r)
		district := country.District(distID)

		// Home postcode within the district, population-proportional.
		pcIdx := samplePostcode(r, district)
		pc := &district.Postcodes[pcIdx]

		// Home site: prefer a site in the home postcode, else any site in
		// the district (every district has at least one site).
		sites := net.SitesInDistrict(distID)
		if len(sites) == 0 {
			return nil, fmt.Errorf("subscribers: district %d has no sites", distID)
		}
		home := sites[r.Intn(len(sites))]
		for attempt := 0; attempt < 4; attempt++ {
			cand := sites[r.Intn(len(sites))]
			if net.Site(cand).Postcode == pc.Code {
				home = cand
				break
			}
		}

		mix := classMix[model.Type]
		class := MobilityClass(sampleClass(r, mix))

		pop.UEs = append(pop.UEs, UE{
			ID:           trace.UEID(i),
			TAC:          model.TAC,
			HomeDistrict: distID,
			HomePostcode: pc.Code,
			HomeSite:     home,
			Class:        class,
			APN:          devices.SampleAPN(r, model.Type),
		})
	}
	return pop, nil
}

func samplePostcode(r *randx.Rand, d *census.District) int {
	var total float64
	for _, pc := range d.Postcodes {
		total += float64(pc.Population) + 1
	}
	u := r.Float64() * total
	for i, pc := range d.Postcodes {
		u -= float64(pc.Population) + 1
		if u < 0 {
			return i
		}
	}
	return len(d.Postcodes) - 1
}

func sampleClass(r *randx.Rand, mix [numClasses]float64) int {
	var total float64
	for _, w := range mix {
		total += w
	}
	u := r.Float64() * total
	for i, w := range mix {
		u -= w
		if u < 0 {
			return i
		}
	}
	return int(numClasses) - 1
}
