package subscribers

import (
	"math"
	"strings"
	"testing"

	"telcolens/internal/census"
	"telcolens/internal/devices"
	"telcolens/internal/topology"
)

func buildInputs(t *testing.T) (*census.Country, *topology.Network, *devices.Catalog) {
	t.Helper()
	country, err := census.Generate(census.DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	net, err := topology.Generate(topology.DefaultGenConfig(42), country)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := devices.GenerateCatalog(42)
	if err != nil {
		t.Fatal(err)
	}
	return country, net, catalog
}

func TestGenerateBasics(t *testing.T) {
	country, net, catalog := buildInputs(t)
	pop, err := Generate(7, 5000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Len() != 5000 {
		t.Fatalf("population = %d", pop.Len())
	}
	for i := range pop.UEs {
		ue := &pop.UEs[i]
		if int(ue.ID) != i {
			t.Fatalf("UE %d has ID %d", i, ue.ID)
		}
		model := pop.Model(ue)
		if model == nil {
			t.Fatalf("UE %d has unresolvable TAC %d", i, ue.TAC)
		}
		if country.District(ue.HomeDistrict) == nil {
			t.Fatalf("UE %d has invalid home district", i)
		}
		site := net.Site(ue.HomeSite)
		if site == nil {
			t.Fatalf("UE %d has invalid home site", i)
		}
		if site.DistrictID != ue.HomeDistrict {
			t.Fatalf("UE %d home site in district %d, home district %d", i, site.DistrictID, ue.HomeDistrict)
		}
		if country.PostcodeByCode(ue.HomePostcode) == nil {
			t.Fatalf("UE %d has unknown postcode %q", i, ue.HomePostcode)
		}
		if ue.APN == "" {
			t.Fatalf("UE %d has no APN", i)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	country, net, catalog := buildInputs(t)
	a, err := Generate(3, 1000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(3, 1000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.UEs {
		if a.UEs[i] != b.UEs[i] {
			t.Fatalf("UE %d differs across identical seeds", i)
		}
	}
}

func TestHomesPopulationProportional(t *testing.T) {
	country, net, catalog := buildInputs(t)
	pop, err := Generate(11, 30000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, ue := range pop.UEs {
		counts[ue.HomeDistrict]++
	}
	totalPop := float64(country.TotalPopulation())
	// The largest districts must land close to their population share.
	rank := country.DensityRank()
	for _, id := range rank[len(rank)-5:] {
		d := country.District(id)
		want := float64(d.Population) / totalPop
		got := float64(counts[id]) / float64(pop.Len())
		if want > 0.01 && math.Abs(got-want)/want > 0.35 {
			t.Errorf("district %s: UE share %.4f, population share %.4f", d.Name, got, want)
		}
	}
}

func TestMobilityClassMixByType(t *testing.T) {
	country, net, catalog := buildInputs(t)
	pop, err := Generate(13, 40000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	classCounts := make(map[devices.DeviceType]map[MobilityClass]int)
	typeTotals := make(map[devices.DeviceType]int)
	for i := range pop.UEs {
		ue := &pop.UEs[i]
		m := pop.Model(ue)
		if classCounts[m.Type] == nil {
			classCounts[m.Type] = make(map[MobilityClass]int)
		}
		classCounts[m.Type][ue.Class]++
		typeTotals[m.Type]++
	}
	// M2M devices are mostly stationary; smartphones mostly mobile.
	m2mStationary := float64(classCounts[devices.M2MIoT][Stationary]) / float64(typeTotals[devices.M2MIoT])
	if math.Abs(m2mStationary-0.62) > 0.04 {
		t.Errorf("M2M stationary share = %.3f, want ≈0.62", m2mStationary)
	}
	smartStationary := float64(classCounts[devices.Smartphone][Stationary]) / float64(typeTotals[devices.Smartphone])
	if smartStationary > 0.1 {
		t.Errorf("smartphone stationary share = %.3f, want ≈0.06", smartStationary)
	}
}

func TestM2MAPNKeywords(t *testing.T) {
	country, net, catalog := buildInputs(t)
	pop, err := Generate(17, 20000, country, net, catalog)
	if err != nil {
		t.Fatal(err)
	}
	m2mWithKeyword, m2mTotal := 0, 0
	for i := range pop.UEs {
		ue := &pop.UEs[i]
		if pop.Model(ue).Type != devices.M2MIoT {
			continue
		}
		m2mTotal++
		lower := strings.ToLower(ue.APN)
		if strings.Contains(lower, "m2m") || strings.Contains(lower, "meter") ||
			strings.Contains(lower, "iot") || strings.Contains(lower, "telemetry") ||
			strings.Contains(lower, "fleet") || strings.Contains(lower, "scada") {
			m2mWithKeyword++
		}
	}
	frac := float64(m2mWithKeyword) / float64(m2mTotal)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("M2M keyword-APN share = %.3f, want ≈0.9", frac)
	}
}

func TestGenerateErrors(t *testing.T) {
	country, net, catalog := buildInputs(t)
	if _, err := Generate(1, 0, country, net, catalog); err == nil {
		t.Fatal("zero population accepted")
	}
	if _, err := Generate(1, 10, nil, net, catalog); err == nil {
		t.Fatal("nil country accepted")
	}
	if _, err := Generate(1, 10, country, nil, catalog); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := Generate(1, 10, country, net, nil); err == nil {
		t.Fatal("nil catalog accepted")
	}
}
