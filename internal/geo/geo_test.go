package geo

import (
	"math"
	"testing"
	"testing/quick"
)

var (
	madrid = Point{40.4168, -3.7038}
	barca  = Point{41.3874, 2.1686}
)

func TestDistanceKnownPair(t *testing.T) {
	// Madrid–Barcelona great-circle distance is ~505 km.
	d := DistanceKm(madrid, barca)
	if d < 495 || d < 0 || d > 515 {
		t.Fatalf("Madrid-Barcelona distance = %.1f km, want ~505", d)
	}
}

func TestDistanceIdentity(t *testing.T) {
	if d := DistanceKm(madrid, madrid); d != 0 {
		t.Fatalf("self distance = %g", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clamp(lat1, -90, 90), clamp(lon1, -180, 180)}
		b := Point{clamp(lat2, -90, 90), clamp(lon2, -180, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clamp(lat1, -90, 90), clamp(lon1, -180, 180)}
		b := Point{clamp(lat2, -90, 90), clamp(lon2, -180, 180)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		// use three fixed-ish points derived from seed
		s := float64(seed%1000) / 1000
		a := Point{40 + s, -3 + s}
		b := Point{41 - s, -2 + s/2}
		c := Point{39 + s/3, -4 - s/4}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	p := Offset(madrid, 10, 0)
	if d := DistanceKm(madrid, p); math.Abs(d-10) > 0.01 {
		t.Fatalf("north offset distance = %.4f, want 10", d)
	}
	p = Offset(madrid, 0, 25)
	if d := DistanceKm(madrid, p); math.Abs(d-25) > 0.1 {
		t.Fatalf("east offset distance = %.4f, want 25", d)
	}
}

func TestCenterOfMassSinglePoint(t *testing.T) {
	cm, ok := CenterOfMass([]Visit{{Loc: madrid, Weight: 5}})
	if !ok {
		t.Fatal("no center for single weighted visit")
	}
	if d := DistanceKm(cm, madrid); d > 1e-9 {
		t.Fatalf("center of single visit off by %g km", d)
	}
}

func TestCenterOfMassEmpty(t *testing.T) {
	if _, ok := CenterOfMass(nil); ok {
		t.Fatal("center of empty visits reported ok")
	}
	if _, ok := CenterOfMass([]Visit{{Loc: madrid, Weight: 0}}); ok {
		t.Fatal("center of zero-weight visits reported ok")
	}
}

func TestCenterOfMassMidpoint(t *testing.T) {
	a := Point{40, -3}
	b := Offset(a, 10, 0)
	cm, ok := CenterOfMass([]Visit{{a, 1}, {b, 1}})
	if !ok {
		t.Fatal("no center")
	}
	if d := math.Abs(DistanceKm(a, cm) - 5); d > 0.05 {
		t.Fatalf("midpoint off: dist from a = %.4f, want 5", DistanceKm(a, cm))
	}
}

func TestCenterOfMassWeighting(t *testing.T) {
	a := Point{40, -3}
	b := Offset(a, 12, 0)
	// 3x weight at a pulls the center to 1/4 of the way toward b.
	cm, _ := CenterOfMass([]Visit{{a, 3}, {b, 1}})
	if d := DistanceKm(a, cm); math.Abs(d-3) > 0.05 {
		t.Fatalf("weighted center at %.3f km from a, want 3", d)
	}
}

func TestGyrationZeroCases(t *testing.T) {
	if g := RadiusOfGyrationKm(nil); g != 0 {
		t.Fatalf("gyration(nil) = %g", g)
	}
	if g := RadiusOfGyrationKm([]Visit{{madrid, 10}}); g > 1e-9 {
		t.Fatalf("gyration(single) = %g", g)
	}
	same := []Visit{{madrid, 1}, {madrid, 2}, {madrid, 3}}
	if g := RadiusOfGyrationKm(same); g > 1e-9 {
		t.Fatalf("gyration(same place) = %g", g)
	}
}

func TestGyrationTwoPointsEqualWeight(t *testing.T) {
	a := Point{40, -3}
	b := Offset(a, 10, 0)
	g := RadiusOfGyrationKm([]Visit{{a, 1}, {b, 1}})
	if math.Abs(g-5) > 0.05 {
		t.Fatalf("gyration = %.4f, want 5", g)
	}
}

func TestGyrationScaleInvariantToWeightScaling(t *testing.T) {
	a := Point{40, -3}
	b := Offset(a, 8, 6)
	c := Offset(a, -4, 2)
	v1 := []Visit{{a, 1}, {b, 2}, {c, 3}}
	v2 := []Visit{{a, 10}, {b, 20}, {c, 30}}
	g1, g2 := RadiusOfGyrationKm(v1), RadiusOfGyrationKm(v2)
	if math.Abs(g1-g2) > 1e-9 {
		t.Fatalf("gyration not weight-scale invariant: %g vs %g", g1, g2)
	}
}

func TestGyrationNonNegativeProperty(t *testing.T) {
	f := func(dn1, de1, dn2, de2, w1, w2 float64) bool {
		base := Point{40, -3}
		v := []Visit{
			{Offset(base, clamp(dn1, -100, 100), clamp(de1, -100, 100)), clamp(math.Abs(w1), 0, 1e9)},
			{Offset(base, clamp(dn2, -100, 100), clamp(de2, -100, 100)), clamp(math.Abs(w2), 0, 1e9)},
		}
		return RadiusOfGyrationKm(v) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGyrationIgnoresNonPositiveWeights(t *testing.T) {
	a := Point{40, -3}
	b := Offset(a, 10, 0)
	far := Offset(a, 5000, 0)
	g1 := RadiusOfGyrationKm([]Visit{{a, 1}, {b, 1}})
	g2 := RadiusOfGyrationKm([]Visit{{a, 1}, {b, 1}, {far, 0}, {far, -2}})
	if math.Abs(g1-g2) > 1e-9 {
		t.Fatalf("non-positive weights changed gyration: %g vs %g", g1, g2)
	}
}

func TestBoundingBox(t *testing.T) {
	b := BoundingBox{MinLat: 39, MinLon: -4, MaxLat: 41, MaxLon: -2}
	if !b.Contains(Point{40, -3}) {
		t.Fatal("center not contained")
	}
	if b.Contains(Point{42, -3}) || b.Contains(Point{40, -5}) {
		t.Fatal("outside point contained")
	}
	c := b.Center()
	if c.Lat != 40 || c.Lon != -3 {
		t.Fatalf("center = %+v", c)
	}
	if b.AreaKm2() <= 0 {
		t.Fatal("non-positive area")
	}
	// Height of 2 degrees latitude is ~222 km.
	if h := b.HeightKm(); math.Abs(h-222.4) > 2 {
		t.Fatalf("height = %.1f", h)
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90.01, 0}, false},
		{Point{0, 180.5}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRadiusOfGyrationTrigBitIdentical(t *testing.T) {
	// The precomputed-trig gyration path must be bit-identical to the
	// reference implementation — the analysis engine's byte-identity
	// guarantees (TestIncrementalEqualsFull, the determinism matrix)
	// depend on this exactness, not on an epsilon.
	f := func(seed int64) bool {
		r := seed
		next := func() float64 {
			// xorshift-ish deterministic doubles in [0,1)
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return float64(uint64(r)%1e9) / 1e9
		}
		n := int(uint64(seed)%60) + 1
		visits := make([]Visit, n)
		trig := make([]TrigVisit, n)
		for i := range visits {
			p := Point{Lat: 35 + next()*10, Lon: -9 + next()*12}
			w := next() * 1e4
			if i%7 == 0 {
				w = 0 // exercise the non-positive-weight skip
			}
			visits[i] = Visit{Loc: p, Weight: w}
			latRad, lonRad, cosLat := PrecomputeTrig(p)
			trig[i] = TrigVisit{Loc: p, LatRad: latRad, LonRad: lonRad, CosLat: cosLat, Weight: w}
		}
		want := RadiusOfGyrationKm(visits)
		got := RadiusOfGyrationTrigKm(trig)
		return math.Float64bits(want) == math.Float64bits(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusOfGyrationTrigZeroCases(t *testing.T) {
	if got := RadiusOfGyrationTrigKm(nil); got != 0 {
		t.Fatalf("empty = %g", got)
	}
	latRad, lonRad, cosLat := PrecomputeTrig(madrid)
	one := []TrigVisit{{Loc: madrid, LatRad: latRad, LonRad: lonRad, CosLat: cosLat, Weight: 3}}
	if got := RadiusOfGyrationTrigKm(one); got != 0 {
		t.Fatalf("single point = %g", got)
	}
	zero := []TrigVisit{{Loc: madrid, LatRad: latRad, LonRad: lonRad, CosLat: cosLat, Weight: 0}}
	if got := RadiusOfGyrationTrigKm(zero); got != 0 {
		t.Fatalf("zero weight = %g", got)
	}
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	return math.Min(hi, math.Max(lo, v))
}

func BenchmarkDistanceKm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = DistanceKm(madrid, barca)
	}
}

func BenchmarkRadiusOfGyration(b *testing.B) {
	base := Point{40, -3}
	visits := make([]Visit, 50)
	for i := range visits {
		visits[i] = Visit{Offset(base, float64(i), float64(50-i)), 1 + float64(i%5)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RadiusOfGyrationKm(visits)
	}
}
