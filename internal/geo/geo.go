// Package geo provides the geographic primitives used by the telcolens
// topology and mobility analysis: WGS84-style coordinates, great-circle
// distance, weighted centers of mass, and the radius of gyration metric the
// paper uses to characterize UE mobility (§3.3).
package geo

import "math"

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// Valid reports whether the point is a plausible WGS84 coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }

// DistanceKm returns the great-circle (haversine) distance between two
// points in kilometers.
func DistanceKm(a, b Point) float64 {
	lat1, lon1 := deg2rad(a.Lat), deg2rad(a.Lon)
	lat2, lon2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Offset returns the point reached by moving dNorthKm north and dEastKm
// east from p, using an equirectangular approximation that is accurate for
// the intra-country distances the simulator works with.
func Offset(p Point, dNorthKm, dEastKm float64) Point {
	lat := p.Lat + dNorthKm/EarthRadiusKm*180/math.Pi
	lon := p.Lon + dEastKm/(EarthRadiusKm*math.Cos(deg2rad(p.Lat)))*180/math.Pi
	return Point{Lat: lat, Lon: lon}
}

// Visit is one stay at a location, weighted by the time spent there.
// The analysis uses visits to compute centers of mass and gyration radii.
type Visit struct {
	Loc    Point
	Weight float64 // time spent, any consistent unit; must be >= 0
}

// CenterOfMass returns the time-weighted centroid of the visits using a
// local planar approximation around the first visit. It returns the zero
// Point and false if the visits carry no positive weight.
func CenterOfMass(visits []Visit) (Point, bool) {
	if len(visits) == 0 {
		return Point{}, false
	}
	ref := visits[0].Loc
	cosRef := math.Cos(deg2rad(ref.Lat))
	var sumW, sumN, sumE float64
	for _, v := range visits {
		if v.Weight <= 0 {
			continue
		}
		n := (v.Loc.Lat - ref.Lat) * math.Pi / 180 * EarthRadiusKm
		e := (v.Loc.Lon - ref.Lon) * math.Pi / 180 * EarthRadiusKm * cosRef
		sumW += v.Weight
		sumN += n * v.Weight
		sumE += e * v.Weight
	}
	if sumW <= 0 {
		return Point{}, false
	}
	return Offset(ref, sumN/sumW, sumE/sumW), true
}

// RadiusOfGyrationKm computes the paper's mobility metric (§3.3): the
// root-mean-square, time-weighted distance between each visited location and
// the visits' center of mass. A single location (or zero total weight)
// yields 0.
func RadiusOfGyrationKm(visits []Visit) float64 {
	cm, ok := CenterOfMass(visits)
	if !ok {
		return 0
	}
	// Center-side trigonometry is loop-invariant; hoisting it halves the
	// haversine cost per visit. The arithmetic below performs exactly
	// the operations of DistanceKm(v.Loc, cm) in the same order, so the
	// result is bit-identical to the per-pair form.
	latC, lonC := deg2rad(cm.Lat), deg2rad(cm.Lon)
	cosC := math.Cos(latC)
	var sumW, sum float64
	for _, v := range visits {
		if v.Weight <= 0 {
			continue
		}
		lat1, lon1 := deg2rad(v.Loc.Lat), deg2rad(v.Loc.Lon)
		s1 := math.Sin((latC - lat1) / 2)
		s2 := math.Sin((lonC - lon1) / 2)
		h := s1*s1 + math.Cos(lat1)*cosC*s2*s2
		if h > 1 {
			h = 1
		}
		d := 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
		sum += v.Weight * d * d
		sumW += v.Weight
	}
	if sumW <= 0 {
		return 0
	}
	return math.Sqrt(sum / sumW)
}

// TrigVisit is a Visit whose location trigonometry has been precomputed:
// LatRad/LonRad are deg2rad of the location and CosLat is cos(LatRad).
// Callers that visit the same fixed locations many times (e.g. cell
// sectors) tabulate these once via PrecomputeTrig and then use
// RadiusOfGyrationTrigKm, which performs no per-visit Cos on the
// location side.
type TrigVisit struct {
	Loc    Point
	LatRad float64
	LonRad float64
	CosLat float64
	Weight float64
}

// PrecomputeTrig tabulates the trigonometry RadiusOfGyrationTrigKm
// consumes for one location. The stored values are exactly deg2rad(lat),
// deg2rad(lon) and cos(deg2rad(lat)) as RadiusOfGyrationKm would compute
// them inline, so substituting them is bit-identical.
func PrecomputeTrig(p Point) (latRad, lonRad, cosLat float64) {
	latRad = deg2rad(p.Lat)
	lonRad = deg2rad(p.Lon)
	return latRad, lonRad, math.Cos(latRad)
}

// RadiusOfGyrationTrigKm computes exactly RadiusOfGyrationKm over the
// same visits, but consumes precomputed per-location trigonometry: the
// merge loop performs no Sin/Cos of visit coordinates beyond the two
// center-relative Sins of the haversine. Every floating-point operation
// matches RadiusOfGyrationKm in the same order, so the result is
// bit-identical (asserted by TestRadiusOfGyrationTrigBitIdentical).
func RadiusOfGyrationTrigKm(visits []TrigVisit) float64 {
	cm, ok := centerOfMassTrig(visits)
	if !ok {
		return 0
	}
	latC, lonC := deg2rad(cm.Lat), deg2rad(cm.Lon)
	cosC := math.Cos(latC)
	var sumW, sum float64
	for _, v := range visits {
		if v.Weight <= 0 {
			continue
		}
		s1 := math.Sin((latC - v.LatRad) / 2)
		s2 := math.Sin((lonC - v.LonRad) / 2)
		h := s1*s1 + v.CosLat*cosC*s2*s2
		if h > 1 {
			h = 1
		}
		d := 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
		sum += v.Weight * d * d
		sumW += v.Weight
	}
	if sumW <= 0 {
		return 0
	}
	return math.Sqrt(sum / sumW)
}

// centerOfMassTrig mirrors CenterOfMass over TrigVisits. The planar
// reduction uses only the degree-valued Loc fields, so it is the same
// float sequence as CenterOfMass on the equivalent []Visit.
func centerOfMassTrig(visits []TrigVisit) (Point, bool) {
	if len(visits) == 0 {
		return Point{}, false
	}
	ref := visits[0].Loc
	cosRef := math.Cos(deg2rad(ref.Lat))
	var sumW, sumN, sumE float64
	for _, v := range visits {
		if v.Weight <= 0 {
			continue
		}
		n := (v.Loc.Lat - ref.Lat) * math.Pi / 180 * EarthRadiusKm
		e := (v.Loc.Lon - ref.Lon) * math.Pi / 180 * EarthRadiusKm * cosRef
		sumW += v.Weight
		sumN += n * v.Weight
		sumE += e * v.Weight
	}
	if sumW <= 0 {
		return Point{}, false
	}
	return Offset(ref, sumN/sumW, sumE/sumW), true
}

// BoundingBox is an axis-aligned lat/lon rectangle.
type BoundingBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box midpoint.
func (b BoundingBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// WidthKm returns the east-west extent measured at the box's central
// latitude.
func (b BoundingBox) WidthKm() float64 {
	mid := (b.MinLat + b.MaxLat) / 2
	return DistanceKm(Point{mid, b.MinLon}, Point{mid, b.MaxLon})
}

// HeightKm returns the north-south extent.
func (b BoundingBox) HeightKm() float64 {
	return DistanceKm(Point{b.MinLat, b.MinLon}, Point{b.MaxLat, b.MinLon})
}

// AreaKm2 returns the approximate box area in square kilometers.
func (b BoundingBox) AreaKm2() float64 { return b.WidthKm() * b.HeightKm() }
