// Package randx provides deterministic, splittable random number generation
// and the distribution samplers used throughout the telcolens simulator.
//
// Reproducibility is a hard requirement: the paper's experiments must be
// regenerable bit-for-bit from a single seed, and generation is parallelized
// per UE, so every simulated entity derives its own independent stream from
// (seed, label, index) without any shared mutable state.
package randx

import (
	"math"
	"math/rand"
)

// splitmix64 advances the classic SplitMix64 state and returns the next
// output. It is used only to derive well-mixed seeds for child streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashLabel folds a string label into a 64-bit value using FNV-1a, then
// finalizes it with SplitMix64 so that short labels still produce well
// distributed seeds.
func hashLabel(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return splitmix64(h)
}

// Seed derives a child seed from a root seed, a stream label and an index.
// Distinct (label, index) pairs yield statistically independent streams.
func Seed(root uint64, label string, index uint64) uint64 {
	s := splitmix64(root ^ hashLabel(label))
	return splitmix64(s ^ splitmix64(index+0x632be59bd9b4e019))
}

// Source is a deterministic rand.Source64 backed by SplitMix64 state.
// The zero value is a valid source seeded with 0.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with the given value.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// Seed resets the source state.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit random integer.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Rand is a convenience wrapper bundling a deterministic source with the
// stdlib distribution helpers plus the extra samplers the simulator needs.
type Rand struct {
	*rand.Rand
	src *Source
}

// New returns a deterministic Rand for the given root seed.
func New(seed uint64) *Rand {
	src := NewSource(seed)
	return &Rand{Rand: rand.New(src), src: src}
}

// NewStream returns a deterministic Rand for the stream identified by
// (root, label, index). Use one stream per simulated entity.
func NewStream(root uint64, label string, index uint64) *Rand {
	return New(Seed(root, label, index))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// LogNormal samples a log-normal variate with the given log-scale mu and
// log-shape sigma. Median is exp(mu); the p-quantile is exp(mu+sigma*z_p).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LogNormalMedP95 samples a log-normal variate parameterized by its median
// and 95th percentile, the form in which the paper reports HO durations.
func (r *Rand) LogNormalMedP95(median, p95 float64) float64 {
	return r.LogNormal(LogNormalParams(median, p95))
}

// LogNormalParams converts a (median, p95) pair into (mu, sigma) for a
// log-normal distribution. It panics if median or p95 is non-positive or
// p95 < median, which would indicate a miscalibrated model table.
func LogNormalParams(median, p95 float64) (mu, sigma float64) {
	if median <= 0 || p95 < median {
		panic("randx: invalid log-normal calibration")
	}
	const z95 = 1.6448536269514722 // standard normal 95th percentile
	mu = math.Log(median)
	sigma = math.Log(p95/median) / z95
	return mu, sigma
}

// Exponential samples an exponential variate with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Pareto samples a Pareto (type I) variate with minimum xm and shape alpha.
// Used for heavy-tailed population densities and traffic volumes.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson samples a Poisson variate with the given mean using Knuth's
// algorithm for small means and normal approximation for large means.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; exact Poisson
		// at this magnitude is statistically indistinguishable for our use.
		v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Triangular samples from a triangular distribution on [min, max] with the
// given mode. Used for bounded quantities like dwell-time jitter.
func (r *Rand) Triangular(min, mode, max float64) float64 {
	if max <= min {
		return min
	}
	u := r.Float64()
	c := (mode - min) / (max - min)
	if u < c {
		return min + math.Sqrt(u*(max-min)*(mode-min))
	}
	return max - math.Sqrt((1-u)*(max-min)*(max-mode))
}

// TruncNormal samples a normal variate with the given mean and standard
// deviation, rejected into [lo, hi]. Falls back to clamping after 64
// rejections so pathological bounds cannot stall the simulator.
func (r *Rand) TruncNormal(mean, std, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := mean + std*r.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}
