package randx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSeedDeterminism(t *testing.T) {
	a := Seed(42, "ue", 7)
	b := Seed(42, "ue", 7)
	if a != b {
		t.Fatalf("Seed not deterministic: %d != %d", a, b)
	}
}

func TestSeedSeparatesStreams(t *testing.T) {
	seen := make(map[uint64]string)
	for _, label := range []string{"ue", "sector", "district", "day"} {
		for i := uint64(0); i < 1000; i++ {
			s := Seed(1, label, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision between %q/%d and %s", label, i, prev)
			}
			seen[s] = label
		}
	}
}

func TestSeedLabelSensitivity(t *testing.T) {
	if Seed(9, "a", 0) == Seed(9, "b", 0) {
		t.Fatal("different labels produced identical seeds")
	}
	if Seed(9, "a", 0) == Seed(10, "a", 0) {
		t.Fatal("different roots produced identical seeds")
	}
}

func TestSourceSequenceStability(t *testing.T) {
	// Lock in the SplitMix64 sequence: if this changes, every experiment
	// output changes, which must be a conscious decision.
	s := NewSource(1)
	want := []uint64{0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("Uint64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	r1 := NewStream(5, "x", 1)
	r2 := NewStream(5, "x", 2)
	equal := 0
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("streams look correlated: %d equal outputs of 100", equal)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f", got)
	}
}

func TestLogNormalParams(t *testing.T) {
	mu, sigma := LogNormalParams(43, 92)
	if math.Abs(math.Exp(mu)-43) > 1e-9 {
		t.Fatalf("median mismatch: exp(mu)=%g", math.Exp(mu))
	}
	// p95 = exp(mu + 1.6449*sigma)
	p95 := math.Exp(mu + 1.6448536269514722*sigma)
	if math.Abs(p95-92) > 1e-6 {
		t.Fatalf("p95 mismatch: %g", p95)
	}
}

func TestLogNormalParamsPanics(t *testing.T) {
	for _, c := range []struct{ med, p95 float64 }{{0, 1}, {-1, 2}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogNormalParams(%g,%g) did not panic", c.med, c.p95)
				}
			}()
			LogNormalParams(c.med, c.p95)
		}()
	}
}

func TestLogNormalMedP95Quantiles(t *testing.T) {
	r := New(77)
	const n = 100000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = r.LogNormalMedP95(412, 1087)
	}
	med := quickQuantile(samples, 0.5)
	p95 := quickQuantile(samples, 0.95)
	if math.Abs(med-412)/412 > 0.03 {
		t.Fatalf("empirical median %.1f, want ~412", med)
	}
	if math.Abs(p95-1087)/1087 > 0.05 {
		t.Fatalf("empirical p95 %.1f, want ~1087", p95)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(123)
	for _, mean := range []float64{0.3, 3, 30, 300} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Fatalf("Poisson(%g) empirical mean %.3f", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(5)
	if r.Poisson(-3) != 0 || r.Poisson(0) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto sample %g below xm", v)
		}
	}
}

func TestTriangularBounds(t *testing.T) {
	r := New(21)
	for i := 0; i < 10000; i++ {
		v := r.Triangular(1, 2, 5)
		if v < 1 || v > 5 {
			t.Fatalf("Triangular sample %g out of [1,5]", v)
		}
	}
	if v := r.Triangular(3, 3, 3); v != 3 {
		t.Fatalf("degenerate Triangular = %g", v)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNormal sample %g out of bounds", v)
		}
	}
	// Pathological bounds: must clamp, not loop forever.
	v := r.TruncNormal(0, 0.001, 100, 101)
	if v != 100 {
		t.Fatalf("TruncNormal clamp = %g, want 100", v)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(29)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(7)
	}
	if got := sum / n; math.Abs(got-7)/7 > 0.03 {
		t.Fatalf("Exponential(7) empirical mean %.3f", got)
	}
}

// Property: seeds are a pure function of inputs.
func TestSeedPure(t *testing.T) {
	f := func(root, idx uint64, label string) bool {
		return Seed(root, label, idx) == Seed(root, label, idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func quickQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
