package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedChoiceErrors(t *testing.T) {
	if _, err := NewWeightedChoice(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeightedChoice([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewWeightedChoice([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestWeightedChoiceFrequencies(t *testing.T) {
	weights := []float64{54.8, 30.2, 3.0, 2.0, 1.9, 8.1} // smartphone makers
	wc := MustWeightedChoice(weights)
	r := New(101)
	const n = 500000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[wc.Sample(r)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("category %d: freq %.4f, want %.4f", i, got, want)
		}
	}
}

func TestWeightedChoiceZeroWeightNeverSampled(t *testing.T) {
	wc := MustWeightedChoice([]float64{1, 0, 3})
	r := New(55)
	for i := 0; i < 100000; i++ {
		if wc.Sample(r) == 1 {
			t.Fatal("zero-weight category sampled")
		}
	}
}

func TestWeightedChoiceSingleCategory(t *testing.T) {
	wc := MustWeightedChoice([]float64{42})
	r := New(1)
	for i := 0; i < 100; i++ {
		if wc.Sample(r) != 0 {
			t.Fatal("single-category sampler returned nonzero index")
		}
	}
}

// Property: alias method agrees with the cumulative-search oracle in
// distribution for random weight vectors.
func TestWeightedChoiceMatchesOracle(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true // skip; quick will try others
		}
		weights := make([]float64, len(raw))
		var total float64
		for i, b := range raw {
			weights[i] = float64(b)
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		wc, err := NewWeightedChoice(weights)
		if err != nil {
			return false
		}
		cc, err := NewCumulativeChoice(weights)
		if err != nil {
			return false
		}
		const n = 20000
		ra, rb := New(7), New(7)
		ca := make([]float64, len(weights))
		cb := make([]float64, len(weights))
		for i := 0; i < n; i++ {
			ca[wc.Sample(ra)]++
			cb[cc.Sample(rb)]++
		}
		for i := range ca {
			if math.Abs(ca[i]-cb[i])/n > 0.03 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCumulativeChoiceBounds(t *testing.T) {
	cc, err := NewCumulativeChoice([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := New(2)
	for i := 0; i < 10000; i++ {
		got := cc.Sample(r)
		if got < 0 || got > 2 {
			t.Fatalf("index %d out of range", got)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(9)
	p := Shuffle(r, 100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p[:10])
		}
		seen[v] = true
	}
}

func BenchmarkWeightedChoiceSample(b *testing.B) {
	weights := make([]float64, 1024)
	for i := range weights {
		weights[i] = float64(i%17 + 1)
	}
	wc := MustWeightedChoice(weights)
	r := New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wc.Sample(r)
	}
}
