package randx

import (
	"fmt"
	"sort"
)

// WeightedChoice selects indices in proportion to fixed non-negative weights
// using Vose's alias method: O(n) construction, O(1) sampling. It is the
// workhorse behind manufacturer mixes, cause mixes and sector selection.
type WeightedChoice struct {
	prob  []float64
	alias []int
}

// NewWeightedChoice builds an alias table for the given weights. It returns
// an error if no weight is positive or any weight is negative.
func NewWeightedChoice(weights []float64) (*WeightedChoice, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("randx: empty weight vector")
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("randx: negative weight %g at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("randx: all weights are zero")
	}

	wc := &WeightedChoice{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		wc.prob[s] = scaled[s]
		wc.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		wc.prob[i] = 1
		wc.alias[i] = i
	}
	for _, i := range small {
		wc.prob[i] = 1 // numerical leftovers
		wc.alias[i] = i
	}
	return wc, nil
}

// MustWeightedChoice is NewWeightedChoice but panics on error. Intended for
// static calibration tables whose validity is checked by tests.
func MustWeightedChoice(weights []float64) *WeightedChoice {
	wc, err := NewWeightedChoice(weights)
	if err != nil {
		panic(err)
	}
	return wc
}

// Len returns the number of categories.
func (wc *WeightedChoice) Len() int { return len(wc.prob) }

// Sample draws a category index.
func (wc *WeightedChoice) Sample(r *Rand) int {
	i := r.Intn(len(wc.prob))
	if r.Float64() < wc.prob[i] {
		return i
	}
	return wc.alias[i]
}

// CumulativeChoice is a simpler weighted sampler using binary search over a
// cumulative weight vector: O(log n) sampling but trivially verifiable.
// Retained both as an oracle for alias-method tests and for tiny tables.
type CumulativeChoice struct {
	cum []float64
}

// NewCumulativeChoice builds a cumulative table for the given weights.
func NewCumulativeChoice(weights []float64) (*CumulativeChoice, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("randx: empty weight vector")
	}
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("randx: negative weight %g at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("randx: all weights are zero")
	}
	return &CumulativeChoice{cum: cum}, nil
}

// Sample draws a category index.
func (c *CumulativeChoice) Sample(r *Rand) int {
	total := c.cum[len(c.cum)-1]
	u := r.Float64() * total
	return sort.SearchFloat64s(c.cum, u)
}

// Shuffle permutes the integers [0, n) deterministically under r and
// returns them. Convenience for sampling without replacement.
func Shuffle(r *Rand, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	r.Rand.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}
