package census

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testCountry(t *testing.T) *Country {
	t.Helper()
	c, err := Generate(DefaultGenConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateBasicShape(t *testing.T) {
	c := testCountry(t)
	if len(c.Districts) != 320 {
		t.Fatalf("districts = %d", len(c.Districts))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	pop := c.TotalPopulation()
	if pop < 40_000_000 || pop > 50_000_000 {
		t.Fatalf("population = %d", pop)
	}
	if a := c.TotalAreaKm2(); a < 200_000 || a > 900_000 {
		t.Fatalf("area = %.0f", a)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(DefaultGenConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPopulation() != b.TotalPopulation() {
		t.Fatal("same seed, different population")
	}
	for i := range a.Districts {
		if a.Districts[i].Population != b.Districts[i].Population {
			t.Fatalf("district %d differs across runs", i)
		}
	}
	c, err := Generate(DefaultGenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPopulation() == c.TotalPopulation() {
		t.Fatal("different seeds produced identical countries (suspicious)")
	}
}

func TestDensitySpansPaperRange(t *testing.T) {
	c := testCountry(t)
	rank := c.DensityRank()
	lo := c.Districts[rank[0]].Density()
	hi := c.Districts[rank[len(rank)-1]].Density()
	if lo > 30 {
		t.Fatalf("least dense district %.1f/km², want ~10", lo)
	}
	if hi < 8_000 {
		t.Fatalf("densest district %.0f/km², want >10⁴", hi)
	}
}

func TestCapitalCenterIsDensest(t *testing.T) {
	c := testCountry(t)
	var capCenter *District
	count := 0
	for i := range c.Districts {
		if c.Districts[i].CapitalCenter {
			capCenter = &c.Districts[i]
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d capital-center districts", count)
	}
	if !capCenter.Capital || capCenter.Region != CapitalArea {
		t.Fatal("capital center not flagged as capital/CapitalArea")
	}
	for i := range c.Districts {
		if c.Districts[i].Density() > capCenter.Density() {
			t.Fatalf("district %d denser than the capital center", i)
		}
	}
}

func TestUrbanAreaShareNearGoal(t *testing.T) {
	c := testCountry(t)
	share := c.UrbanAreaShare()
	// Paper: urban postcodes cover 49.6% of territory. Allow ±12pp since
	// the share is emergent from the density distribution.
	if share < 0.38 || share > 0.62 {
		t.Fatalf("urban area share = %.3f, want ≈0.50", share)
	}
}

func TestUrbanHoldsMostPopulation(t *testing.T) {
	c := testCountry(t)
	var urbanPop, totalPop int
	for _, d := range c.Districts {
		for _, p := range d.Postcodes {
			totalPop += p.Population
			if p.Type() == Urban {
				urbanPop += p.Population
			}
		}
	}
	frac := float64(urbanPop) / float64(totalPop)
	if frac < 0.6 {
		t.Fatalf("urban population share = %.3f, want most of the population", frac)
	}
}

func TestPostcodeClassificationThreshold(t *testing.T) {
	p := Postcode{Population: UrbanPopulationThreshold}
	if p.Type() != Rural {
		t.Fatal("exactly 10k should be rural (strictly more than 10k is urban)")
	}
	p.Population++
	if p.Type() != Urban {
		t.Fatal("10k+1 should be urban")
	}
}

func TestAllRegionsPresent(t *testing.T) {
	c := testCountry(t)
	counts := make(map[Region]int)
	for _, d := range c.Districts {
		counts[d.Region]++
	}
	for _, r := range Regions() {
		if counts[r] < 10 {
			t.Fatalf("region %s has only %d districts", r, counts[r])
		}
	}
}

func TestDistrictLookup(t *testing.T) {
	c := testCountry(t)
	d := c.District(5)
	if d == nil || d.ID != 5 {
		t.Fatal("District(5) lookup failed")
	}
	if c.District(-1) != nil || c.District(len(c.Districts)) != nil {
		t.Fatal("out-of-range lookup not nil")
	}
	pc := c.Districts[5].Postcodes[0]
	if got := c.DistrictOfPostcode(pc.Code); got == nil || got.ID != 5 {
		t.Fatal("postcode->district lookup failed")
	}
	if c.DistrictOfPostcode("zzz") != nil {
		t.Fatal("unknown postcode resolved")
	}
	if got := c.PostcodeByCode(pc.Code); got == nil || got.Code != pc.Code {
		t.Fatal("postcode lookup failed")
	}
}

func TestDistrictCentersInsideBounds(t *testing.T) {
	c := testCountry(t)
	for _, d := range c.Districts {
		if !c.Bounds.Contains(d.Center) {
			t.Fatalf("district %s center outside bounds", d.Name)
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []GenConfig{
		{Seed: 1, Districts: 2, TargetPop: 1000, MeanAreaKm2: 10, UrbanAreaGoal: 0.5},
		{Seed: 1, Districts: 50, TargetPop: 0, MeanAreaKm2: 10, UrbanAreaGoal: 0.5},
		{Seed: 1, Districts: 50, TargetPop: 1000, MeanAreaKm2: -1, UrbanAreaGoal: 0.5},
		{Seed: 1, Districts: 50, TargetPop: 1000, MeanAreaKm2: 10, UrbanAreaGoal: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := testCountry(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Districts) != len(c.Districts) {
		t.Fatalf("districts %d != %d", len(got.Districts), len(c.Districts))
	}
	if got.TotalPopulation() != c.TotalPopulation() {
		t.Fatalf("population %d != %d", got.TotalPopulation(), c.TotalPopulation())
	}
	for i := range c.Districts {
		a, b := c.Districts[i], got.Districts[i]
		if a.Name != b.Name || a.Region != b.Region || a.Population != b.Population {
			t.Fatalf("district %d mismatch after round trip", i)
		}
		if len(a.Postcodes) != len(b.Postcodes) {
			t.Fatalf("district %d postcode count mismatch", i)
		}
		if math.Abs(a.AreaKm2-b.AreaKm2) > 1e-9 {
			t.Fatalf("district %d area drift", i)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not,a,census\n1,2,3\n",
		strings.Join(csvHeader, ",") + "\nabc,notanint,x,0,1,1,1,false,false,5,1,1,1\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRegionStrings(t *testing.T) {
	if CapitalArea.String() != "Capital area" || North.String() != "North" ||
		South.String() != "South" || West.String() != "West" {
		t.Fatal("region names wrong")
	}
	if Urban.String() != "Urban" || Rural.String() != "Rural" {
		t.Fatal("area type names wrong")
	}
}
