package census

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The census office publishes open data as flat tables; we mirror that with
// a postcode-level CSV. One row per postcode carries everything needed to
// rebuild the Country frame, so the analysis pipeline can also ingest
// externally supplied census files with the same schema.

var csvHeader = []string{
	"postcode", "district_id", "district_name", "region",
	"district_area_km2", "district_lat", "district_lon",
	"capital", "capital_center",
	"pc_population", "pc_area_km2", "pc_lat", "pc_lon",
}

// WriteCSV streams the country as postcode-level open data.
func WriteCSV(w io.Writer, c *Country) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, d := range c.Districts {
		for _, p := range d.Postcodes {
			rec := []string{
				p.Code,
				strconv.Itoa(d.ID),
				d.Name,
				strconv.Itoa(int(d.Region)),
				formatFloat(d.AreaKm2),
				formatFloat(d.Center.Lat),
				formatFloat(d.Center.Lon),
				strconv.FormatBool(d.Capital),
				strconv.FormatBool(d.CapitalCenter),
				strconv.Itoa(p.Population),
				formatFloat(p.AreaKm2),
				formatFloat(p.Center.Lat),
				formatFloat(p.Center.Lon),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reconstructs a Country from postcode-level open data produced by
// WriteCSV (or any file with the same schema).
func ReadCSV(r io.Reader) (*Country, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("census: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("census: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("census: column %d is %q, want %q", i, header[i], h)
		}
	}

	byID := make(map[int]*District)
	var order []int
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("census: line %d: %w", line, err)
		}
		line++
		id, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("census: line %d: bad district id %q", line, rec[1])
		}
		d, ok := byID[id]
		if !ok {
			region, err := strconv.Atoi(rec[3])
			if err != nil || region < 0 || Region(region) >= numRegions {
				return nil, fmt.Errorf("census: line %d: bad region %q", line, rec[3])
			}
			area, err1 := strconv.ParseFloat(rec[4], 64)
			lat, err2 := strconv.ParseFloat(rec[5], 64)
			lon, err3 := strconv.ParseFloat(rec[6], 64)
			capital, err4 := strconv.ParseBool(rec[7])
			capCenter, err5 := strconv.ParseBool(rec[8])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
				return nil, fmt.Errorf("census: line %d: malformed district fields", line)
			}
			d = &District{
				ID:            id,
				Name:          rec[2],
				Region:        Region(region),
				AreaKm2:       area,
				Capital:       capital,
				CapitalCenter: capCenter,
			}
			d.Center.Lat, d.Center.Lon = lat, lon
			byID[id] = d
			order = append(order, id)
		}
		pop, err1 := strconv.Atoi(rec[9])
		pcArea, err2 := strconv.ParseFloat(rec[10], 64)
		pcLat, err3 := strconv.ParseFloat(rec[11], 64)
		pcLon, err4 := strconv.ParseFloat(rec[12], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("census: line %d: malformed postcode fields", line)
		}
		pc := Postcode{
			Code:       rec[0],
			DistrictID: id,
			Population: pop,
			AreaKm2:    pcArea,
		}
		pc.Center.Lat, pc.Center.Lon = pcLat, pcLon
		d.Postcodes = append(d.Postcodes, pc)
		d.Population += pop
	}

	c := &Country{Name: "imported"}
	// Districts must be stored by ID for Country.District; require a dense
	// 0..n-1 ID space as produced by Generate.
	maxID := -1
	for _, id := range order {
		if id > maxID {
			maxID = id
		}
	}
	c.Districts = make([]District, maxID+1)
	for _, id := range order {
		c.Districts[id] = *byID[id]
	}
	for i := range c.Districts {
		if c.Districts[i].Postcodes == nil {
			return nil, fmt.Errorf("census: district ID space has a hole at %d", i)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
