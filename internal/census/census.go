// Package census models the official census open data the paper joins with
// operator measurements (§3.2): a country partitioned into 300+ districts
// across four regions, each district holding postcode areas classified as
// urban (>10k residents) or rural, together with population counts and
// geographic extents.
package census

import (
	"fmt"
	"sort"

	"telcolens/internal/geo"
)

// Region is one of the coarse sector regions the paper's regression uses
// (Table 3): West, South, North and the Capital area.
type Region uint8

// Regions in the order used by regression dummy coding; CapitalArea is the
// baseline level, matching the paper's Table 5 (which reports North, South
// and West coefficients against the capital).
const (
	CapitalArea Region = iota
	North
	South
	West
	numRegions
)

// Regions lists all regions in canonical order.
func Regions() []Region { return []Region{CapitalArea, North, South, West} }

// String returns the region name.
func (r Region) String() string {
	switch r {
	case CapitalArea:
		return "Capital area"
	case North:
		return "North"
	case South:
		return "South"
	case West:
		return "West"
	default:
		return fmt.Sprintf("Region(%d)", uint8(r))
	}
}

// AreaType is the urban/rural classification the paper derives from
// postcode-level census population (§3.2).
type AreaType uint8

// Area types. Urban corresponds to postcodes with more than 10k residents.
const (
	Rural AreaType = iota
	Urban
)

// String returns the area type name.
func (a AreaType) String() string {
	if a == Urban {
		return "Urban"
	}
	return "Rural"
}

// UrbanPopulationThreshold is the resident count above which a postcode is
// classified as urban, following the paper's 10k cut.
const UrbanPopulationThreshold = 10_000

// Postcode is the finest census unit: a postal area with population and
// approximate extent.
type Postcode struct {
	Code       string
	DistrictID int
	Population int
	AreaKm2    float64
	Center     geo.Point
}

// Type returns the urban/rural classification of the postcode.
func (p Postcode) Type() AreaType {
	if p.Population > UrbanPopulationThreshold {
		return Urban
	}
	return Rural
}

// District is a census district: the paper's geographic unit of analysis
// (300+ districts countrywide).
type District struct {
	ID            int
	Name          string
	Region        Region
	Center        geo.Point
	AreaKm2       float64
	Population    int
	Postcodes     []Postcode
	Capital       bool // belongs to the capital city
	CapitalCenter bool // the capital's dense urban core
}

// Density returns residents per square kilometer.
func (d District) Density() float64 {
	if d.AreaKm2 <= 0 {
		return 0
	}
	return float64(d.Population) / d.AreaKm2
}

// UrbanAreaKm2 returns the total area of the district's urban postcodes.
func (d District) UrbanAreaKm2() float64 {
	var a float64
	for _, p := range d.Postcodes {
		if p.Type() == Urban {
			a += p.AreaKm2
		}
	}
	return a
}

// Country is the full census frame: every district with its postcodes.
type Country struct {
	Name      string
	Bounds    geo.BoundingBox
	Districts []District

	byPostcode map[string]int // postcode -> district index
}

// TotalPopulation returns the country's resident count.
func (c *Country) TotalPopulation() int {
	var t int
	for _, d := range c.Districts {
		t += d.Population
	}
	return t
}

// TotalAreaKm2 returns the summed district area.
func (c *Country) TotalAreaKm2() float64 {
	var t float64
	for _, d := range c.Districts {
		t += d.AreaKm2
	}
	return t
}

// UrbanAreaShare returns the fraction of territory covered by urban
// postcodes (the paper reports 49.6% for the studied country).
func (c *Country) UrbanAreaShare() float64 {
	var urban, total float64
	for _, d := range c.Districts {
		urban += d.UrbanAreaKm2()
		total += d.AreaKm2
	}
	if total == 0 {
		return 0
	}
	return urban / total
}

// District returns the district with the given ID, or nil.
func (c *Country) District(id int) *District {
	if id < 0 || id >= len(c.Districts) {
		return nil
	}
	return &c.Districts[id]
}

// DistrictOfPostcode resolves a postcode string to its district, or nil.
func (c *Country) DistrictOfPostcode(code string) *District {
	c.ensureIndex()
	idx, ok := c.byPostcode[code]
	if !ok {
		return nil
	}
	return &c.Districts[idx]
}

// PostcodeByCode resolves a postcode string, or nil.
func (c *Country) PostcodeByCode(code string) *Postcode {
	d := c.DistrictOfPostcode(code)
	if d == nil {
		return nil
	}
	for i := range d.Postcodes {
		if d.Postcodes[i].Code == code {
			return &d.Postcodes[i]
		}
	}
	return nil
}

func (c *Country) ensureIndex() {
	if c.byPostcode != nil {
		return
	}
	c.byPostcode = make(map[string]int)
	for i, d := range c.Districts {
		for _, p := range d.Postcodes {
			c.byPostcode[p.Code] = i
		}
	}
}

// DensityRank returns district IDs ordered by ascending population density.
func (c *Country) DensityRank() []int {
	ids := make([]int, len(c.Districts))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return c.Districts[ids[a]].Density() < c.Districts[ids[b]].Density()
	})
	return ids
}

// Validate checks internal consistency: unique postcodes, positive areas,
// district population equal to the sum of its postcodes.
func (c *Country) Validate() error {
	seen := make(map[string]bool)
	for i, d := range c.Districts {
		if d.ID != i {
			return fmt.Errorf("census: district %d has ID %d", i, d.ID)
		}
		if d.AreaKm2 <= 0 {
			return fmt.Errorf("census: district %q has non-positive area", d.Name)
		}
		if !d.Center.Valid() {
			return fmt.Errorf("census: district %q has invalid center", d.Name)
		}
		var pop int
		var area float64
		for _, p := range d.Postcodes {
			if seen[p.Code] {
				return fmt.Errorf("census: duplicate postcode %q", p.Code)
			}
			seen[p.Code] = true
			if p.DistrictID != d.ID {
				return fmt.Errorf("census: postcode %q links to district %d, in %d", p.Code, p.DistrictID, d.ID)
			}
			if p.AreaKm2 <= 0 {
				return fmt.Errorf("census: postcode %q has non-positive area", p.Code)
			}
			pop += p.Population
			area += p.AreaKm2
		}
		if pop != d.Population {
			return fmt.Errorf("census: district %q population %d != postcode sum %d", d.Name, d.Population, pop)
		}
		if area > d.AreaKm2*1.0001 {
			return fmt.Errorf("census: district %q postcode area %.1f exceeds district area %.1f", d.Name, area, d.AreaKm2)
		}
	}
	return nil
}
